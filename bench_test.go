package quagmire

// This file is the benchmark harness required by DESIGN.md: one benchmark
// per paper table/figure/claim (T1–T3, E1–E6) plus the ablations (A1–A3).
// Run with:
//
//	go test -bench=. -benchmem
//
// Absolute numbers depend on the host; the experiment *shapes* (who wins,
// where budgets run out) are asserted by the test suite and recorded in
// EXPERIMENTS.md.

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/corpus"
	"github.com/privacy-quagmire/quagmire/internal/embed"
	"github.com/privacy-quagmire/quagmire/internal/experiments"
	"github.com/privacy-quagmire/quagmire/internal/extract"
	"github.com/privacy-quagmire/quagmire/internal/llm"
	"github.com/privacy-quagmire/quagmire/internal/query"
	"github.com/privacy-quagmire/quagmire/internal/server"
	"github.com/privacy-quagmire/quagmire/internal/smt"
)

// T1 — Table 1: full extraction + graph construction per policy.
func BenchmarkTable1ExtractionTikTak(b *testing.B) {
	benchExtraction(b, corpus.TikTak())
}

// BenchmarkTable1ExtractionMetaBook is the Meta-scale variant of T1.
func BenchmarkTable1ExtractionMetaBook(b *testing.B) {
	if testing.Short() {
		b.Skip("large corpus")
	}
	benchExtraction(b, corpus.MetaBook())
}

func benchExtraction(b *testing.B, policy string) {
	ctx := context.Background()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		an, err := New(Config{})
		if err != nil {
			b.Fatal(err)
		}
		a, err := an.Analyze(ctx, policy)
		if err != nil {
			b.Fatal(err)
		}
		st := a.Stats()
		b.ReportMetric(float64(st.Edges), "edges")
		b.ReportMetric(float64(st.Nodes), "nodes")
	}
}

// T2/T3 — Tables 2–3: multi-edge statement decomposition.
func BenchmarkTable2Decomposition(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(ctx)
		if err != nil {
			b.Fatal(err)
		}
		edges := 0
		for _, r := range rows {
			edges += len(r.Edges)
		}
		b.ReportMetric(float64(edges), "edges")
	}
}

// BenchmarkTable3Decomposition is the MetaBook variant.
func BenchmarkTable3Decomposition(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// E1 — §4.2 similarity claims: embedding + top-k retrieval throughput.
func BenchmarkSimilarityClaims(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.SimilarityClaims()
		if rows[0].Score <= 0 {
			b.Fatal("degenerate similarity")
		}
	}
}

// E2 — extraction scaling: policy-size sweep; per-word cost should stay
// roughly flat (linear scaling).
func BenchmarkExtractionScaling(b *testing.B) {
	ctx := context.Background()
	for _, n := range []int{50, 100, 200, 400} {
		text := corpus.Generate(corpus.Config{
			Company: "ScaleCo", Seed: 42, PracticeStatements: n,
			BoilerplateEvery: 1, DataRichness: 120, EntityRichness: 150,
		})
		b.Run(fmt.Sprintf("statements-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				an, err := New(Config{})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := an.Analyze(ctx, text); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// E3 — SMT clause-count sweep: the paper's solver-timeout result. Larger
// encodings exhaust the deterministic budget (status "unknown").
func BenchmarkSMTClauseSweep(b *testing.B) {
	limits := smt.Limits{MaxInstantiations: 20000, MaxSatSteps: 2_000_000, MaxRounds: 2}
	for _, n := range []int{2, 5, 25, 100, 400} {
		b.Run(fmt.Sprintf("edges-%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows := experiments.SMTSweep([]int{n}, limits)
				b.ReportMetric(float64(rows[0].Clauses), "clauses")
				if rows[0].Status == smt.Unknown {
					b.ReportMetric(1, "resource-out")
				} else {
					b.ReportMetric(0, "resource-out")
				}
			}
		})
	}
}

// E4 — incremental updates: model-call cost vs fraction of the policy
// edited.
func BenchmarkIncrementalUpdate(b *testing.B) {
	ctx := context.Background()
	for _, frac := range []float64{0.01, 0.10, 0.50} {
		b.Run(fmt.Sprintf("edited-%.0f%%", frac*100), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows, err := experiments.IncrementalSweep(ctx, []float64{frac})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rows[0].LLMCallsIncremental), "llm-calls")
				b.ReportMetric(float64(rows[0].LLMCallsFull), "full-calls")
			}
		})
	}
}

// E5 — PolicyLint-style contradiction analysis over a policy fleet.
func BenchmarkContradictions(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		sum, err := experiments.Contradictions(ctx, 10)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(sum.Apparent), "apparent")
		b.ReportMetric(float64(sum.Exceptions), "exceptions")
	}
}

// E6 — end-to-end query verification (unsat⇒VALID mapping).
func BenchmarkQueryVerdicts(b *testing.B) {
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Verdicts(ctx)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Want != r.Got {
				b.Fatalf("verdict drift: %q want %s got %s", r.Question, r.Want, r.Got)
			}
		}
	}
}

// newMiniEngine builds a query engine over the Mini policy for ablations.
func newMiniEngine(b *testing.B) *query.Engine {
	b.Helper()
	ctx := context.Background()
	an, err := New(Config{})
	if err != nil {
		b.Fatal(err)
	}
	a, err := an.Analyze(ctx, corpus.Mini())
	if err != nil {
		b.Fatal(err)
	}
	return query.NewEngine(a.inner.KG, llm.NewCachingClient(llm.NewSim()), embed.NewModel("text-embedding-sim"))
}

// A1 — ablation: hierarchy closure vs exact-match-only answering. The
// subsumption query only succeeds with the hierarchy enabled.
func BenchmarkAblationHierarchy(b *testing.B) {
	eng := newMiniEngine(b)
	ctx := context.Background()
	p := llm.ParamSet{Sender: "Acme", Action: "share", DataType: "contact information", Receiver: "advertising partner"}
	for _, noH := range []bool{false, true} {
		name := "with-hierarchy"
		if noH {
			name = "exact-only"
		}
		b.Run(name, func(b *testing.B) {
			eng.NoHierarchy = noH
			valid := 0
			for i := 0; i < b.N; i++ {
				res, err := eng.AskParams(ctx, p)
				if err != nil {
					b.Fatal(err)
				}
				if res.Verdict == query.Valid {
					valid++
				}
			}
			b.ReportMetric(float64(valid)/float64(b.N), "valid-rate")
		})
	}
}

// A2 — ablation: SciBERT-style taxonomy edge filter threshold sweep.
func BenchmarkAblationTaxonomyFilter(b *testing.B) {
	ctx := context.Background()
	for _, threshold := range []float64{0, 0.15, 0.5} {
		b.Run(fmt.Sprintf("threshold-%.2f", threshold), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				an, err := New(Config{TaxonomyFilterThreshold: threshold})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := an.Analyze(ctx, corpus.Mini()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// A3 — ablation: FOL simplification before encoding (the paper's proposed
// mitigation for solver blow-up).
func BenchmarkAblationSimplify(b *testing.B) {
	eng := newMiniEngine(b)
	ctx := context.Background()
	p := llm.ParamSet{Sender: "Acme", Action: "share", DataType: "email address", Receiver: "advertising partner"}
	for _, simplify := range []bool{true, false} {
		name := "simplified"
		if !simplify {
			name = "raw"
		}
		b.Run(name, func(b *testing.B) {
			eng.SimplifyFOL = simplify
			for i := 0; i < b.N; i++ {
				res, err := eng.AskParams(ctx, p)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.FormulaSize), "formula-size")
			}
		})
	}
}

// Whole-policy vs subgraph encoding (the §4.4 bottleneck claim).
func BenchmarkWholePolicyEncoding(b *testing.B) {
	eng := newMiniEngine(b)
	ctx := context.Background()
	p := llm.ParamSet{Sender: "Acme", Action: "share", DataType: "email address"}
	for _, whole := range []bool{false, true} {
		name := "subgraph"
		if whole {
			name = "whole-policy"
		}
		b.Run(name, func(b *testing.B) {
			eng.WholePolicy = whole
			for i := 0; i < b.N; i++ {
				res, err := eng.AskParams(ctx, p)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(res.FormulaSize), "formula-size")
			}
		})
	}
}

// A4 — ablation: full grounding vs trigger-based (E-matching) quantifier
// instantiation on the pipeline encoding shape.
func BenchmarkAblationInstStrategy(b *testing.B) {
	limits := smt.Limits{MaxInstantiations: 20000, MaxSatSteps: 2_000_000, MaxRounds: 2}
	for _, strategy := range []smt.InstStrategy{smt.FullGrounding, smt.TriggerBased} {
		b.Run(strategy.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rows := experiments.SMTSweepStrategy([]int{50}, limits, strategy)
				b.ReportMetric(float64(rows[0].Instantiations), "instantiations")
				b.ReportMetric(float64(rows[0].Clauses), "clauses")
			}
		})
	}
}

// Concurrent extraction throughput: worker-pool fan-out vs sequential on
// the TikTak-scale corpus.
func BenchmarkConcurrentExtraction(b *testing.B) {
	text := corpus.Generate(corpus.Config{
		Company: "ParCo", Seed: 3, PracticeStatements: 200,
		BoilerplateEvery: 1, DataRichness: 100, EntityRichness: 100,
	})
	ctx := context.Background()
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := extract.New(llm.NewSim())
				e.Workers = workers
				if _, err := e.ExtractPolicy(ctx, text); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// batchQueries is the multi-query verification workload: distinct
// questions against the Mini policy, so no two batch items collapse into
// one solver problem unless the cache is shared across repeats.
var batchQueries = []string{
	"Does Acme share my email address with advertising partners?",
	"Does Acme collect my device identifiers?",
	"Does Acme sell my personal information?",
	"Does Acme share my usage data with service providers?",
	"Does Acme collect my email address?",
	"Does Acme share my precise location with advertising partners?",
	"Does Acme use my contact information?",
	"Does Acme share my browsing history with analytics providers?",
}

// Parallel-vs-sequential batch verification (Phase 3): workers > 1 must
// beat workers = 1 on a multi-query workload. The engine carries no result
// cache, so every query pays the full solver cost on every iteration and
// the comparison isolates the worker pool.
func BenchmarkBatchVerification(b *testing.B) {
	ctx := context.Background()
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			eng := newMiniEngine(b)
			eng.Workers = workers
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				items, err := eng.AskBatch(ctx, batchQueries)
				if err != nil {
					b.Fatal(err)
				}
				for _, it := range items {
					if it.Err != nil {
						b.Fatal(it.Err)
					}
				}
			}
			b.ReportMetric(float64(len(batchQueries)), "queries/op")
		})
	}
}

// Incremental shared-core batch verification: one long-lived hash-consed
// ground core answers the whole batch under selector assumptions, vs
// building a fresh solver per query. "fresh-whole-policy" is the
// apples-to-apples baseline (same axiom set, rebuilt each query);
// "fresh-subgraph" is the default production path (smaller per-query
// encodings, no reuse).
func BenchmarkIncrementalAskBatch(b *testing.B) {
	ctx := context.Background()
	modes := []struct {
		name                string
		shared, wholePolicy bool
	}{
		{"fresh-subgraph", false, false},
		{"fresh-whole-policy", false, true},
		{"shared-core", true, false},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			eng := newMiniEngine(b)
			eng.Workers = 4
			eng.SharedCore = m.shared
			eng.WholePolicy = m.wholePolicy
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				items, err := eng.AskBatch(ctx, batchQueries)
				if err != nil {
					b.Fatal(err)
				}
				for _, it := range items {
					if it.Err != nil {
						b.Fatal(it.Err)
					}
				}
			}
			b.ReportMetric(float64(len(batchQueries)), "queries/op")
		})
	}
}

// SMT result cache effectiveness: the same batch re-verified against a
// shared cache skips the solver on every repeat. Reported hit/miss
// counters come straight from the cache.
func BenchmarkBatchVerificationCached(b *testing.B) {
	ctx := context.Background()
	eng := newMiniEngine(b)
	eng.Workers = 4
	eng.Cache = smt.NewResultCache(0)
	// Warm the cache once so every timed iteration is all hits.
	if _, err := eng.AskBatch(ctx, batchQueries); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		items, err := eng.AskBatch(ctx, batchQueries)
		if err != nil {
			b.Fatal(err)
		}
		for _, it := range items {
			if it.Err != nil {
				b.Fatal(it.Err)
			}
		}
	}
	b.StopTimer()
	st := eng.Cache.Stats()
	if st.Hits == 0 {
		b.Fatal("repeated batches should hit the SMT result cache")
	}
	b.ReportMetric(float64(st.Hits), "cache-hits")
	b.ReportMetric(float64(st.Misses), "cache-misses")
}

// HTTP round-trip cost of a query through the full server stack.
func BenchmarkServerQuery(b *testing.B) {
	p, err := core.New(core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	srv, err := server.New(server.Options{Pipeline: p})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/policies", "application/json",
		strings.NewReader(fmt.Sprintf(`{"text":%q}`, corpus.Mini())))
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	body := `{"question":"Does Acme collect my device identifiers?"}`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/policies/p1/query", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

// BenchmarkStageBreakdown runs the full pipeline — analyze plus a
// concurrent verification batch — and reports per-stage means from the
// analyzer's metrics Snapshot, the programmatic face of the observability
// layer (the same data /metrics and -stats expose).
func BenchmarkStageBreakdown(b *testing.B) {
	ctx := context.Background()
	an, err := New(Config{Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := an.Analyze(ctx, corpus.Mini())
		if err != nil {
			b.Fatal(err)
		}
		items, err := a.AskBatch(ctx, batchQueries)
		if err != nil {
			b.Fatal(err)
		}
		for _, it := range items {
			if it.Err != nil {
				b.Fatal(it.Err)
			}
		}
	}
	b.StopTimer()
	snap := an.Metrics()
	report := func(metric, unit string) {
		h, ok := snap.Histograms[metric]
		if !ok || h.Count == 0 {
			b.Fatalf("missing stage metric %s in snapshot", metric)
		}
		b.ReportMetric(h.Sum/float64(h.Count)*1e9, unit)
	}
	report(`quagmire_pipeline_phase_seconds{phase="extract"}`, "ns/extract")
	report(`quagmire_pipeline_phase_seconds{phase="graph"}`, "ns/graph")
	report(`quagmire_query_phase_seconds{phase="translate"}`, "ns/translate")
	report(`quagmire_query_phase_seconds{phase="solve"}`, "ns/solve")
	if n := snap.Counters["quagmire_smt_cache_misses_total"]; n == 0 {
		b.Fatal("stage breakdown ran no solver work")
	}
}
