// Command quagmire is the pipeline CLI: analyze a privacy policy, list its
// extracted data-practice edges, answer compliance queries, diff two policy
// versions, and solve SMT-LIB files with the built-in solver.
//
// Usage:
//
//	quagmire analyze  <policy.txt>             extraction statistics (Table 1 metrics)
//	quagmire edges    <policy.txt>             all [actor]-action->[object] edges
//	quagmire ask      <policy.txt> "<query>" ["<query>" ...]  three-valued compliance verdict(s);
//	                                           multiple queries verify concurrently over -workers
//	quagmire diff     <old.txt> <new.txt>      segment-level policy diff
//	quagmire vague    <policy.txt>             vague conditions needing human review
//	quagmire report   <policy.txt>             markdown audit report
//	quagmire dot      <policy.txt> [graph|data|entity]  Graphviz export
//	quagmire check    <policy.txt> <suite.txt> run a plain-text conformance suite
//	quagmire check    -suite <dir|file.qq> [-policy id[@n] -data dir | -policy-file f | -corpus name]
//	                  [-junit out.xml] [-json out.json] [-deadline 30s]
//	                                           run compliance-as-code scenario suites (CI gate)
//	quagmire compare  <a.txt> <b.txt>          cross-company disclosure gap analysis
//	quagmire explore  <policy.txt> "<query>"   enumerate vague-condition scenarios
//	quagmire explain  <policy.txt> "<query>"   minimal evidence for a VALID verdict
//	quagmire solve    <file.smt2>              run the built-in SMT solver
//	quagmire corpus   <tiktak|metabook|healthtrack|mini>  print a bundled synthetic policy
//	quagmire corpus   gen -dir <dir> -n <count> [-seed S]  write a synthetic corpus
//	quagmire ingest   -corpus <dir> -data <dir> [-workers N -batch N -json]
//	                                           bulk-ingest a corpus into a store (resumable;
//	                                           reruns re-analyze changed sources as new versions)
//	quagmire store    inspect -data <dir> [-json]  read-only store report: snapshot format,
//	                                           WAL watermark, per-policy versions and payload bytes
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/privacy-quagmire/quagmire"
	"github.com/privacy-quagmire/quagmire/internal/compare"
	"github.com/privacy-quagmire/quagmire/internal/conformance"
	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/corpus"
	"github.com/privacy-quagmire/quagmire/internal/extract"
	"github.com/privacy-quagmire/quagmire/internal/htmltext"
	"github.com/privacy-quagmire/quagmire/internal/llm"
	"github.com/privacy-quagmire/quagmire/internal/report"
	"github.com/privacy-quagmire/quagmire/internal/segment"
	"github.com/privacy-quagmire/quagmire/internal/smt"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "quagmire:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("quagmire", flag.ContinueOnError)
	maxInst := fs.Int("max-instantiations", 0, "SMT quantifier-instantiation budget (0 = default)")
	workers := fs.Int("workers", 0, "extraction and batch-verification parallelism (0 = GOMAXPROCS, 1 = sequential)")
	stats := fs.Bool("stats", false, "print the per-phase metrics breakdown to stderr after the command")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("missing subcommand (analyze|edges|ask|diff|vague|report|check|solve|corpus)")
	}
	ctx := context.Background()
	cfg := quagmire.Config{
		SolverLimits: quagmire.SolverLimits{MaxInstantiations: *maxInst},
		Workers:      *workers,
	}

	switch rest[0] {
	case "analyze":
		an, a, err := analyzeFileWith(ctx, cfg, rest[1:])
		if err != nil {
			return err
		}
		st := a.Stats()
		fmt.Printf("company:     %s\n", a.Company())
		fmt.Printf("total nodes: %d\ntotal edges: %d\nentities:    %d\ndata types:  %d\npractices:   %d\n",
			st.Nodes, st.Edges, st.Entities, st.DataTypes, a.Practices())
		printStats(*stats, an)
		return nil

	case "edges":
		an, a, err := analyzeFileWith(ctx, cfg, rest[1:])
		if err != nil {
			return err
		}
		for _, e := range a.Edges() {
			fmt.Println(e)
		}
		printStats(*stats, an)
		return nil

	case "vague":
		an, a, err := analyzeFileWith(ctx, cfg, rest[1:])
		if err != nil {
			return err
		}
		for _, v := range a.VagueConditions() {
			fmt.Println(v)
		}
		printStats(*stats, an)
		return nil

	case "ask":
		if len(rest) < 3 {
			return fmt.Errorf("usage: quagmire ask <policy.txt> \"<query>\" [\"<query>\" ...]")
		}
		an, a, err := analyzeFileWith(ctx, cfg, rest[1:2])
		if err != nil {
			return err
		}
		queries := rest[2:]
		if len(queries) == 1 {
			res, err := a.Ask(ctx, queries[0])
			if err != nil {
				return err
			}
			fmt.Printf("verdict: %s\n", res.Verdict)
			if len(res.ConditionalOn) > 0 {
				fmt.Printf("conditional on: %s\n", strings.Join(res.ConditionalOn, ", "))
			}
			for _, p := range res.Placeholders {
				fmt.Printf("uninterpreted placeholder: %s\n", p)
			}
			for _, e := range res.MatchedEdges {
				fmt.Printf("evidence: %s\n", e)
			}
			printStats(*stats, an)
			return nil
		}
		// Multi-query mode: verify the batch concurrently.
		items, err := a.AskBatch(ctx, queries)
		if err != nil {
			return err
		}
		failed := 0
		for _, it := range items {
			if it.Err != nil {
				failed++
				fmt.Printf("ERROR    %s (%v)\n", it.Query, it.Err)
				continue
			}
			fmt.Printf("%-8s %s\n", it.Result.Verdict, it.Query)
		}
		cs := an.SMTCacheStats()
		fmt.Printf("smt cache: %d hits / %d misses (%d stampedes suppressed)\n", cs.Hits, cs.Misses, cs.Suppressed)
		printStats(*stats, an)
		if failed > 0 {
			return fmt.Errorf("%d quer(ies) failed", failed)
		}
		return nil

	case "diff":
		if len(rest) != 3 {
			return fmt.Errorf("usage: quagmire diff <old.txt> <new.txt>")
		}
		oldText, err := readPolicy(rest[1])
		if err != nil {
			return err
		}
		newText, err := readPolicy(rest[2])
		if err != nil {
			return err
		}
		d := segment.Compare(segment.Split(oldText), segment.Split(newText))
		fmt.Printf("kept: %d  added: %d  removed: %d  (%.1f%% changed)\n",
			len(d.Kept), len(d.Added), len(d.Removed), 100*d.ChangedFraction())
		for _, s := range d.Added {
			fmt.Printf("+ %s\n", s.Text)
		}
		for _, s := range d.Removed {
			fmt.Printf("- %s\n", s.Text)
		}
		// Practice-level semantic diff: what a text diff cannot classify.
		ext := extract.New(llm.NewCachingClient(llm.NewSim()))
		oldEx, err := ext.ExtractPolicy(ctx, oldText)
		if err != nil {
			return err
		}
		newEx, err := ext.ExtractPolicy(ctx, newText)
		if err != nil {
			return err
		}
		rep := extract.CompareVersions(oldEx, newEx)
		if len(rep.Changes) > 0 {
			fmt.Printf("\npractice-level changes (%d, %d permission flips):\n", len(rep.Changes), rep.PermissionFlips)
			for _, c := range rep.Changes {
				switch c.Kind {
				case "condition-changed":
					fmt.Printf("  ~ %s %s: condition %q -> %q\n", c.Action, c.DataType, c.OldCondition, c.NewCondition)
				default:
					fmt.Printf("  %s %s %s\n", c.Kind, c.Action, c.DataType)
				}
			}
		}
		return nil

	case "dot":
		if len(rest) < 2 {
			return fmt.Errorf("usage: quagmire dot <policy.txt> [graph|data|entity]")
		}
		text, err := readPolicy(rest[1])
		if err != nil {
			return err
		}
		p, err := core.New(core.Options{})
		if err != nil {
			return err
		}
		a, err := p.Analyze(ctx, text)
		if err != nil {
			return err
		}
		kind := "graph"
		if len(rest) > 2 {
			kind = rest[2]
		}
		switch kind {
		case "graph":
			fmt.Print(a.KG.ED.DOT(a.Extraction.Company + " practices"))
		case "data":
			fmt.Print(a.KG.DataH.DOT(a.Extraction.Company + " data hierarchy"))
		case "entity":
			fmt.Print(a.KG.EntityH.DOT(a.Extraction.Company + " entity hierarchy"))
		default:
			return fmt.Errorf("unknown dot kind %q (graph|data|entity)", kind)
		}
		return nil

	case "report":
		if len(rest) < 2 {
			return fmt.Errorf("usage: quagmire report <policy.txt>")
		}
		text, err := readPolicy(rest[1])
		if err != nil {
			return err
		}
		p, err := core.New(core.Options{})
		if err != nil {
			return err
		}
		a, err := p.Analyze(ctx, text)
		if err != nil {
			return err
		}
		fmt.Print(report.Render(a, report.Options{IncludeHierarchy: true}))
		return nil

	case "check":
		// Flag form runs compliance-as-code scenario suites; the legacy
		// positional form (`check <policy.txt> <suite.txt>`) keeps running
		// plain-text conformance suites.
		if len(rest) < 2 || strings.HasPrefix(rest[1], "-") {
			return runCheck(ctx, rest[1:], *maxInst, *workers)
		}
		if len(rest) != 3 {
			return fmt.Errorf("usage: quagmire check <policy.txt> <suite.txt> | quagmire check -suite <dir|file.qq> [flags]")
		}
		text, err := readPolicy(rest[1])
		if err != nil {
			return err
		}
		suiteFile, err := os.Open(rest[2])
		if err != nil {
			return err
		}
		defer suiteFile.Close()
		cases, err := conformance.ParseSuite(suiteFile)
		if err != nil {
			return err
		}
		p, err := core.New(core.Options{
			Limits: smt.Limits{MaxInstantiations: *maxInst},
		})
		if err != nil {
			return err
		}
		a, err := p.Analyze(ctx, text)
		if err != nil {
			return err
		}
		res, err := conformance.Run(ctx, a.Engine, cases)
		if err != nil {
			return err
		}
		fmt.Print(conformance.Render(res))
		if res.Failed > 0 {
			return fmt.Errorf("%d conformance case(s) failed", res.Failed)
		}
		return nil

	case "explore":
		if len(rest) < 3 {
			return fmt.Errorf("usage: quagmire explore <policy.txt> \"<query>\"")
		}
		a, err := analyzeCore(ctx, *maxInst, rest[1])
		if err != nil {
			return err
		}
		exp, err := a.Engine.Explore(ctx, rest[2])
		if err != nil {
			return err
		}
		for _, sc := range exp.Scenarios {
			var parts []string
			for _, ph := range exp.Placeholders {
				parts = append(parts, fmt.Sprintf("%s=%v", ph, sc.Assumptions[ph]))
			}
			fmt.Printf("%-8s %s\n", sc.Verdict, strings.Join(parts, " "))
		}
		fmt.Printf("always valid: %v  never valid: %v\n", exp.AlwaysValid, exp.NeverValid)
		return nil

	case "explain":
		if len(rest) < 3 {
			return fmt.Errorf("usage: quagmire explain <policy.txt> \"<query>\"")
		}
		a, err := analyzeCore(ctx, *maxInst, rest[1])
		if err != nil {
			return err
		}
		expl, err := a.Engine.ExplainQuestion(ctx, rest[2])
		if err != nil {
			return err
		}
		fmt.Printf("verdict: %s (%d solver calls)\n", expl.Verdict, expl.SolverCalls)
		for _, ev := range expl.Evidence {
			fmt.Printf("evidence: %s\n", ev)
		}
		return nil

	case "compare":
		if len(rest) != 3 {
			return fmt.Errorf("usage: quagmire compare <policyA.txt> <policyB.txt>")
		}
		textA, err := readPolicy(rest[1])
		if err != nil {
			return err
		}
		textB, err := readPolicy(rest[2])
		if err != nil {
			return err
		}
		p, err := core.New(core.Options{})
		if err != nil {
			return err
		}
		aA, err := p.Analyze(ctx, textA)
		if err != nil {
			return err
		}
		aB, err := p.Analyze(ctx, textB)
		if err != nil {
			return err
		}
		comparer := &compare.Comparer{Model: quagmire.EmbeddingModel(), Client: llm.NewCachingClient(llm.NewSim())}
		rep := comparer.Compare(aA.KG, aB.KG)
		fmt.Printf("%s vs %s: %d shared practices\n", rep.CompanyA, rep.CompanyB, rep.Shared)
		fmt.Printf("\nonly in %s (%d):\n", rep.CompanyA, len(rep.OnlyA))
		for _, g := range rep.OnlyA {
			fmt.Printf("  %s %s\n", g.Action, g.DataType)
		}
		fmt.Printf("\nonly in %s (%d):\n", rep.CompanyB, len(rep.OnlyB))
		for _, g := range rep.OnlyB {
			fmt.Printf("  %s %s\n", g.Action, g.DataType)
		}
		return nil

	case "solve":
		if len(rest) != 2 {
			return fmt.Errorf("usage: quagmire solve <file.smt2>")
		}
		src, err := os.ReadFile(rest[1])
		if err != nil {
			return err
		}
		results, err := smt.RunScript(string(src), smt.Limits{MaxInstantiations: *maxInst})
		if err != nil {
			return err
		}
		for _, r := range results {
			fmt.Print(smt.FormatResult(r))
		}
		return nil

	case "ingest":
		return runIngest(ctx, rest[1:], *maxInst)

	case "store":
		return runStore(rest[1:])

	case "corpus":
		if len(rest) >= 2 && rest[1] == "gen" {
			return runCorpusGen(rest[2:])
		}
		if len(rest) != 2 {
			return fmt.Errorf("usage: quagmire corpus <tiktak|metabook|mini> | quagmire corpus gen -dir <dir> -n <count>")
		}
		switch rest[1] {
		case "tiktak":
			fmt.Print(corpus.TikTak())
		case "metabook":
			fmt.Print(corpus.MetaBook())
		case "healthtrack":
			fmt.Print(corpus.HealthTrack())
		case "mini":
			fmt.Print(corpus.Mini())
		default:
			return fmt.Errorf("unknown corpus %q", rest[1])
		}
		return nil

	default:
		return fmt.Errorf("unknown subcommand %q", rest[0])
	}
}

// printStats renders the per-phase metrics table to stderr when -stats is
// set; stderr keeps the table out of piped stdout consumers.
func printStats(enabled bool, an *quagmire.Analyzer) {
	if enabled && an != nil {
		fmt.Fprint(os.Stderr, an.Metrics().Table())
	}
}

// analyzeCore analyzes a policy file through the internal pipeline,
// exposing the raw Analysis for engine-level subcommands.
func analyzeCore(ctx context.Context, maxInst int, path string) (*core.Analysis, error) {
	text, err := readPolicy(path)
	if err != nil {
		return nil, err
	}
	p, err := core.New(core.Options{
		Limits: smt.Limits{MaxInstantiations: maxInst},
	})
	if err != nil {
		return nil, err
	}
	return p.Analyze(ctx, text)
}

func analyzeFile(ctx context.Context, cfg quagmire.Config, args []string) (*quagmire.Analysis, error) {
	_, a, err := analyzeFileWith(ctx, cfg, args)
	return a, err
}

// analyzeFileWith also returns the analyzer, for subcommands that report
// analyzer-level instrumentation (e.g. SMT cache counters).
func analyzeFileWith(ctx context.Context, cfg quagmire.Config, args []string) (*quagmire.Analyzer, *quagmire.Analysis, error) {
	if len(args) < 1 {
		return nil, nil, fmt.Errorf("missing policy file")
	}
	text, err := readPolicy(args[0])
	if err != nil {
		return nil, nil, err
	}
	an, err := quagmire.New(cfg)
	if err != nil {
		return nil, nil, err
	}
	a, err := an.Analyze(ctx, text)
	if err != nil {
		return nil, nil, err
	}
	return an, a, nil
}

// readPolicy loads a policy file, converting HTML pages to pipeline text.
func readPolicy(path string) (string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	text := string(data)
	lowerPath := strings.ToLower(path)
	trimmed := strings.TrimSpace(text)
	if strings.HasSuffix(lowerPath, ".html") || strings.HasSuffix(lowerPath, ".htm") ||
		strings.HasPrefix(strings.ToLower(trimmed), "<!doctype") || strings.HasPrefix(trimmed, "<html") {
		return htmltext.Extract(text), nil
	}
	return text, nil
}
