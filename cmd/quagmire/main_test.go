package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/corpus"
)

// capture redirects stdout around fn and returns what was printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	runErr := fn()
	w.Close()
	os.Stdout = old
	return <-done, runErr
}

func writePolicy(t *testing.T, text string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "policy.txt")
	if err := os.WriteFile(p, []byte(text), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAnalyzeSubcommand(t *testing.T) {
	p := writePolicy(t, corpus.Mini())
	out, err := capture(t, func() error { return run([]string{"analyze", p}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"company:", "Acme", "total edges:"} {
		if !strings.Contains(out, want) {
			t.Errorf("analyze output missing %q:\n%s", want, out)
		}
	}
}

func TestEdgesSubcommand(t *testing.T) {
	p := writePolicy(t, corpus.Mini())
	out, err := capture(t, func() error { return run([]string{"edges", p}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "]-") || !strings.Contains(out, "->[") {
		t.Errorf("edges output:\n%s", out)
	}
}

func TestAskSubcommand(t *testing.T) {
	p := writePolicy(t, corpus.Mini())
	out, err := capture(t, func() error {
		return run([]string{"ask", p, "Does Acme sell my personal information?"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "verdict: INVALID") {
		t.Errorf("ask output:\n%s", out)
	}
}

func TestDiffSubcommand(t *testing.T) {
	p1 := writePolicy(t, corpus.Mini())
	p2 := writePolicy(t, strings.Replace(corpus.Mini(), "device identifiers", "browsing history", 1))
	out, err := capture(t, func() error { return run([]string{"diff", p1, p2}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "added: 1") || !strings.Contains(out, "removed: 1") {
		t.Errorf("diff output:\n%s", out)
	}
}

func TestSolveSubcommand(t *testing.T) {
	f := filepath.Join(t.TempDir(), "q.smt2")
	script := "(declare-fun p () Bool)\n(assert p)\n(assert (not p))\n(check-sat)\n"
	if err := os.WriteFile(f, []byte(script), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error { return run([]string{"solve", f}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out, "unsat") {
		t.Errorf("solve output: %q", out)
	}
}

func TestVagueSubcommand(t *testing.T) {
	p := writePolicy(t, corpus.Mini())
	out, err := capture(t, func() error { return run([]string{"vague", p}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "business purpose") {
		t.Errorf("vague output:\n%s", out)
	}
}

func TestCorpusSubcommand(t *testing.T) {
	out, err := capture(t, func() error { return run([]string{"corpus", "mini"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Acme Privacy Policy") {
		t.Errorf("corpus output:\n%s", out[:80])
	}
}

func TestErrorCases(t *testing.T) {
	cases := [][]string{
		{},
		{"bogus"},
		{"analyze"},
		{"analyze", "/nonexistent/file"},
		{"ask", "onlyonearg"},
		{"diff", "one"},
		{"solve"},
		{"corpus", "bogus"},
	}
	for _, args := range cases {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
}

func TestReportSubcommand(t *testing.T) {
	p := writePolicy(t, corpus.Mini())
	out, err := capture(t, func() error { return run([]string{"report", p}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "# Privacy Policy Audit — Acme") {
		t.Errorf("report output:\n%s", out[:120])
	}
}

func TestCheckSubcommand(t *testing.T) {
	p := writePolicy(t, corpus.Mini())
	suite := filepath.Join(t.TempDir(), "suite.txt")
	content := "EXPECT VALID: Does Acme collect my device identifiers?\nEXPECT INVALID: Does Acme sell my personal information?\n"
	if err := os.WriteFile(suite, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error { return run([]string{"check", p, suite}) })
	if err != nil {
		t.Fatalf("check failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "2 passed, 0 failed") {
		t.Errorf("check output:\n%s", out)
	}
	// A failing suite exits with error.
	bad := filepath.Join(t.TempDir(), "bad.txt")
	os.WriteFile(bad, []byte("EXPECT VALID: Does Acme sell my personal information?\n"), 0o644)
	if _, err := capture(t, func() error { return run([]string{"check", p, bad}) }); err == nil {
		t.Error("failing suite should return error")
	}
}

func TestDotSubcommand(t *testing.T) {
	p := writePolicy(t, corpus.Mini())
	out, err := capture(t, func() error { return run([]string{"dot", p, "data"}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "digraph") || !strings.Contains(out, "->") {
		t.Errorf("dot output:\n%s", out[:100])
	}
	if _, err := capture(t, func() error { return run([]string{"dot", p, "bogus"}) }); err == nil {
		t.Error("bogus dot kind should fail")
	}
}

func TestHTMLPolicyIngestion(t *testing.T) {
	html := `<html><body><h1>Acme Privacy Policy</h1>
<p>This Privacy Policy describes how Acme ("we") handles data.</p>
<p>We collect your email address.</p></body></html>`
	p := filepath.Join(t.TempDir(), "policy.html")
	if err := os.WriteFile(p, []byte(html), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, func() error { return run([]string{"analyze", p}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Acme") || !strings.Contains(out, "total edges:") {
		t.Errorf("HTML analyze output:\n%s", out)
	}
}

func TestExploreSubcommand(t *testing.T) {
	p := writePolicy(t, corpus.Mini())
	out, err := capture(t, func() error {
		return run([]string{"explore", p, "Does Acme share my usage data with service providers?"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "VALID") || !strings.Contains(out, "always valid: false") {
		t.Errorf("explore output:\n%s", out)
	}
}

func TestExplainSubcommand(t *testing.T) {
	p := writePolicy(t, corpus.Mini())
	out, err := capture(t, func() error {
		return run([]string{"explain", p, "Does Acme collect my device identifiers?"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "verdict: VALID") || !strings.Contains(out, "evidence:") {
		t.Errorf("explain output:\n%s", out)
	}
}
