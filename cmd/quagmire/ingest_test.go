package main

import (
	"path/filepath"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/store"
)

func TestIngestCommand(t *testing.T) {
	corpusDir := t.TempDir()
	dataDir := filepath.Join(t.TempDir(), "data")

	if err := run([]string{"corpus", "gen", "-dir", corpusDir, "-n", "5", "-seed", "7"}); err != nil {
		t.Fatalf("corpus gen: %v", err)
	}
	if err := run([]string{"ingest", "-corpus", corpusDir, "-data", dataDir, "-workers", "2", "-batch", "2", "-quiet"}); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	// Rerun resumes to a no-op instead of duplicating.
	if err := run([]string{"ingest", "-corpus", corpusDir, "-data", dataDir, "-quiet"}); err != nil {
		t.Fatalf("ingest rerun: %v", err)
	}

	st, err := store.OpenDisk(dataDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	list, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 5 {
		t.Fatalf("store has %d policies after rerun, want 5", len(list))
	}
	for _, p := range list {
		if p.Versions != 1 {
			t.Errorf("%s has %d versions, want 1", p.Name, p.Versions)
		}
	}
}

func TestIngestCommandUsage(t *testing.T) {
	if err := run([]string{"ingest"}); err == nil {
		t.Error("ingest without flags did not error")
	}
	if err := run([]string{"corpus", "gen"}); err == nil {
		t.Error("corpus gen without -dir did not error")
	}
}
