package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/corpus"
	"github.com/privacy-quagmire/quagmire/internal/ingest"
	"github.com/privacy-quagmire/quagmire/internal/smt"
	"github.com/privacy-quagmire/quagmire/internal/store"
)

// runIngest is `quagmire ingest -corpus dir -data dir [-workers N]`: bulk
// ingestion of a policy corpus into a disk store, resumable by rerunning
// the same command after an interrupt.
func runIngest(ctx context.Context, args []string, maxInst int) error {
	fs := flag.NewFlagSet("ingest", flag.ContinueOnError)
	corpusDir := fs.String("corpus", "", "directory of policy files to ingest (required)")
	dataDir := fs.String("data", "", "store data directory (required)")
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "concurrent analysis workers")
	batch := fs.Int("batch", 16, "policies per durable store append (one WAL fsync each)")
	jsonOut := fs.Bool("json", false, "print the run summary as JSON")
	quiet := fs.Bool("quiet", false, "suppress per-batch progress on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *corpusDir == "" || *dataDir == "" {
		return fmt.Errorf("usage: quagmire ingest -corpus <dir> -data <dir> [-workers N] [-batch N] [-json]")
	}

	// SIGINT/SIGTERM cancel the run; committed batches are durable and a
	// rerun resumes from them.
	ctx, stop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	defer stop()

	p, err := core.New(core.Options{Limits: smt.Limits{MaxInstantiations: maxInst}})
	if err != nil {
		return err
	}
	logger := log.New(os.Stderr, "", log.LstdFlags)
	st, err := store.OpenDisk(*dataDir, store.Options{Logger: logger})
	if err != nil {
		return err
	}
	defer st.Close()

	opts := ingest.Options{Workers: *workers, BatchSize: *batch, Logger: logger}
	if !*quiet {
		opts.Progress = func(pr ingest.Progress) {
			fmt.Fprintf(os.Stderr, "ingest: %d/%d committed (%d updated, %d skipped, %d failed)\n",
				pr.Committed, pr.Total-pr.Skipped-pr.Failed, pr.Updated, pr.Skipped, pr.Failed)
		}
	}
	sum, runErr := ingest.Run(ctx, p, st, *corpusDir, opts)

	if *jsonOut {
		out := struct {
			ingest.Summary
			Interrupted bool `json:"interrupted"`
		}{sum, runErr == context.Canceled}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return err
		}
	} else {
		fmt.Printf("discovered: %d\ningested: %d\nupdated: %d\nskipped: %d\nfailed: %d\nbatches: %d\n",
			sum.Discovered, sum.Ingested, sum.Updated, sum.Skipped, len(sum.Failed), sum.Batches)
		for _, fe := range sum.Failed {
			fmt.Printf("failed: %s: %v\n", fe.Path, fe.Err)
		}
	}
	if runErr == context.Canceled {
		return fmt.Errorf("interrupted after %d policies; rerun to resume", sum.Ingested)
	}
	if runErr == nil && len(sum.Failed) > 0 {
		return fmt.Errorf("%d file(s) failed to ingest", len(sum.Failed))
	}
	return runErr
}

// runCorpusGen is `quagmire corpus gen -dir d -n N [-seed S]`: write a
// deterministic synthetic corpus for benchmarks and ingest testing.
func runCorpusGen(args []string) error {
	fs := flag.NewFlagSet("corpus gen", flag.ContinueOnError)
	dir := fs.String("dir", "", "output directory (required)")
	n := fs.Int("n", 100, "number of policies to generate")
	seed := fs.Int64("seed", 42, "generation seed (same seed, same corpus)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" || *n < 1 {
		return fmt.Errorf("usage: quagmire corpus gen -dir <dir> -n <count> [-seed S]")
	}
	names, err := corpus.WriteCorpus(*dir, *n, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("generated: %d\n", len(names))
	return nil
}
