package main

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/corpus"
	"github.com/privacy-quagmire/quagmire/internal/query"
	"github.com/privacy-quagmire/quagmire/internal/store"
)

// writeSuite drops a .qq suite into its own temp directory.
func writeSuite(t *testing.T, name, src string) string {
	t.Helper()
	dir := t.TempDir()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

const greenSuite = `suite "green" {
  policy "corpus:mini"
  use ccpa-no-sale(controller = "Acme")
  scenario "collection disclosed" {
    ask "Does Acme collect my device identifiers?"
    expect VALID
  }
}`

func TestCheckScenarioSuite(t *testing.T) {
	p := writeSuite(t, "green.qq", greenSuite)
	junit := filepath.Join(t.TempDir(), "report.xml")
	jsonOut := filepath.Join(t.TempDir(), "report.json")
	out, err := capture(t, func() error {
		return run([]string{"check", "-suite", p, "-junit", junit, "-json", jsonOut})
	})
	if err != nil {
		t.Fatalf("check failed: %v\n%s", err, out)
	}
	for _, want := range []string{"3 passed, 0 skipped, 0 failed, 0 errored", "ccpa-no-sale: no sale of personal information"} {
		if !strings.Contains(out, want) {
			t.Errorf("check output missing %q:\n%s", want, out)
		}
	}
	xml, err := os.ReadFile(junit)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(xml), `<testsuite name="green" tests="3" failures="0"`) {
		t.Errorf("junit report:\n%s", xml)
	}
	js, err := os.ReadFile(jsonOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(js), `"format": "quagmire-scenario-report/1"`) || !strings.Contains(string(js), `"ok": true`) {
		t.Errorf("json report:\n%s", js)
	}
}

func TestCheckScenarioDirectory(t *testing.T) {
	dir := t.TempDir()
	files := map[string]string{
		"b_second.qq": `suite "second" { policy "corpus:mini" scenario "s" { ask "Does Acme sell my personal information?" expect INVALID } }`,
		"a_first.qq":  `suite "first" { policy "corpus:mini" scenario "f" { ask "Does Acme collect my device identifiers?" expect VALID } }`,
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	out, err := capture(t, func() error { return run([]string{"check", "-suite", dir}) })
	if err != nil {
		t.Fatalf("check failed: %v\n%s", err, out)
	}
	// Suites run in sorted file order, sharing one cached engine.
	if strings.Index(out, `suite "first"`) > strings.Index(out, `suite "second"`) {
		t.Errorf("suites out of order:\n%s", out)
	}
}

func TestCheckScenarioFailureExit(t *testing.T) {
	p := writeSuite(t, "red.qq", `suite "red" {
  policy "corpus:mini"
  scenario "wrong" {
    ask "Does Acme sell my personal information?"
    expect VALID
  }
}`)
	junit := filepath.Join(t.TempDir(), "report.xml")
	out, err := capture(t, func() error { return run([]string{"check", "-suite", p, "-junit", junit}) })
	if err == nil {
		t.Fatalf("failing suite must return an error:\n%s", out)
	}
	if !strings.Contains(err.Error(), "1 scenario(s) failed") {
		t.Errorf("error = %v", err)
	}
	// The JUnit artifact is still written for CI to upload.
	xml, rerr := os.ReadFile(junit)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if !strings.Contains(string(xml), `type="verdict-mismatch"`) {
		t.Errorf("junit report:\n%s", xml)
	}
}

func TestCheckPolicyOverrides(t *testing.T) {
	// Suite declares no policy; -corpus supplies it.
	p := writeSuite(t, "nopolicy.qq", `suite "nopolicy" {
  scenario "s" { ask "Does Acme sell my personal information?" expect INVALID }
}`)
	if out, err := capture(t, func() error { return run([]string{"check", "-suite", p, "-corpus", "mini"}) }); err != nil {
		t.Fatalf("-corpus override failed: %v\n%s", err, out)
	}
	// Without any policy source the run is a configuration error.
	if _, err := capture(t, func() error { return run([]string{"check", "-suite", p}) }); err == nil {
		t.Error("suite without policy should fail")
	}
	// -policy-file resolves a policy from disk.
	pf := writePolicy(t, corpus.Mini())
	if out, err := capture(t, func() error { return run([]string{"check", "-suite", p, "-policy-file", pf}) }); err != nil {
		t.Fatalf("-policy-file override failed: %v\n%s", err, out)
	}
}

func TestCheckFilePolicyReference(t *testing.T) {
	// A file: reference resolves relative to the suite's own directory.
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "policy.txt"), []byte(corpus.Mini()), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `suite "local" {
  policy "file:policy.txt"
  scenario "s" { ask "Does Acme collect my device identifiers?" expect VALID }
}`
	if err := os.WriteFile(filepath.Join(dir, "local.qq"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if out, err := capture(t, func() error { return run([]string{"check", "-suite", dir}) }); err != nil {
		t.Fatalf("file: reference failed: %v\n%s", err, out)
	}
}

func TestCheckStoredPolicy(t *testing.T) {
	// Analyze Mini, persist it, then check the stored version by reference.
	dataDir := t.TempDir()
	pipe, err := core.New(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := pipe.Analyze(context.Background(), corpus.Mini())
	if err != nil {
		t.Fatal(err)
	}
	payload, err := core.EncodeAnalysis(a)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.OpenDisk(dataDir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := st.Create("acme", store.Version{
		VersionMeta: store.VersionMeta{Company: a.KG.Company},
		Payload:     payload,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	p := writeSuite(t, "stored.qq", `suite "stored" {
  scenario "s" { ask "Does Acme sell my personal information?" expect INVALID }
}`)
	out, err := capture(t, func() error {
		return run([]string{"check", "-suite", p, "-policy", pol.ID + "@1", "-data", dataDir})
	})
	if err != nil {
		t.Fatalf("stored-policy check failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "policy store:"+pol.ID+"@1") {
		t.Errorf("output should label the store reference:\n%s", out)
	}
}

func TestCheckConfigErrors(t *testing.T) {
	p := writeSuite(t, "green.qq", greenSuite)
	for _, args := range [][]string{
		{"check", "-suite", "/nonexistent"},
		{"check", "-suite", p, "-corpus", "bogus"},
		{"check", "-suite", p, "-policy", "id"}, // missing -data
		{"check", "-suite", p, "-corpus", "mini", "-policy-file", "x"},
		{"check", "-suite", p, "stray-arg"},
		{"check", "-suite", filepath.Dir(writeSuite(t, "bad.qq", `suite "b" {`))},
	} {
		if _, err := capture(t, func() error { return run(args) }); err == nil {
			t.Errorf("run(%v) should fail", args)
		}
	}
	// An empty directory is an error, not a silent pass.
	if _, err := capture(t, func() error { return run([]string{"check", "-suite", t.TempDir()}) }); err == nil {
		t.Error("empty suite directory should fail")
	}
}

func TestCheckArtifactsWrittenWhenSuiteErrors(t *testing.T) {
	// One good suite, one that fails compilation (unknown pack). The run
	// must exit non-zero AND still write both artifacts, with the good
	// suite's verdicts intact and the broken suite recorded as errored —
	// a mid-run failure used to abort before any report was written.
	dir := t.TempDir()
	files := map[string]string{
		"a_good.qq": `suite "good" { policy "corpus:mini" scenario "s" { ask "Does Acme collect my device identifiers?" expect VALID } }`,
		"b_bad.qq":  `suite "bad" { policy "corpus:mini" use nonexistent-pack }`,
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	junit := filepath.Join(t.TempDir(), "report.xml")
	jsonOut := filepath.Join(t.TempDir(), "report.json")
	out, err := capture(t, func() error {
		return run([]string{"check", "-suite", dir, "-junit", junit, "-json", jsonOut})
	})
	if err == nil {
		t.Fatalf("run with a broken suite must fail:\n%s", out)
	}
	if !strings.Contains(err.Error(), "1 errored") {
		t.Errorf("error should count the broken suite: %v", err)
	}
	if !strings.Contains(out, "1 passed") || !strings.Contains(out, "1 errored") {
		t.Errorf("text output should include both suites:\n%s", out)
	}
	xml, rerr := os.ReadFile(junit)
	if rerr != nil {
		t.Fatalf("junit artifact missing: %v", rerr)
	}
	for _, want := range []string{`<testsuite name="good"`, `<testsuite name="bad"`, "nonexistent-pack"} {
		if !strings.Contains(string(xml), want) {
			t.Errorf("junit missing %q:\n%s", want, xml)
		}
	}
	js, rerr := os.ReadFile(jsonOut)
	if rerr != nil {
		t.Fatalf("json artifact missing: %v", rerr)
	}
	for _, want := range []string{`"ok": false`, `"errored": 1`, `"suite": "good"`, `"suite": "bad"`} {
		if !strings.Contains(string(js), want) {
			t.Errorf("json missing %q:\n%s", want, js)
		}
	}
}

func TestCheckEngineCacheKeyCanonicalized(t *testing.T) {
	// "file:p.txt", "file:./p.txt" and "file:sub/../p.txt" are the same
	// policy; the engine cache must hold one entry, not three — each
	// spelling used to trigger a full re-analysis.
	dir := t.TempDir()
	if err := os.MkdirAll(filepath.Join(dir, "sub"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "p.txt"), []byte(corpus.Mini()), 0o644); err != nil {
		t.Fatal(err)
	}
	pipe, err := core.New(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r := &checkRunner{ctx: context.Background(), pipeline: pipe, engines: map[string]*query.Engine{}}
	defer r.close()
	for _, ref := range []string{"file:p.txt", "file:./p.txt", "file:sub/../p.txt"} {
		if _, err := r.engineFor(ref, dir); err != nil {
			t.Fatalf("engineFor(%q): %v", ref, err)
		}
	}
	if len(r.engines) != 1 {
		keys := make([]string, 0, len(r.engines))
		for k := range r.engines {
			keys = append(keys, k)
		}
		t.Errorf("engine cache holds %d entries, want 1: %v", len(r.engines), keys)
	}
}
