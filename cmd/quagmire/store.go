package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"github.com/privacy-quagmire/quagmire/internal/store"
)

// runStore is `quagmire store <subcommand>`. The only subcommand so far
// is inspect: a read-only report on a store data directory — snapshot
// format version and watermark, WAL record count and durable sequence,
// and per-policy version/payload accounting. It never opens the store
// for writing (no recovery, no WAL truncation), so it is safe against a
// directory another process is serving from.
func runStore(args []string) error {
	if len(args) == 0 || args[0] != "inspect" {
		return fmt.Errorf("usage: quagmire store inspect -data <dir> [-json]")
	}
	fs := flag.NewFlagSet("store inspect", flag.ContinueOnError)
	dataDir := fs.String("data", "", "store data directory (required)")
	jsonOut := fs.Bool("json", false, "print the report as JSON")
	if err := fs.Parse(args[1:]); err != nil {
		return err
	}
	if *dataDir == "" {
		return fmt.Errorf("usage: quagmire store inspect -data <dir> [-json]")
	}
	info, err := store.Inspect(*dataDir)
	if err != nil {
		return err
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(info)
	}

	switch info.SnapshotCodec {
	case 0:
		fmt.Printf("snapshot: none (WAL only)\n")
	default:
		fmt.Printf("snapshot: v%d, seq %d, %d bytes\n", info.SnapshotCodec, info.SnapshotSeq, info.SnapshotBytes)
	}
	fmt.Printf("wal: %d records, seq %d, %d bytes\n", info.WALRecords, info.WALSeq, info.WALBytes)
	if info.WALCorrupt != "" {
		fmt.Printf("wal corrupt tail: %s\n", info.WALCorrupt)
	}
	fmt.Printf("policies: %d\n", len(info.Policies))
	if len(info.Policies) > 0 {
		fmt.Printf("%-8s %-40s %8s %14s\n", "ID", "NAME", "VERSIONS", "PAYLOAD BYTES")
		for _, p := range info.Policies {
			fmt.Printf("%-8s %-40s %8d %14d\n", p.ID, p.Name, p.Versions, p.PayloadBytes)
		}
	}
	return nil
}
