package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/corpus"
	"github.com/privacy-quagmire/quagmire/internal/query"
	"github.com/privacy-quagmire/quagmire/internal/scenario"
	"github.com/privacy-quagmire/quagmire/internal/smt"
	"github.com/privacy-quagmire/quagmire/internal/store"
)

// runCheck is `quagmire check -suite ...`: execute compliance-as-code
// scenario suites and gate CI on the verdicts. The exit status is the
// contract — zero only when every suite is green (expected-UNKNOWN cases
// skip, they do not fail).
//
// Policy sources, in precedence order:
//
//	-policy id[@n] -data dir   a stored version (latest when @n is omitted)
//	-policy-file path          analyze a policy file
//	-corpus name               analyze a bundled synthetic policy
//	(none)                     each suite's own `policy "..."` declaration:
//	                           "corpus:<name>", "file:<path relative to the
//	                           suite file>", or "store:<id>[@n]" (needs -data)
//
// Engines are cached per policy reference and built with the shared
// incremental solver core, so a multi-suite run pays one ground-core
// construction per distinct policy.
func runCheck(ctx context.Context, args []string, maxInst, workers int) error {
	fs := flag.NewFlagSet("quagmire check", flag.ContinueOnError)
	suitePath := fs.String("suite", "", "scenario suite file or directory of *.qq files (required)")
	policyRef := fs.String("policy", "", "stored policy id[@version] to check (requires -data)")
	dataDir := fs.String("data", "", "policy store directory (for -policy and store: references)")
	policyFile := fs.String("policy-file", "", "policy text/HTML file to check")
	corpusName := fs.String("corpus", "", "bundled corpus policy to check (tiktak|metabook|healthtrack|mini)")
	junitPath := fs.String("junit", "", "write a JUnit XML report to this path")
	jsonPath := fs.String("json", "", "write a JSON report to this path")
	deadline := fs.Duration("deadline", 0, "per-scenario verification deadline (overrides suite declarations)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *suitePath == "" {
		return fmt.Errorf("check: -suite is required (or use the legacy form: quagmire check <policy.txt> <suite.txt>)")
	}
	if rest := fs.Args(); len(rest) > 0 {
		return fmt.Errorf("check: unexpected argument %q", rest[0])
	}
	override, err := overrideRef(*policyRef, *policyFile, *corpusName, *dataDir)
	if err != nil {
		return err
	}

	files, err := suiteFiles(*suitePath)
	if err != nil {
		return err
	}
	p, err := core.New(core.Options{
		Limits:           smt.Limits{MaxInstantiations: maxInst},
		Workers:          workers,
		SharedSolverCore: true,
	})
	if err != nil {
		return err
	}
	r := &checkRunner{ctx: ctx, pipeline: p, dataDir: *dataDir, engines: map[string]*query.Engine{}}
	defer r.close()

	// A suite that fails before producing case results — unreadable file,
	// parse or compile error, unresolvable policy, execution abort — is
	// recorded as an errored suite and the run continues, so one broken
	// suite costs its own verdicts, not the whole report: -junit/-json
	// artifacts are always written, with the failure in them.
	results := make([]*scenario.SuiteResult, 0, len(files))
	for _, file := range files {
		results = append(results, runSuite(ctx, r, file, override, *deadline, workers))
	}

	fmt.Print(scenario.RenderText(results))
	if err := writeReports(results, *junitPath, *jsonPath); err != nil {
		return err
	}
	rep := scenario.NewReport(results)
	if !rep.OK {
		return fmt.Errorf("%d scenario(s) failed, %d errored", rep.Totals.Failed, rep.Totals.Errored)
	}
	return nil
}

// runSuite reads, compiles and executes one suite file. Any failure along
// the way comes back as an errored SuiteResult, never an early abort.
func runSuite(ctx context.Context, r *checkRunner, file, override string, deadline time.Duration, workers int) *scenario.SuiteResult {
	src, err := os.ReadFile(file)
	if err != nil {
		return scenario.ErroredSuite(file, "", err)
	}
	parsed, err := scenario.Parse(file, string(src))
	if err != nil {
		return scenario.ErroredSuite(file, "", err)
	}
	cs, err := scenario.Compile(parsed)
	if err != nil {
		return scenario.ErroredSuite(file, parsed.Name, err)
	}
	ref := override
	if ref == "" {
		ref = cs.Policy
	}
	if ref == "" {
		return scenario.ErroredSuite(file, cs.Name,
			fmt.Errorf("suite declares no policy and none was given (-policy/-policy-file/-corpus)"))
	}
	eng, err := r.engineFor(ref, filepath.Dir(file))
	if err != nil {
		return scenario.ErroredSuite(file, cs.Name, err)
	}
	res, err := scenario.Execute(ctx, eng, cs, scenario.ExecOptions{
		Deadline: deadline,
		Workers:  workers,
		Obs:      r.pipeline.Obs(),
		Policy:   ref,
	})
	if err != nil {
		return scenario.ErroredSuite(file, cs.Name, err)
	}
	return res
}

// overrideRef folds the three policy-selection flags into one canonical
// reference (empty = defer to each suite's declaration).
func overrideRef(policyRef, policyFile, corpusName, dataDir string) (string, error) {
	set := 0
	for _, s := range []string{policyRef, policyFile, corpusName} {
		if s != "" {
			set++
		}
	}
	if set > 1 {
		return "", fmt.Errorf("check: -policy, -policy-file and -corpus are mutually exclusive")
	}
	switch {
	case policyRef != "":
		if dataDir == "" {
			return "", fmt.Errorf("check: -policy requires -data <store directory>")
		}
		return "store:" + policyRef, nil
	case policyFile != "":
		abs, err := filepath.Abs(policyFile)
		if err != nil {
			return "", err
		}
		return "file:" + abs, nil
	case corpusName != "":
		return "corpus:" + corpusName, nil
	}
	return "", nil
}

// suiteFiles expands the -suite argument: a directory means every *.qq file
// in it, sorted for deterministic run order.
func suiteFiles(path string) ([]string, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return []string{path}, nil
	}
	files, err := filepath.Glob(filepath.Join(path, "*.qq"))
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("check: no *.qq suites in %s", path)
	}
	sort.Strings(files)
	return files, nil
}

// checkRunner resolves policy references to query engines, caching one
// engine per distinct reference across suites.
type checkRunner struct {
	ctx      context.Context
	pipeline *core.Pipeline
	dataDir  string
	st       store.PolicyStore
	engines  map[string]*query.Engine
}

func (r *checkRunner) close() {
	if r.st != nil {
		r.st.Close()
	}
}

// engineFor resolves one canonical policy reference. Relative file:
// references resolve against baseDir (the suite file's directory), so a
// suite and its policy fixture can travel together. file: cache keys are
// absolutized and cleaned, so "file:./p.txt", "file:p.txt" and the -policy-file
// spelling of the same path all share one engine.
func (r *checkRunner) engineFor(ref, baseDir string) (*query.Engine, error) {
	kind, arg, ok := strings.Cut(ref, ":")
	if !ok {
		return nil, fmt.Errorf("invalid policy reference %q (want corpus:<name>, file:<path> or store:<id>[@n])", ref)
	}
	key := ref
	if kind == "file" {
		path := arg
		if !filepath.IsAbs(path) {
			path = filepath.Join(baseDir, path)
		}
		if abs, err := filepath.Abs(path); err == nil {
			path = abs
		}
		key = "file:" + filepath.Clean(path)
	}
	if eng, ok := r.engines[key]; ok {
		return eng, nil
	}
	var (
		eng *query.Engine
		err error
	)
	switch kind {
	case "corpus":
		text := corpusText(arg)
		if text == "" {
			return nil, fmt.Errorf("unknown corpus %q (tiktak|metabook|healthtrack|mini)", arg)
		}
		eng, err = r.analyzeText(text)
	case "file":
		var text string
		if text, err = readPolicy(strings.TrimPrefix(key, "file:")); err == nil {
			eng, err = r.analyzeText(text)
		}
	case "store":
		eng, err = r.storeEngine(arg)
	default:
		err = fmt.Errorf("unknown policy reference kind %q in %q", kind, ref)
	}
	if err != nil {
		return nil, err
	}
	r.engines[key] = eng
	return eng, nil
}

func (r *checkRunner) analyzeText(text string) (*query.Engine, error) {
	a, err := r.pipeline.Analyze(r.ctx, text)
	if err != nil {
		return nil, err
	}
	return a.Engine, nil
}

// storeEngine rebuilds a stored version's engine via the analysis codec —
// the same path the server uses, so check verdicts match served verdicts.
func (r *checkRunner) storeEngine(arg string) (*query.Engine, error) {
	if r.dataDir == "" {
		return nil, fmt.Errorf("store:%s requires -data <store directory>", arg)
	}
	if r.st == nil {
		st, err := store.OpenDisk(r.dataDir, store.Options{})
		if err != nil {
			return nil, err
		}
		r.st = st
	}
	id, n, err := splitVersionRef(arg)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		pol, err := r.st.Get(id)
		if err != nil {
			return nil, err
		}
		n = pol.Versions
	}
	payload, err := r.st.LoadPayload(id, n)
	if err != nil {
		return nil, err
	}
	a, err := r.pipeline.DecodeAnalysis(payload)
	if err != nil {
		return nil, err
	}
	return a.Engine, nil
}

// splitVersionRef parses "id" or "id@n" (n=0 means latest).
func splitVersionRef(arg string) (id string, n int, err error) {
	id, ver, ok := strings.Cut(arg, "@")
	if id == "" {
		return "", 0, fmt.Errorf("empty policy id in %q", arg)
	}
	if !ok {
		return id, 0, nil
	}
	n, err = strconv.Atoi(ver)
	if err != nil || n < 1 {
		return "", 0, fmt.Errorf("invalid version %q (want a positive integer)", ver)
	}
	return id, n, nil
}

// corpusText maps a corpus name to its bundled policy ("" = unknown).
func corpusText(name string) string {
	switch name {
	case "tiktak":
		return corpus.TikTak()
	case "metabook":
		return corpus.MetaBook()
	case "healthtrack":
		return corpus.HealthTrack()
	case "mini":
		return corpus.Mini()
	}
	return ""
}

// writeReports renders the JUnit and JSON artifacts.
func writeReports(results []*scenario.SuiteResult, junitPath, jsonPath string) error {
	if junitPath != "" {
		f, err := os.Create(junitPath)
		if err != nil {
			return err
		}
		if err := scenario.WriteJUnit(f, results); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := scenario.WriteJSON(f, scenario.NewReport(results)); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
