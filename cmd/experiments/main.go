// Command experiments regenerates every table and evaluation claim of the
// paper. Each -exp value corresponds to one row of the experiment index in
// DESIGN.md; -exp all runs the full battery and prints paper-vs-measured
// tables suitable for EXPERIMENTS.md.
//
// Usage:
//
//	experiments -exp table1|table2|table3|similarity|scaling|smt|incremental|contradictions|verdicts|smtlib|domains|wholepolicy|scenarios|recovery|boot|all
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"github.com/privacy-quagmire/quagmire/internal/experiments"
	"github.com/privacy-quagmire/quagmire/internal/smt"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run")
	flag.Parse()
	if err := run(*exp); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(exp string) error {
	ctx := context.Background()
	all := exp == "all"

	if all || exp == "table1" {
		fmt.Println("== Table 1: extraction statistics ==")
		rows, err := experiments.Table1(ctx)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderTable1(append(experiments.PaperTable1(), rows...)))
		fmt.Println()
	}
	if all || exp == "table2" {
		fmt.Println("== Table 2: TikTak statement decomposition ==")
		rows, err := experiments.Table2(ctx)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderDecomp(rows))
		fmt.Println()
	}
	if all || exp == "table3" {
		fmt.Println("== Table 3: MetaBook statement decomposition ==")
		rows, err := experiments.Table3(ctx)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderDecomp(rows))
		fmt.Println()
	}
	if all || exp == "similarity" {
		fmt.Println("== E1: embedding similarity claims (§4.2) ==")
		fmt.Print(experiments.RenderSimilarity(experiments.SimilarityClaims()))
		fmt.Println()
	}
	if all || exp == "scaling" {
		fmt.Println("== E2: extraction scaling with policy size ==")
		rows, err := experiments.ScalingSweep(ctx, []int{50, 100, 200, 400, 800})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderScaling(rows))
		fmt.Println()
	}
	if all || exp == "smt" {
		fmt.Println("== E3: SMT solver clause-count sweep (timeout behaviour) ==")
		limits := smt.Limits{MaxInstantiations: 20000, MaxSatSteps: 2_000_000, MaxRounds: 2}
		rows := experiments.SMTSweep([]int{2, 5, 10, 25, 50, 100, 200, 400}, limits)
		fmt.Print(experiments.RenderSMT(rows))
		fmt.Println()
	}
	if all || exp == "incremental" {
		fmt.Println("== E4: incremental update cost vs edit fraction ==")
		rows, err := experiments.IncrementalSweep(ctx, []float64{0.01, 0.05, 0.10, 0.25, 0.50})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderIncremental(rows))
		fmt.Println()
	}
	if all || exp == "contradictions" {
		fmt.Println("== E5: PolicyLint-style apparent contradictions ==")
		sum, err := experiments.Contradictions(ctx, 40)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderLint(sum))
		fmt.Println()
	}
	if all || exp == "verdicts" {
		fmt.Println("== E6: end-to-end verdict mapping (unsat⇒VALID, sat⇒INVALID) ==")
		rows, err := experiments.Verdicts(ctx)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderVerdicts(rows))
		fmt.Println()
	}
	if all || exp == "smtlib" {
		fmt.Println("== §4.4: valid SMT-LIB generated for both policies ==")
		lines, err := experiments.SMTLIBValidity(ctx)
		if err != nil {
			return err
		}
		for _, l := range lines {
			fmt.Println(l)
		}
		fmt.Println()
	}
	if all || exp == "domains" {
		fmt.Println("== E7: cross-domain generalization (consumer vs clinical) ==")
		rows, err := experiments.Domains(ctx)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderDomains(rows))
		fmt.Println()
	}
	if all || exp == "fleet" {
		fmt.Println("== MAPS-style fleet aggregation (related-work comparison) ==")
		rows, denySale, vagueRate, err := experiments.Fleet(ctx, 25)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderFleet(rows, denySale, vagueRate))
		fmt.Println()
	}
	if all || exp == "wholepolicy" {
		fmt.Println("== A3 context: subgraph vs whole-policy encoding ==")
		rows, err := experiments.WholePolicyComparison(ctx, smt.Limits{MaxInstantiations: 20000})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderWholePolicy(rows))
		fmt.Println()
	}
	if all || exp == "scenarios" {
		fmt.Println("== E14: compliance-as-code suite throughput (shared core vs per-ask subgraph) ==")
		rows, err := experiments.ScenarioThroughput(ctx, 24)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderScenarios(rows))
		fmt.Println()
	}
	if all || exp == "recovery" {
		fmt.Println("== E12: policy store crash recovery (WAL replay + engine rebuild) ==")
		rows, err := experiments.RecoverySweep(ctx, []int{1, 5, 10, 25, 50})
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderRecovery(rows))
		fmt.Println()
	}
	if all || exp == "boot" {
		fmt.Println("== E17: cold-boot cost (WAL replay vs indexed v2 open vs eager decode) ==")
		counts := []int{25, 100}
		if exp == "boot" {
			counts = []int{100, 1000}
		}
		rows, err := experiments.BootSweep(ctx, counts)
		if err != nil {
			return err
		}
		fmt.Print(experiments.RenderBoot(rows))
		fmt.Println()
	}
	return nil
}
