package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

func captureRun(t *testing.T, exp string) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	done := make(chan string, 1)
	go func() {
		data, _ := io.ReadAll(r)
		done <- string(data)
	}()
	runErr := run(exp)
	w.Close()
	os.Stdout = old
	if runErr != nil {
		t.Fatal(runErr)
	}
	return <-done
}

func TestRunSimilarityExperiment(t *testing.T) {
	out := captureRun(t, "similarity")
	if !strings.Contains(out, "email address") || !strings.Contains(out, "Cosine") {
		t.Errorf("similarity output:\n%s", out)
	}
}

func TestRunVerdictsExperiment(t *testing.T) {
	out := captureRun(t, "verdicts")
	if !strings.Contains(out, "VALID") || strings.Contains(out, "MISMATCH") {
		t.Errorf("verdicts output:\n%s", out)
	}
}

func TestRunTable2Experiment(t *testing.T) {
	out := captureRun(t, "table2")
	if !strings.Contains(out, "[user]-provide->[age]") {
		t.Errorf("table2 output:\n%s", out)
	}
}
