// Command quagmired serves the pipeline as a JSON HTTP API (see
// internal/server for the endpoint reference). It shuts down gracefully on
// SIGINT/SIGTERM.
//
// Usage:
//
//	quagmired -addr :8080 [-data DIR] [-max-instantiations N] [-preload]
//	          [-read-timeout D] [-solve-timeout D] [-max-solves N]
//	          [-solve-queue N] [-queue-wait D] [-drain-timeout D]
//	          [-lazy-recovery=BOOL] [-warm-workers N]
//	          [-corpus-workers N] [-corpus-policy-timeout D]
//	          [-follow URL]
//
// With -data the policy store is durable: every policy version is logged
// to DIR's write-ahead log before it is acknowledged, a restart recovers
// the full registry, and a clean shutdown compacts the log into a
// snapshot. Without -data policies live in memory and die with the
// process.
//
// Recovery is lazy by default: boot indexes the store without decoding
// payloads (boot-to-ready is independent of policy count), each policy's
// query engine builds on its first query, and a -warm-workers pool fills
// the remaining engines in the background. A payload that fails to decode
// quarantines that one policy (served as 503, listed with a marker,
// /healthz degraded) instead of refusing boot. -lazy-recovery=false
// restores the eager rebuild-everything-before-serving behavior.
//
// With -follow the process is a read replica: it bootstraps its -data
// directory from the primary's snapshot stream, tails the primary's WAL
// stream to stay current, serves the entire read surface off the
// replicated store (lazy recovery and quarantine included), and rejects
// writes with 403 plus an X-Quagmire-Primary pointer. /healthz gains a
// replica section with lag and connection state. Replication is
// asynchronous — read-your-writes holds only on the primary.
//
// With -preload the bundled TikTak and MetaBook corpora are analyzed and
// registered at startup, so the API is immediately explorable:
//
//	curl localhost:8080/v1/policies
//	curl -X POST localhost:8080/v1/policies/p1/query \
//	     -d '{"question":"Does TikTak collect my phone number?"}'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/corpus"
	"github.com/privacy-quagmire/quagmire/internal/replica"
	"github.com/privacy-quagmire/quagmire/internal/server"
	"github.com/privacy-quagmire/quagmire/internal/smt"
	"github.com/privacy-quagmire/quagmire/internal/store"
)

func main() {
	cfg := serveConfig{}
	flag.StringVar(&cfg.addr, "addr", ":8080", "listen address")
	flag.StringVar(&cfg.dataDir, "data", "", "directory for the durable policy store (empty = in-memory)")
	flag.IntVar(&cfg.maxInst, "max-instantiations", 0, "SMT quantifier-instantiation budget (0 = default)")
	flag.BoolVar(&cfg.preload, "preload", false, "analyze and register the bundled corpora at startup")
	flag.DurationVar(&cfg.readTimeout, "read-timeout", 0, "deadline for cheap read endpoints (0 = 2s, negative = off)")
	flag.DurationVar(&cfg.solveTimeout, "solve-timeout", 0, "deadline for solver/analysis endpoints (0 = 30s, negative = off)")
	flag.IntVar(&cfg.maxSolves, "max-solves", 0, "concurrent solver-backed requests admitted (0 = max(2, GOMAXPROCS), negative = unlimited)")
	flag.IntVar(&cfg.solveQueue, "solve-queue", 0, "solver requests allowed to queue for a slot (0 = 8×max-solves, negative = none)")
	flag.DurationVar(&cfg.queueWait, "queue-wait", 0, "longest a queued solver request waits before a 429 (0 = 2s)")
	flag.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "how long shutdown waits for in-flight requests")
	flag.BoolVar(&cfg.lazyRecovery, "lazy-recovery", true, "index stored policies at boot and build engines on demand (false = rebuild everything before serving)")
	flag.IntVar(&cfg.warmWorkers, "warm-workers", 0, "background engine-warmer pool size after lazy recovery (0 = default, negative = off)")
	flag.IntVar(&cfg.corpusWorkers, "corpus-workers", 0, "worker pool size for the /v1/corpus fan-out endpoints (0 = max(2, GOMAXPROCS))")
	flag.DurationVar(&cfg.corpusPolicyTimeout, "corpus-policy-timeout", 0, "per-policy deadline inside a corpus query (0 = 5s, negative = off)")
	flag.StringVar(&cfg.follow, "follow", "", "primary base URL to replicate from; this process becomes a read-only follower (requires -data)")
	flag.Parse()

	logger := log.New(os.Stderr, "quagmired ", log.LstdFlags)
	if err := run(cfg, logger); err != nil {
		logger.Fatal(err)
	}
}

type serveConfig struct {
	addr, dataDir             string
	maxInst                   int
	preload                   bool
	readTimeout, solveTimeout time.Duration
	maxSolves, solveQueue     int
	queueWait, drainTimeout   time.Duration
	lazyRecovery              bool
	warmWorkers               int
	corpusWorkers             int
	corpusPolicyTimeout       time.Duration
	follow                    string
}

func run(cfg serveConfig, logger *log.Logger) error {
	pipeline, err := core.New(core.Options{
		Limits: smt.Limits{MaxInstantiations: cfg.maxInst},
	})
	if err != nil {
		return err
	}
	var (
		policyStore store.PolicyStore
		follower    *replica.Follower
		replicaOpts *server.ReplicaOptions
	)
	switch {
	case cfg.follow != "":
		if cfg.dataDir == "" {
			return fmt.Errorf("-follow requires -data (the follower keeps a durable local copy)")
		}
		follower, err = replica.New(replica.Options{
			Primary: strings.TrimRight(cfg.follow, "/"),
			Dir:     cfg.dataDir,
			Store:   store.Options{Logger: logger, Obs: pipeline.Obs()},
			Logger:  logger,
		})
		if err != nil {
			return fmt.Errorf("open replica store: %w", err)
		}
		policyStore = follower
		replicaOpts = &server.ReplicaOptions{Primary: follower.Status().Primary, Status: follower.StatusAny}
		defer func() {
			if err := follower.Close(); err != nil {
				logger.Printf("replica close: %v", err)
			}
		}()
	case cfg.dataDir != "":
		disk, err := store.OpenDisk(cfg.dataDir, store.Options{Logger: logger, Obs: pipeline.Obs()})
		if err != nil {
			return fmt.Errorf("open policy store: %w", err)
		}
		policyStore = disk
		// Close after graceful shutdown: compacts the WAL into a snapshot so
		// the next start replays nothing. A crash skips this and recovers
		// from the log instead.
		defer func() {
			if err := disk.Close(); err != nil {
				logger.Printf("store close: %v", err)
			}
		}()
	}
	srv, err := server.New(server.Options{
		Pipeline:     pipeline,
		Store:        policyStore,
		SolverLimits: smt.Limits{MaxInstantiations: cfg.maxInst},
		Logger:       logger,
		Timeouts: server.Timeouts{
			Read:  cfg.readTimeout,
			Solve: cfg.solveTimeout,
		},
		Admission: server.AdmissionConfig{
			MaxConcurrent: cfg.maxSolves,
			MaxQueue:      cfg.solveQueue,
			QueueWait:     cfg.queueWait,
		},
		Recovery: server.RecoveryOptions{
			Eager:       !cfg.lazyRecovery,
			WarmWorkers: cfg.warmWorkers,
		},
		Corpus: server.CorpusConfig{
			Workers:       cfg.corpusWorkers,
			PolicyTimeout: cfg.corpusPolicyTimeout,
		},
		Replica: replicaOpts,
	})
	if err != nil {
		return err
	}
	// Stop the background warmer before the store closes (deferred above
	// runs last), whether we exit through drain or a listener error.
	defer srv.Close()
	if follower != nil {
		// Tail only once the server exists: each applied record installs its
		// live engine cell, and a re-bootstrap reloads the whole live map.
		follower.Start(replica.Hooks{OnApply: srv.ApplyReplicated, OnReload: srv.ReloadReplicated})
		logger.Printf("following %s from seq %d", cfg.follow, follower.Seq())
	}

	httpSrv := &http.Server{
		Addr:              cfg.addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	if cfg.preload {
		go preloadCorpora(cfg.addr, logger)
	}

	errCh := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s", cfg.addr)
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-stop:
		// Drain: stop accepting, let in-flight requests finish under the
		// drain deadline, then (deferred above) close the store so the WAL
		// compacts into a snapshot and the next start replays nothing.
		logger.Printf("received %s, draining for up to %s", sig, cfg.drainTimeout)
		ctx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		return <-errCh
	}
}

// preloadCorpora registers the bundled policies through the public API once
// the listener is up, exercising the same code path as external clients.
func preloadCorpora(addr string, logger *log.Logger) {
	base := "http://" + addr
	if addr[0] == ':' {
		base = "http://localhost" + addr
	}
	client := &http.Client{Timeout: 5 * time.Minute}
	// Wait for readiness.
	for i := 0; i < 50; i++ {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			resp.Body.Close()
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	for _, pol := range []struct{ name, text string }{
		{"TikTak", corpus.TikTak()},
		{"MetaBook", corpus.MetaBook()},
	} {
		body := fmt.Sprintf(`{"name":%q,"text":%q}`, pol.name, pol.text)
		resp, err := client.Post(base+"/v1/policies", "application/json", strings.NewReader(body))
		if err != nil {
			logger.Printf("preload %s failed: %v", pol.name, err)
			continue
		}
		resp.Body.Close()
		logger.Printf("preloaded %s (%d)", pol.name, resp.StatusCode)
	}
}
