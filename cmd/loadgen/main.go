// Command loadgen replays a mixed read/solve workload against a quagmired
// server and reports latency percentiles, throughput, and shed rate. It
// exists to measure the overload behavior pinned by the server's admission
// control (EXPERIMENTS.md E13): as offered load exceeds the solver cap,
// reads should stay fast, excess solves should shed quickly with 429, and
// nothing should hang.
//
// Usage:
//
//	loadgen -url http://localhost:8080 -duration 10s -concurrency 32 -read-fraction 0.8
//	        [-corpus-fraction 0.2 -corpus-policies 10]
//
// With no -url, loadgen self-hosts an in-process server (in-memory store)
// on a loopback listener, so the experiment is reproducible with no
// external setup. The request mix is deterministic: of every worker's 10
// requests, the first read-fraction×10 are cheap reads, the next
// corpus-fraction×10 hit the /v1/corpus endpoints (alternating the
// aggregate stats read and the fan-out query, for E16), and the rest are
// per-policy solves.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/corpus"
	"github.com/privacy-quagmire/quagmire/internal/server"
)

func main() {
	cfg := config{}
	flag.StringVar(&cfg.url, "url", "", "target server base URL (empty = self-host an in-process server)")
	flag.DurationVar(&cfg.duration, "duration", 10*time.Second, "how long to offer load")
	flag.IntVar(&cfg.concurrency, "concurrency", 16, "concurrent client workers")
	flag.Float64Var(&cfg.readFraction, "read-fraction", 0.8, "fraction of requests that are cheap reads (0..1)")
	flag.Float64Var(&cfg.corpusFraction, "corpus-fraction", 0, "fraction of requests that hit the /v1/corpus endpoints (0..1); the remainder after reads and corpus are solves")
	flag.IntVar(&cfg.corpusPolicies, "corpus-policies", 5, "extra policies seeded for corpus sweeps (corpus-fraction > 0 only)")
	flag.IntVar(&cfg.maxSolves, "max-solves", 0, "self-host only: solver admission cap (0 = default)")
	flag.IntVar(&cfg.solveQueue, "solve-queue", 0, "self-host only: solver admission queue bound (0 = default)")
	flag.DurationVar(&cfg.queueWait, "queue-wait", 0, "self-host only: longest queue wait before a 429 (0 = default)")
	flag.BoolVar(&cfg.noCache, "no-cache", false, "self-host only: disable the SMT result cache so every solve pays full price")
	flag.StringVar(&cfg.replicas, "replica", "", "comma-separated follower base URLs; reads, corpus sweeps and solver queries round-robin across them while writes still hit -url (the primary)")
	flag.Parse()

	logger := log.New(os.Stderr, "loadgen ", log.LstdFlags)
	rep, err := run(cfg, logger)
	if err != nil {
		logger.Fatal(err)
	}
	fmt.Print(rep.String())
}

type config struct {
	url            string
	duration       time.Duration
	concurrency    int
	readFraction   float64
	corpusFraction float64
	corpusPolicies int
	maxSolves      int
	solveQueue     int
	queueWait      time.Duration
	noCache        bool
	replicas       string
}

// classStats aggregates one request class (read or solve).
type classStats struct {
	Name      string
	Latencies []time.Duration // successful (2xx) requests only
	OK        int
	Shed      int // 429
	Timeout   int // 504
	Errors    int // transport errors and any other non-2xx
}

type report struct {
	Elapsed time.Duration
	Classes []*classStats
}

// percentile returns the p-th percentile (0..100) of ds by
// nearest-rank on the sorted slice; zero for an empty slice.
func percentile(ds []time.Duration, p float64) time.Duration {
	if len(ds) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(ds))
	copy(sorted, ds)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

func (r report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ran %s\n", r.Elapsed.Round(time.Millisecond))
	fmt.Fprintf(&b, "%-6s %8s %8s %8s %8s %10s %10s %10s %9s\n",
		"class", "total", "ok", "shed", "errors", "p50", "p90", "p99", "req/s")
	for _, c := range r.Classes {
		total := c.OK + c.Shed + c.Timeout + c.Errors
		fmt.Fprintf(&b, "%-6s %8d %8d %8d %8d %10s %10s %10s %9.1f\n",
			c.Name, total, c.OK, c.Shed, c.Timeout+c.Errors,
			percentile(c.Latencies, 50).Round(time.Microsecond),
			percentile(c.Latencies, 90).Round(time.Microsecond),
			percentile(c.Latencies, 99).Round(time.Microsecond),
			float64(total)/r.Elapsed.Seconds())
		if total > 0 && c.Shed > 0 {
			fmt.Fprintf(&b, "%-6s shed rate %.1f%%\n", c.Name, 100*float64(c.Shed)/float64(total))
		}
	}
	return b.String()
}

// run offers the configured load and aggregates per-class outcomes. It is
// the whole tool minus flag parsing, so tests drive it directly.
func run(cfg config, logger *log.Logger) (report, error) {
	if cfg.concurrency < 1 {
		return report{}, fmt.Errorf("concurrency must be >= 1")
	}
	if cfg.readFraction < 0 || cfg.readFraction > 1 {
		return report{}, fmt.Errorf("read-fraction must be in [0,1]")
	}
	if cfg.corpusFraction < 0 || cfg.readFraction+cfg.corpusFraction > 1 {
		return report{}, fmt.Errorf("corpus-fraction must be >= 0 and read-fraction+corpus-fraction <= 1")
	}
	base := cfg.url
	if base == "" {
		stop, url, err := selfHost(cfg, logger)
		if err != nil {
			return report{}, err
		}
		defer stop()
		base = url
	}
	base = strings.TrimRight(base, "/")

	// Writes (seeding) always target the primary; read-shaped traffic
	// round-robins across the follower fleet when -replica is given —
	// the deployment shape replication exists for.
	readBases := []string{base}
	if cfg.replicas != "" {
		readBases = readBases[:0]
		for _, r := range strings.Split(cfg.replicas, ",") {
			if r = strings.TrimSpace(r); r != "" {
				readBases = append(readBases, strings.TrimRight(r, "/"))
			}
		}
		if len(readBases) == 0 {
			return report{}, fmt.Errorf("-replica given but no usable URLs in %q", cfg.replicas)
		}
	}

	id, err := seedPolicy(base)
	if err != nil {
		return report{}, fmt.Errorf("seed policy: %w", err)
	}

	solveBody := `{"question":"Does Acme share my email address with advertising partners?"}`
	corpusBody := `{"query":"Does Acme share my email address with advertising partners?"}`
	readSlots := int(cfg.readFraction*10 + 0.5) // of every 10 requests
	corpusSlots := int(cfg.corpusFraction*10 + 0.5)
	if readSlots+corpusSlots > 10 {
		corpusSlots = 10 - readSlots
	}
	if corpusSlots > 0 {
		// Corpus sweeps over a one-policy store measure nothing; widen it.
		if err := seedCorpusPolicies(base, cfg.corpusPolicies); err != nil {
			return report{}, fmt.Errorf("seed corpus: %w", err)
		}
	}
	if cfg.replicas != "" {
		// Replication is async: give every follower a chance to apply the
		// seeds before offering load, or the warm-up 404s pollute the error
		// counts.
		if err := waitForReplicas(readBases, id, logger); err != nil {
			return report{}, err
		}
	}

	client := &http.Client{Timeout: 2 * time.Minute}
	start := time.Now()
	deadline := start.Add(cfg.duration)
	perWorker := make([][3]classStats, cfg.concurrency)
	var wg sync.WaitGroup
	for w := 0; w < cfg.concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			read := &perWorker[w][0]
			solve := &perWorker[w][1]
			corp := &perWorker[w][2]
			for i := 0; time.Now().Before(deadline); i++ {
				var (
					cs    *classStats
					begin = time.Now()
					resp  *http.Response
					err   error
				)
				target := readBases[(w+i)%len(readBases)]
				switch slot := i % 10; {
				case slot < readSlots:
					cs = read
					resp, err = client.Get(target + "/v1/policies/" + id)
				case slot < readSlots+corpusSlots:
					// Alternate the aggregate read and the fan-out query so
					// both corpus endpoints see load.
					cs = corp
					if i%2 == 0 {
						resp, err = client.Get(target + "/v1/corpus/stats")
					} else {
						resp, err = client.Post(target+"/v1/corpus/query", "application/json", strings.NewReader(corpusBody))
					}
				default:
					cs = solve
					resp, err = client.Post(target+"/v1/policies/"+id+"/query", "application/json", strings.NewReader(solveBody))
				}
				if err != nil {
					cs.Errors++
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch {
				case resp.StatusCode < 300:
					cs.OK++
					cs.Latencies = append(cs.Latencies, time.Since(begin))
				case resp.StatusCode == http.StatusTooManyRequests:
					cs.Shed++
				case resp.StatusCode == http.StatusGatewayTimeout:
					cs.Timeout++
				default:
					cs.Errors++
				}
			}
		}(w)
	}
	wg.Wait()

	rep := report{
		Elapsed: time.Since(start),
		Classes: []*classStats{{Name: "read"}, {Name: "solve"}, {Name: "corpus"}},
	}
	for w := range perWorker {
		for i, cs := range perWorker[w] {
			agg := rep.Classes[i]
			agg.OK += cs.OK
			agg.Shed += cs.Shed
			agg.Timeout += cs.Timeout
			agg.Errors += cs.Errors
			agg.Latencies = append(agg.Latencies, cs.Latencies...)
		}
	}
	return rep, nil
}

// selfHost serves an in-process server (in-memory store) on loopback and
// returns a shutdown func plus its base URL.
func selfHost(cfg config, logger *log.Logger) (stop func(), url string, err error) {
	cacheSize := 0 // default-sized SMT result cache
	if cfg.noCache {
		cacheSize = -1
	}
	p, err := core.New(core.Options{SMTCacheSize: cacheSize})
	if err != nil {
		return nil, "", err
	}
	srv, err := server.New(server.Options{
		Pipeline: p,
		Logger:   logger,
		Admission: server.AdmissionConfig{
			MaxConcurrent: cfg.maxSolves,
			MaxQueue:      cfg.solveQueue,
			QueueWait:     cfg.queueWait,
		},
	})
	if err != nil {
		return nil, "", err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, "", err
	}
	httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
	go func() { _ = httpSrv.Serve(ln) }()
	return func() { _ = httpSrv.Close() }, "http://" + ln.Addr().String(), nil
}

// waitForReplicas polls each read target until it serves the seeded
// policy (followers apply the primary's writes asynchronously).
func waitForReplicas(bases []string, id string, logger *log.Logger) error {
	deadline := time.Now().Add(30 * time.Second)
	for _, b := range bases {
		url := b + "/v1/policies/" + id
		for {
			resp, err := http.Get(url)
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					break
				}
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("replica %s never served seeded policy %s", b, id)
			}
			time.Sleep(50 * time.Millisecond)
		}
		logger.Printf("replica %s caught up on seed policy", b)
	}
	return nil
}

// seedCorpusPolicies registers n extra generated policies so corpus
// sweeps have real fan-out width.
func seedCorpusPolicies(base string, n int) error {
	for i := 0; i < n; i++ {
		text := corpus.Generate(corpus.Config{
			Company: fmt.Sprintf("Load%d", i), Seed: int64(i + 1),
			PracticeStatements: 8, DataRichness: 12, EntityRichness: 12,
		})
		body := fmt.Sprintf(`{"name":"load-%d","text":%q}`, i, text)
		resp, err := http.Post(base+"/v1/policies", "application/json", strings.NewReader(body))
		if err != nil {
			return err
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			return fmt.Errorf("create load-%d = %d: %s", i, resp.StatusCode, raw)
		}
	}
	return nil
}

// seedPolicy registers the Mini corpus policy and returns its ID.
func seedPolicy(base string) (string, error) {
	body := fmt.Sprintf(`{"name":"mini","text":%q}`, corpus.Mini())
	resp, err := http.Post(base+"/v1/policies", "application/json", strings.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusCreated {
		return "", fmt.Errorf("create = %d: %s", resp.StatusCode, raw)
	}
	var created struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(raw, &created); err != nil {
		return "", err
	}
	return created.ID, nil
}
