package main

import (
	"log"
	"testing"
	"time"
)

func TestPercentile(t *testing.T) {
	ms := func(vs ...int) []time.Duration {
		out := make([]time.Duration, len(vs))
		for i, v := range vs {
			out[i] = time.Duration(v) * time.Millisecond
		}
		return out
	}
	cases := []struct {
		name string
		ds   []time.Duration
		p    float64
		want time.Duration
	}{
		{"empty", nil, 50, 0},
		{"single", ms(7), 99, 7 * time.Millisecond},
		{"median of ten", ms(10, 9, 8, 7, 6, 5, 4, 3, 2, 1), 50, 5 * time.Millisecond},
		{"p99 of ten", ms(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 99, 10 * time.Millisecond},
		{"p90 of ten", ms(1, 2, 3, 4, 5, 6, 7, 8, 9, 10), 90, 9 * time.Millisecond},
		{"p0 clamps to min", ms(3, 1, 2), 0, 1 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := percentile(tc.ds, tc.p); got != tc.want {
			t.Errorf("%s: percentile(p=%v) = %v, want %v", tc.name, tc.p, got, tc.want)
		}
	}
	// percentile must not mutate its input.
	in := ms(3, 1, 2)
	percentile(in, 50)
	if in[0] != 3*time.Millisecond {
		t.Error("percentile sorted the caller's slice")
	}
}

func TestRunSelfHostSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke test skipped in -short")
	}
	rep, err := run(config{
		duration:     500 * time.Millisecond,
		concurrency:  4,
		readFraction: 0.5,
	}, log.New(discard{}, "", 0))
	if err != nil {
		t.Fatal(err)
	}
	var total int
	for _, c := range rep.Classes {
		total += c.OK + c.Shed + c.Timeout + c.Errors
	}
	if total == 0 {
		t.Fatal("no requests issued")
	}
	reads, solves := rep.Classes[0], rep.Classes[1]
	if reads.OK == 0 {
		t.Errorf("no successful reads: %+v", reads)
	}
	if solves.OK+solves.Shed == 0 {
		t.Errorf("no solve outcomes: %+v", solves)
	}
	if reads.Errors+solves.Errors != 0 {
		t.Errorf("transport/server errors under light load: reads %d, solves %d",
			reads.Errors, solves.Errors)
	}
	if out := rep.String(); out == "" {
		t.Error("empty report")
	}
}

func TestRunCorpusMixSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("load smoke test skipped in -short")
	}
	rep, err := run(config{
		duration:       500 * time.Millisecond,
		concurrency:    2,
		readFraction:   0.5,
		corpusFraction: 0.3,
		corpusPolicies: 2,
	}, log.New(discard{}, "", 0))
	if err != nil {
		t.Fatal(err)
	}
	corp := rep.Classes[2]
	if corp.Name != "corpus" {
		t.Fatalf("third class = %q, want corpus", corp.Name)
	}
	if corp.OK == 0 {
		t.Errorf("no successful corpus requests: %+v", corp)
	}
	if corp.Errors != 0 {
		t.Errorf("corpus errors under light load: %+v", corp)
	}
}

func TestRunRejectsBadFractions(t *testing.T) {
	logger := log.New(discard{}, "", 0)
	if _, err := run(config{duration: time.Millisecond, concurrency: 1, readFraction: 0.8, corpusFraction: 0.5}, logger); err == nil {
		t.Error("read+corpus > 1 accepted")
	}
	if _, err := run(config{duration: time.Millisecond, concurrency: 1, corpusFraction: -0.1}, logger); err == nil {
		t.Error("negative corpus-fraction accepted")
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
