// Command benchguard compares a `go test -bench` run against the committed
// baseline (BENCH_PR3.json) and fails on performance regressions.
//
//	go test -run=NONE -bench ... -benchmem . | tee bench.txt
//	go run ./cmd/benchguard -baseline BENCH_PR3.json -current bench.txt
//
// Count-based units (allocs/op, B/op) are machine-independent and compared
// directly: current > baseline·(1+max_regression) fails. Time-based units
// (ns/…) are noisy across hosts, so they are normalized first: the median
// current/baseline ratio over all guarded time metrics estimates the
// host-speed factor, and a metric fails only when its own ratio exceeds
// median·(1+max_regression) — a uniform slowdown is a slower machine, an
// outlier is a regression.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

type baseline struct {
	MaxRegression float64                       `json:"max_regression"`
	Benchmarks    map[string]map[string]measure `json:"benchmarks"`
	Guard         []guardEntry                  `json:"guard"`
}

type measure map[string]float64

type guardEntry struct {
	Benchmark string `json:"benchmark"`
	Unit      string `json:"unit"`
}

var cpuSuffix = regexp.MustCompile(`-\d+$`)

// lookup finds a benchmark by its base name. Go appends -GOMAXPROCS to
// benchmark names (omitted when GOMAXPROCS=1), and sub-benchmark names can
// themselves end in -<digits>, so stripping unconditionally is ambiguous:
// try the exact name first, then any raw name whose suffix-stripped form
// matches.
func lookup(m map[string]measure, name string) (measure, bool) {
	if v, ok := m[name]; ok {
		return v, true
	}
	for raw, v := range m {
		if cpuSuffix.ReplaceAllString(raw, "") == name {
			return v, true
		}
	}
	return nil, false
}

// parseBench reads `go test -bench` output into benchmark → unit → value,
// keyed by the raw printed name. Repeated runs of a benchmark are averaged.
func parseBench(r io.Reader) (map[string]measure, error) {
	out := map[string]measure{}
	counts := map[string]map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if out[name] == nil {
			out[name] = measure{}
			counts[name] = map[string]int{}
		}
		// fields[1] is the iteration count; the rest are value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("%s: bad value %q: %v", name, fields[i], err)
			}
			unit := fields[i+1]
			n := counts[name][unit]
			out[name][unit] = (out[name][unit]*float64(n) + v) / float64(n+1)
			counts[name][unit]++
		}
	}
	return out, sc.Err()
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_PR3.json", "committed baseline JSON")
	currentPath := flag.String("current", "-", "bench output to check (- for stdin)")
	maxRegress := flag.Float64("max-regress", 0, "override the baseline's max_regression")
	flag.Parse()

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatal(err)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fatal(fmt.Errorf("%s: %v", *baselinePath, err))
	}
	limit := base.MaxRegression
	if *maxRegress > 0 {
		limit = *maxRegress
	}
	if limit <= 0 {
		limit = 0.20
	}

	var in io.Reader = os.Stdin
	if *currentPath != "-" {
		f, err := os.Open(*currentPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}
	current, err := parseBench(in)
	if err != nil {
		fatal(err)
	}

	type check struct {
		guardEntry
		base, cur, ratio float64
		timeBased        bool
	}
	var checks []check
	var timeRatios []float64
	for _, g := range base.Guard {
		ref, ok := base.Benchmarks[g.Benchmark]["after"]
		if !ok || ref[g.Unit] == 0 {
			fatal(fmt.Errorf("baseline has no 'after' %s for %s", g.Unit, g.Benchmark))
		}
		cur, ok := lookup(current, g.Benchmark)
		if !ok {
			fatal(fmt.Errorf("current run is missing %s (did the bench filter change?)", g.Benchmark))
		}
		v, ok := cur[g.Unit]
		if !ok {
			fatal(fmt.Errorf("current run of %s has no %s metric", g.Benchmark, g.Unit))
		}
		c := check{guardEntry: g, base: ref[g.Unit], cur: v, ratio: v / ref[g.Unit],
			timeBased: strings.HasPrefix(g.Unit, "ns/")}
		if c.timeBased {
			timeRatios = append(timeRatios, c.ratio)
		}
		checks = append(checks, c)
	}

	hostFactor := 1.0
	if len(timeRatios) > 0 {
		sort.Float64s(timeRatios)
		hostFactor = timeRatios[len(timeRatios)/2]
	}

	failed := false
	for _, c := range checks {
		allowed := 1 + limit
		norm := c.ratio
		if c.timeBased {
			norm = c.ratio / hostFactor
		}
		status := "ok"
		if norm > allowed {
			status = "REGRESSION"
			failed = true
		}
		fmt.Printf("%-50s %-12s base=%-14.0f cur=%-14.0f x%.2f (norm x%.2f, limit x%.2f) %s\n",
			c.Benchmark, c.Unit, c.base, c.cur, c.ratio, norm, allowed, status)
	}
	if len(timeRatios) > 0 {
		fmt.Printf("host speed factor (median time ratio): x%.2f\n", hostFactor)
	}
	if failed {
		fmt.Println("benchguard: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchguard: PASS")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchguard:", err)
	os.Exit(1)
}
