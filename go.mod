module github.com/privacy-quagmire/quagmire

go 1.22
