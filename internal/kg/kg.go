// Package kg implements Phase 2 of the pipeline: construction of the
// entity–data knowledge graph (who performs which actions on what data,
// with conditions as boolean predicates on edges) and the Chain-of-Layer
// data and entity hierarchies — Algorithm 1 lines 11–17. Graphs persist
// across policy versions: segment-tracked edges enable branch-local
// incremental updates.
package kg

import (
	"context"
	"fmt"
	"sort"

	"github.com/privacy-quagmire/quagmire/internal/extract"
	"github.com/privacy-quagmire/quagmire/internal/graph"
	"github.com/privacy-quagmire/quagmire/internal/llm"
	"github.com/privacy-quagmire/quagmire/internal/nlp"
	"github.com/privacy-quagmire/quagmire/internal/segment"
	"github.com/privacy-quagmire/quagmire/internal/taxonomy"
)

// KnowledgeGraph is the Phase 2 output: the entity–data multigraph plus
// the two hierarchies.
type KnowledgeGraph struct {
	// Company is the policy's organization.
	Company string `json:"company"`
	// ED is the entity–data graph: [actor]-action->[object] edges with
	// condition predicates.
	ED *graph.Graph `json:"ed"`
	// DataH organizes data types by subsumption.
	DataH *graph.Hierarchy `json:"data_hierarchy"`
	// EntityH organizes entities by subsumption.
	EntityH *graph.Hierarchy `json:"entity_hierarchy"`
}

// Stats are the Table 1 extraction statistics.
type Stats struct {
	// Nodes is the total node count of the entity–data graph.
	Nodes int
	// Edges is the total data-practice edge count.
	Edges int
	// Entities is the number of distinct acting/receiving parties.
	Entities int
	// DataTypes is the number of distinct data types.
	DataTypes int
}

// Clone returns a deep copy of the knowledge graph, so an incremental
// update can build a new version while readers keep using the old one.
func (k *KnowledgeGraph) Clone() *KnowledgeGraph {
	return &KnowledgeGraph{
		Company: k.Company,
		ED:      k.ED.Clone(),
		DataH:   k.DataH.Clone(),
		EntityH: k.EntityH.Clone(),
	}
}

// Stats computes the Table 1 metrics for the graph.
func (k *KnowledgeGraph) Stats() Stats {
	entities := map[string]bool{}
	dataTypes := map[string]bool{}
	for _, e := range k.ED.Edges() {
		entities[e.From] = true
		if e.Other != "" {
			entities[e.Other] = true
		}
		dataTypes[e.To] = true
	}
	// Objects that also act are entities, not data types.
	for d := range dataTypes {
		if entities[d] {
			delete(dataTypes, d)
		}
	}
	return Stats{
		Nodes:     k.ED.NumNodes(),
		Edges:     k.ED.NumEdges(),
		Entities:  len(entities),
		DataTypes: len(dataTypes),
	}
}

// Entities returns the distinct acting/receiving parties, sorted.
func (k *KnowledgeGraph) Entities() []string {
	set := map[string]bool{}
	for _, e := range k.ED.Edges() {
		set[e.From] = true
		if e.Other != "" {
			set[e.Other] = true
		}
	}
	return sortedKeys(set)
}

// DataTypes returns the distinct data objects, sorted.
func (k *KnowledgeGraph) DataTypes() []string {
	set := map[string]bool{}
	ents := map[string]bool{}
	for _, e := range k.ED.Edges() {
		set[e.To] = true
		ents[e.From] = true
		if e.Other != "" {
			ents[e.Other] = true
		}
	}
	for d := range set {
		if ents[d] {
			delete(set, d)
		}
	}
	return sortedKeys(set)
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Builder constructs and updates knowledge graphs.
type Builder struct {
	// Taxonomy builds the hierarchies; required.
	Taxonomy *taxonomy.Builder
}

// NewBuilder returns a builder over the given taxonomy builder.
func NewBuilder(tb *taxonomy.Builder) *Builder { return &Builder{Taxonomy: tb} }

// edgeOf converts one extracted practice into a graph edge in the paper's
// [actor]-action->[object] form: the actor is the party performing the
// action (direction-dependent), the counterparty rides along as Other.
func edgeOf(p extract.Practice) graph.Edge {
	actorRole, otherRole := llm.FlowRoles(p.ParamSet)
	actor := nlp.CanonicalTerm(actorRole)
	other := nlp.CanonicalTerm(otherRole)
	if actorRole == otherRole {
		other = "" // self-directed action (use, store, process)
	}
	// Preserve original company capitalization for readability: parties
	// that look like proper names keep their case.
	if isProper(actorRole) {
		actor = actorRole
	}
	if isProper(otherRole) && other != "" {
		other = otherRole
	}
	return graph.Edge{
		From:       actor,
		To:         p.DataType,
		Label:      p.Action,
		Condition:  p.Condition,
		Permission: p.Permission,
		Subject:    p.Subject,
		Other:      other,
		SegmentID:  p.SegmentID,
	}
}

func isProper(s string) bool {
	return s != "" && s[0] >= 'A' && s[0] <= 'Z'
}

// Build constructs the knowledge graph from a Phase 1 extraction: the
// entity–data graph from the practices and both hierarchies via CoL.
func (b *Builder) Build(ctx context.Context, ex *extract.Extraction) (*KnowledgeGraph, error) {
	if b.Taxonomy == nil {
		return nil, fmt.Errorf("kg: Builder.Taxonomy is nil")
	}
	k := &KnowledgeGraph{Company: ex.Company, ED: graph.New()}
	for _, p := range ex.Practices {
		if p.DataType == "" || p.Sender == "" {
			continue
		}
		e := edgeOf(p)
		k.ED.AddNode(e.From, "entity")
		k.ED.AddNode(e.To, "data")
		if e.Other != "" {
			k.ED.AddNode(e.Other, "entity")
		}
		k.ED.AddEdge(e)
	}
	var err error
	k.DataH, err = b.Taxonomy.Build(ctx, "data", k.DataTypes())
	if err != nil {
		return nil, fmt.Errorf("kg: data hierarchy: %w", err)
	}
	k.EntityH, err = b.Taxonomy.Build(ctx, "entity", k.Entities())
	if err != nil {
		return nil, fmt.Errorf("kg: entity hierarchy: %w", err)
	}
	return k, nil
}

// UpdateStats reports what an incremental update touched.
type UpdateStats struct {
	// EdgesRemoved counts edges dropped with removed segments.
	EdgesRemoved int
	// EdgesAdded counts edges contributed by added segments.
	EdgesAdded int
	// NewTerms counts hierarchy terms introduced by the update.
	NewTerms int
}

// Update applies a policy-version change to an existing graph: edges of
// removed segments are dropped, practices of added segments are inserted,
// and only new terms are placed into the (otherwise preserved) hierarchies
// — the paper's "update just the affected portions of the graph while
// preserving the rest".
func (b *Builder) Update(ctx context.Context, k *KnowledgeGraph, diff segment.Diff, newEx *extract.Extraction) (UpdateStats, error) {
	var st UpdateStats
	for _, seg := range diff.Removed {
		st.EdgesRemoved += k.ED.RemoveSegment(seg.ID)
	}
	for _, seg := range diff.Added {
		for _, p := range newEx.BySegment[seg.ID] {
			if p.DataType == "" || p.Sender == "" {
				continue
			}
			e := edgeOf(p)
			k.ED.AddNode(e.From, "entity")
			k.ED.AddNode(e.To, "data")
			if e.Other != "" {
				k.ED.AddNode(e.Other, "entity")
			}
			k.ED.AddEdge(e)
			st.EdgesAdded++
		}
	}
	k.Company = newEx.Company
	// Place new terms into the existing hierarchies.
	n, err := b.extendHierarchy(ctx, k.DataH, "data", k.DataTypes())
	if err != nil {
		return st, err
	}
	st.NewTerms += n
	n, err = b.extendHierarchy(ctx, k.EntityH, "entity", k.Entities())
	if err != nil {
		return st, err
	}
	st.NewTerms += n
	return st, nil
}

// extendHierarchy adds missing terms to an existing hierarchy by running
// CoL layer prompts against the hierarchy's current nodes.
func (b *Builder) extendHierarchy(ctx context.Context, h *graph.Hierarchy, kind string, terms []string) (int, error) {
	var missing []string
	for _, t := range terms {
		c := nlp.CanonicalTerm(t)
		if c != "" && !h.Has(c) {
			missing = append(missing, c)
		}
	}
	if len(missing) == 0 {
		return 0, nil
	}
	// Build a mini-hierarchy over existing nodes + missing terms, then
	// graft only the missing terms' placements.
	tmp, err := b.Taxonomy.Build(ctx, kind, append(h.Terms(), missing...))
	if err != nil {
		return 0, err
	}
	added := 0
	// Insert parents before children among the missing set.
	pending := append([]string(nil), missing...)
	for len(pending) > 0 {
		progressed := false
		var next []string
		for _, m := range pending {
			if h.Has(m) {
				progressed = true
				continue
			}
			parent, ok := tmp.Parent(m)
			if !ok {
				parent = h.Root
			}
			if parent == tmp.Root {
				parent = h.Root
			}
			if h.Has(parent) {
				if err := h.Add(parent, m); err == nil {
					added++
					progressed = true
					continue
				}
			}
			next = append(next, m)
		}
		if !progressed {
			// Remaining terms have parents outside the hierarchy; attach
			// to root to preserve the appears-exactly-once invariant.
			for _, m := range next {
				if !h.Has(m) {
					if err := h.Add(h.Root, m); err == nil {
						added++
					}
				}
			}
			break
		}
		pending = next
	}
	return added, nil
}
