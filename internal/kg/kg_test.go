package kg

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/extract"
	"github.com/privacy-quagmire/quagmire/internal/llm"
	"github.com/privacy-quagmire/quagmire/internal/segment"
	"github.com/privacy-quagmire/quagmire/internal/taxonomy"
)

const policy = `# TikTak Privacy Policy

## Information We Collect

When you create an account, you may provide your email. We collect device information automatically.

We share usage data with service providers for legitimate business purposes.

If you choose to find other users through your phone contacts, we will access and collect names, phone numbers, and email addresses of contacts.

## Your Choices

We do not sell your personal information.`

func buildKG(t *testing.T, text string) (*Builder, *extract.Extraction, *KnowledgeGraph) {
	t.Helper()
	e := extract.New(llm.NewSim())
	ex, err := e.ExtractPolicy(context.Background(), text)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(&taxonomy.Builder{Client: llm.NewSim()})
	k, err := b.Build(context.Background(), ex)
	if err != nil {
		t.Fatal(err)
	}
	return b, ex, k
}

func TestBuildGraph(t *testing.T) {
	_, _, k := buildKG(t, policy)
	st := k.Stats()
	if st.Edges == 0 || st.Nodes == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Entities == 0 || st.DataTypes == 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.Entities+st.DataTypes > st.Nodes {
		t.Errorf("entity+data exceeds nodes: %+v", st)
	}
	// The company acts in the graph.
	if len(k.ED.Out("TikTak")) == 0 {
		t.Error("company has no outgoing practice edges")
	}
	// Conditions rode along onto edges.
	foundCond := false
	for _, e := range k.ED.Edges() {
		if strings.Contains(e.Condition, "legitimate business purposes") {
			foundCond = true
		}
	}
	if !foundCond {
		t.Error("condition predicate lost")
	}
	// Hierarchies contain the graph's terms.
	for _, d := range k.DataTypes() {
		if !k.DataH.Has(d) {
			t.Errorf("data type %q not in hierarchy", d)
		}
	}
	for _, en := range k.Entities() {
		// Proper-cased company is canonicalized inside the hierarchy.
		if !k.EntityH.Has(en) && !k.EntityH.Has(strings.ToLower(en)) {
			t.Errorf("entity %q not in hierarchy", en)
		}
	}
}

func TestEdgeDirectionality(t *testing.T) {
	_, _, k := buildKG(t, policy)
	// Outbound: share edge has Other = receiver.
	foundShare := false
	for _, e := range k.ED.Edges() {
		if e.Label == "share" && e.From == "TikTak" {
			foundShare = true
			if e.Other != "service provider" {
				t.Errorf("share edge Other = %q", e.Other)
			}
		}
	}
	if !foundShare {
		t.Error("no share edge found")
	}
	// User activities: user is the actor.
	foundProvide := false
	for _, e := range k.ED.Out("user") {
		if e.Label == "provide" {
			foundProvide = true
		}
	}
	if !foundProvide {
		t.Error("no [user]-provide-> edge")
	}
}

func TestDenyEdgesPreserved(t *testing.T) {
	_, _, k := buildKG(t, policy)
	foundDeny := false
	for _, e := range k.ED.Edges() {
		if e.Permission == "deny" && e.Label == "sell" {
			foundDeny = true
		}
	}
	if !foundDeny {
		t.Error("deny edge lost")
	}
}

func TestSubsumptionInference(t *testing.T) {
	_, _, k := buildKG(t, policy)
	// The hierarchy enables subtype inference from the root.
	if !k.DataH.Subsumes("data", "email") {
		t.Errorf("data should subsume email; parent chain: %v", k.DataH.Ancestors("email"))
	}
}

func TestIncrementalUpdate(t *testing.T) {
	b, ex1, k := buildKG(t, policy)
	before := k.Stats()

	edited := strings.Replace(policy, "We collect device information automatically.",
		"We collect device information and biometric identifiers automatically.", 1)
	e := extract.New(llm.NewSim())
	ex2, diff, err := e.ReExtract(context.Background(), ex1, edited)
	if err != nil {
		t.Fatal(err)
	}
	st, err := b.Update(context.Background(), k, diff, ex2)
	if err != nil {
		t.Fatal(err)
	}
	if st.EdgesRemoved == 0 || st.EdgesAdded == 0 {
		t.Errorf("update stats = %+v", st)
	}
	after := k.Stats()
	if after.Edges != before.Edges-st.EdgesRemoved+st.EdgesAdded {
		t.Errorf("edge accounting: before=%d after=%d removed=%d added=%d",
			before.Edges, after.Edges, st.EdgesRemoved, st.EdgesAdded)
	}
	// The new term joined the graph and the hierarchy.
	if !k.ED.HasNode("biometric identifier") {
		t.Error("new data type not in graph")
	}
	if !k.DataH.Has("biometric identifier") {
		t.Error("new data type not in hierarchy")
	}
	if err := k.DataH.Validate(); err != nil {
		t.Error(err)
	}
	// Untouched edges survive.
	foundShare := false
	for _, e := range k.ED.Edges() {
		if e.Label == "share" && e.From == "TikTak" {
			foundShare = true
		}
	}
	if !foundShare {
		t.Error("untouched share edge lost in update")
	}
}

func TestUpdateRemovalOnly(t *testing.T) {
	b, ex1, k := buildKG(t, policy)
	edited := strings.Replace(policy, "We share usage data with service providers for legitimate business purposes.\n", "", 1)
	e := extract.New(llm.NewSim())
	ex2, diff, err := e.ReExtract(context.Background(), ex1, edited)
	if err != nil {
		t.Fatal(err)
	}
	st, err := b.Update(context.Background(), k, diff, ex2)
	if err != nil {
		t.Fatal(err)
	}
	if st.EdgesRemoved == 0 || st.EdgesAdded != 0 {
		t.Errorf("removal-only update: %+v", st)
	}
	for _, e := range k.ED.Edges() {
		if e.Label == "share" && strings.Contains(e.Condition, "legitimate") {
			t.Error("removed segment's edge still present")
		}
	}
}

func TestBuildNilTaxonomy(t *testing.T) {
	b := &Builder{}
	if _, err := b.Build(context.Background(), &extract.Extraction{}); err == nil {
		t.Error("nil taxonomy should error")
	}
}

func TestEmptyExtraction(t *testing.T) {
	b := NewBuilder(&taxonomy.Builder{Client: llm.NewSim()})
	k, err := b.Build(context.Background(), &extract.Extraction{Company: "X"})
	if err != nil {
		t.Fatal(err)
	}
	st := k.Stats()
	if st.Edges != 0 || st.Nodes != 0 {
		t.Errorf("empty stats = %+v", st)
	}
}

func TestUpdateNoChanges(t *testing.T) {
	b, ex1, k := buildKG(t, policy)
	before := k.Stats()
	st, err := b.Update(context.Background(), k, segment.Diff{}, ex1)
	if err != nil {
		t.Fatal(err)
	}
	if st.EdgesAdded != 0 || st.EdgesRemoved != 0 || st.NewTerms != 0 {
		t.Errorf("no-op update changed things: %+v", st)
	}
	if k.Stats() != before {
		t.Error("no-op update changed stats")
	}
}

func TestKnowledgeGraphJSONRoundTrip(t *testing.T) {
	_, _, k := buildKG(t, policy)
	data, err := json.Marshal(k)
	if err != nil {
		t.Fatal(err)
	}
	var k2 KnowledgeGraph
	if err := json.Unmarshal(data, &k2); err != nil {
		t.Fatal(err)
	}
	if k2.Company != k.Company {
		t.Errorf("company = %q", k2.Company)
	}
	if k2.Stats() != k.Stats() {
		t.Errorf("stats: %+v vs %+v", k2.Stats(), k.Stats())
	}
	if !k2.DataH.Subsumes("data", "email") {
		t.Error("data hierarchy lost")
	}
	if k2.EntityH.Len() != k.EntityH.Len() {
		t.Errorf("entity hierarchy: %d vs %d", k2.EntityH.Len(), k.EntityH.Len())
	}
	// Edge conditions survive.
	foundCond := false
	for _, e := range k2.ED.Edges() {
		if strings.Contains(e.Condition, "legitimate business purposes") {
			foundCond = true
		}
	}
	if !foundCond {
		t.Error("edge condition lost in round trip")
	}
}
