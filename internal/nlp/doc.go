// Package nlp provides the lightweight natural-language substrate used by
// the extraction pipeline: tokenization, sentence splitting, verb
// lemmatization (base forms), noun singularization, stopword filtering and
// phrase normalization.
//
// The paper's pipeline delegates deep language understanding to an LLM but
// still relies on deterministic text normalization ("collects" -> "collect",
// "email addresses" -> "email address", "we"/"us"/"our" -> company name).
// This package implements those rules with small, testable tables rather
// than statistical models so that the whole reproduction is deterministic
// and offline.
package nlp
