package nlp

import "strings"

// stopwords lists closed-class English words ignored by matching and
// similarity routines. Determiners, auxiliaries, conjunctions and the most
// frequent prepositions are included; domain words are never stopwords.
var stopwords = map[string]bool{
	"a": true, "an": true, "the": true, "this": true, "that": true,
	"these": true, "those": true, "some": true, "any": true, "all": true,
	"such": true, "other": true, "own": true, "same": true,
	"and": true, "or": true, "but": true, "nor": true, "so": true,
	"if": true, "then": true, "than": true, "as": true, "of": true,
	"in": true, "on": true, "at": true, "by": true, "to": true,
	"from": true, "with": true, "without": true, "for": true, "about": true,
	"into": true, "through": true, "during": true, "before": true,
	"after": true, "above": true, "below": true, "between": true,
	"under": true, "over": true, "via": true, "per": true,
	"be": true, "is": true, "am": true, "are": true, "was": true,
	"were": true, "been": true, "being": true, "do": true, "does": true,
	"did": true, "will": true, "would": true, "shall": true, "should": true,
	"can": true, "could": true, "may": true, "might": true, "must": true,
	"have": true, "has": true, "had": true,
	"not": true, "no": true, "also": true, "only": true, "both": true,
	"each": true, "more": true, "most": true, "very": true,
	"it": true, "its": true, "they": true, "them": true, "their": true,
	"we": true, "us": true, "our": true, "you": true, "your": true,
	"he": true, "she": true, "his": true, "her": true, "i": true, "my": true,
	"who": true, "whom": true, "whose": true, "which": true, "what": true,
	"when": true, "where": true, "how": true, "why": true,
	"etc": true, "eg": true, "ie": true,
}

// IsStopword reports whether the lowercase word w is a stopword.
func IsStopword(w string) bool { return stopwords[strings.ToLower(w)] }

// ContentWords returns the lowercase non-stopword word tokens of s.
func ContentWords(s string) []string {
	ws := Words(s)
	out := ws[:0]
	for _, w := range ws {
		if !stopwords[w] {
			out = append(out, w)
		}
	}
	return out
}

// NormalizePhrase canonicalizes a term or short phrase for graph-node and
// vocabulary identity: lowercase, collapse whitespace, strip leading
// determiners and trailing punctuation. It intentionally does not
// singularize; callers that want singular head nouns use Singular on top.
func NormalizePhrase(s string) string {
	s = strings.ToLower(strings.TrimSpace(s))
	s = strings.Trim(s, ".,;:!?\"'()[]")
	fields := strings.Fields(s)
	// Strip leading determiners/possessives.
	for len(fields) > 0 {
		switch fields[0] {
		case "a", "an", "the", "your", "our", "their", "its", "my", "his", "her", "some", "any":
			fields = fields[1:]
		default:
			return strings.Join(fields, " ")
		}
	}
	return strings.Join(fields, " ")
}

// CanonicalTerm fully normalizes a data-type or entity term: NormalizePhrase
// plus singularization of the head noun. This is the node-identity function
// used across the knowledge graph.
func CanonicalTerm(s string) string {
	return Singular(NormalizePhrase(s))
}

// JaccardWords computes the Jaccard similarity of the content-word sets of a
// and b in [0,1]. Identical word sets yield 1; disjoint sets yield 0.
func JaccardWords(a, b string) float64 {
	wa, wb := ContentWords(a), ContentWords(b)
	if len(wa) == 0 && len(wb) == 0 {
		return 1
	}
	set := make(map[string]int, len(wa))
	for _, w := range wa {
		set[w] |= 1
	}
	for _, w := range wb {
		set[w] |= 2
	}
	inter, union := 0, 0
	for _, v := range set {
		union++
		if v == 3 {
			inter++
		}
	}
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// SplitList splits an enumeration like
// "name, age, username, password, and email" into its items, handling
// Oxford commas, "and"/"or" conjunctions and "such as"/"including" lead-ins.
func SplitList(s string) []string {
	s = strings.TrimSpace(s)
	for _, lead := range []string{"such as", "including", "for example", "e.g.", "like"} {
		if rest, ok := strings.CutPrefix(s, lead+" "); ok {
			s = rest
			break
		}
	}
	parts := strings.Split(s, ",")
	var out []string
	for _, p := range parts {
		p = strings.TrimSpace(p)
		// Split a trailing "x and y" / "x or y".
		for _, conj := range []string{" and ", " or "} {
			if i := strings.Index(p, conj); i >= 0 && !strings.Contains(p[:i], "(") {
				left := strings.TrimSpace(p[:i])
				right := strings.TrimSpace(p[i+len(conj):])
				if left != "" {
					out = append(out, left)
				}
				p = right
			}
		}
		p = strings.TrimPrefix(p, "and ")
		p = strings.TrimPrefix(p, "or ")
		p = strings.TrimSpace(p)
		if p != "" {
			out = append(out, p)
		}
	}
	return out
}

// TitleCase uppercases the first letter of each word, used only for display.
func TitleCase(s string) string {
	fields := strings.Fields(s)
	for i, f := range fields {
		if f == "" {
			continue
		}
		fields[i] = strings.ToUpper(f[:1]) + f[1:]
	}
	return strings.Join(fields, " ")
}
