package nlp

import "strings"

// irregularVerbs maps inflected verb forms to their base form. The table
// covers the verbs that actually occur in privacy-policy data practices.
var irregularVerbs = map[string]string{
	"is": "be", "are": "be", "was": "be", "were": "be", "been": "be", "being": "be",
	"has": "have", "had": "have", "having": "have",
	"does": "do", "did": "do", "done": "do", "doing": "do",
	"gives": "give", "gave": "give", "given": "give", "giving": "give",
	"makes": "make", "made": "make", "making": "make",
	"takes": "take", "took": "take", "taken": "take", "taking": "take",
	"keeps": "keep", "kept": "keep", "keeping": "keep",
	"holds": "hold", "held": "hold", "holding": "holding",
	"sends": "send", "sent": "send", "sending": "send",
	"sells": "sell", "sold": "sell", "selling": "sell",
	"gets": "get", "got": "get", "gotten": "get", "getting": "get",
	"chooses": "choose", "chose": "choose", "chosen": "choose", "choosing": "choose",
	"lets": "let", "letting": "let",
	"sees": "see", "saw": "see", "seen": "see", "seeing": "see",
	"goes": "go", "went": "go", "gone": "go", "going": "go",
	"buys": "buy", "bought": "buy", "buying": "buy",
	"tells": "tell", "told": "tell", "telling": "tell",
	"finds": "find", "found": "find", "finding": "find",
	"leaves": "leave", "left": "leave", "leaving": "leave",
	"means": "mean", "meant": "mean", "meaning": "mean",
	"reads": "read", "reading": "read",
	"writes": "write", "wrote": "write", "written": "write", "writing": "write",
}

// consonant reports whether b is an ASCII consonant letter.
func consonant(b byte) bool {
	switch b {
	case 'a', 'e', 'i', 'o', 'u':
		return false
	}
	return b >= 'a' && b <= 'z'
}

// VerbBase reduces an English verb to its base (infinitive) form using the
// irregular table plus regular suffix rules: "collects" -> "collect",
// "sharing" -> "share", "notified" -> "notify". Input is lowercased first.
// Words that look like they are already base forms are returned unchanged.
func VerbBase(v string) string {
	v = strings.ToLower(strings.TrimSpace(v))
	if v == "" {
		return v
	}
	if base, ok := irregularVerbs[v]; ok {
		return base
	}
	// -ies -> -y  (notifies -> notify)
	if strings.HasSuffix(v, "ies") && len(v) > 4 {
		return v[:len(v)-3] + "y"
	}
	// -sses/-shes/-ches/-xes/-zes -> strip "es" (processes -> process)
	for _, suf := range []string{"sses", "shes", "ches", "xes", "zes"} {
		if strings.HasSuffix(v, suf) && len(v) > len(suf)+1 {
			return v[:len(v)-2]
		}
	}
	// -oes -> -o (goes handled irregularly; "does" too)
	// -es where the stem ends in a sibilant was handled above; otherwise
	// plain -s third person: collects -> collect.
	if strings.HasSuffix(v, "s") && !strings.HasSuffix(v, "ss") && !strings.HasSuffix(v, "us") && len(v) > 3 {
		return v[:len(v)-1]
	}
	// -ied -> -y (applied -> apply)
	if strings.HasSuffix(v, "ied") && len(v) > 4 {
		return v[:len(v)-3] + "y"
	}
	// -ing forms: sharing -> share, collecting -> collect, running -> run.
	if strings.HasSuffix(v, "ing") && len(v) > 4 {
		stem := v[:len(v)-3]
		if undoubles(stem) {
			return stem[:len(stem)-1] // running -> run
		}
		if needsFinalE(stem) {
			return stem + "e" // sharing -> share, using -> use
		}
		return stem
	}
	// -ed forms: collected -> collect, shared -> share, permitted -> permit.
	if strings.HasSuffix(v, "ed") && len(v) > 3 {
		stem := v[:len(v)-2]
		if undoubles(stem) {
			return stem[:len(stem)-1]
		}
		if needsFinalE(stem) {
			return stem + "e" // shared -> share, stored -> store
		}
		return stem
	}
	return v
}

// undoubles reports whether a stem ends in a doubled consonant introduced by
// inflection (permitt-, runn-) rather than one native to the base form
// (process-, call-, staff-, buzz-).
func undoubles(stem string) bool {
	n := len(stem)
	if n < 3 || stem[n-1] != stem[n-2] || !consonant(stem[n-1]) {
		return false
	}
	switch stem[n-1] {
	case 's', 'l', 'f', 'z':
		return false
	}
	return true
}

// verbsEndingInE lists stems (with the final e removed) whose base form
// requires restoring a trailing "e" after stripping -ing/-ed.
var verbsEndingInE = map[string]bool{
	"shar": true, "stor": true, "us": true, "provid": true, "receiv": true,
	"disclos": true, "delet": true, "analyz": true, "combin": true,
	"updat": true, "creat": true, "manag": true, "serv": true, "chang": true,
	"remov": true, "requir": true, "declin": true, "exchang": true,
	"measur": true, "improv": true, "personaliz": true, "advertis": true,
	"distribut": true, "sav": true, "captur": true, "integrat": true,
	"operat": true, "communicat": true, "mak": true, "tak": true,
	"enabl": true, "facilitat": true, "aggregat": true, "anonymiz": true,
	"pseudonymiz": true, "validat": true, "verif": true, "complet": true,
	"determin": true, "generat": true, "observ": true, "not": false,
	"preserv": true, "reserv": true, "acquir": true, "insur": true,
	"ensur": true, "licens": true, "promot": true, "rout": true,
	"profil": true, "retriev": true, "trac": true, "translat": true,
	"writ": true, "issu": true, "merg": true, "purchas": true,
	"releas": true, "restor": true, "revok": true, "schedul": true,
	"terminat": true, "fil": true, "engag": true,
}

func needsFinalE(stem string) bool {
	if verbsEndingInE[stem] {
		return true
	}
	// Heuristic: a stem ending in consonant+v / consonant+z / "at" from a
	// Latinate verb usually restores e; keep this conservative and rely on
	// the table for the rest.
	if strings.HasSuffix(stem, "iv") || strings.HasSuffix(stem, "yz") {
		return true
	}
	return false
}

// irregularPlurals maps plural nouns to singular for vocabulary common in
// privacy policies.
var irregularPlurals = map[string]string{
	"children": "child", "people": "person", "men": "man", "women": "woman",
	"feet": "foot", "teeth": "tooth", "geese": "goose", "mice": "mouse",
	"criteria": "criterion", "data": "data", "media": "media",
	"analyses": "analysis", "bases": "basis", "indices": "index",
	"matrices": "matrix", "appendices": "appendix",
	"cookies": "cookie", "movies": "movie", "selfies": "selfie",
	"parties": "party", "countries": "country", "companies": "company",
	"entities": "entity", "activities": "activity", "authorities": "authority",
	"policies": "policy", "agencies": "agency", "categories": "category",
	"identities": "identity", "technologies": "technology",
	"histories": "history", "queries": "query", "libraries": "library",
	"summaries": "summary", "capabilities": "capability",
}

// uncountable nouns are returned unchanged by Singular.
var uncountable = map[string]bool{
	"information": true, "data": true, "content": true, "software": true,
	"advice": true, "news": true, "research": true, "feedback": true,
	"analytics": true, "biometrics": true, "demographics": true,
	"metadata": true, "access": true, "consent": true, "status": true,
	"address": true, "business": true, "process": true, "analysis": true,
	"us": true, "gps": true, "sms": true, "its": true, "this": true,
	"series": true, "species": true, "premises": true, "settings": false,
}

// Singular reduces an English noun (or the head noun of a lowercased noun
// phrase's final word) to singular: "email addresses" -> "email address",
// "cookies" -> "cookie", "children" -> "child". Multi-word phrases have only
// their final word singularized, matching the paper's normalization rule.
func Singular(noun string) string {
	noun = strings.TrimSpace(noun)
	if noun == "" {
		return noun
	}
	// The head noun of "X of Y" phrases is in X ("email addresses of
	// contacts" -> "email address of contacts"); the complement keeps its
	// number.
	if j := strings.Index(noun, " of "); j >= 0 {
		return Singular(noun[:j]) + noun[j:]
	}
	// Otherwise singularize only the final word of the phrase.
	if j := strings.LastIndexByte(noun, ' '); j >= 0 {
		return noun[:j+1] + Singular(noun[j+1:])
	}
	lower := strings.ToLower(noun)
	if uncountable[lower] {
		return noun
	}
	if s, ok := irregularPlurals[lower]; ok {
		return s
	}
	// -ies -> -y
	if strings.HasSuffix(lower, "ies") && len(lower) > 4 {
		return noun[:len(noun)-3] + "y"
	}
	// -ves -> -f / -fe (lives -> life is irregular enough to skip; devices
	// policies rarely use these).
	if strings.HasSuffix(lower, "ves") && len(lower) > 4 {
		return noun[:len(noun)-3] + "f"
	}
	// -sses/-shes/-ches/-xes/-zes -> strip "es"
	for _, suf := range []string{"sses", "shes", "ches", "xes", "zes", "oes"} {
		if strings.HasSuffix(lower, suf) && len(lower) > len(suf)+1 {
			return noun[:len(noun)-2]
		}
	}
	// plain -s
	if strings.HasSuffix(lower, "s") && !strings.HasSuffix(lower, "ss") && !strings.HasSuffix(lower, "us") && !strings.HasSuffix(lower, "is") && len(lower) > 3 {
		return noun[:len(noun)-1]
	}
	return noun
}
