package nlp

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// Token is a single lexical unit produced by Tokenize.
type Token struct {
	// Text is the token surface form, as it appears in the input.
	Text string
	// Start is the byte offset of the token within the input string.
	Start int
	// End is the byte offset one past the last byte of the token.
	End int
	// Kind classifies the token.
	Kind TokenKind
}

// TokenKind classifies tokens into broad lexical classes.
type TokenKind int

// Token kinds recognized by the tokenizer.
const (
	// Word is a run of letters, possibly with internal apostrophes or
	// hyphens ("voice-enabled", "user's").
	Word TokenKind = iota
	// Number is a run of digits, possibly with internal separators.
	Number
	// Punct is a single punctuation rune.
	Punct
)

// String returns a human-readable name for the token kind.
func (k TokenKind) String() string {
	switch k {
	case Word:
		return "word"
	case Number:
		return "number"
	case Punct:
		return "punct"
	default:
		return "unknown"
	}
}

func isWordRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r)
}

// Tokenize splits s into word, number and punctuation tokens. Whitespace is
// discarded. Internal hyphens and apostrophes are kept inside word tokens so
// that compounds like "voice-enabled" and possessives like "user's" survive
// as single tokens, matching how the extraction prompts treat them.
func Tokenize(s string) []Token {
	var toks []Token
	i := 0
	for i < len(s) {
		r, size := decodeRune(s[i:])
		switch {
		case unicode.IsSpace(r):
			i += size
		case isWordRune(r):
			start := i
			i += size
			for i < len(s) {
				r2, sz2 := decodeRune(s[i:])
				if isWordRune(r2) {
					i += sz2
					continue
				}
				// Allow a single internal hyphen or apostrophe when
				// followed by another word rune.
				if (r2 == '-' || r2 == '\'' || r2 == '’') && i+sz2 < len(s) {
					r3, _ := decodeRune(s[i+sz2:])
					if isWordRune(r3) {
						i += sz2
						continue
					}
				}
				break
			}
			text := s[start:i]
			kind := Word
			if isAllDigits(text) {
				kind = Number
			}
			toks = append(toks, Token{Text: text, Start: start, End: i, Kind: kind})
		default:
			toks = append(toks, Token{Text: s[i : i+size], Start: i, End: i + size, Kind: Punct})
			i += size
		}
	}
	return toks
}

func isAllDigits(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		if !unicode.IsDigit(r) {
			return false
		}
	}
	return true
}

// decodeRune decodes the first rune of s, reporting the true byte size even
// for invalid UTF-8 (where the replacement rune occupies a single byte).
func decodeRune(s string) (rune, int) {
	return utf8.DecodeRuneInString(s)
}

// Words returns the lowercase word tokens of s, discarding punctuation and
// numbers. It is the common preprocessing step for similarity and matching.
func Words(s string) []string {
	toks := Tokenize(s)
	out := make([]string, 0, len(toks))
	for _, t := range toks {
		if t.Kind == Word {
			out = append(out, strings.ToLower(t.Text))
		}
	}
	return out
}

// abbreviations that do not terminate a sentence even though they end in a
// period.
var abbreviations = map[string]bool{
	"e.g": true, "i.e": true, "etc": true, "mr": true, "mrs": true,
	"ms": true, "dr": true, "inc": true, "ltd": true, "co": true,
	"corp": true, "no": true, "vs": true, "u.s": true, "u.k": true,
	"sec": true, "art": true, "para": true,
}

// SplitSentences splits text into sentences on ., !, ? and newlines while
// respecting common abbreviations and decimal numbers. Sentence strings are
// trimmed of surrounding whitespace; empty sentences are dropped.
func SplitSentences(text string) []string {
	var out []string
	var b strings.Builder
	flush := func() {
		s := strings.TrimSpace(b.String())
		if s != "" {
			out = append(out, s)
		}
		b.Reset()
	}
	runes := []rune(text)
	for i := 0; i < len(runes); i++ {
		r := runes[i]
		b.WriteRune(r)
		switch r {
		case '\n':
			// A blank line or a bulleted list entry ends a statement.
			flush()
		case '.', '!', '?':
			if r == '.' {
				if i+1 < len(runes) && unicode.IsDigit(runes[i+1]) {
					continue // decimal number like 14.2
				}
				if endsWithAbbreviation(b.String()) {
					continue
				}
			}
			// Require following whitespace or end-of-text to treat the
			// punctuation as a sentence boundary.
			if i+1 >= len(runes) || unicode.IsSpace(runes[i+1]) {
				flush()
			}
		}
	}
	flush()
	return out
}

func endsWithAbbreviation(s string) bool {
	s = strings.TrimSuffix(s, ".")
	j := strings.LastIndexFunc(s, unicode.IsSpace)
	last := strings.ToLower(s[j+1:])
	return abbreviations[last]
}

// NGrams returns the n-grams (as joined strings) over the word tokens of s.
// It returns nil when s has fewer than n words.
func NGrams(s string, n int) []string {
	w := Words(s)
	if n <= 0 || len(w) < n {
		return nil
	}
	out := make([]string, 0, len(w)-n+1)
	for i := 0; i+n <= len(w); i++ {
		out = append(out, strings.Join(w[i:i+n], " "))
	}
	return out
}
