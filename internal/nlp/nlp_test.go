package nlp

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeBasic(t *testing.T) {
	toks := Tokenize("We collect your email, phone number.")
	var words []string
	for _, tk := range toks {
		if tk.Kind == Word {
			words = append(words, tk.Text)
		}
	}
	want := []string{"We", "collect", "your", "email", "phone", "number"}
	if !reflect.DeepEqual(words, want) {
		t.Fatalf("words = %v, want %v", words, want)
	}
}

func TestTokenizeCompounds(t *testing.T) {
	toks := Tokenize("voice-enabled features and user's data")
	if toks[0].Text != "voice-enabled" {
		t.Errorf("hyphenated compound split: %q", toks[0].Text)
	}
	var found bool
	for _, tk := range toks {
		if tk.Text == "user's" {
			found = true
		}
	}
	if !found {
		t.Errorf("possessive split apart: %v", toks)
	}
}

func TestTokenizeOffsets(t *testing.T) {
	s := "ab cd"
	toks := Tokenize(s)
	for _, tk := range toks {
		if s[tk.Start:tk.End] != tk.Text {
			t.Errorf("offset mismatch: %q vs %q", s[tk.Start:tk.End], tk.Text)
		}
	}
}

func TestTokenizeNumberKind(t *testing.T) {
	toks := Tokenize("within 30 days")
	if toks[1].Kind != Number {
		t.Errorf("kind(30) = %v, want Number", toks[1].Kind)
	}
	if toks[1].Kind.String() != "number" {
		t.Errorf("String() = %q", toks[1].Kind.String())
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Errorf("Tokenize(\"\") = %v", got)
	}
	if got := Tokenize("   \t\n"); len(got) != 0 {
		t.Errorf("Tokenize(ws) = %v", got)
	}
}

func TestSplitSentences(t *testing.T) {
	text := "We never share personal data. We may disclose data if required by law! Do you consent?"
	got := SplitSentences(text)
	if len(got) != 3 {
		t.Fatalf("got %d sentences: %v", len(got), got)
	}
	if !strings.HasPrefix(got[1], "We may disclose") {
		t.Errorf("second sentence = %q", got[1])
	}
}

func TestSplitSentencesAbbreviationsAndDecimals(t *testing.T) {
	text := "PolicyLint found that 14.2% of apps, e.g. social apps, contain contradictions. Manual review disagreed."
	got := SplitSentences(text)
	if len(got) != 2 {
		t.Fatalf("abbreviation/decimal handling broke: %v", got)
	}
}

func TestSplitSentencesNewlines(t *testing.T) {
	got := SplitSentences("First statement\nSecond statement")
	if len(got) != 2 {
		t.Fatalf("newline split: %v", got)
	}
}

func TestVerbBase(t *testing.T) {
	cases := map[string]string{
		"collects": "collect", "collecting": "collect", "collected": "collect",
		"shares": "share", "sharing": "share", "shared": "share",
		"uses": "use", "using": "use", "used": "use",
		"provides": "provide", "providing": "provide", "provided": "provide",
		"processes": "process", "processing": "process", "processed": "process",
		"notifies": "notify", "notified": "notify",
		"stores": "store", "storing": "store", "stored": "store",
		"discloses": "disclose", "disclosing": "disclose",
		"gives": "give", "gave": "give", "given": "give",
		"makes": "make", "made": "make",
		"sells": "sell", "sold": "sell",
		"permitted": "permit", "running": "run",
		"accesses": "access", "accessed": "access",
		"receives": "receive", "received": "receive",
		"transfers": "transfer", "transferred": "transfer",
		"chooses": "choose", "chose": "choose",
		"collect": "collect", "share": "share", "is": "be", "are": "be",
		"engages": "engage", "preserves": "preserve",
	}
	for in, want := range cases {
		if got := VerbBase(in); got != want {
			t.Errorf("VerbBase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSingular(t *testing.T) {
	cases := map[string]string{
		"email addresses":      "email address",
		"phone numbers":        "phone number",
		"cookies":              "cookie",
		"third parties":        "third party",
		"children":             "child",
		"information":          "information",
		"data":                 "data",
		"addresses":            "address",
		"devices":              "device",
		"photos":               "photo",
		"purchases":            "purchase",
		"transactions":         "transaction",
		"account":              "account",
		"analytics":            "analytics",
		"service providers":    "service provider",
		"advertising partners": "advertising partner",
		"categories":           "category",
		"searches":             "search",
	}
	for in, want := range cases {
		if got := Singular(in); got != want {
			t.Errorf("Singular(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestNormalizePhrase(t *testing.T) {
	cases := map[string]string{
		"  The Email Address. ": "email address",
		"your phone contacts":   "phone contacts",
		"a  device identifier":  "device identifier",
		"Data":                  "data",
	}
	for in, want := range cases {
		if got := NormalizePhrase(in); got != want {
			t.Errorf("NormalizePhrase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCanonicalTerm(t *testing.T) {
	if got := CanonicalTerm("Your Email Addresses"); got != "email address" {
		t.Errorf("CanonicalTerm = %q", got)
	}
	if CanonicalTerm("email address") != CanonicalTerm("  the Email Addresses ") {
		t.Error("canonicalization not idempotent across variants")
	}
}

func TestStopwords(t *testing.T) {
	for _, w := range []string{"the", "and", "of", "We", "OR"} {
		if !IsStopword(w) {
			t.Errorf("IsStopword(%q) = false", w)
		}
	}
	for _, w := range []string{"email", "share", "tiktok"} {
		if IsStopword(w) {
			t.Errorf("IsStopword(%q) = true", w)
		}
	}
}

func TestContentWords(t *testing.T) {
	got := ContentWords("We share your email with the advertising partners")
	want := []string{"share", "email", "advertising", "partners"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ContentWords = %v, want %v", got, want)
	}
}

func TestJaccardWords(t *testing.T) {
	if s := JaccardWords("email address", "email address"); s != 1 {
		t.Errorf("identical Jaccard = %v", s)
	}
	if s := JaccardWords("email address", "postal address"); s <= 0 || s >= 1 {
		t.Errorf("overlapping Jaccard = %v", s)
	}
	if s := JaccardWords("email", "cookie"); s != 0 {
		t.Errorf("disjoint Jaccard = %v", s)
	}
	if s := JaccardWords("", ""); s != 1 {
		t.Errorf("empty Jaccard = %v", s)
	}
}

func TestSplitList(t *testing.T) {
	got := SplitList("such as name, age, username, password, and email")
	want := []string{"name", "age", "username", "password", "email"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SplitList = %v, want %v", got, want)
	}
}

func TestSplitListOrAndTwoItems(t *testing.T) {
	got := SplitList("names and phone numbers")
	if !reflect.DeepEqual(got, []string{"names", "phone numbers"}) {
		t.Errorf("and-pair: %v", got)
	}
	got = SplitList("cookies or pixels")
	if !reflect.DeepEqual(got, []string{"cookies", "pixels"}) {
		t.Errorf("or-pair: %v", got)
	}
}

func TestNGrams(t *testing.T) {
	got := NGrams("we share your email", 2)
	want := []string{"we share", "share your", "your email"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("NGrams = %v", got)
	}
	if NGrams("one", 2) != nil {
		t.Error("short input should yield nil")
	}
	if NGrams("a b", 0) != nil {
		t.Error("n=0 should yield nil")
	}
}

func TestTitleCase(t *testing.T) {
	if got := TitleCase("email address"); got != "Email Address" {
		t.Errorf("TitleCase = %q", got)
	}
}

// Property: tokenization never loses word characters and offsets are
// monotonically increasing.
func TestTokenizeProperty(t *testing.T) {
	f := func(s string) bool {
		toks := Tokenize(s)
		last := 0
		for _, tk := range toks {
			if tk.Start < last || tk.End <= tk.Start || tk.End > len(s) {
				return false
			}
			if s[tk.Start:tk.End] != tk.Text {
				return false
			}
			last = tk.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: Singular and VerbBase are idempotent on their own output for
// ASCII lowercase words.
func TestNormalizationIdempotent(t *testing.T) {
	words := []string{"collects", "shares", "addresses", "cookies", "parties",
		"using", "provided", "children", "data", "purchases", "notifies"}
	for _, w := range words {
		if v := VerbBase(w); VerbBase(v) != v {
			t.Errorf("VerbBase not idempotent on %q: %q -> %q", w, v, VerbBase(v))
		}
		if s := Singular(w); Singular(s) != s {
			t.Errorf("Singular not idempotent on %q: %q -> %q", w, s, Singular(s))
		}
	}
}

func TestSplitSentencesProperty(t *testing.T) {
	f := func(s string) bool {
		for _, sent := range SplitSentences(s) {
			if strings.TrimSpace(sent) == "" {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
