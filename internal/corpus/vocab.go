// Package corpus provides the synthetic privacy-policy corpus that stands
// in for the TikTok and Meta policies evaluated in the paper (which are
// copyrighted and not shipped): TikTak (~15k words) and MetaBook (~40k
// words), generated deterministically from statement templates that mirror
// the structures of the paper's Tables 2–3, plus the embedded OPP-115
// taxonomy and small hand-written policies for tests.
package corpus

// Base data-type vocabulary. Generators combine these with modifiers to
// reach the distinct-data-type counts of Table 1.
var baseDataTypes = []string{
	"email address", "phone number", "name", "username", "password",
	"profile image", "date of birth", "age", "gender", "language",
	"postal address", "payment information", "credit card number",
	"purchase history", "transaction record", "billing address",
	"ip address", "device identifier", "browser type", "operating system",
	"cookie", "pixel tag", "crash log", "performance log", "battery level",
	"screen resolution", "mobile carrier", "time zone setting",
	"gps location", "approximate location", "location history",
	"search history", "watch history", "browsing history", "click behavior",
	"interaction data", "usage data", "session duration", "app activity",
	"message content", "comment", "photo", "video", "audio recording",
	"voice command", "livestream content", "contact list", "friend list",
	"social connection", "follower list", "calendar entry", "clipboard content",
	"biometric identifier", "faceprint", "voiceprint", "keystroke pattern",
	"advertising identifier", "analytics record", "survey response",
	"customer support ticket", "loyalty account number", "wishlist",
	"shipping address", "tax identification number", "employment detail",
	"education record", "health metric", "fitness activity", "sleep pattern",
	"network information", "wifi connection record", "bluetooth signal",
	"sensor reading", "accelerometer data", "gyroscope data",
	"sim card information", "installed application list", "font setting",
	"referral url", "landing page", "scroll activity", "hover pattern",
}

// dataModifiers multiply the data vocabulary ("hashed email address").
var dataModifiers = []string{
	"", "hashed", "encrypted", "truncated", "aggregated", "anonymized",
	"inferred", "derived", "historical", "approximate", "verified",
	"self-reported", "third-party sourced", "publicly available",
}

// basePartyTypes are receiver/sender organizations.
var basePartyTypes = []string{
	"advertising partner", "analytics provider", "service provider",
	"payment processor", "cloud storage provider", "content delivery network",
	"customer support vendor", "marketing agency", "measurement partner",
	"research institution", "law enforcement agency", "regulatory authority",
	"corporate affiliate", "subsidiary company", "merger partner",
	"data broker", "identity verification service", "fraud prevention service",
	"shipping carrier", "app store operator", "device manufacturer",
	"telecommunications operator", "social network platform",
	"advertising network", "audience measurement firm", "academic researcher",
	"government agency", "court", "insurance underwriter", "credit bureau",
}

// partyModifiers multiply the entity vocabulary.
var partyModifiers = []string{
	"", "trusted", "regional", "international", "third-party", "integrated",
	"certified", "contracted", "affiliated", "independent", "european",
	"domestic", "overseas", "licensed", "specialized", "downstream",
	"upstream", "principal", "secondary", "strategic", "approved",
	"vetted", "external", "partnered", "accredited",
}

// userActions are activity clauses for "When you ..." templates.
var userActions = []string{
	"create an account", "upload content", "make a purchase",
	"contact customer support", "join a livestream", "post a comment",
	"send a direct message", "sync your contacts", "enable location services",
	"participate in a survey", "register for an event", "follow another user",
	"search for content", "watch a video", "click an advertisement",
	"connect a social media account", "use the camera feature",
	"use voice-enabled features", "browse the marketplace",
	"apply a filter or effect", "play an interactive game",
	"submit a verification document", "opt in to personalized ads",
	"visit our website", "install the application",
}

// collectVerbs, shareVerbs and selfVerbs vary the main verbs.
var collectVerbs = []string{"collect", "receive", "obtain", "gather", "record", "access", "infer", "derive", "capture"}

var shareVerbs = []string{"share", "disclose", "provide", "transfer", "transmit", "send", "release", "distribute"}

var selfVerbs = []string{"use", "store", "process", "retain", "analyze", "combine", "preserve", "review", "maintain", "log"}

// conditions mixes precise and intentionally vague circumstances; the vague
// ones exercise Challenge 1's placeholder machinery.
var conditions = []string{
	"you consent", "you opt in", "required by law", "legitimate business purposes",
	"business operations", "security purposes", "you enable the feature",
	"your account settings allow it", "a lawful request is received",
	"necessary to comply with the law", "fraud is suspected",
	"legitimate interests apply", "the public interest requires it",
	"you participate in promotional programs", "technical maintenance demands it",
}

// vagueConditionSet marks which of conditions are vague (for analyses).
var vagueConditionSet = map[string]bool{
	"legitimate business purposes": true, "business operations": true,
	"security purposes": true, "legitimate interests apply": true,
	"the public interest requires it": true, "required by law": true,
}

// boilerplate sentences carry no data practices; they pad policies to
// realistic length and exercise the extractor's rejection path.
var boilerplate = []string{
	"This section is intended to help readers understand the scope of the practices described here.",
	"The definitions in this section apply throughout the remainder of the document.",
	"Capitalized terms carry the meanings assigned in the glossary above.",
	"The effective date of this version appears at the top of the page.",
	"Regional supplements in the appendix override conflicting clauses where applicable law demands.",
	"Nothing in this paragraph limits rights granted elsewhere in the document.",
	"The numbering of clauses is for convenience only and carries no legal weight.",
	"Questions about this document should be directed at the address in the final section.",
	"Readers are encouraged to revisit this page periodically as revisions are published here first.",
	"A summary table at the end of the document condenses the key points of each section.",
	"This paragraph is informational and does not grant additional permissions to any party.",
	"Translations of this document are provided for convenience; the original language controls.",
	"The examples in this section are illustrative rather than exhaustive.",
	"Industry guidelines referenced in this section are incorporated only to the extent stated.",
	"Defined roles in this section follow the conventions of applicable data protection frameworks.",
}
