package corpus

import "strings"

// OPP115Category is one top-level category of the OPP-115 annotation
// scheme used by Polisis and referenced in Algorithm 1 line 8.
type OPP115Category struct {
	// Name is the category label.
	Name string
	// Keywords cue statements belonging to the category.
	Keywords []string
}

// OPP115 is the embedded OPP-115 taxonomy: the ten top-level data-practice
// categories from the Usable Privacy Policy Project corpus.
var OPP115 = []OPP115Category{
	{"First Party Collection/Use", []string{"collect", "use", "gather", "receive", "obtain", "record", "process"}},
	{"Third Party Sharing/Collection", []string{"share", "disclose", "sell", "transfer", "third party", "partner", "provider"}},
	{"User Choice/Control", []string{"choice", "opt out", "opt in", "control", "settings", "choose", "consent"}},
	{"User Access, Edit and Deletion", []string{"access", "edit", "delete", "correct", "update", "remove", "download"}},
	{"Data Retention", []string{"retain", "retention", "keep", "store", "preserve", "as long as"}},
	{"Data Security", []string{"security", "encrypt", "protect", "safeguard", "secure"}},
	{"Policy Change", []string{"change", "update", "modify", "revise", "notify"}},
	{"Do Not Track", []string{"do not track", "dnt", "tracking signal"}},
	{"International and Specific Audiences", []string{"children", "california", "europe", "international", "transfer", "gdpr", "ccpa"}},
	{"Other", nil},
}

// MatchOPP115 classifies a statement into OPP-115 categories by keyword
// cueing (Algorithm 1's Match(s, T)). Statements matching nothing go to
// "Other".
func MatchOPP115(statement string) []string {
	lower := strings.ToLower(statement)
	var out []string
	for _, c := range OPP115 {
		for _, kw := range c.Keywords {
			if strings.Contains(lower, kw) {
				out = append(out, c.Name)
				break
			}
		}
	}
	if len(out) == 0 {
		out = append(out, "Other")
	}
	return out
}
