package corpus

import "math/rand"

// Healthcare-domain vocabulary demonstrating §5's claim that "the system
// generalizes across domains without modification": none of these terms
// appear in any fixed taxonomy the pipeline consults, yet the LLM
// extraction and Chain-of-Layer induction handle them unchanged.
var healthDataTypes = []string{
	"medical record number", "diagnosis code", "prescription history",
	"lab result", "immunization record", "allergy list", "vital sign reading",
	"blood pressure measurement", "glucose level", "heart rate trace",
	"imaging study", "radiology report", "pathology slide", "genomic sequence",
	"insurance member id", "claim record", "copay amount",
	"appointment history", "referral letter", "discharge summary",
	"mental health note", "therapy session recording", "wearable sensor stream",
	"medication adherence log", "clinical trial enrollment status",
}

var healthParties = []string{
	"treating physician", "specialist consultant", "pharmacy network",
	"health insurance plan", "clinical laboratory", "imaging center",
	"care coordination vendor", "telehealth platform", "public health agency",
	"clinical research sponsor", "health information exchange",
	"billing clearinghouse", "medical device manufacturer",
}

var healthActions = []string{
	"enroll in a care program", "schedule an appointment",
	"refill a prescription", "message your care team",
	"upload a wearable device reading", "complete an intake questionnaire",
	"consent to a clinical trial", "request your medical records",
}

// HealthTrack returns a healthcare-domain synthetic policy used by the
// cross-domain generalization experiment. It reuses the same statement
// templates as the consumer policies but draws entirely from clinical
// vocabulary.
func HealthTrack() string {
	g := &generator{
		cfg: Config{
			Company:            "HealthTrack",
			Seed:               3003,
			PracticeStatements: 150,
			BoilerplateEvery:   2,
		},
		r:       rand.New(rand.NewSource(3003)),
		data:    healthDataTypes,
		parties: healthParties,
		actions: healthActions,
	}
	g.render()
	return g.b.String()
}
