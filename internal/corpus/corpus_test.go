package corpus

import (
	"strings"
	"testing"
)

func words(s string) int { return len(strings.Fields(s)) }

func TestTikTakScale(t *testing.T) {
	p := TikTak()
	n := words(p)
	if n < 9000 || n > 25000 {
		t.Errorf("TikTak word count = %d, want ~15k", n)
	}
	if !strings.Contains(p, "# TikTak Privacy Policy") {
		t.Error("missing heading")
	}
}

func TestMetaBookScale(t *testing.T) {
	p := MetaBook()
	n := words(p)
	if n < 28000 || n > 60000 {
		t.Errorf("MetaBook word count = %d, want ~40k", n)
	}
	// MetaBook must be substantially larger than TikTak.
	if n < 2*words(TikTak()) {
		t.Error("MetaBook not ~3x TikTak scale")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Company: "X", Seed: 7, PracticeStatements: 50, DataRichness: 30, EntityRichness: 30}
	if Generate(cfg) != Generate(cfg) {
		t.Error("generation not deterministic")
	}
	cfg2 := cfg
	cfg2.Seed = 8
	if Generate(cfg) == Generate(cfg2) {
		t.Error("different seeds produced identical policies")
	}
}

func TestTableStatementsEmbedded(t *testing.T) {
	p := TikTak()
	for _, s := range TableStatements("TikTak") {
		if !strings.Contains(p, s) {
			t.Errorf("policy missing table statement %q", s[:40])
		}
	}
}

func TestMiniPolicy(t *testing.T) {
	p := Mini()
	if !strings.Contains(p, "Acme") || words(p) > 200 {
		t.Errorf("mini policy wrong: %d words", words(p))
	}
}

func TestVocabularyRichness(t *testing.T) {
	// The modifier×base cross products must be large enough for the
	// configured richness values.
	if len(dataModifiers)*len(baseDataTypes) < 400 {
		t.Errorf("data vocab too small: %d", len(dataModifiers)*len(baseDataTypes))
	}
	if len(partyModifiers)*len(basePartyTypes) < 540 {
		t.Errorf("party vocab too small: %d", len(partyModifiers)*len(basePartyTypes))
	}
}

func TestMatchOPP115(t *testing.T) {
	cases := map[string]string{
		"We collect your email address.":             "First Party Collection/Use",
		"We share data with third party advertisers": "Third Party Sharing/Collection",
		"You can opt out at any time.":               "User Choice/Control",
		"We retain data for two years.":              "Data Retention",
		"The sky is blue.":                           "Other",
	}
	for stmt, want := range cases {
		got := MatchOPP115(stmt)
		found := false
		for _, g := range got {
			if g == want {
				found = true
			}
		}
		if !found {
			t.Errorf("MatchOPP115(%q) = %v, want to include %q", stmt, got, want)
		}
	}
}

func TestVagueConditionsMarked(t *testing.T) {
	n := 0
	for _, c := range conditions {
		if vagueConditionSet[c] {
			n++
		}
	}
	if n < 3 {
		t.Errorf("only %d vague conditions in vocab", n)
	}
}
