package corpus

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
)

var companyPrefixes = []string{
	"Acme", "Globo", "Nimbus", "Vertex", "Quanta", "Helio", "Orbit",
	"Pixel", "Cobalt", "Aster", "Lumen", "Zephyr", "Drift", "Ember",
	"Fable", "Gale", "Haven", "Iris", "Juniper", "Krill",
}

var companySuffixes = []string{
	"Soft", "Works", "Labs", "Media", "Cloud", "Data", "Net", "Hub",
	"Mart", "Pay", "Play", "Social", "Maps", "Chat",
}

// WriteCorpus generates n synthetic policies and writes them into dir as
// NNNN-company.txt files, one per policy. Generation is deterministic
// for a given (n, seed): the same call always produces the same file
// names and contents, which is what lets benchmark and CI corpora be
// regenerated instead of checked in. Returns the written file names in
// order.
func WriteCorpus(dir string, n int, seed int64) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(seed))
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		company := companyPrefixes[r.Intn(len(companyPrefixes))] + companySuffixes[r.Intn(len(companySuffixes))]
		cfg := Config{
			// Index in the company name keeps every policy's organization
			// distinct, so cross-policy aggregates have real cardinality.
			Company:            fmt.Sprintf("%s%d", company, i),
			Seed:               r.Int63(),
			PracticeStatements: 8 + r.Intn(25),
			BoilerplateEvery:   2 + r.Intn(4),
			DataRichness:       8 + r.Intn(40),
			EntityRichness:     8 + r.Intn(60),
		}
		name := fmt.Sprintf("%04d-%s.txt", i, strings.ToLower(cfg.Company))
		if err := os.WriteFile(filepath.Join(dir, name), []byte(Generate(cfg)), 0o644); err != nil {
			return names, err
		}
		names = append(names, name)
	}
	return names, nil
}
