package corpus

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config parameterizes policy generation; all generation is deterministic
// for a given Config.
type Config struct {
	// Company is the organization name.
	Company string
	// Seed drives the deterministic pseudo-random choices.
	Seed int64
	// PracticeStatements is the number of data-practice statements.
	PracticeStatements int
	// BoilerplateEvery inserts one boilerplate sentence after every N
	// practice statements (0 disables).
	BoilerplateEvery int
	// DataRichness bounds how many modifier×type data combinations are
	// drawn (distinct data vocabulary size).
	DataRichness int
	// EntityRichness bounds how many modifier×type party combinations are
	// drawn (distinct entity vocabulary size).
	EntityRichness int
}

// generator holds per-run state.
type generator struct {
	cfg     Config
	r       *rand.Rand
	data    []string
	parties []string
	actions []string
	b       strings.Builder
}

// Generate renders a synthetic policy for the configuration.
func Generate(cfg Config) string {
	g := &generator{cfg: cfg, r: rand.New(rand.NewSource(cfg.Seed)), actions: userActions}
	g.buildVocab()
	g.render()
	return g.b.String()
}

func (g *generator) buildVocab() {
	// Enumerate modifier×base combinations in a deterministic shuffled
	// order, then take the first N.
	var allData []string
	for _, m := range dataModifiers {
		for _, d := range baseDataTypes {
			if m == "" {
				allData = append(allData, d)
			} else {
				allData = append(allData, m+" "+d)
			}
		}
	}
	g.r.Shuffle(len(allData), func(i, j int) { allData[i], allData[j] = allData[j], allData[i] })
	n := g.cfg.DataRichness
	if n <= 0 || n > len(allData) {
		n = len(allData)
	}
	g.data = allData[:n]

	var allParties []string
	for _, m := range partyModifiers {
		for _, p := range basePartyTypes {
			if m == "" {
				allParties = append(allParties, p)
			} else {
				allParties = append(allParties, m+" "+p)
			}
		}
	}
	g.r.Shuffle(len(allParties), func(i, j int) { allParties[i], allParties[j] = allParties[j], allParties[i] })
	n = g.cfg.EntityRichness
	if n <= 0 || n > len(allParties) {
		n = len(allParties)
	}
	g.parties = allParties[:n]
}

func (g *generator) pick(list []string) string { return list[g.r.Intn(len(list))] }

func (g *generator) pickData() string  { return g.pick(g.data) }
func (g *generator) pickParty() string { return g.pick(g.parties) }

func titleFirst(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}

func plural(term string) string {
	if strings.HasSuffix(term, "s") || strings.HasSuffix(term, "y") {
		return term
	}
	return term + "s"
}

// statement emits one data-practice statement chosen from the template
// families that mirror the paper's Tables 2–3.
func (g *generator) statement() string {
	switch g.r.Intn(13) {
	case 10: // receiver-initiated flow
		return fmt.Sprintf("%s may receive your %s if %s.",
			titleFirst(plural(g.pickParty())), g.pickData(), g.pick(conditions))
	case 11: // two coordinated shares (parties are entity-rich)
		return fmt.Sprintf("We %s %s with %s, and we %s %s to %s.",
			g.pick(shareVerbs), plural(g.pickData()), plural(g.pickParty()),
			g.pick(shareVerbs), plural(g.pickData()), plural(g.pickParty()))
	case 12: // inbound from a named party
		return fmt.Sprintf("%s provide %s to us.",
			titleFirst(plural(g.pickParty())), plural(g.pickData()))
	case 0: // simple collection
		return fmt.Sprintf("We %s your %s.", g.pick(collectVerbs), g.pickData())
	case 1: // coordinated collection
		return fmt.Sprintf("We %s %s and %s automatically.",
			g.pick(collectVerbs), plural(g.pickData()), plural(g.pickData()))
	case 2: // outbound share
		return fmt.Sprintf("We %s your %s with %s.",
			g.pick(shareVerbs), g.pickData(), plural(g.pickParty()))
	case 3: // share with vague purpose condition
		return fmt.Sprintf("We %s %s with %s for %s.",
			g.pick(shareVerbs), plural(g.pickData()), plural(g.pickParty()), g.pick(conditions[3:5]))
	case 4: // conditional collection (leading clause, Table 2 row 3 shape)
		return fmt.Sprintf("If you %s, we will %s and %s your %s.",
			g.pick(g.actions), g.pick(collectVerbs), g.pick(collectVerbs), g.pickData())
	case 5: // enumeration (Table 2 row 2 shape)
		return fmt.Sprintf("When you %s, you may provide %s information, such as %s, %s, %s, and %s.",
			g.pick(g.actions), g.pick([]string{"account and profile", "registration", "payment and delivery", "identity"}),
			g.pickData(), g.pickData(), g.pickData(), g.pickData())
	case 6: // denial
		return fmt.Sprintf("We do not %s your %s.",
			g.pick([]string{"sell", "sell", "disclose", "transfer"}), g.pickData())
	case 7: // self-directed processing with trailing condition
		return fmt.Sprintf("We %s %s when %s.",
			g.pick(selfVerbs), plural(g.pickData()), g.pick(conditions))
	case 8: // inbound from third party
		return fmt.Sprintf("We %s your %s from %s.",
			g.pick([]string{"receive", "obtain", "collect"}), g.pickData(), plural(g.pickParty()))
	default: // multi-actor financial shape (Table 3 row 3)
		return fmt.Sprintf("You make purchases and transactions, and we %s, %s, and %s %s.",
			g.pick(selfVerbs), g.pick(selfVerbs), g.pick(selfVerbs), plural(g.pickData()))
	}
}

var sectionHeads = []string{
	"Information We Collect", "How We Use Information",
	"How We Share Information", "Information From Third Parties",
	"Your Rights and Choices", "Data Retention", "Security",
	"Children's Privacy", "International Transfers", "Advertising",
	"Cookies and Similar Technologies", "Changes to This Policy",
}

func (g *generator) render() {
	fmt.Fprintf(&g.b, "# %s Privacy Policy\n\n", g.cfg.Company)
	fmt.Fprintf(&g.b, "This Privacy Policy describes how %s (\"we\", \"us\", or \"our\") collects, uses, and shares information about you when you use our services.\n\n", g.cfg.Company)

	perSection := g.cfg.PracticeStatements / len(sectionHeads)
	if perSection < 1 {
		perSection = 1
	}
	emitted := 0
	for _, head := range sectionHeads {
		if emitted >= g.cfg.PracticeStatements {
			break
		}
		fmt.Fprintf(&g.b, "## %s\n\n", head)
		for i := 0; i < perSection && emitted < g.cfg.PracticeStatements; i++ {
			g.b.WriteString(g.statement())
			g.b.WriteString("\n\n")
			emitted++
			if g.cfg.BoilerplateEvery > 0 && emitted%g.cfg.BoilerplateEvery == 0 {
				g.b.WriteString(g.pick(boilerplate))
				g.b.WriteString("\n\n")
			}
		}
	}
	// The paper's Tables 2–3 example statements, verbatim-equivalent for
	// our company names, so the decomposition experiments run against
	// exactly these rows.
	g.b.WriteString("## Illustrative Practices\n\n")
	for _, s := range TableStatements(g.cfg.Company) {
		g.b.WriteString(s)
		g.b.WriteString("\n\n")
	}
}

// TableStatements returns the Table 2/Table 3 analog statements for a
// company, used by the decomposition experiments.
func TableStatements(company string) []string {
	return []string{
		// Table 2 row 1 analog.
		"When you create an account, upload content, or contact customer support, you may provide registration information, such as a name, an email address, a password, and a profile image.",
		// Table 2 row 2 analog (ten distinct edges).
		"You may provide account and profile information, such as name, age, username, password, language, email address, phone number, social media account information, and profile image.",
		// Table 2 row 3 analog.
		fmt.Sprintf("If you choose to find other users through your phone contacts, %s will access and collect names, phone numbers, and email addresses of contacts.", company),
		// Table 3 row 1 analog (camera/voice features).
		fmt.Sprintf("When you use the camera feature or use voice-enabled features, %s collects photos, videos, and audio recordings.", company),
		// Table 3 row 2 analog (interaction tracking).
		"You view content, interact with ads, and engage with commercial content.",
		// Table 3 row 3 analog (financial ecosystem).
		fmt.Sprintf("When you make a purchase, you may provide payment information, such as a truncated credit card number, a billing address, and a loyalty account number, and %s will process and preserve transaction records.", company),
	}
}

// TikTak returns the ~15k-word synthetic policy standing in for TikTok's.
func TikTak() string {
	return Generate(Config{
		Company:            "TikTak",
		Seed:               1001,
		PracticeStatements: 530,
		BoilerplateEvery:   1,
		DataRichness:       95,
		EntityRichness:     260,
	})
}

// MetaBook returns the ~40k-word synthetic policy standing in for Meta's.
func MetaBook() string {
	return Generate(Config{
		Company:            "MetaBook",
		Seed:               2002,
		PracticeStatements: 1950,
		BoilerplateEvery:   2,
		DataRichness:       310,
		EntityRichness:     700,
	})
}

// Mini returns a small hand-written policy for fast tests and examples.
func Mini() string {
	return `# Acme Privacy Policy

This Privacy Policy describes how Acme ("we", "us", or "our") handles your information.

## Information We Collect

When you create an account, you may provide your email address. We collect device identifiers automatically.

## How We Share Information

We share email addresses with advertising partners.

We share usage data with service providers for legitimate business purposes.

## Your Choices

We do not sell your personal information.
`
}
