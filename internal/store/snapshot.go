package store

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Snapshot format v2: an indexed, seekable layout that lets recovery load
// every policy's metadata without touching a single payload byte.
//
//	[8]  magic "QSNAPv2\0"
//	     block: header JSON {codec, seq, next_id}
//	     payload sections, one per stored version, raw bytes back to back
//	     block: index JSON (policy metadata + per-version offset/len/CRC)
//	[16] footer: uint64 index block offset + magic "QSNAPix\0"
//
// A "block" is [uint32 length][uint32 CRC32-C][bytes], little-endian — the
// same framing the WAL uses. Payload sections carry no inline framing;
// their offset, length and CRC live in the index, which is itself
// CRC-protected, so every byte of the file is covered by a checksum.
// Opening a snapshot reads the magic, header, footer and index — O(index),
// independent of total payload bytes — and keeps the file handle for
// ReadAt-based lazy payload loads.

const (
	// snapshotV2Name is the indexed snapshot's filename inside the data dir.
	snapshotV2Name = "snapshot.v2"
	// snapshotCodecV2 is the current snapshot schema version.
	snapshotCodecV2 = 2
	// snapBlockHeader is the [len][crc] prefix of a framed block.
	snapBlockHeader = 8
	// snapFooterSize is the trailing [index offset][magic] record.
	snapFooterSize = 16
	// maxSnapBlock bounds the header and index blocks so a corrupted
	// length field cannot force a huge allocation.
	maxSnapBlock = 1 << 30
)

var (
	snapMagic       = [8]byte{'Q', 'S', 'N', 'A', 'P', 'v', '2', 0}
	snapFooterMagic = [8]byte{'Q', 'S', 'N', 'A', 'P', 'i', 'x', 0}
)

// snapHeader is the eagerly-read head of a v2 snapshot. Seq is the WAL
// watermark the snapshot was taken at, with the same replay-skip contract
// as the v1 snapshotState.
type snapHeader struct {
	Codec  int    `json:"codec"`
	Seq    uint64 `json:"seq"`
	NextID int    `json:"next_id"`
}

// payloadRef locates one version's payload section inside the snapshot.
type payloadRef struct {
	off int64
	n   uint32
	crc uint32
}

// snapVersion is one version's index row: full metadata plus the payload
// section location.
type snapVersion struct {
	VersionMeta
	Off int64  `json:"off"`
	Len uint32 `json:"len"`
	CRC uint32 `json:"crc"`
}

// snapPolicy is one policy's index entry.
type snapPolicy struct {
	Meta     Policy        `json:"meta"`
	Versions []snapVersion `json:"versions"`
}

// snapIndex is the trailing index block.
type snapIndex struct {
	Policies []snapPolicy `json:"policies"`
}

// writeBlock frames data as [len][crc][bytes] and returns bytes written.
func writeBlock(w io.Writer, data []byte) (int64, error) {
	var hdr [snapBlockHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(data)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(data, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, err
	}
	if _, err := w.Write(data); err != nil {
		return 0, err
	}
	return int64(snapBlockHeader + len(data)), nil
}

// writeSnapshotV2 streams a v2 snapshot of the given policies (already in
// canonical order) to w. load materializes each version's payload bytes —
// inline for WAL-resident versions, a snapshot read for ref'd ones. The
// returned index records where every payload section landed, so a caller
// writing to a real file can re-point in-memory refs at the new offsets.
func writeSnapshotV2(w io.Writer, hdr snapHeader, policies []*policyState, load func(id string, v *Version) ([]byte, error)) (snapIndex, error) {
	var off int64
	n, err := w.Write(snapMagic[:])
	if err != nil {
		return snapIndex{}, fmt.Errorf("store: write snapshot magic: %w", err)
	}
	off += int64(n)
	hdrJSON, err := json.Marshal(hdr)
	if err != nil {
		return snapIndex{}, fmt.Errorf("store: encode snapshot header: %w", err)
	}
	bn, err := writeBlock(w, hdrJSON)
	if err != nil {
		return snapIndex{}, fmt.Errorf("store: write snapshot header: %w", err)
	}
	off += bn
	idx := snapIndex{Policies: make([]snapPolicy, 0, len(policies))}
	for _, st := range policies {
		sp := snapPolicy{Meta: st.Meta, Versions: make([]snapVersion, 0, len(st.Versions))}
		for i := range st.Versions {
			v := &st.Versions[i]
			payload, err := load(st.Meta.ID, v)
			if err != nil {
				return snapIndex{}, fmt.Errorf("store: snapshot payload %s/v%d: %w", st.Meta.ID, v.N, err)
			}
			if _, err := w.Write(payload); err != nil {
				return snapIndex{}, fmt.Errorf("store: write snapshot payload: %w", err)
			}
			sp.Versions = append(sp.Versions, snapVersion{
				VersionMeta: v.VersionMeta,
				Off:         off,
				Len:         uint32(len(payload)),
				CRC:         crc32.Checksum(payload, crcTable),
			})
			off += int64(len(payload))
		}
		idx.Policies = append(idx.Policies, sp)
	}
	idxJSON, err := json.Marshal(idx)
	if err != nil {
		return snapIndex{}, fmt.Errorf("store: encode snapshot index: %w", err)
	}
	indexOff := off
	if _, err := writeBlock(w, idxJSON); err != nil {
		return snapIndex{}, fmt.Errorf("store: write snapshot index: %w", err)
	}
	var footer [snapFooterSize]byte
	binary.LittleEndian.PutUint64(footer[0:8], uint64(indexOff))
	copy(footer[8:], snapFooterMagic[:])
	if _, err := w.Write(footer[:]); err != nil {
		return snapIndex{}, fmt.Errorf("store: write snapshot footer: %w", err)
	}
	return idx, nil
}

// snapshotFile is an open v2 snapshot: the parsed header and index plus
// the file handle payload loads ReadAt from.
type snapshotFile struct {
	f   *os.File
	hdr snapHeader
	idx snapIndex
}

// openSnapshotV2 opens and validates the v2 snapshot at path. A missing
// file surfaces as fs.ErrNotExist so callers can fall back to v1.
func openSnapshotV2(path string) (*snapshotFile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	sf, err := readSnapshotV2(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: snapshot %s: %w", path, err)
	}
	return sf, nil
}

// readBlockAt reads and CRC-verifies one framed block at off.
func readBlockAt(f *os.File, off, fileSize int64, what string) ([]byte, error) {
	var hdr [snapBlockHeader]byte
	if _, err := f.ReadAt(hdr[:], off); err != nil {
		return nil, fmt.Errorf("read %s header: %w", what, err)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if int64(length) > maxSnapBlock || off+snapBlockHeader+int64(length) > fileSize {
		return nil, fmt.Errorf("implausible %s length %d", what, length)
	}
	data := make([]byte, length)
	if _, err := f.ReadAt(data, off+snapBlockHeader); err != nil {
		return nil, fmt.Errorf("read %s: %w", what, err)
	}
	if crc32.Checksum(data, crcTable) != sum {
		return nil, fmt.Errorf("%s checksum mismatch", what)
	}
	return data, nil
}

func readSnapshotV2(f *os.File) (*snapshotFile, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < int64(len(snapMagic))+2*snapBlockHeader+snapFooterSize {
		return nil, fmt.Errorf("truncated: %d bytes", size)
	}
	var magic [8]byte
	if _, err := f.ReadAt(magic[:], 0); err != nil {
		return nil, fmt.Errorf("read magic: %w", err)
	}
	if magic != snapMagic {
		return nil, fmt.Errorf("bad magic %q", magic[:])
	}
	hdrJSON, err := readBlockAt(f, int64(len(snapMagic)), size, "header")
	if err != nil {
		return nil, err
	}
	var hdr snapHeader
	if err := json.Unmarshal(hdrJSON, &hdr); err != nil {
		return nil, fmt.Errorf("decode header: %w", err)
	}
	if hdr.Codec > snapshotCodecV2 {
		return nil, fmt.Errorf("codec %d is newer than supported %d", hdr.Codec, snapshotCodecV2)
	}
	if hdr.Codec < snapshotCodecV2 {
		return nil, fmt.Errorf("unexpected codec %d in indexed snapshot", hdr.Codec)
	}
	var footer [snapFooterSize]byte
	if _, err := f.ReadAt(footer[:], size-snapFooterSize); err != nil {
		return nil, fmt.Errorf("read footer: %w", err)
	}
	if [8]byte(footer[8:16]) != snapFooterMagic {
		return nil, fmt.Errorf("bad footer magic %q", footer[8:16])
	}
	indexOff := int64(binary.LittleEndian.Uint64(footer[0:8]))
	if indexOff < int64(len(snapMagic))+snapBlockHeader || indexOff >= size-snapFooterSize {
		return nil, fmt.Errorf("implausible index offset %d", indexOff)
	}
	idxJSON, err := readBlockAt(f, indexOff, size, "index")
	if err != nil {
		return nil, err
	}
	var idx snapIndex
	if err := json.Unmarshal(idxJSON, &idx); err != nil {
		return nil, fmt.Errorf("decode index: %w", err)
	}
	for _, sp := range idx.Policies {
		for _, sv := range sp.Versions {
			if sv.Off < 0 || sv.Off+int64(sv.Len) > indexOff {
				return nil, fmt.Errorf("payload section %s/v%d out of bounds", sp.Meta.ID, sv.N)
			}
		}
	}
	return &snapshotFile{f: f, hdr: hdr, idx: idx}, nil
}

// load reads and CRC-verifies one payload section.
func (sf *snapshotFile) load(ref payloadRef) ([]byte, error) {
	buf := make([]byte, ref.n)
	if _, err := sf.f.ReadAt(buf, ref.off); err != nil {
		return nil, fmt.Errorf("read payload section at %d: %w", ref.off, err)
	}
	if crc32.Checksum(buf, crcTable) != ref.crc {
		return nil, fmt.Errorf("payload section at %d: checksum mismatch", ref.off)
	}
	return buf, nil
}

func (sf *snapshotFile) Close() error { return sf.f.Close() }

// saveSnapshotV2 writes a v2 snapshot durably and atomically into dir
// (temp file, fsync, rename, directory fsync — the same discipline as
// cache.Save) and reopens it for reading. The WAL is truncated right
// after this returns, so a snapshot living only in the page cache would
// mean losing both.
func saveSnapshotV2(dir string, hdr snapHeader, policies []*policyState, load func(id string, v *Version) ([]byte, error)) (*snapshotFile, snapIndex, error) {
	path := filepath.Join(dir, snapshotV2Name)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, snapIndex{}, fmt.Errorf("store: write snapshot: %w", err)
	}
	idx, werr := writeSnapshotV2(f, hdr, policies, load)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return nil, snapIndex{}, werr
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return nil, snapIndex{}, fmt.Errorf("store: commit snapshot: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return nil, snapIndex{}, err
	}
	sf, err := openSnapshotV2(path)
	if err != nil {
		return nil, snapIndex{}, fmt.Errorf("store: reopen snapshot: %w", err)
	}
	return sf, idx, nil
}

// syncDir fsyncs dir so a just-renamed snapshot survives a host crash.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("store: sync dir: %w", err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: sync dir: %w", err)
	}
	return nil
}
