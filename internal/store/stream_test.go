package store

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

func TestRecordReaderRoundTrip(t *testing.T) {
	recs := []Record{
		{Seq: 1, Op: "create", ID: "p1", Name: "pol", Version: mkVersion("Acme", "v1")},
		{Seq: 2, Op: "append", ID: "p1", Version: mkVersion("Acme Corp", "v2")},
		{Seq: 3, Op: "create", ID: "p2", Name: "other", Version: mkVersion("Bmax", "b1")},
	}
	var buf bytes.Buffer
	for _, rec := range recs {
		if err := WriteRecord(&buf, rec); err != nil {
			t.Fatal(err)
		}
	}
	rr := NewRecordReader(&buf)
	for i, want := range recs {
		got, err := rr.Next()
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Seq != want.Seq || got.Op != want.Op || got.ID != want.ID ||
			string(got.Version.Payload) != string(want.Version.Payload) {
			t.Errorf("record %d = %+v, want %+v", i, got, want)
		}
	}
	if _, err := rr.Next(); err != io.EOF {
		t.Errorf("end of stream = %v, want io.EOF", err)
	}
}

func TestRecordReaderRejectsTornFrames(t *testing.T) {
	var frame bytes.Buffer
	if err := WriteRecord(&frame, Record{Seq: 1, Op: "create", ID: "p1", Version: mkVersion("Acme", "payload")}); err != nil {
		t.Fatal(err)
	}
	whole := frame.Bytes()
	// Every truncation point — a connection can die on any byte boundary —
	// must surface as ErrBadFrame, never a partial record or a panic.
	for cut := 1; cut < len(whole); cut++ {
		rr := NewRecordReader(bytes.NewReader(whole[:cut]))
		if _, err := rr.Next(); !errors.Is(err, ErrBadFrame) {
			t.Fatalf("cut at %d: err = %v, want ErrBadFrame", cut, err)
		}
	}
	// A flipped payload byte must fail the checksum.
	corrupt := append([]byte(nil), whole...)
	corrupt[len(corrupt)-1] ^= 0xff
	if _, err := NewRecordReader(bytes.NewReader(corrupt)).Next(); !errors.Is(err, ErrBadFrame) {
		t.Errorf("corrupt payload err = %v, want ErrBadFrame", err)
	}
	// An implausible length is rejected before any allocation attempt.
	huge := []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	if _, err := NewRecordReader(bytes.NewReader(huge)).Next(); !errors.Is(err, ErrBadFrame) {
		t.Errorf("huge length err = %v, want ErrBadFrame", err)
	}
}

// FuzzReplicationStream feeds hostile bytes to the follower's frame
// reader: whatever arrives over the wire, Next must never panic and never
// return a record that did not pass length, checksum, and decode intact.
// Records it does accept must re-encode to frames that parse back equal —
// the round-trip property a replication codec lives or dies by.
func FuzzReplicationStream(f *testing.F) {
	var seed bytes.Buffer
	for _, rec := range []Record{
		{Seq: 1, Op: "create", ID: "p1", Name: "pol", Version: mkVersion("Acme", "v1-payload")},
		{Seq: 2, Op: "append", ID: "p1", Version: mkVersion("Acme Corp", "v2-payload")},
	} {
		if err := WriteRecord(&seed, rec); err != nil {
			f.Fatal(err)
		}
	}
	whole := seed.Bytes()
	f.Add(whole)
	f.Add(whole[:len(whole)/2])           // torn mid-record
	f.Add(whole[:walHeaderSize-2])        // torn mid-header
	f.Add([]byte{})                       // empty stream
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // implausible length, short header
	f.Add(bytes.Repeat([]byte{0x00}, 64)) // zero length, zero checksum
	corrupted := append([]byte(nil), whole...)
	corrupted[walHeaderSize+3] ^= 0x80 // flip a payload byte: checksum must catch it
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, data []byte) {
		rr := NewRecordReader(bytes.NewReader(data))
		for {
			rec, err := rr.Next()
			if err != nil {
				if err != io.EOF && !errors.Is(err, ErrBadFrame) {
					t.Fatalf("unexpected error class: %v", err)
				}
				return
			}
			// An accepted record survived CRC + decode; it must round-trip.
			var buf bytes.Buffer
			if err := WriteRecord(&buf, rec); err != nil {
				t.Fatalf("re-encode accepted record: %v", err)
			}
			back, err := NewRecordReader(&buf).Next()
			if err != nil {
				t.Fatalf("re-decode accepted record: %v", err)
			}
			if back.Seq != rec.Seq || back.Op != rec.Op || back.ID != rec.ID {
				t.Fatalf("round trip changed record: %+v -> %+v", rec, back)
			}
		}
	})
}
