package store

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// walBytesFor frames ops into an in-memory log.
func walBytesFor(t *testing.T, ops ...walOp) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, op := range ops {
		if _, err := appendWALRecord(&buf, op); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// flakyReader yields from data, then fails with err instead of EOF.
type flakyReader struct {
	data []byte
	err  error
}

func (r *flakyReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

func TestReplayWALSurfacesTransientReadErrors(t *testing.T) {
	// Regression: a non-EOF read error (a failing disk, not a torn write)
	// must abort the open as fatal, not masquerade as a corrupt tail that
	// recovery would respond to by truncating away valid records.
	log := walBytesFor(t,
		walOp{Seq: 1, Op: "create", ID: "p1", Name: "pol", Version: mkVersion("Acme", "v1")},
		walOp{Seq: 2, Op: "append", ID: "p1", Version: mkVersion("Acme", "v2")},
	)
	ioErr := errors.New("input/output error")
	for name, r := range map[string]io.Reader{
		// Error surfaces while reading a record payload.
		"mid-record": &flakyReader{data: log[:len(log)-4], err: ioErr},
		// Error surfaces at a clean record boundary (where EOF would be).
		"at-boundary": &flakyReader{data: log, err: ioErr},
	} {
		t.Run(name, func(t *testing.T) {
			_, _, corrupt, err := replayWAL(r, func(walOp) error { return nil })
			_ = corrupt
			if !errors.Is(err, ioErr) {
				t.Fatalf("err = %v, want wrapped %v", err, ioErr)
			}
			if corrupt != nil {
				t.Errorf("transient read error reported as corrupt tail: %v", corrupt)
			}
		})
	}
}

func TestReplayWALTornTailStillTruncates(t *testing.T) {
	// The genuine torn-write cases keep their truncate-and-continue
	// semantics alongside the fatal-error path above.
	log := walBytesFor(t, walOp{Seq: 1, Op: "create", ID: "p1", Name: "pol", Version: mkVersion("Acme", "v1")})
	intact := int64(len(log))
	for name, tail := range map[string][]byte{
		"partial-header":  {0x01, 0x02},
		"partial-payload": {0xFF, 0x00, 0x00, 0x00, 0x12, 0x34, 0x56, 0x78, 'x'},
	} {
		t.Run(name, func(t *testing.T) {
			applied := 0
			offset, records, corrupt, err := replayWAL(bytes.NewReader(append(append([]byte{}, log...), tail...)),
				func(walOp) error { applied++; return nil })
			if err != nil {
				t.Fatalf("torn tail must not be fatal: %v", err)
			}
			if corrupt == nil {
				t.Fatal("torn tail not reported")
			}
			if offset != intact || records != 1 || applied != 1 {
				t.Errorf("offset=%d records=%d applied=%d, want %d/1/1", offset, records, applied, intact)
			}
		})
	}
}
