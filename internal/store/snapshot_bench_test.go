package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

// BenchmarkSnapshotOpen measures OpenDisk against the two snapshot
// formats at equal logical content:
//
//	v1  legacy monolithic JSON snapshot — recovery decodes every payload
//	    (base64 inside JSON) before the store is usable
//	v2  indexed snapshot — recovery reads the header and metadata index;
//	    payloads stay on disk behind LoadPayload
//
// The v2 dir is produced by migrating the v1 fixture (open + Close), so
// both formats hold byte-identical policies. Payloads carry 2KiB of
// filler to model real analysis envelopes. E17 in EXPERIMENTS.md runs
// this sweep at 100/1k; sizes are overridable for larger runs with e.g.
// QUAGMIRE_SNAPSHOT_BENCH_SIZES=100,1000,10000.

const snapshotBenchPayloadPad = 2048

func snapshotBenchSizes(b *testing.B) []int {
	env := os.Getenv("QUAGMIRE_SNAPSHOT_BENCH_SIZES")
	if env == "" {
		return []int{100, 1000}
	}
	var sizes []int
	for _, s := range strings.Split(env, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			b.Fatalf("bad QUAGMIRE_SNAPSHOT_BENCH_SIZES entry %q", s)
		}
		sizes = append(sizes, n)
	}
	return sizes
}

func BenchmarkSnapshotOpen(b *testing.B) {
	for _, n := range snapshotBenchSizes(b) {
		// v1: each open replays the legacy snapshot. Opening a v1 dir
		// upgrades it on Close, so the pristine legacy file is restored
		// between iterations (off the clock).
		b.Run(fmt.Sprintf("v1/policies-%d", n), func(b *testing.B) {
			dir := b.TempDir()
			writeLegacyV1Dir(b, dir, n, 1, snapshotBenchPayloadPad)
			legacyPath := filepath.Join(dir, snapshotKey+".json")
			legacy, err := os.ReadFile(legacyPath)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, err := OpenDisk(dir, Options{})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := d.Close(); err != nil {
					b.Fatal(err)
				}
				os.Remove(filepath.Join(dir, snapshotV2Name))
				os.Remove(filepath.Join(dir, "wal.log"))
				if err := os.WriteFile(legacyPath, legacy, 0o644); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})

		b.Run(fmt.Sprintf("v2/policies-%d", n), func(b *testing.B) {
			dir := b.TempDir()
			writeLegacyV1Dir(b, dir, n, 1, snapshotBenchPayloadPad)
			d, err := OpenDisk(dir, Options{})
			if err != nil {
				b.Fatal(err)
			}
			if err := d.Close(); err != nil { // migrates to v2
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d, err := OpenDisk(dir, Options{})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				// Nothing changed, so Close skips compaction; the v2
				// snapshot is reused as-is by the next iteration.
				if err := d.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}
