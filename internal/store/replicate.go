package store

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"time"
)

// Replication hooks: the v2 snapshot plus the seq-watermarked WAL tail
// together form a state-shipping primitive. A follower bootstraps from
// SnapshotTo (an indexed snapshot it can open directly), then catches up
// and stays current by polling ReplayFrom with its last-applied sequence
// number. ErrCompacted tells a follower it fell behind the primary's
// compaction horizon and must re-bootstrap from a fresh snapshot.

// ErrCompacted reports that the requested replay window starts below the
// snapshot watermark: those records were compacted away, and the caller
// must bootstrap from a snapshot instead.
var ErrCompacted = errors.New("store: records compacted away")

// Record is one seq-numbered store mutation — the unit of both WAL
// framing and replication shipping.
type Record struct {
	// Seq is the mutation's store-wide sequence number, strictly
	// increasing across compactions. The snapshot records the sequence it
	// was taken at, so replay can skip records the snapshot already
	// contains — which is what makes an interrupted compaction (snapshot
	// saved, WAL not yet truncated) recoverable instead of a replay of
	// duplicate creates and appends.
	Seq uint64 `json:"seq"`
	// Op is "create" or "append".
	Op string `json:"op"`
	// ID is the policy the mutation applies to (the assigned ID for
	// creates, so replay reproduces it exactly).
	ID string `json:"id"`
	// Name is the policy name (creates only).
	Name string `json:"name,omitempty"`
	// Version is the stored version, timestamps and payload included.
	Version Version `json:"version"`
}

// SnapshotTo streams an indexed v2 snapshot of the store's current state
// to w and returns the sequence watermark it was taken at. The stream is
// byte-compatible with the on-disk snapshot.v2 file, so a follower can
// write it to its own data directory and OpenDisk from it. Concurrent
// reads proceed; writes block for the duration.
func (d *Disk) SnapshotTo(w io.Writer) (uint64, error) {
	defer d.opts.observe("snapshot_to", time.Now())
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return 0, ErrClosed
	}
	hdr := snapHeader{Codec: snapshotCodecV2, Seq: d.seq, NextID: d.c.nextID}
	if _, err := writeSnapshotV2(w, hdr, d.sortedStatesLocked(), d.loadPayloadLocked); err != nil {
		return 0, err
	}
	return d.seq, nil
}

// ReplayFrom invokes fn for every durable WAL record with sequence number
// strictly greater than seq, in order. It returns ErrCompacted when seq
// predates the snapshot watermark — the records are gone and the caller
// must bootstrap via SnapshotTo. A fn error aborts the replay.
func (d *Disk) ReplayFrom(seq uint64, fn func(Record) error) error {
	defer d.opts.observe("replay_from", time.Now())
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return ErrClosed
	}
	if seq < d.snapSeq {
		return fmt.Errorf("%w: requested replay from seq %d, snapshot watermark is %d", ErrCompacted, seq, d.snapSeq)
	}
	f, err := os.Open(d.walPath)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("store: open wal for replay: %w", err)
	}
	defer f.Close()
	// Limit the read to the durable boundary: bytes past d.walBytes are a
	// rolled-back or torn tail and were never acknowledged.
	_, _, corrupt, err := replayWAL(io.LimitReader(f, d.walBytes), func(op Record) error {
		if op.Seq <= seq {
			return nil
		}
		return fn(op)
	})
	if err != nil {
		return err
	}
	if corrupt != nil {
		return fmt.Errorf("store: wal corrupt inside durable boundary: %w", corrupt)
	}
	return nil
}

// sortedStatesLocked returns the policy states in canonical ID order.
// The caller holds d.mu (read or write).
func (d *Disk) sortedStatesLocked() []*policyState {
	ids := sortedIDs(d.c.policies)
	out := make([]*policyState, len(ids))
	for i, id := range ids {
		out[i] = d.c.policies[id]
	}
	return out
}

// loadPayloadLocked materializes one version's payload bytes: inline for
// WAL-resident versions, a CRC-verified snapshot read for ref'd ones.
// The caller holds d.mu (read or write).
func (d *Disk) loadPayloadLocked(id string, v *Version) ([]byte, error) {
	if v.Payload != nil || v.ref == nil {
		return v.Payload, nil
	}
	if d.snapFile == nil {
		return nil, fmt.Errorf("store: payload %s/v%d referenced but no snapshot open", id, v.N)
	}
	return d.snapFile.load(*v.ref)
}
