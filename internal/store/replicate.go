package store

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"time"
)

// Replication hooks: the v2 snapshot plus the seq-watermarked WAL tail
// together form a state-shipping primitive. A follower bootstraps from
// SnapshotTo (an indexed snapshot it can open directly), then catches up
// and stays current by polling ReplayFrom with its last-applied sequence
// number. ErrCompacted tells a follower it fell behind the primary's
// compaction horizon and must re-bootstrap from a fresh snapshot.

// ErrCompacted reports that the requested replay window starts below the
// snapshot watermark: those records were compacted away, and the caller
// must bootstrap from a snapshot instead.
var ErrCompacted = errors.New("store: records compacted away")

// ErrReplicationGap reports a replicated record whose sequence number does
// not extend the follower's durable state by exactly one: applying it
// would silently skip acknowledged primary writes, so the follower must
// resync (re-tail from its watermark, or re-bootstrap) instead.
var ErrReplicationGap = errors.New("store: replication gap")

// Replicator is the primary-side replication surface a PolicyStore may
// offer: a seq-watermarked snapshot stream for follower bootstrap, ordered
// WAL-tail replay for catch-up, and a blocking watch for tailing. The disk
// backend implements it; the HTTP layer exposes it under /v1/replicate
// whenever the serving store does.
type Replicator interface {
	SnapshotTo(w io.Writer, started func(seq uint64)) (uint64, error)
	ReplayFrom(seq uint64, fn func(Record) error) error
	WaitSeq(ctx context.Context, after uint64) (uint64, error)
	Seq() uint64
}

// Record is one seq-numbered store mutation — the unit of both WAL
// framing and replication shipping.
type Record struct {
	// Seq is the mutation's store-wide sequence number, strictly
	// increasing across compactions. The snapshot records the sequence it
	// was taken at, so replay can skip records the snapshot already
	// contains — which is what makes an interrupted compaction (snapshot
	// saved, WAL not yet truncated) recoverable instead of a replay of
	// duplicate creates and appends.
	Seq uint64 `json:"seq"`
	// Op is "create" or "append".
	Op string `json:"op"`
	// ID is the policy the mutation applies to (the assigned ID for
	// creates, so replay reproduces it exactly).
	ID string `json:"id"`
	// Name is the policy name (creates only).
	Name string `json:"name,omitempty"`
	// Version is the stored version, timestamps and payload included.
	Version Version `json:"version"`
}

// SnapshotTo streams an indexed v2 snapshot of the store's current state
// to w and returns the sequence watermark it was taken at. The stream is
// byte-compatible with the on-disk snapshot.v2 file, so a follower can
// write it to its own data directory and OpenDisk from it. started, when
// non-nil, is invoked with the watermark before the first byte is written
// — the HTTP handler uses it to emit the watermark as a response header,
// which must precede the body. Concurrent reads proceed; writes block for
// the duration.
func (d *Disk) SnapshotTo(w io.Writer, started func(seq uint64)) (uint64, error) {
	defer d.opts.observe("snapshot_to", time.Now())
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return 0, ErrClosed
	}
	if started != nil {
		started(d.seq)
	}
	hdr := snapHeader{Codec: snapshotCodecV2, Seq: d.seq, NextID: d.c.nextID}
	if _, err := writeSnapshotV2(w, hdr, d.sortedStatesLocked(), d.loadPayloadLocked); err != nil {
		return 0, err
	}
	return d.seq, nil
}

// ReplayFrom invokes fn for every durable WAL record with sequence number
// strictly greater than seq, in order. It returns ErrCompacted when seq
// predates the snapshot watermark — the records are gone and the caller
// must bootstrap via SnapshotTo. A fn error aborts the replay.
func (d *Disk) ReplayFrom(seq uint64, fn func(Record) error) error {
	defer d.opts.observe("replay_from", time.Now())
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return ErrClosed
	}
	if seq < d.snapSeq {
		return fmt.Errorf("%w: requested replay from seq %d, snapshot watermark is %d", ErrCompacted, seq, d.snapSeq)
	}
	f, err := os.Open(d.walPath)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("store: open wal for replay: %w", err)
	}
	defer f.Close()
	// Limit the read to the durable boundary: bytes past d.walBytes are a
	// rolled-back or torn tail and were never acknowledged.
	_, _, corrupt, err := replayWAL(io.LimitReader(f, d.walBytes), func(op Record) error {
		if op.Seq <= seq {
			return nil
		}
		return fn(op)
	})
	if err != nil {
		return err
	}
	if corrupt != nil {
		return fmt.Errorf("store: wal corrupt inside durable boundary: %w", corrupt)
	}
	return nil
}

// sortedStatesLocked returns the policy states in canonical ID order.
// The caller holds d.mu (read or write).
func (d *Disk) sortedStatesLocked() []*policyState {
	ids := sortedIDs(d.c.policies)
	out := make([]*policyState, len(ids))
	for i, id := range ids {
		out[i] = d.c.policies[id]
	}
	return out
}

// loadPayloadLocked materializes one version's payload bytes: inline for
// WAL-resident versions, a CRC-verified snapshot read for ref'd ones.
// The caller holds d.mu (read or write).
func (d *Disk) loadPayloadLocked(id string, v *Version) ([]byte, error) {
	if v.Payload != nil || v.ref == nil {
		return v.Payload, nil
	}
	if d.snapFile == nil {
		return nil, fmt.Errorf("store: payload %s/v%d referenced but no snapshot open", id, v.N)
	}
	return d.snapFile.load(*v.ref)
}

// Seq returns the sequence number of the last durable mutation — the
// store's replication watermark. On a follower this is the applied
// watermark: recovery rebuilds it from the snapshot header plus WAL
// replay, so it survives crashes without any separate watermark file.
func (d *Disk) Seq() uint64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.seq
}

// WaitSeq blocks until the store's sequence number exceeds after, the
// context is done, or the store closes, and returns the current sequence
// number. It is the long-poll primitive behind the WAL-tail endpoint: a
// caught-up follower's stream parks here instead of spinning on replays.
func (d *Disk) WaitSeq(ctx context.Context, after uint64) (uint64, error) {
	for {
		d.mu.RLock()
		seq, ch, closed := d.seq, d.seqWatch, d.closed
		d.mu.RUnlock()
		switch {
		case closed:
			return seq, ErrClosed
		case seq > after:
			return seq, nil
		}
		select {
		case <-ctx.Done():
			return seq, ctx.Err()
		case <-ch:
		}
	}
}

// ApplyRecord applies one replicated primary record to a follower store:
// the record is logged to the follower's own WAL with the primary's
// sequence number preserved (log-before-apply, same as local writes), then
// applied through the shared state machine. Preserving primary seqs is
// what makes the applied watermark durable for free — recovery computes it
// the same way it computes the local one — and makes follower state
// byte-comparable to the primary's.
//
// Delivery is at-least-once: a record at or below the current watermark is
// a duplicate from a reconnect replay and is skipped. A record that skips
// ahead fails with ErrReplicationGap — applying it would hide acknowledged
// primary writes — and the caller must resync.
func (d *Disk) ApplyRecord(rec Record) error {
	defer d.opts.observe("apply_record", time.Now())
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return ErrClosed
	}
	if rec.Seq <= d.seq {
		return nil // duplicate delivery after a reconnect
	}
	if rec.Seq != d.seq+1 {
		return fmt.Errorf("%w: follower at seq %d, record is %d", ErrReplicationGap, d.seq, rec.Seq)
	}
	// logBatch assigns d.seq+1 to a single-record batch — exactly rec.Seq,
	// validated above — so the primary's numbering is preserved verbatim.
	if err := d.logBatch([]walOp{rec}); err != nil {
		return err
	}
	if err := d.applyOp(rec); err != nil {
		return err
	}
	d.maybeCompact()
	return nil
}

// InstallSnapshot writes a snapshot stream (as produced by SnapshotTo)
// into dir as its indexed v2 snapshot and returns the stream's watermark.
// The bytes are staged to a temp file, validated end to end (magic,
// header, index, every CRC boundary), fsynced, and renamed into place —
// a truncated or corrupted transfer can never replace a good snapshot.
// Any existing WAL is removed: a follower only installs a snapshot when
// its local state is being superseded wholesale (first bootstrap, or
// falling behind the primary's compaction horizon), and every record a
// prior WAL could hold is below the new watermark by construction.
//
// The target store must be closed; reopen it with OpenDisk afterwards.
func InstallSnapshot(dir string, r io.Reader) (uint64, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, fmt.Errorf("store: install snapshot: %w", err)
	}
	path := filepath.Join(dir, snapshotV2Name)
	tmp := path + ".bootstrap"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return 0, fmt.Errorf("store: install snapshot: %w", err)
	}
	_, werr := io.Copy(f, r)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("store: install snapshot: %w", werr)
	}
	sf, err := openSnapshotV2(tmp)
	if err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("store: install snapshot: validate: %w", err)
	}
	seq := sf.hdr.Seq
	if cerr := sf.Close(); cerr != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("store: install snapshot: %w", cerr)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("store: install snapshot: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return 0, err
	}
	// Drop the stale WAL (crash-safe either way: leftover records are all at
	// or below the new watermark, which replay skips).
	if err := os.Remove(filepath.Join(dir, "wal.log")); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return 0, fmt.Errorf("store: install snapshot: remove stale wal: %w", err)
	}
	return seq, nil
}
