package store

// Replication stream framing: the wire format the primary ships WAL
// records in and the follower reads them back out of. It is byte-identical
// to the on-disk WAL framing ([uint32 length][uint32 CRC32-C][JSON
// payload], little-endian), so the stream inherits the same torn-tail
// detection the recovery path has: a frame is either fully present with a
// matching checksum or it is rejected, and a record cut mid-flight by a
// dropped connection can never be half-applied.

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// ErrBadFrame reports a replication-stream frame that cannot be trusted:
// a partial header or payload, an implausible length, a checksum mismatch,
// or an undecodable record. The follower treats it exactly like a dropped
// connection — discard the frame, keep the applied watermark where it is,
// and reconnect — so a fault injected mid-record loses bytes, never
// integrity.
var ErrBadFrame = errors.New("store: bad replication frame")

// WriteRecord frames one record onto w using the WAL wire format.
func WriteRecord(w io.Writer, rec Record) error {
	_, err := appendWALRecord(w, rec)
	return err
}

// RecordReader decodes a replication stream frame by frame. It performs no
// internal buffering beyond the current frame, so a caller that applies
// each record as it arrives holds at most one record in memory.
type RecordReader struct {
	r io.Reader
}

// NewRecordReader wraps a replication stream (typically an HTTP response
// body) for frame-at-a-time decoding.
func NewRecordReader(r io.Reader) *RecordReader { return &RecordReader{r: r} }

// Next returns the next intact record. io.EOF marks a clean end of stream
// (the frame boundary coincided with the connection close); every framing
// violation — including a connection cut mid-frame — is reported as an
// error wrapping ErrBadFrame, and no partial record is ever returned.
func (rr *RecordReader) Next() (Record, error) {
	var hdr [walHeaderSize]byte
	if _, err := io.ReadFull(rr.r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return Record{}, io.EOF
		}
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return Record{}, fmt.Errorf("%w: partial header", ErrBadFrame)
		}
		return Record{}, fmt.Errorf("%w: read header: %v", ErrBadFrame, err)
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length > maxWALRecord {
		return Record{}, fmt.Errorf("%w: implausible record length %d", ErrBadFrame, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(rr.r, payload); err != nil {
		return Record{}, fmt.Errorf("%w: partial payload", ErrBadFrame)
	}
	if crc32.Checksum(payload, crcTable) != sum {
		return Record{}, fmt.Errorf("%w: checksum mismatch", ErrBadFrame)
	}
	var rec Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return Record{}, fmt.Errorf("%w: undecodable record", ErrBadFrame)
	}
	return rec, nil
}
