package store

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/cache"
)

// writeLegacyV1Dir fabricates a pre-PR9 data directory: one monolithic
// JSON snapshot with payloads inline (codec 1) and no WAL — exactly what
// an old build's clean Close left behind. pad appends that many filler
// bytes to each payload (benchmarks use it to model real analysis
// envelopes; tests pass 0). Returns the per-policy payloads for later
// verification.
func writeLegacyV1Dir(tb testing.TB, dir string, policies, versionsPer, pad int) map[string][]string {
	tb.Helper()
	created := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	st := snapshotState{Codec: snapshotCodec, NextID: policies + 1}
	payloads := map[string][]string{}
	for i := 1; i <= policies; i++ {
		id := fmt.Sprintf("p%d", i)
		ps := policyState{Meta: Policy{
			ID: id, Name: fmt.Sprintf("legacy-%d.txt", i), Company: fmt.Sprintf("LegacyCo%d", i),
			Created: created, Updated: created, Versions: versionsPer,
		}}
		for n := 1; n <= versionsPer; n++ {
			payload := fmt.Sprintf(`{"codec":1,"legacy":true,"policy":%d,"version":%d}`, i, n) + strings.Repeat("x", pad)
			payloads[id] = append(payloads[id], payload)
			ps.Versions = append(ps.Versions, Version{
				VersionMeta: VersionMeta{
					N: n, Created: created, Company: ps.Meta.Company,
					Bytes: len(payload),
				},
				Payload: []byte(payload),
			})
			st.Seq++
		}
		st.Policies = append(st.Policies, ps)
	}
	snap, err := cache.Open(dir)
	if err != nil {
		tb.Fatal(err)
	}
	if err := snap.Save(snapshotKey, st); err != nil {
		tb.Fatal(err)
	}
	return payloads
}

// TestV1ToV2MigrationDifferential is the differential restart test for
// the snapshot format migration: a legacy v1 directory opens read-only-
// upgraded, compaction rewrites it as v2, and every observable — policy
// list, version metadata, payload bytes — is identical before and after,
// across a clean Close and across a SIGKILL-style abandonment mid-way.
func TestV1ToV2MigrationDifferential(t *testing.T) {
	dir := t.TempDir()
	writeLegacyV1Dir(t, dir, 5, 2, 0)

	d1, err := OpenDisk(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before := dumpState(t, d1)

	// SIGKILL abandonment: mutate on top of the v1 snapshot, then abandon
	// without Close. The append lives only in the WAL; the v1 snapshot is
	// still the on-disk base.
	if _, err := d1.Append("p3", 2, mkVersion("LegacyCo3", "post-migration-v3")); err != nil {
		t.Fatal(err)
	}
	afterAppend := dumpState(t, d1)
	if afterAppend == before {
		t.Fatal("append did not change observable state")
	}

	d2 := reopen(t, dir, Options{})
	if got := dumpState(t, d2); got != afterAppend {
		t.Errorf("state after v1+WAL recovery differs:\n%s\nwant:\n%s", got, afterAppend)
	}
	// Clean Close compacts: the directory is rewritten as an indexed v2
	// snapshot and the legacy file is gone.
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotV2Name)); err != nil {
		t.Fatalf("v2 snapshot missing after migration compaction: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotKey+".json")); !os.IsNotExist(err) {
		t.Errorf("legacy v1 snapshot still present after compaction (err=%v)", err)
	}

	d3 := reopen(t, dir, Options{})
	if got := dumpState(t, d3); got != afterAppend {
		t.Errorf("state after v2 reopen differs:\n%s\nwant:\n%s", got, afterAppend)
	}

	// The migrated directory reports as v2 under inspection, with the full
	// policy census intact.
	info, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.SnapshotCodec != snapshotCodecV2 {
		t.Errorf("inspect codec = %d, want %d", info.SnapshotCodec, snapshotCodecV2)
	}
	if len(info.Policies) != 5 {
		t.Errorf("inspect found %d policies, want 5", len(info.Policies))
	}
	for _, p := range info.Policies {
		want := 2
		if p.ID == "p3" {
			want = 3
		}
		if p.Versions != want {
			t.Errorf("inspect %s versions = %d, want %d", p.ID, p.Versions, want)
		}
		if p.PayloadBytes == 0 {
			t.Errorf("inspect %s payload bytes = 0", p.ID)
		}
	}
}

// TestV1PayloadsReadableBeforeCompaction: a v1-recovered store serves
// payloads correctly through LoadPayload before any compaction ran —
// the inline bytes are authoritative until the first v2 rewrite.
func TestV1PayloadsReadableBeforeCompaction(t *testing.T) {
	dir := t.TempDir()
	payloads := writeLegacyV1Dir(t, dir, 3, 2, 0)

	d, err := OpenDisk(dir, Options{SnapshotThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	for id, versions := range payloads {
		for i, want := range versions {
			got, err := d.LoadPayload(id, i+1)
			if err != nil {
				t.Fatalf("LoadPayload(%s, %d): %v", id, i+1, err)
			}
			if string(got) != want {
				t.Errorf("LoadPayload(%s, %d) = %q, want %q", id, i+1, got, want)
			}
			// Version() stays lazy even for inline v1 payloads.
			v, err := d.Version(id, i+1)
			if err != nil {
				t.Fatal(err)
			}
			if v.Payload != nil {
				t.Errorf("Version(%s, %d) returned a payload; want nil (lazy)", id, i+1)
			}
		}
	}
	// Inspection of the untouched v1 directory reports codec 1.
	info, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.SnapshotCodec != snapshotCodec {
		t.Errorf("inspect codec = %d, want %d (legacy)", info.SnapshotCodec, snapshotCodec)
	}
	d.Close()
}
