package store

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

// backends enumerates the PolicyStore implementations under a shared
// conformance suite.
func backends(t *testing.T) map[string]func(t *testing.T) PolicyStore {
	return map[string]func(t *testing.T) PolicyStore{
		"memory": func(t *testing.T) PolicyStore { return NewMem(Options{}) },
		"disk": func(t *testing.T) PolicyStore {
			d, err := OpenDisk(t.TempDir(), Options{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { d.Close() })
			return d
		},
	}
}

func mkVersion(company, payload string) Version {
	return Version{
		VersionMeta: VersionMeta{
			Company: company,
			Stats:   VersionStats{Nodes: 3, Edges: 2, Segments: 4, Practices: 2},
		},
		Payload: []byte(payload),
	}
}

func TestCreateAssignsSequentialIDs(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			a, err := s.Create("first", mkVersion("Acme", "v1"))
			if err != nil {
				t.Fatal(err)
			}
			b, err := s.Create("second", mkVersion("Bmax", "v1"))
			if err != nil {
				t.Fatal(err)
			}
			if a.ID != "p1" || b.ID != "p2" {
				t.Errorf("IDs = %q, %q, want p1, p2", a.ID, b.ID)
			}
			if a.Versions != 1 || a.Company != "Acme" || a.Name != "first" {
				t.Errorf("meta = %+v", a)
			}
			if a.Created.IsZero() || !a.Created.Equal(a.Updated) {
				t.Errorf("timestamps = %v / %v", a.Created, a.Updated)
			}
		})
	}
}

func TestCreateDefaultsNameToCompany(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			p, err := s.Create("", mkVersion("Acme", "v1"))
			if err != nil {
				t.Fatal(err)
			}
			if p.Name != "Acme" {
				t.Errorf("name = %q", p.Name)
			}
		})
	}
}

func TestAppendCompareAndSwap(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			p, err := s.Create("pol", mkVersion("Acme", "v1"))
			if err != nil {
				t.Fatal(err)
			}
			p2, err := s.Append(p.ID, 1, mkVersion("Acme Corp", "v2"))
			if err != nil {
				t.Fatal(err)
			}
			if p2.Versions != 2 || p2.Company != "Acme Corp" {
				t.Errorf("after append: %+v", p2)
			}
			// A second append against the stale version must CAS-fail.
			if _, err := s.Append(p.ID, 1, mkVersion("Acme", "v2b")); !errors.Is(err, ErrConflict) {
				t.Errorf("stale append err = %v, want ErrConflict", err)
			}
			// The conflicting payload must not have been stored.
			vs, err := s.Versions(p.ID)
			if err != nil {
				t.Fatal(err)
			}
			if len(vs) != 2 {
				t.Errorf("versions = %d, want 2", len(vs))
			}
			if _, err := s.Append("nope", 1, mkVersion("X", "v")); !errors.Is(err, ErrNotFound) {
				t.Errorf("missing policy err = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestVersionHistoryRoundTrip(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			p, err := s.Create("pol", mkVersion("Acme", "payload-1"))
			if err != nil {
				t.Fatal(err)
			}
			v2 := mkVersion("Acme", "payload-2")
			v2.Diff = DiffStats{SegmentsAdded: 3, EdgesAdded: 5, NewTerms: 1}
			if _, err := s.Append(p.ID, 1, v2); err != nil {
				t.Fatal(err)
			}
			vs, err := s.Versions(p.ID)
			if err != nil {
				t.Fatal(err)
			}
			if len(vs) != 2 || vs[0].N != 1 || vs[1].N != 2 {
				t.Fatalf("versions = %+v", vs)
			}
			if vs[1].Diff.SegmentsAdded != 3 || vs[1].Diff.EdgesAdded != 5 {
				t.Errorf("diff = %+v", vs[1].Diff)
			}
			if vs[0].Bytes != len("payload-1") {
				t.Errorf("bytes = %d", vs[0].Bytes)
			}
			got, err := s.Version(p.ID, 1)
			if err != nil {
				t.Fatal(err)
			}
			if got.Payload != nil {
				t.Errorf("Version payload = %q, want nil (lazy)", got.Payload)
			}
			payload, err := s.LoadPayload(p.ID, 1)
			if err != nil {
				t.Fatal(err)
			}
			if string(payload) != "payload-1" {
				t.Errorf("payload = %q", payload)
			}
			if _, err := s.Version(p.ID, 3); !errors.Is(err, ErrNotFound) {
				t.Errorf("missing version err = %v", err)
			}
			if _, err := s.Version(p.ID, 0); !errors.Is(err, ErrNotFound) {
				t.Errorf("version 0 err = %v", err)
			}
			if _, err := s.LoadPayload(p.ID, 3); !errors.Is(err, ErrNotFound) {
				t.Errorf("missing payload err = %v", err)
			}
		})
	}
}

func TestListSortsNumerically(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			for i := 0; i < 12; i++ {
				if _, err := s.Create(fmt.Sprintf("pol%d", i), mkVersion("Acme", "v")); err != nil {
					t.Fatal(err)
				}
			}
			list, err := s.List()
			if err != nil {
				t.Fatal(err)
			}
			if len(list) != 12 {
				t.Fatalf("list = %d", len(list))
			}
			// p10 must sort after p9, not between p1 and p2.
			for i, p := range list {
				if want := fmt.Sprintf("p%d", i+1); p.ID != want {
					t.Errorf("list[%d] = %q, want %q", i, p.ID, want)
				}
			}
		})
	}
}

func TestSameCompanyPoliciesDoNotClobber(t *testing.T) {
	// Regression for the sanitizeKey collision bug: the old cache persisted
	// analyses under sanitized company names, so "Acme Inc" and "Acme-Inc"
	// (both -> "Acme_Inc") silently overwrote each other. ID-keyed storage
	// must keep same-named-company policies fully independent.
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			a, err := s.Create("a", mkVersion("Acme Inc", "payload-A"))
			if err != nil {
				t.Fatal(err)
			}
			b, err := s.Create("b", mkVersion("Acme-Inc", "payload-B"))
			if err != nil {
				t.Fatal(err)
			}
			if a.ID == b.ID {
				t.Fatalf("same ID %q for distinct policies", a.ID)
			}
			// Updating one must not leak into the other.
			if _, err := s.Append(b.ID, 1, mkVersion("Acme-Inc", "payload-B2")); err != nil {
				t.Fatal(err)
			}
			va, err := s.LoadPayload(a.ID, 1)
			if err != nil {
				t.Fatal(err)
			}
			if string(va) != "payload-A" {
				t.Errorf("policy A payload clobbered: %q", va)
			}
			if ma, _ := s.Get(a.ID); ma.Versions != 1 {
				t.Errorf("policy A versions = %d, want 1", ma.Versions)
			}
		})
	}
}

func TestGetNotFound(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			if _, err := s.Get("p1"); !errors.Is(err, ErrNotFound) {
				t.Errorf("err = %v", err)
			}
			if _, err := s.Versions("p1"); !errors.Is(err, ErrNotFound) {
				t.Errorf("err = %v", err)
			}
		})
	}
}

func TestHealthCounts(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			p, err := s.Create("pol", mkVersion("Acme", "v1"))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.Append(p.ID, 1, mkVersion("Acme", "v2")); err != nil {
				t.Fatal(err)
			}
			h := s.Health()
			if !h.OK() {
				t.Errorf("health degraded: %+v", h)
			}
			if h.Policies != 1 || h.Versions != 2 {
				t.Errorf("counts = %d policies / %d versions", h.Policies, h.Versions)
			}
			if name == "disk" && h.WALBytes == 0 {
				t.Error("disk backend reports zero WAL bytes after writes")
			}
		})
	}
}

func TestClockInjection(t *testing.T) {
	fixed := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	s := NewMem(Options{Clock: func() time.Time { return fixed }})
	p, err := s.Create("pol", mkVersion("Acme", "v1"))
	if err != nil {
		t.Fatal(err)
	}
	if !p.Created.Equal(fixed) {
		t.Errorf("created = %v", p.Created)
	}
}

func TestConcurrentAppendsOneWinner(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			p, err := s.Create("pol", mkVersion("Acme", "v1"))
			if err != nil {
				t.Fatal(err)
			}
			const racers = 8
			errs := make(chan error, racers)
			for i := 0; i < racers; i++ {
				go func(i int) {
					_, err := s.Append(p.ID, 1, mkVersion("Acme", fmt.Sprintf("racer-%d", i)))
					errs <- err
				}(i)
			}
			wins := 0
			for i := 0; i < racers; i++ {
				if err := <-errs; err == nil {
					wins++
				} else if !errors.Is(err, ErrConflict) {
					t.Errorf("unexpected error: %v", err)
				}
			}
			if wins != 1 {
				t.Errorf("winners = %d, want exactly 1", wins)
			}
			if meta, _ := s.Get(p.ID); meta.Versions != 2 {
				t.Errorf("versions = %d, want 2", meta.Versions)
			}
		})
	}
}
