package store

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/obs"
)

// reopen abandons d without closing it (simulating a killed process: the
// WAL holds everything, no clean-shutdown snapshot) and opens a fresh
// store over the same directory.
func reopen(t *testing.T, dir string, opts Options) *Disk {
	t.Helper()
	d, err := OpenDisk(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// dumpState renders everything observable through the interface as JSON
// (which also strips time.Time's in-process monotonic clock reading, so
// pre-crash and post-recovery states compare equal).
func dumpState(t *testing.T, s PolicyStore) string {
	t.Helper()
	out := map[string]any{}
	list, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	out["list"] = list
	for _, p := range list {
		vs, err := s.Versions(p.ID)
		if err != nil {
			t.Fatal(err)
		}
		out["versions:"+p.ID] = vs
		for _, vm := range vs {
			payload, err := s.LoadPayload(p.ID, vm.N)
			if err != nil {
				t.Fatal(err)
			}
			out[fmt.Sprintf("payload:%s:%d", p.ID, vm.N)] = string(payload)
		}
	}
	data, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestCrashRecoveryFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.Create("pol", mkVersion("Acme", "v1-payload"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Append(p.ID, 1, mkVersion("Acme Corp", "v2-payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Create("other", mkVersion("Bmax", "b1")); err != nil {
		t.Fatal(err)
	}
	before := dumpState(t, d)

	// No Close: the process "dies" and a new one recovers from the WAL.
	d2 := reopen(t, dir, Options{})
	after := dumpState(t, d2)
	if before != after {
		t.Errorf("recovered state differs:\nbefore: %s\nafter:  %s", before, after)
	}
	// ID assignment continues where the dead process left off.
	p3, err := d2.Create("third", mkVersion("Cort", "c1"))
	if err != nil {
		t.Fatal(err)
	}
	if p3.ID != "p3" {
		t.Errorf("post-recovery ID = %q, want p3", p3.ID)
	}
}

func TestCleanShutdownSnapshotsAndEmptiesWAL(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Create("pol", mkVersion("Acme", "v1")); err != nil {
		t.Fatal(err)
	}
	before := dumpState(t, d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(dir, "wal.log")); err != nil || fi.Size() != 0 {
		t.Errorf("wal after close: %v (size %d), want empty", err, fi.Size())
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotV2Name)); err != nil {
		t.Errorf("snapshot missing: %v", err)
	}
	d2 := reopen(t, dir, Options{})
	if after := dumpState(t, d2); before != after {
		t.Errorf("snapshot-recovered state differs")
	}
}

func TestCorruptTrailingRecordTruncatedWithWarning(t *testing.T) {
	for name, corruptor := range map[string]func(intact []byte) []byte{
		// A torn append: header promises more bytes than exist.
		"torn-record": func(intact []byte) []byte {
			return append(append([]byte{}, intact...), 0xFF, 0x00, 0x00, 0x00, 0x12, 0x34, 0x56, 0x78, 'x', 'y')
		},
		// A flipped bit in the final record's payload fails the CRC.
		"bit-flip": func(intact []byte) []byte {
			return append(append([]byte{}, intact[:len(intact)-1]...), intact[len(intact)-1]^0x01)
		},
		// Garbage after the valid prefix.
		"garbage-tail": func(intact []byte) []byte {
			return append(append([]byte{}, intact...), []byte("not a wal record")...)
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			d, err := OpenDisk(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := d.Create("pol", mkVersion("Acme", "v1")); err != nil {
				t.Fatal(err)
			}
			before := dumpState(t, d)
			// Abandon d without Close (no snapshot), then damage the log.
			walPath := filepath.Join(dir, "wal.log")
			intact, err := os.ReadFile(walPath)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(walPath, corruptor(intact), 0o644); err != nil {
				t.Fatal(err)
			}
			var logBuf bytes.Buffer
			d2, err := OpenDisk(dir, Options{Logger: log.New(&logBuf, "", 0)})
			if err != nil {
				t.Fatalf("recovery must not fail on a corrupt tail: %v", err)
			}
			defer d2.Close()
			if !bytes.Contains(logBuf.Bytes(), []byte("corrupt wal record")) {
				t.Errorf("no corruption warning logged: %q", logBuf.String())
			}
			if name == "bit-flip" {
				// The sole record was damaged: nothing survives.
				list, _ := d2.List()
				if len(list) != 0 {
					t.Errorf("bit-flipped record replayed: %+v", list)
				}
				return
			}
			if after := dumpState(t, d2); before != after {
				t.Errorf("intact prefix not preserved")
			}
			// The file itself was truncated back to the intact prefix.
			fixed, err := os.ReadFile(walPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fixed, intact) {
				t.Errorf("wal not truncated to intact prefix: %d bytes vs %d", len(fixed), len(intact))
			}
		})
	}
}

func TestSnapshotCompactionThreshold(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, Options{SnapshotThreshold: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 6; i++ {
		if _, err := d.Create("pol", mkVersion("Acme", "some payload long enough to trip the threshold quickly")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotV2Name)); err != nil {
		t.Fatalf("no snapshot despite threshold: %v", err)
	}
	d.mu.RLock()
	walBytes := d.walBytes
	d.mu.RUnlock()
	if walBytes >= 6*60 {
		t.Errorf("wal never compacted: %d bytes", walBytes)
	}
	// Everything is still there across snapshot+wal recovery.
	d2 := reopen(t, dir, Options{})
	list, err := d2.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 6 {
		t.Errorf("recovered %d policies, want 6", len(list))
	}
}

func TestRecoveryMetrics(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Create("pol", mkVersion("Acme", "v1")); err != nil {
		t.Fatal(err)
	}
	// Abandon without Close; reopen with a registry and check the replay
	// counters landed.
	reg := obs.NewRegistry()
	d2 := reopen(t, dir, Options{Obs: reg})
	if _, err := d2.Create("pol2", mkVersion("Bmax", "v1")); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if n := snap.Counters["quagmire_store_wal_replayed_records_total"]; n < 1 {
		t.Errorf("replayed records counter = %d, want >= 1", n)
	}
	if _, ok := snap.Gauges[`quagmire_store_recovery_seconds{phase="replay"}`]; !ok {
		t.Errorf("recovery gauge missing: %v", snap.Gauges)
	}
	if b := snap.Gauges["quagmire_store_wal_bytes"]; b <= 0 {
		t.Errorf("wal bytes gauge = %v, want > 0", b)
	}
	if n := snap.Counters[`quagmire_store_ops_total{op="create"}`]; n != 1 {
		t.Errorf("create op counter = %d, want 1", n)
	}
}

func TestClosedStoreRejectsWrites(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Create("pol", mkVersion("Acme", "v1")); err == nil {
		t.Error("create after close succeeded")
	}
	h := d.Health()
	if h.OK() {
		t.Error("closed store reports healthy")
	}
}

// TestInterruptedCompactionRecovery pins crash-atomicity of compaction:
// a crash after the snapshot is saved but before the WAL is truncated
// leaves both behind, and replay must skip the records the snapshot
// already contains instead of failing on duplicate creates or silently
// duplicating versions.
func TestInterruptedCompactionRecovery(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, Options{SnapshotThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.Create("pol", mkVersion("Acme", "v1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Append(p.ID, 1, mkVersion("Acme", "v2")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Create("other", mkVersion("Bmax", "b1")); err != nil {
		t.Fatal(err)
	}
	before := dumpState(t, d)
	// Simulate the interrupted compaction: snapshot saved, WAL untouched,
	// process dies (no Close).
	d.mu.Lock()
	hdr := snapHeader{Codec: snapshotCodecV2, Seq: d.seq, NextID: d.c.nextID}
	sf, _, saveErr := saveSnapshotV2(d.dir, hdr, d.sortedStatesLocked(), d.loadPayloadLocked)
	d.mu.Unlock()
	if saveErr != nil {
		t.Fatal(saveErr)
	}
	sf.Close()
	var logBuf bytes.Buffer
	d2, err := OpenDisk(dir, Options{Logger: log.New(&logBuf, "", 0)})
	if err != nil {
		t.Fatalf("recovery after interrupted compaction failed: %v", err)
	}
	defer d2.Close()
	if after := dumpState(t, d2); before != after {
		t.Errorf("state diverged after interrupted compaction:\nbefore: %s\nafter:  %s", before, after)
	}
	if meta, _ := d2.Get(p.ID); meta.Versions != 2 {
		t.Errorf("policy %s has %d versions, want 2 (append replayed twice?)", p.ID, meta.Versions)
	}
	if !bytes.Contains(logBuf.Bytes(), []byte("skipped")) {
		t.Errorf("no skip notice logged: %q", logBuf.String())
	}
	// Writes continue with fresh sequence numbers and survive another crash.
	p3, err := d2.Create("third", mkVersion("Cort", "c1"))
	if err != nil {
		t.Fatal(err)
	}
	if p3.ID != "p3" {
		t.Errorf("post-recovery ID = %q, want p3", p3.ID)
	}
	d3 := reopen(t, dir, Options{})
	if list, _ := d3.List(); len(list) != 3 {
		t.Errorf("second recovery lists %d policies, want 3", len(list))
	}
	if meta, _ := d3.Get(p.ID); meta.Versions != 2 {
		t.Errorf("policy %s has %d versions after second recovery, want 2", p.ID, meta.Versions)
	}
}

// tornWAL makes the next write emit half its bytes and then fail, like
// ENOSPC striking mid-record.
type tornWAL struct {
	walFile
	failNext bool
}

func (w *tornWAL) Write(p []byte) (int, error) {
	if w.failNext {
		w.failNext = false
		n, _ := w.walFile.Write(p[:len(p)/2])
		return n, errors.New("injected: no space left on device")
	}
	return w.walFile.Write(p)
}

func TestFailedAppendRollsBackTornFrame(t *testing.T) {
	// Regression: a failed append used to leave its torn frame in the log
	// while the store kept acknowledging writes appended after it —
	// recovery would then truncate at the torn frame and silently discard
	// every later acknowledged write.
	dir := t.TempDir()
	d, err := OpenDisk(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.Create("pol", mkVersion("Acme", "v1"))
	if err != nil {
		t.Fatal(err)
	}
	tw := &tornWAL{walFile: d.wal, failNext: true}
	d.mu.Lock()
	d.wal = tw
	d.mu.Unlock()
	if _, err := d.Append(p.ID, 1, mkVersion("Acme", "torn")); err == nil {
		t.Fatal("append over failing WAL succeeded")
	}
	if d.Health().OK() {
		t.Error("health OK right after a WAL write failure")
	}
	// The torn frame was rolled back, so this write is durable at a clean
	// record boundary.
	if _, err := d.Append(p.ID, 1, mkVersion("Acme", "v2")); err != nil {
		t.Fatalf("append after rollback failed: %v", err)
	}
	if !d.Health().OK() {
		t.Errorf("health still degraded after successful rollback + write: %+v", d.Health())
	}
	before := dumpState(t, d)
	// Crash-reopen: every acknowledged write is recovered, and the log has
	// no corruption to warn about.
	var logBuf bytes.Buffer
	d2, err := OpenDisk(dir, Options{Logger: log.New(&logBuf, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if bytes.Contains(logBuf.Bytes(), []byte("corrupt")) {
		t.Errorf("rolled-back frame still reads as corruption: %q", logBuf.String())
	}
	if after := dumpState(t, d2); before != after {
		t.Errorf("acknowledged writes lost:\nbefore: %s\nafter:  %s", before, after)
	}
}

// brokenWAL fails every write and every truncate: the un-rollback-able
// worst case.
type brokenWAL struct {
	walFile
}

func (w *brokenWAL) Write(p []byte) (int, error) { return 0, errors.New("injected write failure") }
func (w *brokenWAL) Truncate(int64) error        { return errors.New("injected truncate failure") }

func TestUnrollbackableWALFailureMakesStoreReadOnly(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.Create("pol", mkVersion("Acme", "v1"))
	if err != nil {
		t.Fatal(err)
	}
	d.mu.Lock()
	orig := d.wal
	d.wal = &brokenWAL{walFile: orig}
	d.mu.Unlock()
	if _, err := d.Append(p.ID, 1, mkVersion("Acme", "v2")); err == nil {
		t.Fatal("append over broken WAL succeeded")
	}
	// Even with the file handle healthy again, the log may end mid-frame:
	// the store must stay read-only rather than risk appending records
	// recovery would discard.
	d.mu.Lock()
	d.wal = orig
	d.mu.Unlock()
	if _, err := d.Append(p.ID, 1, mkVersion("Acme", "v2")); err == nil {
		t.Error("append accepted after failed rollback")
	}
	if _, err := d.Create("other", mkVersion("Bmax", "b1")); err == nil {
		t.Error("create accepted after failed rollback")
	}
	if h := d.Health(); h.OK() || h.Detail == "" {
		t.Errorf("health = %+v, want permanently degraded with detail", h)
	}
	// Reads keep working.
	if _, err := d.Get(p.ID); err != nil {
		t.Errorf("read on degraded store failed: %v", err)
	}
}
