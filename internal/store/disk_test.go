package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/obs"
)

// reopen abandons d without closing it (simulating a killed process: the
// WAL holds everything, no clean-shutdown snapshot) and opens a fresh
// store over the same directory.
func reopen(t *testing.T, dir string, opts Options) *Disk {
	t.Helper()
	d, err := OpenDisk(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// dumpState renders everything observable through the interface as JSON
// (which also strips time.Time's in-process monotonic clock reading, so
// pre-crash and post-recovery states compare equal).
func dumpState(t *testing.T, s PolicyStore) string {
	t.Helper()
	out := map[string]any{}
	list, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	out["list"] = list
	for _, p := range list {
		vs, err := s.Versions(p.ID)
		if err != nil {
			t.Fatal(err)
		}
		out["versions:"+p.ID] = vs
		for _, vm := range vs {
			v, err := s.Version(p.ID, vm.N)
			if err != nil {
				t.Fatal(err)
			}
			out[fmt.Sprintf("payload:%s:%d", p.ID, vm.N)] = string(v.Payload)
		}
	}
	data, err := json.MarshalIndent(out, "", " ")
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

func TestCrashRecoveryFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := d.Create("pol", mkVersion("Acme", "v1-payload"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Append(p.ID, 1, mkVersion("Acme Corp", "v2-payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Create("other", mkVersion("Bmax", "b1")); err != nil {
		t.Fatal(err)
	}
	before := dumpState(t, d)

	// No Close: the process "dies" and a new one recovers from the WAL.
	d2 := reopen(t, dir, Options{})
	after := dumpState(t, d2)
	if before != after {
		t.Errorf("recovered state differs:\nbefore: %s\nafter:  %s", before, after)
	}
	// ID assignment continues where the dead process left off.
	p3, err := d2.Create("third", mkVersion("Cort", "c1"))
	if err != nil {
		t.Fatal(err)
	}
	if p3.ID != "p3" {
		t.Errorf("post-recovery ID = %q, want p3", p3.ID)
	}
}

func TestCleanShutdownSnapshotsAndEmptiesWAL(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Create("pol", mkVersion("Acme", "v1")); err != nil {
		t.Fatal(err)
	}
	before := dumpState(t, d)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(dir, "wal.log")); err != nil || fi.Size() != 0 {
		t.Errorf("wal after close: %v (size %d), want empty", err, fi.Size())
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotKey+".json")); err != nil {
		t.Errorf("snapshot missing: %v", err)
	}
	d2 := reopen(t, dir, Options{})
	if after := dumpState(t, d2); before != after {
		t.Errorf("snapshot-recovered state differs")
	}
}

func TestCorruptTrailingRecordTruncatedWithWarning(t *testing.T) {
	for name, corruptor := range map[string]func(intact []byte) []byte{
		// A torn append: header promises more bytes than exist.
		"torn-record": func(intact []byte) []byte {
			return append(append([]byte{}, intact...), 0xFF, 0x00, 0x00, 0x00, 0x12, 0x34, 0x56, 0x78, 'x', 'y')
		},
		// A flipped bit in the final record's payload fails the CRC.
		"bit-flip": func(intact []byte) []byte {
			return append(append([]byte{}, intact[:len(intact)-1]...), intact[len(intact)-1]^0x01)
		},
		// Garbage after the valid prefix.
		"garbage-tail": func(intact []byte) []byte {
			return append(append([]byte{}, intact...), []byte("not a wal record")...)
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			d, err := OpenDisk(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := d.Create("pol", mkVersion("Acme", "v1")); err != nil {
				t.Fatal(err)
			}
			before := dumpState(t, d)
			// Abandon d without Close (no snapshot), then damage the log.
			walPath := filepath.Join(dir, "wal.log")
			intact, err := os.ReadFile(walPath)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(walPath, corruptor(intact), 0o644); err != nil {
				t.Fatal(err)
			}
			var logBuf bytes.Buffer
			d2, err := OpenDisk(dir, Options{Logger: log.New(&logBuf, "", 0)})
			if err != nil {
				t.Fatalf("recovery must not fail on a corrupt tail: %v", err)
			}
			defer d2.Close()
			if !bytes.Contains(logBuf.Bytes(), []byte("corrupt wal record")) {
				t.Errorf("no corruption warning logged: %q", logBuf.String())
			}
			if name == "bit-flip" {
				// The sole record was damaged: nothing survives.
				list, _ := d2.List()
				if len(list) != 0 {
					t.Errorf("bit-flipped record replayed: %+v", list)
				}
				return
			}
			if after := dumpState(t, d2); before != after {
				t.Errorf("intact prefix not preserved")
			}
			// The file itself was truncated back to the intact prefix.
			fixed, err := os.ReadFile(walPath)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(fixed, intact) {
				t.Errorf("wal not truncated to intact prefix: %d bytes vs %d", len(fixed), len(intact))
			}
		})
	}
}

func TestSnapshotCompactionThreshold(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, Options{SnapshotThreshold: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	for i := 0; i < 6; i++ {
		if _, err := d.Create("pol", mkVersion("Acme", "some payload long enough to trip the threshold quickly")); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotKey+".json")); err != nil {
		t.Fatalf("no snapshot despite threshold: %v", err)
	}
	d.mu.RLock()
	walBytes := d.walBytes
	d.mu.RUnlock()
	if walBytes >= 6*60 {
		t.Errorf("wal never compacted: %d bytes", walBytes)
	}
	// Everything is still there across snapshot+wal recovery.
	d2 := reopen(t, dir, Options{})
	list, err := d2.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 6 {
		t.Errorf("recovered %d policies, want 6", len(list))
	}
}

func TestRecoveryMetrics(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Create("pol", mkVersion("Acme", "v1")); err != nil {
		t.Fatal(err)
	}
	// Abandon without Close; reopen with a registry and check the replay
	// counters landed.
	reg := obs.NewRegistry()
	d2 := reopen(t, dir, Options{Obs: reg})
	if _, err := d2.Create("pol2", mkVersion("Bmax", "v1")); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if n := snap.Counters["quagmire_store_wal_replayed_records_total"]; n < 1 {
		t.Errorf("replayed records counter = %d, want >= 1", n)
	}
	if _, ok := snap.Gauges[`quagmire_store_recovery_seconds{phase="replay"}`]; !ok {
		t.Errorf("recovery gauge missing: %v", snap.Gauges)
	}
	if b := snap.Gauges["quagmire_store_wal_bytes"]; b <= 0 {
		t.Errorf("wal bytes gauge = %v, want > 0", b)
	}
	if n := snap.Counters[`quagmire_store_ops_total{op="create"}`]; n != 1 {
		t.Errorf("create op counter = %d, want 1", n)
	}
}

func TestClosedStoreRejectsWrites(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Create("pol", mkVersion("Acme", "v1")); err == nil {
		t.Error("create after close succeeded")
	}
	h := d.Health()
	if h.OK() {
		t.Error("closed store reports healthy")
	}
}
