// Package store is the durable policy registry behind the server: policies
// are stored by server-assigned ID with full version history (each version
// carries the encoded analysis payload plus graph and diff statistics), so
// restarts, audits and longitudinal comparisons all read the same record
// of what each policy said at every point in time.
//
// Two backends implement PolicyStore: NewMem is a process-local map for
// tests and cacheless deployments, and OpenDisk adds durability through an
// append-only record log (WAL) with CRC-checked framing and snapshot
// compaction — every mutation is logged before it is applied, recovery
// replays the snapshot plus the log, and a corrupted log tail is truncated
// at the last intact record instead of poisoning the whole store.
package store

import (
	"errors"
	"log"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/obs"
)

// Store errors. Backends wrap these so callers can errors.Is-match them.
var (
	// ErrNotFound reports a missing policy ID or version number.
	ErrNotFound = errors.New("store: not found")
	// ErrConflict reports a failed compare-and-swap: the policy advanced
	// past the version the caller computed its update against.
	ErrConflict = errors.New("store: version conflict")
	// ErrClosed reports an operation on a closed store.
	ErrClosed = errors.New("store: closed")
)

// VersionStats summarizes the knowledge graph of one stored version.
type VersionStats struct {
	Nodes     int `json:"nodes"`
	Edges     int `json:"edges"`
	Entities  int `json:"entities"`
	DataTypes int `json:"data_types"`
	Segments  int `json:"segments"`
	Practices int `json:"practices"`
}

// DiffStats records what changed relative to the previous version; zero
// for version 1.
type DiffStats struct {
	SegmentsKept    int `json:"segments_kept"`
	SegmentsAdded   int `json:"segments_added"`
	SegmentsRemoved int `json:"segments_removed"`
	EdgesAdded      int `json:"edges_added"`
	EdgesRemoved    int `json:"edges_removed"`
	NewTerms        int `json:"new_terms"`
}

// VersionMeta is the metadata row of one stored version.
type VersionMeta struct {
	// N is the 1-based version number within the policy.
	N int `json:"n"`
	// Created is when the version was stored.
	Created time.Time `json:"created"`
	// Company is the organization name extracted at this version (it can
	// change across versions; the policy metadata tracks the latest).
	Company string `json:"company"`
	// Stats and Diff pin the version's analysis shape for audits without
	// decoding the payload.
	Stats VersionStats `json:"stats"`
	Diff  DiffStats    `json:"diff"`
	// Bytes is the encoded payload size.
	Bytes int `json:"bytes"`
	// SourceHash is the hex SHA-256 of the raw source document this
	// version was analyzed from (set by the ingest pipeline); empty for
	// versions stored through other paths. Incremental re-ingest compares
	// it to decide whether a file changed since the last crawl.
	SourceHash string `json:"source_hash,omitempty"`
}

// Version is a full stored version: metadata plus the encoded analysis
// payload. The payload is opaque to the store — the core package's codec
// owns its format (and its schema versioning).
//
// Payload is populated only on the write path (Create/Append/AppendBatch
// and WAL records). On the read path the store keeps payloads lazily
// materialized: Version(id, n) returns metadata with a nil Payload, and
// LoadPayload(id, n) is the sole payload accessor — on the disk backend it
// reads the bytes straight out of the indexed snapshot on first use.
type Version struct {
	VersionMeta
	Payload []byte `json:"payload"`
	// ref locates the payload inside the open v2 snapshot when the bytes
	// are not held inline; nil means Payload is authoritative. Unexported,
	// so it never leaks into WAL records or snapshot JSON.
	ref *payloadRef
}

// Policy is the policy-level metadata snapshot.
type Policy struct {
	ID       string    `json:"id"`
	Name     string    `json:"name"`
	Company  string    `json:"company"`
	Created  time.Time `json:"created"`
	Updated  time.Time `json:"updated"`
	Versions int       `json:"versions"`
}

// Health reports a backend's state for the health endpoint.
type Health struct {
	// Backend is "memory" or "disk".
	Backend string `json:"backend"`
	// Policies and Versions count stored records.
	Policies int `json:"policies"`
	Versions int `json:"versions"`
	// WALBytes is the current record-log size (disk only).
	WALBytes int64 `json:"wal_bytes,omitempty"`
	// Writable reports the disk-writability probe (always true for the
	// memory backend).
	Writable bool `json:"writable"`
	// Detail explains a degraded state.
	Detail string `json:"detail,omitempty"`
}

// OK reports whether the backend is fully serviceable.
func (h Health) OK() bool { return h.Writable }

// BatchEntry is one policy creation inside an AppendBatch: a name (the
// ingest pipeline uses the corpus-relative source path, which is what
// makes an interrupted crawl resumable) plus its version-1 payload.
type BatchEntry struct {
	Name    string
	Version Version
}

// PolicyStore is the durable policy registry. Implementations are safe
// for concurrent use. Returned metadata and payloads are snapshots; the
// caller must not mutate Version.Payload after handing it to the store.
type PolicyStore interface {
	// Create stores a new policy with v as version 1 and returns its
	// metadata with the assigned ID. v.N and v.Created are set by the
	// store; name defaults to v.Company when empty.
	Create(name string, v Version) (Policy, error)
	// AppendBatch stores every entry as a new policy (each becomes
	// version 1) in one durable write: the disk backend frames all the
	// WAL records and fsyncs once for the whole batch, so bulk ingestion
	// pays one sync per batch instead of one per policy. The batch is
	// atomic — either every entry is durable and applied or none is —
	// and assigned IDs follow entry order.
	AppendBatch(entries []BatchEntry) ([]Policy, error)
	// Append stores v as the next version of policy id if and only if the
	// policy currently has expect versions (compare-and-swap); otherwise
	// it fails with ErrConflict and stores nothing.
	Append(id string, expect int, v Version) (Policy, error)
	// Get returns the policy metadata.
	Get(id string) (Policy, error)
	// List returns all policies sorted by ID.
	List() ([]Policy, error)
	// Versions returns the policy's version metadata in order.
	Versions(id string) ([]VersionMeta, error)
	// Version returns one stored version's metadata (1-based). The
	// returned Payload is always nil; use LoadPayload for the bytes.
	Version(id string, n int) (Version, error)
	// LoadPayload materializes the encoded payload of version n of policy
	// id. The memory backend returns its in-process copy; the disk backend
	// reads the section out of the indexed snapshot (CRC-verified) unless
	// the version is still WAL-resident. Callers must not mutate the
	// returned slice.
	LoadPayload(id string, n int) ([]byte, error)
	// Health reports backend state.
	Health() Health
	// Close releases resources; the disk backend snapshots first so the
	// next open replays no log.
	Close() error
}

// Options configures a backend. The zero value is usable: no logging, a
// no-op metrics registry, time.Now, and disk defaults.
type Options struct {
	// Logger receives recovery and corruption warnings; nil disables.
	Logger *log.Logger
	// Obs receives store metrics (op counters, latency histograms, WAL
	// bytes gauge, recovery duration); nil disables.
	Obs *obs.Registry
	// Clock stamps version creation times; nil selects time.Now.
	Clock func() time.Time
	// SnapshotThreshold compacts the WAL into a snapshot when the log
	// exceeds this many bytes (disk only); 0 selects 4 MiB, negative
	// disables automatic compaction.
	SnapshotThreshold int64
	// NoSync skips fsync after each WAL append (disk only). Faster, but a
	// host crash can lose the last records; process crashes cannot.
	NoSync bool
}

func (o Options) clock() func() time.Time {
	if o.Clock != nil {
		return o.Clock
	}
	return time.Now
}

func (o Options) logf(format string, args ...any) {
	if o.Logger != nil {
		o.Logger.Printf(format, args...)
	}
}

// observe records one store operation on the metrics registry (nil-safe).
func (o Options) observe(op string, start time.Time) {
	o.Obs.Counter("quagmire_store_ops_total", "op", op).Inc()
	o.Obs.Histogram("quagmire_store_op_seconds", obs.TimeBuckets, "op", op).ObserveSince(start)
}
