package store

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// shipRecords replays every primary record past the follower's watermark
// straight into the follower — the in-process skeleton of the replication
// loop, with no HTTP in between.
func shipRecords(t *testing.T, primary, follower *Disk) {
	t.Helper()
	err := primary.ReplayFrom(follower.Seq(), func(rec Record) error {
		return follower.ApplyRecord(rec)
	})
	if err != nil {
		t.Fatalf("ship records: %v", err)
	}
}

func TestApplyRecordReplicatesStateByteIdentically(t *testing.T) {
	pri, err := OpenDisk(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pri.Close()
	fol, err := OpenDisk(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fol.Close()

	p, err := pri.Create("pol", mkVersion("Acme", "v1-payload"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pri.Append(p.ID, 1, mkVersion("Acme Corp", "v2-payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := pri.Create("other", mkVersion("Bmax", "b1")); err != nil {
		t.Fatal(err)
	}
	shipRecords(t, pri, fol)
	if got, want := dumpState(t, fol), dumpState(t, pri); got != want {
		t.Errorf("replicated state differs:\nfollower: %s\nprimary:  %s", got, want)
	}
	if fol.Seq() != pri.Seq() {
		t.Errorf("follower seq = %d, want %d", fol.Seq(), pri.Seq())
	}

	// At-least-once: re-shipping everything is a silent no-op.
	before := dumpState(t, fol)
	err = pri.ReplayFrom(0, func(rec Record) error { return fol.ApplyRecord(rec) })
	if err != nil {
		t.Fatalf("duplicate ship: %v", err)
	}
	if dumpState(t, fol) != before {
		t.Error("duplicate delivery changed follower state")
	}

	// A gap is refused loudly, not papered over.
	err = fol.ApplyRecord(Record{Seq: fol.Seq() + 2, Op: "create", ID: "p9", Name: "gap", Version: mkVersion("Gap", "g")})
	if !errors.Is(err, ErrReplicationGap) {
		t.Errorf("gap apply error = %v, want ErrReplicationGap", err)
	}
}

func TestApplyRecordWatermarkSurvivesCrash(t *testing.T) {
	pri, err := OpenDisk(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pri.Close()
	fdir := t.TempDir()
	fol, err := OpenDisk(fdir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := pri.Create("pol", mkVersion("Acme", "v1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pri.Append(p.ID, 1, mkVersion("Acme", "v2")); err != nil {
		t.Fatal(err)
	}
	shipRecords(t, pri, fol)
	want := fol.Seq()

	// No Close: the follower process "dies" and a new one must recover the
	// applied watermark from snapshot header + WAL replay alone.
	fol2 := reopen(t, fdir, Options{})
	if fol2.Seq() != want {
		t.Errorf("recovered watermark = %d, want %d", fol2.Seq(), want)
	}
	if dumpState(t, fol2) != dumpState(t, pri) {
		t.Error("recovered follower state differs from primary")
	}
}

func TestInstallSnapshotBootstrapsFollower(t *testing.T) {
	pri, err := OpenDisk(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pri.Close()
	p, err := pri.Create("pol", mkVersion("Acme", "v1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pri.Append(p.ID, 1, mkVersion("Acme", "v2")); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	var headerSeq uint64
	seq, err := pri.SnapshotTo(&buf, func(s uint64) { headerSeq = s })
	if err != nil {
		t.Fatal(err)
	}
	if headerSeq != seq {
		t.Errorf("started callback saw seq %d, SnapshotTo returned %d", headerSeq, seq)
	}

	fdir := t.TempDir()
	installed, err := InstallSnapshot(fdir, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if installed != seq {
		t.Errorf("InstallSnapshot seq = %d, want %d", installed, seq)
	}
	fol := reopen(t, fdir, Options{})
	if fol.Seq() != seq {
		t.Errorf("bootstrapped watermark = %d, want %d", fol.Seq(), seq)
	}
	if dumpState(t, fol) != dumpState(t, pri) {
		t.Error("bootstrapped state differs from primary")
	}

	// A truncated transfer must never install.
	buf.Reset()
	if _, err := pri.SnapshotTo(&buf, nil); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()/2]
	if _, err := InstallSnapshot(t.TempDir(), bytes.NewReader(truncated)); err == nil {
		t.Error("truncated snapshot installed without error")
	}
}

// TestSnapshotReplayUnderConcurrentWrites pins the replication read
// surface against live writers (run under -race): SnapshotTo must stream
// a consistent, installable snapshot whose header watermark is exact,
// ReplayFrom must never yield torn or out-of-order records, and the
// watermark must be monotonic throughout. Finally, snapshot + tail replay
// must reconstruct the primary byte-identically.
func TestSnapshotReplayUnderConcurrentWrites(t *testing.T) {
	pri, err := OpenDisk(t.TempDir(), Options{SnapshotThreshold: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer pri.Close()

	const writers, opsPerWriter = 4, 40
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var mine []string
			for i := 0; i < opsPerWriter; i++ {
				if len(mine) == 0 || i%3 == 0 {
					p, err := pri.Create(fmt.Sprintf("w%d-%d", w, i), mkVersion("Acme", fmt.Sprintf("payload-%d-%d", w, i)))
					if err != nil {
						t.Errorf("create: %v", err)
						return
					}
					mine = append(mine, p.ID)
				} else {
					id := mine[i%len(mine)]
					vs, err := pri.Versions(id)
					if err != nil {
						t.Errorf("versions: %v", err)
						return
					}
					if _, err := pri.Append(id, len(vs), mkVersion("Acme", fmt.Sprintf("v-%d-%d", w, i))); err != nil && !errors.Is(err, ErrConflict) {
						t.Errorf("append: %v", err)
						return
					}
				}
			}
		}(w)
	}

	// Watermark monotonicity watcher.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var last uint64
		for {
			select {
			case <-stop:
				return
			default:
			}
			if s := pri.Seq(); s < last {
				t.Errorf("watermark went backwards: %d after %d", s, last)
				return
			} else {
				last = s
			}
			time.Sleep(100 * time.Microsecond)
		}
	}()

	// Concurrent snapshot stream: every snapshot taken mid-write-storm must
	// install cleanly and carry its exact watermark, and successive
	// watermarks must not regress.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var lastSeq uint64
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			var buf bytes.Buffer
			seq, err := pri.SnapshotTo(&buf, nil)
			if err != nil {
				t.Errorf("snapshot %d: %v", i, err)
				return
			}
			if seq < lastSeq {
				t.Errorf("snapshot watermark regressed: %d after %d", seq, lastSeq)
				return
			}
			lastSeq = seq
			installed, err := InstallSnapshot(t.TempDir(), &buf)
			if err != nil {
				t.Errorf("snapshot %d failed validation: %v", i, err)
				return
			}
			if installed != seq {
				t.Errorf("snapshot %d header seq %d, SnapshotTo said %d", i, installed, seq)
				return
			}
		}
	}()

	// Concurrent tail replay: records past any watermark arrive strictly
	// consecutive — never torn, duplicated, or reordered.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			from := pri.Seq()
			prev := from
			err := pri.ReplayFrom(from, func(rec Record) error {
				if rec.Seq != prev+1 {
					return fmt.Errorf("replay gap: %d after %d", rec.Seq, prev)
				}
				prev = rec.Seq
				if rec.Op != "create" && rec.Op != "append" {
					return fmt.Errorf("torn record op %q at seq %d", rec.Op, rec.Seq)
				}
				return nil
			})
			if err != nil && !errors.Is(err, ErrCompacted) {
				t.Errorf("replay: %v", err)
				return
			}
		}
	}()

	// WaitSeq under load: every return must exceed the waited-for seq.
	wg.Add(1)
	go func() {
		defer wg.Done()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		for {
			select {
			case <-stop:
				return
			default:
			}
			after := pri.Seq()
			seq, err := pri.WaitSeq(ctx, after)
			if err != nil {
				return // test shutting down
			}
			if seq <= after {
				t.Errorf("WaitSeq(%d) returned %d", after, seq)
				return
			}
		}
	}()

	// Wait for the writers, then release the readers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	writersDone := make(chan struct{})
	go func() {
		defer close(writersDone)
		for pri.Seq() < writers*opsPerWriter-writers { // appends can lose CAS races
			time.Sleep(time.Millisecond)
		}
	}()
	select {
	case <-writersDone:
	case <-time.After(30 * time.Second):
		t.Fatal("writers did not finish")
	}
	time.Sleep(10 * time.Millisecond)
	close(stop)
	// Nudge the WaitSeq watcher awake with one more write.
	if _, err := pri.Create("final", mkVersion("Acme", "fin")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("readers did not stop")
	}

	// Differential finish: snapshot + tail replay rebuilds the primary
	// byte-identically.
	var buf bytes.Buffer
	seq, err := pri.SnapshotTo(&buf, nil)
	if err != nil {
		t.Fatal(err)
	}
	fdir := t.TempDir()
	if _, err := InstallSnapshot(fdir, &buf); err != nil {
		t.Fatal(err)
	}
	fol := reopen(t, fdir, Options{})
	if fol.Seq() != seq {
		t.Fatalf("bootstrap watermark = %d, want %d", fol.Seq(), seq)
	}
	shipRecords(t, pri, fol)
	if got, want := dumpState(t, fol), dumpState(t, pri); got != want {
		t.Error("snapshot+replay reconstruction differs from primary")
	}
}

func TestReplayFromBelowSnapshotWatermarkIsCompacted(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), Options{SnapshotThreshold: 1}) // every write compacts
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if _, err := d.Create("a", mkVersion("Acme", "1")); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Create("b", mkVersion("Bmax", "2")); err != nil {
		t.Fatal(err)
	}
	err = d.ReplayFrom(0, func(Record) error { return nil })
	if !errors.Is(err, ErrCompacted) {
		t.Errorf("replay below watermark = %v, want ErrCompacted", err)
	}
	// Replaying from the current watermark is always legal.
	if err := d.ReplayFrom(d.Seq(), func(Record) error { return nil }); err != nil {
		t.Errorf("replay from watermark: %v", err)
	}
}

func TestWaitSeqWakesOnWriteAndClose(t *testing.T) {
	d, err := OpenDisk(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan uint64, 1)
	go func() {
		seq, err := d.WaitSeq(context.Background(), 0)
		if err != nil {
			t.Errorf("WaitSeq: %v", err)
		}
		got <- seq
	}()
	time.Sleep(5 * time.Millisecond) // let the waiter park
	if _, err := d.Create("a", mkVersion("Acme", "1")); err != nil {
		t.Fatal(err)
	}
	select {
	case seq := <-got:
		if seq != 1 {
			t.Errorf("woke at seq %d, want 1", seq)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitSeq never woke on write")
	}

	closed := make(chan error, 1)
	go func() {
		_, err := d.WaitSeq(context.Background(), 99)
		closed <- err
	}()
	time.Sleep(5 * time.Millisecond)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-closed:
		if !errors.Is(err, ErrClosed) {
			t.Errorf("WaitSeq after close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WaitSeq never woke on close")
	}
}
