package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"

	"github.com/privacy-quagmire/quagmire/internal/cache"
)

// InspectPolicy is one policy's row in an Info report.
type InspectPolicy struct {
	ID           string `json:"id"`
	Name         string `json:"name"`
	Versions     int    `json:"versions"`
	PayloadBytes int64  `json:"payload_bytes"`
}

// Info is a read-only report on a store data directory: snapshot format
// and watermark, WAL shape, and per-policy version/payload accounting.
// It is assembled without opening the store for writing, so it is safe to
// run against a directory another process is serving from — the first
// debugging stop for any recovery or replication question.
type Info struct {
	Dir string `json:"dir"`
	// SnapshotCodec is the snapshot format version: 2 for the indexed
	// format, 1 for a legacy monolithic JSON snapshot, 0 when the
	// directory has no snapshot (WAL only).
	SnapshotCodec int    `json:"snapshot_codec"`
	SnapshotSeq   uint64 `json:"snapshot_seq"`
	SnapshotBytes int64  `json:"snapshot_bytes"`
	// WALRecords counts intact records; WALSeq is the last record's
	// sequence number (the durable watermark).
	WALRecords int    `json:"wal_records"`
	WALSeq     uint64 `json:"wal_seq"`
	WALBytes   int64  `json:"wal_bytes"`
	// WALCorrupt describes a torn or corrupt tail, empty for a clean log.
	// Inspection never truncates; recovery does that on the next open.
	WALCorrupt string          `json:"wal_corrupt,omitempty"`
	Policies   []InspectPolicy `json:"policies"`
}

// Inspect reads the snapshot index and scans the WAL of the data
// directory at dir, merging both into one report.
func Inspect(dir string) (Info, error) {
	info := Info{Dir: dir}
	byID := map[string]*InspectPolicy{}

	sf, err := openSnapshotV2(filepath.Join(dir, snapshotV2Name))
	switch {
	case err == nil:
		defer sf.Close()
		info.SnapshotCodec = sf.hdr.Codec
		info.SnapshotSeq = sf.hdr.Seq
		if fi, serr := sf.f.Stat(); serr == nil {
			info.SnapshotBytes = fi.Size()
		}
		for _, sp := range sf.idx.Policies {
			p := &InspectPolicy{ID: sp.Meta.ID, Name: sp.Meta.Name, Versions: len(sp.Versions)}
			for _, sv := range sp.Versions {
				p.PayloadBytes += int64(sv.Len)
			}
			byID[p.ID] = p
		}
	case errors.Is(err, fs.ErrNotExist):
		if lerr := inspectLegacyV1(dir, &info, byID); lerr != nil {
			return Info{}, lerr
		}
	default:
		return Info{}, err
	}

	if err := inspectWAL(dir, &info, byID); err != nil {
		return Info{}, err
	}

	for _, p := range byID {
		info.Policies = append(info.Policies, *p)
	}
	sort.Slice(info.Policies, func(i, j int) bool {
		var a, b int
		an, _ := fmt.Sscanf(info.Policies[i].ID, "p%d", &a)
		bn, _ := fmt.Sscanf(info.Policies[j].ID, "p%d", &b)
		if an == 1 && bn == 1 && a != b {
			return a < b
		}
		return info.Policies[i].ID < info.Policies[j].ID
	})
	return info, nil
}

func inspectLegacyV1(dir string, info *Info, byID map[string]*InspectPolicy) error {
	var st snapshotState
	snap, err := cache.Open(dir)
	if err != nil {
		return err
	}
	switch err := snap.Load(snapshotKey, &st); {
	case err == nil:
		info.SnapshotCodec = st.Codec
		info.SnapshotSeq = st.Seq
		if fi, serr := os.Stat(filepath.Join(dir, snapshotKey+".json")); serr == nil {
			info.SnapshotBytes = fi.Size()
		}
		for _, ps := range st.Policies {
			p := &InspectPolicy{ID: ps.Meta.ID, Name: ps.Meta.Name, Versions: len(ps.Versions)}
			for _, v := range ps.Versions {
				p.PayloadBytes += int64(len(v.Payload))
			}
			byID[p.ID] = p
		}
	case errors.Is(err, cache.ErrNotFound):
		// No snapshot at all: WAL-only directory.
	default:
		return err
	}
	return nil
}

func inspectWAL(dir string, info *Info, byID map[string]*InspectPolicy) error {
	f, err := os.Open(filepath.Join(dir, "wal.log"))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("store: open wal for inspection: %w", err)
	}
	defer f.Close()
	offset, _, corrupt, err := replayWAL(f, func(op Record) error {
		info.WALRecords++
		info.WALSeq = op.Seq
		if op.Seq <= info.SnapshotSeq {
			// Already covered by the snapshot (interrupted compaction).
			return nil
		}
		switch op.Op {
		case "create":
			byID[op.ID] = &InspectPolicy{
				ID: op.ID, Name: op.Name, Versions: 1,
				PayloadBytes: int64(len(op.Version.Payload)),
			}
		case "append":
			if p, ok := byID[op.ID]; ok {
				p.Versions++
				p.PayloadBytes += int64(len(op.Version.Payload))
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	info.WALBytes = offset
	if corrupt != nil {
		info.WALCorrupt = corrupt.Error()
	}
	return nil
}
