package store

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// WAL record framing: each record is [uint32 length][uint32 CRC32-C of
// payload][payload JSON], little-endian. A record is valid only if the
// full frame is present and the checksum matches — a torn write at the
// tail (partial header, short payload, or checksum mismatch) marks the
// end of the usable log and everything from there on is truncated.

const walHeaderSize = 8

// maxWALRecord bounds one record so a corrupted length field cannot force
// a multi-gigabyte allocation during replay.
const maxWALRecord = 64 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// walOp is one logged mutation — the exported Record type (replicate.go),
// which doubles as the replication shipping unit.
type walOp = Record

// appendWALRecord frames and writes one record to w.
func appendWALRecord(w io.Writer, op walOp) (int, error) {
	payload, err := json.Marshal(op)
	if err != nil {
		return 0, fmt.Errorf("store: encode wal record: %w", err)
	}
	var hdr [walHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, fmt.Errorf("store: write wal header: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return 0, fmt.Errorf("store: write wal payload: %w", err)
	}
	return walHeaderSize + len(payload), nil
}

// errCorruptTail marks the point past which the log is unusable; the
// wrapped detail says why.
type corruptTailError struct {
	offset int64
	reason string
}

func (e *corruptTailError) Error() string {
	return fmt.Sprintf("store: corrupt wal record at offset %d: %s", e.offset, e.reason)
}

// replayWAL reads records from r, invoking apply for each. It returns the
// byte offset of the last intact record boundary, the record count, and a
// *corruptTailError (nil for a clean log). Apply errors abort the replay.
//
// Only a genuinely torn tail (unexpected EOF, bad length, bad checksum,
// undecodable payload) is reported as corruption; any other read error is
// returned as a fatal error instead, so a transient I/O failure never
// causes the caller to truncate away valid records.
func replayWAL(r io.Reader, apply func(walOp) error) (offset int64, records int, corrupt *corruptTailError, err error) {
	br := newByteCounter(r)
	for {
		var hdr [walHeaderSize]byte
		if _, rerr := io.ReadFull(br, hdr[:]); rerr != nil {
			if errors.Is(rerr, io.EOF) {
				return offset, records, nil, nil
			}
			if errors.Is(rerr, io.ErrUnexpectedEOF) {
				return offset, records, &corruptTailError{offset, "partial header"}, nil
			}
			return offset, records, nil, fmt.Errorf("store: read wal at offset %d: %w", offset, rerr)
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > maxWALRecord {
			return offset, records, &corruptTailError{offset, fmt.Sprintf("implausible record length %d", length)}, nil
		}
		payload := make([]byte, length)
		if _, rerr := io.ReadFull(br, payload); rerr != nil {
			if errors.Is(rerr, io.EOF) || errors.Is(rerr, io.ErrUnexpectedEOF) {
				return offset, records, &corruptTailError{offset, "partial payload"}, nil
			}
			return offset, records, nil, fmt.Errorf("store: read wal at offset %d: %w", offset, rerr)
		}
		if crc32.Checksum(payload, crcTable) != sum {
			return offset, records, &corruptTailError{offset, "checksum mismatch"}, nil
		}
		var op walOp
		if jerr := json.Unmarshal(payload, &op); jerr != nil {
			return offset, records, &corruptTailError{offset, "undecodable payload"}, nil
		}
		if aerr := apply(op); aerr != nil {
			return offset, records, nil, fmt.Errorf("store: replay wal record %d: %w", records, aerr)
		}
		offset = br.n
		records++
	}
}

// byteCounter tracks how many bytes were consumed from the reader.
type byteCounter struct {
	r io.Reader
	n int64
}

func newByteCounter(r io.Reader) *byteCounter { return &byteCounter{r: r} }

func (b *byteCounter) Read(p []byte) (int, error) {
	n, err := b.r.Read(p)
	b.n += int64(n)
	return n, err
}

// truncateWAL cuts the log file at offset, discarding the corrupt tail.
func truncateWAL(path string, offset int64) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return fmt.Errorf("store: open wal for truncation: %w", err)
	}
	defer f.Close()
	if err := f.Truncate(offset); err != nil {
		return fmt.Errorf("store: truncate wal: %w", err)
	}
	return f.Sync()
}
