package store

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestInspectWALOnly: a directory that has never compacted (process
// abandoned before Close) has no snapshot; inspection reconstructs the
// policy census from the WAL alone.
func TestInspectWALOnly(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, Options{SnapshotThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"a.txt", "b.txt"} {
		if _, err := d.Create(name, mkVersion("Acme", "payload-"+name)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.Append("p1", 1, mkVersion("Acme", "payload-a2")); err != nil {
		t.Fatal(err)
	}
	// Abandon without Close: the WAL is the only durable state.

	info, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.SnapshotCodec != 0 {
		t.Errorf("codec = %d, want 0 (no snapshot)", info.SnapshotCodec)
	}
	if info.WALRecords != 3 || info.WALSeq != 3 {
		t.Errorf("wal records/seq = %d/%d, want 3/3", info.WALRecords, info.WALSeq)
	}
	if info.WALCorrupt != "" {
		t.Errorf("unexpected corrupt tail: %q", info.WALCorrupt)
	}
	if len(info.Policies) != 2 {
		t.Fatalf("policies = %d, want 2", len(info.Policies))
	}
	if info.Policies[0].ID != "p1" || info.Policies[0].Versions != 2 {
		t.Errorf("p1 = %+v, want 2 versions", info.Policies[0])
	}
	if info.Policies[1].ID != "p2" || info.Policies[1].Versions != 1 {
		t.Errorf("p2 = %+v, want 1 version", info.Policies[1])
	}
}

// TestInspectCorruptTailIsReadOnly: inspection reports a torn WAL tail
// but never truncates it — that is recovery's job on the next open.
func TestInspectCorruptTail(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, Options{SnapshotThreshold: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Create("a.txt", mkVersion("Acme", "payload-a")); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(walPath, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe, 0xef, 0x01, 0x02, 0x03, 0x04, 0x05}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	sizeBefore := fileSize(t, walPath)

	info, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.WALCorrupt == "" {
		t.Error("corrupt tail not reported")
	}
	if info.WALRecords != 1 {
		t.Errorf("wal records = %d, want 1 intact record", info.WALRecords)
	}
	if len(info.Policies) != 1 {
		t.Errorf("policies = %d, want 1", len(info.Policies))
	}
	if got := fileSize(t, walPath); got != sizeBefore {
		t.Errorf("inspection changed the WAL: %d -> %d bytes", sizeBefore, got)
	}
}

// TestInspectV2RoundTrip: a cleanly closed store inspects as codec 2 and
// the report survives a JSON round trip (the -json CLI path).
func TestInspectV2(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Create("a.txt", mkVersion("Acme", "payload-a")); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	info, err := Inspect(dir)
	if err != nil {
		t.Fatal(err)
	}
	if info.SnapshotCodec != snapshotCodecV2 {
		t.Errorf("codec = %d, want %d", info.SnapshotCodec, snapshotCodecV2)
	}
	if info.SnapshotSeq != 1 || info.SnapshotBytes == 0 {
		t.Errorf("snapshot seq/bytes = %d/%d", info.SnapshotSeq, info.SnapshotBytes)
	}
	b, err := json.Marshal(info)
	if err != nil {
		t.Fatal(err)
	}
	var back Info
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.SnapshotCodec != info.SnapshotCodec || len(back.Policies) != len(info.Policies) {
		t.Errorf("JSON round trip lost fields: %+v", back)
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
