package store

import (
	"fmt"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/obs"
)

func mkBatch(n int, prefix string) []BatchEntry {
	out := make([]BatchEntry, n)
	for i := range out {
		out[i] = BatchEntry{
			Name:    fmt.Sprintf("%s/%03d.txt", prefix, i),
			Version: mkVersion(fmt.Sprintf("Co%d", i), fmt.Sprintf("payload-%d", i)),
		}
	}
	return out
}

func TestAppendBatchAssignsSequentialIDs(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			// Interleave a single Create so batch IDs continue the sequence.
			if _, err := s.Create("solo", mkVersion("Solo", "v1")); err != nil {
				t.Fatal(err)
			}
			pols, err := s.AppendBatch(mkBatch(5, "corpus"))
			if err != nil {
				t.Fatal(err)
			}
			if len(pols) != 5 {
				t.Fatalf("batch returned %d policies", len(pols))
			}
			for i, p := range pols {
				if want := fmt.Sprintf("p%d", i+2); p.ID != want {
					t.Errorf("pols[%d].ID = %q, want %q", i, p.ID, want)
				}
				if want := fmt.Sprintf("corpus/%03d.txt", i); p.Name != want {
					t.Errorf("pols[%d].Name = %q, want %q", i, p.Name, want)
				}
				if p.Versions != 1 {
					t.Errorf("pols[%d].Versions = %d", i, p.Versions)
				}
			}
			// A later Create continues past the batch.
			after, err := s.Create("after", mkVersion("After", "v1"))
			if err != nil {
				t.Fatal(err)
			}
			if after.ID != "p7" {
				t.Errorf("post-batch ID = %q, want p7", after.ID)
			}
			// Payloads round-trip per entry.
			payload, err := s.LoadPayload(pols[3].ID, 1)
			if err != nil {
				t.Fatal(err)
			}
			if string(payload) != "payload-3" {
				t.Errorf("payload = %q", payload)
			}
		})
	}
}

func TestAppendBatchEmptyIsNoOp(t *testing.T) {
	for name, mk := range backends(t) {
		t.Run(name, func(t *testing.T) {
			s := mk(t)
			pols, err := s.AppendBatch(nil)
			if err != nil || len(pols) != 0 {
				t.Fatalf("empty batch = %v, %v", pols, err)
			}
			if h := s.Health(); h.Policies != 0 {
				t.Errorf("policies = %d", h.Policies)
			}
		})
	}
}

func TestAppendBatchSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AppendBatch(mkBatch(7, "c")); err != nil {
		t.Fatal(err)
	}
	// SIGKILL-style abandon: no Close, so recovery replays the WAL.
	d2, err := OpenDisk(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	list, err := d2.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 7 {
		t.Fatalf("recovered %d policies, want 7", len(list))
	}
	for i, p := range list {
		if want := fmt.Sprintf("p%d", i+1); p.ID != want {
			t.Errorf("list[%d].ID = %q, want %q", i, p.ID, want)
		}
	}
	payload, err := d2.LoadPayload("p5", 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(payload) != "payload-4" {
		t.Errorf("payload = %q", payload)
	}
	// Post-recovery creates continue the ID sequence.
	p, err := d2.Create("next", mkVersion("Next", "v"))
	if err != nil {
		t.Fatal(err)
	}
	if p.ID != "p8" {
		t.Errorf("post-recovery ID = %q, want p8", p.ID)
	}
}

// TestAppendBatchAmortizesFsyncs pins the whole point of the batch API:
// one durable batch costs one WAL fsync, where the same policies created
// one at a time cost one fsync each.
func TestAppendBatchAmortizesFsyncs(t *testing.T) {
	const n = 16

	syncsAfter := func(run func(d *Disk)) uint64 {
		reg := obs.NewRegistry()
		d, err := OpenDisk(t.TempDir(), Options{Obs: reg})
		if err != nil {
			t.Fatal(err)
		}
		defer d.Close()
		run(d)
		return reg.Counter("quagmire_store_wal_syncs_total").Value()
	}

	perCreate := syncsAfter(func(d *Disk) {
		for _, e := range mkBatch(n, "c") {
			if _, err := d.Create(e.Name, e.Version); err != nil {
				t.Fatal(err)
			}
		}
	})
	batched := syncsAfter(func(d *Disk) {
		if _, err := d.AppendBatch(mkBatch(n, "c")); err != nil {
			t.Fatal(err)
		}
	})
	if perCreate != n {
		t.Errorf("per-create syncs = %d, want %d", perCreate, n)
	}
	if batched != 1 {
		t.Errorf("batched syncs = %d, want 1", batched)
	}
}

// TestAppendBatchRollsBackOnFailure: a batch whose sync fails must leave
// no prefix behind — after rollback the store state and a subsequent
// recovery both contain none of the batch.
func TestAppendBatchRollsBackOnFailure(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenDisk(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Create("keep", mkVersion("Keep", "v1")); err != nil {
		t.Fatal(err)
	}
	// Inject a write failure partway through the batch frames.
	d.wal = &failingWAL{inner: d.wal, failAfter: 2}
	if _, err := d.AppendBatch(mkBatch(5, "c")); err == nil {
		t.Fatal("batch with failing WAL succeeded")
	}
	if h := d.Health(); h.OK() {
		t.Error("health not degraded after failed batch")
	}
	list, _ := d.List()
	if len(list) != 1 {
		t.Errorf("policies after failed batch = %d, want 1", len(list))
	}
	// Recovery from disk sees only the pre-batch record.
	d2, err := OpenDisk(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	list2, _ := d2.List()
	if len(list2) != 1 || list2[0].Name != "keep" {
		t.Errorf("recovered = %+v, want just 'keep'", list2)
	}
}

// failingWAL passes writes through until failAfter writes have happened,
// then fails every subsequent write.
type failingWAL struct {
	inner     walFile
	writes    int
	failAfter int
}

func (f *failingWAL) Write(p []byte) (int, error) {
	f.writes++
	if f.writes > f.failAfter {
		return 0, fmt.Errorf("injected write failure")
	}
	return f.inner.Write(p)
}

func (f *failingWAL) Truncate(size int64) error { return f.inner.Truncate(size) }
func (f *failingWAL) Sync() error               { return f.inner.Sync() }
func (f *failingWAL) Close() error              { return f.inner.Close() }
