package store

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/cache"
)

// snapshotKey is the cache.Store key the legacy v1 snapshot lives under.
// v1 snapshots are still read on open; compaction always writes the
// indexed v2 format (snapshot.v2) and deletes the legacy file.
const snapshotKey = "store-snapshot"

// snapshotCodec is the legacy monolithic-JSON snapshot schema version.
const snapshotCodec = 1

// defaultSnapshotThreshold compacts the WAL once it exceeds 4 MiB.
const defaultSnapshotThreshold = 4 << 20

// snapshotState is the serialized form of a legacy v1 snapshot: the whole
// store as one JSON document, payloads inline. Retained so old data
// directories still open (they are rewritten as v2 on the next
// compaction).
type snapshotState struct {
	Codec int `json:"codec"`
	// Seq is the WAL sequence number the snapshot was taken at; replay
	// skips records at or below it, so a snapshot whose WAL truncation
	// never completed (crash mid-compaction) replays cleanly.
	Seq      uint64        `json:"seq"`
	NextID   int           `json:"next_id"`
	Policies []policyState `json:"policies"`
}

// walFile is the WAL's file handle. *os.File satisfies it; tests
// substitute failure-injecting wrappers.
type walFile interface {
	io.Writer
	Truncate(size int64) error
	Sync() error
	Close() error
}

// Disk is the durable PolicyStore: a snapshot file plus an append-only
// CRC-framed record log, both under one directory. Every mutation is
// logged before it is applied; recovery loads the snapshot and replays
// the log, truncating a corrupted tail at the last intact record.
type Disk struct {
	opts    Options
	dir     string
	walPath string
	snap    *cache.Store

	mu       sync.RWMutex
	c        *core
	wal      walFile
	walBytes int64
	// seq is the sequence number of the last durable WAL record (or the
	// snapshot watermark right after recovery/compaction).
	seq uint64
	// seqWatch is closed and replaced whenever seq advances; WaitSeq parks
	// on it so WAL-tail streams long-poll instead of spinning. Close wakes
	// all waiters by closing the final channel.
	seqWatch chan struct{}
	// snapFile is the open v2 snapshot lazy payload loads ReadAt from;
	// nil when the store was booted fresh or from a legacy v1 snapshot
	// (whose payloads are held inline until the next compaction).
	snapFile *snapshotFile
	// snapSeq is the watermark of the on-disk snapshot: records at or
	// below it are compacted away and unavailable to ReplayFrom.
	snapSeq uint64
	closed  bool
	// lastErr is the most recent WAL write failure; it degrades Health
	// until a subsequent write succeeds.
	lastErr error
	// failed is set when a torn WAL frame could not be rolled back; the
	// store then refuses all further writes (reads stay available) so no
	// acknowledged write can land beyond an unparseable tail.
	failed error
}

// OpenDisk opens (creating if needed) a durable store rooted at dir and
// recovers its state: snapshot first, then WAL replay.
func OpenDisk(dir string, opts Options) (*Disk, error) {
	start := time.Now()
	snap, err := cache.Open(dir)
	if err != nil {
		return nil, fmt.Errorf("store: open %q: %w", dir, err)
	}
	d := &Disk{
		opts:     opts,
		dir:      dir,
		walPath:  filepath.Join(dir, "wal.log"),
		snap:     snap,
		c:        newCore(),
		seqWatch: make(chan struct{}),
	}
	if err := d.recover(); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(d.walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open wal: %w", err)
	}
	d.wal = f
	d.registerMetrics()
	d.opts.Obs.Gauge("quagmire_store_recovery_seconds", "phase", "replay").Set(time.Since(start).Seconds())
	p, v := d.c.counts()
	d.opts.logf("store: recovered %d policies (%d versions) from %s in %s", p, v, dir, time.Since(start).Round(time.Millisecond))
	return d, nil
}

// recover loads the snapshot (indexed v2 preferred, legacy v1 fallback)
// and replays the WAL into the core. The v2 path installs metadata only —
// payload bytes stay on disk behind refs until LoadPayload asks for them,
// so boot cost is O(index), not O(corpus).
func (d *Disk) recover() error {
	sf, err := openSnapshotV2(filepath.Join(d.dir, snapshotV2Name))
	switch {
	case err == nil:
		for i := range sf.idx.Policies {
			sp := &sf.idx.Policies[i]
			ps := &policyState{Meta: sp.Meta, Versions: make([]Version, len(sp.Versions))}
			for j, sv := range sp.Versions {
				ps.Versions[j] = Version{
					VersionMeta: sv.VersionMeta,
					ref:         &payloadRef{off: sv.Off, n: sv.Len, crc: sv.CRC},
				}
			}
			d.c.policies[sp.Meta.ID] = ps
		}
		d.c.nextID = sf.hdr.NextID
		d.seq = sf.hdr.Seq
		d.snapSeq = sf.hdr.Seq
		d.snapFile = sf
	case errors.Is(err, fs.ErrNotExist):
		if err := d.recoverLegacyV1(); err != nil {
			return err
		}
	default:
		return err
	}
	f, err := os.Open(d.walPath)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		return fmt.Errorf("store: open wal for replay: %w", err)
	}
	defer f.Close()
	// Records at or below the snapshot watermark are already in the
	// snapshot: a crash between snapshot save and WAL truncation leaves
	// them behind, and replaying them would duplicate creates and appends.
	var skipped int
	offset, records, corrupt, err := replayWAL(f, func(op walOp) error {
		if op.Seq <= d.seq {
			skipped++
			return nil
		}
		if aerr := d.applyOp(op); aerr != nil {
			return aerr
		}
		d.seq = op.Seq
		return nil
	})
	if err != nil {
		return err
	}
	d.walBytes = offset
	d.opts.Obs.Counter("quagmire_store_wal_replayed_records_total").Add(uint64(records - skipped))
	if skipped > 0 {
		d.opts.logf("store: skipped %d wal records already covered by the snapshot (interrupted compaction)", skipped)
		d.opts.Obs.Counter("quagmire_store_wal_skipped_records_total").Add(uint64(skipped))
	}
	if corrupt != nil {
		d.opts.logf("store: %v; truncating log to %d bytes (%d records kept)", corrupt, offset, records)
		d.opts.Obs.Counter("quagmire_store_wal_truncations_total").Inc()
		if err := truncateWAL(d.walPath, offset); err != nil {
			return err
		}
	}
	return nil
}

// recoverLegacyV1 loads a legacy monolithic v1 snapshot, payloads inline
// (eager). The next compaction rewrites it in the indexed v2 format.
func (d *Disk) recoverLegacyV1() error {
	var st snapshotState
	switch err := d.snap.Load(snapshotKey, &st); {
	case err == nil:
		if st.Codec > snapshotCodec {
			return fmt.Errorf("store: snapshot codec %d is newer than supported %d", st.Codec, snapshotCodec)
		}
		for i := range st.Policies {
			ps := st.Policies[i]
			d.c.policies[ps.Meta.ID] = &ps
		}
		d.c.nextID = st.NextID
		d.seq = st.Seq
		d.snapSeq = st.Seq
	case errors.Is(err, cache.ErrNotFound):
		// Fresh store.
	default:
		return err
	}
	return nil
}

// applyOp applies one replayed record to the core, preserving the logged
// IDs and timestamps exactly.
func (d *Disk) applyOp(op walOp) error {
	switch op.Op {
	case "create":
		_, err := d.c.applyCreate(op.ID, op.Name, op.Version)
		return err
	case "append":
		// expect -1: the CAS was settled when the record was logged.
		_, err := d.c.applyAppend(op.ID, -1, op.Version)
		return err
	default:
		return fmt.Errorf("store: unknown wal op %q", op.Op)
	}
}

func (d *Disk) registerMetrics() {
	d.opts.Obs.GaugeFunc("quagmire_store_wal_bytes", func() float64 {
		d.mu.RLock()
		defer d.mu.RUnlock()
		return float64(d.walBytes)
	})
	d.opts.Obs.GaugeFunc("quagmire_store_policies", func() float64 {
		d.mu.RLock()
		defer d.mu.RUnlock()
		p, _ := d.c.counts()
		return float64(p)
	})
	d.opts.Obs.GaugeFunc("quagmire_store_versions", func() float64 {
		d.mu.RLock()
		defer d.mu.RUnlock()
		_, v := d.c.counts()
		return float64(v)
	})
}

// log frames op, appends it to the WAL and syncs (unless NoSync). The
// caller holds d.mu.
func (d *Disk) log(op walOp) error {
	return d.logBatch([]walOp{op})
}

// logBatch frames every op with consecutive sequence numbers, appends
// them to the WAL and syncs once for the whole batch (unless NoSync) —
// the fsync amortization that makes AppendBatch cheap at corpus scale.
// The batch is atomic: a failed write or sync rolls the log back to the
// pre-batch boundary, so no prefix of an unacknowledged batch can
// survive into recovery. The caller holds d.mu.
func (d *Disk) logBatch(ops []walOp) error {
	if d.failed != nil {
		return fmt.Errorf("store: wal unusable, writes disabled: %w", d.failed)
	}
	var written int64
	var err error
	for i := range ops {
		ops[i].Seq = d.seq + uint64(i) + 1
		var n int
		n, err = appendWALRecord(d.wal, ops[i])
		if err != nil {
			break
		}
		written += int64(n)
	}
	if err == nil && !d.opts.NoSync {
		if err = d.wal.Sync(); err == nil {
			d.opts.Obs.Counter("quagmire_store_wal_syncs_total").Inc()
		}
	}
	if err != nil {
		d.lastErr = err
		// The failed batch may have left a torn frame (or complete but
		// unacknowledged records) past the last good boundary. Cut the file
		// back to that boundary so later appends stay parseable — the WAL
		// is opened O_APPEND, so the next write lands at the truncated end.
		// If the rollback itself fails the log now ends mid-frame, and any
		// record written after it would be discarded by recovery as a
		// corrupt tail; refuse all further writes instead.
		if rbErr := d.wal.Truncate(d.walBytes); rbErr != nil {
			d.failed = fmt.Errorf("append failed (%v) and rollback to offset %d failed: %w", err, d.walBytes, rbErr)
			d.opts.logf("store: %v; store is now read-only", d.failed)
		}
		return err
	}
	d.lastErr = nil
	d.seq += uint64(len(ops))
	d.walBytes += written
	// Wake WAL-tail watchers: the records are durable and applied-or-about-
	// to-be under the same lock hold, so a woken replication stream reads a
	// consistent tail.
	close(d.seqWatch)
	d.seqWatch = make(chan struct{})
	return nil
}

// maybeCompact snapshots and resets the WAL when it exceeds the
// threshold. The caller holds d.mu.
func (d *Disk) maybeCompact() {
	threshold := d.opts.SnapshotThreshold
	if threshold == 0 {
		threshold = defaultSnapshotThreshold
	}
	if threshold < 0 || d.walBytes < threshold {
		return
	}
	if err := d.compactLocked(); err != nil {
		// Compaction failure is not fatal — the WAL still holds the state —
		// but it degrades health until a write path succeeds again.
		d.lastErr = err
		d.opts.logf("store: snapshot compaction failed: %v", err)
	}
}

// compactLocked writes an indexed v2 snapshot atomically (fsynced, so it
// survives a host crash before the WAL it replaces is gone), re-points
// every in-memory version at the new file — dropping inline payload bytes
// held since WAL replay or live appends — and truncates the WAL. The
// snapshot carries the WAL sequence watermark, so a crash between the two
// steps is safe: recovery skips the already-snapshotted records. The
// caller holds d.mu.
func (d *Disk) compactLocked() error {
	defer d.opts.observe("snapshot", time.Now())
	if d.walBytes == 0 && d.snapFile != nil && d.snapSeq == d.seq {
		// The on-disk snapshot already matches the in-memory state (every
		// mutation bumps seq); rewriting it would be pure churn.
		return nil
	}
	hdr := snapHeader{Codec: snapshotCodecV2, Seq: d.seq, NextID: d.c.nextID}
	states := d.sortedStatesLocked()
	sf, idx, err := saveSnapshotV2(d.dir, hdr, states, d.loadPayloadLocked)
	if err != nil {
		return err
	}
	// Re-point every version at its section in the new file, then swap the
	// handles. Readers cannot race this: LoadPayload resolves refs under
	// the same lock compaction holds exclusively.
	for pi, st := range states {
		for vi := range st.Versions {
			sv := idx.Policies[pi].Versions[vi]
			st.Versions[vi].Payload = nil
			st.Versions[vi].ref = &payloadRef{off: sv.Off, n: sv.Len, crc: sv.CRC}
		}
	}
	if d.snapFile != nil {
		d.snapFile.Close()
	}
	d.snapFile = sf
	d.snapSeq = d.seq
	// The WAL is opened O_APPEND, so after the truncate the next write
	// lands at offset zero without an explicit seek.
	if err := d.wal.Truncate(0); err != nil {
		return fmt.Errorf("store: reset wal after snapshot: %w", err)
	}
	d.walBytes = 0
	// A legacy v1 snapshot is now stale; drop it (best effort) so future
	// opens never prefer outdated state and the disk holds one copy.
	if err := d.snap.Delete(snapshotKey); err != nil {
		d.opts.logf("store: remove legacy snapshot: %v", err)
	}
	d.opts.Obs.Counter("quagmire_store_snapshots_total").Inc()
	return nil
}

func sortedIDs(m map[string]*policyState) []string {
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	// Reuse the core's canonical ordering for deterministic snapshots.
	tmp := &core{policies: m}
	ids = ids[:0]
	for _, p := range tmp.list() {
		ids = append(ids, p.ID)
	}
	return ids
}

// Create implements PolicyStore.
func (d *Disk) Create(name string, v Version) (Policy, error) {
	defer d.opts.observe("create", time.Now())
	v.Created = d.opts.clock()()
	v.Bytes = len(v.Payload)
	v.N = 1
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return Policy{}, ErrClosed
	}
	id := fmt.Sprintf("p%d", d.c.nextID+1)
	if name == "" {
		name = v.Company
	}
	if err := d.log(walOp{Op: "create", ID: id, Name: name, Version: v}); err != nil {
		return Policy{}, err
	}
	meta, err := d.c.applyCreate(id, name, v)
	if err != nil {
		return Policy{}, err
	}
	d.maybeCompact()
	return meta, nil
}

// AppendBatch implements PolicyStore: every entry becomes a new policy,
// logged as consecutive WAL records with a single fsync for the whole
// batch. Ingesting a corpus in batches of K pays N/K syncs instead of N.
func (d *Disk) AppendBatch(entries []BatchEntry) ([]Policy, error) {
	defer d.opts.observe("append_batch", time.Now())
	if len(entries) == 0 {
		return nil, nil
	}
	now := d.opts.clock()()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil, ErrClosed
	}
	ops := make([]walOp, len(entries))
	for i, e := range entries {
		v := e.Version
		v.Created = now
		v.Bytes = len(v.Payload)
		v.N = 1
		name := e.Name
		if name == "" {
			name = v.Company
		}
		ops[i] = walOp{Op: "create", ID: fmt.Sprintf("p%d", d.c.nextID+1+i), Name: name, Version: v}
	}
	if err := d.logBatch(ops); err != nil {
		return nil, err
	}
	out := make([]Policy, len(ops))
	for i, op := range ops {
		meta, err := d.c.applyCreate(op.ID, op.Name, op.Version)
		if err != nil {
			// Unreachable — the IDs were freshly assigned under the same
			// lock — but surfacing it beats silently diverging from the WAL.
			return out[:i], err
		}
		out[i] = meta
	}
	d.maybeCompact()
	return out, nil
}

// Append implements PolicyStore.
func (d *Disk) Append(id string, expect int, v Version) (Policy, error) {
	defer d.opts.observe("append", time.Now())
	if expect < 0 {
		return Policy{}, fmt.Errorf("store: negative expected version %d", expect)
	}
	v.Created = d.opts.clock()()
	v.Bytes = len(v.Payload)
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return Policy{}, ErrClosed
	}
	// Settle the CAS before logging so a conflicting append never reaches
	// the WAL.
	st, ok := d.c.policies[id]
	if !ok {
		return Policy{}, fmt.Errorf("%w: policy %q", ErrNotFound, id)
	}
	if st.Meta.Versions != expect {
		return Policy{}, fmt.Errorf("%w: policy %q at version %d, expected %d",
			ErrConflict, id, st.Meta.Versions, expect)
	}
	v.N = expect + 1
	if err := d.log(walOp{Op: "append", ID: id, Version: v}); err != nil {
		return Policy{}, err
	}
	meta, err := d.c.applyAppend(id, expect, v)
	if err != nil {
		return Policy{}, err
	}
	d.maybeCompact()
	return meta, nil
}

// Get implements PolicyStore.
func (d *Disk) Get(id string) (Policy, error) {
	defer d.opts.observe("get", time.Now())
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.c.get(id)
}

// List implements PolicyStore.
func (d *Disk) List() ([]Policy, error) {
	defer d.opts.observe("list", time.Now())
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.c.list(), nil
}

// Versions implements PolicyStore.
func (d *Disk) Versions(id string) ([]VersionMeta, error) {
	defer d.opts.observe("versions", time.Now())
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.c.versions(id)
}

// Version implements PolicyStore: metadata only, Payload nil.
func (d *Disk) Version(id string, n int) (Version, error) {
	defer d.opts.observe("version", time.Now())
	d.mu.RLock()
	defer d.mu.RUnlock()
	v, err := d.c.version(id, n)
	v.Payload, v.ref = nil, nil
	return v, err
}

// LoadPayload implements PolicyStore. Versions still WAL-resident (or
// legacy v1, eagerly loaded) are served from memory; snapshotted versions
// are read out of the indexed v2 file and CRC-verified — which is where
// payload corruption surfaces, at first use rather than at open.
func (d *Disk) LoadPayload(id string, n int) ([]byte, error) {
	defer d.opts.observe("load_payload", time.Now())
	d.mu.RLock()
	defer d.mu.RUnlock()
	v, err := d.c.version(id, n)
	if err != nil {
		return nil, err
	}
	b, err := d.loadPayloadLocked(id, &v)
	if err != nil {
		d.opts.Obs.Counter("quagmire_store_payload_load_failures_total").Inc()
		return nil, fmt.Errorf("store: load payload %s/v%d: %w", id, n, err)
	}
	return b, nil
}

// Health implements PolicyStore: counts plus a live disk-writability
// probe, degraded by any unresolved WAL write failure.
func (d *Disk) Health() Health {
	d.mu.RLock()
	p, v := d.c.counts()
	walBytes := d.walBytes
	lastErr := d.lastErr
	failed := d.failed
	closed := d.closed
	d.mu.RUnlock()
	h := Health{Backend: "disk", Policies: p, Versions: v, WALBytes: walBytes, Writable: true}
	switch {
	case closed:
		h.Writable, h.Detail = false, "store closed"
	case failed != nil:
		h.Writable, h.Detail = false, failed.Error()
	case lastErr != nil:
		h.Writable, h.Detail = false, lastErr.Error()
	default:
		if err := d.probe(); err != nil {
			h.Writable, h.Detail = false, err.Error()
		}
	}
	return h
}

// probe checks the directory is still writable by creating and removing a
// scratch file.
func (d *Disk) probe() error {
	p := filepath.Join(d.dir, ".probe")
	if err := os.WriteFile(p, []byte("ok"), 0o644); err != nil {
		return fmt.Errorf("store: disk probe: %w", err)
	}
	return os.Remove(p)
}

// Close snapshots the state (so the next open replays no log) and closes
// the WAL.
func (d *Disk) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	// Wake every WaitSeq parked on the tail so replication streams end
	// promptly instead of hanging on a closed store.
	close(d.seqWatch)
	d.seqWatch = make(chan struct{})
	snapErr := d.compactLocked()
	closeErr := d.wal.Close()
	var sfErr error
	if d.snapFile != nil {
		sfErr = d.snapFile.Close()
		d.snapFile = nil
	}
	return errors.Join(snapErr, closeErr, sfErr)
}
