package store

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// policyState is one policy's full record: metadata plus every version.
type policyState struct {
	Meta     Policy    `json:"meta"`
	Versions []Version `json:"versions"`
}

// core is the shared in-memory state machine both backends apply
// mutations to. It is not goroutine-safe; callers hold their own lock.
type core struct {
	policies map[string]*policyState
	nextID   int
}

func newCore() *core {
	return &core{policies: map[string]*policyState{}}
}

// applyCreate installs a new policy. When id is empty a fresh ID is
// assigned; otherwise (WAL replay) the given ID is installed verbatim and
// the ID counter is advanced past it.
func (c *core) applyCreate(id, name string, v Version) (Policy, error) {
	if id == "" {
		c.nextID++
		id = fmt.Sprintf("p%d", c.nextID)
	} else {
		var n int
		if _, err := fmt.Sscanf(id, "p%d", &n); err == nil && n > c.nextID {
			c.nextID = n
		}
		if _, ok := c.policies[id]; ok {
			return Policy{}, fmt.Errorf("store: duplicate policy ID %q", id)
		}
	}
	if name == "" {
		name = v.Company
	}
	v.N = 1
	meta := Policy{
		ID: id, Name: name, Company: v.Company,
		Created: v.Created, Updated: v.Created, Versions: 1,
	}
	c.policies[id] = &policyState{Meta: meta, Versions: []Version{v}}
	return meta, nil
}

// applyAppend appends v as the next version iff the policy currently has
// expect versions. expect < 0 skips the check (WAL replay).
func (c *core) applyAppend(id string, expect int, v Version) (Policy, error) {
	st, ok := c.policies[id]
	if !ok {
		return Policy{}, fmt.Errorf("%w: policy %q", ErrNotFound, id)
	}
	if expect >= 0 && st.Meta.Versions != expect {
		return Policy{}, fmt.Errorf("%w: policy %q at version %d, expected %d",
			ErrConflict, id, st.Meta.Versions, expect)
	}
	v.N = st.Meta.Versions + 1
	st.Versions = append(st.Versions, v)
	st.Meta.Versions = v.N
	st.Meta.Company = v.Company
	st.Meta.Updated = v.Created
	return st.Meta, nil
}

func (c *core) get(id string) (Policy, error) {
	st, ok := c.policies[id]
	if !ok {
		return Policy{}, fmt.Errorf("%w: policy %q", ErrNotFound, id)
	}
	return st.Meta, nil
}

func (c *core) list() []Policy {
	out := make([]Policy, 0, len(c.policies))
	for _, st := range c.policies {
		out = append(out, st.Meta)
	}
	sort.Slice(out, func(i, j int) bool {
		// Numeric order for the canonical "p<N>" IDs, lexicographic tiebreak.
		var a, b int
		an, _ := fmt.Sscanf(out[i].ID, "p%d", &a)
		bn, _ := fmt.Sscanf(out[j].ID, "p%d", &b)
		if an == 1 && bn == 1 && a != b {
			return a < b
		}
		return out[i].ID < out[j].ID
	})
	return out
}

func (c *core) versions(id string) ([]VersionMeta, error) {
	st, ok := c.policies[id]
	if !ok {
		return nil, fmt.Errorf("%w: policy %q", ErrNotFound, id)
	}
	out := make([]VersionMeta, len(st.Versions))
	for i, v := range st.Versions {
		out[i] = v.VersionMeta
	}
	return out, nil
}

func (c *core) version(id string, n int) (Version, error) {
	st, ok := c.policies[id]
	if !ok {
		return Version{}, fmt.Errorf("%w: policy %q", ErrNotFound, id)
	}
	if n < 1 || n > len(st.Versions) {
		return Version{}, fmt.Errorf("%w: policy %q has no version %d", ErrNotFound, id, n)
	}
	return st.Versions[n-1], nil
}

func (c *core) counts() (policies, versions int) {
	for _, st := range c.policies {
		versions += len(st.Versions)
	}
	return len(c.policies), versions
}

// Mem is the in-memory PolicyStore: the default for tests and servers
// running without a -data directory. State dies with the process.
type Mem struct {
	opts Options
	mu   sync.RWMutex
	c    *core
}

// NewMem returns an empty in-memory store.
func NewMem(opts Options) *Mem {
	m := &Mem{opts: opts, c: newCore()}
	m.registerGauges()
	return m
}

func (m *Mem) registerGauges() {
	m.opts.Obs.GaugeFunc("quagmire_store_policies", func() float64 {
		m.mu.RLock()
		defer m.mu.RUnlock()
		p, _ := m.c.counts()
		return float64(p)
	})
	m.opts.Obs.GaugeFunc("quagmire_store_versions", func() float64 {
		m.mu.RLock()
		defer m.mu.RUnlock()
		_, v := m.c.counts()
		return float64(v)
	})
}

// Create implements PolicyStore.
func (m *Mem) Create(name string, v Version) (Policy, error) {
	defer m.opts.observe("create", time.Now())
	v.Created = m.opts.clock()()
	v.Bytes = len(v.Payload)
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.c.applyCreate("", name, v)
}

// AppendBatch implements PolicyStore. The memory backend has no log to
// amortize; the batch is simply applied atomically under one lock hold.
func (m *Mem) AppendBatch(entries []BatchEntry) ([]Policy, error) {
	defer m.opts.observe("append_batch", time.Now())
	if len(entries) == 0 {
		return nil, nil
	}
	now := m.opts.clock()()
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Policy, len(entries))
	for i, e := range entries {
		v := e.Version
		v.Created = now
		v.Bytes = len(v.Payload)
		meta, err := m.c.applyCreate("", e.Name, v)
		if err != nil {
			return out[:i], err
		}
		out[i] = meta
	}
	return out, nil
}

// Append implements PolicyStore.
func (m *Mem) Append(id string, expect int, v Version) (Policy, error) {
	defer m.opts.observe("append", time.Now())
	if expect < 0 {
		return Policy{}, fmt.Errorf("store: negative expected version %d", expect)
	}
	v.Created = m.opts.clock()()
	v.Bytes = len(v.Payload)
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.c.applyAppend(id, expect, v)
}

// Get implements PolicyStore.
func (m *Mem) Get(id string) (Policy, error) {
	defer m.opts.observe("get", time.Now())
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.c.get(id)
}

// List implements PolicyStore.
func (m *Mem) List() ([]Policy, error) {
	defer m.opts.observe("list", time.Now())
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.c.list(), nil
}

// Versions implements PolicyStore.
func (m *Mem) Versions(id string) ([]VersionMeta, error) {
	defer m.opts.observe("versions", time.Now())
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.c.versions(id)
}

// Version implements PolicyStore: metadata only, Payload nil.
func (m *Mem) Version(id string, n int) (Version, error) {
	defer m.opts.observe("version", time.Now())
	m.mu.RLock()
	defer m.mu.RUnlock()
	v, err := m.c.version(id, n)
	v.Payload, v.ref = nil, nil
	return v, err
}

// LoadPayload implements PolicyStore: the memory backend always holds
// payloads inline.
func (m *Mem) LoadPayload(id string, n int) ([]byte, error) {
	defer m.opts.observe("load_payload", time.Now())
	m.mu.RLock()
	defer m.mu.RUnlock()
	v, err := m.c.version(id, n)
	if err != nil {
		return nil, err
	}
	return v.Payload, nil
}

// Health implements PolicyStore.
func (m *Mem) Health() Health {
	m.mu.RLock()
	defer m.mu.RUnlock()
	p, v := m.c.counts()
	return Health{Backend: "memory", Policies: p, Versions: v, Writable: true}
}

// Close implements PolicyStore; a no-op for the memory backend.
func (m *Mem) Close() error { return nil }
