package llm

import (
	"testing"
	"unicode/utf8"
)

// FuzzExtractParams checks the rule-based extractor never panics and
// always produces well-formed parameter sets on arbitrary statements.
func FuzzExtractParams(f *testing.F) {
	seeds := []string{
		"TikTak shares your email addresses with advertising partners.",
		"If you consent, we collect your precise location.",
		"We do not sell your personal information.",
		"When you create an account, upload content, or contact support, you may provide a name, an email, and a password.",
		"You view content, interact with ads, and engage with commercial content.",
		"", ",,,", "and and and", "If , then .", "(((", "we we we collect collect",
		"We share data with partners for legitimate business purposes if required by law when you consent.",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, statement string) {
		if !utf8.ValidString(statement) || len(statement) > 4096 {
			return
		}
		ps := extractParams("FuzzCo", statement)
		for _, p := range ps {
			if p.DataType == "" {
				t.Fatalf("empty data type in %+v from %q", p, statement)
			}
			if p.Permission != "allow" && p.Permission != "deny" {
				t.Fatalf("bad permission %q from %q", p.Permission, statement)
			}
			if p.Action == "" {
				t.Fatalf("empty action from %q", statement)
			}
		}
	})
}

// FuzzSplitLeadingCondition checks the clause splitter's outputs always
// recombine to non-garbage (no panics, no unbounded growth).
func FuzzSplitLeadingCondition(f *testing.F) {
	f.Add("If you consent, we collect your data.")
	f.Add("When you create an account, upload content, you may provide a name.")
	f.Add("unless")
	f.Fuzz(func(t *testing.T, s string) {
		if len(s) > 2048 {
			return
		}
		cond, main := splitLeadingCondition(s)
		if len(cond)+len(main) > len(s)+2 {
			t.Fatalf("split grew input: %q -> %q + %q", s, cond, main)
		}
	})
}
