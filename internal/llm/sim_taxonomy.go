package llm

import (
	"sort"
	"strings"

	"github.com/privacy-quagmire/quagmire/internal/nlp"
)

// taxonomyRoot answers TaskTaxonomyRoot with the root concept for a term
// kind ("data" or "entity").
func taxonomyRoot(kind string) string {
	switch kind {
	case "entity":
		return "entity"
	default:
		return "data"
	}
}

// category is a synthesized intermediate taxonomy node with keyword cues.
type category struct {
	name     string
	keywords []string
}

// dataCategories are the layer-1 data subcategories the simulated model
// proposes under the root, in priority order (first matching category
// claims a term).
var dataCategories = []category{
	{"biometric data", []string{"biometric", "faceprint", "voiceprint", "fingerprint", "facial", "iris"}},
	{"financial data", []string{"payment", "credit", "card", "purchase", "transaction", "billing", "financial", "bank", "checkout", "pay"}},
	{"location data", []string{"location", "gps", "geolocation", "region", "country", "city", "geo"}},
	{"contact information", []string{"email", "phone", "address", "contact", "name"}},
	{"account information", []string{"account", "username", "password", "profile", "registration", "login", "age", "birthday", "language"}},
	{"content data", []string{"photo", "video", "image", "content", "message", "comment", "audio", "voice", "camera", "livestream", "post", "clipboard"}},
	{"social data", []string{"friend", "follower", "social", "connection", "contacts"}},
	{"usage data", []string{"usage", "interaction", "view", "click", "activity", "engagement", "search", "watch", "history", "preference", "session"}},
	{"technical data", []string{"device", "ip", "browser", "cookie", "identifier", "log", "operating", "network", "crash", "performance", "battery", "sensor", "screen", "model", "carrier", "app", "metadata", "keystroke"}},
	{"demographic data", []string{"gender", "demographic", "interest", "characteristic"}},
}

// entityCategories are the layer-1 entity subcategories.
var entityCategories = []category{
	{"user party", []string{"user", "member", "child", "parent", "contact", "friend", "follower", "creator", "seller", "buyer"}},
	{"government party", []string{"law enforcement", "regulator", "authority", "court", "government", "agency", "public body"}},
	{"service provider", []string{"provider", "processor", "cloud", "vendor", "support", "infrastructure", "moderation"}},
	{"business partner", []string{"partner", "advertiser", "merchant", "affiliate", "network", "sponsor", "platform", "corporate group", "researcher", "measurement"}},
	{"internal party", []string{"team", "employee", "engineer", "staff", "subsidiary"}},
}

func categoriesFor(kind string) []category {
	if kind == "entity" {
		return entityCategories
	}
	return dataCategories
}

// categorize returns the category name for a term, or "".
func categorize(kind, term string) string {
	words := nlp.ContentWords(term)
	lower := " " + strings.Join(words, " ") + " "
	for _, c := range categoriesFor(kind) {
		for _, kw := range c.keywords {
			if strings.Contains(lower, " "+kw+" ") || strings.Contains(lower, kw) {
				return c.name
			}
		}
	}
	return ""
}

// specializes reports whether child is a lexical specialization of parent
// (parent's content words are a strict subset of child's).
func specializes(parent, child string) bool {
	pw := nlp.ContentWords(parent)
	cw := nlp.ContentWords(child)
	if len(pw) == 0 || len(cw) <= len(pw) {
		return false
	}
	set := map[string]bool{}
	for _, w := range cw {
		set[w] = true
		set[nlp.Singular(w)] = true
	}
	for _, w := range pw {
		if !set[w] && !set[nlp.Singular(w)] {
			return false
		}
	}
	return true
}

// taxonomyLayer answers TaskTaxonomyLayer: for each frontier node, which of
// the remaining terms (or synthesized category nodes) are its immediate
// children. Each remaining term is assigned to at most one parent, and the
// assignment is deterministic.
func taxonomyLayer(kind string, frontier, remaining []string) map[string][]string {
	out := map[string][]string{}
	root := taxonomyRoot(kind)
	claimed := map[string]bool{}

	frontierSet := map[string]bool{}
	for _, f := range frontier {
		frontierSet[f] = true
	}

	// Rule 1: lexical specialization against non-root frontier nodes.
	// Prefer the most specific (longest) matching parent.
	for _, term := range remaining {
		bestParent, bestLen := "", -1
		for _, f := range frontier {
			if f == root {
				continue
			}
			if specializes(f, term) && len(nlp.ContentWords(f)) > bestLen {
				bestParent, bestLen = f, len(nlp.ContentWords(f))
			}
		}
		if bestParent != "" {
			out[bestParent] = append(out[bestParent], term)
			claimed[term] = true
		}
	}

	// Rule 2: category bucketing. When the category node is on the
	// frontier, unclaimed matching terms become its children. When only
	// the root is on the frontier, the categories themselves are proposed
	// as the root's children (synthesized intermediate nodes).
	neededCategories := map[string]bool{}
	for _, term := range remaining {
		if claimed[term] {
			continue
		}
		// Defer terms that specialize another remaining term: they will
		// attach under that term once it has been placed (next layer).
		deferred := false
		for _, other := range remaining {
			if other != term && specializes(other, term) {
				deferred = true
				break
			}
		}
		if deferred {
			continue
		}
		cat := categorize(kind, term)
		if cat == "" || cat == term {
			continue
		}
		if frontierSet[cat] {
			out[cat] = append(out[cat], term)
			claimed[term] = true
		} else if frontierSet[root] {
			neededCategories[cat] = true
		}
	}
	if frontierSet[root] && len(neededCategories) > 0 {
		cats := make([]string, 0, len(neededCategories))
		for c := range neededCategories {
			if !claimed[c] {
				cats = append(cats, c)
			}
		}
		sort.Strings(cats)
		out[root] = append(out[root], cats...)
	}
	for k := range out {
		sort.Strings(out[k])
	}
	return out
}
