package llm

import (
	"fmt"
	"strings"
)

// ParamSet is the JSON wire format for one extracted data practice — the
// six Contextual-Integrity-derived elements plus the permission flag from
// Algorithm 1 (θ, ρ, κ, π, α, c, p).
type ParamSet struct {
	// Sender is the party the data flows from.
	Sender string `json:"sender"`
	// Receiver is the party the data flows to.
	Receiver string `json:"receiver"`
	// Subject is whose data it is (normalized to "user" for data subjects).
	Subject string `json:"subject"`
	// DataType is the singularized data type.
	DataType string `json:"data_type"`
	// Action is the base-form verb of the practice.
	Action string `json:"action"`
	// Condition is the verbatim circumstance under which the action
	// occurs; vague terms are preserved as-is.
	Condition string `json:"condition,omitempty"`
	// Permission is "allow" or "deny".
	Permission string `json:"permission"`
}

// extractFewShots are the few-shot examples embedded in the extraction
// prompt, demonstrating compound-statement decomposition, normalization and
// condition preservation exactly as §3 describes.
const extractFewShots = `Example 1.
Statement: "Acme shares your email addresses with advertising partners."
Output: [{"sender":"Acme","receiver":"advertising partner","subject":"user","data_type":"email address","action":"share","permission":"allow"}]

Example 2.
Statement: "If you consent, Acme collects your precise location for legitimate business purposes."
Output: [{"sender":"user","receiver":"Acme","subject":"user","data_type":"precise location","action":"collect","condition":"user consent AND legitimate business purposes","permission":"allow"}]

Example 3.
Statement: "We do not sell your personal information."
Output: [{"sender":"Acme","receiver":"third party","subject":"user","data_type":"personal information","action":"sell","permission":"deny"}]

Example 4.
Statement: "You may provide profile information, such as a name, an email, and a photo."
Output: [{"sender":"user","receiver":"Acme","subject":"user","data_type":"name","action":"provide","permission":"allow"},
         {"sender":"user","receiver":"Acme","subject":"user","data_type":"email","action":"provide","permission":"allow"},
         {"sender":"user","receiver":"Acme","subject":"user","data_type":"photo","action":"provide","permission":"allow"}]`

// CompanyNamePrompt renders the company-name identification prompt over the
// first 1000 characters of the policy, per §3.
func CompanyNamePrompt(policyPrefix string) Request {
	if len(policyPrefix) > 1000 {
		policyPrefix = policyPrefix[:1000]
	}
	return Request{
		Task: TaskCompanyName,
		Prompt: fmt.Sprintf(`Identify the organization that owns this privacy policy.
Respond with JSON: {"company": "<name>"}.

Policy opening:
%s`, policyPrefix),
		Input: map[string]string{"prefix": policyPrefix},
	}
}

// ExtractParamsPrompt renders the semantic-role extraction prompt for one
// coreference-resolved segment.
func ExtractParamsPrompt(company, segment string) Request {
	return Request{
		Task: TaskExtractParams,
		Prompt: fmt.Sprintf(`Extract every data practice from the policy statement below.
For each practice produce JSON with sender, receiver, subject, data_type,
action, condition, permission. Normalize: base-form verbs, singular data
types, "user" for data subjects. Keep vague conditions verbatim; preserve
AND/OR. Expand enumerated lists into one object per data type. Respond with
a JSON array.

%s

Company: %s
Statement: %q`, extractFewShots, company, segment),
		Input: map[string]string{"company": company, "segment": segment},
	}
}

// TaxonomyRootPrompt asks for the root concept of a term set.
func TaxonomyRootPrompt(kind string, terms []string) Request {
	return Request{
		Task: TaskTaxonomyRoot,
		Prompt: fmt.Sprintf(`These are %s terms from a privacy policy:
%s
Name the single root concept that subsumes all of them.
Respond with JSON: {"root": "<concept>"}.`, kind, strings.Join(terms, "; ")),
		Input: map[string]string{"kind": kind, "terms": strings.Join(terms, "\x1f")},
	}
}

// TaxonomyLayerPrompt asks, per Chain-of-Layer, which of the remaining
// terms are immediate children of each frontier node.
func TaxonomyLayerPrompt(kind string, frontier, remaining []string) Request {
	return Request{
		Task: TaskTaxonomyLayer,
		Prompt: fmt.Sprintf(`Current taxonomy frontier (%s): %s
Remaining terms: %s
For each frontier node, list which remaining terms are its immediate
subcategories. Every remaining term may appear under at most one node.
Respond with JSON: {"children": {"<node>": ["<term>", ...]}}.`,
			kind, strings.Join(frontier, "; "), strings.Join(remaining, "; ")),
		Input: map[string]string{
			"kind":      kind,
			"frontier":  strings.Join(frontier, "\x1f"),
			"remaining": strings.Join(remaining, "\x1f"),
		},
	}
}

// SemanticEquivPrompt asks whether two terms mean the same thing in a
// privacy context (the LLM verification step of Phase 3).
func SemanticEquivPrompt(a, b string) Request {
	return Request{
		Task: TaskSemanticEquiv,
		Prompt: fmt.Sprintf(`In the context of a privacy policy, do %q and %q refer to the
same kind of information or party? Respond with JSON: {"equivalent": true|false}.`, a, b),
		Input: map[string]string{"a": a, "b": b},
	}
}
