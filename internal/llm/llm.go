// Package llm provides the language-model substrate of the pipeline: a
// provider-neutral Client interface, a prompt library with the few-shot
// templates described in the paper, client middleware (caching, retry,
// rate-limiting, failure injection), and SimLLM — a deterministic
// rule-grounded model that implements every prompt task the pipeline
// issues (company-name identification, coreference resolution, semantic
// role extraction, Chain-of-Layer taxonomy induction and semantic
// equivalence judging).
//
// SimLLM substitutes for GPT-4o-mini: the pipeline only ever consumes
// structured JSON answers to a fixed family of prompts, and SimLLM produces
// the same kind of output from the same inputs, offline and reproducibly.
package llm

import (
	"context"
	"errors"
	"fmt"
)

// Task identifies the structured job a prompt performs. The simulated model
// dispatches on it; a real HTTP client would ignore it and send Prompt.
type Task string

// Prompt tasks issued by the pipeline.
const (
	// TaskCompanyName asks for the organization name in a policy prefix.
	TaskCompanyName Task = "company_name"
	// TaskExtractParams asks for the semantic roles of one policy segment.
	TaskExtractParams Task = "extract_params"
	// TaskTaxonomyRoot asks for the root concept of a term set.
	TaskTaxonomyRoot Task = "taxonomy_root"
	// TaskTaxonomyLayer asks which remaining terms are immediate children
	// of each frontier node (Chain-of-Layer iteration).
	TaskTaxonomyLayer Task = "taxonomy_layer"
	// TaskSemanticEquiv asks whether two terms mean the same thing in a
	// privacy context.
	TaskSemanticEquiv Task = "semantic_equiv"
)

// Request is a single completion request.
type Request struct {
	// Task selects the structured job; required.
	Task Task
	// Prompt is the fully rendered prompt text, used for cache keys and
	// kept faithful to what a hosted model would receive.
	Prompt string
	// Input carries the task's structured parameters.
	Input map[string]string
}

// Usage reports approximate token accounting, mirroring hosted-API
// responses so cost instrumentation code paths are exercised.
type Usage struct {
	// PromptTokens approximates tokens in the prompt.
	PromptTokens int
	// CompletionTokens approximates tokens in the completion.
	CompletionTokens int
}

// Response is a completion response. Text is JSON for all structured tasks.
type Response struct {
	// Text is the raw completion.
	Text string
	// Usage reports token accounting.
	Usage Usage
}

// Client is the minimal completion interface; SimLLM, middleware and (in a
// networked deployment) an HTTP client all implement it.
type Client interface {
	// Complete runs one request. Implementations must be safe for
	// concurrent use.
	Complete(ctx context.Context, req Request) (Response, error)
}

// ErrMalformedOutput reports that a model response could not be decoded;
// callers are expected to retry or degrade, as with a hosted model.
var ErrMalformedOutput = errors.New("llm: malformed model output")

// ErrOverloaded simulates a provider-side transient failure.
var ErrOverloaded = errors.New("llm: model overloaded")

// approxTokens estimates tokens as ceil(len/4), the usual rough heuristic.
func approxTokens(s string) int { return (len(s) + 3) / 4 }

// validateRequest rejects requests the pipeline should never produce.
func validateRequest(req Request) error {
	if req.Task == "" {
		return fmt.Errorf("llm: request missing task")
	}
	if req.Prompt == "" {
		return fmt.Errorf("llm: request missing prompt")
	}
	return nil
}
