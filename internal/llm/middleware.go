package llm

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"sync"
	"time"
)

// CachingClient memoizes completions by prompt content hash, providing the
// paper's "caching mechanisms ... to enable incremental processing".
type CachingClient struct {
	// Inner is the wrapped client.
	Inner Client

	mu    sync.Mutex
	cache map[string]Response
	hits  int
	calls int
}

// NewCachingClient wraps inner with a memoization layer.
func NewCachingClient(inner Client) *CachingClient {
	return &CachingClient{Inner: inner, cache: map[string]Response{}}
}

// cacheKey hashes the task and prompt; the hash doubles as the segment
// identity used for diff-based re-extraction.
func cacheKey(req Request) string {
	h := sha256.New()
	h.Write([]byte(req.Task))
	h.Write([]byte{0})
	h.Write([]byte(req.Prompt))
	return hex.EncodeToString(h.Sum(nil))
}

// Complete implements Client with memoization.
func (c *CachingClient) Complete(ctx context.Context, req Request) (Response, error) {
	key := cacheKey(req)
	c.mu.Lock()
	c.calls++
	if resp, ok := c.cache[key]; ok {
		c.hits++
		c.mu.Unlock()
		return resp, nil
	}
	c.mu.Unlock()
	resp, err := c.Inner.Complete(ctx, req)
	if err != nil {
		return Response{}, err
	}
	c.mu.Lock()
	c.cache[key] = resp
	c.mu.Unlock()
	return resp, nil
}

// HitRate returns cache hits / total calls, for instrumentation.
func (c *CachingClient) HitRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.calls == 0 {
		return 0
	}
	return float64(c.hits) / float64(c.calls)
}

// Hits returns the number of cache hits so far.
func (c *CachingClient) Hits() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits
}

// RetryClient retries transient failures with capped exponential backoff,
// as a production LLM client must.
type RetryClient struct {
	// Inner is the wrapped client.
	Inner Client
	// MaxAttempts caps attempts; default 3.
	MaxAttempts int
	// BaseDelay is the first backoff delay; default 10ms. Tests use 0.
	BaseDelay time.Duration
	// Sleep is swappable for tests; defaults to time.Sleep-with-context.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Complete implements Client with retry on ErrOverloaded and
// ErrMalformedOutput.
func (c *RetryClient) Complete(ctx context.Context, req Request) (Response, error) {
	attempts := c.MaxAttempts
	if attempts <= 0 {
		attempts = 3
	}
	delay := c.BaseDelay
	if delay == 0 {
		delay = 10 * time.Millisecond
	}
	sleep := c.Sleep
	if sleep == nil {
		sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		resp, err := c.Inner.Complete(ctx, req)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !errors.Is(err, ErrOverloaded) && !errors.Is(err, ErrMalformedOutput) {
			return Response{}, err
		}
		if i+1 < attempts {
			if err := sleep(ctx, delay); err != nil {
				return Response{}, err
			}
			delay *= 2
		}
	}
	return Response{}, lastErr
}

// RateLimitedClient enforces a simple token-bucket request rate, standing in
// for provider-side quotas.
type RateLimitedClient struct {
	// Inner is the wrapped client.
	Inner Client

	mu     sync.Mutex
	tokens float64
	last   time.Time
	// PerSecond is the sustained request rate; default 100.
	PerSecond float64
	// Burst is the bucket capacity; default PerSecond.
	Burst float64
	// Now is swappable for tests.
	Now func() time.Time
}

// Complete implements Client, blocking-free: requests beyond the rate get
// ErrOverloaded (callers wrap with RetryClient).
func (c *RateLimitedClient) Complete(ctx context.Context, req Request) (Response, error) {
	now := time.Now
	if c.Now != nil {
		now = c.Now
	}
	c.mu.Lock()
	rate := c.PerSecond
	if rate <= 0 {
		rate = 100
	}
	burst := c.Burst
	if burst <= 0 {
		burst = rate
	}
	t := now()
	if c.last.IsZero() {
		c.tokens = burst
	} else {
		c.tokens += t.Sub(c.last).Seconds() * rate
		if c.tokens > burst {
			c.tokens = burst
		}
	}
	c.last = t
	if c.tokens < 1 {
		c.mu.Unlock()
		return Response{}, ErrOverloaded
	}
	c.tokens--
	c.mu.Unlock()
	return c.Inner.Complete(ctx, req)
}

// FlakyClient injects deterministic failures for testing degradation
// paths: every Nth request fails with Err before reaching Inner.
type FlakyClient struct {
	// Inner is the wrapped client.
	Inner Client
	// EveryN makes request numbers divisible by EveryN fail; 0 disables.
	EveryN int
	// Err is the injected error; defaults to ErrOverloaded.
	Err error

	mu sync.Mutex
	n  int
}

// Complete implements Client with periodic failure injection.
func (c *FlakyClient) Complete(ctx context.Context, req Request) (Response, error) {
	c.mu.Lock()
	c.n++
	fail := c.EveryN > 0 && c.n%c.EveryN == 0
	c.mu.Unlock()
	if fail {
		if c.Err != nil {
			return Response{}, c.Err
		}
		return Response{}, ErrOverloaded
	}
	return c.Inner.Complete(ctx, req)
}
