package llm

import (
	"fmt"
	"sort"
	"strings"
	"testing"
)

// renderEdges renders param sets in the paper's actor-based edge notation
// for golden comparison.
func renderEdges(ps []ParamSet) []string {
	out := make([]string, 0, len(ps))
	for _, p := range ps {
		actor, _ := FlowRoles(p)
		e := fmt.Sprintf("[%s]-%s->[%s]", actor, p.Action, p.DataType)
		if p.Permission == "deny" {
			e = "DENY " + e
		}
		if p.Condition != "" {
			e += " IF " + p.Condition
		}
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// TestExtractionGoldens is a wide battery over the statement shapes privacy
// policies use; each case pins the exact decomposition.
func TestExtractionGoldens(t *testing.T) {
	cases := []struct {
		name      string
		statement string
		want      []string
	}{
		{
			name:      "simple collection",
			statement: "Acme collects your search history.",
			want:      []string{"[Acme]-collect->[search history]"},
		},
		{
			name:      "coordinated data",
			statement: "Acme collects crash logs and battery levels automatically.",
			want: []string{
				"[Acme]-collect->[battery level]",
				"[Acme]-collect->[crash log]",
			},
		},
		{
			name:      "share with receiver",
			statement: "Acme shares your watch history with measurement partners.",
			want:      []string{"[Acme]-share->[watch history]"},
		},
		{
			name:      "disclose to receiver",
			statement: "Acme discloses purchase histories to credit bureaus.",
			want:      []string{"[Acme]-disclose->[purchase history]"},
		},
		{
			name:      "vague purpose preserved",
			statement: "Acme shares usage data with analytics providers for business operations.",
			want:      []string{"[Acme]-share->[usage data] IF business operations"},
		},
		{
			name:      "denial",
			statement: "Acme does not sell your biometric identifiers.",
			want:      []string{"DENY [Acme]-sell->[biometric identifier]"},
		},
		{
			name:      "never denial",
			statement: "Acme never discloses your health metrics.",
			want:      []string{"DENY [Acme]-disclose->[health metric]"},
		},
		{
			name:      "leading condition with user activity",
			statement: "If you enable location services, Acme collects your gps location.",
			want: []string{
				"[Acme]-collect->[gps location] IF you enable location services",
				"[user]-enable->[location service]",
			},
		},
		{
			name:      "trailing if condition",
			statement: "Acme retains message contents if required by law.",
			want:      []string{"[Acme]-retain->[message content] IF required by law"},
		},
		{
			name:      "compound verbs share one object",
			statement: "Acme accesses and collects your contact list.",
			want: []string{
				"[Acme]-access->[contact list]",
				"[Acme]-collect->[contact list]",
			},
		},
		{
			name:      "self-directed processing",
			statement: "Acme processes and preserves transaction records.",
			want: []string{
				"[Acme]-preserve->[transaction record]",
				"[Acme]-process->[transaction record]",
			},
		},
		{
			name:      "inbound from party",
			statement: "Acme receives your advertising identifiers from advertising networks.",
			want:      []string{"[Acme]-receive->[advertising identifier]"},
		},
		{
			name:      "user provides enumeration",
			statement: "You may provide a username, a password, and a date of birth.",
			want: []string{
				"[user]-provide->[date of birth]",
				"[user]-provide->[password]",
				"[user]-provide->[username]",
			},
		},
		{
			name:      "such-as keeps specific head",
			statement: "You may provide payment and delivery information, such as a billing address and a shipping address.",
			want: []string{
				"[user]-provide->[billing address]",
				"[user]-provide->[payment and delivery information]",
				"[user]-provide->[shipping address]",
			},
		},
		{
			name:      "such-as drops generic head",
			statement: "You may provide information, such as a name and an age.",
			want: []string{
				"[user]-provide->[age]",
				"[user]-provide->[name]",
			},
		},
		{
			name:      "of-phrase distributes",
			statement: "Acme collects names, phone numbers, and email addresses of contacts.",
			want: []string{
				"[Acme]-collect->[email address of contacts]",
				"[Acme]-collect->[name of contacts]",
				"[Acme]-collect->[phone number of contacts]",
			},
		},
		{
			name:      "new main clause after comma-and",
			statement: "You make purchases, and Acme processes payment information.",
			want: []string{
				"[Acme]-process->[payment information]",
				"[user]-make->[purchase]",
			},
		},
		{
			name:      "interact-with phrase",
			statement: "You interact with ads.",
			want:      []string{"[user]-interact with->[ads]"},
		},
		{
			name:      "boilerplate yields nothing",
			statement: "This policy was last updated in January.",
			want:      nil,
		},
		{
			name:      "passive voice yields nothing",
			statement: "Your data is stored on secure servers.",
			want:      nil,
		},
		{
			name:      "receiver-initiated with modal",
			statement: "Fraud prevention services may receive your ip address if fraud is suspected.",
			want:      []string{"[fraud prevention service]-receive->[ip address] IF fraud is suspected"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := renderEdges(extractParams("Acme", c.statement))
			if strings.Join(got, "\n") != strings.Join(c.want, "\n") {
				t.Errorf("statement: %s\ngot:\n  %s\nwant:\n  %s",
					c.statement, strings.Join(got, "\n  "), strings.Join(c.want, "\n  "))
			}
		})
	}
}

// TestExtractionGoldensTricky pins the harder phrasings fixed after
// fuzzing/probing: open-ended enumerations, semicolon clauses, unless
// polarity and parenthetical asides.
func TestExtractionGoldensTricky(t *testing.T) {
	cases := []struct {
		name      string
		statement string
		want      []string
	}{
		{
			name:      "including but not limited to",
			statement: "Acme collects information, including but not limited to device identifiers and crash logs.",
			want: []string{
				"[Acme]-collect->[crash log]",
				"[Acme]-collect->[device identifier]",
			},
		},
		{
			name:      "semicolon clauses",
			statement: "Acme may share your email address; Acme may also share your phone number.",
			want: []string{
				"[Acme]-share->[email address]",
				"[Acme]-share->[phone number]",
			},
		},
		{
			name:      "unless polarity preserved",
			statement: "Unless you opt out, Acme shares your usage data with measurement partners.",
			want: []string{
				"[Acme]-share->[usage data] IF NOT you opt out",
				"[user]-opt out->[]",
			},
		},
		{
			name:      "eg aside dropped",
			statement: "Acme collects your email address, e.g. for account recovery.",
			want:      []string{"[Acme]-collect->[email address]"},
		},
		{
			name:      "deny with unless",
			statement: "Acme will not share your location data unless required by law.",
			want:      []string{"DENY [Acme]-share->[location data] IF NOT required by law"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got := renderEdges(extractParams("Acme", c.statement))
			// Drop empty-object helper edges from the comparison baseline
			// where expected "[]" appears.
			filteredWant := c.want[:0:0]
			for _, w := range c.want {
				if !strings.HasSuffix(w, "->[]") {
					filteredWant = append(filteredWant, w)
				}
			}
			filteredGot := got[:0:0]
			for _, g := range got {
				if !strings.Contains(g, "->[]") {
					filteredGot = append(filteredGot, g)
				}
			}
			if strings.Join(filteredGot, "\n") != strings.Join(filteredWant, "\n") {
				t.Errorf("statement: %s\ngot:\n  %s\nwant:\n  %s",
					c.statement, strings.Join(filteredGot, "\n  "), strings.Join(filteredWant, "\n  "))
			}
		})
	}
}
