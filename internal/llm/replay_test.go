package llm

import (
	"context"
	"os"
	"path/filepath"
	"testing"
)

func TestRecordAndReplay(t *testing.T) {
	rec := NewRecordingClient(NewSim())
	ctx := context.Background()
	reqs := []Request{
		CompanyNamePrompt("Acme Privacy Policy\nDetails follow."),
		ExtractParamsPrompt("Acme", "Acme collects your email address."),
		SemanticEquivPrompt("email", "email address"),
	}
	var live []Response
	for _, req := range reqs {
		resp, err := rec.Complete(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, resp)
	}
	if len(rec.Transcript()) != 3 {
		t.Fatalf("transcript entries = %d", len(rec.Transcript()))
	}

	// Save and reload.
	path := filepath.Join(t.TempDir(), "transcript.json")
	if err := rec.Save(path); err != nil {
		t.Fatal(err)
	}
	replay, err := LoadReplayClient(path)
	if err != nil {
		t.Fatal(err)
	}
	if replay.Len() != 3 {
		t.Fatalf("replay entries = %d", replay.Len())
	}
	// Replay returns byte-identical completions.
	for i, req := range reqs {
		resp, err := replay.Complete(ctx, req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Text != live[i].Text {
			t.Errorf("replay diverged for %s: %q vs %q", req.Task, resp.Text, live[i].Text)
		}
		if resp.Usage != live[i].Usage {
			t.Errorf("usage diverged: %+v vs %+v", resp.Usage, live[i].Usage)
		}
	}
	// Unknown requests fail hermetically.
	if _, err := replay.Complete(ctx, ExtractParamsPrompt("Acme", "Something never recorded.")); err == nil {
		t.Error("unrecorded request should fail")
	}
}

func TestReplayEndToEndPipeline(t *testing.T) {
	// Record a full extraction, then run the identical extraction against
	// the replay client with no simulated model behind it.
	policyText := "# Acme Privacy Policy\n\nWe collect your email address.\n\nWe do not sell your personal information.\n"
	rec := NewRecordingClient(NewSim())
	// Drive the same prompts the extractor will issue.
	ctx := context.Background()
	if _, err := rec.Complete(ctx, CompanyNamePrompt(policyText)); err != nil {
		t.Fatal(err)
	}
	for _, seg := range []string{
		"Acme collect your email address.",
		"Acme does not sell your personal information.",
	} {
		if _, err := rec.Complete(ctx, ExtractParamsPrompt("Acme", seg)); err != nil {
			t.Fatal(err)
		}
	}
	replay := NewReplayClient(rec.Transcript())
	// The same requests replay cleanly.
	resp, err := replay.Complete(ctx, ExtractParamsPrompt("Acme", "Acme collect your email address."))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Text == "" {
		t.Error("empty replayed response")
	}
}

func TestLoadReplayClientErrors(t *testing.T) {
	if _, err := LoadReplayClient("/nonexistent/file.json"); err == nil {
		t.Error("missing file should fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := writeFile(bad, "not json"); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadReplayClient(bad); err == nil {
		t.Error("malformed transcript should fail")
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
