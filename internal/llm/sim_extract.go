package llm

import (
	"strings"

	"github.com/privacy-quagmire/quagmire/internal/nlp"
)

// direction classifies how data flows relative to the clause subject.
type direction int

const (
	// dirOutbound: the subject sends data to a receiver (share with X).
	dirOutbound direction = iota
	// dirInbound: the subject obtains data from a sender (collect from X).
	dirInbound
	// dirSelf: the subject acts on data it already holds (store, process).
	dirSelf
	// dirUserAct: a user activity that yields data to the company (create,
	// upload, view).
	dirUserAct
)

// actionVocab maps base-form verbs to their flow direction. The table
// covers the data-practice verbs observed in privacy policies (and in the
// paper's Tables 2-3).
var actionVocab = map[string]direction{
	"share": dirOutbound, "disclose": dirOutbound, "sell": dirOutbound,
	"transfer": dirOutbound, "send": dirOutbound, "provide": dirOutbound,
	"give": dirOutbound, "transmit": dirOutbound, "release": dirOutbound,
	"distribute": dirOutbound, "report": dirOutbound, "show": dirOutbound,
	"expose": dirOutbound, "forward": dirOutbound,

	"collect": dirInbound, "access": dirInbound, "receive": dirInbound,
	"obtain": dirInbound, "gather": dirInbound, "record": dirInbound,
	"track": dirInbound, "request": dirInbound, "acquire": dirInbound,
	"import": dirInbound, "capture": dirInbound, "scan": dirInbound,
	"read": dirInbound, "infer": dirInbound, "derive": dirInbound,

	"use": dirSelf, "store": dirSelf, "process": dirSelf, "retain": dirSelf,
	"preserve": dirSelf, "analyze": dirSelf, "combine": dirSelf,
	"delete": dirSelf, "remove": dirSelf, "protect": dirSelf,
	"encrypt": dirSelf, "anonymize": dirSelf, "aggregate": dirSelf,
	"review": dirSelf, "monitor": dirSelf, "keep": dirSelf,
	"maintain": dirSelf, "update": dirSelf, "hold": dirSelf, "log": dirSelf,
	"develop": dirSelf, "improve": dirSelf, "personalize": dirSelf,
	"verify": dirSelf, "link": dirSelf, "match": dirSelf,

	"create": dirUserAct, "upload": dirUserAct, "view": dirUserAct,
	"interact": dirUserAct, "make": dirUserAct, "choose": dirUserAct,
	"engage": dirUserAct, "contact": dirUserAct, "visit": dirUserAct,
	"browse": dirUserAct, "click": dirUserAct, "purchase": dirUserAct,
	"post": dirUserAct, "submit": dirUserAct, "register": dirUserAct,
	"communicate": dirUserAct, "connect": dirUserAct, "sync": dirUserAct,
	"follow": dirUserAct, "message": dirUserAct, "stream": dirUserAct,
	"watch": dirUserAct, "search": dirUserAct, "play": dirUserAct,
	"join": dirUserAct, "participate": dirUserAct, "allow": dirUserAct,
	"enable": dirUserAct, "apply": dirUserAct, "opt": dirUserAct,
}

// vaguePhrases are condition fragments with no computational definition;
// they are preserved verbatim (Challenge 1).
var vaguePhrases = []string{
	"legitimate business purpose", "legitimate purpose", "business operations",
	"business purpose", "required by law", "legal obligation", "as necessary",
	"where appropriate", "trusted partner", "reasonable", "legitimate interest",
	"security purpose", "improve our services", "comply with the law",
	"applicable law", "lawful request", "public interest", "vital interest",
}

// wordToken is a word with its byte span in the clause.
type wordToken struct {
	text  string
	lower string
	base  string
	start int
	end   int
}

func wordsOf(s string) []wordToken {
	toks := nlp.Tokenize(s)
	out := make([]wordToken, 0, len(toks))
	for _, t := range toks {
		if t.Kind != nlp.Word && t.Kind != nlp.Number {
			continue
		}
		lower := strings.ToLower(t.Text)
		out = append(out, wordToken{
			text: t.Text, lower: lower, base: nlp.VerbBase(lower),
			start: t.Start, end: t.End,
		})
	}
	return out
}

// extractParams is the SimLLM implementation of TaskExtractParams: a
// deterministic semantic-role extractor over one coreference-resolved
// policy statement.
func extractParams(company, segment string) []ParamSet {
	segment = strings.TrimSpace(segment)
	if segment == "" {
		return nil
	}
	var out []ParamSet

	// Leading subordinate clause is a condition; per the paper's Table 2
	// the user activities inside it are also extracted as edges of their
	// own ("captures the causal relationship").
	condition, main := splitLeadingCondition(segment)
	if condition != "" {
		out = append(out, extractClauses(company, condition, "", true)...)
	}
	// Trailing conditions attach to the main clause.
	main, trailing := splitTrailingCondition(main)
	conds := joinConditions(condition, trailing)
	out = append(out, extractClauses(company, main, conds, false)...)
	return dedupeParams(out)
}

var leadingCondMarkers = []string{"if ", "when ", "whenever ", "where ", "unless ", "in case ", "to the extent "}

// splitLeadingCondition splits "If/When <clause>, <main>" into the
// condition clause and the main clause. The boundary is the last comma
// followed by a plausible main-clause subject ("you ...", "we ...", or a
// capitalized entity), so that commas inside the conditional enumeration
// ("When you create an account, upload content, or contact support, you
// may ...") stay within the condition.
func splitLeadingCondition(s string) (cond, main string) {
	lower := strings.ToLower(s)
	for _, m := range leadingCondMarkers {
		if !strings.HasPrefix(lower, m) {
			continue
		}
		best := -1
		for i := len(m); i < len(s); i++ {
			if s[i] != ',' {
				continue
			}
			rest := strings.TrimSpace(s[i+1:])
			if startsMainClause(rest) {
				best = i
			}
		}
		if best < 0 {
			if i := strings.Index(s[len(m):], ","); i >= 0 {
				best = i + len(m)
			} else {
				return "", s
			}
		}
		cond = strings.TrimSpace(s[len(m):best])
		if m == "unless " {
			// "Unless X, Y" means Y holds when X does NOT; preserve the
			// logical polarity alongside the verbatim text.
			cond = "NOT " + cond
		}
		return cond, strings.TrimSpace(s[best+1:])
	}
	return "", s
}

// startsMainClause reports whether text looks like the start of a main
// clause: a subject pronoun or a capitalized entity followed by more words.
func startsMainClause(rest string) bool {
	restLower := strings.ToLower(rest)
	for _, p := range []string{"you ", "we ", "they ", "it "} {
		if strings.HasPrefix(restLower, p) {
			return true
		}
	}
	// Capitalized word (company name) followed by a verb-ish word.
	ws := wordsOf(rest)
	if len(ws) >= 2 && rest[0] >= 'A' && rest[0] <= 'Z' {
		next := ws[1].lower
		if next == "will" || next == "may" || next == "can" || next == "must" {
			return true
		}
		if _, ok := actionVocab[ws[1].base]; ok {
			return true
		}
	}
	return false
}

var trailingCondMarkers = []string{
	" if ", " when ", " unless ", " provided that ", " where required",
	" as required by law", " with your consent", " with your permission",
	" for ", " to comply with ", " in order to ", " subject to ",
	" only when ", " only if ",
}

// splitTrailingCondition splits "<main> if/for/when <cond>" returning the
// main clause and the condition text. Purpose clauses ("for business
// operations") count as conditions, preserving vague terms verbatim.
func splitTrailingCondition(s string) (main, cond string) {
	lower := strings.ToLower(s)
	best := -1
	bestMarker := ""
	for _, m := range trailingCondMarkers {
		i := strings.Index(lower, m)
		if i < 0 {
			continue
		}
		// "for" only starts a condition when it introduces a purpose,
		// not a beneficiary ("for you").
		tail := strings.TrimSpace(lower[i+len(m):])
		if strings.TrimSpace(m) == "for" && !looksLikePurpose(tail) {
			continue
		}
		// The earliest marker wins so that compound conditions ("if
		// necessary to comply with the law") stay intact.
		if best < 0 || i < best {
			best = i
			bestMarker = m
		}
	}
	if best < 0 {
		return s, ""
	}
	main = strings.TrimSpace(s[:best])
	cond = strings.TrimSpace(s[best+len(bestMarker):])
	cond = strings.TrimRight(cond, ".")
	switch strings.TrimSpace(bestMarker) {
	case "to comply with":
		cond = "comply with " + cond
	case "unless":
		cond = "NOT " + cond
	}
	return main, cond
}

func looksLikePurpose(tail string) bool {
	for _, kw := range []string{"purpose", "operation", "reason", "analytics",
		"advertising", "marketing", "security", "safety", "research",
		"personalization", "compliance", "example"} {
		if strings.Contains(tail, kw) {
			return true
		}
	}
	return false
}

func joinConditions(parts ...string) string {
	var nonEmpty []string
	for _, p := range parts {
		if strings.TrimSpace(p) != "" {
			nonEmpty = append(nonEmpty, strings.TrimSpace(p))
		}
	}
	return strings.Join(nonEmpty, " AND ")
}

// extractClauses splits a clause group on ";" and coordinated subjects and
// extracts param sets from each.
func extractClauses(company, text, condition string, inCondition bool) []ParamSet {
	var out []ParamSet
	for _, clause := range splitClauses(text) {
		out = append(out, extractOneClause(company, clause, condition, inCondition)...)
	}
	return out
}

// splitClauses splits on semicolons, on ", and/or <new main clause>"
// boundaries ("..., and MetaBook will process transaction records"), and on
// coordinated verb phrases sharing a subject.
func splitClauses(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ";") {
		for _, piece := range splitMainClauses(strings.TrimSpace(part)) {
			out = append(out, splitCoordinated(piece)...)
		}
	}
	return out
}

// splitMainClauses splits at ", and " / ", or " boundaries whose right side
// starts a new main clause with its own subject.
func splitMainClauses(s string) []string {
	for _, conj := range []string{", and ", ", or "} {
		if i := strings.LastIndex(s, conj); i > 0 {
			rest := s[i+len(conj):]
			if startsMainClause(rest) {
				return append(splitMainClauses(s[:i]), splitMainClauses(rest)...)
			}
		}
	}
	return []string{strings.TrimSpace(s)}
}

// splitCoordinated splits "you create an account, upload content, or
// otherwise use the Platform" into one clause per verb phrase, carrying the
// shared subject into each.
func splitCoordinated(s string) []string {
	words := wordsOf(s)
	if len(words) == 0 {
		return nil
	}
	// Find the subject prefix: words up to (excluding) the first verb.
	firstVerb := -1
	for i, w := range words {
		if _, ok := actionVocab[w.base]; ok && isVerbPosition(words, i) {
			firstVerb = i
			break
		}
	}
	if firstVerb <= 0 {
		return []string{s}
	}
	subject := strings.TrimSpace(s[:words[firstVerb].start])
	// Split points: ", verb" or ", or/and (otherwise) verb" boundaries.
	type span struct{ start int }
	var starts []int
	starts = append(starts, words[firstVerb].start)
	for i := firstVerb + 1; i < len(words); i++ {
		w := words[i]
		if _, ok := actionVocab[w.base]; !ok || !isVerbPosition(words, i) {
			continue
		}
		// Look back: preceded by a comma (possibly with and/or/otherwise),
		// or by a conjunction whose left neighbour is a non-verb (a new
		// verb phrase after a full object: "use the camera feature or use
		// voice-enabled features").
		j := i - 1
		sawConj := false
		for j > firstVerb && (words[j].lower == "or" || words[j].lower == "and" || words[j].lower == "otherwise") {
			sawConj = true
			j--
		}
		between := s[words[j].end:words[i].start]
		_, prevIsVerb := actionVocab[words[j].base]
		if strings.Contains(between, ",") || (sawConj && !prevIsVerb) {
			starts = append(starts, words[i].start)
		}
	}
	if len(starts) == 1 {
		return []string{s}
	}
	var out []string
	for k, st := range starts {
		end := len(s)
		if k+1 < len(starts) {
			end = starts[k+1]
		}
		frag := strings.TrimSpace(strings.TrimRight(strings.TrimSpace(s[st:end]), ","))
		frag = strings.TrimSuffix(frag, " or")
		frag = strings.TrimSuffix(frag, " and")
		out = append(out, strings.TrimSpace(subject+" "+frag))
	}
	return out
}

// isVerbPosition filters out noun usages of action words ("the use of").
func isVerbPosition(words []wordToken, i int) bool {
	w := words[i]
	if i > 0 {
		prev := words[i-1].lower
		switch prev {
		case "the", "a", "an", "of", "this", "that", "their", "its", "such",
			"your", "our", "my", "his", "her":
			return false
		}
	}
	// "access to X" as noun: "have access to".
	if w.base == "access" && i > 0 && words[i-1].base == "have" {
		return false
	}
	// Gerund subjects ("Sharing data is...") are rare in the corpus; allow.
	return true
}

// extractOneClause extracts param sets from a single clause with one
// subject and one or two coordinated verbs.
func extractOneClause(company, clause, condition string, inCondition bool) []ParamSet {
	clause = strings.TrimSpace(strings.TrimRight(strings.TrimSpace(clause), "."))
	if clause == "" {
		return nil
	}
	words := wordsOf(clause)
	if len(words) == 0 {
		return nil
	}
	// Locate the main verb(s).
	vi := -1
	for i, w := range words {
		if _, ok := actionVocab[w.base]; ok && isVerbPosition(words, i) {
			vi = i
			break
		}
	}
	if vi < 0 {
		return nil
	}
	// Passive voice ("was updated", "is stored by ...") and meta-text
	// subjects ("This policy ...") are not data practices by the subject.
	for back := 1; back <= 2 && vi-back >= 0; back++ {
		switch words[vi-back].lower {
		case "was", "were", "is", "are", "been", "being", "be":
			return nil
		}
	}
	subjectText := strings.TrimSpace(clause[:words[vi].start])
	subjectText = stripTrailingModals(subjectText)
	if subjLower := strings.ToLower(subjectText); strings.Contains(subjLower, "policy") ||
		strings.Contains(subjLower, "notice") || strings.Contains(subjLower, "section") ||
		strings.Contains(subjLower, "document") {
		return nil
	}
	permission := "allow"
	if negated(subjectText) {
		permission = "deny"
	}
	subject := resolveParty(subjectText, company, "")

	// Coordinated verbs: "access and collect", "view or interact with".
	actions := []string{words[vi].base}
	objStart := words[vi].end
	j := vi + 1
	for j+1 < len(words) && (words[j].lower == "and" || words[j].lower == "or") {
		if _, ok := actionVocab[words[j+1].base]; ok {
			actions = append(actions, words[j+1].base)
			objStart = words[j+1].end
			j += 2
		} else {
			break
		}
	}
	// Multi-word action phrases.
	rest := clause[objStart:]
	for k, a := range actions {
		switch a {
		case "interact", "engage":
			if strings.HasPrefix(strings.TrimSpace(rest), "with ") {
				actions[k] = a + " with"
			}
		case "choose":
			trimmed := strings.TrimSpace(rest)
			if strings.HasPrefix(trimmed, "to ") {
				ws := wordsOf(trimmed)
				if len(ws) >= 2 {
					actions[k] = "choose to " + ws[1].base
					// Object starts after the inner verb.
					objStart += strings.Index(rest, ws[1].text) + len(ws[1].text)
					rest = clause[objStart:]
				}
			}
		case "opt":
			trimmed := strings.TrimSpace(rest)
			if strings.HasPrefix(trimmed, "out") {
				actions[k] = "opt out"
				objStart += strings.Index(clause[objStart:], "out") + len("out")
				rest = clause[objStart:]
			}
		}
	}
	for k, a := range actions {
		if a == "interact with" || a == "engage with" {
			rest2 := strings.TrimSpace(clause[objStart:])
			if strings.HasPrefix(rest2, "with ") {
				objStart += strings.Index(clause[objStart:], "with ") + len("with ")
			}
			_ = k
		}
	}

	object := strings.TrimSpace(clause[objStart:])
	object = strings.TrimPrefix(object, ", ")

	// Peel off receiver/sender prepositional phrases, guided by the verb's
	// direction so that "limited to", "information about" and similar
	// non-party uses of the prepositions survive.
	dir := actionVocab[baseAction(actions[0])]
	receiverPhrase, senderPhrase := "", ""
	switch dir {
	case dirOutbound:
		object, receiverPhrase = peelParty(object, " with ")
		if receiverPhrase == "" {
			object, receiverPhrase = peelParty(object, " to ")
		}
	case dirInbound:
		object, senderPhrase = peelParty(object, " from ")
	case dirUserAct:
		object, receiverPhrase = peelParty(object, " with ")
	}
	sender, receiver := "", ""
	switch dir {
	case dirOutbound:
		sender = subject
		receiver = resolveParty(receiverPhrase, company, defaultReceiver(subject, company, actions[0]))
	case dirInbound:
		receiver = subject
		sender = resolveParty(senderPhrase, company, defaultSender(subject, company))
	case dirSelf:
		sender = subject
		receiver = subject
	case dirUserAct:
		sender = "user"
		receiver = resolveParty(receiverPhrase, company, company)
	}

	// Data subject: "your X" / "of contacts".
	dataSubject := "user"
	if strings.Contains(strings.ToLower(object), "of contacts") ||
		strings.Contains(strings.ToLower(object), "contacts'") {
		dataSubject = "contact"
	}

	items := expandObjects(object)
	if len(items) == 0 {
		items = []string{""}
	}
	var out []ParamSet
	cond := condition
	if inCondition {
		cond = "" // activities inside a condition clause are plain edges
	}
	for _, action := range actions {
		for _, item := range items {
			dt := nlp.CanonicalTerm(stripTrailingAdverb(item))
			if dt == "" {
				continue
			}
			out = append(out, ParamSet{
				Sender:     sender,
				Receiver:   receiver,
				Subject:    dataSubject,
				DataType:   dt,
				Action:     action,
				Condition:  cond,
				Permission: permission,
			})
		}
	}
	return out
}

// FlowRoles maps a parameter set's data-flow roles (sender/receiver) onto
// the paper's edge notation roles: the actor performing the action (the
// [X] in [X]-action->[data]) and the counterparty, if any. For inbound
// verbs (collect, access) the actor is the receiver of the data; for
// outbound verbs (share, disclose) it is the sender.
func FlowRoles(p ParamSet) (actor, other string) {
	switch actionVocab[baseAction(p.Action)] {
	case dirInbound:
		return p.Receiver, p.Sender
	case dirSelf:
		return p.Sender, ""
	default: // outbound and user activities
		return p.Sender, p.Receiver
	}
}

// stripTrailingAdverb removes a final "-ly" adverb from an object phrase
// ("crash logs automatically" -> "crash logs").
func stripTrailingAdverb(s string) string {
	s = strings.TrimSpace(s)
	if i := strings.LastIndexByte(s, ' '); i > 0 {
		last := s[i+1:]
		if strings.HasSuffix(last, "ly") && len(last) > 3 {
			return strings.TrimSpace(s[:i])
		}
	}
	return s
}

// stripTrailingModals removes trailing modal/auxiliary words from a subject
// phrase ("Clinical research sponsors may" -> "Clinical research sponsors").
func stripTrailingModals(s string) string {
	for {
		i := strings.LastIndexByte(s, ' ')
		if i < 0 {
			return s
		}
		switch strings.ToLower(s[i+1:]) {
		case "may", "will", "can", "must", "shall", "would", "might", "also", "then":
			s = strings.TrimSpace(s[:i])
		default:
			return s
		}
	}
}

func baseAction(a string) string {
	if i := strings.IndexByte(a, ' '); i > 0 {
		if strings.HasPrefix(a, "choose to ") {
			return "choose"
		}
		return a[:i]
	}
	return a
}

func negated(subjectText string) bool {
	lower := " " + strings.ToLower(subjectText) + " "
	for _, n := range []string{" do not ", " does not ", " will not ", " never ", " won't ", " don't ", " doesn't ", " shall not ", " must not ", " cannot "} {
		if strings.Contains(lower, n) {
			return true
		}
	}
	return false
}

// peelParty splits "data with service providers" into ("data", "service
// providers") for the given preposition.
func peelParty(object, prep string) (rest, party string) {
	lower := strings.ToLower(object)
	i := strings.Index(lower, prep)
	if i < 0 {
		return object, ""
	}
	party = strings.TrimSpace(object[i+len(prep):])
	// Drop anything after a comma in the party phrase (likely a new list).
	if j := strings.Index(party, ","); j >= 0 {
		party = party[:j]
	}
	return strings.TrimSpace(object[:i]), party
}

// resolveParty normalizes a party phrase: the company name, "user" for
// second-person references, or the canonicalized phrase. def is used when
// the phrase is empty.
func resolveParty(phrase, company, def string) string {
	phrase = strings.TrimSpace(phrase)
	if phrase == "" {
		return def
	}
	lower := strings.ToLower(phrase)
	words := nlp.Words(lower)
	for _, w := range words {
		if w == "you" || w == "user" || w == "users" {
			return "user"
		}
	}
	if company != "" && strings.Contains(lower, strings.ToLower(company)) {
		return company
	}
	p := nlp.CanonicalTerm(phrase)
	if p == "" {
		return def
	}
	return p
}

func defaultReceiver(subject, company, action string) string {
	if action == "sell" {
		return "third party"
	}
	if subject == "user" {
		return company
	}
	return "third party"
}

func defaultSender(subject, company string) string {
	if subject == "user" {
		return company
	}
	return "user"
}

// expandObjects splits an object phrase into individual data types,
// expanding enumerations ("such as name, age, and email").
func expandObjects(object string) []string {
	object = strings.TrimSpace(object)
	if object == "" {
		return nil
	}
	lower := strings.ToLower(object)
	// "information such as A, B, C" keeps the lead term AND the items when
	// the lead is a generic container word; otherwise items only. The
	// longest markers are tried first ("including but not limited to"
	// before "including").
	for _, marker := range []string{
		" including but not limited to ", ", including but not limited to ",
		" such as ", ", such as ", " including ", ", including ", " like ",
	} {
		if i := strings.Index(lower, marker); i >= 0 {
			head := strings.TrimSpace(object[:i])
			items := nlp.SplitList(object[i+len(marker):])
			out := make([]string, 0, len(items)+1)
			if keepHead(head) {
				out = append(out, head)
			}
			out = append(out, items...)
			return out
		}
	}
	if strings.Contains(object, ",") || strings.Contains(lower, " and ") || strings.Contains(lower, " or ") {
		return dropAsides(distributeOfPhrase(nlp.SplitList(object)))
	}
	return []string{object}
}

// dropAsides removes enumeration items that are parenthetical asides
// rather than data types ("e.g. for account recovery", "etc.").
func dropAsides(items []string) []string {
	out := items[:0]
	for _, item := range items {
		lower := strings.ToLower(strings.TrimSpace(item))
		if lower == "" || lower == "etc" || lower == "etc." ||
			strings.HasPrefix(lower, "e.g") || strings.HasPrefix(lower, "i.e") ||
			strings.HasPrefix(lower, "for example") || strings.HasPrefix(lower, "among others") {
			continue
		}
		out = append(out, item)
	}
	return out
}

// distributeOfPhrase spreads a trailing "of X" complement across all items
// of an enumeration: "names, phone numbers, and email addresses of
// contacts" yields "name of contacts", "phone number of contacts", "email
// address of contacts" — the decomposition shown in the paper's Table 2.
func distributeOfPhrase(items []string) []string {
	if len(items) < 2 {
		return items
	}
	last := items[len(items)-1]
	i := strings.LastIndex(last, " of ")
	if i < 0 {
		return items
	}
	suffix := last[i:]
	// Distribute only plural complements ("of contacts", "of users");
	// singular complements are fixed compounds ("date of birth").
	complement := strings.TrimSpace(suffix[len(" of "):])
	if !strings.HasSuffix(complement, "s") {
		return items
	}
	for k := 0; k < len(items)-1; k++ {
		if !strings.Contains(items[k], " of ") {
			items[k] += suffix
		}
	}
	return items
}

// keepHead reports whether the pre-enumeration head phrase is specific
// enough to keep as its own data type ("account and profile information")
// versus a pure container ("information").
func keepHead(head string) bool {
	h := nlp.NormalizePhrase(head)
	switch h {
	case "information", "data", "content", "the following", "following information", "some or all of the following information":
		return false
	}
	return h != ""
}

// dedupeParams removes exact duplicates while preserving order.
func dedupeParams(in []ParamSet) []ParamSet {
	seen := map[ParamSet]bool{}
	out := make([]ParamSet, 0, len(in))
	for _, p := range in {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	return out
}

// VagueTerms returns the vague fragments of a condition — terms with no
// computational definition that must be preserved as explicit uninterpreted
// predicates (Challenge 1). Exported for the pipeline's FOL encoder.
func VagueTerms(condition string) []string { return detectVagueTerms(condition) }

// detectVagueTerms returns the vague fragments of a condition, used by the
// pipeline to tag uninterpreted predicates.
func detectVagueTerms(condition string) []string {
	lower := strings.ToLower(condition)
	var out []string
	for _, v := range vaguePhrases {
		if strings.Contains(lower, v) {
			out = append(out, v)
		}
	}
	return out
}
