package llm

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"github.com/privacy-quagmire/quagmire/internal/nlp"
)

// SimLLM is the deterministic simulated language model. It dispatches on
// Request.Task and answers with the same JSON shapes a hosted model is
// prompted to produce. The zero value is ready to use.
type SimLLM struct{}

// NewSim returns a simulated model.
func NewSim() *SimLLM { return &SimLLM{} }

// Complete implements Client.
func (m *SimLLM) Complete(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	if err := validateRequest(req); err != nil {
		return Response{}, err
	}
	var payload any
	switch req.Task {
	case TaskCompanyName:
		payload = map[string]string{"company": companyName(req.Input["prefix"])}
	case TaskExtractParams:
		payload = extractParams(req.Input["company"], req.Input["segment"])
	case TaskTaxonomyRoot:
		payload = map[string]string{"root": taxonomyRoot(req.Input["kind"])}
	case TaskTaxonomyLayer:
		payload = map[string]map[string][]string{
			"children": taxonomyLayer(
				req.Input["kind"],
				splitField(req.Input["frontier"]),
				splitField(req.Input["remaining"]),
			),
		}
	case TaskSemanticEquiv:
		payload = map[string]bool{"equivalent": semanticEquiv(req.Input["a"], req.Input["b"])}
	default:
		return Response{}, fmt.Errorf("llm: unknown task %q", req.Task)
	}
	text, err := json.Marshal(payload)
	if err != nil {
		return Response{}, err
	}
	return Response{
		Text: string(text),
		Usage: Usage{
			PromptTokens:     approxTokens(req.Prompt),
			CompletionTokens: approxTokens(string(text)),
		},
	}, nil
}

func splitField(s string) []string {
	if s == "" {
		return nil
	}
	return strings.Split(s, "\x1f")
}

// companyName identifies the organization in a policy prefix using the
// patterns real policies follow.
func companyName(prefix string) string {
	lines := strings.Split(prefix, "\n")
	// Pattern: "<Name> Privacy Policy" heading (the line ends there).
	for _, line := range lines {
		line = strings.TrimSpace(strings.TrimLeft(strings.TrimSpace(line), "# "))
		if i := strings.Index(line, " Privacy Policy"); i > 0 {
			if rest := strings.TrimSpace(line[i+len(" Privacy Policy"):]); rest != "" {
				continue
			}
			cand := strings.TrimSpace(line[:i])
			if isNameLike(cand) && !nlp.IsStopword(cand) {
				return cand
			}
		}
	}
	// Pattern: `<Name> ("we", "us" ...)`.
	if i := strings.Index(prefix, ` ("we"`); i > 0 {
		start := strings.LastIndexAny(prefix[:i], ".\n")
		cand := lastCapitalizedPhrase(prefix[start+1 : i])
		if cand != "" {
			return cand
		}
	}
	// Pattern: "Welcome to <Name>" / "how <Name> collects".
	for _, marker := range []string{"Welcome to ", "welcome to ", "how "} {
		if i := strings.Index(prefix, marker); i >= 0 {
			rest := prefix[i+len(marker):]
			cand := firstCapitalizedPhrase(rest)
			if cand != "" {
				return cand
			}
		}
	}
	// Fallback: the most frequent capitalized mid-sentence word.
	counts := map[string]int{}
	toks := nlp.Tokenize(prefix)
	for i, t := range toks {
		if t.Kind != nlp.Word || t.Text[0] < 'A' || t.Text[0] > 'Z' {
			continue
		}
		if nlp.IsStopword(t.Text) {
			continue
		}
		if i > 0 && toks[i-1].Kind == nlp.Punct && toks[i-1].Text == "." {
			continue // sentence-initial
		}
		counts[t.Text]++
	}
	best, bestN := "", 0
	for w, n := range counts {
		if n > bestN || (n == bestN && w < best) {
			best, bestN = w, n
		}
	}
	return best
}

func isNameLike(s string) bool {
	if s == "" || len(s) > 40 {
		return false
	}
	words := strings.Fields(s)
	if len(words) > 3 {
		return false
	}
	for _, w := range words {
		if w[0] < 'A' || w[0] > 'Z' {
			return false
		}
	}
	return true
}

func firstCapitalizedPhrase(s string) string {
	toks := nlp.Tokenize(s)
	for _, t := range toks {
		if t.Kind == nlp.Word && t.Text[0] >= 'A' && t.Text[0] <= 'Z' && !nlp.IsStopword(t.Text) {
			return t.Text
		}
		if t.Kind == nlp.Punct && t.Text == "." {
			break
		}
	}
	return ""
}

func lastCapitalizedPhrase(s string) string {
	toks := nlp.Tokenize(s)
	for i := len(toks) - 1; i >= 0; i-- {
		t := toks[i]
		if t.Kind == nlp.Word && t.Text[0] >= 'A' && t.Text[0] <= 'Z' && !nlp.IsStopword(t.Text) {
			return t.Text
		}
	}
	return ""
}

// semanticEquiv answers TaskSemanticEquiv: canonical equality, a synonym
// table for privacy vocabulary, or strong word overlap.
func semanticEquiv(a, b string) bool {
	ca, cb := nlp.CanonicalTerm(a), nlp.CanonicalTerm(b)
	if ca == cb {
		return true
	}
	if synonymPair(ca, cb) {
		return true
	}
	return nlp.JaccardWords(ca, cb) >= 0.5
}

// synonymGroups lists privacy-domain term groups treated as equivalent.
var synonymGroups = [][]string{
	{"email", "email address", "e-mail", "e-mail address"},
	{"phone number", "telephone number", "mobile number"},
	{"location data", "location information", "gps location", "geolocation", "precise location"},
	{"ip address", "internet protocol address"},
	{"third party", "external party", "outside party"},
	{"service provider", "vendor", "processor"},
	{"advertising partner", "advertiser", "ad partner"},
	{"personal information", "personal data"},
	{"usage data", "usage information", "activity data"},
	{"device identifier", "device id"},
	{"law enforcement", "law enforcement agency", "police"},
	{"photo", "photograph", "picture", "image"},
}

func synonymPair(a, b string) bool {
	for _, g := range synonymGroups {
		ina, inb := false, false
		for _, t := range g {
			if t == a {
				ina = true
			}
			if t == b {
				inb = true
			}
		}
		if ina && inb {
			return true
		}
	}
	return false
}
