package llm

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
)

// TranscriptEntry is one recorded request/response pair.
type TranscriptEntry struct {
	// Key is the content hash of the request (task + prompt).
	Key string `json:"key"`
	// Task aids human inspection of transcripts.
	Task Task `json:"task"`
	// Prompt is stored for auditability.
	Prompt string `json:"prompt"`
	// Response is the completion text.
	Response string `json:"response"`
	// PromptTokens and CompletionTokens mirror the recorded usage.
	PromptTokens     int `json:"prompt_tokens"`
	CompletionTokens int `json:"completion_tokens"`
}

// RecordingClient captures every completion flowing through it so a
// session against a live model can be replayed offline later — the
// standard pattern for testing LLM pipelines hermetically.
type RecordingClient struct {
	// Inner is the wrapped client.
	Inner Client

	mu      sync.Mutex
	entries map[string]TranscriptEntry
}

// NewRecordingClient wraps inner.
func NewRecordingClient(inner Client) *RecordingClient {
	return &RecordingClient{Inner: inner, entries: map[string]TranscriptEntry{}}
}

// Complete implements Client, recording the exchange.
func (c *RecordingClient) Complete(ctx context.Context, req Request) (Response, error) {
	resp, err := c.Inner.Complete(ctx, req)
	if err != nil {
		return Response{}, err
	}
	key := cacheKey(req)
	c.mu.Lock()
	c.entries[key] = TranscriptEntry{
		Key: key, Task: req.Task, Prompt: req.Prompt, Response: resp.Text,
		PromptTokens: resp.Usage.PromptTokens, CompletionTokens: resp.Usage.CompletionTokens,
	}
	c.mu.Unlock()
	return resp, nil
}

// Transcript returns the recorded entries sorted by key.
func (c *RecordingClient) Transcript() []TranscriptEntry {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]TranscriptEntry, 0, len(c.entries))
	for _, e := range c.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// Save writes the transcript as JSON to path.
func (c *RecordingClient) Save(path string) error {
	data, err := json.MarshalIndent(c.Transcript(), "", "  ")
	if err != nil {
		return fmt.Errorf("llm: marshal transcript: %w", err)
	}
	return os.WriteFile(path, data, 0o644)
}

// ReplayClient serves completions from a recorded transcript; requests not
// in the transcript fail, keeping replays hermetic.
type ReplayClient struct {
	entries map[string]TranscriptEntry
}

// NewReplayClient builds a replay client from entries.
func NewReplayClient(entries []TranscriptEntry) *ReplayClient {
	m := make(map[string]TranscriptEntry, len(entries))
	for _, e := range entries {
		m[e.Key] = e
	}
	return &ReplayClient{entries: m}
}

// LoadReplayClient reads a transcript JSON file saved by RecordingClient.
func LoadReplayClient(path string) (*ReplayClient, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("llm: read transcript: %w", err)
	}
	var entries []TranscriptEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("llm: decode transcript: %w", err)
	}
	return NewReplayClient(entries), nil
}

// Complete implements Client from the transcript only.
func (c *ReplayClient) Complete(ctx context.Context, req Request) (Response, error) {
	if err := ctx.Err(); err != nil {
		return Response{}, err
	}
	if err := validateRequest(req); err != nil {
		return Response{}, err
	}
	e, ok := c.entries[cacheKey(req)]
	if !ok {
		return Response{}, fmt.Errorf("llm: request not in transcript (task %s): replay is hermetic", req.Task)
	}
	return Response{
		Text:  e.Response,
		Usage: Usage{PromptTokens: e.PromptTokens, CompletionTokens: e.CompletionTokens},
	}, nil
}

// Len returns the number of transcript entries available.
func (c *ReplayClient) Len() int { return len(c.entries) }
