package llm

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"
)

func complete(t *testing.T, req Request) string {
	t.Helper()
	resp, err := NewSim().Complete(context.Background(), req)
	if err != nil {
		t.Fatalf("Complete(%s): %v", req.Task, err)
	}
	return resp.Text
}

func extractVia(t *testing.T, company, segment string) []ParamSet {
	t.Helper()
	text := complete(t, ExtractParamsPrompt(company, segment))
	var out []ParamSet
	if err := json.Unmarshal([]byte(text), &out); err != nil {
		t.Fatalf("unmarshal %q: %v", text, err)
	}
	return out
}

func TestCompanyNameHeading(t *testing.T) {
	prefix := "TikTak Privacy Policy\nLast updated: January 2026\nThis policy explains our practices."
	text := complete(t, CompanyNamePrompt(prefix))
	var got map[string]string
	if err := json.Unmarshal([]byte(text), &got); err != nil {
		t.Fatal(err)
	}
	if got["company"] != "TikTak" {
		t.Errorf("company = %q", got["company"])
	}
}

func TestCompanyNameWeParenthetical(t *testing.T) {
	prefix := `This Privacy Policy describes how MetaBook ("we", "us", or "our") processes your information.`
	text := complete(t, CompanyNamePrompt(prefix))
	var got map[string]string
	json.Unmarshal([]byte(text), &got)
	if got["company"] != "MetaBook" {
		t.Errorf("company = %q", got["company"])
	}
}

func TestExtractSimpleShare(t *testing.T) {
	ps := extractVia(t, "TikTak", "TikTak shares your email addresses with advertising partners.")
	if len(ps) != 1 {
		t.Fatalf("got %d sets: %+v", len(ps), ps)
	}
	p := ps[0]
	if p.Sender != "TikTak" || p.Action != "share" || p.DataType != "email address" ||
		p.Receiver != "advertising partner" || p.Permission != "allow" {
		t.Errorf("bad extraction: %+v", p)
	}
}

func TestExtractNegation(t *testing.T) {
	ps := extractVia(t, "TikTak", "TikTak does not sell your personal information.")
	if len(ps) != 1 {
		t.Fatalf("got %d sets: %+v", len(ps), ps)
	}
	if ps[0].Permission != "deny" || ps[0].Action != "sell" || ps[0].Receiver != "third party" {
		t.Errorf("bad negation extraction: %+v", ps[0])
	}
}

func TestExtractEnumeration(t *testing.T) {
	ps := extractVia(t, "TikTak", "You may provide account and profile information, such as name, age, username, password, language, email, phone number, social media account information, and profile image.")
	// Head phrase + 9 items = 10 edges, matching Table 2 row 2.
	if len(ps) != 10 {
		t.Fatalf("got %d sets, want 10: %+v", len(ps), ps)
	}
	var types []string
	for _, p := range ps {
		if p.Sender != "user" || p.Action != "provide" {
			t.Errorf("bad set: %+v", p)
		}
		types = append(types, p.DataType)
	}
	for _, want := range []string{"account and profile information", "name", "age", "username", "password", "language", "email", "phone number", "social media account information", "profile image"} {
		found := false
		for _, g := range types {
			if g == want {
				found = true
			}
		}
		if !found {
			t.Errorf("missing data type %q in %v", want, types)
		}
	}
}

func TestExtractConditionalWithCausalEdges(t *testing.T) {
	ps := extractVia(t, "TikTak", "If you choose to find other users through your phone contacts, TikTak will access and collect names, phone numbers, and email addresses of contacts.")
	// Expect: the user-choice edge plus access+collect over three data
	// types = 1 + 6 = 7 param sets (paper's Table 2 row 3 pattern).
	if len(ps) < 6 {
		t.Fatalf("got %d sets: %+v", len(ps), ps)
	}
	haveChoose, haveAccess, haveCollect := false, false, false
	for _, p := range ps {
		switch {
		case p.Action == "choose to find":
			haveChoose = true
		case p.Action == "access":
			haveAccess = true
			if p.Receiver != "TikTak" {
				t.Errorf("access receiver = %q", p.Receiver)
			}
		case p.Action == "collect":
			haveCollect = true
			if p.Condition == "" {
				t.Errorf("collect edge lost its condition: %+v", p)
			}
			if p.Subject != "contact" {
				t.Errorf("data subject should be contact: %+v", p)
			}
		}
	}
	if !haveChoose || !haveAccess || !haveCollect {
		t.Errorf("missing actions: choose=%v access=%v collect=%v in %+v", haveChoose, haveAccess, haveCollect, ps)
	}
}

func TestExtractVaguePurposeCondition(t *testing.T) {
	ps := extractVia(t, "MetaBook", "MetaBook shares usage data with service providers for legitimate business purposes.")
	if len(ps) != 1 {
		t.Fatalf("got %d: %+v", len(ps), ps)
	}
	if ps[0].Condition != "legitimate business purposes" {
		t.Errorf("vague condition not preserved verbatim: %q", ps[0].Condition)
	}
	if ps[0].Receiver != "service provider" {
		t.Errorf("receiver = %q", ps[0].Receiver)
	}
	if v := detectVagueTerms(ps[0].Condition); len(v) == 0 {
		t.Error("vague term not detected")
	}
}

func TestExtractCoordinatedUserActions(t *testing.T) {
	ps := extractVia(t, "MetaBook", "You view content, interact with ads, and engage with commercial content.")
	actions := map[string]bool{}
	for _, p := range ps {
		actions[p.Action] = true
		if p.Sender != "user" {
			t.Errorf("user action sender = %q", p.Sender)
		}
	}
	for _, want := range []string{"view", "interact with", "engage with"} {
		if !actions[want] {
			t.Errorf("missing action %q: %+v", want, ps)
		}
	}
}

func TestExtractNonPracticeReturnsEmpty(t *testing.T) {
	ps := extractVia(t, "TikTak", "This policy was last updated in January.")
	if len(ps) != 0 {
		t.Errorf("non-practice text extracted: %+v", ps)
	}
}

func TestExtractSelfDirection(t *testing.T) {
	ps := extractVia(t, "MetaBook", "MetaBook processes financial information.")
	if len(ps) != 1 || ps[0].Sender != "MetaBook" || ps[0].Receiver != "MetaBook" {
		t.Errorf("self-directed action: %+v", ps)
	}
}

func TestTaxonomyRootAndLayer(t *testing.T) {
	text := complete(t, TaxonomyRootPrompt("data", []string{"email", "cookie"}))
	var root map[string]string
	json.Unmarshal([]byte(text), &root)
	if root["root"] != "data" {
		t.Errorf("root = %q", root["root"])
	}

	// Layer 1 from root proposes categories.
	text = complete(t, TaxonomyLayerPrompt("data", []string{"data"}, []string{"email", "gps location", "cookie"}))
	var layer struct {
		Children map[string][]string `json:"children"`
	}
	if err := json.Unmarshal([]byte(text), &layer); err != nil {
		t.Fatal(err)
	}
	cats := layer.Children["data"]
	if len(cats) < 2 {
		t.Fatalf("root children = %v", cats)
	}
	// Layer 2 assigns terms under categories.
	text = complete(t, TaxonomyLayerPrompt("data", cats, []string{"email", "gps location", "cookie"}))
	var layer2 struct {
		Children map[string][]string `json:"children"`
	}
	if err := json.Unmarshal([]byte(text), &layer2); err != nil {
		t.Fatal(err)
	}
	assigned := 0
	for _, kids := range layer2.Children {
		assigned += len(kids)
	}
	if assigned != 3 {
		t.Errorf("layer 2 assigned %d of 3 terms: %v", assigned, layer.Children)
	}
}

func TestTaxonomySpecialization(t *testing.T) {
	text := complete(t, TaxonomyLayerPrompt("data", []string{"phone number"}, []string{"phone number of contacts"}))
	var layer struct {
		Children map[string][]string `json:"children"`
	}
	json.Unmarshal([]byte(text), &layer)
	kids := layer.Children["phone number"]
	if len(kids) != 1 || kids[0] != "phone number of contacts" {
		t.Errorf("specialization children = %v", layer.Children)
	}
}

func TestSemanticEquiv(t *testing.T) {
	cases := []struct {
		a, b string
		want bool
	}{
		{"email address", "email addresses", true},
		{"email", "email address", true},
		{"location data", "gps location", true},
		{"location data", "location information", true},
		{"email address", "credit card", false},
		{"cookie", "advertising partner", false},
	}
	for _, c := range cases {
		text := complete(t, SemanticEquivPrompt(c.a, c.b))
		var got map[string]bool
		json.Unmarshal([]byte(text), &got)
		if got["equivalent"] != c.want {
			t.Errorf("equiv(%q,%q) = %v, want %v", c.a, c.b, got["equivalent"], c.want)
		}
	}
}

func TestSimRejectsBadRequests(t *testing.T) {
	sim := NewSim()
	if _, err := sim.Complete(context.Background(), Request{}); err == nil {
		t.Error("empty request should fail")
	}
	if _, err := sim.Complete(context.Background(), Request{Task: "nope", Prompt: "x"}); err == nil {
		t.Error("unknown task should fail")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sim.Complete(ctx, CompanyNamePrompt("x")); err == nil {
		t.Error("cancelled context should fail")
	}
}

func TestUsageReported(t *testing.T) {
	resp, err := NewSim().Complete(context.Background(), ExtractParamsPrompt("A", "A shares your email with partners."))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Usage.PromptTokens == 0 || resp.Usage.CompletionTokens == 0 {
		t.Errorf("usage = %+v", resp.Usage)
	}
}

func TestCachingClient(t *testing.T) {
	c := NewCachingClient(NewSim())
	req := ExtractParamsPrompt("A", "A collects cookies.")
	r1, err := c.Complete(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Complete(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Text != r2.Text {
		t.Error("cache returned different text")
	}
	if c.Hits() != 1 {
		t.Errorf("hits = %d", c.Hits())
	}
	if c.HitRate() != 0.5 {
		t.Errorf("hit rate = %v", c.HitRate())
	}
}

type errClient struct {
	errs []error
	i    int
}

func (e *errClient) Complete(ctx context.Context, req Request) (Response, error) {
	defer func() { e.i++ }()
	if e.i < len(e.errs) && e.errs[e.i] != nil {
		return Response{}, e.errs[e.i]
	}
	return Response{Text: "ok"}, nil
}

func TestRetryClientRecovers(t *testing.T) {
	inner := &errClient{errs: []error{ErrOverloaded, ErrOverloaded, nil}}
	c := &RetryClient{Inner: inner, MaxAttempts: 3, Sleep: func(ctx context.Context, d time.Duration) error { return nil }}
	resp, err := c.Complete(context.Background(), Request{Task: TaskCompanyName, Prompt: "x"})
	if err != nil || resp.Text != "ok" {
		t.Fatalf("retry failed: %v %q", err, resp.Text)
	}
}

func TestRetryClientGivesUp(t *testing.T) {
	inner := &errClient{errs: []error{ErrOverloaded, ErrOverloaded, ErrOverloaded}}
	c := &RetryClient{Inner: inner, MaxAttempts: 3, Sleep: func(ctx context.Context, d time.Duration) error { return nil }}
	if _, err := c.Complete(context.Background(), Request{Task: TaskCompanyName, Prompt: "x"}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v", err)
	}
}

func TestRetryClientNonTransient(t *testing.T) {
	sentinel := errors.New("permanent")
	inner := &errClient{errs: []error{sentinel}}
	c := &RetryClient{Inner: inner, Sleep: func(ctx context.Context, d time.Duration) error { return nil }}
	if _, err := c.Complete(context.Background(), Request{Task: TaskCompanyName, Prompt: "x"}); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if inner.i != 1 {
		t.Errorf("non-transient error retried %d times", inner.i)
	}
}

func TestRateLimitedClient(t *testing.T) {
	now := time.Unix(0, 0)
	c := &RateLimitedClient{
		Inner: NewSim(), PerSecond: 1, Burst: 2,
		Now: func() time.Time { return now },
	}
	req := CompanyNamePrompt("Acme Privacy Policy")
	for i := 0; i < 2; i++ {
		if _, err := c.Complete(context.Background(), req); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	if _, err := c.Complete(context.Background(), req); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("third call should be limited, got %v", err)
	}
	now = now.Add(time.Second)
	if _, err := c.Complete(context.Background(), req); err != nil {
		t.Fatalf("after refill: %v", err)
	}
}

func TestFlakyClient(t *testing.T) {
	c := &FlakyClient{Inner: NewSim(), EveryN: 2}
	req := CompanyNamePrompt("Acme Privacy Policy")
	if _, err := c.Complete(context.Background(), req); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Complete(context.Background(), req); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("second call should fail, got %v", err)
	}
	// Full stack: flaky inside retry recovers.
	stack := &RetryClient{Inner: &FlakyClient{Inner: NewSim(), EveryN: 2}, Sleep: func(ctx context.Context, d time.Duration) error { return nil }}
	for i := 0; i < 6; i++ {
		if _, err := stack.Complete(context.Background(), req); err != nil {
			t.Fatalf("stacked call %d: %v", i, err)
		}
	}
}

func TestExtractDeterministic(t *testing.T) {
	seg := "If you consent, MetaBook collects your precise location for advertising purposes."
	a := extractVia(t, "MetaBook", seg)
	b := extractVia(t, "MetaBook", seg)
	if len(a) != len(b) {
		t.Fatal("nondeterministic extraction")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}
