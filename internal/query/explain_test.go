package query

import (
	"context"
	"strings"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/llm"
)

func TestExplainValidMinimizesEvidence(t *testing.T) {
	eng := newEngine(t)
	p := llm.ParamSet{Sender: "TikTak", Action: "share", DataType: "email address", Receiver: "advertising partner"}
	exp, err := eng.ExplainValid(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if exp.Verdict != Valid {
		t.Fatalf("verdict = %s", exp.Verdict)
	}
	// Minimal evidence: exactly the one share edge suffices.
	if len(exp.Evidence) != 1 {
		t.Fatalf("evidence = %v, want exactly one edge", exp.Evidence)
	}
	if !strings.Contains(exp.Evidence[0], "share") || !strings.Contains(exp.Evidence[0], "email address") {
		t.Errorf("evidence = %v", exp.Evidence)
	}
	if exp.SolverCalls < 2 {
		t.Errorf("solver calls = %d", exp.SolverCalls)
	}
	// The minimized set must still entail the query: re-verify by asking
	// with the full engine (sanity cross-check).
	res, err := eng.AskParams(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Valid {
		t.Error("query no longer valid?!")
	}
}

func TestExplainValidRejectsInvalidQueries(t *testing.T) {
	eng := newEngine(t)
	p := llm.ParamSet{Sender: "TikTak", Action: "sell", DataType: "personal information", Receiver: "third party"}
	if _, err := eng.ExplainValid(context.Background(), p); err == nil {
		t.Error("explaining an invalid verdict should fail")
	}
}

func TestExplainValidSubsumptionEvidence(t *testing.T) {
	eng := newEngine(t)
	if !eng.KG.DataH.Subsumes("contact information", "email address") {
		t.Skip("hierarchy does not place email address under contact information")
	}
	// The general-category query is witnessed via subsumption; the
	// evidence must include the specific email edge.
	p := llm.ParamSet{Sender: "TikTak", Action: "share", DataType: "contact information", Receiver: "advertising partner"}
	exp, err := eng.ExplainValid(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ev := range exp.Evidence {
		if strings.Contains(ev, "email address") {
			found = true
		}
	}
	if !found {
		t.Errorf("subsumption witness missing from evidence: %v", exp.Evidence)
	}
}

// Cross-check: every VALID verdict over the standard query set admits a
// minimal explanation, and the explanation's evidence is nonempty.
func TestValidAlwaysExplainable(t *testing.T) {
	eng := newEngine(t)
	for _, p := range []llm.ParamSet{
		{Sender: "TikTak", Action: "share", DataType: "email address", Receiver: "advertising partner"},
		{Sender: "user", Receiver: "TikTak", Action: "collect", DataType: "device information"},
	} {
		res, err := eng.AskParams(context.Background(), p)
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != Valid || len(res.ConditionalOn) > 0 {
			continue // only unconditionally valid verdicts must explain
		}
		exp, err := eng.ExplainValid(context.Background(), p)
		if err != nil {
			t.Fatalf("valid verdict unexplainable for %+v: %v", p, err)
		}
		if len(exp.Evidence) == 0 {
			t.Fatalf("empty evidence for %+v", p)
		}
	}
}
