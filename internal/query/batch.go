package query

import (
	"context"
	"runtime"
	"sync"
)

// BatchItem is the outcome of one query in an AskBatch call: either a
// Result or the error that query failed with. Queries are independent, so
// one failure does not abort its siblings.
type BatchItem struct {
	// Query is the natural-language question as submitted.
	Query string `json:"query"`
	// Result is the verification outcome; nil when Err is set.
	Result *Result `json:"result,omitempty"`
	// Err is the per-query failure; nil on success.
	Err error `json:"-"`
}

// AskBatch verifies many natural-language queries concurrently over a
// bounded worker pool (Engine.Workers wide), sharing the engine's SMT
// result cache so overlapping queries solve once. Items are returned in
// input order regardless of scheduling. Per-query failures are reported on
// the corresponding item; the batch itself only errors when ctx is
// cancelled, in which case it returns promptly with ctx.Err().
func (e *Engine) AskBatch(ctx context.Context, queries []string) ([]BatchItem, error) {
	items := make([]BatchItem, len(queries))
	if len(queries) == 0 {
		return items, nil
	}
	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				items[i].Query = queries[i]
				if err := ctx.Err(); err != nil {
					items[i].Err = err
					continue
				}
				res, err := e.Ask(ctx, queries[i])
				items[i].Result, items[i].Err = res, err
			}
		}()
	}
	// Workers drain the channel even after cancellation (marking skipped
	// queries with the context error), so dispatch never blocks.
	for i := range queries {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return items, err
	}
	return items, nil
}
