package query

import (
	"context"
	"sort"
	"sync"

	"github.com/privacy-quagmire/quagmire/internal/fol"
	"github.com/privacy-quagmire/quagmire/internal/smt"
)

// sharedState holds the engine's long-lived incremental solve core (see
// Engine.SharedCore). The mutex serializes AskBatch workers: the smt
// incremental solver is single-threaded, and serializing here is the
// point — the batch shares one interned encoding instead of rebuilding it
// per query.
type sharedState struct {
	mu          sync.Mutex
	inc         *smt.Incremental
	baseTerms   map[string]bool // data terms covered by the base subtype facts
	policyUnsat *bool           // memoized base-alone contradiction check
}

// ensureSharedCoreLocked builds the whole-policy ground core on first use,
// or restores it from a persisted CoreImage when one was attached (codec
// v2 payloads): the interned arena and base clauses load positionally
// instead of being re-derived from the knowledge graph. baseTerms are
// recomputed from the edges either way — they are a cheap index, not part
// of the solver state. A restore failure (corrupted or version-skewed
// image) falls back to the full build. Callers hold e.shared.mu.
func (e *Engine) ensureSharedCoreLocked() {
	if e.shared.inc != nil {
		return
	}
	edges := e.KG.ED.Edges()
	termList := dataTermList(edges, "")
	e.shared.baseTerms = make(map[string]bool, len(termList))
	for _, t := range termList {
		e.shared.baseTerms[t] = true
	}
	if e.PreloadCore != nil {
		if inc, err := smt.NewIncrementalFromImage(e.Limits, smt.FullGrounding, e.PreloadCore); err == nil {
			e.shared.inc = inc
			e.Obs.Counter("quagmire_ground_core_restores_total").Inc()
			return
		}
		e.Obs.Counter("quagmire_ground_core_restore_failures_total").Inc()
	}
	placeholderSet := map[string]bool{}
	facts := e.practiceFacts(edges, placeholderSet)
	facts = append(facts, e.subtypeFacts(termList)...)
	facts = append(facts, subtypeAxioms()...)
	inc := smt.NewIncremental(e.Limits, smt.FullGrounding)
	// A clausification error poisons the core; every Solve then reports
	// Unknown with the reason, mirroring the one-shot solver.
	_ = inc.AssertBase(facts...)
	e.shared.inc = inc
	e.Obs.Counter("quagmire_ground_core_builds_total").Inc()
}

// ExportCoreImage returns the persisted form of the shared solver core,
// building it first if no query has warmed it yet. Nil when the engine
// runs per-query subgraph solving (no SharedCore) — there is no long-lived
// core to export.
func (e *Engine) ExportCoreImage() *smt.CoreImage {
	if !e.SharedCore {
		return nil
	}
	e.shared.mu.Lock()
	defer e.shared.mu.Unlock()
	e.ensureSharedCoreLocked()
	return e.shared.inc.Image()
}

// Warm eagerly builds the shared ground core so the engine's first query
// pays no construction cost. A no-op without SharedCore — the default
// per-query subgraph path has no long-lived state to prepare. Safe to
// race with queries: the core mutex guarantees exactly one build per
// engine whether Warm or the first Ask gets there first.
func (e *Engine) Warm() {
	if !e.SharedCore {
		return
	}
	e.shared.mu.Lock()
	e.ensureSharedCoreLocked()
	e.shared.mu.Unlock()
}

// sharedGoal builds the per-query scoped formula: subtype facts linking
// the query's data term into the base hierarchy (when it is not already an
// edge target) plus the negated goal.
func (e *Engine) sharedGoal(actor, action, data, other string) *fol.Formula {
	var parts []*fol.Formula
	if data != "" && !e.shared.baseTerms[data] && !e.NoHierarchy {
		baseList := make([]string, 0, len(e.shared.baseTerms))
		for t := range e.shared.baseTerms {
			baseList = append(baseList, t)
		}
		sort.Strings(baseList)
		for _, t := range baseList {
			if t == data {
				continue
			}
			if e.KG.DataH.Subsumes(t, data) {
				parts = append(parts, fol.Pred("subtype", fol.Const(sym(data)), fol.Const(sym(t))))
			}
			if e.KG.DataH.Subsumes(data, t) {
				parts = append(parts, fol.Pred("subtype", fol.Const(sym(t)), fol.Const(sym(data))))
			}
		}
	}
	parts = append(parts, fol.Not(queryGoal(actor, action, data, other)))
	if len(parts) == 1 {
		return parts[0]
	}
	return fol.And(parts...)
}

// observeSharedLocked exports the core's reuse counters. Callers hold
// e.shared.mu.
func (e *Engine) observeSharedLocked() {
	e.Obs.Counter("quagmire_incremental_solves_total").Inc()
	if e.Obs == nil {
		return
	}
	m := e.shared.inc.Metrics()
	e.Obs.Gauge("quagmire_arena_interned_terms").Set(float64(m.InternedTerms))
	e.Obs.Gauge("quagmire_arena_interned_atoms").Set(float64(m.InternedAtoms))
	e.Obs.Gauge("quagmire_core_reused_clauses").Set(float64(m.ReusedClauses))
	e.Obs.Gauge("quagmire_core_ground_clauses").Set(float64(m.GroundClauses))
	e.Obs.Gauge("quagmire_core_learned_retained").Set(float64(m.LearnedRetained))
}

// sharedSolve answers one query (optionally under assumed placeholder
// conditions) on the engine's shared incremental core.
func (e *Engine) sharedSolve(ctx context.Context, actor, action, data, other string, conds []string) (smt.Result, error) {
	e.shared.mu.Lock()
	defer e.shared.mu.Unlock()
	e.ensureSharedCoreLocked()
	goal := e.sharedGoal(actor, action, data, other)
	condFs := make([]*fol.Formula, len(conds))
	for i, p := range conds {
		condFs[i] = fol.UninterpretedPred(p)
	}
	res := e.shared.inc.Solve(ctx, goal, condFs...)
	e.observeSharedLocked()
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// sharedPolicyAloneUnsat checks (once per engine) whether the base policy
// encoding is contradictory on its own.
func (e *Engine) sharedPolicyAloneUnsat(ctx context.Context) bool {
	e.shared.mu.Lock()
	defer e.shared.mu.Unlock()
	e.ensureSharedCoreLocked()
	if e.shared.policyUnsat == nil {
		r := e.shared.inc.Solve(ctx, nil)
		e.observeSharedLocked()
		if ctx.Err() != nil {
			return false // don't memoize a canceled check
		}
		v := r.Status == smt.Unsat
		e.shared.policyUnsat = &v
	}
	return *e.shared.policyUnsat
}
