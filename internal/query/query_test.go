package query

import (
	"context"
	"strings"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/embed"
	"github.com/privacy-quagmire/quagmire/internal/extract"
	"github.com/privacy-quagmire/quagmire/internal/kg"
	"github.com/privacy-quagmire/quagmire/internal/llm"
	"github.com/privacy-quagmire/quagmire/internal/taxonomy"
)

const policy = `# TikTak Privacy Policy

## Information We Collect

When you create an account, you may provide your email. We collect device information automatically.

We share email addresses with advertising partners.

We share usage data with service providers for legitimate business purposes.

## Your Choices

We do not sell your personal information.`

func newEngine(t *testing.T) *Engine {
	t.Helper()
	sim := llm.NewSim()
	e := extract.New(sim)
	ex, err := e.ExtractPolicy(context.Background(), policy)
	if err != nil {
		t.Fatal(err)
	}
	b := kg.NewBuilder(&taxonomy.Builder{Client: sim})
	k, err := b.Build(context.Background(), ex)
	if err != nil {
		t.Fatal(err)
	}
	return NewEngine(k, sim, embed.NewModel("text-embedding-sim"))
}

func TestAskValidShare(t *testing.T) {
	eng := newEngine(t)
	res, err := eng.Ask(context.Background(), "Does TikTak share my email address with advertising partners?")
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Valid {
		t.Fatalf("verdict = %s (smt %s, reason %q)\nformula: %s\nedges: %v",
			res.Verdict, res.SMT.Status, res.SMT.Reason, res.Formula, res.MatchedEdges)
	}
	if len(res.MatchedEdges) == 0 {
		t.Error("no matched edges recorded")
	}
	if !strings.Contains(res.Script, "check-sat") {
		t.Error("script missing check-sat")
	}
}

func TestAskVocabularyTranslation(t *testing.T) {
	eng := newEngine(t)
	// "email address" must translate to the policy's "email address" node
	// even though the query says "e-mail addresses".
	res, err := eng.Ask(context.Background(), "Does TikTak share my e-mail addresses with advertising partners?")
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Valid {
		t.Fatalf("verdict = %s; translations = %v", res.Verdict, res.Translations)
	}
	found := false
	for q, p := range res.Translations {
		if strings.Contains(q, "mail") && strings.Contains(p, "email") {
			found = true
		}
	}
	if !found {
		t.Errorf("no email translation recorded: %v", res.Translations)
	}
}

func TestAskInvalidUnrelated(t *testing.T) {
	eng := newEngine(t)
	res, err := eng.Ask(context.Background(), "Does TikTak share my medical records with insurance companies?")
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Invalid {
		t.Fatalf("verdict = %s (smt %s %q)", res.Verdict, res.SMT.Status, res.SMT.Reason)
	}
}

func TestAskConditionalValidity(t *testing.T) {
	eng := newEngine(t)
	// Usage-data sharing is guarded by the vague "legitimate business
	// purposes" condition: not unconditionally valid, but valid assuming
	// the condition holds — and the placeholder is surfaced.
	res, err := eng.Ask(context.Background(), "Does TikTak share my usage data with service providers?")
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Valid || len(res.ConditionalOn) == 0 {
		t.Fatalf("verdict = %s, conditionalOn = %v (placeholders %v)", res.Verdict, res.ConditionalOn, res.Placeholders)
	}
	if len(res.Placeholders) == 0 {
		t.Error("vague condition not surfaced as placeholder")
	}
}

func TestAskSubsumptionInference(t *testing.T) {
	eng := newEngine(t)
	// "contact information" subsumes "email address" in the hierarchy; a
	// query about the general category is witnessed by the specific edge.
	if !eng.KG.DataH.Subsumes("contact information", "email address") {
		t.Skip("hierarchy does not place email address under contact information")
	}
	res, err := eng.AskParams(context.Background(), llm.ParamSet{
		Sender: "TikTak", Action: "share", DataType: "contact information",
		Receiver: "advertising partner",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Valid {
		t.Fatalf("subsumption query verdict = %s\nformula: %s", res.Verdict, res.Formula)
	}
}

func TestAskDeniedPractice(t *testing.T) {
	eng := newEngine(t)
	res, err := eng.Ask(context.Background(), "Does TikTak sell my personal information?")
	if err != nil {
		t.Fatal(err)
	}
	// The policy denies the practice: the query must not follow.
	if res.Verdict != Invalid {
		t.Fatalf("verdict = %s\nformula: %s", res.Verdict, res.Formula)
	}
}

func TestWholePolicyBlowup(t *testing.T) {
	eng := newEngine(t)
	eng.WholePolicy = true
	eng.SimplifyFOL = false
	res, err := eng.AskParams(context.Background(), llm.ParamSet{
		Sender: "TikTak", Action: "share", DataType: "email address",
	})
	if err != nil {
		t.Fatal(err)
	}
	sub := newEngine(t)
	subRes, err := sub.AskParams(context.Background(), llm.ParamSet{
		Sender: "TikTak", Action: "share", DataType: "email address",
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FormulaSize <= subRes.FormulaSize {
		t.Errorf("whole-policy formula (%d) not larger than subgraph formula (%d)",
			res.FormulaSize, subRes.FormulaSize)
	}
}

func TestResultScriptIsValidSMTLIB(t *testing.T) {
	eng := newEngine(t)
	res, err := eng.Ask(context.Background(), "Does TikTak share my email address with advertising partners?")
	if err != nil {
		t.Fatal(err)
	}
	// The script must parse and decode as standalone SMT-LIB.
	if !strings.Contains(res.Script, "(set-logic UF)") || !strings.Contains(res.Script, "(declare-sort U 0)") {
		t.Errorf("script missing standard header:\n%s", res.Script)
	}
}

func TestSymSanitization(t *testing.T) {
	cases := map[string]string{
		"email address":       "email_address",
		"user's data":         "user_s_data",
		"3rd party":           "t_3rd_party",
		"":                    "unknown",
		"Voice-Enabled Stuff": "voice_enabled_stuff",
	}
	for in, want := range cases {
		if got := sym(in); got != want {
			t.Errorf("sym(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestAskParamsDeterministic(t *testing.T) {
	eng := newEngine(t)
	p := llm.ParamSet{Sender: "TikTak", Action: "share", DataType: "email address", Receiver: "advertising partner"}
	r1, err := eng.AskParams(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := eng.AskParams(context.Background(), p)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Verdict != r2.Verdict || r1.Formula != r2.Formula || r1.Script != r2.Script {
		t.Error("nondeterministic query answering")
	}
}
