package query

import (
	"context"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/obs"
)

// sharedCoreQueries exercises valid, invalid, conditional and repeated
// questions — eight queries, the batch size the acceptance criterion pins.
var sharedCoreQueries = []string{
	"Does TikTak share my email address with advertising partners?",
	"Does TikTak share my usage data with service providers?",
	"Does TikTak share my medical records with insurance companies?",
	"Does TikTak sell my personal information?",
	"Does TikTak collect my device information?",
	"Does TikTak share my contact information with advertising partners?",
	"Does TikTak share my email address with service providers?",
	"Does TikTak share my email address with advertising partners?", // repeat
}

// TestSharedCoreBatchBuildsGroundCoreOnce is the acceptance criterion for
// the shared solver core: an AskBatch of 8 queries must cost at most one
// ground-core construction, observable through the obs counters.
func TestSharedCoreBatchBuildsGroundCoreOnce(t *testing.T) {
	eng := newEngine(t)
	eng.SharedCore = true
	eng.Obs = obs.NewRegistry()
	items, err := eng.AskBatch(context.Background(), sharedCoreQueries)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(sharedCoreQueries) {
		t.Fatalf("items = %d, want %d", len(items), len(sharedCoreQueries))
	}
	for _, it := range items {
		if it.Err != nil {
			t.Fatalf("query %q: %v", it.Query, it.Err)
		}
	}
	if builds := eng.Obs.Counter("quagmire_ground_core_builds_total").Value(); builds != 1 {
		t.Fatalf("ground core built %d times for an 8-query batch, want 1", builds)
	}
	if solves := eng.Obs.Counter("quagmire_incremental_solves_total").Value(); solves < uint64(len(sharedCoreQueries)) {
		t.Fatalf("incremental solves = %d, want >= %d", solves, len(sharedCoreQueries))
	}
	snap := eng.Obs.Snapshot()
	for _, g := range []string{"quagmire_arena_interned_terms", "quagmire_arena_interned_atoms", "quagmire_core_ground_clauses"} {
		if snap.Gauges[g] <= 0 {
			t.Errorf("gauge %s not exported (snapshot %v)", g, snap.Gauges)
		}
	}
}

// TestSharedCoreMatchesWholePolicy checks the documented semantics: a
// SharedCore engine answers exactly like a non-shared engine in WholePolicy
// mode (both fix the axiom set to the entire policy encoding).
func TestSharedCoreMatchesWholePolicy(t *testing.T) {
	shared := newEngine(t)
	shared.SharedCore = true
	shared.Obs = obs.NewRegistry()
	plain := newEngine(t)
	plain.WholePolicy = true

	ctx := context.Background()
	for _, q := range sharedCoreQueries {
		got, err := shared.Ask(ctx, q)
		if err != nil {
			t.Fatalf("shared %q: %v", q, err)
		}
		want, err := plain.Ask(ctx, q)
		if err != nil {
			t.Fatalf("plain %q: %v", q, err)
		}
		if got.Verdict != want.Verdict {
			t.Errorf("%q: shared=%s whole-policy=%s (shared smt %s %q; plain smt %s %q)",
				q, got.Verdict, want.Verdict, got.SMT.Status, got.SMT.Reason, want.SMT.Status, want.SMT.Reason)
		}
	}
}

// TestSharedCoreConcurrentBatch runs the shared-core batch with a worker
// pool; the mutex in sharedState must serialize core access without
// deadlock or divergent verdicts.
func TestSharedCoreConcurrentBatch(t *testing.T) {
	eng := newEngine(t)
	eng.SharedCore = true
	eng.Workers = 4
	eng.Obs = obs.NewRegistry()
	items, err := eng.AskBatch(context.Background(), sharedCoreQueries)
	if err != nil {
		t.Fatal(err)
	}
	sequential := newEngine(t)
	sequential.SharedCore = true
	sequential.Workers = 1
	sequential.Obs = obs.NewRegistry()
	seqItems, err := sequential.AskBatch(context.Background(), sharedCoreQueries)
	if err != nil {
		t.Fatal(err)
	}
	for i := range items {
		if items[i].Err != nil || seqItems[i].Err != nil {
			t.Fatalf("query %q: errs %v / %v", items[i].Query, items[i].Err, seqItems[i].Err)
		}
		if items[i].Result.Verdict != seqItems[i].Result.Verdict {
			t.Errorf("%q: concurrent=%s sequential=%s",
				items[i].Query, items[i].Result.Verdict, seqItems[i].Result.Verdict)
		}
	}
	if builds := eng.Obs.Counter("quagmire_ground_core_builds_total").Value(); builds != 1 {
		t.Fatalf("concurrent batch built the core %d times, want 1", builds)
	}
}
