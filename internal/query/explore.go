package query

import (
	"context"
	"fmt"
	"sort"

	"github.com/privacy-quagmire/quagmire/internal/fol"
	"github.com/privacy-quagmire/quagmire/internal/llm"
	"github.com/privacy-quagmire/quagmire/internal/nlp"
	"github.com/privacy-quagmire/quagmire/internal/smt"
)

// Scenario is one interpretation of the vague placeholder conditions and
// the verdict the query receives under it.
type Scenario struct {
	// Assumptions maps each placeholder condition to the truth value
	// assumed in this scenario.
	Assumptions map[string]bool `json:"assumptions"`
	// Verdict is the query outcome under the assumptions.
	Verdict Verdict `json:"verdict"`
}

// Exploration is the result of enumerating vague-condition
// interpretations for one query — the paper's proposed use of
// check-sat-assuming: "exploration of different query conditions without
// full re-solving".
type Exploration struct {
	// Placeholders are the vague conditions being explored, sorted.
	Placeholders []string `json:"placeholders"`
	// Scenarios holds one entry per interpretation (2^n for n
	// placeholders, capped by MaxExplorePlaceholders).
	Scenarios []Scenario `json:"scenarios"`
	// AlwaysValid and NeverValid summarize the exploration.
	AlwaysValid bool `json:"always_valid"`
	// NeverValid reports that no interpretation makes the query follow.
	NeverValid bool `json:"never_valid"`
}

// MaxExplorePlaceholders caps the exponential scenario enumeration.
const MaxExplorePlaceholders = 6

// Explore parses a natural-language query and runs ExploreConditions.
func (e *Engine) Explore(ctx context.Context, question string) (*Exploration, error) {
	p, err := e.parseQuery(ctx, question)
	if err != nil {
		return nil, err
	}
	return e.ExploreConditions(ctx, p)
}

// ExploreConditions answers the query under every interpretation of its
// vague placeholder conditions, reusing one incremental solver (assert the
// formula once, check-sat-assuming per scenario) instead of re-solving
// from scratch.
func (e *Engine) ExploreConditions(ctx context.Context, p llm.ParamSet) (*Exploration, error) {
	// Build the formula exactly as AskParams does.
	actorRole, otherRole := llm.FlowRoles(p)
	trans := map[string]string{}
	actor, err := e.translate(ctx, actorRole, trans)
	if err != nil {
		return nil, err
	}
	data, err := e.translate(ctx, p.DataType, trans)
	if err != nil {
		return nil, err
	}
	other := ""
	if otherRole != "" && otherRole != actorRole && otherRole != "user" {
		if other, err = e.translate(ctx, otherRole, trans); err != nil {
			return nil, err
		}
	}
	edges := e.relevantEdges(actor, nlp.VerbBase(p.Action), data, other)
	formula, placeholders := e.buildFormula(edges, actor, nlp.VerbBase(p.Action), data, other)
	if e.SimplifyFOL {
		formula = fol.Simplify(formula)
	}
	if len(placeholders) > MaxExplorePlaceholders {
		return nil, fmt.Errorf("query: %d placeholders exceed exploration cap %d", len(placeholders), MaxExplorePlaceholders)
	}
	sort.Strings(placeholders)

	solver := smt.NewSolver()
	solver.Limits = e.Limits
	solver.Assert(formula)

	exp := &Exploration{Placeholders: placeholders, AlwaysValid: true, NeverValid: true}
	n := 1 << len(placeholders)
	for mask := 0; mask < n; mask++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		assumptions := make([]*fol.Formula, len(placeholders))
		values := map[string]bool{}
		for i, ph := range placeholders {
			atom := fol.UninterpretedPred(ph)
			if mask&(1<<i) != 0 {
				assumptions[i] = atom
				values[ph] = true
			} else {
				assumptions[i] = fol.Not(atom)
				values[ph] = false
			}
		}
		res := solver.CheckSatAssuming(assumptions...)
		verdict := Unknown
		switch res.Status {
		case smt.Unsat:
			verdict = Valid
		case smt.Sat:
			verdict = Invalid
		}
		if verdict != Valid {
			exp.AlwaysValid = false
		}
		if verdict == Valid {
			exp.NeverValid = false
		}
		exp.Scenarios = append(exp.Scenarios, Scenario{Assumptions: values, Verdict: verdict})
	}
	return exp, nil
}
