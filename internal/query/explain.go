package query

import (
	"context"
	"fmt"

	"github.com/privacy-quagmire/quagmire/internal/fol"
	"github.com/privacy-quagmire/quagmire/internal/graph"
	"github.com/privacy-quagmire/quagmire/internal/llm"
	"github.com/privacy-quagmire/quagmire/internal/nlp"
	"github.com/privacy-quagmire/quagmire/internal/smt"
)

// Explanation is the minimal evidence for a VALID verdict: a subset of
// policy edges that still entails the query (a deletion-minimized unsat
// core over the practice facts). Legal reviewers get exactly the
// statements that justify the answer.
type Explanation struct {
	// Verdict echoes the query outcome the explanation supports.
	Verdict Verdict `json:"verdict"`
	// Evidence lists the minimal edges, in the paper's edge notation.
	Evidence []string `json:"evidence"`
	// SolverCalls counts the minimization effort.
	SolverCalls int `json:"solver_calls"`
}

// ExplainValid minimizes the edge set supporting a VALID verdict by
// deletion: each edge is dropped in turn and the query re-checked; edges
// whose removal flips the verdict are essential. Returns an error when the
// query is not VALID in the first place.
func (e *Engine) ExplainValid(ctx context.Context, p llm.ParamSet) (*Explanation, error) {
	actorRole, otherRole := llm.FlowRoles(p)
	trans := map[string]string{}
	actor, err := e.translate(ctx, actorRole, trans)
	if err != nil {
		return nil, err
	}
	data, err := e.translate(ctx, p.DataType, trans)
	if err != nil {
		return nil, err
	}
	other := ""
	if otherRole != "" && otherRole != actorRole && otherRole != "user" {
		if other, err = e.translate(ctx, otherRole, trans); err != nil {
			return nil, err
		}
	}
	action := nlp.VerbBase(p.Action)
	edges := e.relevantEdges(actor, action, data, other)

	calls := 0
	entails := func(subset []*graph.Edge) (bool, error) {
		calls++
		formula, _ := e.buildFormula(subset, actor, action, data, other)
		if e.SimplifyFOL {
			formula = fol.Simplify(formula)
		}
		solver := smt.NewSolver()
		solver.Limits = e.Limits
		solver.Assert(formula)
		res := solver.CheckSat()
		if res.Status == smt.Unknown {
			return false, fmt.Errorf("query: explanation solve budget exhausted (%s)", res.Reason)
		}
		return res.Status == smt.Unsat, nil
	}

	valid, err := entails(edges)
	if err != nil {
		return nil, err
	}
	if !valid {
		return nil, fmt.Errorf("query: verdict is not VALID; nothing to explain")
	}

	// Deletion-based minimization: drop edges one at a time; keep the
	// drop when the entailment survives.
	core := append([]*graph.Edge(nil), edges...)
	for i := 0; i < len(core); {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		candidate := make([]*graph.Edge, 0, len(core)-1)
		candidate = append(candidate, core[:i]...)
		candidate = append(candidate, core[i+1:]...)
		still, err := entails(candidate)
		if err != nil {
			return nil, err
		}
		if still {
			core = candidate // edge i was inessential
		} else {
			i++ // edge i is essential
		}
	}
	exp := &Explanation{Verdict: Valid, SolverCalls: calls}
	for _, ed := range core {
		exp.Evidence = append(exp.Evidence, ed.String())
	}
	return exp, nil
}

// ExplainQuestion parses a natural-language query and runs ExplainValid.
func (e *Engine) ExplainQuestion(ctx context.Context, question string) (*Explanation, error) {
	p, err := e.parseQuery(ctx, question)
	if err != nil {
		return nil, err
	}
	return e.ExplainValid(ctx, p)
}
