package query

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/llm"
	"github.com/privacy-quagmire/quagmire/internal/smt"
)

var batchQueries = []string{
	"Does TikTak share my email address with advertising partners?",
	"Does TikTak collect my device information?",
	"Does TikTak sell my personal information?",
	"Does TikTak share my usage data with service providers?",
}

func TestAskBatchMatchesSequential(t *testing.T) {
	seqEng := newEngine(t)
	var want []*Result
	for _, q := range batchQueries {
		res, err := seqEng.Ask(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}
	parEng := newEngine(t)
	parEng.Workers = 8
	items, err := parEng.AskBatch(context.Background(), batchQueries)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != len(batchQueries) {
		t.Fatalf("items = %d, want %d", len(items), len(batchQueries))
	}
	for i, it := range items {
		if it.Err != nil {
			t.Fatalf("query %d: %v", i, it.Err)
		}
		if it.Query != batchQueries[i] {
			t.Errorf("item %d out of order: %q", i, it.Query)
		}
		if it.Result.Verdict != want[i].Verdict {
			t.Errorf("query %q: verdict %s, want %s", it.Query, it.Result.Verdict, want[i].Verdict)
		}
		if !reflect.DeepEqual(it.Result.Translations, want[i].Translations) {
			t.Errorf("query %q: translations diverged", it.Query)
		}
	}
}

func TestAskBatchSharedCacheHitsOnRepeats(t *testing.T) {
	eng := newEngine(t)
	eng.Workers = 4
	eng.Cache = smt.NewResultCache(0)
	// The same queries submitted twice in one batch: the second halves must
	// hit the cache.
	doubled := append(append([]string(nil), batchQueries...), batchQueries...)
	items, err := eng.AskBatch(context.Background(), doubled)
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		if it.Err != nil {
			t.Fatalf("query %d: %v", i, it.Err)
		}
	}
	st := eng.Cache.Stats()
	if st.Hits == 0 {
		t.Errorf("repeated queries should hit the SMT cache: %+v", st)
	}
	// Verdicts of the duplicate halves agree.
	for i := range batchQueries {
		if a, b := items[i].Result.Verdict, items[i+len(batchQueries)].Result.Verdict; a != b {
			t.Errorf("query %q: verdict %s != cached %s", batchQueries[i], a, b)
		}
	}
}

func TestAskBatchEmpty(t *testing.T) {
	eng := newEngine(t)
	items, err := eng.AskBatch(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 0 {
		t.Errorf("items = %d, want 0", len(items))
	}
}

func TestAskBatchContextCancel(t *testing.T) {
	eng := newEngine(t)
	eng.Workers = 2
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	items, err := eng.AskBatch(ctx, batchQueries)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled batch should return ctx.Err(), got %v", err)
	}
	for i, it := range items {
		if it.Err == nil && it.Result == nil {
			t.Errorf("item %d has neither result nor error", i)
		}
	}
}

func TestAskBatchReportsPerQueryErrors(t *testing.T) {
	eng := newEngine(t)
	eng.Workers = 4
	queries := append([]string{""}, batchQueries...)
	items, err := eng.AskBatch(context.Background(), queries)
	if err != nil {
		t.Fatal(err)
	}
	if items[0].Err == nil {
		t.Error("empty query should fail")
	}
	for _, it := range items[1:] {
		if it.Err != nil {
			t.Errorf("query %q: unexpected error %v", it.Query, it.Err)
		}
	}
}

// blockingClient parks every Complete call on its context and closes
// started on the first call, so a test can cancel a batch that is
// provably mid-LLM-call rather than racing the cancel against startup.
type blockingClient struct {
	started chan struct{}
	once    sync.Once
}

func (b *blockingClient) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	b.once.Do(func() { close(b.started) })
	<-ctx.Done()
	return llm.Response{}, ctx.Err()
}

// TestAskBatchCancelMidFlight is the regression test for cancellation not
// reaching in-flight work: cancelling while workers are blocked inside
// queries must return promptly with ctx.Err(), not wait the batch out.
func TestAskBatchCancelMidFlight(t *testing.T) {
	eng := newEngine(t)
	eng.Workers = 2
	bc := &blockingClient{started: make(chan struct{})}
	eng.Client = bc

	ctx, cancel := context.WithCancel(context.Background())
	type batchOut struct {
		items []BatchItem
		err   error
	}
	done := make(chan batchOut, 1)
	go func() {
		items, err := eng.AskBatch(ctx, batchQueries)
		done <- batchOut{items, err}
	}()

	<-bc.started
	cancel()
	select {
	case out := <-done:
		if !errors.Is(out.err, context.Canceled) {
			t.Fatalf("batch error = %v, want context.Canceled", out.err)
		}
		for i, it := range out.items {
			if it.Err == nil {
				t.Errorf("item %d: expected a cancellation error", i)
			}
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled batch did not return while queries were in flight")
	}
}
