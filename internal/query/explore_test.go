package query

import (
	"context"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/llm"
)

func TestExploreConditions(t *testing.T) {
	eng := newEngine(t)
	// Usage-data sharing is guarded by the vague "legitimate business
	// purposes" condition: exactly the scenarios where it holds are VALID.
	exp, err := eng.ExploreConditions(context.Background(), llm.ParamSet{
		Sender: "TikTak", Action: "share", DataType: "usage data",
		Receiver: "service provider",
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(exp.Placeholders) == 0 {
		t.Fatal("no placeholders to explore")
	}
	if len(exp.Scenarios) != 1<<len(exp.Placeholders) {
		t.Fatalf("scenarios = %d for %d placeholders", len(exp.Scenarios), len(exp.Placeholders))
	}
	if exp.AlwaysValid {
		t.Error("conditional query cannot be always-valid")
	}
	if exp.NeverValid {
		t.Error("conditional query cannot be never-valid")
	}
	// The all-true scenario must be VALID; the all-false scenario INVALID.
	for _, sc := range exp.Scenarios {
		allTrue, allFalse := true, true
		for _, v := range sc.Assumptions {
			if v {
				allFalse = false
			} else {
				allTrue = false
			}
		}
		if allTrue && sc.Verdict != Valid {
			t.Errorf("all-true scenario = %s", sc.Verdict)
		}
		if allFalse && sc.Verdict != Invalid {
			t.Errorf("all-false scenario = %s", sc.Verdict)
		}
	}
}

func TestExploreUnconditional(t *testing.T) {
	eng := newEngine(t)
	// The unconditional email-sharing practice: hmm, its subgraph may
	// still contain conditioned edges from neighbouring statements, but
	// the all-false scenario must remain VALID because the unconditional
	// edge suffices.
	exp, err := eng.ExploreConditions(context.Background(), llm.ParamSet{
		Sender: "TikTak", Action: "share", DataType: "email address",
		Receiver: "advertising partner",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !exp.AlwaysValid {
		t.Errorf("unconditional practice should be valid in every scenario: %+v", exp.Scenarios)
	}
}

func TestExploreCountermodelSurfaced(t *testing.T) {
	eng := newEngine(t)
	res, err := eng.AskParams(context.Background(), llm.ParamSet{
		Sender: "TikTak", Action: "share", DataType: "usage data",
		Receiver: "service provider",
	})
	if err != nil {
		t.Fatal(err)
	}
	// The conditionally-valid result carries the placeholders; the raw
	// SMT result of the first (sat) solve is not exposed here, but the
	// ConditionalOn list names exactly the vague terms at play.
	if len(res.ConditionalOn) == 0 {
		t.Fatalf("expected conditional validity: %+v", res)
	}
}
