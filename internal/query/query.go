// Package query implements Phase 3 of the pipeline: semantic query
// verification — Algorithm 1 lines 18–26. A natural-language query is
// parsed into semantic roles, translated into policy vocabulary with
// embedding search plus LLM equivalence verification, matched against a
// hierarchy-closed subgraph, encoded as a first-order-logic formula,
// compiled to SMT-LIB and checked by the SMT solver. "unsat" of the negated
// implication means the query necessarily follows from the policy (VALID);
// "sat" means it does not (INVALID); resource exhaustion is UNKNOWN.
package query

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/embed"
	"github.com/privacy-quagmire/quagmire/internal/fol"
	"github.com/privacy-quagmire/quagmire/internal/graph"
	"github.com/privacy-quagmire/quagmire/internal/kg"
	"github.com/privacy-quagmire/quagmire/internal/llm"
	"github.com/privacy-quagmire/quagmire/internal/nlp"
	"github.com/privacy-quagmire/quagmire/internal/obs"
	"github.com/privacy-quagmire/quagmire/internal/smt"
	"github.com/privacy-quagmire/quagmire/internal/smtlib"
)

// Verdict is the paper's three-valued query outcome.
type Verdict string

// Verdicts.
const (
	// Valid: the query necessarily follows from the policy.
	Valid Verdict = "VALID"
	// Invalid: the query does not necessarily follow.
	Invalid Verdict = "INVALID"
	// Unknown: the solver exhausted its budget or the fragment is
	// incomplete; human judgment or more budget is needed.
	Unknown Verdict = "UNKNOWN"
)

// Result is the full Phase 3 output for one query.
type Result struct {
	// Verdict is the three-valued outcome.
	Verdict Verdict `json:"verdict"`
	// Translations maps query terms to the policy vocabulary terms they
	// resolved to.
	Translations map[string]string `json:"translations,omitempty"`
	// MatchedEdges are the subgraph edges relevant to the query.
	MatchedEdges []string `json:"matched_edges,omitempty"`
	// Formula is the generated FOL formula (pretty-printed).
	Formula string `json:"formula"`
	// Script is the generated SMT-LIB v2 text.
	Script string `json:"script"`
	// Placeholders lists uninterpreted ambiguity predicates in the
	// formula; non-empty placeholders mean the verdict is conditional on
	// human interpretation of those terms.
	Placeholders []string `json:"placeholders,omitempty"`
	// SMT is the raw solver result.
	SMT smt.Result `json:"-"`
	// FormulaSize is the FOL node count, the complexity proxy reported by
	// the benchmarks.
	FormulaSize int `json:"formula_size"`
	// ConditionalOn, when non-empty, means the verdict became VALID only
	// under the assumption that these vague placeholder conditions hold —
	// the explicit "human judgment required" signal of §2 Phase 3.
	ConditionalOn []string `json:"conditional_on,omitempty"`
	// Contradiction marks that the relevant policy statements are
	// unsatisfiable on their own (an unconditional allow/deny conflict) —
	// the PolicyLint-style apparent contradiction surfaced for review.
	Contradiction bool `json:"contradiction,omitempty"`
}

// Engine answers queries against one knowledge graph.
type Engine struct {
	// KG is the policy's knowledge graph; required.
	KG *kg.KnowledgeGraph
	// Client verifies semantic equivalence of term pairs; required.
	Client llm.Client
	// Model is the embedding model for vocabulary translation; required.
	Model *embed.Model
	// TopK is the number of embedding candidates LLM-verified per term
	// (the paper uses k=10).
	TopK int
	// SubgraphDepth bounds graph traversal around matched nodes.
	SubgraphDepth int
	// Limits bounds the SMT solver.
	Limits smt.Limits
	// SimplifyFOL enables formula simplification before encoding (the
	// paper's proposed mitigation; benchmarked as ablation A3).
	SimplifyFOL bool
	// WholePolicy disables subgraph extraction and encodes every edge,
	// reproducing the paper's full-formula solver blow-up.
	WholePolicy bool
	// NoHierarchy disables subsumption reasoning (hierarchy closure and
	// subtype facts), leaving only exact matches — ablation A1.
	NoHierarchy bool
	// Workers bounds AskBatch's verification pool; 0 selects
	// runtime.GOMAXPROCS(0), 1 forces sequential verification.
	Workers int
	// Cache, when non-nil, memoizes solver results by compiled script +
	// limits so repeated or overlapping queries skip the solver entirely.
	Cache *smt.ResultCache
	// SharedCore, when true, routes the solve stage through one long-lived
	// incremental SMT core per engine: the whole policy's ground encoding
	// (practice facts, subtype facts, hierarchy axioms) is clausified,
	// interned and instantiated once, and every query solves only its goal
	// under a selector assumption, reusing the base clauses, quantifier
	// instantiations and learned clauses across the batch. Opt-in because
	// it fixes the axiom set to the whole policy (as WholePolicy does):
	// verdicts can differ from subgraph mode where the wider axiom set
	// strengthens an Unsat.
	SharedCore bool
	// PreloadCore, when non-nil alongside SharedCore, seeds the shared
	// solver from a persisted smt.CoreImage (codec-v2 analysis payloads)
	// instead of re-clausifying the knowledge graph. Restore failures fall
	// back to the full build transparently.
	PreloadCore *smt.CoreImage
	// Obs, when non-nil, receives verification metrics: per-phase latency
	// (translate/subgraph/compile/solve), per-verdict counts, fresh solver
	// time and instantiation counts. Safe to share across engines.
	Obs *obs.Registry

	index  *embed.Index
	shared sharedState
}

// phaseTimer observes one Phase 3 stage's latency on the engine's
// registry; the returned func is the stop edge.
func (e *Engine) phaseTimer(phase string) func() {
	h := e.Obs.Histogram("quagmire_query_phase_seconds", obs.TimeBuckets, "phase", phase)
	start := time.Now()
	return func() { h.ObserveSince(start) }
}

// observeSolve records solver-side metrics for one smt result. Cached
// results are excluded from the solve-time histogram — their Elapsed is
// lookup time, which would drag the distribution toward zero and hide
// real solver latency.
func (e *Engine) observeSolve(res smt.Result) {
	if !res.Stats.FromCache {
		e.Obs.Histogram("quagmire_smt_solve_seconds", obs.TimeBuckets).ObserveDuration(res.Stats.Elapsed)
		e.Obs.Counter("quagmire_smt_instantiations_total").Add(uint64(res.Stats.Instantiations))
	}
}

// NewEngine builds an engine with pre-computed embeddings for all graph
// elements (Algorithm 1 line 17).
func NewEngine(k *kg.KnowledgeGraph, client llm.Client, model *embed.Model) *Engine {
	e := &Engine{
		KG: k, Client: client, Model: model,
		TopK: 10, SubgraphDepth: 2, SimplifyFOL: true,
	}
	e.index = embed.NewIndex(model)
	for _, n := range k.ED.Nodes() {
		e.index.Add("node:"+n.ID, n.ID)
	}
	// Edge representations: source+action+target concatenations, "for
	// more accurate matching" (§3).
	for i, ed := range k.ED.Edges() {
		e.index.Add(fmt.Sprintf("edge:%d", i), ed.From+" "+ed.Label+" "+ed.To)
	}
	for _, term := range k.DataH.Terms() {
		e.index.Add("node:"+term, term)
	}
	return e
}

// Ask answers a natural-language query.
func (e *Engine) Ask(ctx context.Context, q string) (*Result, error) {
	params, err := e.parseQuery(ctx, q)
	if err != nil {
		return nil, err
	}
	return e.AskParams(ctx, params)
}

// AskParams answers a query already parsed into semantic roles.
func (e *Engine) AskParams(ctx context.Context, p llm.ParamSet) (*Result, error) {
	res := &Result{Translations: map[string]string{}}

	// Map flow roles onto the graph's actor/counterparty convention.
	stopTranslate := e.phaseTimer("translate")
	actorRole, otherRole := llm.FlowRoles(p)
	actor, err := e.translate(ctx, actorRole, res.Translations)
	if err != nil {
		return nil, err
	}
	data, err := e.translate(ctx, p.DataType, res.Translations)
	if err != nil {
		return nil, err
	}
	other := ""
	if otherRole != "" && otherRole != actorRole && otherRole != "user" {
		other, err = e.translate(ctx, otherRole, res.Translations)
		if err != nil {
			return nil, err
		}
	}
	action := nlp.VerbBase(p.Action)
	stopTranslate()

	// Subgraph: matched nodes, hierarchy closure, local traversal.
	stopSubgraph := e.phaseTimer("subgraph")
	edges := e.relevantEdges(actor, action, data, other)
	for _, ed := range edges {
		res.MatchedEdges = append(res.MatchedEdges, ed.String())
	}
	stopSubgraph()

	stopCompile := e.phaseTimer("compile")
	formula, placeholders := e.buildFormula(edges, actor, action, data, other)
	if e.SimplifyFOL {
		formula = fol.Simplify(formula)
	}
	res.Formula = formula.String()
	res.FormulaSize = formula.Size()
	res.Placeholders = placeholders

	script, err := smtlib.Compile(formula, smtlib.CompileOptions{
		Negate:  false, // negation is built into the implication encoding
		Comment: "privacy query verification",
	})
	if err != nil {
		return nil, fmt.Errorf("query: compile: %w", err)
	}
	res.Script = script.String()
	stopCompile()

	stopSolve := e.phaseTimer("solve")
	defer stopSolve()
	var smtRes smt.Result
	if e.SharedCore {
		smtRes, err = e.sharedSolve(ctx, actor, action, data, other, nil)
	} else {
		smtRes, err = smt.SolveScriptCachedCtx(ctx, e.Cache, res.Script, e.Limits)
	}
	if err != nil {
		return nil, fmt.Errorf("query: solve: %w", err)
	}
	e.observeSolve(smtRes)
	res.SMT = smtRes
	switch smtRes.Status {
	case smt.Unsat:
		res.Verdict = Valid
		// Distinguish "follows from the policy" from "the policy itself
		// is contradictory" (ex falso): re-check the axioms alone.
		contradictory := false
		if e.SharedCore {
			contradictory = e.sharedPolicyAloneUnsat(ctx)
		} else {
			contradictory = e.policyAloneUnsat(ctx, edges)
		}
		if contradictory {
			res.Verdict = Unknown
			res.Contradiction = true
		}
	case smt.Sat:
		res.Verdict = Invalid
		// The query may hold conditionally: retry assuming every vague
		// placeholder condition is true.
		if len(placeholders) > 0 {
			v := smt.Unknown
			if e.SharedCore {
				if r, err := e.sharedSolve(ctx, actor, action, data, other, placeholders); err == nil {
					v = r.Status
				}
			} else {
				v = e.solveAssumingConditions(ctx, formula, placeholders)
			}
			if v == smt.Unsat {
				res.Verdict = Valid
				res.ConditionalOn = placeholders
			}
		}
	default:
		res.Verdict = Unknown
	}
	e.Obs.Counter("quagmire_query_verdicts_total", "verdict", string(res.Verdict)).Inc()
	return res, nil
}

// policyAloneUnsat checks whether the subgraph's axioms are contradictory
// without the query goal. The check is memoized alongside the main solve
// and honors the caller's context like the main solve does.
func (e *Engine) policyAloneUnsat(ctx context.Context, edges []*graph.Edge) bool {
	axioms, _ := e.buildFormula(edges, "", "", "", "")
	// Drop the goal conjunct: rebuild policy-only by removing the final
	// ¬goal (buildFormula returns And(policy, ¬goal)).
	if axioms.Op == fol.OpAnd && len(axioms.Sub) == 2 {
		axioms = axioms.Sub[0]
	}
	res, _ := e.Cache.MemoCtx(ctx, smt.CacheKey("policy-alone\x00"+axioms.String(), e.Limits), func() (smt.Result, error) {
		solver := smt.NewSolver()
		solver.Limits = e.Limits
		solver.Assert(axioms)
		r := solver.CheckSatCtx(ctx)
		if err := ctx.Err(); err != nil {
			return r, err
		}
		return r, nil
	})
	e.observeSolve(res)
	return res.Status == smt.Unsat
}

// solveAssumingConditions re-solves with every placeholder condition
// asserted true (SMT-LIB check-sat-assuming), memoized alongside the main
// solve and cancellable via ctx.
func (e *Engine) solveAssumingConditions(ctx context.Context, formula *fol.Formula, placeholders []string) smt.Status {
	key := "assuming\x00" + formula.String() + "\x00" + strings.Join(placeholders, "\x1f")
	res, _ := e.Cache.MemoCtx(ctx, smt.CacheKey(key, e.Limits), func() (smt.Result, error) {
		solver := smt.NewSolver()
		solver.Limits = e.Limits
		solver.Assert(formula)
		assumptions := make([]*fol.Formula, len(placeholders))
		for i, p := range placeholders {
			assumptions[i] = fol.UninterpretedPred(p)
		}
		r := solver.CheckSatAssumingCtx(ctx, assumptions...)
		if err := ctx.Err(); err != nil {
			return r, err
		}
		return r, nil
	})
	e.observeSolve(res)
	return res.Status
}

// parseQuery extracts semantic roles from the query text, reusing the
// extraction prompt with the graph's company for coreference.
func (e *Engine) parseQuery(ctx context.Context, q string) (llm.ParamSet, error) {
	q = strings.TrimSpace(q)
	q = strings.TrimSuffix(q, "?")
	// Normalize interrogative openers so the role extractor sees a
	// declarative statement.
	for _, prefix := range []string{"does ", "Does ", "will ", "Will ", "can ", "Can ", "may ", "May ", "do ", "Do "} {
		q = strings.TrimPrefix(q, prefix)
	}
	q = strings.ReplaceAll(q, " my ", " your ")
	resp, err := e.Client.Complete(ctx, llm.ExtractParamsPrompt(e.KG.Company, q))
	if err != nil {
		return llm.ParamSet{}, fmt.Errorf("query: parse: %w", err)
	}
	var params []llm.ParamSet
	if err := json.Unmarshal([]byte(resp.Text), &params); err != nil || len(params) == 0 {
		return llm.ParamSet{}, fmt.Errorf("query: parse: %w: %q", llm.ErrMalformedOutput, resp.Text)
	}
	return params[0], nil
}

// translate maps a query term into policy vocabulary: top-k embedding
// candidates, each verified by the LLM; the best verified candidate wins.
func (e *Engine) translate(ctx context.Context, term string, record map[string]string) (string, error) {
	term = nlp.CanonicalTerm(term)
	if term == "" {
		return "", nil
	}
	if e.KG.ED.HasNode(term) || e.KG.DataH.Has(term) {
		record[term] = term
		return term, nil
	}
	// Proper-cased nodes (company name) match case-insensitively.
	for _, n := range e.KG.ED.Nodes() {
		if strings.EqualFold(n.ID, term) {
			record[term] = n.ID
			return n.ID, nil
		}
	}
	k := e.TopK
	if k <= 0 {
		k = 10
	}
	for _, m := range e.index.Search(term, k) {
		if !strings.HasPrefix(m.Key, "node:") {
			continue
		}
		cand := strings.TrimPrefix(m.Key, "node:")
		llmStart := time.Now()
		resp, err := e.Client.Complete(ctx, llm.SemanticEquivPrompt(term, cand))
		e.Obs.Histogram("quagmire_llm_call_seconds", obs.TimeBuckets, "phase", "query").ObserveSince(llmStart)
		if err != nil {
			return "", fmt.Errorf("query: equivalence check: %w", err)
		}
		var out struct {
			Equivalent bool `json:"equivalent"`
		}
		if err := json.Unmarshal([]byte(resp.Text), &out); err != nil {
			return "", fmt.Errorf("query: equivalence check: %w: %q", llm.ErrMalformedOutput, resp.Text)
		}
		if out.Equivalent {
			record[term] = cand
			return cand, nil
		}
	}
	// No translation: the term stays as-is (it will be undefined in the
	// policy, making incompleteness explicit).
	record[term] = term
	return term, nil
}

// relevantEdges extracts the query's subgraph: edges touching the matched
// terms or any hierarchy-related data type, within SubgraphDepth hops.
func (e *Engine) relevantEdges(actor, action, data, other string) []*graph.Edge {
	if e.WholePolicy {
		return e.KG.ED.Edges()
	}
	keep := map[string]bool{}
	mark := func(id string) {
		if id == "" {
			return
		}
		for n := range e.KG.ED.Neighborhood(id, e.SubgraphDepth) {
			keep[n] = true
		}
		keep[id] = true
	}
	mark(actor)
	mark(other)
	mark(data)
	// Hierarchy closure over the data term: ancestors and descendants are
	// candidates for subsumption reasoning.
	if !e.NoHierarchy && e.KG.DataH.Has(data) {
		for _, t := range e.KG.DataH.Descendants(data) {
			mark(t)
		}
		for _, t := range e.KG.DataH.Ancestors(data) {
			if t != e.KG.DataH.Root {
				keep[t] = true
			}
		}
	}
	var out []*graph.Edge
	for _, ed := range e.KG.ED.Edges() {
		if keep[ed.From] && keep[ed.To] {
			if matchesAction(ed.Label, action) || actionNeutral(action) {
				out = append(out, ed)
			}
		}
	}
	return out
}

func matchesAction(edgeAction, queryAction string) bool {
	if queryAction == "" {
		return true
	}
	return nlp.VerbBase(baseWord(edgeAction)) == nlp.VerbBase(baseWord(queryAction)) ||
		strings.Contains(edgeAction, queryAction)
}

func actionNeutral(a string) bool { return a == "" }

func baseWord(s string) string {
	if i := strings.IndexByte(s, ' '); i > 0 {
		return s[:i]
	}
	return s
}

// sym sanitizes a term into an SMT-LIB-friendly symbol.
func sym(s string) string {
	if s == "" {
		return "unknown"
	}
	var b strings.Builder
	for _, r := range strings.ToLower(s) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		case r == ' ' || r == '-' || r == '\'' || r == '/':
			b.WriteByte('_')
		}
	}
	out := b.String()
	if out == "" || out[0] >= '0' && out[0] <= '9' {
		out = "t_" + out
	}
	return out
}

// condSym builds the uninterpreted predicate name for a condition.
func condSym(cond string) string { return "cond_" + sym(cond) }

// buildFormula encodes the subgraph and query per §3: policy statements
// become implications/facts over a practice predicate, the hierarchy
// contributes subtype facts plus transitivity, conditions become boolean
// predicates (vague ones uninterpreted), and the query becomes an
// existentially quantified goal. The returned formula asserts
// policy ∧ ¬goal, so unsat ⇔ the query follows from the policy.
func (e *Engine) buildFormula(edges []*graph.Edge, actor, action, data, other string) (*fol.Formula, []string) {
	placeholderSet := map[string]bool{}
	axioms := e.practiceFacts(edges, placeholderSet)
	axioms = append(axioms, e.subtypeFacts(dataTermList(edges, data))...)
	axioms = append(axioms, subtypeAxioms()...)
	goal := queryGoal(actor, action, data, other)

	placeholders := make([]string, 0, len(placeholderSet))
	for p := range placeholderSet {
		placeholders = append(placeholders, p)
	}
	sort.Strings(placeholders)
	return fol.And(fol.And(axioms...), fol.Not(goal)), placeholders
}

// practiceFacts encodes the edges' policy statements as
// practice(actor, action, data, other) facts, negated for denials and
// guarded by uninterpreted condition predicates (recorded in
// placeholderSet) when vague.
func (e *Engine) practiceFacts(edges []*graph.Edge, placeholderSet map[string]bool) []*fol.Formula {
	var facts []*fol.Formula
	for _, ed := range edges {
		otherTerm := ed.Other
		if otherTerm == "" {
			otherTerm = ed.From
		}
		atom := fol.Pred("practice",
			fol.Const(sym(ed.From)),
			fol.Const(sym(ed.Label)),
			fol.Const(sym(ed.To)),
			fol.Const(sym(otherTerm)),
		)
		var fact *fol.Formula = atom
		if ed.Permission == "deny" {
			fact = fol.Not(atom)
		}
		if ed.Condition != "" {
			cond := fol.UninterpretedPred(condSym(ed.Condition))
			placeholderSet[condSym(ed.Condition)] = true
			fact = fol.Implies(cond, fact)
		}
		facts = append(facts, fact)
	}
	return facts
}

// dataTermList collects the data types seen in the subgraph plus the query
// data term, sorted.
func dataTermList(edges []*graph.Edge, data string) []string {
	terms := map[string]bool{}
	if data != "" {
		terms[data] = true
	}
	for _, ed := range edges {
		terms[ed.To] = true
	}
	termList := make([]string, 0, len(terms))
	for t := range terms {
		termList = append(termList, t)
	}
	sort.Strings(termList)
	return termList
}

// subtypeFacts emits ground subtype facts for hierarchy-related pairs of
// the given term list (empty under NoHierarchy — ablation A1).
func (e *Engine) subtypeFacts(termList []string) []*fol.Formula {
	if e.NoHierarchy {
		return nil
	}
	var facts []*fol.Formula
	for _, a := range termList {
		for _, b := range termList {
			if a != b && e.KG.DataH.Subsumes(b, a) {
				facts = append(facts, fol.Pred("subtype", fol.Const(sym(a)), fol.Const(sym(b))))
			}
		}
	}
	return facts
}

// subtypeAxioms returns reflexivity and transitivity of subtype (the
// quantified axioms — these are what push full-policy formulas beyond the
// solver's reach).
func subtypeAxioms() []*fol.Formula {
	return []*fol.Formula{
		fol.Forall("x", fol.Pred("subtype", fol.Var("x"), fol.Var("x"))),
		fol.Forall("x", fol.Forall("y", fol.Forall("z",
			fol.Implies(
				fol.And(
					fol.Pred("subtype", fol.Var("x"), fol.Var("y")),
					fol.Pred("subtype", fol.Var("y"), fol.Var("z")),
				),
				fol.Pred("subtype", fol.Var("x"), fol.Var("z")),
			)))),
	}
}

// queryGoal is the query encoding:
// ∃d. subtype(d, data) ∧ practice(actor, action, d, other').
// When the query names a receiver, it must match; otherwise any
// counterparty witnesses the practice.
func queryGoal(actor, action, data, other string) *fol.Formula {
	goalPractice := func(d fol.Term) *fol.Formula {
		if other != "" {
			return fol.Pred("practice", fol.Const(sym(actor)), fol.Const(sym(action)), d, fol.Const(sym(other)))
		}
		return fol.Exists("o", fol.Pred("practice", fol.Const(sym(actor)), fol.Const(sym(action)), d, fol.Var("o")))
	}
	return fol.Exists("d", fol.And(
		fol.Pred("subtype", fol.Var("d"), fol.Const(sym(data))),
		goalPractice(fol.Var("d")),
	))
}
