package smt

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

const satScript = `(declare-fun p () Bool)
(assert p)
(check-sat)`

const unsatScript = `(declare-fun p () Bool)
(assert p)
(assert (not p))
(check-sat)`

func TestResultCacheHitsAndMisses(t *testing.T) {
	c := NewResultCache(0)
	first, err := SolveScriptCached(c, satScript, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != Sat {
		t.Fatalf("status = %v, want sat", first.Status)
	}
	second, err := SolveScriptCached(c, satScript, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if second.Status != first.Status {
		t.Errorf("cached status %v != original %v", second.Status, first.Status)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 entry", st)
	}
}

func TestResultCacheKeyIncludesLimits(t *testing.T) {
	c := NewResultCache(0)
	if _, err := SolveScriptCached(c, satScript, Limits{}); err != nil {
		t.Fatal(err)
	}
	// A different budget is a different problem: it must miss.
	if _, err := SolveScriptCached(c, satScript, Limits{MaxInstantiations: 7}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 2 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 0 hits, 2 misses, 2 entries", st)
	}
}

func TestResultCacheDoesNotCacheErrors(t *testing.T) {
	c := NewResultCache(0)
	bad := "(assert" // unparseable
	for i := 0; i < 2; i++ {
		if _, err := SolveScriptCached(c, bad, Limits{}); err == nil {
			t.Fatal("expected parse error")
		}
	}
	if st := c.Stats(); st.Hits != 0 || st.Entries != 0 {
		t.Errorf("errors must not be cached: %+v", st)
	}
}

func TestResultCacheEviction(t *testing.T) {
	c := NewResultCache(2)
	scripts := make([]string, 3)
	for i := range scripts {
		scripts[i] = fmt.Sprintf("(declare-fun p%d () Bool)\n(assert p%d)\n(check-sat)", i, i)
		if _, err := SolveScriptCached(c, scripts[i], Limits{}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2 after FIFO eviction", st.Entries)
	}
	// The oldest script was evicted; re-solving it must miss.
	if _, err := SolveScriptCached(c, scripts[0], Limits{}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 0 {
		t.Errorf("evicted entry must not hit: %+v", st)
	}
}

func TestResultCacheNilDegradesToPlainSolve(t *testing.T) {
	res, err := SolveScriptCached(nil, unsatScript, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unsat {
		t.Errorf("status = %v, want unsat", res.Status)
	}
}

func TestResultCacheConcurrent(t *testing.T) {
	c := NewResultCache(0)
	scripts := []string{satScript, unsatScript}
	want := []Status{Sat, Unsat}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				idx := (g + i) % len(scripts)
				res, err := SolveScriptCached(c, scripts[idx], Limits{})
				if err != nil {
					t.Error(err)
					return
				}
				if res.Status != want[idx] {
					t.Errorf("script %d: status %v, want %v", idx, res.Status, want[idx])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != 16*20 {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, 16*20)
	}
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2", st.Entries)
	}
	if st.Hits == 0 {
		t.Error("repeated concurrent solves should hit the cache")
	}
}

// TestResultCacheStampedeSuppression is the regression test for the PR 1
// cache stampede: N concurrent misses on one key must run the solver once.
// The leader blocks until the test has observed every other goroutine
// parked on the flight, so the assertion on Suppressed is deterministic.
func TestResultCacheStampedeSuppression(t *testing.T) {
	const goroutines = 8
	c := NewResultCache(0)
	key := CacheKey("stampede", Limits{})
	var computes atomic.Int32
	release := make(chan struct{})

	var wg sync.WaitGroup
	results := make([]Result, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, err := c.Memo(key, func() (Result, error) {
				computes.Add(1)
				<-release
				return Result{Status: Unsat}, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[g] = res
		}(g)
	}
	// Wait until all non-leaders are parked on the in-flight solve, then
	// let the leader finish.
	for c.waitersOf(key) < goroutines-1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want exactly 1", n)
	}
	st := c.Stats()
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1", st.Misses)
	}
	if st.Hits != goroutines-1 {
		t.Errorf("hits = %d, want %d", st.Hits, goroutines-1)
	}
	if st.Suppressed != goroutines-1 {
		t.Errorf("suppressed = %d, want %d", st.Suppressed, goroutines-1)
	}
	fromCache := 0
	for _, res := range results {
		if res.Status != Unsat {
			t.Fatalf("diverging result: %v", res.Status)
		}
		if res.Stats.FromCache {
			fromCache++
		}
	}
	if fromCache != goroutines-1 {
		t.Errorf("%d results marked FromCache, want %d", fromCache, goroutines-1)
	}
}

// TestResultCacheHitReportsLookupTime is the regression test for stale
// timing: a hit must carry FromCache and its own (tiny) lookup time, not
// the original solve's Elapsed.
func TestResultCacheHitReportsLookupTime(t *testing.T) {
	c := NewResultCache(0)
	key := CacheKey("timing", Limits{})
	const solveTime = 50 * time.Millisecond
	first, err := c.Memo(key, func() (Result, error) {
		time.Sleep(solveTime)
		return Result{Status: Sat, Stats: Stats{Elapsed: solveTime}}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if first.Stats.FromCache {
		t.Error("first solve must not be marked FromCache")
	}
	second, err := c.Memo(key, func() (Result, error) {
		t.Error("hit must not recompute")
		return Result{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Stats.FromCache {
		t.Error("hit not marked FromCache")
	}
	if second.Stats.Elapsed >= solveTime/2 {
		t.Errorf("hit Elapsed = %v, want actual lookup time well under the %v solve", second.Stats.Elapsed, solveTime)
	}
}

func TestResultCacheEvictionCounter(t *testing.T) {
	c := NewResultCache(2)
	for i := 0; i < 4; i++ {
		script := fmt.Sprintf("(declare-fun q%d () Bool)\n(assert q%d)\n(check-sat)", i, i)
		if _, err := SolveScriptCached(c, script, Limits{}); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.Stats(); st.Evictions != 2 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 2 evictions and 2 entries", st)
	}
}

// TestMemoCtxWaiterCancellation: a waiter whose context dies while the
// leader is still solving returns promptly with ctx.Err().
func TestMemoCtxWaiterCancellation(t *testing.T) {
	c := NewResultCache(0)
	key := CacheKey("waiter-cancel", Limits{})
	release := make(chan struct{})
	started := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		close(started)
		_, err := c.Memo(key, func() (Result, error) {
			<-release
			return Result{Status: Sat}, nil
		})
		if err != nil {
			t.Error(err)
		}
	}()
	<-started
	// Poll until the leader's flight is registered, then join it.
	for {
		c.mu.Lock()
		_, registered := c.inflight[key]
		c.mu.Unlock()
		if registered {
			break
		}
		time.Sleep(time.Millisecond)
	}
	ctx, cancel := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		_, err := c.MemoCtx(ctx, key, func() (Result, error) {
			t.Error("waiter must not compute while leader holds the flight")
			return Result{}, nil
		})
		waiterErr <- err
	}()
	for c.waitersOf(key) == 0 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-waiterErr:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("waiter error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter did not return while leader was still solving")
	}
	close(release)
	<-leaderDone
}

// TestMemoCtxLeaderCancelDoesNotPoisonWaiters: when the leader's own
// context dies mid-solve, a waiter with a live context retries and gets a
// real answer instead of inheriting the leader's cancellation.
func TestMemoCtxLeaderCancelDoesNotPoisonWaiters(t *testing.T) {
	c := NewResultCache(0)
	key := CacheKey("leader-cancel", Limits{})
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	release := make(chan struct{})
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		_, err := c.MemoCtx(leaderCtx, key, func() (Result, error) {
			<-release
			return Result{}, leaderCtx.Err()
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("leader error = %v, want context.Canceled", err)
		}
	}()
	// The waiter must not start before the leader holds the flight, or it
	// would become the leader itself and never park.
	for {
		c.mu.Lock()
		_, registered := c.inflight[key]
		c.mu.Unlock()
		if registered {
			break
		}
		time.Sleep(time.Millisecond)
	}
	waiterRes := make(chan Result, 1)
	go func() {
		res, err := c.Memo(key, func() (Result, error) {
			// The retry path: this waiter becomes the new leader.
			return Result{Status: Unsat}, nil
		})
		if err != nil {
			t.Error(err)
		}
		waiterRes <- res
	}()
	for c.waitersOf(key) == 0 {
		time.Sleep(time.Millisecond)
	}
	cancelLeader()
	close(release)
	select {
	case res := <-waiterRes:
		if res.Status != Unsat {
			t.Errorf("waiter status = %v, want Unsat from its own retry", res.Status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("waiter never recovered from leader cancellation")
	}
	<-leaderDone
	if st := c.Stats(); st.Entries != 1 {
		t.Errorf("entries = %d, want 1 (only the retry's result cached)", st.Entries)
	}
}
