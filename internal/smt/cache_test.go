package smt

import (
	"fmt"
	"sync"
	"testing"
)

const satScript = `(declare-fun p () Bool)
(assert p)
(check-sat)`

const unsatScript = `(declare-fun p () Bool)
(assert p)
(assert (not p))
(check-sat)`

func TestResultCacheHitsAndMisses(t *testing.T) {
	c := NewResultCache(0)
	first, err := SolveScriptCached(c, satScript, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if first.Status != Sat {
		t.Fatalf("status = %v, want sat", first.Status)
	}
	second, err := SolveScriptCached(c, satScript, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if second.Status != first.Status {
		t.Errorf("cached status %v != original %v", second.Status, first.Status)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 entry", st)
	}
}

func TestResultCacheKeyIncludesLimits(t *testing.T) {
	c := NewResultCache(0)
	if _, err := SolveScriptCached(c, satScript, Limits{}); err != nil {
		t.Fatal(err)
	}
	// A different budget is a different problem: it must miss.
	if _, err := SolveScriptCached(c, satScript, Limits{MaxInstantiations: 7}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 0 || st.Misses != 2 || st.Entries != 2 {
		t.Errorf("stats = %+v, want 0 hits, 2 misses, 2 entries", st)
	}
}

func TestResultCacheDoesNotCacheErrors(t *testing.T) {
	c := NewResultCache(0)
	bad := "(assert" // unparseable
	for i := 0; i < 2; i++ {
		if _, err := SolveScriptCached(c, bad, Limits{}); err == nil {
			t.Fatal("expected parse error")
		}
	}
	if st := c.Stats(); st.Hits != 0 || st.Entries != 0 {
		t.Errorf("errors must not be cached: %+v", st)
	}
}

func TestResultCacheEviction(t *testing.T) {
	c := NewResultCache(2)
	scripts := make([]string, 3)
	for i := range scripts {
		scripts[i] = fmt.Sprintf("(declare-fun p%d () Bool)\n(assert p%d)\n(check-sat)", i, i)
		if _, err := SolveScriptCached(c, scripts[i], Limits{}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want 2 after FIFO eviction", st.Entries)
	}
	// The oldest script was evicted; re-solving it must miss.
	if _, err := SolveScriptCached(c, scripts[0], Limits{}); err != nil {
		t.Fatal(err)
	}
	if st := c.Stats(); st.Hits != 0 {
		t.Errorf("evicted entry must not hit: %+v", st)
	}
}

func TestResultCacheNilDegradesToPlainSolve(t *testing.T) {
	res, err := SolveScriptCached(nil, unsatScript, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unsat {
		t.Errorf("status = %v, want unsat", res.Status)
	}
}

func TestResultCacheConcurrent(t *testing.T) {
	c := NewResultCache(0)
	scripts := []string{satScript, unsatScript}
	want := []Status{Sat, Unsat}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				idx := (g + i) % len(scripts)
				res, err := SolveScriptCached(c, scripts[idx], Limits{})
				if err != nil {
					t.Error(err)
					return
				}
				if res.Status != want[idx] {
					t.Errorf("script %d: status %v, want %v", idx, res.Status, want[idx])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != 16*20 {
		t.Errorf("hits+misses = %d, want %d", st.Hits+st.Misses, 16*20)
	}
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2", st.Entries)
	}
	if st.Hits == 0 {
		t.Error("repeated concurrent solves should hit the cache")
	}
}
