package smt

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"sync"
	"time"
)

// ResultCache memoizes SolveScript outcomes by a content hash of the
// compiled SMT-LIB script plus the solver limits, so repeated or
// overlapping queries skip the solver entirely. Concurrent misses on the
// same key are deduplicated singleflight-style: one goroutine (the
// leader) runs the solver while the others wait and share its result, so
// AskBatch never burns CPU solving the same problem twice. All methods
// are safe for concurrent use; the solver itself stays deterministic, so
// a cached Result is bit-identical to a recomputed one — except
// Stats.Elapsed, which on a hit reports the actual lookup (or wait) time
// with Stats.FromCache set, never the original solve's duration.
type ResultCache struct {
	mu      sync.Mutex
	entries map[string]Result
	// order tracks insertion for FIFO eviction once max is exceeded.
	order    []string
	max      int
	inflight map[string]*inflightSolve
	hits     uint64
	miss     uint64
	// suppressed counts lookups that joined an in-flight solve instead of
	// starting a duplicate one (each is also counted as a hit).
	suppressed uint64
	evictions  uint64
}

// inflightSolve is one in-progress computation shared by concurrent
// lookups of the same key. res/err are written exactly once, before done
// is closed.
type inflightSolve struct {
	done    chan struct{}
	waiters int
	res     Result
	err     error
}

// DefaultCacheSize bounds a cache constructed with size <= 0.
const DefaultCacheSize = 4096

// NewResultCache returns a cache holding at most max results (FIFO
// eviction); max <= 0 selects DefaultCacheSize.
func NewResultCache(max int) *ResultCache {
	if max <= 0 {
		max = DefaultCacheSize
	}
	return &ResultCache{
		entries:  map[string]Result{},
		inflight: map[string]*inflightSolve{},
		max:      max,
	}
}

// CacheStats reports cache effectiveness counters.
type CacheStats struct {
	// Hits counts lookups answered without running the solver — from a
	// stored entry or by sharing an in-flight solve.
	Hits uint64 `json:"hits"`
	// Misses counts lookups that had to run the solver.
	Misses uint64 `json:"misses"`
	// Suppressed counts the subset of Hits that were duplicate concurrent
	// solves deduplicated singleflight-style (the stampede that PR 1's
	// AskBatch made routine).
	Suppressed uint64 `json:"suppressed"`
	// Evictions counts entries dropped by FIFO eviction.
	Evictions uint64 `json:"evictions"`
	// Entries is the current number of cached results.
	Entries int `json:"entries"`
}

// Stats returns a snapshot of the counters.
func (c *ResultCache) Stats() CacheStats {
	if c == nil {
		return CacheStats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:       c.hits,
		Misses:     c.miss,
		Suppressed: c.suppressed,
		Evictions:  c.evictions,
		Entries:    len(c.entries),
	}
}

// CacheKey hashes problem source text together with every limit field: a
// different budget can change the verdict (unknown vs decided), so limits
// are part of the identity. The source need not be a full SMT-LIB script —
// callers memoizing derived checks (e.g. axioms-only satisfiability) key
// by any deterministic rendering of the problem.
func CacheKey(src string, limits Limits) string {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeInt(limits.MaxSatSteps)
	writeInt(int64(limits.MaxInstantiations))
	writeInt(int64(limits.MaxRounds))
	writeInt(int64(limits.MaxTheoryLemmas))
	writeInt(int64(limits.Timeout))
	h.Write([]byte(src))
	return hex.EncodeToString(h.Sum(nil))
}

// putLocked stores a result, evicting the oldest entry when full. The
// caller holds c.mu.
func (c *ResultCache) putLocked(key string, res Result) {
	if _, ok := c.entries[key]; ok {
		return
	}
	for len(c.entries) >= c.max && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
		c.evictions++
	}
	c.entries[key] = res
	c.order = append(c.order, key)
}

// hit marks res as answered from the cache: FromCache is set and Elapsed
// reports the caller's actual lookup/wait time instead of the original
// solve's duration, so per-query timing stays honest.
func hit(res Result, since time.Time) Result {
	res.Stats.FromCache = true
	res.Stats.Elapsed = time.Since(since)
	return res
}

// Memo answers the keyed check from the cache, or runs compute and stores
// its result, deduplicating concurrent computations of the same key. A
// nil cache degrades to a plain compute. Errors are never cached: a
// malformed problem fails the same way every time and is cheap to
// re-reject, while caching it would complicate the value type for no win.
func (c *ResultCache) Memo(key string, compute func() (Result, error)) (Result, error) {
	return c.MemoCtx(context.Background(), key, compute)
}

// MemoCtx is Memo with cancellation: a caller waiting on another
// goroutine's in-flight solve returns ctx.Err() as soon as ctx is
// cancelled instead of waiting the solve out. The leader's compute is
// responsible for honoring its own context (SolveScriptCtx does).
func (c *ResultCache) MemoCtx(ctx context.Context, key string, compute func() (Result, error)) (Result, error) {
	if c == nil {
		return compute()
	}
	for {
		start := time.Now()
		c.mu.Lock()
		if res, ok := c.entries[key]; ok {
			c.hits++
			c.mu.Unlock()
			return hit(res, start), nil
		}
		if fl, ok := c.inflight[key]; ok {
			fl.waiters++
			c.mu.Unlock()
			select {
			case <-fl.done:
			case <-ctx.Done():
				return Result{}, ctx.Err()
			}
			if fl.err != nil {
				// A leader cancelled by its own context must not poison
				// waiters whose contexts are still live: retry (typically
				// becoming the new leader). Other errors are shared — the
				// same input fails the same way for everyone.
				if errors.Is(fl.err, context.Canceled) || errors.Is(fl.err, context.DeadlineExceeded) {
					if err := ctx.Err(); err != nil {
						return Result{}, err
					}
					continue
				}
				return Result{}, fl.err
			}
			c.mu.Lock()
			c.hits++
			c.suppressed++
			c.mu.Unlock()
			return hit(fl.res, start), nil
		}
		// Miss with no flight in progress: become the leader.
		c.miss++
		fl := &inflightSolve{done: make(chan struct{})}
		c.inflight[key] = fl
		c.mu.Unlock()

		res, err := compute()

		c.mu.Lock()
		delete(c.inflight, key)
		fl.res, fl.err = res, err
		if err == nil {
			c.putLocked(key, res)
		}
		c.mu.Unlock()
		close(fl.done)
		return res, err
	}
}

// waitersOf reports how many goroutines are parked on the key's in-flight
// solve; used by tests to deterministically observe stampede suppression.
func (c *ResultCache) waitersOf(key string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if fl, ok := c.inflight[key]; ok {
		return fl.waiters
	}
	return 0
}

// SolveScriptCached is SolveScript with memoization keyed by script +
// limits. A nil cache degrades to a plain solve.
func SolveScriptCached(c *ResultCache, src string, limits Limits) (Result, error) {
	return SolveScriptCachedCtx(context.Background(), c, src, limits)
}

// SolveScriptCachedCtx is SolveScriptCached with cancellation: the solve
// itself checks ctx inside its instantiation and refinement loops, and a
// cancelled solve is returned as an error (never cached) so a later
// lookup with a live context re-solves.
func SolveScriptCachedCtx(ctx context.Context, c *ResultCache, src string, limits Limits) (Result, error) {
	return c.MemoCtx(ctx, CacheKey(src, limits), func() (Result, error) {
		res, err := SolveScriptCtx(ctx, src, limits)
		if err != nil {
			return res, err
		}
		if err := ctx.Err(); err != nil {
			return res, err
		}
		return res, nil
	})
}
