package smt

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"sync"
)

// ResultCache memoizes SolveScript outcomes by a content hash of the
// compiled SMT-LIB script plus the solver limits, so repeated or
// overlapping queries skip the solver entirely. All methods are safe for
// concurrent use; the solver itself stays deterministic, so a cached
// Result is bit-identical to a recomputed one (modulo Stats.Elapsed,
// which reports the original solve).
type ResultCache struct {
	mu      sync.Mutex
	entries map[string]Result
	// order tracks insertion for FIFO eviction once max is exceeded.
	order []string
	max   int
	hits  uint64
	miss  uint64
}

// DefaultCacheSize bounds a cache constructed with size <= 0.
const DefaultCacheSize = 4096

// NewResultCache returns a cache holding at most max results (FIFO
// eviction); max <= 0 selects DefaultCacheSize.
func NewResultCache(max int) *ResultCache {
	if max <= 0 {
		max = DefaultCacheSize
	}
	return &ResultCache{entries: map[string]Result{}, max: max}
}

// CacheStats reports cache effectiveness counters.
type CacheStats struct {
	// Hits counts lookups answered from the cache.
	Hits uint64 `json:"hits"`
	// Misses counts lookups that had to run the solver.
	Misses uint64 `json:"misses"`
	// Entries is the current number of cached results.
	Entries int `json:"entries"`
}

// Stats returns a snapshot of the counters.
func (c *ResultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.miss, Entries: len(c.entries)}
}

// CacheKey hashes problem source text together with every limit field: a
// different budget can change the verdict (unknown vs decided), so limits
// are part of the identity. The source need not be a full SMT-LIB script —
// callers memoizing derived checks (e.g. axioms-only satisfiability) key
// by any deterministic rendering of the problem.
func CacheKey(src string, limits Limits) string {
	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeInt(limits.MaxSatSteps)
	writeInt(int64(limits.MaxInstantiations))
	writeInt(int64(limits.MaxRounds))
	writeInt(int64(limits.MaxTheoryLemmas))
	writeInt(int64(limits.Timeout))
	h.Write([]byte(src))
	return hex.EncodeToString(h.Sum(nil))
}

// get returns the cached result for the key, counting hit or miss.
func (c *ResultCache) get(key string) (Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	res, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.miss++
	}
	return res, ok
}

// put stores a result, evicting the oldest entry when full.
func (c *ResultCache) put(key string, res Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	for len(c.entries) >= c.max && len(c.order) > 0 {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[key] = res
	c.order = append(c.order, key)
}

// Memo answers the keyed check from the cache, or runs compute and stores
// its result. A nil cache degrades to a plain compute. Errors are never
// cached: a malformed problem fails the same way every time and is cheap
// to re-reject, while caching it would complicate the value type for no
// win.
func (c *ResultCache) Memo(key string, compute func() (Result, error)) (Result, error) {
	if c == nil {
		return compute()
	}
	if res, ok := c.get(key); ok {
		return res, nil
	}
	res, err := compute()
	if err != nil {
		return res, err
	}
	c.put(key, res)
	return res, nil
}

// SolveScriptCached is SolveScript with memoization keyed by script +
// limits. A nil cache degrades to a plain solve.
func SolveScriptCached(c *ResultCache, src string, limits Limits) (Result, error) {
	return c.Memo(CacheKey(src, limits), func() (Result, error) {
		return SolveScript(src, limits)
	})
}
