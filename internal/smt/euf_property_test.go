package smt

import (
	"math/rand"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/fol"
)

// The EUF brute-force oracle: a ground conjunction over the fixed term set
// {a, b, c, f(a), f(b)} is satisfiable iff some congruence-closed partition
// of the terms satisfies every literal with a consistent per-class
// predicate assignment.

var eufTerms = []fol.Term{
	fol.Const("a"),
	fol.Const("b"),
	fol.Const("c"),
	fol.App("f", fol.Const("a")),
	fol.App("f", fol.Const("b")),
}

// fIndex maps term index -> index of f(term) within eufTerms, or -1.
var fIndex = []int{3, 4, -1, -1, -1}

// eufLiteral is one literal of the random conjunction.
type eufLiteral struct {
	// kind 0: s=t; kind 1: s≠t; kind 2: p(s); kind 3: ¬p(s).
	kind int
	s, t int
}

func (l eufLiteral) formula() *fol.Formula {
	switch l.kind {
	case 0:
		return fol.Eq(eufTerms[l.s], eufTerms[l.t])
	case 1:
		return fol.Not(fol.Eq(eufTerms[l.s], eufTerms[l.t]))
	case 2:
		return fol.Pred("p", eufTerms[l.s])
	default:
		return fol.Not(fol.Pred("p", eufTerms[l.s]))
	}
}

// partitions enumerates all set partitions of n elements as assignment
// vectors (element -> class id in canonical form).
func partitions(n int) [][]int {
	var out [][]int
	var rec func(assign []int, maxClass int)
	rec = func(assign []int, maxClass int) {
		if len(assign) == n {
			cp := make([]int, n)
			copy(cp, assign)
			out = append(out, cp)
			return
		}
		for c := 0; c <= maxClass+1; c++ {
			next := maxClass
			if c > maxClass {
				next = c
			}
			rec(append(assign, c), next)
		}
	}
	rec(make([]int, 0, n), -1)
	return out
}

// bruteForceEUF reports satisfiability of the conjunction by enumeration.
func bruteForceEUF(lits []eufLiteral) bool {
	for _, part := range partitions(len(eufTerms)) {
		// Congruence: a~b implies f(a)~f(b) when both are in the set.
		congruent := true
		for i := range eufTerms {
			for j := range eufTerms {
				if part[i] == part[j] && fIndex[i] >= 0 && fIndex[j] >= 0 &&
					part[fIndex[i]] != part[fIndex[j]] {
					congruent = false
				}
			}
		}
		if !congruent {
			continue
		}
		ok := true
		// Predicate assignment per class: -1 unknown, 0 false, 1 true.
		pVal := map[int]int{}
		for _, l := range lits {
			switch l.kind {
			case 0:
				if part[l.s] != part[l.t] {
					ok = false
				}
			case 1:
				if part[l.s] == part[l.t] {
					ok = false
				}
			case 2:
				if v, seen := pVal[part[l.s]]; seen && v == 0 {
					ok = false
				} else {
					pVal[part[l.s]] = 1
				}
			case 3:
				if v, seen := pVal[part[l.s]]; seen && v == 1 {
					ok = false
				} else {
					pVal[part[l.s]] = 0
				}
			}
			if !ok {
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestEUFAgainstBruteForce validates the DPLL(T) solver against the
// partition oracle on random ground EUF conjunctions.
func TestEUFAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for iter := 0; iter < 300; iter++ {
		n := 1 + r.Intn(7)
		lits := make([]eufLiteral, n)
		var conj []*fol.Formula
		for i := range lits {
			l := eufLiteral{kind: r.Intn(4), s: r.Intn(len(eufTerms)), t: r.Intn(len(eufTerms))}
			lits[i] = l
			conj = append(conj, l.formula())
		}
		want := bruteForceEUF(lits)
		s := NewSolver()
		s.Assert(fol.And(conj...))
		res := s.CheckSat()
		got := res.Status == Sat
		if res.Status == Unknown {
			t.Fatalf("iter %d: unexpected unknown (%s) for %v", iter, res.Reason, fol.And(conj...))
		}
		if got != want {
			t.Fatalf("iter %d: solver=%v oracle=%v for %s", iter, res.Status, want, fol.And(conj...))
		}
	}
}

// TestEUFDisjunctionsAgainstBruteForce extends the oracle check to small
// CNF formulas (disjunctions of EUF literals) by distributing over the
// clauses.
func TestEUFDisjunctionsAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for iter := 0; iter < 120; iter++ {
		nClauses := 1 + r.Intn(4)
		clauses := make([][]eufLiteral, nClauses)
		var f []*fol.Formula
		for ci := range clauses {
			width := 1 + r.Intn(2)
			var disj []*fol.Formula
			for k := 0; k < width; k++ {
				l := eufLiteral{kind: r.Intn(4), s: r.Intn(len(eufTerms)), t: r.Intn(len(eufTerms))}
				clauses[ci] = append(clauses[ci], l)
				disj = append(disj, l.formula())
			}
			f = append(f, fol.Or(disj...))
		}
		// Oracle: satisfiable iff some literal selection (one per clause)
		// is EUF-satisfiable.
		want := false
		var pick func(ci int, chosen []eufLiteral)
		found := false
		pick = func(ci int, chosen []eufLiteral) {
			if found {
				return
			}
			if ci == nClauses {
				if bruteForceEUF(chosen) {
					found = true
				}
				return
			}
			for _, l := range clauses[ci] {
				pick(ci+1, append(chosen, l))
			}
		}
		pick(0, nil)
		want = found

		s := NewSolver()
		s.Assert(fol.And(f...))
		res := s.CheckSat()
		if res.Status == Unknown {
			t.Fatalf("iter %d: unknown (%s)", iter, res.Reason)
		}
		if (res.Status == Sat) != want {
			t.Fatalf("iter %d: solver=%v oracle=%v for %s", iter, res.Status, want, fol.And(f...))
		}
	}
}
