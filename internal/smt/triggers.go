package smt

import (
	"github.com/privacy-quagmire/quagmire/internal/fol"
)

// InstStrategy selects how universally quantified clauses are grounded.
type InstStrategy int

// Instantiation strategies.
const (
	// FullGrounding instantiates every clause over the whole term
	// universe (complete for EPR, explodes combinatorially) — what naive
	// encodings of the pipeline's formulas force solvers to do.
	FullGrounding InstStrategy = iota
	// TriggerBased picks a trigger literal per clause and instantiates
	// only with substitutions that match existing ground atoms, the
	// E-matching heuristic real SMT solvers use. Far fewer instances,
	// but refutation-incomplete: Unsat stays sound, Sat degrades to
	// Unknown unless the problem is ground.
	TriggerBased
)

// String names the strategy.
func (s InstStrategy) String() string {
	if s == TriggerBased {
		return "trigger"
	}
	return "full"
}

// The instantiation machinery itself lives in ground.go, operating on
// arena-interned clauses (see groundCore.instantiate). The AST-level
// matcher below remains as the reference implementation of E-matching
// semantics; the interned fast path (fol.Arena.MatchAtom) must agree
// with it.

// matchAtom unifies a pattern atom (with variables) against a ground atom,
// returning the substitution.
func matchAtom(pattern, ground *fol.Formula) (map[string]fol.Term, bool) {
	if pattern.Pred != ground.Pred || len(pattern.Terms) != len(ground.Terms) {
		return nil, false
	}
	sub := map[string]fol.Term{}
	for i := range pattern.Terms {
		if !matchTerm(pattern.Terms[i], ground.Terms[i], sub) {
			return nil, false
		}
	}
	return sub, true
}

func matchTerm(pattern, ground fol.Term, sub map[string]fol.Term) bool {
	switch pattern.Kind {
	case fol.TermVar:
		if bound, ok := sub[pattern.Name]; ok {
			return bound.Equal(ground)
		}
		sub[pattern.Name] = ground
		return true
	case fol.TermConst:
		return ground.Kind == fol.TermConst && ground.Name == pattern.Name
	case fol.TermApp:
		if ground.Kind != fol.TermApp || ground.Name != pattern.Name || len(ground.Args) != len(pattern.Args) {
			return false
		}
		for i := range pattern.Args {
			if !matchTerm(pattern.Args[i], ground.Args[i], sub) {
				return false
			}
		}
		return true
	default:
		return false
	}
}
