package smt

import (
	"context"
	"sort"
	"strings"

	"github.com/privacy-quagmire/quagmire/internal/fol"
)

// InstStrategy selects how universally quantified clauses are grounded.
type InstStrategy int

// Instantiation strategies.
const (
	// FullGrounding instantiates every clause over the whole term
	// universe (complete for EPR, explodes combinatorially) — what naive
	// encodings of the pipeline's formulas force solvers to do.
	FullGrounding InstStrategy = iota
	// TriggerBased picks a trigger literal per clause and instantiates
	// only with substitutions that match existing ground atoms, the
	// E-matching heuristic real SMT solvers use. Far fewer instances,
	// but refutation-incomplete: Unsat stays sound, Sat degrades to
	// Unknown unless the problem is ground.
	TriggerBased
)

// String names the strategy.
func (s InstStrategy) String() string {
	if s == TriggerBased {
		return "trigger"
	}
	return "full"
}

// triggerInstantiate grounds non-ground clauses by E-matching: for each
// clause, the literal with the most variables is the trigger; its
// predicate's ground occurrences donate substitutions. Rounds repeat while
// new ground atoms appear, up to the budget or until ctx is cancelled.
func triggerInstantiate(ctx context.Context, clauses []fol.Clause, lim Limits) ([]fol.Clause, instStats, bool) {
	var ground []fol.Clause
	var nonGround []fol.Clause
	for _, c := range clauses {
		if clauseVars(c) == nil {
			ground = append(ground, c)
		} else {
			nonGround = append(nonGround, c)
		}
	}
	st := instStats{}
	if len(nonGround) == 0 {
		return ground, st, true
	}
	seenClause := map[string]bool{}
	complete := true

	// atomIndex maps predicate symbol -> ground atoms seen.
	atomIndex := map[string][]*fol.Formula{}
	addGroundAtoms := func(c fol.Clause) {
		for _, lit := range c {
			if lit.Atom.Op == fol.OpPred && len(fol.FreeVars(lit.Atom)) == 0 {
				atomIndex[lit.Atom.Pred] = append(atomIndex[lit.Atom.Pred], lit.Atom)
			}
		}
	}
	for _, c := range ground {
		addGroundAtoms(c)
	}

	for round := 0; round < lim.MaxRounds; round++ {
		st.rounds = round + 1
		grew := false
		for _, c := range nonGround {
			trigger := pickTrigger(c)
			if trigger == nil {
				complete = false
				continue
			}
			for _, candidate := range atomIndex[trigger.Pred] {
				if st.count >= lim.MaxInstantiations {
					return ground, st, false
				}
				if ctx.Err() != nil {
					return ground, st, false
				}
				sub, ok := matchAtom(trigger, candidate)
				if !ok {
					continue
				}
				gc, fullyGround := applySubst(c, sub)
				if !fullyGround {
					// Leftover variables: clause has vars outside the
					// trigger; incomplete but keep soundness by skipping.
					complete = false
					continue
				}
				key := clauseKey(gc)
				if seenClause[key] {
					continue
				}
				seenClause[key] = true
				st.count++
				ground = append(ground, gc)
				addGroundAtoms(gc)
				grew = true
			}
		}
		if !grew {
			break
		}
		if round == lim.MaxRounds-1 {
			complete = false
		}
	}
	// Trigger instantiation is never exhaustive over the universe, so a
	// model over the instances does not imply satisfiability unless no
	// quantified clause was skipped entirely.
	return ground, st, complete && false
}

// pickTrigger selects the positive literal with the most variables (most
// selective pattern); nil when the clause has no predicate literal with
// all the clause's variables.
func pickTrigger(c fol.Clause) *fol.Formula {
	vars := clauseVars(c)
	var best *fol.Formula
	bestCover := -1
	for _, lit := range c {
		if lit.Atom.Op != fol.OpPred {
			continue
		}
		cover := len(fol.FreeVars(lit.Atom))
		if cover > bestCover {
			best = lit.Atom
			bestCover = cover
		}
	}
	if best == nil || bestCover < len(vars) {
		// The trigger must bind every variable of the clause.
		return nil
	}
	return best
}

// matchAtom unifies a pattern atom (with variables) against a ground atom,
// returning the substitution.
func matchAtom(pattern, ground *fol.Formula) (map[string]fol.Term, bool) {
	if pattern.Pred != ground.Pred || len(pattern.Terms) != len(ground.Terms) {
		return nil, false
	}
	sub := map[string]fol.Term{}
	for i := range pattern.Terms {
		if !matchTerm(pattern.Terms[i], ground.Terms[i], sub) {
			return nil, false
		}
	}
	return sub, true
}

func matchTerm(pattern, ground fol.Term, sub map[string]fol.Term) bool {
	switch pattern.Kind {
	case fol.TermVar:
		if bound, ok := sub[pattern.Name]; ok {
			return bound.Equal(ground)
		}
		sub[pattern.Name] = ground
		return true
	case fol.TermConst:
		return ground.Kind == fol.TermConst && ground.Name == pattern.Name
	case fol.TermApp:
		if ground.Kind != fol.TermApp || ground.Name != pattern.Name || len(ground.Args) != len(pattern.Args) {
			return false
		}
		for i := range pattern.Args {
			if !matchTerm(pattern.Args[i], ground.Args[i], sub) {
				return false
			}
		}
		return true
	default:
		return false
	}
}

// applySubst instantiates a clause; reports whether the result is ground.
func applySubst(c fol.Clause, sub map[string]fol.Term) (fol.Clause, bool) {
	// Deterministic order of substitution application.
	vars := make([]string, 0, len(sub))
	for v := range sub {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	gc := make(fol.Clause, len(c))
	groundAll := true
	for i, lit := range c {
		atom := lit.Atom
		for _, v := range vars {
			atom = fol.Subst(atom, v, sub[v])
		}
		if len(fol.FreeVars(atom)) > 0 {
			groundAll = false
		}
		gc[i] = fol.Literal{Neg: lit.Neg, Atom: atom}
	}
	return gc, groundAll
}

// describeStrategy is used in Unknown reasons.
func describeStrategy(s InstStrategy) string {
	return strings.ToLower(s.String()) + " instantiation"
}
