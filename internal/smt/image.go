package smt

// Core persistence: a CoreImage captures everything an Incremental solver
// computed from its base assertions — the hash-consed arena and the
// interned base clauses — so a restored solver skips simplification,
// clausification and re-hash-consing entirely. Restoring replays only the
// cheap post-interning bookkeeping (universe harvest, ground/quantified
// routing, trigger selection); scoped goals, instantiation and learned
// clauses regenerate on the first Solve, exactly as they would after a
// fresh AssertBase.

import (
	"fmt"
	"sort"

	"github.com/privacy-quagmire/quagmire/internal/fol"
)

// CoreImage is the serializable base state of an Incremental solver.
type CoreImage struct {
	// Arena is the flattened hash-consed term/atom store.
	Arena *fol.ArenaImage `json:"arena"`
	// Clauses are the base clauses in assertion order, each literal an
	// fol.ILit (AtomID<<1 | negated) into Arena.
	Clauses [][]int32 `json:"clauses"`
	// SkolemSeq restores the skolem tag counter so formulas asserted after
	// the restore never collide with persisted Skolem symbols.
	SkolemSeq int `json:"skolem_seq"`
	// Placeholders are the ambiguity markers seen in base assertions.
	Placeholders []string `json:"placeholders,omitempty"`
}

// Image exports the solver's base state. Only base assertions are
// captured — scoped goals, ground instances and learned clauses are
// per-session and regenerate on the next Solve — so an image taken before
// or after queries restores to the same solver.
func (inc *Incremental) Image() *CoreImage {
	g := inc.g
	img := &CoreImage{
		Arena:     g.arena.Image(),
		Clauses:   make([][]int32, len(g.baseClauses)),
		SkolemSeq: g.skolemSeq,
	}
	for i, ic := range g.baseClauses {
		cl := make([]int32, len(ic))
		for j, l := range ic {
			cl[j] = int32(l)
		}
		img.Clauses[i] = cl
	}
	for p := range inc.placeholders {
		img.Placeholders = append(img.Placeholders, p)
	}
	sort.Strings(img.Placeholders)
	return img
}

// NewIncrementalFromImage reconstructs an incremental solver from a
// persisted image. Clause literals are range-checked against the restored
// arena, so a corrupted image errors instead of panicking. The returned
// solver is behaviorally identical to one built by AssertBase on the
// original formulas.
func NewIncrementalFromImage(lim Limits, strategy InstStrategy, img *CoreImage) (*Incremental, error) {
	if img == nil {
		return nil, fmt.Errorf("smt: nil core image")
	}
	arena, err := fol.LoadArena(img.Arena)
	if err != nil {
		return nil, fmt.Errorf("smt: core image: %w", err)
	}
	if img.SkolemSeq < 0 {
		return nil, fmt.Errorf("smt: core image: negative skolem sequence %d", img.SkolemSeq)
	}
	inc := NewIncremental(lim, strategy)
	g := inc.g
	g.arena = arena
	numAtoms := arena.NumAtoms()
	for i, cl := range img.Clauses {
		ic := make(fol.IClause, len(cl))
		for j, raw := range cl {
			l := fol.ILit(raw)
			if raw < 0 || int(l.Atom()) >= numAtoms {
				return nil, fmt.Errorf("smt: core image: clause %d literal %d out of range", i, raw)
			}
			ic[j] = l
		}
		// Keep a copy for re-export before addInterned (which may
		// canonicalize ground clauses in place).
		cp := make(fol.IClause, len(ic))
		copy(cp, ic)
		g.baseClauses = append(g.baseClauses, cp)
		g.addInterned(ic, 0)
	}
	g.skolemSeq = img.SkolemSeq
	for _, p := range img.Placeholders {
		inc.placeholders[p] = true
	}
	return inc, nil
}
