package smt

import (
	"context"
	"fmt"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/fol"
)

// triggerBase builds an Incremental with the axiom ∀x. p(x) → q(x) and n
// facts p(c0)..p(c<n-1>) under the trigger-based strategy.
func triggerBase(t *testing.T, n int) *Incremental {
	t.Helper()
	inc := NewIncremental(Limits{MaxInstantiations: 20000, MaxRounds: 6}, TriggerBased)
	axiom := fol.Forall("x", fol.Implies(fol.Pred("p", fol.Var("x")), fol.Pred("q", fol.Var("x"))))
	if err := inc.AssertBase(axiom); err != nil {
		t.Fatalf("AssertBase axiom: %v", err)
	}
	for i := 0; i < n; i++ {
		if err := inc.AssertBase(fol.Pred("p", fol.Const(fmt.Sprintf("c%d", i)))); err != nil {
			t.Fatalf("AssertBase fact %d: %v", i, err)
		}
	}
	return inc
}

// TestTriggerIndexCostIsIncremental pins the O(new atoms) property of the
// per-round trigger index: each distinct ground atom enters the index
// exactly once over the life of the core, so re-solving (new rounds, new
// goals) must not re-index the existing atom set. The old implementation
// rebuilt a string-keyed index every round, making k rounds cost
// k × |atoms|; this test fails against that behavior.
func TestTriggerIndexCostIsIncremental(t *testing.T) {
	ctx := context.Background()
	const n = 24
	inc := triggerBase(t, n)

	// First solve instantiates the axiom for every p(ci) candidate and
	// indexes each distinct atom once: p(ci) and q(ci) for every i.
	res := inc.Solve(ctx, fol.Not(fol.Pred("q", fol.Const("c0"))))
	if res.Status != Unsat {
		t.Fatalf("first goal: want Unsat, got %v (%s)", res.Status, res.Reason)
	}
	opsAfterFirst := inc.IndexOps()
	if opsAfterFirst < n || opsAfterFirst > 4*n {
		t.Fatalf("first solve indexed %d atoms; want Θ(n)=Θ(%d)", opsAfterFirst, n)
	}

	// Subsequent solves reuse the index: every goal atom q(ci) is already
	// indexed via the axiom instances, so the per-solve index delta must be
	// O(1), independent of both the base size and the solve count.
	const extraSolves = 8
	for i := 1; i <= extraSolves; i++ {
		res := inc.Solve(ctx, fol.Not(fol.Pred("q", fol.Const(fmt.Sprintf("c%d", i)))))
		if res.Status != Unsat {
			t.Fatalf("goal %d: want Unsat, got %v (%s)", i, res.Status, res.Reason)
		}
		if res.Stats.Instantiations != 0 {
			t.Errorf("goal %d: %d new instantiations; base candidates must be matched at most once ever",
				i, res.Stats.Instantiations)
		}
	}
	delta := inc.IndexOps() - opsAfterFirst
	if delta > 2*extraSolves {
		t.Fatalf("%d re-solves grew the index by %d ops; want O(1) per solve, independent of the %d-atom index",
			extraSolves, delta, opsAfterFirst)
	}

	// Scaling: doubling the base roughly doubles the one-time indexing cost
	// (it stays proportional to distinct atoms, not rounds × atoms).
	incBig := triggerBase(t, 2*n)
	if res := incBig.Solve(ctx, fol.Not(fol.Pred("q", fol.Const("c0")))); res.Status != Unsat {
		t.Fatalf("big base: want Unsat, got %v", res.Status)
	}
	if got := incBig.IndexOps(); got > 3*opsAfterFirst {
		t.Fatalf("2x base indexed %d atoms vs %d for 1x; want ~linear scaling", got, opsAfterFirst)
	}
}

// TestIncrementalClauseReuse checks that the shared dedup table answers
// repeated ground clauses instead of growing the SAT core: two symmetric
// instantiation tuples of ∀x∀y. r(x,y) ∨ r(y,x) produce the same canonical
// clause, and the second must count as reused.
func TestIncrementalClauseReuse(t *testing.T) {
	ctx := context.Background()
	inc := NewIncremental(Limits{MaxInstantiations: 20000, MaxRounds: 4}, FullGrounding)
	sym := fol.Forall("x", fol.Forall("y",
		fol.Or(fol.Pred("r", fol.Var("x"), fol.Var("y")), fol.Pred("r", fol.Var("y"), fol.Var("x")))))
	if err := inc.AssertBase(sym, fol.Pred("p", fol.Const("a")), fol.Pred("p", fol.Const("b"))); err != nil {
		t.Fatalf("AssertBase: %v", err)
	}
	if res := inc.Solve(ctx, nil); res.Status != Sat {
		t.Fatalf("base alone: want Sat, got %v (%s)", res.Status, res.Reason)
	}
	m := inc.Metrics()
	// Tuples (a,b) and (b,a) canonicalize to the same clause; (a,a) and
	// (b,b) each shrink to a unit. At least one dedup hit is guaranteed.
	if m.ReusedClauses == 0 {
		t.Fatalf("symmetric instantiation produced no dedup hits; metrics %+v", m)
	}
	if m.InternedTerms == 0 || m.InternedAtoms == 0 {
		t.Fatalf("arena counters not populated: %+v", m)
	}
}

// TestIncrementalGoalIsolation checks goal retirement: an unsatisfiable
// goal must not contaminate later solves on the same core, and base-only
// solves stay Sat throughout.
func TestIncrementalGoalIsolation(t *testing.T) {
	ctx := context.Background()
	inc := NewIncremental(Limits{}, FullGrounding)
	if err := inc.AssertBase(fol.Pred("p", fol.Const("a"))); err != nil {
		t.Fatalf("AssertBase: %v", err)
	}
	contradiction := fol.Not(fol.Pred("p", fol.Const("a")))
	tautGoal := fol.Pred("p", fol.Const("a"))
	sequence := []struct {
		goal *fol.Formula
		want Status
	}{
		{nil, Sat},
		{contradiction, Unsat},
		{nil, Sat}, // the retired contradiction must not leak
		{tautGoal, Sat},
		{contradiction, Unsat}, // and Unsat is reproducible after a Sat
		{nil, Sat},
	}
	for i, step := range sequence {
		res := inc.Solve(ctx, step.goal)
		if res.Status != step.want {
			t.Fatalf("step %d: want %v, got %v (%s)", i, step.want, res.Status, res.Reason)
		}
	}
	if m := inc.Metrics(); m.Solves != len(sequence) {
		t.Fatalf("Solves = %d, want %d", m.Solves, len(sequence))
	}
}

// TestIncrementalConds checks per-call assumed conditions: they hold for
// one Solve only.
func TestIncrementalConds(t *testing.T) {
	ctx := context.Background()
	inc := NewIncremental(Limits{}, FullGrounding)
	// base: cond → q
	if err := inc.AssertBase(fol.Implies(fol.UninterpretedPred("cond"), fol.Pred("q", fol.Const("a")))); err != nil {
		t.Fatalf("AssertBase: %v", err)
	}
	notQ := fol.Not(fol.Pred("q", fol.Const("a")))
	if res := inc.Solve(ctx, notQ); res.Status != Sat {
		t.Fatalf("¬q without cond: want Sat, got %v", res.Status)
	}
	if res := inc.Solve(ctx, notQ, fol.UninterpretedPred("cond")); res.Status != Unsat {
		t.Fatalf("¬q under cond: want Unsat, got %v", res.Status)
	}
	res := inc.Solve(ctx, notQ)
	if res.Status != Sat {
		t.Fatalf("¬q after cond retired: want Sat, got %v", res.Status)
	}
	if len(res.Placeholders) != 1 || res.Placeholders[0] != "cond" {
		t.Fatalf("placeholders = %v, want [cond]", res.Placeholders)
	}
}
