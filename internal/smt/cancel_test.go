package smt

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/fol"
)

// bigQuantifiedProblem builds ∀x,y,z-style clauses over many constants so
// full grounding enumerates a large odometer space — plenty of ctx polls.
func bigQuantifiedProblem(constants int) *fol.Formula {
	trans := fol.Forall("x", fol.Forall("y", fol.Forall("z",
		fol.Implies(
			fol.And(
				fol.Pred("subtype", fol.Var("x"), fol.Var("y")),
				fol.Pred("subtype", fol.Var("y"), fol.Var("z")),
			),
			fol.Pred("subtype", fol.Var("x"), fol.Var("z")),
		))))
	parts := []*fol.Formula{trans}
	for i := 0; i < constants; i++ {
		parts = append(parts, fol.Pred("subtype",
			fol.Const(fmt.Sprintf("c%d", i)), fol.Const(fmt.Sprintf("c%d", (i+1)%constants))))
	}
	return fol.And(parts...)
}

func TestCheckSatCtxPreCanceledReturnsImmediately(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := NewSolver()
	s.Assert(bigQuantifiedProblem(10))
	res := s.CheckSatCtx(ctx)
	if res.Status != Unknown {
		t.Fatalf("status = %v, want Unknown", res.Status)
	}
	if res.Reason != canceledReason {
		t.Errorf("reason = %q, want %q", res.Reason, canceledReason)
	}
	if res.Stats.Instantiations != 0 {
		t.Errorf("pre-cancelled check still instantiated %d clauses", res.Stats.Instantiations)
	}
}

// countdownCtx reports Canceled after its Err budget is exhausted — a
// deterministic stand-in for "the context was cancelled mid-solve". The
// solver polls Err inside its hot loops, so the countdown lands inside
// the instantiation odometer without any timing dependence.
type countdownCtx struct {
	context.Context
	polls atomic.Int64
}

func (c *countdownCtx) Err() error {
	if c.polls.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

func TestCheckSatCtxCancelMidInstantiation(t *testing.T) {
	// Uncancelled baseline: the same problem needs many instantiations.
	base := NewSolver()
	base.Assert(bigQuantifiedProblem(8)) // 8^3 = 512 transitivity instances
	full := base.CheckSat()
	if full.Stats.Instantiations < 100 {
		t.Fatalf("baseline too small to be meaningful: %d instantiations", full.Stats.Instantiations)
	}

	ctx := &countdownCtx{Context: context.Background()}
	ctx.polls.Store(50)
	s := NewSolver()
	s.Assert(bigQuantifiedProblem(8))
	res := s.CheckSatCtx(ctx)
	if res.Status != Unknown || res.Reason != canceledReason {
		t.Fatalf("mid-solve cancel: status %v reason %q, want Unknown %q", res.Status, res.Reason, canceledReason)
	}
	if res.Stats.Instantiations >= full.Stats.Instantiations {
		t.Errorf("cancelled solve ran to completion: %d instantiations (full run: %d)",
			res.Stats.Instantiations, full.Stats.Instantiations)
	}
}

func TestCheckSatCtxCancelMidTriggerInstantiation(t *testing.T) {
	// The trigger literal collect(x, y) binds both variables, so E-matching
	// enumerates every ground collect fact — one ctx poll per candidate.
	rule := fol.Forall("x", fol.Forall("y",
		fol.Implies(
			fol.Pred("collect", fol.Var("x"), fol.Var("y")),
			fol.Pred("disclosed", fol.Var("x"), fol.Var("y")),
		)))
	parts := []*fol.Formula{rule}
	for i := 0; i < 40; i++ {
		parts = append(parts, fol.Pred("collect",
			fol.Const(fmt.Sprintf("a%d", i)), fol.Const(fmt.Sprintf("d%d", i))))
	}
	ctx := &countdownCtx{Context: context.Background()}
	ctx.polls.Store(5)
	s := NewSolver()
	s.Strategy = TriggerBased
	s.Assert(fol.And(parts...))
	res := s.CheckSatCtx(ctx)
	if res.Status != Unknown || res.Reason != canceledReason {
		t.Fatalf("trigger-based cancel: status %v reason %q, want Unknown %q", res.Status, res.Reason, canceledReason)
	}
}

func TestRunScriptCtxCanceledChecks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := RunScriptCtx(ctx, satScript, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 {
		t.Fatalf("results = %d, want 1", len(results))
	}
	if results[0].Status != Unknown || results[0].Reason != canceledReason {
		t.Errorf("cancelled script check = %v %q, want Unknown %q",
			results[0].Status, results[0].Reason, canceledReason)
	}
}

func TestSolveScriptCachedCtxDoesNotCacheCanceledSolves(t *testing.T) {
	c := NewResultCache(0)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveScriptCachedCtx(ctx, c, satScript, Limits{}); err == nil {
		t.Fatal("cancelled cached solve should surface ctx error")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("cancelled result was cached: %+v", st)
	}
	// A later call with a live context must get a real answer.
	res, err := SolveScriptCachedCtx(context.Background(), c, satScript, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Sat {
		t.Errorf("status = %v, want sat", res.Status)
	}
	if res.Stats.FromCache {
		t.Error("fresh solve after cancellation must not be marked FromCache")
	}
}

// TestCheckSatReportsElapsed is the regression test for the stamp-via-defer
// bug: check() had an unnamed result, so its deferred
// "res.Stats.Elapsed = time.Since(start)" mutated a dead local and every
// non-cached Result reported Elapsed == 0 — making cache-hit lookup times
// indistinguishable from real solves and zeroing the solve-latency
// histogram.
func TestCheckSatReportsElapsed(t *testing.T) {
	s := NewSolver()
	s.Assert(bigQuantifiedProblem(12))
	res := s.CheckSat()
	if res.Stats.Instantiations == 0 {
		t.Fatal("problem too small to exercise the solver")
	}
	if res.Stats.Elapsed <= 0 {
		t.Errorf("Elapsed = %v, want > 0 for a real solve", res.Stats.Elapsed)
	}
}
