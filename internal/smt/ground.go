package smt

import (
	"context"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/fol"
	"github.com/privacy-quagmire/quagmire/internal/sat"
)

// qClause is one quantified (non-ground) clause awaiting instantiation.
type qClause struct {
	lits fol.IClause
	vars []fol.Sym
	// sel, when non-zero, is the selector literal appended (negated) to
	// every instance, so the clause is active only under that assumption.
	sel sat.Lit
	// trigger is the E-matching pattern atom (TriggerBased).
	trigger    fol.AtomID
	hasTrigger bool
	// candPos is the next unprocessed candidate position in the trigger
	// predicate's atom index — candidates are consumed incrementally, so
	// a round's matching cost is proportional to atoms added since the
	// previous round, never to the whole index.
	candPos int
	// uniDone is the universe size this clause has been fully
	// instantiated against (FullGrounding): a later round enumerates only
	// tuples containing at least one newer term.
	uniDone int
	// dead marks clauses of retired goal scopes: their ground instances
	// remain (disabled by the selector) but no further instantiation.
	dead bool
}

// callStats accumulates per-check effort (the deltas reported in
// Result.Stats for one CheckSat or Incremental solve).
type callStats struct {
	count  int
	rounds int
	ground int
}

// dedupEntry is one canonical ground clause in the dedup table, keyed
// together with its selector (the same clause may legitimately recur
// under a different goal's selector).
type dedupEntry struct {
	lits fol.IClause
	sel  sat.Lit
}

// groundCore is the interned, incremental heart of the solver: hash-consed
// terms and atoms (fol.Arena), the ground clause set handed to the CDCL
// core, quantified clauses with their instantiation progress, the term
// universe and the E-matching atom index. Everything is integer-keyed — no
// String() rendering and no map[string] on the solve path — and all state
// is reused across instantiation rounds, theory-lemma iterations and
// (via Incremental) across whole queries.
type groundCore struct {
	arena    *fol.Arena
	strategy InstStrategy

	core    *sat.Solver
	nextVar int
	atomVar []int        // AtomID -> sat var (0 = unmapped)
	varAtom []fol.AtomID // sat var -> AtomID (-1 for selector vars)

	quant      []qClause
	universe   []fol.TermID
	inUniverse []bool // TermID -> member of universe

	// atomIndex maps predicate symbol -> ground atoms bearing it, in
	// first-seen order. It only ever grows; atomIndexed marks AtomIDs
	// already present so each ground atom is indexed exactly once.
	atomIndex   map[fol.Sym][]fol.AtomID
	atomIndexed []bool
	// indexOps counts atom-index insertions — the regression test asserts
	// it stays O(distinct ground atoms) regardless of round count.
	indexOps int

	clauseTable map[uint64][]dedupEntry

	// hasFuncsBase / hasFuncsScoped record function symbols in the base
	// and current-scope assertions respectively. Scoped state resets when
	// the scope retires, so a past goal's Skolem functions do not
	// permanently degrade later Sat answers to Unknown.
	hasFuncsBase   bool
	hasFuncsScoped bool
	// complete records whether the last instantiate call reached a
	// fixpoint over the live clauses, nothing skipped (sound Sat answers
	// require it for quantified problems). Recomputed per call: retired
	// clauses' pending work does not count.
	complete bool

	groundClauses int // distinct ground clauses handed to the SAT core
	dedupHits     int // clauses requested again and answered by the table
	instTotal     int // distinct instances generated over the core's life
	skolemSeq     int // per-addFormula skolem tag sequence

	// baseClauses records every base (sel==0) interned clause in assertion
	// order — the clause half of a CoreImage. Copies, never aliases of
	// clauses the core may canonicalize in place.
	baseClauses []fol.IClause

	scratchSub map[fol.Sym]fol.TermID
	litBuf     []sat.Lit
	termBuf    []fol.TermID
}

func newGroundCore(strategy InstStrategy, maxSatSteps int64) *groundCore {
	core := sat.New()
	core.Budget = maxSatSteps
	return &groundCore{
		arena:       fol.NewArena(),
		strategy:    strategy,
		core:        core,
		atomVar:     []int{},
		atomIndex:   map[fol.Sym][]fol.AtomID{},
		clauseTable: map[uint64][]dedupEntry{},
		complete:    true,
		scratchSub:  map[fol.Sym]fol.TermID{},
	}
}

// satVarOf maps an atom to its SAT variable, allocating on first sight.
func (g *groundCore) satVarOf(a fol.AtomID) sat.Lit {
	g.growAtomTables()
	if v := g.atomVar[a]; v != 0 {
		return sat.Lit(v)
	}
	g.nextVar++
	g.atomVar[a] = g.nextVar
	for len(g.varAtom) <= g.nextVar {
		g.varAtom = append(g.varAtom, -1)
	}
	g.varAtom[g.nextVar] = a
	return sat.Lit(g.nextVar)
}

// newSelector allocates a fresh SAT variable with no atom attached.
func (g *groundCore) newSelector() sat.Lit {
	g.nextVar++
	for len(g.varAtom) <= g.nextVar {
		g.varAtom = append(g.varAtom, -1)
	}
	return sat.Lit(g.nextVar)
}

func (g *groundCore) growAtomTables() {
	for len(g.atomVar) < g.arena.NumAtoms() {
		g.atomVar = append(g.atomVar, 0)
	}
	for len(g.atomIndexed) < g.arena.NumAtoms() {
		g.atomIndexed = append(g.atomIndexed, false)
	}
}

func (g *groundCore) growTermTables() {
	for len(g.inUniverse) < g.arena.NumTerms() {
		g.inUniverse = append(g.inUniverse, false)
	}
}

// addUniverseTerm adds a ground term to the instantiation universe.
func (g *groundCore) addUniverseTerm(id fol.TermID) {
	g.growTermTables()
	if g.inUniverse[id] {
		return
	}
	g.inUniverse[id] = true
	g.universe = append(g.universe, id)
}

// harvestConstants walks a term and adds its constant leaves to the
// universe (the seed universe, mirroring collectConstants).
func (g *groundCore) harvestConstants(id fol.TermID) {
	switch g.arena.TermKindOf(id) {
	case fol.TermConst:
		g.addUniverseTerm(id)
	case fol.TermApp:
		for _, arg := range g.arena.TermArgs(id) {
			g.harvestConstants(arg)
		}
	}
}

// termContainsApp reports whether the term contains a function application.
func (g *groundCore) termContainsApp(id fol.TermID) bool {
	if g.arena.TermKindOf(id) == fol.TermApp {
		return true
	}
	for _, arg := range g.arena.TermArgs(id) {
		if g.termContainsApp(arg) {
			return true
		}
	}
	return false
}

// seenClause records the canonical clause+selector in the dedup table and
// reports whether it was already present.
func (g *groundCore) seenClause(c fol.IClause, sel sat.Lit) bool {
	h := uint64(14695981039346656037)
	mix := func(v uint64) { h = (h ^ v) * 1099511628211 }
	mix(uint64(int64(sel)) + 1)
	for _, l := range c {
		mix(uint64(l) + 1)
	}
	for _, prev := range g.clauseTable[h] {
		if prev.sel != sel || len(prev.lits) != len(c) {
			continue
		}
		same := true
		for i := range c {
			if prev.lits[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	stored := make(fol.IClause, len(c))
	copy(stored, c)
	g.clauseTable[h] = append(g.clauseTable[h], dedupEntry{lits: stored, sel: sel})
	return false
}

// indexGroundAtoms adds the clause's ground predicate atoms to the
// E-matching index (each atom exactly once, ever).
func (g *groundCore) indexGroundAtoms(c fol.IClause) {
	g.growAtomTables()
	for _, l := range c {
		a := l.Atom()
		if g.atomIndexed[a] || g.arena.AtomEq(a) || !g.arena.AtomGround(a) {
			continue
		}
		g.atomIndexed[a] = true
		sym := g.arena.AtomPred(a)
		g.atomIndex[sym] = append(g.atomIndex[sym], a)
		g.indexOps++
	}
}

// addGround canonicalizes a ground clause and hands it to the SAT core
// unless it is a tautology or a duplicate. harvestAll selects full ground
// subterm harvesting (instances) vs constant-only seeding (asserted
// clauses). It reports whether the clause was new.
func (g *groundCore) addGround(c fol.IClause, sel sat.Lit, harvestAll bool) bool {
	c = c.Canon()
	if c.Tautology() {
		return false
	}
	if g.seenClause(c, sel) {
		g.dedupHits++
		return false
	}
	lits := g.litBuf[:0]
	for _, l := range c {
		v := g.satVarOf(l.Atom())
		if l.Neg() {
			v = v.Neg()
		}
		lits = append(lits, v)
	}
	if sel != 0 {
		lits = append(lits, sel.Neg())
	}
	g.litBuf = lits[:0]
	g.core.AddClause(lits...)
	g.groundClauses++
	g.indexGroundAtoms(c)
	if harvestAll {
		for _, l := range c {
			for _, arg := range g.arena.AtomArgs(l.Atom()) {
				g.termBuf = g.arena.GroundSubterms(arg, g.termBuf[:0])
				for _, sub := range g.termBuf {
					g.addUniverseTerm(sub)
				}
			}
		}
	}
	return true
}

// pickTriggerInterned selects the literal whose atom covers the most
// clause variables; the trigger must bind every variable of the clause.
func (g *groundCore) pickTriggerInterned(lits fol.IClause, vars []fol.Sym) (fol.AtomID, bool) {
	var best fol.AtomID
	found := false
	bestCover := -1
	var buf []fol.Sym
	for _, l := range lits {
		a := l.Atom()
		if g.arena.AtomEq(a) {
			continue
		}
		buf = g.arena.AtomVars(a, buf[:0])
		if len(buf) > bestCover {
			best = a
			bestCover = len(buf)
			found = true
		}
	}
	if !found || bestCover < len(vars) {
		return 0, false
	}
	return best, true
}

// addFormula clausifies an assertion and feeds it to the core. sel (when
// non-zero) scopes every resulting clause — original and instances — to
// that selector. Clausification failures are returned verbatim.
func (g *groundCore) addFormula(f *fol.Formula, sel sat.Lit) error {
	tag := ""
	if g.skolemSeq > 0 {
		tag = "@" + itoa(g.skolemSeq)
	}
	g.skolemSeq++
	clauses, err := fol.ClausesOfTagged(fol.Simplify(f), tag)
	if err != nil {
		return err
	}
	for _, c := range clauses {
		ic := g.arena.InternClause(c)
		if sel == 0 {
			// Record the interned base clause for CoreImage export. A copy,
			// not the slice itself: addGround canonicalizes ground clauses
			// in place.
			cp := make(fol.IClause, len(ic))
			copy(cp, ic)
			g.baseClauses = append(g.baseClauses, cp)
		}
		g.addInterned(ic, sel)
	}
	return nil
}

// addInterned feeds one already-interned clause to the core: harvest its
// constants into the universe, note function symbols (they break grounding
// completeness), then route ground clauses to the SAT core and quantified
// ones to the instantiation queue. Shared by clausification (addFormula)
// and image restore (NewIncrementalFromImage), which skips clausification
// because the interned clauses were persisted.
func (g *groundCore) addInterned(ic fol.IClause, sel sat.Lit) {
	for _, l := range ic {
		for _, arg := range g.arena.AtomArgs(l.Atom()) {
			g.harvestConstants(arg)
			if g.termContainsApp(arg) {
				if sel == 0 {
					g.hasFuncsBase = true
				} else {
					g.hasFuncsScoped = true
				}
			}
		}
	}
	vars := g.arena.ClauseVars(ic)
	if len(vars) == 0 {
		g.addGround(ic, sel, false)
		return
	}
	qc := qClause{lits: ic, vars: vars, sel: sel}
	if g.strategy == TriggerBased {
		qc.trigger, qc.hasTrigger = g.pickTriggerInterned(ic, vars)
	}
	g.quant = append(g.quant, qc)
}

// itoa is strconv.Itoa without the import weight in this hot file.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// instantiate grounds the live quantified clauses to fixpoint under the
// limits, incrementally: full grounding enumerates only substitution
// tuples containing at least one term newer than each clause's last pass,
// and trigger matching consumes only index candidates added since the
// clause's last pass. g.complete records whether instantiation finished
// (fixpoint reached, nothing skipped).
func (g *groundCore) instantiate(ctx context.Context, lim Limits, deadline time.Time, st *callStats) {
	if !g.liveQuant() {
		g.complete = true
		return
	}
	if g.strategy == TriggerBased {
		g.instantiateTrigger(ctx, lim, st)
		return
	}
	g.instantiateFull(ctx, lim, deadline, st)
}

// liveQuant reports whether any non-retired quantified clause exists.
func (g *groundCore) liveQuant() bool {
	for i := range g.quant {
		if !g.quant[i].dead {
			return true
		}
	}
	return false
}

// hasFuncs reports whether the live problem (base plus current scope)
// mentions function symbols.
func (g *groundCore) hasFuncs() bool { return g.hasFuncsBase || g.hasFuncsScoped }

func (g *groundCore) instantiateFull(ctx context.Context, lim Limits, deadline time.Time, st *callStats) {
	if len(g.universe) == 0 {
		g.addUniverseTerm(g.arena.InternConst(g.arena.Sym("$elem")))
	}
	stopped := false
rounds:
	for round := 0; round < lim.MaxRounds; round++ {
		st.rounds = round + 1
		uniLen := len(g.universe)
		for qi := range g.quant {
			qc := &g.quant[qi]
			if qc.dead || qc.uniDone >= uniLen {
				continue
			}
			if !g.enumerateNew(ctx, lim, deadline, st, qc, uniLen) {
				stopped = true
				break rounds
			}
			qc.uniDone = uniLen
		}
		if len(g.universe) == uniLen {
			break
		}
	}
	// Complete iff every live clause is fully instantiated against the
	// final universe: a budget stop or a growth round past MaxRounds
	// leaves a live clause with uniDone behind the universe. Retired
	// clauses' pending work is irrelevant (their instances are disabled).
	g.complete = !stopped
	for i := range g.quant {
		qc := &g.quant[i]
		if !qc.dead && qc.uniDone < len(g.universe) {
			g.complete = false
		}
	}
}

// enumerateNew instantiates one clause over every tuple of universe
// indices in [0, uniLen) that includes at least one index >= qc.uniDone.
// It returns false when a budget, the deadline or ctx stopped enumeration
// early.
func (g *groundCore) enumerateNew(ctx context.Context, lim Limits, deadline time.Time, st *callStats, qc *qClause, uniLen int) bool {
	k := len(qc.vars)
	idxs := make([]int, k)
	// Partition by the first position holding a new term: positions
	// before j range over old terms only, j over new terms, after j over
	// everything.
	for j := 0; j < k; j++ {
		if qc.uniDone == 0 && j > 0 {
			break // only the j=0 block is nonempty when nothing is old
		}
		lo := func(i int) int {
			if i == j {
				return qc.uniDone
			}
			return 0
		}
		hi := func(i int) int {
			if i < j {
				return qc.uniDone
			}
			return uniLen
		}
		empty := false
		for i := 0; i < k; i++ {
			idxs[i] = lo(i)
			if idxs[i] >= hi(i) {
				empty = true
			}
		}
		if empty {
			continue
		}
		for {
			if st.count >= lim.MaxInstantiations {
				return false
			}
			if ctx.Err() != nil {
				return false
			}
			if !deadline.IsZero() && time.Now().After(deadline) {
				return false
			}
			g.instantiateTuple(st, qc, idxs)
			// Advance the mixed-radix odometer.
			p := k - 1
			for ; p >= 0; p-- {
				idxs[p]++
				if idxs[p] < hi(p) {
					break
				}
				idxs[p] = lo(p)
			}
			if p < 0 {
				break
			}
		}
	}
	return true
}

// instantiateTuple applies one substitution tuple to the clause and adds
// the resulting ground instance.
func (g *groundCore) instantiateTuple(st *callStats, qc *qClause, idxs []int) {
	sub := g.scratchSub
	for s := range sub {
		delete(sub, s)
	}
	for vi, v := range qc.vars {
		sub[v] = g.universe[idxs[vi]]
	}
	inst := make(fol.IClause, len(qc.lits))
	for i, l := range qc.lits {
		inst[i] = fol.MkILit(g.arena.SubstAtom(l.Atom(), sub), l.Neg())
	}
	if g.addGround(inst, qc.sel, true) {
		st.count++
		g.instTotal++
	}
}

func (g *groundCore) instantiateTrigger(ctx context.Context, lim Limits, st *callStats) {
	// Trigger instantiation is never exhaustive over the universe: a model
	// over the instances does not imply satisfiability while any live
	// quantified clause exists.
	g.complete = false
	stopped := false
	for round := 0; round < lim.MaxRounds; round++ {
		st.rounds = round + 1
		grew := false
		for qi := range g.quant {
			qc := &g.quant[qi]
			if qc.dead {
				continue
			}
			if !qc.hasTrigger {
				continue
			}
			sym := g.arena.AtomPred(qc.trigger)
			for qc.candPos < len(g.atomIndex[sym]) {
				if st.count >= lim.MaxInstantiations || ctx.Err() != nil {
					stopped = true
					break
				}
				cand := g.atomIndex[sym][qc.candPos]
				qc.candPos++
				sub := g.scratchSub
				for s := range sub {
					delete(sub, s)
				}
				if !g.arena.MatchAtom(qc.trigger, cand, sub) {
					continue
				}
				inst := make(fol.IClause, len(qc.lits))
				ground := true
				for i, l := range qc.lits {
					a := g.arena.SubstAtom(l.Atom(), sub)
					if !g.arena.AtomGround(a) {
						ground = false
						break
					}
					inst[i] = fol.MkILit(a, l.Neg())
				}
				if !ground {
					// Leftover variables outside the trigger: skip, losing
					// completeness (already conceded) but keeping soundness.
					continue
				}
				if g.addGround(inst, qc.sel, false) {
					st.count++
					g.instTotal++
					grew = true
				}
			}
			if stopped {
				break
			}
		}
		if stopped || !grew {
			break
		}
	}
}

// retireScoped marks every quantified clause bearing a selector as dead:
// its ground instances stay in the SAT core (disabled unless the selector
// is assumed again) but it no longer participates in instantiation or in
// the completeness verdict. Scoped function-symbol tracking resets with
// the scope.
func (g *groundCore) retireScoped() {
	for i := range g.quant {
		if g.quant[i].sel != 0 {
			g.quant[i].dead = true
		}
	}
	g.hasFuncsScoped = false
}

// solveLoop is the DPLL(T) refinement loop: SAT-solve (under the given
// assumptions), theory-check the model, add a blocking lemma, repeat.
// Blocking lemmas are theory-valid, so they are added unconditionally and
// persist across incremental solves. The result's Status/Reason/Model
// fields are filled in; callers fill the rest of Stats.
func (g *groundCore) solveLoop(ctx context.Context, lim Limits, deadline time.Time, res *Result, assumptions []sat.Lit) {
	for lemmas := 0; ; lemmas++ {
		if ctx.Err() != nil {
			res.Status = Unknown
			res.Reason = canceledReason
			res.Stats.SAT = g.core.Stats()
			return
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			res.Status = Unknown
			res.Reason = "timeout"
			res.Stats.SAT = g.core.Stats()
			return
		}
		if lemmas > lim.MaxTheoryLemmas {
			res.Status = Unknown
			res.Reason = "theory lemma budget exhausted"
			res.Stats.SAT = g.core.Stats()
			return
		}
		switch g.core.Solve(assumptions...) {
		case sat.Unsat:
			res.Status = Unsat
			res.Stats.SAT = g.core.Stats()
			res.Stats.TheoryLemmas = lemmas
			return
		case sat.Unknown:
			res.Status = Unknown
			res.Reason = "SAT step budget exhausted"
			res.Stats.SAT = g.core.Stats()
			res.Stats.TheoryLemmas = lemmas
			return
		}
		conflict := g.theoryConflict()
		if conflict == nil {
			res.Stats.SAT = g.core.Stats()
			res.Stats.TheoryLemmas = lemmas
			// A model was found. It is definitive only when instantiation
			// was complete for a fragment where grounding is exhaustive.
			if g.liveQuant() && (!g.complete || g.hasFuncs()) {
				res.Status = Unknown
				res.Reason = "model found but quantifier instantiation incomplete"
				return
			}
			res.Status = Sat
			res.Model = map[string]bool{}
			for v := 1; v <= g.nextVar; v++ {
				a := g.varAtom[v]
				if a < 0 || g.arena.AtomEq(a) || len(g.arena.AtomArgs(a)) != 0 {
					continue
				}
				res.Model[g.arena.SymName(g.arena.AtomPred(a))] = g.core.Value(v)
			}
			return
		}
		g.core.AddClause(conflict...)
	}
}

// atomCount reports how many distinct atoms are mapped to SAT variables
// (selector variables excluded).
func (g *groundCore) atomCount() int {
	n := 0
	for v := 1; v <= g.nextVar; v++ {
		if g.varAtom[v] >= 0 {
			n++
		}
	}
	return n
}

// placeholderNames returns the sorted uninterpreted predicate names seen
// among interned atoms.
func (g *groundCore) placeholderNames() []string {
	seen := map[string]bool{}
	var out []string
	for a := 0; a < g.arena.NumAtoms(); a++ {
		id := fol.AtomID(a)
		if !g.arena.AtomUninterpreted(id) {
			continue
		}
		name := g.arena.SymName(g.arena.AtomPred(id))
		if !seen[name] {
			seen[name] = true
			out = append(out, name)
		}
	}
	return out
}
