package smt

import (
	"context"
	"sort"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/fol"
	"github.com/privacy-quagmire/quagmire/internal/sat"
)

// IncrementalMetrics is a snapshot of the reuse counters of an Incremental
// solver — the numbers that justify keeping one core alive across queries.
type IncrementalMetrics struct {
	// InternedTerms / InternedAtoms count distinct hash-consed objects in
	// the solver's arena.
	InternedTerms int
	InternedAtoms int
	// ReusedClauses counts ground clauses that were requested again (by a
	// later goal or instantiation round) and answered by the dedup table
	// instead of re-entering the SAT core.
	ReusedClauses int
	// GroundClauses counts distinct clauses handed to the SAT core over
	// the solver's lifetime.
	GroundClauses int
	// Instantiations counts distinct ground instances generated over the
	// solver's lifetime.
	Instantiations int
	// Solves counts Solve calls answered on the shared core.
	Solves int
	// LearnedRetained is the number of learned clauses currently kept in
	// the boolean core (reused by the next Solve).
	LearnedRetained int
}

// Incremental is a long-lived SMT solver that keeps one interned ground
// core alive across queries. Base assertions are clausified, hash-consed
// and grounded once; each Solve scopes its goal behind a fresh selector
// literal and re-solves the shared boolean core under that assumption.
// Terms, atoms, ground clauses, quantifier instantiations, learned clauses
// and variable activities all carry over, so a batch of queries against
// the same base pays the encoding cost once.
//
// Soundness of goal retirement: a retired goal's clauses stay in the core
// guarded by ¬selector; with the selector unasserted, any model satisfies
// them vacuously, so they never constrain later queries. An Incremental
// solver is not safe for concurrent use; callers serialize access.
type Incremental struct {
	// Limits bounds effort per Solve call; the zero value uses defaults.
	Limits Limits
	// Strategy selects the quantifier-instantiation scheme; fixed at
	// construction.
	Strategy InstStrategy

	g            *groundCore
	placeholders map[string]bool
	baseErr      error
	solves       int
}

// NewIncremental returns an empty incremental solver using the given
// limits and instantiation strategy.
func NewIncremental(lim Limits, strategy InstStrategy) *Incremental {
	return &Incremental{
		Limits:       lim,
		Strategy:     strategy,
		g:            newGroundCore(strategy, lim.withDefaults().MaxSatSteps),
		placeholders: map[string]bool{},
	}
}

// AssertBase adds permanent assertions (clausified and interned
// immediately; grounded lazily at the next Solve). A clausification error
// is returned now and also poisons future Solve calls, mirroring check's
// "clausification failed" Unknown.
func (inc *Incremental) AssertBase(fs ...*fol.Formula) error {
	for _, f := range fs {
		inc.notePlaceholders(f)
		if err := inc.g.addFormula(f, 0); err != nil {
			inc.baseErr = err
			return err
		}
	}
	return nil
}

func (inc *Incremental) notePlaceholders(f *fol.Formula) {
	for _, u := range f.UninterpretedAtoms() {
		inc.placeholders[u] = true
	}
}

// Solve decides satisfiability of base ∧ goal ∧ conds. The goal and the
// extra per-call conditions live behind a selector assumption valid for
// this call only; the base encoding and everything learned is shared with
// every other Solve on this receiver. A nil goal solves the base alone.
func (inc *Incremental) Solve(ctx context.Context, goal *fol.Formula, conds ...*fol.Formula) (res Result) {
	start := time.Now()
	lim := inc.Limits.withDefaults()
	deadline := time.Time{}
	if lim.Timeout > 0 {
		deadline = start.Add(lim.Timeout)
	}
	defer func() { res.Stats.Elapsed = time.Since(start) }()

	inc.solves++
	g := inc.g

	// Retire the previous call's scoped clauses before adding this one's.
	g.retireScoped()

	if ctx.Err() != nil {
		res.Status = Unknown
		res.Reason = canceledReason
		return res
	}
	if inc.baseErr != nil {
		res.Status = Unknown
		res.Reason = "clausification failed: " + inc.baseErr.Error()
		return res
	}

	scoped := conds
	if goal != nil {
		scoped = append([]*fol.Formula{goal}, conds...)
	}
	var satAssumptions []sat.Lit
	if len(scoped) > 0 {
		s := g.newSelector()
		for _, f := range scoped {
			inc.notePlaceholders(f)
			if err := g.addFormula(f, s); err != nil {
				res.Status = Unknown
				res.Reason = "clausification failed: " + err.Error()
				return res
			}
		}
		satAssumptions = append(satAssumptions, s)
	}
	for p := range inc.placeholders {
		res.Placeholders = append(res.Placeholders, p)
	}
	sort.Strings(res.Placeholders)

	clausesBefore := g.groundClauses
	var st callStats
	g.instantiate(ctx, lim, deadline, &st)
	res.Stats.Instantiations = st.count
	res.Stats.Rounds = st.rounds
	if ctx.Err() != nil {
		res.Status = Unknown
		res.Reason = canceledReason
		return res
	}
	// GroundClauses reports this call's contribution; cumulative totals
	// live in Metrics.
	res.Stats.GroundClauses = g.groundClauses - clausesBefore
	res.Stats.Atoms = g.atomCount()

	g.solveLoop(ctx, lim, deadline, &res, satAssumptions)
	return res
}

// Metrics returns the reuse counters accumulated so far.
func (inc *Incremental) Metrics() IncrementalMetrics {
	return IncrementalMetrics{
		InternedTerms:   inc.g.arena.NumTerms(),
		InternedAtoms:   inc.g.arena.NumAtoms(),
		ReusedClauses:   inc.g.dedupHits,
		GroundClauses:   inc.g.groundClauses,
		Instantiations:  inc.g.instTotal,
		Solves:          inc.solves,
		LearnedRetained: inc.g.core.NumLearned(),
	}
}

// IndexOps reports cumulative trigger-index insertions (each distinct
// ground atom is indexed exactly once, ever — the O(new atoms) property
// the regression test pins down).
func (inc *Incremental) IndexOps() int { return inc.g.indexOps }
