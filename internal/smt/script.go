package smt

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"github.com/privacy-quagmire/quagmire/internal/smtlib"
)

// RunScript executes an SMT-LIB v2 script against a fresh solver and
// returns one Result per check-sat / check-sat-assuming command, in order.
// push/pop commands manage assertion scopes exactly as in the standard.
func RunScript(src string, limits Limits) ([]Result, error) {
	return RunScriptCtx(context.Background(), src, limits)
}

// RunScriptCtx is RunScript with cancellation: each check-sat polls the
// context inside its instantiation and refinement loops, so a cancelled
// caller stops burning CPU promptly. Checks reached after cancellation
// report Unknown with reason "canceled".
func RunScriptCtx(ctx context.Context, src string, limits Limits) ([]Result, error) {
	cmds, err := smtlib.Parse(src)
	if err != nil {
		return nil, err
	}
	// DecodeScript gives us symbol tables for term/formula reconstruction;
	// we re-walk the commands here to honor push/pop ordering.
	prob, err := smtlib.DecodeScript(src)
	if err != nil {
		return nil, err
	}
	solver := NewSolver()
	solver.Limits = limits
	var results []Result
	assertIdx := 0
	for _, cmd := range cmds {
		switch cmd.Head() {
		case "push":
			solver.Push()
		case "pop":
			solver.Pop()
		case "assert":
			if assertIdx >= len(prob.Asserts) {
				return nil, fmt.Errorf("smt: assert/decode mismatch")
			}
			solver.Assert(prob.Asserts[assertIdx])
			assertIdx++
		case "check-sat", "check-sat-assuming":
			results = append(results, solver.CheckSatCtx(ctx))
		}
	}
	return results, nil
}

// SolveScript runs the script and returns the final check-sat result; it is
// the one-shot entry point used by the pipeline ("the final FOL formula is
// checked by an SMT solver").
func SolveScript(src string, limits Limits) (Result, error) {
	return SolveScriptCtx(context.Background(), src, limits)
}

// SolveScriptCtx is SolveScript with cancellation (see RunScriptCtx).
func SolveScriptCtx(ctx context.Context, src string, limits Limits) (Result, error) {
	results, err := RunScriptCtx(ctx, src, limits)
	if err != nil {
		return Result{}, err
	}
	if len(results) == 0 {
		return Result{}, fmt.Errorf("smt: script contains no check-sat command")
	}
	return results[len(results)-1], nil
}

// FormatResult renders a result in solver-output style: the status line
// followed by ;; comment lines for reason and placeholders, mirroring what
// the paper's tooling logs for each query.
func FormatResult(r Result) string {
	var b strings.Builder
	b.WriteString(r.Status.String())
	b.WriteByte('\n')
	if r.Reason != "" {
		fmt.Fprintf(&b, ";; reason: %s\n", r.Reason)
	}
	for _, p := range r.Placeholders {
		fmt.Fprintf(&b, ";; uninterpreted placeholder: %s\n", p)
	}
	if r.Model != nil {
		names := make([]string, 0, len(r.Model))
		for n := range r.Model {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(&b, ";; model: %s = %v\n", n, r.Model[n])
		}
	}
	return b.String()
}
