// Package smt implements a from-scratch SMT solver for quantified formulas
// over uninterpreted functions (UF): a DPLL(T) loop combining the CDCL SAT
// core from internal/sat with a congruence-closure theory solver, plus
// budgeted ground quantifier instantiation, push/pop incremental scopes and
// check-sat-assuming — the feature set of CVC5 that the paper's pipeline
// relies on, with deterministic resource limits so the paper's timeout
// behaviour is reproducible.
package smt

import (
	"fmt"

	"github.com/privacy-quagmire/quagmire/internal/fol"
)

// node is an interned ground term in the congruence closure structure.
type node struct {
	sym  string
	args []int // ids of argument nodes
}

// CC is a congruence closure engine over ground terms. Terms are interned
// to dense ids; Merge unions equivalence classes and propagates congruence
// (f(a)=f(b) when a=b).
type CC struct {
	nodes  []node
	intern map[string]int
	parent []int
	rank   []int
	// uses maps a class representative to the ids of application nodes
	// that have a member of the class as an argument.
	uses map[int][]int
}

// NewCC returns an empty congruence closure engine.
func NewCC() *CC {
	return &CC{intern: map[string]int{}, uses: map[int][]int{}}
}

// termKey builds the interning key of a (symbol, arg-class...) signature.
func termKey(sym string, args []int) string {
	k := sym
	for _, a := range args {
		k += fmt.Sprintf("#%d", a)
	}
	return k
}

// AddTerm interns the ground term t and returns its node id.
// Variables are rejected.
func (c *CC) AddTerm(t fol.Term) (int, error) {
	switch t.Kind {
	case fol.TermVar:
		return 0, fmt.Errorf("smt: variable %q in ground congruence closure", t.Name)
	case fol.TermConst:
		return c.addNode("c:"+t.Name, nil), nil
	case fol.TermApp:
		args := make([]int, len(t.Args))
		for i, a := range t.Args {
			id, err := c.AddTerm(a)
			if err != nil {
				return 0, err
			}
			args[i] = id
		}
		return c.AddApp("f:"+t.Name, args), nil
	default:
		return 0, fmt.Errorf("smt: bad term kind %d", t.Kind)
	}
}

// AddConst interns a constant symbol and returns its node id.
func (c *CC) AddConst(name string) int { return c.addNode("c:"+name, nil) }

// AddApp interns an application of sym to the given argument nodes and
// returns its id, merging with any congruent existing node.
func (c *CC) AddApp(sym string, args []int) int {
	reps := make([]int, len(args))
	for i, a := range args {
		reps[i] = c.find(a)
	}
	key := termKey(sym, reps)
	if id, ok := c.intern[key]; ok {
		return c.find(id)
	}
	id := c.addNode(key, args)
	c.nodes[id].sym = sym
	for _, r := range reps {
		c.uses[r] = append(c.uses[r], id)
	}
	return id
}

func (c *CC) addNode(key string, args []int) int {
	if id, ok := c.intern[key]; ok {
		return id
	}
	id := len(c.nodes)
	c.nodes = append(c.nodes, node{sym: key, args: args})
	c.parent = append(c.parent, id)
	c.rank = append(c.rank, 0)
	c.intern[key] = id
	return id
}

func (c *CC) find(x int) int {
	for c.parent[x] != x {
		c.parent[x] = c.parent[c.parent[x]]
		x = c.parent[x]
	}
	return x
}

// Merge asserts that the classes of a and b are equal and propagates
// congruences.
func (c *CC) Merge(a, b int) {
	var pending [][2]int
	pending = append(pending, [2]int{a, b})
	for len(pending) > 0 {
		x, y := pending[0][0], pending[0][1]
		pending = pending[1:]
		rx, ry := c.find(x), c.find(y)
		if rx == ry {
			continue
		}
		if c.rank[rx] < c.rank[ry] {
			rx, ry = ry, rx
		}
		// ry is absorbed into rx.
		c.parent[ry] = rx
		if c.rank[rx] == c.rank[ry] {
			c.rank[rx]++
		}
		// Congruence: every application using ry may now be congruent to
		// an application using rx.
		moved := c.uses[ry]
		delete(c.uses, ry)
		for _, app := range moved {
			n := c.nodes[app]
			reps := make([]int, len(n.args))
			for i, arg := range n.args {
				reps[i] = c.find(arg)
			}
			key := termKey(n.sym, reps)
			if other, ok := c.intern[key]; ok && c.find(other) != c.find(app) {
				pending = append(pending, [2]int{other, app})
			} else {
				c.intern[key] = app
			}
			c.uses[c.find(app)] = append(c.uses[c.find(app)], app)
		}
	}
}

// Equal reports whether nodes a and b are in the same class.
func (c *CC) Equal(a, b int) bool { return c.find(a) == c.find(b) }
