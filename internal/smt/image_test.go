package smt

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/fol"
)

// imageBase builds an Incremental mixing quantified axioms, ground facts,
// function symbols and an ambiguity placeholder — every clause shape the
// image must carry.
func imageBase(t *testing.T, strategy InstStrategy) *Incremental {
	t.Helper()
	inc := NewIncremental(Limits{MaxInstantiations: 20000, MaxRounds: 6}, strategy)
	err := inc.AssertBase(
		fol.Forall("x", fol.Implies(fol.Pred("p", fol.Var("x")), fol.Pred("q", fol.Var("x")))),
		fol.Pred("p", fol.Const("a")),
		fol.Pred("p", fol.Const("b")),
		fol.Eq(fol.App("owner", fol.Const("a")), fol.Const("acme")),
		fol.Implies(fol.UninterpretedPred("ambiguous_scope"), fol.Pred("q", fol.Const("c"))),
	)
	if err != nil {
		t.Fatalf("AssertBase: %v", err)
	}
	return inc
}

// TestCoreImageRoundTrip: a restored solver answers exactly like the
// original across a goal sequence, and re-exporting it yields an
// identical image (the fixed point that proves nothing was lost).
func TestCoreImageRoundTrip(t *testing.T) {
	ctx := context.Background()
	for _, strategy := range []InstStrategy{FullGrounding, TriggerBased} {
		t.Run(fmt.Sprintf("strategy=%d", strategy), func(t *testing.T) {
			orig := imageBase(t, strategy)
			img := orig.Image()

			// JSON round trip — the image travels inside analysis payloads.
			data, err := json.Marshal(img)
			if err != nil {
				t.Fatal(err)
			}
			var decoded CoreImage
			if err := json.Unmarshal(data, &decoded); err != nil {
				t.Fatal(err)
			}
			restored, err := NewIncrementalFromImage(
				Limits{MaxInstantiations: 20000, MaxRounds: 6}, strategy, &decoded)
			if err != nil {
				t.Fatalf("NewIncrementalFromImage: %v", err)
			}
			if !reflect.DeepEqual(restored.Image(), img) {
				t.Error("re-exported image differs from the original")
			}

			// The function symbol in the base makes grounding incomplete, so
			// Sat degrades to Unknown — on both solvers equally. want pins
			// only the sound Unsat verdicts; every step asserts original and
			// restored agree exactly.
			goals := []struct {
				goal  *fol.Formula
				conds []*fol.Formula
				want  Status
			}{
				{nil, nil, 0},
				{fol.Not(fol.Pred("q", fol.Const("a"))), nil, Unsat},
				{fol.Not(fol.Pred("q", fol.Const("b"))), nil, Unsat},
				{fol.Not(fol.Pred("q", fol.Const("c"))), nil, 0},
				{fol.Not(fol.Pred("q", fol.Const("c"))),
					[]*fol.Formula{fol.UninterpretedPred("ambiguous_scope")}, Unsat},
				{nil, nil, 0},
			}
			for i, g := range goals {
				ro := orig.Solve(ctx, g.goal, g.conds...)
				rr := restored.Solve(ctx, g.goal, g.conds...)
				if ro.Status != rr.Status {
					t.Fatalf("goal %d: original %v, restored %v (%s / %s)",
						i, ro.Status, rr.Status, ro.Reason, rr.Reason)
				}
				if g.want != 0 && ro.Status != g.want {
					t.Fatalf("goal %d: want %v, got %v (%s)", i, g.want, ro.Status, ro.Reason)
				}
				if !reflect.DeepEqual(ro.Placeholders, rr.Placeholders) {
					t.Errorf("goal %d: placeholders %v vs %v", i, ro.Placeholders, rr.Placeholders)
				}
			}

			// Asserting after the restore works and skolem tags continue from
			// the persisted sequence instead of colliding with it.
			if err := restored.AssertBase(fol.Pred("p", fol.Const("d"))); err != nil {
				t.Fatalf("post-restore AssertBase: %v", err)
			}
			if res := restored.Solve(ctx, fol.Not(fol.Pred("q", fol.Const("d")))); res.Status != Unsat {
				t.Fatalf("post-restore solve: want Unsat, got %v (%s)", res.Status, res.Reason)
			}
		})
	}
}

// TestCoreImageTakenAfterQueries: an image taken after heavy querying
// still restores to a correct solver. The arena it carries is a superset
// of the fresh one (goal atoms and instantiated terms were interned by the
// solves), but the base clause set is identical, so verdicts are too.
func TestCoreImageTakenAfterQueries(t *testing.T) {
	ctx := context.Background()
	fresh := imageBase(t, FullGrounding).Image()
	used := imageBase(t, FullGrounding)
	for i := 0; i < 4; i++ {
		used.Solve(ctx, fol.Not(fol.Pred("q", fol.Const("a"))))
		used.Solve(ctx, nil)
	}
	img := used.Image()
	if !reflect.DeepEqual(img.Clauses, fresh.Clauses) {
		t.Error("base clauses changed across scoped solves")
	}
	restored, err := NewIncrementalFromImage(Limits{MaxInstantiations: 20000, MaxRounds: 6}, FullGrounding, img)
	if err != nil {
		t.Fatal(err)
	}
	if res := restored.Solve(ctx, fol.Not(fol.Pred("q", fol.Const("a")))); res.Status != Unsat {
		t.Fatalf("restored-from-used solve: want Unsat, got %v (%s)", res.Status, res.Reason)
	}
	if got, want := restored.Solve(ctx, nil).Status, used.Solve(ctx, nil).Status; got != want {
		t.Fatalf("restored-from-used base solve: got %v, original gives %v", got, want)
	}
}

// TestCoreImageRejectsCorruption: malformed images error, never panic.
func TestCoreImageRejectsCorruption(t *testing.T) {
	base := func() *CoreImage { return imageBase(t, FullGrounding).Image() }
	cases := map[string]func(*CoreImage){
		"nil image":   nil,
		"nil arena":   func(img *CoreImage) { img.Arena = nil },
		"bad literal": func(img *CoreImage) { img.Clauses[0][0] = -3 },
		"literal past atoms": func(img *CoreImage) {
			img.Clauses[0][0] = int32(len(img.Arena.Atoms)) * 4
		},
		"negative skolem": func(img *CoreImage) { img.SkolemSeq = -1 },
		"corrupt arena":   func(img *CoreImage) { img.Arena.Terms[0] = 77 },
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			var img *CoreImage
			if corrupt != nil {
				img = base()
				corrupt(img)
			}
			if _, err := NewIncrementalFromImage(Limits{}, FullGrounding, img); err == nil {
				t.Errorf("%s: restore accepted a corrupt image", name)
			}
		})
	}
}
