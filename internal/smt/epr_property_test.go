package smt

import (
	"context"
	"math/rand"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/fol"
)

// The EPR oracle: a sentence over unary/binary predicates, constants
// {a, b} and quantifiers (no functions) is satisfiable over *some* finite
// model iff it is satisfiable over a model of size <= its constant count +
// quantifier count (EPR small-model property). We brute-force domains of
// sizes 1..3 with every truth assignment to ground atoms and compare with
// the solver, which must be sound in both directions on this fragment.

// randomEPR builds a random sentence; depth bounds the connective tree and
// scope tracks quantified variables.
func randomEPR(r *rand.Rand, depth int, scope []string) *fol.Formula {
	term := func() fol.Term {
		if len(scope) > 0 && r.Intn(2) == 0 {
			return fol.Var(scope[r.Intn(len(scope))])
		}
		return fol.Const([]string{"a", "b"}[r.Intn(2)])
	}
	if depth <= 0 {
		switch r.Intn(3) {
		case 0:
			return fol.Pred("p", term())
		case 1:
			return fol.Pred("r", term(), term())
		default:
			return fol.Eq(term(), term())
		}
	}
	switch r.Intn(6) {
	case 0:
		return fol.Not(randomEPR(r, depth-1, scope))
	case 1:
		return fol.And(randomEPR(r, depth-1, scope), randomEPR(r, depth-1, scope))
	case 2:
		return fol.Or(randomEPR(r, depth-1, scope), randomEPR(r, depth-1, scope))
	case 3:
		return fol.Implies(randomEPR(r, depth-1, scope), randomEPR(r, depth-1, scope))
	case 4:
		v := "x" + string(rune('0'+len(scope)))
		return fol.Forall(v, randomEPR(r, depth-1, append(scope, v)))
	default:
		v := "y" + string(rune('0'+len(scope)))
		return fol.Exists(v, randomEPR(r, depth-1, append(scope, v)))
	}
}

// bruteForceEPR enumerates models over domains of size 1..maxDomain.
func bruteForceEPR(f *fol.Formula, maxDomain int) bool {
	domains := [][]string{{"d0"}, {"d0", "d1"}, {"d0", "d1", "d2"}}
	for _, domain := range domains[:maxDomain] {
		n := len(domain)
		// Ground atoms: p(d) for each d, r(d,e) for each pair, plus the
		// interpretation of constants a and b as domain elements.
		nP := n
		nR := n * n
		for aIdx := 0; aIdx < n; aIdx++ {
			for bIdx := 0; bIdx < n; bIdx++ {
				for mask := 0; mask < 1<<(nP+nR); mask++ {
					in := fol.NewInterp(domain...)
					for i := 0; i < nP; i++ {
						if mask&(1<<i) != 0 {
							in.SetTrue("p", fol.Const(domain[i]))
						}
					}
					for i := 0; i < nR; i++ {
						if mask&(1<<(nP+i)) != 0 {
							in.SetTrue("r", fol.Const(domain[i/n]), fol.Const(domain[i%n]))
						}
					}
					// Interpret constants by substituting their domain
					// elements into the formula.
					g := substConst(f, "a", domain[aIdx])
					g = substConst(g, "b", domain[bIdx])
					v, err := in.Eval(g, nil)
					if err == nil && v {
						return true
					}
				}
			}
		}
	}
	return false
}

// substConst replaces a constant symbol with another constant throughout.
func substConst(f *fol.Formula, from, to string) *fol.Formula {
	g := f.Clone()
	var walkTerms func(ts []fol.Term)
	walkTerms = func(ts []fol.Term) {
		for i, t := range ts {
			if t.Kind == fol.TermConst && t.Name == from {
				ts[i] = fol.Const(to)
			}
		}
	}
	var walk func(x *fol.Formula)
	walk = func(x *fol.Formula) {
		walkTerms(x.Terms)
		for _, s := range x.Sub {
			walk(s)
		}
	}
	walk(g)
	return g
}

// countExistentials counts existential strength after NNF (negated
// universals count): it bounds the Skolem constants and hence the Herbrand
// model size 2 + E.
func countExistentials(f *fol.Formula) int {
	n := 0
	var walk func(g *fol.Formula)
	walk = func(g *fol.Formula) {
		if g.Op == fol.OpExists {
			n++
		}
		for _, s := range g.Sub {
			walk(s)
		}
	}
	walk(fol.NNF(f))
	return n
}

// TestEPRAgainstModelEnumeration cross-validates the solver on the EPR
// fragment:
//
//  1. solver Unsat ⇒ the oracle finds no model at any size ≤ 3 (a small
//     model would refute the Unsat immediately);
//  2. solver Sat with ≤1 existential ⇒ the oracle finds a model at size
//     ≤ 3 (Herbrand universe {a,b,sk1} suffices in that case).
func TestEPRAgainstModelEnumeration(t *testing.T) {
	if testing.Short() {
		t.Skip("model enumeration is slow")
	}
	r := rand.New(rand.NewSource(99))
	unsatChecked, satChecked := 0, 0
	for iter := 0; iter < 600 && (unsatChecked < 30 || satChecked < 30); iter++ {
		f := randomEPR(r, 3, nil)
		s := NewSolver()
		s.Limits = Limits{MaxInstantiations: 20000, MaxRounds: 4}
		s.Assert(f)
		res := s.CheckSat()
		switch res.Status {
		case Unsat:
			unsatChecked++
			if bruteForceEPR(f, 3) {
				t.Fatalf("iter %d: solver unsat but small model exists for %s", iter, f)
			}
		case Sat:
			if countExistentials(f) > 1 {
				continue // Herbrand size may exceed the oracle's reach
			}
			satChecked++
			if !bruteForceEPR(f, 3) {
				t.Fatalf("iter %d: solver sat but no model ≤3 for %s", iter, f)
			}
		}
	}
	if unsatChecked < 10 || satChecked < 10 {
		t.Fatalf("thin coverage: %d unsat, %d sat checks", unsatChecked, satChecked)
	}
}

// TestIncrementalMatchesFromScratch is the differential property test for
// the incremental solver: solving base ∧ goal on a long-lived Incremental
// (goal scoped behind a selector, core reused across goals) must agree
// with a fresh from-scratch Solver on every goal. On the first goal — where
// the two solvers see identical universes — the instantiation counts must
// also be comparable: the incremental path may at most double the work
// (base clauses and scoped clauses dedupe separately per selector), never
// blow up asymptotically.
func TestIncrementalMatchesFromScratch(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	lim := Limits{MaxInstantiations: 20000, MaxRounds: 4}
	ctx := context.Background()
	const iterations = 25
	const goalsPerBase = 3
	for iter := 0; iter < iterations; iter++ {
		// Conjoining p(a) pins a non-empty constant universe so neither
		// solver needs the $elem seed, keeping universes identical.
		base := fol.And(fol.Pred("p", fol.Const("a")), randomEPR(r, 2, nil))
		goals := make([]*fol.Formula, goalsPerBase)
		for i := range goals {
			goals[i] = randomEPR(r, 2, nil)
		}

		inc := NewIncremental(lim, FullGrounding)
		if err := inc.AssertBase(base); err != nil {
			t.Fatalf("iter %d: AssertBase: %v", iter, err)
		}
		for gi, goal := range goals {
			fresh := NewSolver()
			fresh.Limits = lim
			fresh.Assert(base)
			fresh.Assert(goal)
			want := fresh.CheckSat()

			got := inc.Solve(ctx, goal)
			if got.Status != want.Status {
				t.Fatalf("iter %d goal %d: incremental=%v fresh=%v\nbase: %s\ngoal: %s",
					iter, gi, got.Status, want.Status, base, goals[gi])
			}
			if gi == 0 && want.Status != Unknown {
				// First goal: same universe, so instantiation work must be
				// comparable. fresh ≤ inc (shared dedup can only add the
				// selector split) and inc ≤ 2·fresh + ε.
				if got.Stats.Instantiations < want.Stats.Instantiations {
					t.Fatalf("iter %d: incremental did less instantiation (%d) than fresh (%d)?",
						iter, got.Stats.Instantiations, want.Stats.Instantiations)
				}
				if got.Stats.Instantiations > 2*want.Stats.Instantiations+4 {
					t.Fatalf("iter %d: incremental instantiations %d not within 2x of fresh %d",
						iter, got.Stats.Instantiations, want.Stats.Instantiations)
				}
			}
		}
	}
}
