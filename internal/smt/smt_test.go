package smt

import (
	"fmt"
	"strings"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/fol"
	"github.com/privacy-quagmire/quagmire/internal/smtlib"
)

func TestCCBasics(t *testing.T) {
	cc := NewCC()
	a := cc.AddConst("a")
	b := cc.AddConst("b")
	c := cc.AddConst("c")
	if cc.Equal(a, b) {
		t.Error("fresh constants equal")
	}
	cc.Merge(a, b)
	cc.Merge(b, c)
	if !cc.Equal(a, c) {
		t.Error("transitivity failed")
	}
}

func TestCCCongruence(t *testing.T) {
	cc := NewCC()
	a := cc.AddConst("a")
	b := cc.AddConst("b")
	fa := cc.AddApp("f", []int{a})
	fb := cc.AddApp("f", []int{b})
	if cc.Equal(fa, fb) {
		t.Error("f(a)=f(b) before a=b")
	}
	cc.Merge(a, b)
	if !cc.Equal(fa, fb) {
		t.Error("congruence f(a)=f(b) not propagated")
	}
}

func TestCCNestedCongruence(t *testing.T) {
	cc := NewCC()
	a := cc.AddConst("a")
	b := cc.AddConst("b")
	fa := cc.AddApp("f", []int{a})
	fb := cc.AddApp("f", []int{b})
	gfa := cc.AddApp("g", []int{fa})
	gfb := cc.AddApp("g", []int{fb})
	cc.Merge(a, b)
	if !cc.Equal(gfa, gfb) {
		t.Error("nested congruence g(f(a))=g(f(b)) not propagated")
	}
}

func TestCCInternSharing(t *testing.T) {
	cc := NewCC()
	x1, err := cc.AddTerm(fol.App("f", fol.Const("a"), fol.Const("b")))
	if err != nil {
		t.Fatal(err)
	}
	x2, err := cc.AddTerm(fol.App("f", fol.Const("a"), fol.Const("b")))
	if err != nil {
		t.Fatal(err)
	}
	if !cc.Equal(x1, x2) {
		t.Error("identical terms interned apart")
	}
}

func TestCCRejectsVariables(t *testing.T) {
	cc := NewCC()
	if _, err := cc.AddTerm(fol.Var("x")); err == nil {
		t.Error("expected error for variable term")
	}
}

func check(t *testing.T, f *fol.Formula, want Status) Result {
	t.Helper()
	s := NewSolver()
	s.Assert(f)
	res := s.CheckSat()
	if res.Status != want {
		t.Fatalf("CheckSat(%s) = %v (%s), want %v", f, res.Status, res.Reason, want)
	}
	return res
}

func TestGroundPropositional(t *testing.T) {
	p, q := fol.Pred("p"), fol.Pred("q")
	check(t, fol.And(fol.Or(p, q), fol.Not(p)), Sat)
	check(t, fol.And(p, fol.Not(p)), Unsat)
}

func TestGroundEquality(t *testing.T) {
	a, b, c := fol.Const("a"), fol.Const("b"), fol.Const("c")
	// a=b ∧ b=c ∧ a≠c is unsat.
	check(t, fol.And(fol.Eq(a, b), fol.Eq(b, c), fol.Not(fol.Eq(a, c))), Unsat)
	// a=b ∧ b≠c is sat.
	check(t, fol.And(fol.Eq(a, b), fol.Not(fol.Eq(b, c))), Sat)
}

func TestFunctionCongruence(t *testing.T) {
	a, b := fol.Const("a"), fol.Const("b")
	fa, fb := fol.App("f", a), fol.App("f", b)
	// a=b ∧ f(a)≠f(b) unsat.
	check(t, fol.And(fol.Eq(a, b), fol.Not(fol.Eq(fa, fb))), Unsat)
	// f(a)=f(b) ∧ a≠b sat (f may not be injective).
	check(t, fol.And(fol.Eq(fa, fb), fol.Not(fol.Eq(a, b))), Sat)
}

func TestPredicateCongruence(t *testing.T) {
	a, b := fol.Const("a"), fol.Const("b")
	// a=b ∧ p(a) ∧ ¬p(b) unsat.
	check(t, fol.And(fol.Eq(a, b), fol.Pred("p", a), fol.Not(fol.Pred("p", b))), Unsat)
	// p(a) ∧ ¬p(b) sat.
	check(t, fol.And(fol.Pred("p", a), fol.Not(fol.Pred("p", b))), Sat)
}

func TestUniversalInstantiation(t *testing.T) {
	// ∀x p(x) ∧ ¬p(a) unsat.
	f := fol.And(
		fol.Forall("x", fol.Pred("p", fol.Var("x"))),
		fol.Not(fol.Pred("p", fol.Const("a"))),
	)
	check(t, f, Unsat)
}

func TestModusPonensQuantified(t *testing.T) {
	// ∀x (user(x) -> share(x)) ∧ user(a) ∧ ¬share(a) unsat.
	f := fol.And(
		fol.Forall("x", fol.Implies(fol.Pred("user", fol.Var("x")), fol.Pred("share", fol.Var("x")))),
		fol.Pred("user", fol.Const("a")),
		fol.Not(fol.Pred("share", fol.Const("a"))),
	)
	check(t, f, Unsat)
}

func TestExistentialWitness(t *testing.T) {
	// ∃x p(x) is sat (via Skolem constant).
	res := check(t, fol.Exists("x", fol.Pred("p", fol.Var("x"))), Sat)
	if res.Stats.GroundClauses == 0 {
		t.Error("no ground clauses recorded")
	}
}

func TestValidityByNegation(t *testing.T) {
	// Validity check of ∀x(p(x)->q(x)) ∧ p(a) -> q(a): assert negation, expect unsat.
	premise := fol.And(
		fol.Forall("x", fol.Implies(fol.Pred("p", fol.Var("x")), fol.Pred("q", fol.Var("x")))),
		fol.Pred("p", fol.Const("a")),
	)
	goal := fol.Pred("q", fol.Const("a"))
	check(t, fol.And(premise, fol.Not(goal)), Unsat)
	// Invalid query: sat (countermodel exists, EPR fragment so Sat is definitive).
	badGoal := fol.Pred("q", fol.Const("b"))
	check(t, fol.And(premise, fol.Not(badGoal)), Sat)
}

func TestUninterpretedPlaceholderSurfaced(t *testing.T) {
	f := fol.And(
		fol.Or(fol.Pred("share", fol.Const("x1")), fol.UninterpretedPred("required_by_law")),
		fol.Not(fol.Pred("share", fol.Const("x1"))),
	)
	s := NewSolver()
	s.Assert(f)
	res := s.CheckSat()
	if res.Status != Sat {
		t.Fatalf("status = %v (%s)", res.Status, res.Reason)
	}
	if len(res.Placeholders) != 1 || res.Placeholders[0] != "required_by_law" {
		t.Errorf("placeholders = %v", res.Placeholders)
	}
}

func TestPushPop(t *testing.T) {
	s := NewSolver()
	p := fol.Pred("p")
	s.Assert(p)
	s.Push()
	s.Assert(fol.Not(p))
	if res := s.CheckSat(); res.Status != Unsat {
		t.Fatalf("inner scope: %v", res.Status)
	}
	s.Pop()
	if res := s.CheckSat(); res.Status != Sat {
		t.Fatalf("after pop: %v", res.Status)
	}
	// Popping base scope is a no-op.
	s.Pop()
	if res := s.CheckSat(); res.Status != Sat {
		t.Fatal("base scope lost")
	}
}

func TestCheckSatAssuming(t *testing.T) {
	s := NewSolver()
	p := fol.Pred("p")
	s.Assert(fol.Implies(p, fol.Pred("q")))
	res := s.CheckSatAssuming(p, fol.Not(fol.Pred("q")))
	if res.Status != Unsat {
		t.Fatalf("assuming p,¬q: %v", res.Status)
	}
	// Assumptions do not persist.
	if res := s.CheckSat(); res.Status != Sat {
		t.Fatalf("after assumptions: %v", res.Status)
	}
}

func TestEmptySolver(t *testing.T) {
	if res := NewSolver().CheckSat(); res.Status != Sat {
		t.Errorf("empty problem: %v", res.Status)
	}
}

func TestResourceOutOnLargeQuantifiedProblem(t *testing.T) {
	// Many quantified clauses over many constants with a tiny budget must
	// produce Unknown — the paper's timeout behaviour.
	var parts []*fol.Formula
	for i := 0; i < 20; i++ {
		p := fol.Pred(fmtSprintf("p%d", i), fol.Var("x"))
		q := fol.Pred(fmtSprintf("p%d", (i+1)%20), fol.Var("x"))
		parts = append(parts, fol.Forall("x", fol.Or(fol.Not(p), q)))
	}
	for i := 0; i < 30; i++ {
		parts = append(parts, fol.Pred("p0", fol.Const(fmtSprintf("c%d", i))))
	}
	s := NewSolver()
	s.Limits = Limits{MaxInstantiations: 50, MaxRounds: 1, MaxSatSteps: 100}
	s.Assert(fol.And(parts...))
	res := s.CheckSat()
	if res.Status != Unknown {
		t.Fatalf("tiny budget should give Unknown, got %v", res.Status)
	}
	if res.Reason == "" {
		t.Error("Unknown without reason")
	}
}

func TestIncompleteFragmentReportsUnknownNotSat(t *testing.T) {
	// ∀x ∃y p(x,y): Skolem function makes the fragment incomplete; a
	// "model" must be reported as unknown, not sat.
	f := fol.Forall("x", fol.Exists("y", fol.Pred("p", fol.Var("x"), fol.Var("y"))))
	s := NewSolver()
	s.Assert(fol.And(f, fol.Pred("q", fol.Const("a"))))
	res := s.CheckSat()
	if res.Status == Sat {
		t.Fatalf("non-EPR sat answer should be Unknown, got %v", res.Status)
	}
}

func TestRunScriptEndToEnd(t *testing.T) {
	f := fol.And(
		fol.Forall("x", fol.Implies(fol.Pred("user", fol.Var("x")), fol.Pred("share", fol.Const("tiktok"), fol.Var("x")))),
		fol.Pred("user", fol.Const("alice")),
		fol.Not(fol.Pred("share", fol.Const("tiktok"), fol.Const("alice"))),
	)
	script, err := smtlib.Compile(f, smtlib.CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveScript(script.String(), Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unsat {
		t.Fatalf("script solve = %v (%s)", res.Status, res.Reason)
	}
}

func TestRunScriptPushPop(t *testing.T) {
	src := `
(declare-fun p () Bool)
(assert p)
(push 1)
(assert (not p))
(check-sat)
(pop 1)
(check-sat)`
	results, err := RunScript(src, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	if results[0].Status != Unsat || results[1].Status != Sat {
		t.Errorf("results = %v, %v", results[0].Status, results[1].Status)
	}
}

func TestSolveScriptNoCheckSat(t *testing.T) {
	if _, err := SolveScript("(declare-fun p () Bool)(assert p)", Limits{}); err == nil {
		t.Error("expected error for script without check-sat")
	}
}

func TestFormatResult(t *testing.T) {
	r := Result{Status: Unknown, Reason: "timeout", Placeholders: []string{"required_by_law"}}
	out := FormatResult(r)
	for _, want := range []string{"unknown", "timeout", "required_by_law"} {
		if !containsStr(out, want) {
			t.Errorf("FormatResult missing %q: %s", want, out)
		}
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "sat" || Unsat.String() != "unsat" || Unknown.String() != "unknown" {
		t.Error("Status.String broken")
	}
}

func fmtSprintf(format string, args ...any) string { return fmt.Sprintf(format, args...) }

func containsStr(s, sub string) bool { return strings.Contains(s, sub) }

func TestDistinctThroughScript(t *testing.T) {
	// distinct + equality chain: a,b,c pairwise distinct but a=c is unsat.
	src := `
(declare-sort U 0)
(declare-const a U)
(declare-const b U)
(declare-const c U)
(assert (distinct a b c))
(assert (= a c))
(check-sat)`
	res, err := SolveScript(src, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Unsat {
		t.Fatalf("distinct+eq = %v (%s)", res.Status, res.Reason)
	}
	// Without the equality it is satisfiable.
	src2 := `
(declare-sort U 0)
(declare-const a U)
(declare-const b U)
(declare-const c U)
(assert (distinct a b c))
(check-sat)`
	res, err = SolveScript(src2, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Sat {
		t.Fatalf("distinct alone = %v (%s)", res.Status, res.Reason)
	}
}

func TestCountermodelExposed(t *testing.T) {
	s := NewSolver()
	s.Assert(fol.Or(
		fol.UninterpretedPred("cond_a"),
		fol.UninterpretedPred("cond_b"),
	))
	s.Assert(fol.Not(fol.UninterpretedPred("cond_a")))
	res := s.CheckSat()
	if res.Status != Sat {
		t.Fatalf("status = %v", res.Status)
	}
	if res.Model == nil {
		t.Fatal("no model")
	}
	if res.Model["cond_a"] != false || res.Model["cond_b"] != true {
		t.Errorf("model = %v", res.Model)
	}
}

func TestTriggerInstantiationUnsat(t *testing.T) {
	// Modus ponens resolves with trigger-based instantiation too: the
	// trigger user(x) matches the ground fact user(a).
	f := fol.And(
		fol.Forall("x", fol.Implies(fol.Pred("user", fol.Var("x")), fol.Pred("share", fol.Var("x")))),
		fol.Pred("user", fol.Const("a")),
		fol.Not(fol.Pred("share", fol.Const("a"))),
	)
	s := NewSolver()
	s.Strategy = TriggerBased
	s.Assert(f)
	res := s.CheckSat()
	if res.Status != Unsat {
		t.Fatalf("trigger modus ponens = %v (%s)", res.Status, res.Reason)
	}
}

func TestTriggerChainedInstantiation(t *testing.T) {
	// Chained rules need a second round: p(a), ∀x p(x)->q(x), ∀x q(x)->r(x), ¬r(a).
	f := fol.And(
		fol.Pred("p", fol.Const("a")),
		fol.Forall("x", fol.Implies(fol.Pred("p", fol.Var("x")), fol.Pred("q", fol.Var("x")))),
		fol.Forall("x", fol.Implies(fol.Pred("q", fol.Var("x")), fol.Pred("r", fol.Var("x")))),
		fol.Not(fol.Pred("r", fol.Const("a"))),
	)
	s := NewSolver()
	s.Strategy = TriggerBased
	s.Assert(f)
	if res := s.CheckSat(); res.Status != Unsat {
		t.Fatalf("chained triggers = %v (%s)", res.Status, res.Reason)
	}
}

func TestTriggerSatDegradesToUnknown(t *testing.T) {
	// A satisfiable quantified problem: trigger instantiation must not
	// claim Sat (refutation-incomplete fragment).
	f := fol.And(
		fol.Forall("x", fol.Implies(fol.Pred("p", fol.Var("x")), fol.Pred("q", fol.Var("x")))),
		fol.Pred("p", fol.Const("a")),
	)
	s := NewSolver()
	s.Strategy = TriggerBased
	s.Assert(f)
	res := s.CheckSat()
	if res.Status == Unsat {
		t.Fatalf("satisfiable problem reported unsat")
	}
	if res.Status == Sat {
		t.Fatalf("trigger strategy must not claim Sat on quantified input")
	}
}

func TestTriggerGroundProblemStillSat(t *testing.T) {
	// Purely ground problems are unaffected by the strategy.
	s := NewSolver()
	s.Strategy = TriggerBased
	s.Assert(fol.And(fol.Pred("p", fol.Const("a")), fol.Not(fol.Pred("p", fol.Const("b")))))
	if res := s.CheckSat(); res.Status != Sat {
		t.Fatalf("ground trigger = %v (%s)", res.Status, res.Reason)
	}
}

func TestTriggerFarFewerInstantiations(t *testing.T) {
	// The pipeline-shaped encoding: trigger instantiation produces orders
	// of magnitude fewer instances than full grounding on the same
	// unsat problem.
	build := func() *fol.Formula {
		// A 30-node edge chain with a two-variable propagation rule:
		// full grounding instantiates 30^2 pairs, trigger-based only the
		// 29 actual edges.
		var parts []*fol.Formula
		parts = append(parts, fol.Pred("p", fol.Const("c0")))
		for i := 0; i+1 < 30; i++ {
			parts = append(parts, fol.Pred("edge",
				fol.Const(fmtSprintf("c%d", i)), fol.Const(fmtSprintf("c%d", i+1))))
		}
		parts = append(parts,
			fol.Forall("x", fol.Forall("y", fol.Implies(
				fol.And(fol.Pred("p", fol.Var("x")), fol.Pred("edge", fol.Var("x"), fol.Var("y"))),
				fol.Pred("p", fol.Var("y"))))),
			fol.Not(fol.Pred("p", fol.Const("c29"))),
		)
		return fol.And(parts...)
	}
	full := NewSolver()
	full.Assert(build())
	fullRes := full.CheckSat()

	trig := NewSolver()
	trig.Strategy = TriggerBased
	trig.Assert(build())
	trigRes := trig.CheckSat()

	if fullRes.Status != Unsat || trigRes.Status != Unsat {
		t.Fatalf("statuses: full=%v trigger=%v", fullRes.Status, trigRes.Status)
	}
	if trigRes.Stats.Instantiations >= fullRes.Stats.Instantiations {
		t.Errorf("trigger (%d) should instantiate less than full (%d)",
			trigRes.Stats.Instantiations, fullRes.Stats.Instantiations)
	}
}

func TestMatchAtom(t *testing.T) {
	pattern := fol.Pred("p", fol.Var("x"), fol.Const("k"), fol.Var("x"))
	ok1 := fol.Pred("p", fol.Const("a"), fol.Const("k"), fol.Const("a"))
	if sub, ok := matchAtom(pattern, ok1); !ok || sub["x"].Name != "a" {
		t.Errorf("match failed: %v %v", sub, ok)
	}
	// Conflicting repeated variable.
	bad := fol.Pred("p", fol.Const("a"), fol.Const("k"), fol.Const("b"))
	if _, ok := matchAtom(pattern, bad); ok {
		t.Error("conflicting binding matched")
	}
	// Constant mismatch.
	bad2 := fol.Pred("p", fol.Const("a"), fol.Const("z"), fol.Const("a"))
	if _, ok := matchAtom(pattern, bad2); ok {
		t.Error("constant mismatch matched")
	}
	// Function patterns.
	fpat := fol.Pred("q", fol.App("f", fol.Var("y")))
	fok := fol.Pred("q", fol.App("f", fol.Const("c")))
	if sub, ok := matchAtom(fpat, fok); !ok || sub["y"].Name != "c" {
		t.Errorf("function match failed: %v %v", sub, ok)
	}
}

func TestWallClockTimeout(t *testing.T) {
	// A 1ns wall-clock timeout aborts before any work completes.
	var parts []*fol.Formula
	for i := 0; i < 10; i++ {
		parts = append(parts, fol.Forall("x", fol.Pred(fmtSprintf("p%d", i), fol.Var("x"))))
	}
	for i := 0; i < 10; i++ {
		parts = append(parts, fol.Pred("p0", fol.Const(fmtSprintf("c%d", i))))
	}
	s := NewSolver()
	s.Limits = Limits{Timeout: 1} // 1ns
	s.Assert(fol.And(parts...))
	res := s.CheckSat()
	if res.Status != Unknown {
		t.Fatalf("status = %v, want Unknown under 1ns timeout", res.Status)
	}
}

func TestNestedPushPop(t *testing.T) {
	s := NewSolver()
	p, q, r := fol.Pred("p"), fol.Pred("q"), fol.Pred("r")
	s.Assert(p)
	s.Push()
	s.Assert(q)
	s.Push()
	s.Assert(fol.Not(p))
	if res := s.CheckSat(); res.Status != Unsat {
		t.Fatalf("depth 2: %v", res.Status)
	}
	s.Pop()
	if res := s.CheckSat(); res.Status != Sat {
		t.Fatalf("depth 1 after pop: %v", res.Status)
	}
	s.Assert(r)
	if got := len(s.Assertions()); got != 3 {
		t.Fatalf("assertions = %d", got)
	}
	s.Pop()
	if got := len(s.Assertions()); got != 1 {
		t.Fatalf("after final pop assertions = %d", got)
	}
}

func TestRunScriptNestedScopes(t *testing.T) {
	src := `
(declare-fun a () Bool)
(declare-fun b () Bool)
(assert a)
(push 1)
(assert (not a))
(check-sat)
(push 1)
(assert b)
(check-sat)
(pop 1)
(pop 1)
(assert b)
(check-sat)`
	results, err := RunScript(src, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	want := []Status{Unsat, Unsat, Sat}
	if len(results) != len(want) {
		t.Fatalf("results = %d", len(results))
	}
	for i, w := range want {
		if results[i].Status != w {
			t.Errorf("check %d = %v, want %v", i, results[i].Status, w)
		}
	}
}

func TestFormatResultModel(t *testing.T) {
	r := Result{Status: Sat, Model: map[string]bool{"cond_b": true, "cond_a": false}}
	out := FormatResult(r)
	ia := strings.Index(out, "cond_a = false")
	ib := strings.Index(out, "cond_b = true")
	if ia < 0 || ib < 0 || ia > ib {
		t.Errorf("model rendering wrong:\n%s", out)
	}
}
