package smt

import (
	"context"
	"sort"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/fol"
	"github.com/privacy-quagmire/quagmire/internal/sat"
)

// Status is the three-valued outcome of an SMT check.
type Status int

// Check outcomes.
const (
	// Unknown means the solver exhausted a resource limit or the problem
	// lies outside its complete fragment.
	Unknown Status = iota
	// Sat means a model exists.
	Sat
	// Unsat means no model exists.
	Unsat
)

// String returns "sat", "unsat" or "unknown".
func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// Limits bounds solver effort. Zero values select defaults; the limits are
// deterministic (step-counted) so experiment results are reproducible.
type Limits struct {
	// MaxSatSteps caps SAT decisions+propagations per CheckSat.
	MaxSatSteps int64
	// MaxInstantiations caps total quantifier instantiations per CheckSat.
	MaxInstantiations int
	// MaxRounds caps instantiation rounds per CheckSat.
	MaxRounds int
	// MaxTheoryLemmas caps DPLL(T) refinement iterations per CheckSat.
	MaxTheoryLemmas int
	// Timeout, when positive, aborts the check after the wall-clock
	// duration. Step limits are preferred for reproducibility.
	Timeout time.Duration
}

func (l Limits) withDefaults() Limits {
	if l.MaxSatSteps == 0 {
		l.MaxSatSteps = 5_000_000
	}
	if l.MaxInstantiations == 0 {
		l.MaxInstantiations = 50_000
	}
	if l.MaxRounds == 0 {
		l.MaxRounds = 3
	}
	if l.MaxTheoryLemmas == 0 {
		l.MaxTheoryLemmas = 2_000
	}
	return l
}

// Stats reports effort spent by the last CheckSat.
type Stats struct {
	// Instantiations counts ground instances generated.
	Instantiations int
	// GroundClauses counts clauses handed to the SAT core.
	GroundClauses int
	// TheoryLemmas counts blocking clauses added by theory refutation.
	TheoryLemmas int
	// Rounds counts instantiation rounds.
	Rounds int
	// Atoms counts distinct ground atoms.
	Atoms int
	// SAT holds the boolean core's counters. For an Incremental solver the
	// counters are cumulative over the core's lifetime, since the boolean
	// core is shared across Solve calls.
	SAT sat.Stats
	// Elapsed is the wall-clock duration of the check. For a Result
	// answered from a ResultCache (FromCache set) it is the lookup or
	// in-flight-wait time, not the original solve's duration.
	Elapsed time.Duration
	// FromCache marks a Result served by a ResultCache — either a stored
	// entry or a share of a concurrent in-flight solve — rather than a
	// fresh solver run.
	FromCache bool `json:",omitempty"`
}

// Result is the outcome of a CheckSat.
type Result struct {
	// Status is sat/unsat/unknown.
	Status Status
	// Reason explains Unknown results (budget kind) and is empty
	// otherwise.
	Reason string
	// Placeholders lists uninterpreted ambiguity predicates that occurred
	// in the problem; per the paper these mark where human judgment is
	// required regardless of the verdict.
	Placeholders []string
	// Model holds the truth values of nullary predicates in the found
	// model when Status == Sat (nil otherwise). For the pipeline these
	// are the vague-condition placeholders of the countermodel — showing
	// exactly which interpretations of the ambiguous terms defeat the
	// query.
	Model map[string]bool
	// Stats reports effort.
	Stats Stats
}

// Solver is an incremental SMT solver for quantified UF formulas.
// Assertions are grouped into scopes managed by Push/Pop.
type Solver struct {
	// Limits bounds effort; the zero value uses defaults.
	Limits Limits
	// Strategy selects the quantifier-instantiation scheme; the zero
	// value is FullGrounding.
	Strategy InstStrategy
	scopes   [][]*fol.Formula
}

// NewSolver returns a solver with one open scope.
func NewSolver() *Solver {
	return &Solver{scopes: [][]*fol.Formula{{}}}
}

// Assert adds a sentence to the current scope. Free variables are
// implicitly universally quantified, following SMT-LIB convention for
// top-level clauses produced from prenex formulas.
func (s *Solver) Assert(f *fol.Formula) {
	top := len(s.scopes) - 1
	s.scopes[top] = append(s.scopes[top], f)
}

// Push opens a new assertion scope.
func (s *Solver) Push() { s.scopes = append(s.scopes, nil) }

// Pop discards the most recent scope. Popping the base scope is a no-op.
func (s *Solver) Pop() {
	if len(s.scopes) > 1 {
		s.scopes = s.scopes[:len(s.scopes)-1]
	}
}

// Assertions returns all formulas currently asserted, in order.
func (s *Solver) Assertions() []*fol.Formula {
	var out []*fol.Formula
	for _, sc := range s.scopes {
		out = append(out, sc...)
	}
	return out
}

// CheckSat decides satisfiability of the conjunction of all assertions.
func (s *Solver) CheckSat() Result {
	return s.check(context.Background(), nil)
}

// CheckSatCtx is CheckSat with cancellation: the context is polled inside
// the instantiation and DPLL(T) refinement loops, so a cancelled caller
// (e.g. an aborted AskBatch) stops burning CPU promptly instead of
// running to the solver's own resource limits. A cancelled check returns
// Unknown with reason "canceled".
func (s *Solver) CheckSatCtx(ctx context.Context) Result {
	return s.check(ctx, nil)
}

// CheckSatAssuming decides satisfiability with the extra formulas assumed
// for this call only, mirroring SMT-LIB's check-sat-assuming.
func (s *Solver) CheckSatAssuming(assumptions ...*fol.Formula) Result {
	return s.check(context.Background(), assumptions)
}

// CheckSatAssumingCtx is CheckSatAssuming with cancellation (see
// CheckSatCtx).
func (s *Solver) CheckSatAssumingCtx(ctx context.Context, assumptions ...*fol.Formula) Result {
	return s.check(ctx, assumptions)
}

// canceledReason marks Unknown results caused by context cancellation.
const canceledReason = "canceled"

// check's result must be named: the deferred Elapsed stamp below writes
// to the return slot after every early return in this long function.
func (s *Solver) check(ctx context.Context, assumptions []*fol.Formula) (res Result) {
	start := time.Now()
	lim := s.Limits.withDefaults()
	deadline := time.Time{}
	if lim.Timeout > 0 {
		deadline = start.Add(lim.Timeout)
	}
	defer func() { res.Stats.Elapsed = time.Since(start) }()

	if ctx.Err() != nil {
		res.Status = Unknown
		res.Reason = canceledReason
		return res
	}
	all := append(s.Assertions(), assumptions...)
	if len(all) == 0 {
		res.Status = Sat
		return res
	}
	placeholders := map[string]bool{}
	for _, f := range all {
		for _, u := range f.UninterpretedAtoms() {
			placeholders[u] = true
		}
	}
	for p := range placeholders {
		res.Placeholders = append(res.Placeholders, p)
	}
	sort.Strings(res.Placeholders)

	// Normalize into the interned core: NNF -> prenex -> Skolemize ->
	// clauses with implicitly universally quantified variables, every term
	// and atom hash-consed into the core's arena.
	g := newGroundCore(s.Strategy, lim.MaxSatSteps)
	for _, f := range all {
		if err := g.addFormula(f, 0); err != nil {
			res.Status = Unknown
			res.Reason = "clausification failed: " + err.Error()
			return res
		}
	}

	// Instantiation: ground the non-ground clauses under the selected
	// strategy.
	var st callStats
	g.instantiate(ctx, lim, deadline, &st)
	res.Stats.Instantiations = st.count
	res.Stats.Rounds = st.rounds
	if ctx.Err() != nil {
		res.Status = Unknown
		res.Reason = canceledReason
		return res
	}
	res.Stats.GroundClauses = g.groundClauses
	res.Stats.Atoms = g.atomCount()

	// DPLL(T) refinement loop.
	g.solveLoop(ctx, lim, deadline, &res, nil)
	return res
}
