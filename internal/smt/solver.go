package smt

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/fol"
	"github.com/privacy-quagmire/quagmire/internal/sat"
)

// Status is the three-valued outcome of an SMT check.
type Status int

// Check outcomes.
const (
	// Unknown means the solver exhausted a resource limit or the problem
	// lies outside its complete fragment.
	Unknown Status = iota
	// Sat means a model exists.
	Sat
	// Unsat means no model exists.
	Unsat
)

// String returns "sat", "unsat" or "unknown".
func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// Limits bounds solver effort. Zero values select defaults; the limits are
// deterministic (step-counted) so experiment results are reproducible.
type Limits struct {
	// MaxSatSteps caps SAT decisions+propagations per CheckSat.
	MaxSatSteps int64
	// MaxInstantiations caps total quantifier instantiations per CheckSat.
	MaxInstantiations int
	// MaxRounds caps instantiation rounds per CheckSat.
	MaxRounds int
	// MaxTheoryLemmas caps DPLL(T) refinement iterations per CheckSat.
	MaxTheoryLemmas int
	// Timeout, when positive, aborts the check after the wall-clock
	// duration. Step limits are preferred for reproducibility.
	Timeout time.Duration
}

func (l Limits) withDefaults() Limits {
	if l.MaxSatSteps == 0 {
		l.MaxSatSteps = 5_000_000
	}
	if l.MaxInstantiations == 0 {
		l.MaxInstantiations = 50_000
	}
	if l.MaxRounds == 0 {
		l.MaxRounds = 3
	}
	if l.MaxTheoryLemmas == 0 {
		l.MaxTheoryLemmas = 2_000
	}
	return l
}

// Stats reports effort spent by the last CheckSat.
type Stats struct {
	// Instantiations counts ground instances generated.
	Instantiations int
	// GroundClauses counts clauses handed to the SAT core.
	GroundClauses int
	// TheoryLemmas counts blocking clauses added by theory refutation.
	TheoryLemmas int
	// Rounds counts instantiation rounds.
	Rounds int
	// Atoms counts distinct ground atoms.
	Atoms int
	// SAT holds the boolean core's counters.
	SAT sat.Stats
	// Elapsed is the wall-clock duration of the check. For a Result
	// answered from a ResultCache (FromCache set) it is the lookup or
	// in-flight-wait time, not the original solve's duration.
	Elapsed time.Duration
	// FromCache marks a Result served by a ResultCache — either a stored
	// entry or a share of a concurrent in-flight solve — rather than a
	// fresh solver run.
	FromCache bool `json:",omitempty"`
}

// Result is the outcome of a CheckSat.
type Result struct {
	// Status is sat/unsat/unknown.
	Status Status
	// Reason explains Unknown results (budget kind) and is empty
	// otherwise.
	Reason string
	// Placeholders lists uninterpreted ambiguity predicates that occurred
	// in the problem; per the paper these mark where human judgment is
	// required regardless of the verdict.
	Placeholders []string
	// Model holds the truth values of nullary predicates in the found
	// model when Status == Sat (nil otherwise). For the pipeline these
	// are the vague-condition placeholders of the countermodel — showing
	// exactly which interpretations of the ambiguous terms defeat the
	// query.
	Model map[string]bool
	// Stats reports effort.
	Stats Stats
}

// Solver is an incremental SMT solver for quantified UF formulas.
// Assertions are grouped into scopes managed by Push/Pop.
type Solver struct {
	// Limits bounds effort; the zero value uses defaults.
	Limits Limits
	// Strategy selects the quantifier-instantiation scheme; the zero
	// value is FullGrounding.
	Strategy InstStrategy
	scopes   [][]*fol.Formula
}

// NewSolver returns a solver with one open scope.
func NewSolver() *Solver {
	return &Solver{scopes: [][]*fol.Formula{{}}}
}

// Assert adds a sentence to the current scope. Free variables are
// implicitly universally quantified, following SMT-LIB convention for
// top-level clauses produced from prenex formulas.
func (s *Solver) Assert(f *fol.Formula) {
	top := len(s.scopes) - 1
	s.scopes[top] = append(s.scopes[top], f)
}

// Push opens a new assertion scope.
func (s *Solver) Push() { s.scopes = append(s.scopes, nil) }

// Pop discards the most recent scope. Popping the base scope is a no-op.
func (s *Solver) Pop() {
	if len(s.scopes) > 1 {
		s.scopes = s.scopes[:len(s.scopes)-1]
	}
}

// Assertions returns all formulas currently asserted, in order.
func (s *Solver) Assertions() []*fol.Formula {
	var out []*fol.Formula
	for _, sc := range s.scopes {
		out = append(out, sc...)
	}
	return out
}

// CheckSat decides satisfiability of the conjunction of all assertions.
func (s *Solver) CheckSat() Result {
	return s.check(context.Background(), nil)
}

// CheckSatCtx is CheckSat with cancellation: the context is polled inside
// the instantiation and DPLL(T) refinement loops, so a cancelled caller
// (e.g. an aborted AskBatch) stops burning CPU promptly instead of
// running to the solver's own resource limits. A cancelled check returns
// Unknown with reason "canceled".
func (s *Solver) CheckSatCtx(ctx context.Context) Result {
	return s.check(ctx, nil)
}

// CheckSatAssuming decides satisfiability with the extra formulas assumed
// for this call only, mirroring SMT-LIB's check-sat-assuming.
func (s *Solver) CheckSatAssuming(assumptions ...*fol.Formula) Result {
	return s.check(context.Background(), assumptions)
}

// CheckSatAssumingCtx is CheckSatAssuming with cancellation (see
// CheckSatCtx).
func (s *Solver) CheckSatAssumingCtx(ctx context.Context, assumptions ...*fol.Formula) Result {
	return s.check(ctx, assumptions)
}

// canceledReason marks Unknown results caused by context cancellation.
const canceledReason = "canceled"

// atomInfo records a ground atom and its SAT variable.
type atomInfo struct {
	atom *fol.Formula
	v    int
}

// check's result must be named: the deferred Elapsed stamp below writes
// to the return slot after every early return in this long function.
func (s *Solver) check(ctx context.Context, assumptions []*fol.Formula) (res Result) {
	start := time.Now()
	lim := s.Limits.withDefaults()
	deadline := time.Time{}
	if lim.Timeout > 0 {
		deadline = start.Add(lim.Timeout)
	}
	defer func() { res.Stats.Elapsed = time.Since(start) }()

	if ctx.Err() != nil {
		res.Status = Unknown
		res.Reason = canceledReason
		return res
	}
	all := append(s.Assertions(), assumptions...)
	if len(all) == 0 {
		res.Status = Sat
		return res
	}
	placeholders := map[string]bool{}
	conj := make([]*fol.Formula, len(all))
	for i, f := range all {
		for _, u := range f.UninterpretedAtoms() {
			placeholders[u] = true
		}
		conj[i] = f
	}
	for p := range placeholders {
		res.Placeholders = append(res.Placeholders, p)
	}
	sort.Strings(res.Placeholders)

	// Normalize: NNF -> prenex -> Skolemize -> clauses with implicitly
	// universally quantified variables.
	var clauses []fol.Clause
	hasQuant := false
	hasFuncs := false
	for _, f := range conj {
		cs, err := fol.ClausesOf(fol.Simplify(f))
		if err != nil {
			res.Status = Unknown
			res.Reason = "clausification failed: " + err.Error()
			return res
		}
		clauses = append(clauses, cs...)
	}
	for _, c := range clauses {
		for _, lit := range c {
			if len(litFreeVars(lit)) > 0 {
				hasQuant = true
			}
			for _, t := range lit.Atom.Terms {
				if termHasApp(t) {
					hasFuncs = true
				}
			}
		}
	}

	// Ground term universe: constants from the clauses plus a default
	// element (the domain is nonempty).
	universe := collectConstants(clauses)
	if len(universe) == 0 {
		universe = []fol.Term{fol.Const("$elem")}
	}

	// Instantiation: ground the non-ground clauses under the selected
	// strategy.
	var ground []fol.Clause
	var inst instStats
	var complete bool
	if s.Strategy == TriggerBased {
		ground, inst, complete = triggerInstantiate(ctx, clauses, lim)
	} else {
		ground, inst, complete = s.instantiate(ctx, clauses, universe, lim, deadline)
	}
	if ctx.Err() != nil {
		res.Status = Unknown
		res.Reason = canceledReason
		res.Stats.Instantiations = inst.count
		res.Stats.Rounds = inst.rounds
		return res
	}
	res.Stats.Instantiations = inst.count
	res.Stats.Rounds = inst.rounds
	res.Stats.GroundClauses = len(ground)

	// Boolean abstraction.
	atoms := map[string]*atomInfo{}
	nextVar := 0
	core := sat.New()
	core.Budget = lim.MaxSatSteps
	varOf := func(a *fol.Formula) int {
		key := a.String()
		if info, ok := atoms[key]; ok {
			return info.v
		}
		nextVar++
		atoms[key] = &atomInfo{atom: a, v: nextVar}
		return nextVar
	}
	for _, c := range ground {
		lits := make([]sat.Lit, 0, len(c))
		for _, lit := range c {
			v := sat.Lit(varOf(lit.Atom))
			if lit.Neg {
				v = v.Neg()
			}
			lits = append(lits, v)
		}
		core.AddClause(lits...)
	}
	res.Stats.Atoms = len(atoms)

	// DPLL(T) refinement loop.
	for lemmas := 0; ; lemmas++ {
		if ctx.Err() != nil {
			res.Status = Unknown
			res.Reason = canceledReason
			res.Stats.SAT = core.Stats()
			return res
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			res.Status = Unknown
			res.Reason = "timeout"
			res.Stats.SAT = core.Stats()
			return res
		}
		if lemmas > lim.MaxTheoryLemmas {
			res.Status = Unknown
			res.Reason = "theory lemma budget exhausted"
			res.Stats.SAT = core.Stats()
			return res
		}
		switch core.Solve() {
		case sat.Unsat:
			res.Status = Unsat
			res.Stats.SAT = core.Stats()
			res.Stats.TheoryLemmas = lemmas
			return res
		case sat.Unknown:
			res.Status = Unknown
			res.Reason = "SAT step budget exhausted"
			res.Stats.SAT = core.Stats()
			res.Stats.TheoryLemmas = lemmas
			return res
		}
		conflict, err := theoryConflict(atoms, core)
		if err != nil {
			res.Status = Unknown
			res.Reason = err.Error()
			res.Stats.SAT = core.Stats()
			return res
		}
		if conflict == nil {
			res.Stats.SAT = core.Stats()
			res.Stats.TheoryLemmas = lemmas
			// A model was found. It is definitive only when instantiation
			// was complete for a fragment where grounding is exhaustive.
			if hasQuant && (!complete || hasFuncs) {
				res.Status = Unknown
				res.Reason = "model found but quantifier instantiation incomplete"
				return res
			}
			res.Status = Sat
			res.Model = map[string]bool{}
			for _, info := range atoms {
				if info.atom.Op == fol.OpPred && len(info.atom.Terms) == 0 {
					res.Model[info.atom.Pred] = core.Value(info.v)
				}
			}
			return res
		}
		core.AddClause(conflict...)
	}
}

// litFreeVars returns free variables of a literal's atom.
func litFreeVars(l fol.Literal) []string { return fol.FreeVars(l.Atom) }

func termHasApp(t fol.Term) bool {
	if t.Kind == fol.TermApp {
		return true
	}
	for _, a := range t.Args {
		if termHasApp(a) {
			return true
		}
	}
	return false
}

func collectConstants(clauses []fol.Clause) []fol.Term {
	seen := map[string]bool{}
	var out []fol.Term
	var walk func(t fol.Term)
	walk = func(t fol.Term) {
		switch t.Kind {
		case fol.TermConst:
			if !seen[t.Name] {
				seen[t.Name] = true
				out = append(out, t)
			}
		case fol.TermApp:
			for _, a := range t.Args {
				walk(a)
			}
		}
	}
	for _, c := range clauses {
		for _, lit := range c {
			for _, t := range lit.Atom.Terms {
				walk(t)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

type instStats struct {
	count  int
	rounds int
}

// instantiate grounds non-ground clauses over the term universe. Skolem
// functions applied to universe elements extend the universe for the next
// round, up to the round budget — or until ctx is cancelled, since the
// odometer enumeration is where a large encoding spends most of its time.
// It reports whether instantiation reached a fixpoint (complete
// grounding).
func (s *Solver) instantiate(ctx context.Context, clauses []fol.Clause, universe []fol.Term, lim Limits, deadline time.Time) ([]fol.Clause, instStats, bool) {
	var ground []fol.Clause
	var nonGround []fol.Clause
	for _, c := range clauses {
		if clauseVars(c) == nil {
			ground = append(ground, c)
		} else {
			nonGround = append(nonGround, c)
		}
	}
	st := instStats{}
	if len(nonGround) == 0 {
		return ground, st, true
	}
	complete := true
	seenClause := map[string]bool{}
	termSeen := map[string]bool{}
	for _, t := range universe {
		termSeen[t.String()] = true
	}
	for round := 0; round < lim.MaxRounds; round++ {
		st.rounds = round + 1
		var newTerms []fol.Term
		grew := false
		for _, c := range nonGround {
			vars := clauseVars(c)
			// Odometer enumeration of index tuples: lazy, so huge tuple
			// spaces cost nothing beyond the instantiation budget.
			idxs := make([]int, len(vars))
			for done := false; !done; done = advance(idxs, len(universe)) {
				if st.count >= lim.MaxInstantiations {
					complete = false
					return ground, st, complete
				}
				if ctx.Err() != nil {
					complete = false
					return ground, st, complete
				}
				if !deadline.IsZero() && time.Now().After(deadline) {
					complete = false
					return ground, st, complete
				}
				gc := make(fol.Clause, len(c))
				for i, lit := range c {
					atom := lit.Atom
					for vi, v := range vars {
						atom = fol.Subst(atom, v, universe[idxs[vi]])
					}
					gc[i] = fol.Literal{Neg: lit.Neg, Atom: atom}
				}
				key := clauseKey(gc)
				if seenClause[key] {
					continue
				}
				seenClause[key] = true
				st.count++
				ground = append(ground, gc)
				// Harvest new ground terms (skolem applications).
				for _, lit := range gc {
					for _, t := range lit.Atom.Terms {
						for _, sub := range groundSubterms(t) {
							k := sub.String()
							if !termSeen[k] {
								termSeen[k] = true
								newTerms = append(newTerms, sub)
								grew = true
							}
						}
					}
				}
			}
		}
		if !grew {
			return ground, st, complete
		}
		universe = append(universe, newTerms...)
		if round == lim.MaxRounds-1 {
			complete = false
		}
	}
	return ground, st, complete
}

func clauseVars(c fol.Clause) []string {
	set := map[string]bool{}
	for _, lit := range c {
		for _, v := range fol.FreeVars(lit.Atom) {
			set[v] = true
		}
	}
	if len(set) == 0 {
		return nil
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func clauseKey(c fol.Clause) string {
	parts := make([]string, len(c))
	for i, l := range c {
		parts[i] = l.String()
	}
	sort.Strings(parts)
	return strings.Join(parts, "|")
}

// advance increments an odometer of k digits in base n; it reports true
// when the odometer wraps (enumeration complete). A zero-length odometer
// wraps immediately after its single (empty) tuple.
func advance(idxs []int, n int) bool {
	if len(idxs) == 0 || n == 0 {
		return true
	}
	for i := len(idxs) - 1; i >= 0; i-- {
		idxs[i]++
		if idxs[i] < n {
			return false
		}
		idxs[i] = 0
	}
	return true
}

// groundSubterms returns all ground subterms of t including t itself.
func groundSubterms(t fol.Term) []fol.Term {
	if len(fol.FreeVars(fol.Pred("$tmp", t))) > 0 {
		// Contains a variable somewhere; recurse to find ground pieces.
		var out []fol.Term
		for _, a := range t.Args {
			out = append(out, groundSubterms(a)...)
		}
		return out
	}
	out := []fol.Term{t}
	for _, a := range t.Args {
		out = append(out, groundSubterms(a)...)
	}
	return out
}

// theoryConflict checks the SAT model for EUF consistency. It returns a
// blocking clause on conflict, nil when consistent.
func theoryConflict(atoms map[string]*atomInfo, core *sat.Solver) ([]sat.Lit, error) {
	cc := NewCC()
	trueID := cc.AddConst("$T")
	falseID := cc.AddConst("$F")
	type diseq struct {
		a, b int
		lit  sat.Lit
	}
	var diseqs []diseq
	var involved []sat.Lit

	// Sort atoms for determinism.
	keys := make([]string, 0, len(atoms))
	for k := range atoms {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		info := atoms[k]
		a := info.atom
		val := core.Value(info.v)
		lit := sat.Lit(info.v)
		if !val {
			lit = lit.Neg()
		}
		switch a.Op {
		case fol.OpEq:
			x, err := cc.AddTerm(a.Terms[0])
			if err != nil {
				return nil, err
			}
			y, err := cc.AddTerm(a.Terms[1])
			if err != nil {
				return nil, err
			}
			if val {
				cc.Merge(x, y)
			} else {
				diseqs = append(diseqs, diseq{x, y, lit})
			}
			involved = append(involved, lit)
		case fol.OpPred:
			if len(a.Terms) == 0 {
				continue // purely propositional
			}
			args := make([]int, len(a.Terms))
			for i, t := range a.Terms {
				id, err := cc.AddTerm(t)
				if err != nil {
					return nil, err
				}
				args[i] = id
			}
			app := cc.AddApp("p:"+a.Pred, args)
			if val {
				cc.Merge(app, trueID)
			} else {
				cc.Merge(app, falseID)
			}
			involved = append(involved, lit)
		default:
			return nil, fmt.Errorf("smt: non-atomic abstraction %s", a)
		}
	}
	conflictFound := cc.Equal(trueID, falseID)
	if !conflictFound {
		for _, d := range diseqs {
			if cc.Equal(d.a, d.b) {
				conflictFound = true
				break
			}
		}
	}
	if !conflictFound {
		return nil, nil
	}
	// Naive explanation: block the entire theory-relevant assignment.
	block := make([]sat.Lit, len(involved))
	for i, l := range involved {
		block[i] = l.Neg()
	}
	return block, nil
}
