package smt

import (
	"github.com/privacy-quagmire/quagmire/internal/fol"
	"github.com/privacy-quagmire/quagmire/internal/sat"
)

// ccInt is a congruence closure over arena-interned terms: union-find with
// congruence propagation, keyed entirely by dense integer node IDs. It is
// the theory-check counterpart of the exported CC (euf.go), which interns
// by rendered strings; the DPLL(T) hot loop uses this one so a theory
// check allocates no strings at all.
type ccInt struct {
	arena    *fol.Arena
	parent   []int
	rank     []int
	uses     [][]int // class rep -> app nodes with an argument in the class
	sigs     map[uint64][]int
	appKey   []int64 // app node -> kind<<32|sym; -1 for leaf nodes
	appArgs  [][]int
	termMemo map[fol.TermID]int
	pending  [][2]int
}

// App-node kinds, mixed into the signature so a predicate and a function
// with the same symbol never collide.
const (
	ccKindFunc int64 = 1
	ccKindPred int64 = 2
)

func newCCInt(arena *fol.Arena) *ccInt {
	return &ccInt{
		arena:    arena,
		sigs:     map[uint64][]int{},
		termMemo: map[fol.TermID]int{},
	}
}

func (cc *ccInt) newNode(key int64, args []int) int {
	n := len(cc.parent)
	cc.parent = append(cc.parent, n)
	cc.rank = append(cc.rank, 0)
	cc.uses = append(cc.uses, nil)
	cc.appKey = append(cc.appKey, key)
	cc.appArgs = append(cc.appArgs, args)
	return n
}

// newLeaf creates a fresh uninterpreted element (constants, $T, $F).
func (cc *ccInt) newLeaf() int { return cc.newNode(-1, nil) }

func (cc *ccInt) find(x int) int {
	for cc.parent[x] != x {
		cc.parent[x] = cc.parent[cc.parent[x]] // path halving
		x = cc.parent[x]
	}
	return x
}

func (cc *ccInt) sigHash(app int) uint64 {
	h := uint64(14695981039346656037)
	mix := func(v uint64) { h = (h ^ v) * 1099511628211 }
	mix(uint64(cc.appKey[app]))
	for _, a := range cc.appArgs[app] {
		mix(uint64(cc.find(a)) + 1)
	}
	return h
}

// congruent reports whether two app nodes have the same head and pairwise
// congruent arguments.
func (cc *ccInt) congruent(a, b int) bool {
	if cc.appKey[a] != cc.appKey[b] || len(cc.appArgs[a]) != len(cc.appArgs[b]) {
		return false
	}
	for i := range cc.appArgs[a] {
		if cc.find(cc.appArgs[a][i]) != cc.find(cc.appArgs[b][i]) {
			return false
		}
	}
	return true
}

// app interns an application node, returning an existing congruent node
// when one is present in the signature table.
func (cc *ccInt) app(kind int64, sym fol.Sym, args []int) int {
	n := cc.newNode(kind<<32|int64(sym), args)
	h := cc.sigHash(n)
	for _, cand := range cc.sigs[h] {
		if cc.congruent(n, cand) {
			// Alias the fresh node to the existing congruence class so the
			// caller's handle follows it.
			cc.parent[n] = cc.find(cand)
			return n
		}
	}
	cc.sigs[h] = append(cc.sigs[h], n)
	for _, a := range args {
		r := cc.find(a)
		cc.uses[r] = append(cc.uses[r], n)
	}
	return n
}

// nodeOfTerm interns a ground arena term (memoized per TermID).
func (cc *ccInt) nodeOfTerm(id fol.TermID) int {
	if n, ok := cc.termMemo[id]; ok {
		return n
	}
	var n int
	if cc.arena.TermKindOf(id) == fol.TermApp {
		args := cc.arena.TermArgs(id)
		as := make([]int, len(args))
		for i, a := range args {
			as[i] = cc.nodeOfTerm(a)
		}
		n = cc.app(ccKindFunc, cc.arena.TermSym(id), as)
	} else {
		n = cc.newLeaf()
	}
	cc.termMemo[id] = n
	return n
}

// merge unions two classes and propagates congruences to fixpoint.
func (cc *ccInt) merge(a, b int) {
	cc.pending = append(cc.pending, [2]int{a, b})
	for len(cc.pending) > 0 {
		p := cc.pending[len(cc.pending)-1]
		cc.pending = cc.pending[:len(cc.pending)-1]
		ra, rb := cc.find(p[0]), cc.find(p[1])
		if ra == rb {
			continue
		}
		if cc.rank[ra] < cc.rank[rb] {
			ra, rb = rb, ra
		}
		cc.parent[rb] = ra
		if cc.rank[ra] == cc.rank[rb] {
			cc.rank[ra]++
		}
		// Re-key the absorbed class's parent applications; congruent pairs
		// surface as further merges.
		moved := cc.uses[rb]
		cc.uses[rb] = nil
		for _, app := range moved {
			h := cc.sigHash(app)
			matched := false
			for _, cand := range cc.sigs[h] {
				if cand != app && cc.find(cand) != cc.find(app) && cc.congruent(app, cand) {
					cc.pending = append(cc.pending, [2]int{app, cand})
					matched = true
					break
				}
			}
			if !matched {
				cc.sigs[h] = append(cc.sigs[h], app)
			}
			cc.uses[cc.find(app)] = append(cc.uses[cc.find(app)], app)
		}
	}
}

func (cc *ccInt) equal(a, b int) bool { return cc.find(a) == cc.find(b) }

// theoryConflict checks the current SAT model for EUF consistency over the
// interned atoms. It returns a blocking clause on conflict, nil when the
// model is theory-consistent. The explanation is naive — the entire
// theory-relevant assignment — matching the exported solver's behavior.
func (g *groundCore) theoryConflict() []sat.Lit {
	cc := newCCInt(g.arena)
	trueN := cc.newLeaf()
	falseN := cc.newLeaf()
	type diseq struct{ a, b int }
	var diseqs []diseq
	var involved []sat.Lit

	for v := 1; v <= g.nextVar; v++ {
		a := g.varAtom[v]
		if a < 0 {
			continue // selector variable, no theory content
		}
		args := g.arena.AtomArgs(a)
		if !g.arena.AtomEq(a) && len(args) == 0 {
			continue // purely propositional
		}
		val := g.core.Value(v)
		lit := sat.Lit(v)
		if !val {
			lit = lit.Neg()
		}
		if g.arena.AtomEq(a) {
			x := cc.nodeOfTerm(args[0])
			y := cc.nodeOfTerm(args[1])
			if val {
				cc.merge(x, y)
			} else {
				diseqs = append(diseqs, diseq{x, y})
			}
			involved = append(involved, lit)
			continue
		}
		nodes := make([]int, len(args))
		for i, t := range args {
			nodes[i] = cc.nodeOfTerm(t)
		}
		app := cc.app(ccKindPred, g.arena.AtomPred(a), nodes)
		if val {
			cc.merge(app, trueN)
		} else {
			cc.merge(app, falseN)
		}
		involved = append(involved, lit)
	}

	conflict := cc.equal(trueN, falseN)
	if !conflict {
		for _, d := range diseqs {
			if cc.equal(d.a, d.b) {
				conflict = true
				break
			}
		}
	}
	if !conflict {
		return nil
	}
	block := make([]sat.Lit, len(involved))
	for i, l := range involved {
		block[i] = l.Neg()
	}
	return block
}
