package core

// Analysis codec: one self-describing envelope per analysis, replacing
// the old per-company scatter of cache blobs. The envelope is versioned
// so future schema changes can migrate old payloads instead of misreading
// them, and it is the unit the policy store persists per version.

import (
	"encoding/json"
	"fmt"

	"github.com/privacy-quagmire/quagmire/internal/extract"
	"github.com/privacy-quagmire/quagmire/internal/graph"
	"github.com/privacy-quagmire/quagmire/internal/kg"
	"github.com/privacy-quagmire/quagmire/internal/smt"
)

// CodecVersion is the current analysis envelope schema version. Decoders
// accept any version up to this and migrate older layouts; payloads from
// a newer build are rejected rather than misread.
//
// v2 adds the optional interned solver-core image: when the encoding
// analysis carries a shared incremental core, its hash-consed arena and
// base clause set persist alongside the knowledge graph, and decoding
// seeds the restored engine's core by table load instead of
// re-clausifying and re-hash-consing the whole policy.
const CodecVersion = 2

// analysisEnvelope is the serialized form of one Analysis.
type analysisEnvelope struct {
	// Codec is the schema version of this payload.
	Codec int `json:"codec"`
	// Extraction is the Phase 1 output (BySegment is rebuilt on decode).
	Extraction *extract.Extraction `json:"extraction"`
	// Company plus the three graph components are the Phase 2 output.
	Company string           `json:"company"`
	ED      *graph.Graph     `json:"ed"`
	DataH   *graph.Hierarchy `json:"data_hierarchy"`
	EntityH *graph.Hierarchy `json:"entity_hierarchy"`
	// Core is the persisted shared solver core (v2, optional — present
	// only when the encoding engine ran with a shared incremental core).
	Core *smt.CoreImage `json:"core,omitempty"`
}

// EncodeAnalysis serializes an analysis into the versioned envelope. The
// query engine itself is derived state and is not serialized — but when it
// runs a shared incremental core, the core's interned base state is
// exported into the envelope so decoding restores it without recomputation.
func EncodeAnalysis(a *Analysis) ([]byte, error) {
	env := analysisEnvelope{
		Codec:      CodecVersion,
		Extraction: a.Extraction,
		Company:    a.KG.Company,
		ED:         a.KG.ED,
		DataH:      a.KG.DataH,
		EntityH:    a.KG.EntityH,
	}
	if a.Engine != nil {
		env.Core = a.Engine.ExportCoreImage()
	}
	data, err := json.Marshal(env)
	if err != nil {
		return nil, fmt.Errorf("core: encode analysis: %w", err)
	}
	return data, nil
}

// decodeEnvelope parses and validates the envelope without building
// derived state.
func decodeEnvelope(data []byte) (*analysisEnvelope, error) {
	var env analysisEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, fmt.Errorf("core: decode analysis: %w", err)
	}
	if env.Codec < 1 || env.Codec > CodecVersion {
		return nil, fmt.Errorf("core: analysis codec %d unsupported (max %d)", env.Codec, CodecVersion)
	}
	if env.Extraction == nil || env.ED == nil || env.DataH == nil || env.EntityH == nil {
		return nil, fmt.Errorf("core: analysis payload incomplete")
	}
	rebuildBySegment(env.Extraction)
	return &env, nil
}

// rebuildBySegment restores the non-serialized practice index.
func rebuildBySegment(ex *extract.Extraction) {
	ex.BySegment = map[string][]extract.Practice{}
	for _, seg := range ex.Segments {
		ex.BySegment[seg.ID] = nil
	}
	for _, pr := range ex.Practices {
		ex.BySegment[pr.SegmentID] = append(ex.BySegment[pr.SegmentID], pr)
	}
}

// DecodeAnalysisEnvelope restores an encoded analysis up to but not
// including the query engine: the envelope is parsed and validated, the
// practice index rebuilt, and the knowledge graph reassembled. The
// returned Analysis has a nil Engine — callers that only need metadata
// (version diffing, warm-order planning) stop here; callers that will
// serve queries attach an engine with Pipeline.BuildEngine. The split is
// what makes lazy recovery cheap: the store can be indexed and triaged
// without paying engine construction per policy.
func DecodeAnalysisEnvelope(data []byte) (*Analysis, error) {
	env, err := decodeEnvelope(data)
	if err != nil {
		return nil, err
	}
	k := &kg.KnowledgeGraph{
		Company: env.Company,
		ED:      env.ED,
		DataH:   env.DataH,
		EntityH: env.EntityH,
	}
	return &Analysis{Extraction: env.Extraction, KG: k, CoreImage: env.Core}, nil
}

// BuildEngine attaches a query engine — wired to this pipeline's limits,
// workers, caches and metrics — to a decoded analysis. A core image
// decoded from a v2 payload is handed to the engine, which restores its
// shared solver from it on first use. Idempotent: an analysis that
// already has an engine is left untouched.
func (p *Pipeline) BuildEngine(a *Analysis) {
	if a.Engine == nil {
		a.Engine = p.newEngine(a.KG)
		a.Engine.PreloadCore = a.CoreImage
	}
}

// DecodeAnalysis restores an encoded analysis and rebuilds its derived
// state — the practice index and a query engine wired to this pipeline's
// limits, workers, caches and metrics — so a restored policy answers
// queries exactly like a freshly analyzed one. It is
// DecodeAnalysisEnvelope followed by BuildEngine.
func (p *Pipeline) DecodeAnalysis(data []byte) (*Analysis, error) {
	a, err := DecodeAnalysisEnvelope(data)
	if err != nil {
		return nil, err
	}
	p.BuildEngine(a)
	return a, nil
}

// DecodeExtraction restores only the Phase 1 extraction from an encoded
// analysis — enough for version diffing without rebuilding graphs or
// engines.
func DecodeExtraction(data []byte) (*extract.Extraction, error) {
	env, err := decodeEnvelope(data)
	if err != nil {
		return nil, err
	}
	return env.Extraction, nil
}
