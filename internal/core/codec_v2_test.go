package core

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/corpus"
	"github.com/privacy-quagmire/quagmire/internal/query"
)

// sharedPipeline builds a pipeline whose engines run the shared
// incremental core — the configuration under which codec v2 persists the
// interned solver state.
func sharedPipeline(t testing.TB) *Pipeline {
	t.Helper()
	p, err := New(Options{SharedSolverCore: true})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCodecV2PersistsSolverCore: encoding a shared-core analysis embeds
// the interned arena + base clauses, and decoding restores the solver by
// table load (counted by quagmire_ground_core_restores_total) instead of
// rebuilding it — with identical verdicts.
func TestCodecV2PersistsSolverCore(t *testing.T) {
	ctx := context.Background()
	p := sharedPipeline(t)
	orig, err := p.Analyze(ctx, corpus.Mini())
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeAnalysis(orig)
	if err != nil {
		t.Fatal(err)
	}
	var env analysisEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	if env.Codec != 2 || env.Core == nil {
		t.Fatalf("shared-core payload: codec %d, core nil=%v; want codec 2 with core", env.Codec, env.Core == nil)
	}
	if len(env.Core.Clauses) == 0 || len(env.Core.Arena.Syms) == 0 {
		t.Fatalf("persisted core is empty: %d clauses, %d syms", len(env.Core.Clauses), len(env.Core.Arena.Syms))
	}

	p2 := sharedPipeline(t)
	loaded, err := p2.DecodeAnalysis(data)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.CoreImage == nil || loaded.Engine.PreloadCore == nil {
		t.Fatal("decoded analysis lost the core image on the way to the engine")
	}
	for q, want := range map[string]query.Verdict{
		"Does Acme sell my personal information?":                     query.Invalid,
		"Does Acme share my email address with advertising partners?": query.Valid,
	} {
		res, err := loaded.Engine.Ask(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != want {
			t.Errorf("%q verdict = %s, want %s", q, res.Verdict, want)
		}
	}
	if restores := p2.Obs().Counter("quagmire_ground_core_restores_total").Value(); restores != 1 {
		t.Errorf("core restores = %d, want 1", restores)
	}
	if builds := p2.Obs().Counter("quagmire_ground_core_builds_total").Value(); builds != 0 {
		t.Errorf("core builds = %d, want 0 (restore should have preempted the build)", builds)
	}
}

// TestCodecV2OmitsCoreWithoutSharedEngine: default pipelines (per-query
// subgraph solving) have no long-lived core — their payloads must not grow
// a core section, keeping ingest byte-output unchanged.
func TestCodecV2OmitsCoreWithoutSharedEngine(t *testing.T) {
	p, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Analyze(context.Background(), corpus.Mini())
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeAnalysis(a)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte(`"core"`)) {
		t.Error("non-shared payload contains a core section")
	}
	var env analysisEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	if env.Core != nil {
		t.Error("non-shared payload decoded with a core image")
	}
}

// TestCodecV1StillDecodes: a v1 payload (codec 1, no core section) must
// decode on a current build — the engine simply rebuilds its core from
// the knowledge graph as before.
func TestCodecV1StillDecodes(t *testing.T) {
	ctx := context.Background()
	p := sharedPipeline(t)
	a, err := p.Analyze(ctx, corpus.Mini())
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeAnalysis(a)
	if err != nil {
		t.Fatal(err)
	}
	// Downgrade to the v1 layout: codec 1, core section absent.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	raw["codec"] = json.RawMessage("1")
	delete(raw, "core")
	v1, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}

	p2 := sharedPipeline(t)
	loaded, err := p2.DecodeAnalysis(v1)
	if err != nil {
		t.Fatalf("v1 payload rejected: %v", err)
	}
	if loaded.CoreImage != nil {
		t.Error("v1 payload produced a core image")
	}
	res, err := loaded.Engine.Ask(ctx, "Does Acme share my email address with advertising partners?")
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != query.Valid {
		t.Errorf("v1-decoded verdict = %s, want %s", res.Verdict, query.Valid)
	}
	if builds := p2.Obs().Counter("quagmire_ground_core_builds_total").Value(); builds != 1 {
		t.Errorf("core builds = %d, want 1 (v1 has no image to restore)", builds)
	}
}

// TestCodecV2RestoresWithoutSharedCore pins the per-policy restore path:
// a default pipeline (per-query subgraph solving, no shared core) decodes
// a v2 payload into an engine with identical verdicts and never touches
// the shared-core restore/build machinery — whether the payload carries a
// core image or not. This is the path every follower and every default
// primary takes for each replicated record.
func TestCodecV2RestoresWithoutSharedCore(t *testing.T) {
	ctx := context.Background()
	defaultPipeline := func() *Pipeline {
		p, err := New(Options{})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	// Two payload provenances: one encoded without a core image (default
	// pipeline) and one with (shared-core pipeline). A default decoder
	// must serve both.
	encode := func(p *Pipeline) []byte {
		a, err := p.Analyze(ctx, corpus.Mini())
		if err != nil {
			t.Fatal(err)
		}
		data, err := EncodeAnalysis(a)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	for name, data := range map[string][]byte{
		"coreless payload":    encode(defaultPipeline()),
		"shared-core payload": encode(sharedPipeline(t)),
	} {
		p := defaultPipeline()
		loaded, err := p.DecodeAnalysis(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", name, err)
		}
		if loaded.Engine == nil {
			t.Fatalf("%s: decoded analysis has no engine", name)
		}
		for q, want := range map[string]query.Verdict{
			"Does Acme sell my personal information?":                     query.Invalid,
			"Does Acme share my email address with advertising partners?": query.Valid,
		} {
			res, err := loaded.Engine.Ask(ctx, q)
			if err != nil {
				t.Fatalf("%s: %q: %v", name, q, err)
			}
			if res.Verdict != want {
				t.Errorf("%s: %q verdict = %s, want %s", name, q, res.Verdict, want)
			}
		}
		obs := p.Obs()
		for _, counter := range []string{
			"quagmire_ground_core_restores_total",
			"quagmire_ground_core_builds_total",
			"quagmire_ground_core_restore_failures_total",
		} {
			if v := obs.Counter(counter).Value(); v != 0 {
				t.Errorf("%s: %s = %d, want 0 (no shared core in play)", name, counter, v)
			}
		}
	}
}

// TestCorruptPayloadsErrorNotPanic: hostile or damaged payload bytes must
// surface as decode errors — the signal the serving layer quarantines
// on — never as a panic or a half-built analysis.
func TestCorruptPayloadsErrorNotPanic(t *testing.T) {
	p := sharedPipeline(t)
	a, err := p.Analyze(context.Background(), corpus.Mini())
	if err != nil {
		t.Fatal(err)
	}
	valid, err := EncodeAnalysis(a)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":            {},
		"not json":         []byte("\xff\xfe:definitely-not-json"),
		"wrong shape":      []byte(`[1,2,3]`),
		"truncated":        valid[:len(valid)/2],
		"future codec":     []byte(`{"codec":99}`),
		"zero codec":       []byte(`{"codec":0}`),
		"missing sections": []byte(`{"codec":2}`),
	}
	for name, data := range cases {
		if _, err := p.DecodeAnalysis(data); err == nil {
			t.Errorf("%s: decode accepted a corrupt payload", name)
		}
		if _, err := DecodeAnalysisEnvelope(data); err == nil {
			t.Errorf("%s: envelope decode accepted a corrupt payload", name)
		}
		if _, err := DecodeExtraction(data); err == nil {
			t.Errorf("%s: extraction decode accepted a corrupt payload", name)
		}
	}
}

// TestCorruptCoreImageFallsBack: a tampered core image must not fail the
// decode or the query — the engine detects the corruption at first use
// and falls back to the full build.
func TestCorruptCoreImageFallsBack(t *testing.T) {
	ctx := context.Background()
	p := sharedPipeline(t)
	a, err := p.Analyze(ctx, corpus.Mini())
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeAnalysis(a)
	if err != nil {
		t.Fatal(err)
	}
	var env analysisEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatal(err)
	}
	env.Core.Arena.Terms[0] = 99 // invalid term kind
	corrupted, err := json.Marshal(env)
	if err != nil {
		t.Fatal(err)
	}

	p2 := sharedPipeline(t)
	loaded, err := p2.DecodeAnalysis(corrupted)
	if err != nil {
		t.Fatalf("decode rejected payload with corrupt core: %v", err)
	}
	res, err := loaded.Engine.Ask(ctx, "Does Acme share my email address with advertising partners?")
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != query.Valid {
		t.Errorf("fallback verdict = %s, want %s", res.Verdict, query.Valid)
	}
	obs := p2.Obs()
	if fails := obs.Counter("quagmire_ground_core_restore_failures_total").Value(); fails != 1 {
		t.Errorf("restore failures = %d, want 1", fails)
	}
	if builds := obs.Counter("quagmire_ground_core_builds_total").Value(); builds != 1 {
		t.Errorf("core builds = %d, want 1 (the fallback)", builds)
	}
}
