package core
