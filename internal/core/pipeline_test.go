package core

import (
	"context"
	"strings"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/corpus"
	"github.com/privacy-quagmire/quagmire/internal/query"
)

func TestAnalyzeMiniPolicy(t *testing.T) {
	p, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Analyze(context.Background(), corpus.Mini())
	if err != nil {
		t.Fatal(err)
	}
	if a.Extraction.Company != "Acme" {
		t.Errorf("company = %q", a.Extraction.Company)
	}
	st := a.Stats()
	if st.Edges == 0 || st.Entities == 0 || st.DataTypes == 0 {
		t.Fatalf("stats = %+v", st)
	}
	res, err := p.Ask(context.Background(), a, "Does Acme share my email address with advertising partners?")
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != query.Valid {
		t.Errorf("verdict = %s", res.Verdict)
	}
}

func TestIncrementalUpdatePipeline(t *testing.T) {
	p, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	a1, err := p.Analyze(context.Background(), corpus.Mini())
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(corpus.Mini(),
		"We collect device identifiers automatically.",
		"We collect device identifiers and browsing history automatically.", 1)
	a2, diff, st, err := p.Update(context.Background(), a1, edited)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff.Added) != 1 {
		t.Errorf("diff added = %d", len(diff.Added))
	}
	if st.EdgesAdded == 0 {
		t.Errorf("update stats = %+v", st)
	}
	if !a2.KG.ED.HasNode("browsing history") {
		t.Error("new node missing after update")
	}
	// Queries still work after an update.
	res, err := p.Ask(context.Background(), a2, "Does Acme collect my browsing history?")
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != query.Valid {
		t.Errorf("post-update verdict = %s", res.Verdict)
	}
}

func TestUpdateDoesNotMutatePrevAnalysis(t *testing.T) {
	p, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	a1, err := p.Analyze(context.Background(), corpus.Mini())
	if err != nil {
		t.Fatal(err)
	}
	before := a1.Stats()
	edited := strings.Replace(corpus.Mini(),
		"We collect device identifiers automatically.",
		"We collect device identifiers and browsing history automatically.", 1)
	a2, _, _, err := p.Update(context.Background(), a1, edited)
	if err != nil {
		t.Fatal(err)
	}
	if a2.KG == a1.KG {
		t.Fatal("update must not alias the previous analysis's graph")
	}
	if after := a1.Stats(); after != before {
		t.Errorf("previous analysis mutated by update: %+v -> %+v", before, after)
	}
	if a1.KG.ED.HasNode("browsing history") {
		t.Error("new node leaked into the previous graph")
	}
	// The old engine still answers against the old graph.
	res, err := a1.Engine.Ask(context.Background(), "Does Acme collect my device identifiers?")
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != query.Valid {
		t.Errorf("pre-update engine verdict = %s", res.Verdict)
	}
}

func TestPipelineAskBatchSharesCache(t *testing.T) {
	p, err := New(Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Analyze(context.Background(), corpus.Mini())
	if err != nil {
		t.Fatal(err)
	}
	qs := []string{
		"Does Acme share my email address with advertising partners?",
		"Does Acme collect my device identifiers?",
		"Does Acme share my email address with advertising partners?",
	}
	items, err := p.AskBatch(context.Background(), a, qs)
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		if it.Err != nil {
			t.Fatalf("query %d: %v", i, it.Err)
		}
	}
	if items[0].Result.Verdict != items[2].Result.Verdict {
		t.Errorf("repeated query verdicts diverged: %s vs %s", items[0].Result.Verdict, items[2].Result.Verdict)
	}
	if st := p.SMTCacheStats(); st.Hits == 0 {
		t.Errorf("repeated query should hit the pipeline's SMT cache: %+v", st)
	}
}

func TestTaxonomyFilterOption(t *testing.T) {
	p, err := New(Options{TaxonomyFilterThreshold: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Analyze(context.Background(), corpus.Mini())
	if err != nil {
		t.Fatal(err)
	}
	if err := a.KG.DataH.Validate(); err != nil {
		t.Error(err)
	}
}

func TestFullCorpusShape(t *testing.T) {
	if testing.Short() {
		t.Skip("corpus-scale test")
	}
	p, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	tik, err := p.Analyze(context.Background(), corpus.TikTak())
	if err != nil {
		t.Fatal(err)
	}
	meta, err := p.Analyze(context.Background(), corpus.MetaBook())
	if err != nil {
		t.Fatal(err)
	}
	ts, ms := tik.Stats(), meta.Stats()
	// The Table 1 qualitative shape: hundreds of edges for TikTak,
	// thousands for MetaBook, MetaBook 2.5-4.5x TikTak on each metric.
	if ts.Edges < 500 || ts.Edges > 1500 {
		t.Errorf("TikTak edges = %d, want ~1000", ts.Edges)
	}
	if ms.Edges < 2500 || ms.Edges > 5000 {
		t.Errorf("MetaBook edges = %d, want ~3800", ms.Edges)
	}
	for name, ratio := range map[string]float64{
		"nodes":     float64(ms.Nodes) / float64(ts.Nodes),
		"edges":     float64(ms.Edges) / float64(ts.Edges),
		"entities":  float64(ms.Entities) / float64(ts.Entities),
		"datatypes": float64(ms.DataTypes) / float64(ts.DataTypes),
	} {
		if ratio < 2 || ratio > 5 {
			t.Errorf("MetaBook/TikTak %s ratio = %.2f, want 2-5", name, ratio)
		}
	}
}
