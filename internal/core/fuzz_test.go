package core

import (
	"context"
	"encoding/json"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/corpus"
	"github.com/privacy-quagmire/quagmire/internal/smt"
)

// FuzzDecodeAnalysis: the analysis codec must never panic — truncated,
// bit-flipped, version-skewed or adversarially structured payloads all
// come back as errors. When a payload does decode and carries a core
// image, restoring the solver from it must hold the same property: the
// image loader is the part of the codec that indexes into itself, so it
// gets driven explicitly.
func FuzzDecodeAnalysis(f *testing.F) {
	p, err := New(Options{SharedSolverCore: true})
	if err != nil {
		f.Fatal(err)
	}
	a, err := p.Analyze(context.Background(), corpus.Mini())
	if err != nil {
		f.Fatal(err)
	}
	valid, err := EncodeAnalysis(a)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated
	// Version-skewed: future codec, and v1 without a core.
	var raw map[string]json.RawMessage
	if err := json.Unmarshal(valid, &raw); err != nil {
		f.Fatal(err)
	}
	raw["codec"] = json.RawMessage("99")
	skewed, _ := json.Marshal(raw)
	f.Add(skewed)
	raw["codec"] = json.RawMessage("1")
	delete(raw, "core")
	v1, _ := json.Marshal(raw)
	f.Add(v1)
	// Structurally valid JSON that is not an envelope.
	f.Add([]byte(`{"codec":2,"core":{"arena":{"syms":["a"],"terms":[2,0,9],"atoms":[0,1,1,5]},"clauses":[[-1],[64]]}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := DecodeAnalysisEnvelope(data)
		if err != nil {
			return
		}
		if env.CoreImage != nil {
			// A loadable envelope may still carry a hostile image; the
			// restore must error, not panic or index out of range.
			inc, err := smt.NewIncrementalFromImage(smt.Limits{}, smt.FullGrounding, env.CoreImage)
			if err == nil && inc == nil {
				t.Fatal("nil solver without error")
			}
		}
		if _, err := DecodeExtraction(data); err != nil {
			t.Fatalf("envelope decoded but extraction failed: %v", err)
		}
	})
}
