package core

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/corpus"
	"github.com/privacy-quagmire/quagmire/internal/query"
)

func TestAnalysisCodecRoundTrip(t *testing.T) {
	p, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	orig, err := p.Analyze(context.Background(), corpus.Mini())
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeAnalysis(orig)
	if err != nil {
		t.Fatal(err)
	}

	// A fresh pipeline (fresh LLM cache) restores the analysis without
	// re-extracting — the restart path.
	p2, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := p2.DecodeAnalysis(data)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Stats() != orig.Stats() {
		t.Errorf("stats: %+v vs %+v", loaded.Stats(), orig.Stats())
	}
	if loaded.Extraction.Company != "Acme" {
		t.Errorf("company = %q", loaded.Extraction.Company)
	}
	if len(loaded.Extraction.BySegment) == 0 {
		t.Error("BySegment not rebuilt")
	}
	if len(loaded.Extraction.BySegment) != len(orig.Extraction.BySegment) {
		t.Errorf("BySegment size %d vs %d", len(loaded.Extraction.BySegment), len(orig.Extraction.BySegment))
	}
	// The rebuilt engine answers queries identically.
	for q, want := range map[string]query.Verdict{
		"Does Acme sell my personal information?":                     query.Invalid,
		"Does Acme share my email address with advertising partners?": query.Valid,
	} {
		res, err := loaded.Engine.Ask(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if res.Verdict != want {
			t.Errorf("%q verdict = %s, want %s", q, res.Verdict, want)
		}
	}
}

func TestDecodedAnalysisSupportsIncrementalUpdate(t *testing.T) {
	// A restored analysis must be a full citizen: the incremental update
	// path (diff against BySegment, clone-and-patch the graph) has to work
	// on it exactly as on a fresh one.
	p, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	orig, err := p.Analyze(context.Background(), corpus.Mini())
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeAnalysis(orig)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := p.DecodeAnalysis(data)
	if err != nil {
		t.Fatal(err)
	}
	edited := strings.Replace(corpus.Mini(),
		"We collect device identifiers automatically.",
		"We collect device identifiers and browsing history automatically.", 1)
	a2, diff, st, err := p.Update(context.Background(), loaded, edited)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff.Added) != 1 {
		t.Errorf("diff added = %d, want 1 (reuse across decode failed)", len(diff.Added))
	}
	if st.EdgesAdded == 0 {
		t.Errorf("update stats = %+v", st)
	}
	if !a2.KG.ED.HasNode("browsing history") {
		t.Error("new node missing after update on decoded analysis")
	}
}

func TestDecodeExtractionOnly(t *testing.T) {
	p, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Analyze(context.Background(), corpus.Mini())
	if err != nil {
		t.Fatal(err)
	}
	data, err := EncodeAnalysis(a)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := DecodeExtraction(data)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Company != "Acme" || len(ex.Practices) != len(a.Extraction.Practices) {
		t.Errorf("extraction: company %q, %d practices", ex.Company, len(ex.Practices))
	}
}

func TestDecodeRejectsBadPayloads(t *testing.T) {
	p, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.DecodeAnalysis([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
	// A payload from a future build must be rejected, not misread.
	future, _ := json.Marshal(map[string]any{"codec": CodecVersion + 1})
	if _, err := p.DecodeAnalysis(future); err == nil || !strings.Contains(err.Error(), "codec") {
		t.Errorf("future codec err = %v", err)
	}
	// A structurally valid envelope missing components is incomplete.
	empty, _ := json.Marshal(map[string]any{"codec": 1})
	if _, err := p.DecodeAnalysis(empty); err == nil {
		t.Error("incomplete payload accepted")
	}
}
