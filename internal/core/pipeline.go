// Package core orchestrates the full three-phase pipeline of Algorithm 1:
// Phase 1 representation extraction, Phase 2 hierarchical graph
// construction, Phase 3 semantic query verification — over any llm.Client
// and embedding model. Analyses serialize through a versioned codec
// (EncodeAnalysis/DecodeAnalysis) so the policy store can persist full
// version history and rebuild query engines after a restart.
package core

import (
	"context"
	"fmt"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/embed"
	"github.com/privacy-quagmire/quagmire/internal/extract"
	"github.com/privacy-quagmire/quagmire/internal/kg"
	"github.com/privacy-quagmire/quagmire/internal/llm"
	"github.com/privacy-quagmire/quagmire/internal/obs"
	"github.com/privacy-quagmire/quagmire/internal/query"
	"github.com/privacy-quagmire/quagmire/internal/segment"
	"github.com/privacy-quagmire/quagmire/internal/smt"
	"github.com/privacy-quagmire/quagmire/internal/taxonomy"
)

// Options configures a pipeline.
type Options struct {
	// Client is the language model; defaults to a cached SimLLM.
	Client llm.Client
	// EmbedModel is the embedding model; defaults to "text-embedding-sim".
	EmbedModel *embed.Model
	// TaxonomyFilter enables the SciBERT-style similarity filter with the
	// given threshold (0 disables).
	TaxonomyFilterThreshold float64
	// Limits bounds the SMT solver for Phase 3.
	Limits smt.Limits
	// Workers bounds both Phase 1 segment-extraction fan-out and Phase 3
	// batch verification; 0 selects runtime.GOMAXPROCS(0), 1 forces
	// sequential processing.
	Workers int
	// SMTCacheSize bounds the shared SMT result cache (entries); 0 selects
	// the default, negative disables caching.
	SMTCacheSize int
	// SharedSolverCore routes each engine's solve stage through one
	// long-lived incremental SMT core (see query.Engine.SharedCore): the
	// policy's ground encoding is built once per knowledge-graph snapshot
	// and batch queries share it via solver assumptions.
	SharedSolverCore bool
	// Obs is the metrics registry threaded through every phase; nil
	// creates a fresh registry (observability is always on — a registry
	// nobody scrapes costs a few atomic adds).
	Obs *obs.Registry
}

// Pipeline runs Algorithm 1.
type Pipeline struct {
	client     llm.Client
	model      *embed.Model
	extractor  *extract.Extractor
	kgBuilder  *kg.Builder
	limits     smt.Limits
	workers    int
	smtCache   *smt.ResultCache
	obs        *obs.Registry
	sharedCore bool
}

// New constructs a pipeline from options.
func New(opts Options) (*Pipeline, error) {
	client := opts.Client
	if client == nil {
		client = llm.NewCachingClient(llm.NewSim())
	}
	model := opts.EmbedModel
	if model == nil {
		model = embed.NewModel("text-embedding-sim")
	}
	reg := opts.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	tb := &taxonomy.Builder{Client: client, Obs: reg}
	if opts.TaxonomyFilterThreshold > 0 {
		tb.Filter = embed.NewModel("scibert-sim")
		tb.FilterThreshold = opts.TaxonomyFilterThreshold
	}
	extractor := extract.New(client)
	extractor.Workers = opts.Workers
	extractor.Obs = reg
	p := &Pipeline{
		client:     client,
		model:      model,
		extractor:  extractor,
		kgBuilder:  kg.NewBuilder(tb),
		limits:     opts.Limits,
		workers:    opts.Workers,
		obs:        reg,
		sharedCore: opts.SharedSolverCore,
	}
	if opts.SMTCacheSize >= 0 {
		p.smtCache = smt.NewResultCache(opts.SMTCacheSize)
		// The cache keeps its own counters; collect them pull-style so
		// scrape results are always current without double bookkeeping.
		stat := func(pick func(smt.CacheStats) float64) func() float64 {
			cache := p.smtCache
			return func() float64 { return pick(cache.Stats()) }
		}
		reg.CounterFunc("quagmire_smt_cache_hits_total", stat(func(s smt.CacheStats) float64 { return float64(s.Hits) }))
		reg.CounterFunc("quagmire_smt_cache_misses_total", stat(func(s smt.CacheStats) float64 { return float64(s.Misses) }))
		reg.CounterFunc("quagmire_smt_cache_suppressed_total", stat(func(s smt.CacheStats) float64 { return float64(s.Suppressed) }))
		reg.CounterFunc("quagmire_smt_cache_evictions_total", stat(func(s smt.CacheStats) float64 { return float64(s.Evictions) }))
		reg.GaugeFunc("quagmire_smt_cache_entries", stat(func(s smt.CacheStats) float64 { return float64(s.Entries) }))
	}
	return p, nil
}

// Obs returns the pipeline's metrics registry (never nil).
func (p *Pipeline) Obs() *obs.Registry { return p.obs }

// Metrics snapshots every pipeline metric for programmatic consumers
// (benchmarks, the CLI's -stats table).
func (p *Pipeline) Metrics() obs.Snapshot { return p.obs.Snapshot() }

// SMTCacheStats reports the shared SMT result cache's hit/miss counters;
// zero-valued when caching is disabled.
func (p *Pipeline) SMTCacheStats() smt.CacheStats {
	if p.smtCache == nil {
		return smt.CacheStats{}
	}
	return p.smtCache.Stats()
}

// newEngine builds a query engine over a graph with the pipeline's limits,
// worker pool and shared SMT cache applied.
func (p *Pipeline) newEngine(k *kg.KnowledgeGraph) *query.Engine {
	e := query.NewEngine(k, p.client, p.model)
	e.Limits = p.limits
	e.Workers = p.workers
	e.Cache = p.smtCache
	e.Obs = p.obs
	e.SharedCore = p.sharedCore
	return e
}

// Analysis is the result of running Phases 1–2 over one policy version,
// ready to answer Phase 3 queries.
type Analysis struct {
	// Extraction is the Phase 1 output.
	Extraction *extract.Extraction
	// KG is the Phase 2 output.
	KG *kg.KnowledgeGraph
	// Engine answers queries (Phase 3).
	Engine *query.Engine
	// CoreImage is the persisted shared solver core carried by codec-v2
	// payloads; BuildEngine seeds the engine's incremental core from it so
	// the first query restores interned state instead of re-deriving it.
	CoreImage *smt.CoreImage
}

// Stats returns the Table 1 metrics of the analysis.
func (a *Analysis) Stats() kg.Stats { return a.KG.Stats() }

// Analyze runs Phases 1 and 2 over a policy text and prepares the query
// engine.
func (p *Pipeline) Analyze(ctx context.Context, policy string) (*Analysis, error) {
	phase1 := time.Now()
	ex, err := p.extractor.ExtractPolicy(ctx, policy)
	if err != nil {
		return nil, fmt.Errorf("core: phase 1: %w", err)
	}
	p.obs.Histogram("quagmire_pipeline_phase_seconds", obs.TimeBuckets, "phase", "extract").ObserveSince(phase1)
	phase2 := time.Now()
	k, err := p.kgBuilder.Build(ctx, ex)
	if err != nil {
		return nil, fmt.Errorf("core: phase 2: %w", err)
	}
	p.obs.Histogram("quagmire_pipeline_phase_seconds", obs.TimeBuckets, "phase", "graph").ObserveSince(phase2)
	a := &Analysis{Extraction: ex, KG: k}
	a.Engine = p.newEngine(k)
	return a, nil
}

// Update applies a new policy version to an existing analysis
// incrementally: only changed segments are re-extracted and only affected
// graph branches are touched. The previous analysis is never mutated — the
// update works on a copy of its graph — so readers (e.g. concurrent server
// requests) can keep querying prev while the new version is built.
func (p *Pipeline) Update(ctx context.Context, prev *Analysis, newPolicy string) (*Analysis, segment.Diff, kg.UpdateStats, error) {
	phase1 := time.Now()
	ex, diff, err := p.extractor.ReExtract(ctx, prev.Extraction, newPolicy)
	if err != nil {
		return nil, diff, kg.UpdateStats{}, fmt.Errorf("core: incremental phase 1: %w", err)
	}
	p.obs.Histogram("quagmire_pipeline_phase_seconds", obs.TimeBuckets, "phase", "extract").ObserveSince(phase1)
	phase2 := time.Now()
	k := prev.KG.Clone()
	st, err := p.kgBuilder.Update(ctx, k, diff, ex)
	if err != nil {
		return nil, diff, st, fmt.Errorf("core: incremental phase 2: %w", err)
	}
	p.obs.Histogram("quagmire_pipeline_phase_seconds", obs.TimeBuckets, "phase", "graph").ObserveSince(phase2)
	a := &Analysis{Extraction: ex, KG: k}
	a.Engine = p.newEngine(k)
	return a, diff, st, nil
}

// Ask answers a natural-language query against an analysis (Phase 3).
func (p *Pipeline) Ask(ctx context.Context, a *Analysis, q string) (*query.Result, error) {
	return a.Engine.Ask(ctx, q)
}

// AskBatch verifies many queries concurrently against an analysis over the
// pipeline's worker pool and shared SMT result cache (Phase 3, batched).
func (p *Pipeline) AskBatch(ctx context.Context, a *Analysis, queries []string) ([]query.BatchItem, error) {
	return a.Engine.AskBatch(ctx, queries)
}
