package graph

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Hierarchy is a rooted subsumption tree (each node has at most one
// parent), the output shape of Chain-of-Layer taxonomy induction.
type Hierarchy struct {
	// Root is the root concept.
	Root string
	// parent maps child -> parent. Root has no entry.
	parent map[string]string
	// children maps parent -> sorted children.
	children map[string][]string
}

// NewHierarchy returns a hierarchy with the given root.
func NewHierarchy(root string) *Hierarchy {
	return &Hierarchy{Root: root, parent: map[string]string{}, children: map[string][]string{}}
}

// Add places child under parent. The parent must already be in the
// hierarchy (or be the root). A node may be added only once — re-adding is
// an error, preserving the CoL invariant that "every entity appears exactly
// once in the final taxonomy".
func (h *Hierarchy) Add(parent, child string) error {
	if child == h.Root {
		return fmt.Errorf("graph: cannot add root %q as child", child)
	}
	if parent != h.Root && !h.Has(parent) {
		return fmt.Errorf("graph: parent %q not in hierarchy", parent)
	}
	if h.Has(child) {
		return fmt.Errorf("graph: %q already in hierarchy under %q", child, h.parent[child])
	}
	h.parent[child] = parent
	h.children[parent] = insertSorted(h.children[parent], child)
	return nil
}

func insertSorted(s []string, v string) []string {
	i := sort.SearchStrings(s, v)
	s = append(s, "")
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// Clone returns a deep copy of the hierarchy.
func (h *Hierarchy) Clone() *Hierarchy {
	c := NewHierarchy(h.Root)
	for child, parent := range h.parent {
		c.parent[child] = parent
	}
	for parent, kids := range h.children {
		c.children[parent] = append([]string(nil), kids...)
	}
	return c
}

// Has reports whether the term is in the hierarchy (the root always is).
func (h *Hierarchy) Has(term string) bool {
	if term == h.Root {
		return true
	}
	_, ok := h.parent[term]
	return ok
}

// Parent returns the parent of term and whether it exists. The root has no
// parent.
func (h *Hierarchy) Parent(term string) (string, bool) {
	p, ok := h.parent[term]
	return p, ok
}

// Children returns the direct children of term, sorted.
func (h *Hierarchy) Children(term string) []string { return h.children[term] }

// Terms returns all terms including the root, sorted.
func (h *Hierarchy) Terms() []string {
	out := make([]string, 0, len(h.parent)+1)
	out = append(out, h.Root)
	for c := range h.parent {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of terms including the root.
func (h *Hierarchy) Len() int { return len(h.parent) + 1 }

// IsAncestor reports whether a is an ancestor of b (strictly above it).
func (h *Hierarchy) IsAncestor(a, b string) bool {
	if a == b {
		return false
	}
	cur := b
	for {
		p, ok := h.parent[cur]
		if !ok {
			return false
		}
		if p == a {
			return true
		}
		cur = p
	}
}

// Subsumes reports whether general subsumes specific: equal terms or
// general is an ancestor of specific. This is the inference the paper uses
// ("if a policy allows sharing contact information and email address is a
// subtype, the hierarchy enables proper inference").
func (h *Hierarchy) Subsumes(general, specific string) bool {
	return general == specific || h.IsAncestor(general, specific)
}

// Descendants returns all terms strictly below term.
func (h *Hierarchy) Descendants(term string) []string {
	var out []string
	var walk func(t string)
	walk = func(t string) {
		for _, c := range h.children[t] {
			out = append(out, c)
			walk(c)
		}
	}
	walk(term)
	sort.Strings(out)
	return out
}

// Ancestors returns the chain from term's parent up to the root.
func (h *Hierarchy) Ancestors(term string) []string {
	var out []string
	cur := term
	for {
		p, ok := h.parent[cur]
		if !ok {
			return out
		}
		out = append(out, p)
		cur = p
	}
}

// Depth returns the number of edges from the root to term; the root is 0.
// Unknown terms return -1.
func (h *Hierarchy) Depth(term string) int {
	if term == h.Root {
		return 0
	}
	if !h.Has(term) {
		return -1
	}
	return len(h.Ancestors(term))
}

// Validate checks structural invariants: acyclicity and parent membership.
func (h *Hierarchy) Validate() error {
	for child := range h.parent {
		seen := map[string]bool{child: true}
		cur := child
		for {
			p, ok := h.parent[cur]
			if !ok {
				if cur != h.Root {
					return fmt.Errorf("graph: %q's chain ends at %q, not root", child, cur)
				}
				break
			}
			if seen[p] {
				return fmt.Errorf("graph: cycle through %q", p)
			}
			seen[p] = true
			cur = p
		}
	}
	return nil
}

// jsonHierarchy is the serialization envelope.
type jsonHierarchy struct {
	Root   string            `json:"root"`
	Parent map[string]string `json:"parent"`
}

// MarshalJSON serializes the hierarchy.
func (h *Hierarchy) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonHierarchy{Root: h.Root, Parent: h.parent})
}

// UnmarshalJSON restores a hierarchy serialized with MarshalJSON.
func (h *Hierarchy) UnmarshalJSON(data []byte) error {
	var jh jsonHierarchy
	if err := json.Unmarshal(data, &jh); err != nil {
		return err
	}
	restored := NewHierarchy(jh.Root)
	// Insert parents before children.
	var pending []string
	for c := range jh.Parent {
		pending = append(pending, c)
	}
	sort.Strings(pending)
	for len(pending) > 0 {
		progressed := false
		var next []string
		for _, c := range pending {
			p := jh.Parent[c]
			if restored.Has(p) {
				if err := restored.Add(p, c); err != nil {
					return err
				}
				progressed = true
			} else {
				next = append(next, c)
			}
		}
		if !progressed {
			return fmt.Errorf("graph: orphaned hierarchy entries %v", next)
		}
		pending = next
	}
	*h = *restored
	return nil
}
