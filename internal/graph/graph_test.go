package graph

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"testing/quick"
)

func TestAddNodeIdempotent(t *testing.T) {
	g := New()
	g.AddNode("email", "data")
	g.AddNode("email", "")
	if g.NumNodes() != 1 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if g.Node("email").Kind != "data" {
		t.Error("kind lost on re-add")
	}
}

func TestAddEdgeCreatesNodes(t *testing.T) {
	g := New()
	g.AddEdge(Edge{From: "user", To: "email", Label: "provide"})
	if !g.HasNode("user") || !g.HasNode("email") {
		t.Error("endpoints not created")
	}
	if g.NumEdges() != 1 {
		t.Errorf("edges = %d", g.NumEdges())
	}
}

func TestEdgeDedupe(t *testing.T) {
	g := New()
	e := Edge{From: "a", To: "b", Label: "share", SegmentID: "s1"}
	g.AddEdge(e)
	g.AddEdge(e)
	if g.NumEdges() != 1 {
		t.Errorf("duplicate edge stored: %d", g.NumEdges())
	}
	// Different condition is a distinct edge.
	e.Condition = "user consent"
	g.AddEdge(e)
	if g.NumEdges() != 2 {
		t.Errorf("conditioned edge deduped: %d", g.NumEdges())
	}
	// Same content from a different segment is also stored (provenance).
	e2 := Edge{From: "a", To: "b", Label: "share", SegmentID: "s2"}
	g.AddEdge(e2)
	if g.NumEdges() != 3 {
		t.Errorf("cross-segment edge deduped: %d", g.NumEdges())
	}
}

func TestOutIn(t *testing.T) {
	g := New()
	g.AddEdge(Edge{From: "tiktak", To: "email", Label: "collect"})
	g.AddEdge(Edge{From: "tiktak", To: "cookie", Label: "collect"})
	g.AddEdge(Edge{From: "user", To: "email", Label: "provide"})
	if len(g.Out("tiktak")) != 2 {
		t.Errorf("out = %d", len(g.Out("tiktak")))
	}
	if len(g.In("email")) != 2 {
		t.Errorf("in = %d", len(g.In("email")))
	}
}

func TestEdgeString(t *testing.T) {
	e := Edge{From: "user", To: "email", Label: "provide"}
	if e.String() != "[user]-provide->[email]" {
		t.Errorf("String = %q", e.String())
	}
}

func TestRemoveSegment(t *testing.T) {
	g := New()
	g.AddEdge(Edge{From: "a", To: "b", Label: "x", SegmentID: "s1"})
	g.AddEdge(Edge{From: "a", To: "c", Label: "y", SegmentID: "s2"})
	removed := g.RemoveSegment("s1")
	if removed != 1 {
		t.Fatalf("removed = %d", removed)
	}
	if g.HasNode("b") {
		t.Error("isolated node b not removed")
	}
	if !g.HasNode("a") || !g.HasNode("c") {
		t.Error("shared nodes lost")
	}
	if g.RemoveSegment("missing") != 0 {
		t.Error("removing missing segment changed graph")
	}
	// The removed edge can be re-added (tombstone cleared).
	g.AddEdge(Edge{From: "a", To: "b", Label: "x", SegmentID: "s1"})
	if g.NumEdges() != 2 {
		t.Errorf("re-add after remove: %d edges", g.NumEdges())
	}
}

func TestNeighborhoodAndSubgraph(t *testing.T) {
	g := New()
	g.AddEdge(Edge{From: "a", To: "b", Label: "x"})
	g.AddEdge(Edge{From: "b", To: "c", Label: "y"})
	g.AddEdge(Edge{From: "c", To: "d", Label: "z"})
	n1 := g.Neighborhood("b", 1)
	if len(n1) != 3 { // a, b, c
		t.Errorf("depth-1 neighborhood = %v", n1)
	}
	n0 := g.Neighborhood("b", 0)
	if len(n0) != 1 {
		t.Errorf("depth-0 neighborhood = %v", n0)
	}
	if len(g.Neighborhood("missing", 2)) != 0 {
		t.Error("missing start should be empty")
	}
	sub := g.Subgraph(n1)
	if sub.NumNodes() != 3 || sub.NumEdges() != 2 {
		t.Errorf("subgraph = %d nodes %d edges", sub.NumNodes(), sub.NumEdges())
	}
}

func TestGraphJSONRoundTrip(t *testing.T) {
	g := New()
	g.AddNode("email", "data")
	g.AddEdge(Edge{From: "user", To: "email", Label: "provide", Condition: "user consent", Permission: "allow", SegmentID: "s"})
	data, err := json.Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	var g2 Graph
	if err := json.Unmarshal(data, &g2); err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Errorf("round trip: %d/%d nodes, %d/%d edges", g2.NumNodes(), g.NumNodes(), g2.NumEdges(), g.NumEdges())
	}
	if g2.Node("email").Kind != "data" {
		t.Error("node kind lost")
	}
	if g2.Edges()[0].Condition != "user consent" {
		t.Error("edge condition lost")
	}
}

func TestHierarchyBasics(t *testing.T) {
	h := NewHierarchy("data")
	mustAdd(t, h, "data", "contact information")
	mustAdd(t, h, "contact information", "email")
	mustAdd(t, h, "email", "work email")
	if !h.Subsumes("data", "work email") {
		t.Error("root should subsume leaf")
	}
	if !h.Subsumes("contact information", "email") {
		t.Error("direct parent should subsume child")
	}
	if h.Subsumes("email", "contact information") {
		t.Error("child subsumes parent?")
	}
	if !h.Subsumes("email", "email") {
		t.Error("term should subsume itself")
	}
	if h.Depth("work email") != 3 || h.Depth("data") != 0 || h.Depth("zzz") != -1 {
		t.Errorf("depths: %d %d %d", h.Depth("work email"), h.Depth("data"), h.Depth("zzz"))
	}
}

func mustAdd(t *testing.T, h *Hierarchy, parent, child string) {
	t.Helper()
	if err := h.Add(parent, child); err != nil {
		t.Fatal(err)
	}
}

func TestHierarchyUniqueness(t *testing.T) {
	h := NewHierarchy("data")
	mustAdd(t, h, "data", "email")
	if err := h.Add("data", "email"); err == nil {
		t.Error("duplicate add should fail (CoL uniqueness invariant)")
	}
	if err := h.Add("missing parent", "x"); err == nil {
		t.Error("unknown parent should fail")
	}
	if err := h.Add("email", "data"); err == nil {
		t.Error("adding root as child should fail")
	}
}

func TestHierarchyQueries(t *testing.T) {
	h := NewHierarchy("data")
	mustAdd(t, h, "data", "contact information")
	mustAdd(t, h, "contact information", "email")
	mustAdd(t, h, "contact information", "phone number")
	desc := h.Descendants("contact information")
	if len(desc) != 2 {
		t.Errorf("descendants = %v", desc)
	}
	anc := h.Ancestors("email")
	if len(anc) != 2 || anc[0] != "contact information" || anc[1] != "data" {
		t.Errorf("ancestors = %v", anc)
	}
	kids := h.Children("contact information")
	if len(kids) != 2 || kids[0] != "email" {
		t.Errorf("children = %v", kids)
	}
	if h.Len() != 4 {
		t.Errorf("len = %d", h.Len())
	}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
}

func TestHierarchyJSONRoundTrip(t *testing.T) {
	h := NewHierarchy("data")
	mustAdd(t, h, "data", "technical data")
	mustAdd(t, h, "technical data", "cookie")
	data, err := json.Marshal(h)
	if err != nil {
		t.Fatal(err)
	}
	var h2 Hierarchy
	if err := json.Unmarshal(data, &h2); err != nil {
		t.Fatal(err)
	}
	if !h2.Subsumes("data", "cookie") || h2.Len() != 3 {
		t.Errorf("round trip broken: %v", h2.Terms())
	}
}

// Property: a randomly grown hierarchy always validates, and Subsumes is
// antisymmetric for distinct terms.
func TestHierarchyProperty(t *testing.T) {
	f := func(parents []uint8) bool {
		h := NewHierarchy("root")
		terms := []string{"root"}
		for i, p := range parents {
			child := fmt.Sprintf("t%d", i)
			parent := terms[int(p)%len(terms)]
			if err := h.Add(parent, child); err != nil {
				return false
			}
			terms = append(terms, child)
		}
		if h.Validate() != nil {
			return false
		}
		for _, a := range terms {
			for _, b := range terms {
				if a != b && h.Subsumes(a, b) && h.Subsumes(b, a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGraphDOT(t *testing.T) {
	g := New()
	g.AddNode("TikTak", "entity")
	g.AddNode("email", "data")
	g.AddEdge(Edge{From: "TikTak", To: "email", Label: "collect", Condition: "you consent"})
	g.AddEdge(Edge{From: "TikTak", To: "email", Label: "sell", Permission: "deny"})
	out := g.DOT("policy graph")
	for _, want := range []string{
		"digraph policy_graph {",
		`TikTak [label="TikTak" shape=box]`,
		`email [label="email" shape=ellipse]`,
		`label="collect"`,
		`tooltip="when you consent"`,
		"style=dashed",
		"color=red",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
	// Deterministic.
	if out != g.DOT("policy graph") {
		t.Error("DOT output nondeterministic")
	}
}

func TestHierarchyDOT(t *testing.T) {
	h := NewHierarchy("data")
	mustAdd(t, h, "data", "contact information")
	mustAdd(t, h, "contact information", "email")
	out := h.DOT("data hierarchy")
	for _, want := range []string{
		"digraph data_hierarchy {",
		"data -> contact_information;",
		"contact_information -> email;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("hierarchy DOT missing %q:\n%s", want, out)
		}
	}
}
