// Package graph provides the directed labeled multigraph and hierarchy
// structures underlying the pipeline's knowledge representation: the
// entity–data graph (who performs which actions on what data, with
// condition predicates on edges) and the subsumption hierarchies produced
// by Chain-of-Layer taxonomy induction.
package graph

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Node is a graph vertex.
type Node struct {
	// ID is the canonical term identifying the node.
	ID string `json:"id"`
	// Kind classifies the node ("entity", "data", "category", ...).
	Kind string `json:"kind,omitempty"`
	// Attrs holds optional metadata.
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Edge is a directed labeled edge. Multiple edges may connect the same
// node pair with different labels or conditions.
type Edge struct {
	// From and To are node IDs.
	From string `json:"from"`
	To   string `json:"to"`
	// Label is the edge relation (for the entity–data graph, the action).
	Label string `json:"label"`
	// Condition is the boolean predicate attached to the edge, empty for
	// unconditional edges.
	Condition string `json:"condition,omitempty"`
	// Permission is "allow" or "deny".
	Permission string `json:"permission,omitempty"`
	// Subject is whose data flows on this edge.
	Subject string `json:"subject,omitempty"`
	// Other is the third participant when the edge's actor and object do
	// not tell the whole story: the receiver of an outbound share, or the
	// source of an inbound collection.
	Other string `json:"other,omitempty"`
	// SegmentID ties the edge back to the policy segment it came from,
	// enabling branch-local incremental updates.
	SegmentID string `json:"segment_id,omitempty"`
}

// Key returns a string uniquely identifying the edge's content.
func (e Edge) Key() string {
	return fmt.Sprintf("%s\x1f%s\x1f%s\x1f%s\x1f%s\x1f%s\x1f%s", e.From, e.To, e.Label, e.Condition, e.Permission, e.Subject, e.Other)
}

// String renders the edge in the paper's [from]-label->[to] notation.
func (e Edge) String() string {
	return fmt.Sprintf("[%s]-%s->[%s]", e.From, e.Label, e.To)
}

// Graph is a directed labeled multigraph. The zero value is not ready;
// use New.
type Graph struct {
	nodes map[string]*Node
	// out and in index edges by endpoint.
	out map[string][]*Edge
	in  map[string][]*Edge
	// edges stores all edges in insertion order, deduplicated by Key+Segment.
	edges   []*Edge
	edgeSet map[string]bool
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		nodes:   map[string]*Node{},
		out:     map[string][]*Edge{},
		in:      map[string][]*Edge{},
		edgeSet: map[string]bool{},
	}
}

// AddNode inserts or updates a node and returns it.
func (g *Graph) AddNode(id, kind string) *Node {
	if n, ok := g.nodes[id]; ok {
		if kind != "" && n.Kind == "" {
			n.Kind = kind
		}
		return n
	}
	n := &Node{ID: id, Kind: kind}
	g.nodes[id] = n
	return n
}

// Node returns the node with the given ID, or nil.
func (g *Graph) Node(id string) *Node { return g.nodes[id] }

// HasNode reports whether the node exists.
func (g *Graph) HasNode(id string) bool { return g.nodes[id] != nil }

// AddEdge inserts an edge, creating endpoints as needed. Exact duplicates
// (same key and segment) are ignored. It returns the stored edge.
func (g *Graph) AddEdge(e Edge) *Edge {
	dedupeKey := e.Key() + "\x1f" + e.SegmentID
	if g.edgeSet[dedupeKey] {
		for _, ex := range g.out[e.From] {
			if ex.Key() == e.Key() && ex.SegmentID == e.SegmentID {
				return ex
			}
		}
	}
	g.AddNode(e.From, "")
	g.AddNode(e.To, "")
	stored := &e
	g.edges = append(g.edges, stored)
	g.edgeSet[dedupeKey] = true
	g.out[e.From] = append(g.out[e.From], stored)
	g.in[e.To] = append(g.in[e.To], stored)
	return stored
}

// Nodes returns all nodes sorted by ID.
func (g *Graph) Nodes() []*Node {
	out := make([]*Node, 0, len(g.nodes))
	for _, n := range g.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Edges returns all edges in insertion order.
func (g *Graph) Edges() []*Edge { return g.edges }

// Out returns edges leaving node id.
func (g *Graph) Out(id string) []*Edge { return g.out[id] }

// In returns edges entering node id.
func (g *Graph) In(id string) []*Edge { return g.in[id] }

// NumNodes and NumEdges report sizes.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of stored edges.
func (g *Graph) NumEdges() int { return len(g.edges) }

// RemoveSegment deletes every edge contributed by the given segment and
// any nodes left isolated, implementing branch-local incremental updates.
func (g *Graph) RemoveSegment(segID string) int {
	removed := 0
	var kept []*Edge
	for _, e := range g.edges {
		if e.SegmentID == segID {
			removed++
			delete(g.edgeSet, e.Key()+"\x1f"+e.SegmentID)
			continue
		}
		kept = append(kept, e)
	}
	if removed == 0 {
		return 0
	}
	g.edges = kept
	// Rebuild endpoint indexes.
	g.out = map[string][]*Edge{}
	g.in = map[string][]*Edge{}
	touched := map[string]bool{}
	for _, e := range g.edges {
		g.out[e.From] = append(g.out[e.From], e)
		g.in[e.To] = append(g.in[e.To], e)
		touched[e.From] = true
		touched[e.To] = true
	}
	for id := range g.nodes {
		if !touched[id] {
			delete(g.nodes, id)
		}
	}
	return removed
}

// Neighborhood returns the set of node IDs reachable from start within
// depth hops, ignoring direction.
func (g *Graph) Neighborhood(start string, depth int) map[string]bool {
	seen := map[string]bool{}
	if !g.HasNode(start) {
		return seen
	}
	frontier := []string{start}
	seen[start] = true
	for d := 0; d < depth; d++ {
		var next []string
		for _, id := range frontier {
			for _, e := range g.out[id] {
				if !seen[e.To] {
					seen[e.To] = true
					next = append(next, e.To)
				}
			}
			for _, e := range g.in[id] {
				if !seen[e.From] {
					seen[e.From] = true
					next = append(next, e.From)
				}
			}
		}
		frontier = next
	}
	return seen
}

// Clone returns a deep copy of the graph. Mutating the clone (or the
// original) leaves the other untouched, which is what lets incremental
// updates produce a fresh graph version while readers keep querying the
// old one.
func (g *Graph) Clone() *Graph {
	c := New()
	for _, n := range g.Nodes() {
		node := c.AddNode(n.ID, n.Kind)
		if n.Attrs != nil {
			node.Attrs = make(map[string]string, len(n.Attrs))
			for k, v := range n.Attrs {
				node.Attrs[k] = v
			}
		}
	}
	for _, e := range g.edges {
		c.AddEdge(*e)
	}
	return c
}

// Subgraph returns a new graph containing only the given nodes and the
// edges among them.
func (g *Graph) Subgraph(keep map[string]bool) *Graph {
	sub := New()
	for id := range keep {
		if n := g.nodes[id]; n != nil {
			node := sub.AddNode(n.ID, n.Kind)
			node.Attrs = n.Attrs
		}
	}
	for _, e := range g.edges {
		if keep[e.From] && keep[e.To] {
			sub.AddEdge(*e)
		}
	}
	return sub
}

// jsonGraph is the serialization envelope.
type jsonGraph struct {
	Nodes []*Node `json:"nodes"`
	Edges []*Edge `json:"edges"`
}

// MarshalJSON serializes nodes and edges deterministically.
func (g *Graph) MarshalJSON() ([]byte, error) {
	edges := make([]*Edge, len(g.edges))
	copy(edges, g.edges)
	return json.Marshal(jsonGraph{Nodes: g.Nodes(), Edges: edges})
}

// UnmarshalJSON restores a graph serialized with MarshalJSON.
func (g *Graph) UnmarshalJSON(data []byte) error {
	var jg jsonGraph
	if err := json.Unmarshal(data, &jg); err != nil {
		return err
	}
	*g = *New()
	for _, n := range jg.Nodes {
		node := g.AddNode(n.ID, n.Kind)
		node.Attrs = n.Attrs
	}
	for _, e := range jg.Edges {
		g.AddEdge(*e)
	}
	return nil
}
