package graph

import (
	"fmt"
	"sort"
	"strings"
)

// DOT renders the graph in Graphviz dot format: entities as boxes, data
// objects as ellipses, deny edges dashed red, conditional edges annotated.
// Output is deterministic (nodes sorted, edges in insertion order).
func (g *Graph) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n", dotID(name))
	b.WriteString("  rankdir=LR;\n  node [fontsize=10];\n")
	for _, n := range g.Nodes() {
		shape := "ellipse"
		if n.Kind == "entity" {
			shape = "box"
		}
		fmt.Fprintf(&b, "  %s [label=%q shape=%s];\n", dotID(n.ID), n.ID, shape)
	}
	for _, e := range g.edges {
		attrs := []string{fmt.Sprintf("label=%q", e.Label)}
		if e.Permission == "deny" {
			attrs = append(attrs, "style=dashed", "color=red")
		}
		if e.Condition != "" {
			attrs = append(attrs, fmt.Sprintf("tooltip=%q", "when "+e.Condition))
		}
		fmt.Fprintf(&b, "  %s -> %s [%s];\n", dotID(e.From), dotID(e.To), strings.Join(attrs, " "))
	}
	b.WriteString("}\n")
	return b.String()
}

// DOT renders the hierarchy as a Graphviz tree.
func (h *Hierarchy) DOT(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n", dotID(name))
	b.WriteString("  node [fontsize=10 shape=ellipse];\n")
	terms := h.Terms()
	sort.Strings(terms)
	for _, t := range terms {
		fmt.Fprintf(&b, "  %s [label=%q];\n", dotID(t), t)
	}
	for _, t := range terms {
		if p, ok := h.Parent(t); ok {
			fmt.Fprintf(&b, "  %s -> %s;\n", dotID(p), dotID(t))
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// dotID sanitizes a term into a dot identifier.
func dotID(s string) string {
	if s == "" {
		return "_empty"
	}
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z' || r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	out := b.String()
	if out[0] >= '0' && out[0] <= '9' {
		out = "n" + out
	}
	return out
}
