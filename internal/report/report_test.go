package report

import (
	"context"
	"strings"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/corpus"
)

func analyzeMini(t *testing.T) *core.Analysis {
	t.Helper()
	p, err := core.New(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Analyze(context.Background(), corpus.Mini())
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestRenderSections(t *testing.T) {
	a := analyzeMini(t)
	out := Render(a, Options{IncludeHierarchy: true})
	for _, want := range []string{
		"# Privacy Policy Audit — Acme",
		"## Extraction statistics",
		"| Data practices |",
		"## Data practices by actor",
		"### Acme",
		"## Vague conditions requiring human interpretation",
		"legitimate business purpose",
		"## Apparent contradictions",
		"## Data type hierarchy",
		"- data",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

func TestRenderDenialsAndConditions(t *testing.T) {
	a := analyzeMini(t)
	out := Render(a, Options{})
	if !strings.Contains(out, "**never sell**") {
		t.Error("denial not rendered as never-practice")
	}
	if !strings.Contains(out, "— when") {
		t.Error("condition annotation missing")
	}
	if strings.Contains(out, "## Data type hierarchy") {
		t.Error("hierarchy rendered without the option")
	}
}

func TestRenderEdgeCap(t *testing.T) {
	a := analyzeMini(t)
	out := Render(a, Options{MaxEdgesPerActor: 1})
	if !strings.Contains(out, "and") || !strings.Contains(out, "more") {
		// Acme has several practices; with cap 1 the ellipsis must show.
		t.Errorf("edge cap not applied:\n%s", out)
	}
}

func TestRenderContradictionSection(t *testing.T) {
	policyText := `# Acme Privacy Policy

Acme ("we") explains its practices here.

## Sharing

We do not share your location data.

If you enable location services, we share your location data with mapping services.`
	p, err := core.New(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Analyze(context.Background(), policyText)
	if err != nil {
		t.Fatal(err)
	}
	out := Render(a, Options{})
	if !strings.Contains(out, "coherent exception") {
		t.Errorf("exception classification missing:\n%s", out)
	}
}

func TestRenderCategoriesSection(t *testing.T) {
	a := analyzeMini(t)
	out := Render(a, Options{})
	if !strings.Contains(out, "## OPP-115 category distribution") {
		t.Fatal("category section missing")
	}
	if !strings.Contains(out, "First Party Collection/Use") {
		t.Errorf("expected category row:\n%s", out)
	}
}
