// Package report renders a policy analysis as a human-readable markdown
// audit report — the deliverable §5 describes for legal teams: extraction
// statistics, the data-practice inventory grouped by actor, every vague
// condition needing human interpretation, apparent contradictions with
// their exception/conflict classification, and the data-type hierarchy.
package report

import (
	"fmt"
	"sort"
	"strings"

	"github.com/privacy-quagmire/quagmire/internal/baseline"
	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/graph"
)

// Options controls report rendering.
type Options struct {
	// MaxEdgesPerActor caps the practice listing per actor (0 = 10).
	MaxEdgesPerActor int
	// IncludeHierarchy adds the data-type hierarchy section.
	IncludeHierarchy bool
}

// Render produces the markdown audit report for an analysis.
func Render(a *core.Analysis, opts Options) string {
	maxEdges := opts.MaxEdgesPerActor
	if maxEdges <= 0 {
		maxEdges = 10
	}
	var b strings.Builder
	st := a.Stats()
	fmt.Fprintf(&b, "# Privacy Policy Audit — %s\n\n", a.Extraction.Company)

	fmt.Fprintf(&b, "## Extraction statistics\n\n")
	fmt.Fprintf(&b, "| Metric | Value |\n|---|---|\n")
	fmt.Fprintf(&b, "| Statements | %d |\n", len(a.Extraction.Segments))
	fmt.Fprintf(&b, "| Data practices | %d |\n", len(a.Extraction.Practices))
	fmt.Fprintf(&b, "| Graph nodes | %d |\n| Graph edges | %d |\n", st.Nodes, st.Edges)
	fmt.Fprintf(&b, "| Entities | %d |\n| Data types | %d |\n\n", st.Entities, st.DataTypes)

	b.WriteString(renderCategories(a))
	b.WriteString(renderPractices(a, maxEdges))
	b.WriteString(renderVague(a))
	b.WriteString(renderContradictions(a))
	if opts.IncludeHierarchy {
		b.WriteString(renderHierarchy(a.KG.DataH))
	}
	return b.String()
}

// renderCategories summarizes the OPP-115 category distribution of the
// extracted practices.
func renderCategories(a *core.Analysis) string {
	counts := map[string]int{}
	for _, p := range a.Extraction.Practices {
		for _, c := range p.OPPCategories {
			counts[c]++
		}
	}
	var b strings.Builder
	b.WriteString("## OPP-115 category distribution\n\n")
	if len(counts) == 0 {
		b.WriteString("_No categorized practices._\n\n")
		return b.String()
	}
	cats := make([]string, 0, len(counts))
	for c := range counts {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool {
		if counts[cats[i]] != counts[cats[j]] {
			return counts[cats[i]] > counts[cats[j]]
		}
		return cats[i] < cats[j]
	})
	b.WriteString("| Category | Practices |\n|---|---|\n")
	for _, c := range cats {
		fmt.Fprintf(&b, "| %s | %d |\n", c, counts[c])
	}
	b.WriteString("\n")
	return b.String()
}

// renderPractices groups edges by acting party.
func renderPractices(a *core.Analysis, maxEdges int) string {
	var b strings.Builder
	b.WriteString("## Data practices by actor\n\n")
	byActor := map[string][]*graph.Edge{}
	for _, e := range a.KG.ED.Edges() {
		byActor[e.From] = append(byActor[e.From], e)
	}
	actors := make([]string, 0, len(byActor))
	for actor := range byActor {
		actors = append(actors, actor)
	}
	// Most active actors first; ties alphabetical.
	sort.Slice(actors, func(i, j int) bool {
		if len(byActor[actors[i]]) != len(byActor[actors[j]]) {
			return len(byActor[actors[i]]) > len(byActor[actors[j]])
		}
		return actors[i] < actors[j]
	})
	for _, actor := range actors {
		edges := byActor[actor]
		fmt.Fprintf(&b, "### %s (%d practices)\n\n", actor, len(edges))
		for i, e := range edges {
			if i >= maxEdges {
				fmt.Fprintf(&b, "- … and %d more\n", len(edges)-maxEdges)
				break
			}
			line := fmt.Sprintf("- **%s** %s", e.Label, e.To)
			if e.Other != "" {
				line += fmt.Sprintf(" _(with %s)_", e.Other)
			}
			if e.Permission == "deny" {
				line = fmt.Sprintf("- **never %s** %s", e.Label, e.To)
			}
			if e.Condition != "" {
				line += fmt.Sprintf(" — when %s", e.Condition)
			}
			b.WriteString(line + "\n")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// renderVague lists the vague conditions with occurrence counts.
func renderVague(a *core.Analysis) string {
	counts := map[string]int{}
	for _, p := range a.Extraction.Practices {
		for _, v := range p.VagueTerms {
			counts[v]++
		}
	}
	var b strings.Builder
	b.WriteString("## Vague conditions requiring human interpretation\n\n")
	if len(counts) == 0 {
		b.WriteString("_None detected._\n\n")
		return b.String()
	}
	terms := make([]string, 0, len(counts))
	for t := range counts {
		terms = append(terms, t)
	}
	sort.Slice(terms, func(i, j int) bool {
		if counts[terms[i]] != counts[terms[j]] {
			return counts[terms[i]] > counts[terms[j]]
		}
		return terms[i] < terms[j]
	})
	b.WriteString("| Term | Occurrences |\n|---|---|\n")
	for _, t := range terms {
		fmt.Fprintf(&b, "| %s | %d |\n", t, counts[t])
	}
	b.WriteString("\n")
	return b.String()
}

// renderContradictions runs the condition-aware lint pass.
func renderContradictions(a *core.Analysis) string {
	rep := baseline.Lint(a.Extraction.Practices)
	var b strings.Builder
	b.WriteString("## Apparent contradictions\n\n")
	if len(rep.Apparent) == 0 {
		b.WriteString("_None detected._\n\n")
		return b.String()
	}
	fmt.Fprintf(&b, "%d apparent allow/deny conflicts: %d coherent exception patterns, %d genuine conflicts.\n\n",
		len(rep.Apparent), rep.Exceptions, rep.Genuine)
	for _, c := range rep.Apparent {
		kind := "⚠ genuine conflict"
		if c.ExceptionPattern {
			kind = "coherent exception"
		}
		fmt.Fprintf(&b, "- [%s] allow `%s %s` (when %q) vs deny `%s %s` (when %q)\n",
			kind, c.Allow.Action, c.Allow.DataType, c.Allow.Condition,
			c.Deny.Action, c.Deny.DataType, c.Deny.Condition)
	}
	b.WriteString("\n")
	return b.String()
}

// renderHierarchy prints the data hierarchy as a nested list.
func renderHierarchy(h *graph.Hierarchy) string {
	var b strings.Builder
	b.WriteString("## Data type hierarchy\n\n")
	var walk func(term string, depth int)
	walk = func(term string, depth int) {
		fmt.Fprintf(&b, "%s- %s\n", strings.Repeat("  ", depth), term)
		for _, c := range h.Children(term) {
			walk(c, depth+1)
		}
	}
	walk(h.Root, 0)
	b.WriteString("\n")
	return b.String()
}
