package extract

import (
	"sort"
	"strings"

	"github.com/privacy-quagmire/quagmire/internal/nlp"
)

// PracticeChange describes one practice-level difference between policy
// versions.
type PracticeChange struct {
	// Action and DataType identify the practice (normalized).
	Action   string `json:"action"`
	DataType string `json:"data_type"`
	// Kind is "added", "removed", "now-denied", "now-allowed" or
	// "condition-changed".
	Kind string `json:"kind"`
	// OldCondition and NewCondition hold condition changes.
	OldCondition string `json:"old_condition,omitempty"`
	NewCondition string `json:"new_condition,omitempty"`
}

// VersionReport is the §5 policy-author deliverable: the semantic
// difference between two policy versions at practice granularity,
// including permission flips — the cross-version contradictions a diff of
// raw text cannot see.
type VersionReport struct {
	// Changes lists practice-level differences, sorted for determinism.
	Changes []PracticeChange `json:"changes"`
	// PermissionFlips counts allow/deny reversals — candidate
	// cross-version contradictions for legal review.
	PermissionFlips int `json:"permission_flips"`
}

// practiceKey normalizes the identity of a practice.
func practiceKey(p Practice) string {
	action := nlp.VerbBase(firstWordOf(p.Action))
	return action + "\x1f" + nlp.CanonicalTerm(p.DataType)
}

func firstWordOf(s string) string {
	if i := strings.IndexByte(s, ' '); i > 0 {
		return s[:i]
	}
	return s
}

// practiceState summarizes all statements about one practice in a version.
type practiceState struct {
	allowed, denied bool
	conditions      map[string]bool
}

func summarize(ex *Extraction) map[string]*practiceState {
	out := map[string]*practiceState{}
	for _, p := range ex.Practices {
		key := practiceKey(p)
		st := out[key]
		if st == nil {
			st = &practiceState{conditions: map[string]bool{}}
			out[key] = st
		}
		if p.Permission == "deny" {
			st.denied = true
		} else {
			st.allowed = true
		}
		if p.Condition != "" {
			st.conditions[p.Condition] = true
		}
	}
	return out
}

// CompareVersions computes the practice-level difference between two
// extractions of the same policy lineage.
func CompareVersions(old, new *Extraction) VersionReport {
	oldState := summarize(old)
	newState := summarize(new)
	var report VersionReport

	keys := map[string]bool{}
	for k := range oldState {
		keys[k] = true
	}
	for k := range newState {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)

	for _, k := range sorted {
		parts := strings.SplitN(k, "\x1f", 2)
		action, dataType := parts[0], parts[1]
		o, haveOld := oldState[k]
		n, haveNew := newState[k]
		switch {
		case !haveOld:
			report.Changes = append(report.Changes, PracticeChange{
				Action: action, DataType: dataType, Kind: "added",
			})
		case !haveNew:
			report.Changes = append(report.Changes, PracticeChange{
				Action: action, DataType: dataType, Kind: "removed",
			})
		default:
			if o.allowed && !o.denied && n.denied && !n.allowed {
				report.Changes = append(report.Changes, PracticeChange{
					Action: action, DataType: dataType, Kind: "now-denied",
				})
				report.PermissionFlips++
			} else if o.denied && !o.allowed && n.allowed && !n.denied {
				report.Changes = append(report.Changes, PracticeChange{
					Action: action, DataType: dataType, Kind: "now-allowed",
				})
				report.PermissionFlips++
			} else if oc, nc := joinConds(o.conditions), joinConds(n.conditions); oc != nc {
				report.Changes = append(report.Changes, PracticeChange{
					Action: action, DataType: dataType, Kind: "condition-changed",
					OldCondition: oc, NewCondition: nc,
				})
			}
		}
	}
	return report
}

func joinConds(m map[string]bool) string {
	if len(m) == 0 {
		return ""
	}
	out := make([]string, 0, len(m))
	for c := range m {
		out = append(out, c)
	}
	sort.Strings(out)
	return strings.Join(out, " | ")
}
