package extract

import (
	"context"
	"errors"
	"strings"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/llm"
	"github.com/privacy-quagmire/quagmire/internal/segment"
)

const policy = `# TikTak Privacy Policy

## Information We Collect

When you create an account, you may provide your email. We collect device information automatically.

We share usage data with service providers for legitimate business purposes.

## Your Choices

We do not sell your personal information.`

func TestResolveCoreferences(t *testing.T) {
	cases := map[string]string{
		"We collect your email.":             "TikTak collect your email.",
		"You can contact us at any time.":    "You can contact TikTak at any time.",
		"Our services use our partners.":     "TikTak's services use TikTak's partners.",
		"The west wing is not a pronoun.":    "The west wing is not a pronoun.", // "we" inside words untouched
		"Powerful trust in uslessness? not.": "Powerful trust in uslessness? not.",
	}
	for in, want := range cases {
		if got := ResolveCoreferences(in, "TikTak"); got != want {
			t.Errorf("ResolveCoreferences(%q) = %q, want %q", in, got, want)
		}
	}
	if got := ResolveCoreferences("We collect.", ""); got != "We collect." {
		t.Errorf("empty company changed text: %q", got)
	}
}

func TestCompanyName(t *testing.T) {
	e := New(llm.NewSim())
	got, err := e.CompanyName(context.Background(), policy)
	if err != nil {
		t.Fatal(err)
	}
	if got != "TikTak" {
		t.Errorf("company = %q", got)
	}
}

func TestExtractPolicy(t *testing.T) {
	e := New(llm.NewSim())
	ex, err := e.ExtractPolicy(context.Background(), policy)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Company != "TikTak" {
		t.Errorf("company = %q", ex.Company)
	}
	if len(ex.Segments) == 0 || len(ex.Practices) == 0 {
		t.Fatalf("segments=%d practices=%d", len(ex.Segments), len(ex.Practices))
	}
	// Every practice carries provenance.
	for _, p := range ex.Practices {
		if p.SegmentID == "" {
			t.Errorf("practice without segment ID: %+v", p)
		}
	}
	// Vague terms detected for the "legitimate business purposes" segment.
	foundVague := false
	for _, p := range ex.Practices {
		if len(p.VagueTerms) > 0 {
			foundVague = true
		}
	}
	if !foundVague {
		t.Error("no vague terms surfaced")
	}
	// The denial is extracted with permission=deny.
	foundDeny := false
	for _, p := range ex.Practices {
		if p.Permission == "deny" && p.Action == "sell" {
			foundDeny = true
		}
	}
	if !foundDeny {
		t.Errorf("sell denial not extracted: %+v", ex.Practices)
	}
	if e.Stats.Practices != len(ex.Practices) || e.Stats.Errors != 0 {
		t.Errorf("stats = %+v", e.Stats)
	}
}

func TestExtractSegmentCorefApplied(t *testing.T) {
	e := New(llm.NewSim())
	seg := segment.Segment{ID: segment.Hash("x"), Text: "We collect your precise location."}
	ps, err := e.ExtractSegment(context.Background(), "TikTak", seg)
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 {
		t.Fatalf("practices = %+v", ps)
	}
	if ps[0].Receiver != "TikTak" {
		t.Errorf("coref not applied, receiver = %q", ps[0].Receiver)
	}
}

func TestReExtractOnlyChangedSegments(t *testing.T) {
	sim := llm.NewSim()
	counting := llm.NewCachingClient(sim)
	e := New(counting)
	ex1, err := e.ExtractPolicy(context.Background(), policy)
	if err != nil {
		t.Fatal(err)
	}
	callsAfterFirst := e.Stats.LLMCalls

	edited := strings.Replace(policy, "We collect device information automatically.",
		"We collect device information and crash logs automatically.", 1)
	ex2, diff, err := e.ReExtract(context.Background(), ex1, edited)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff.Added) != 1 || len(diff.Removed) != 1 {
		t.Fatalf("diff = +%d -%d", len(diff.Added), len(diff.Removed))
	}
	// Only the company prompt + the one changed segment hit the model.
	newCalls := e.Stats.LLMCalls - callsAfterFirst
	if newCalls != 2 {
		t.Errorf("re-extract made %d LLM calls, want 2 (company + 1 segment)", newCalls)
	}
	if len(ex2.Practices) == 0 {
		t.Error("re-extraction lost practices")
	}
	// Unchanged practices are byte-identical (reused).
	for id, ps := range ex1.BySegment {
		if _, stillThere := ex2.BySegment[id]; !stillThere {
			continue
		}
		for i := range ps {
			if ex2.BySegment[id][i].ParamSet != ps[i].ParamSet {
				t.Errorf("kept segment %s practices changed", id[:8])
			}
		}
	}
}

type failNth struct {
	inner llm.Client
	n     int
	fail  int
}

func (f *failNth) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	f.n++
	if f.n == f.fail {
		return llm.Response{}, llm.ErrOverloaded
	}
	return f.inner.Complete(ctx, req)
}

func TestExtractPolicyDegradesOnSegmentFailure(t *testing.T) {
	// Fail the 3rd call (a segment extraction, after the company prompt).
	e := New(&failNth{inner: llm.NewSim(), fail: 3})
	ex, err := e.ExtractPolicy(context.Background(), policy)
	if err != nil {
		t.Fatal(err)
	}
	if e.Stats.Errors != 1 {
		t.Errorf("errors = %d", e.Stats.Errors)
	}
	if len(ex.Practices) == 0 {
		t.Error("all practices lost on single failure")
	}
}

func TestExtractPolicyCompanyFailureAborts(t *testing.T) {
	e := New(&failNth{inner: llm.NewSim(), fail: 1})
	if _, err := e.ExtractPolicy(context.Background(), policy); !errors.Is(err, llm.ErrOverloaded) {
		t.Errorf("err = %v", err)
	}
}

func TestExtractPolicyContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := New(llm.NewSim())
	if _, err := e.ExtractPolicy(ctx, policy); err == nil {
		t.Error("cancelled context should fail")
	}
}

type malformed struct{ inner llm.Client }

func (m *malformed) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	if req.Task == llm.TaskExtractParams {
		return llm.Response{Text: "garbage {"}, nil
	}
	return m.inner.Complete(ctx, req)
}

func TestExtractPolicyMalformedSegmentsCounted(t *testing.T) {
	e := New(&malformed{inner: llm.NewSim()})
	ex, err := e.ExtractPolicy(context.Background(), policy)
	if err != nil {
		t.Fatal(err)
	}
	if e.Stats.Errors == 0 {
		t.Error("malformed outputs not counted")
	}
	if len(ex.Practices) != 0 {
		t.Error("practices from garbage")
	}
}

func TestOPP115CategoriesAttached(t *testing.T) {
	e := New(llm.NewSim())
	ex, err := e.ExtractPolicy(context.Background(), policy)
	if err != nil {
		t.Fatal(err)
	}
	// Every practice carries at least one OPP-115 category; the sharing
	// statement maps to Third Party Sharing/Collection.
	foundSharing := false
	for _, p := range ex.Practices {
		if len(p.OPPCategories) == 0 {
			t.Fatalf("practice missing OPP categories: %+v", p)
		}
		for _, c := range p.OPPCategories {
			if c == "Third Party Sharing/Collection" && p.Action == "share" {
				foundSharing = true
			}
		}
	}
	if !foundSharing {
		t.Error("sharing statement not categorized as Third Party Sharing/Collection")
	}
}
