// Package extract implements Phase 1 of the pipeline: company-name
// extraction, coreference resolution, segmentation and LLM-based semantic
// role extraction — Algorithm 1 lines 1–10. Each extracted data practice
// carries its source segment ID so Phase 2 can update the graph
// incrementally when the policy changes.
package extract

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/corpus"
	"github.com/privacy-quagmire/quagmire/internal/llm"
	"github.com/privacy-quagmire/quagmire/internal/obs"
	"github.com/privacy-quagmire/quagmire/internal/segment"
)

// Practice is one extracted data practice: the six semantic roles plus
// provenance, detected vague terms, and the OPP-115 categories of its
// source statement (Algorithm 1 line 8, Match(s, T)).
type Practice struct {
	llm.ParamSet
	// SegmentID identifies the policy segment the practice came from.
	SegmentID string `json:"segment_id"`
	// VagueTerms lists the undefined condition fragments to surface as
	// uninterpreted predicates.
	VagueTerms []string `json:"vague_terms,omitempty"`
	// OPPCategories are the OPP-115 top-level categories matched against
	// the source statement.
	OPPCategories []string `json:"opp_categories,omitempty"`
}

// Extraction is the Phase 1 output for one policy version.
type Extraction struct {
	// Company is the extracted organization name.
	Company string `json:"company"`
	// Segments are the policy's statements in order.
	Segments []segment.Segment `json:"segments"`
	// Practices are all extracted data practices.
	Practices []Practice `json:"practices"`
	// BySegment indexes practices by segment ID.
	BySegment map[string][]Practice `json:"-"`
	// SegmentErrors aggregates (errors.Join) the per-segment failures that
	// were skipped with degradation; nil when every segment extracted
	// cleanly. Not serialized.
	SegmentErrors error `json:"-"`
}

// Stats reports extraction effort.
type Stats struct {
	// Segments counts statements processed.
	Segments int
	// Practices counts extracted parameter sets.
	Practices int
	// LLMCalls counts model invocations.
	LLMCalls int
	// Errors counts segments whose extraction failed (skipped with
	// degradation, as production pipelines must).
	Errors int
}

// Extractor runs Phase 1 against a language model.
type Extractor struct {
	// Client is the language model; required.
	Client llm.Client
	// Workers is the number of segments extracted in parallel; 0 selects
	// runtime.GOMAXPROCS(0), 1 forces sequential extraction. The model
	// client must be safe for concurrent use (SimLLM and all middleware
	// are).
	Workers int
	// FailFast aborts the whole extraction on the first segment error,
	// cancelling in-flight siblings, instead of skipping failed segments
	// with degradation. The returned error joins every segment failure
	// observed before the cancellation took effect.
	FailFast bool
	// Stats accumulates counters across calls. Mutations are guarded by an
	// internal mutex so extractions may run concurrently; read it directly
	// only when no call is in flight, or use StatsSnapshot.
	Stats Stats
	// Obs, when non-nil, receives extraction metrics (segment throughput,
	// LLM-call latency, coreference passes, per-policy wall time). A nil
	// registry hands out nil handles whose methods no-op, so every hook
	// below is safe unconditionally.
	Obs *obs.Registry

	statsMu sync.Mutex
}

// addStats folds a per-call delta into the shared counters.
func (e *Extractor) addStats(d Stats) {
	e.statsMu.Lock()
	e.Stats.Segments += d.Segments
	e.Stats.Practices += d.Practices
	e.Stats.LLMCalls += d.LLMCalls
	e.Stats.Errors += d.Errors
	e.statsMu.Unlock()
	e.Obs.Counter("quagmire_extract_segments_total").Add(uint64(d.Segments))
	e.Obs.Counter("quagmire_extract_practices_total").Add(uint64(d.Practices))
	e.Obs.Counter("quagmire_extract_llm_calls_total").Add(uint64(d.LLMCalls))
	e.Obs.Counter("quagmire_extract_errors_total").Add(uint64(d.Errors))
}

// StatsSnapshot returns a race-free copy of the accumulated counters.
func (e *Extractor) StatsSnapshot() Stats {
	e.statsMu.Lock()
	defer e.statsMu.Unlock()
	return e.Stats
}

// New returns an extractor over the given client.
func New(client llm.Client) *Extractor { return &Extractor{Client: client} }

// CompanyName extracts the organization name from the policy's opening
// 1000 characters (Algorithm 1 line 2).
func (e *Extractor) CompanyName(ctx context.Context, policy string) (string, error) {
	e.addStats(Stats{LLMCalls: 1})
	resp, err := e.Client.Complete(ctx, llm.CompanyNamePrompt(policy))
	if err != nil {
		return "", fmt.Errorf("extract: company name: %w", err)
	}
	var out struct {
		Company string `json:"company"`
	}
	if err := json.Unmarshal([]byte(resp.Text), &out); err != nil || out.Company == "" {
		return "", fmt.Errorf("extract: company name: %w: %q", llm.ErrMalformedOutput, resp.Text)
	}
	return out.Company, nil
}

// ResolveCoreferences replaces first-person references ("we", "us", "our")
// with the company name (Algorithm 1 line 3). Replacement is word-boundary
// aware and case-insensitive.
func ResolveCoreferences(text, company string) string {
	if company == "" {
		return text
	}
	var b strings.Builder
	b.Grow(len(text))
	i := 0
	for i < len(text) {
		j := i
		for j < len(text) && isLetter(text[j]) {
			j++
		}
		if j == i {
			b.WriteByte(text[i])
			i++
			continue
		}
		word := text[i:j]
		switch strings.ToLower(word) {
		case "we", "us":
			b.WriteString(company)
		case "our":
			b.WriteString(company + "'s")
		case "ourselves":
			b.WriteString(company)
		default:
			b.WriteString(word)
		}
		i = j
	}
	return b.String()
}

func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

// ExtractSegment extracts the data practices of one coreference-resolved
// segment (Algorithm 1 line 7).
func (e *Extractor) ExtractSegment(ctx context.Context, company string, seg segment.Segment) ([]Practice, error) {
	e.addStats(Stats{LLMCalls: 1})
	return e.extractOne(ctx, company, seg)
}

// ExtractPolicy runs full Phase 1 over a policy text: company name,
// segmentation, per-segment extraction over the worker pool. Segments whose
// extraction fails are counted and skipped rather than aborting the run
// (unless FailFast is set); the joined failures are reported on
// Extraction.SegmentErrors either way.
func (e *Extractor) ExtractPolicy(ctx context.Context, policy string) (*Extraction, error) {
	defer e.Obs.Histogram("quagmire_extract_policy_seconds", obs.TimeBuckets).ObserveSince(time.Now())
	company, err := e.CompanyName(ctx, policy)
	if err != nil {
		return nil, err
	}
	segs := segment.Split(policy)
	ex := &Extraction{
		Company:   company,
		Segments:  segs,
		BySegment: map[string][]Practice{},
	}
	results, errs := e.extractAll(ctx, company, segs)
	var d Stats
	defer func() { e.addStats(d) }()
	d.LLMCalls += len(segs)
	var segErrs []error
	for i, seg := range segs {
		d.Segments++
		if errs[i] != nil {
			if ctx.Err() != nil {
				return nil, ctx.Err()
			}
			d.Errors++
			// Sibling aborts from a fail-fast cancellation are not segment
			// failures in their own right.
			if !errors.Is(errs[i], context.Canceled) {
				segErrs = append(segErrs, errs[i])
			}
			continue
		}
		ps := results[i]
		d.Practices += len(ps)
		ex.Practices = append(ex.Practices, ps...)
		// Record even practice-free segments so incremental re-extraction
		// recognizes them as already processed.
		ex.BySegment[seg.ID] = ps
	}
	ex.SegmentErrors = errors.Join(segErrs...)
	if e.FailFast && ex.SegmentErrors != nil {
		return nil, ex.SegmentErrors
	}
	return ex, nil
}

// workerCount resolves the effective pool size.
func (e *Extractor) workerCount() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// extractAll runs per-segment extraction over a bounded worker pool.
// Results are positionally aligned with segs so output order is
// deterministic regardless of scheduling. Cancelling ctx — or, under
// FailFast, the first segment failure — cancels in-flight siblings;
// unattempted segments report the context error.
func (e *Extractor) extractAll(ctx context.Context, company string, segs []segment.Segment) ([][]Practice, []error) {
	results := make([][]Practice, len(segs))
	errs := make([]error, len(segs))
	if len(segs) == 0 {
		return results, errs
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	workers := e.workerCount()
	if workers > len(segs) {
		workers = len(segs)
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				results[i], errs[i] = e.extractOne(ctx, company, segs[i])
				if errs[i] != nil && e.FailFast {
					cancel()
				}
			}
		}()
	}
	// Workers drain the channel even after cancellation (marking skipped
	// jobs with the context error), so dispatch never blocks indefinitely.
	for i := range segs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	return results, errs
}

// extractOne is ExtractSegment without stats mutation, safe for concurrent
// use.
func (e *Extractor) extractOne(ctx context.Context, company string, seg segment.Segment) ([]Practice, error) {
	resolved := ResolveCoreferences(seg.Text, company)
	e.Obs.ShardedCounter("quagmire_extract_coref_passes_total").Inc()
	llmStart := time.Now()
	resp, err := e.Client.Complete(ctx, llm.ExtractParamsPrompt(company, resolved))
	e.Obs.Histogram("quagmire_llm_call_seconds", obs.TimeBuckets, "phase", "extract").ObserveSince(llmStart)
	if err != nil {
		return nil, fmt.Errorf("extract: segment %s: %w", shortID(seg.ID), err)
	}
	var params []llm.ParamSet
	if err := json.Unmarshal([]byte(resp.Text), &params); err != nil {
		return nil, fmt.Errorf("extract: segment %s: %w: %q", shortID(seg.ID), llm.ErrMalformedOutput, resp.Text)
	}
	categories := corpus.MatchOPP115(seg.Text)
	out := make([]Practice, 0, len(params))
	for _, p := range params {
		out = append(out, Practice{
			ParamSet:      p,
			SegmentID:     seg.ID,
			VagueTerms:    llm.VagueTerms(p.Condition),
			OPPCategories: categories,
		})
	}
	return out, nil
}

// ReExtract updates a previous extraction for a new policy version,
// re-running the model only on added segments (the paper's diff-based
// incremental processing) — fanned out over the same worker pool as
// ExtractPolicy. It returns the new extraction and the diff.
func (e *Extractor) ReExtract(ctx context.Context, prev *Extraction, newPolicy string) (*Extraction, segment.Diff, error) {
	defer e.Obs.Histogram("quagmire_extract_policy_seconds", obs.TimeBuckets).ObserveSince(time.Now())
	company, err := e.CompanyName(ctx, newPolicy)
	if err != nil {
		return nil, segment.Diff{}, err
	}
	newSegs := segment.Split(newPolicy)
	diff := segment.Compare(prev.Segments, newSegs)
	ex := &Extraction{
		Company:   company,
		Segments:  newSegs,
		BySegment: map[string][]Practice{},
	}
	reuse := company == prev.Company
	// Collect the segments that actually need model calls, in order.
	var todo []segment.Segment
	for _, seg := range newSegs {
		if _, ok := prev.BySegment[seg.ID]; !ok || !reuse {
			todo = append(todo, seg)
		}
	}
	results, errs := e.extractAll(ctx, company, todo)
	var d Stats
	defer func() { e.addStats(d) }()
	d.LLMCalls += len(todo)
	ti := 0
	var segErrs []error
	for _, seg := range newSegs {
		if prevPs, ok := prev.BySegment[seg.ID]; ok && reuse {
			// Unchanged segment: reuse prior practices without an LLM call.
			ex.Practices = append(ex.Practices, prevPs...)
			ex.BySegment[seg.ID] = prevPs
			continue
		}
		d.Segments++
		ps, segErr := results[ti], errs[ti]
		ti++
		if segErr != nil {
			if ctx.Err() != nil {
				return nil, diff, ctx.Err()
			}
			d.Errors++
			if !errors.Is(segErr, context.Canceled) {
				segErrs = append(segErrs, segErr)
			}
			continue
		}
		d.Practices += len(ps)
		ex.Practices = append(ex.Practices, ps...)
		ex.BySegment[seg.ID] = ps
	}
	ex.SegmentErrors = errors.Join(segErrs...)
	if e.FailFast && ex.SegmentErrors != nil {
		return nil, diff, ex.SegmentErrors
	}
	return ex, diff, nil
}

func shortID(id string) string {
	if len(id) > 8 {
		return id[:8]
	}
	return id
}
