package extract

import (
	"context"
	"strings"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/llm"
)

func extractText(t *testing.T, text string) *Extraction {
	t.Helper()
	e := New(llm.NewSim())
	ex, err := e.ExtractPolicy(context.Background(), text)
	if err != nil {
		t.Fatal(err)
	}
	return ex
}

const v1Policy = `# Acme Privacy Policy

Acme ("we") explains its practices.

## Practices

We collect your email address.

We share your gps location with mapping services.

We do not sell your browsing history.`

func TestCompareVersionsNoChanges(t *testing.T) {
	ex := extractText(t, v1Policy)
	rep := CompareVersions(ex, ex)
	if len(rep.Changes) != 0 || rep.PermissionFlips != 0 {
		t.Errorf("identical versions: %+v", rep)
	}
}

func TestCompareVersionsAddRemove(t *testing.T) {
	v2 := strings.Replace(v1Policy,
		"We collect your email address.",
		"We collect your phone number.", 1)
	rep := CompareVersions(extractText(t, v1Policy), extractText(t, v2))
	kinds := map[string]string{}
	for _, c := range rep.Changes {
		kinds[c.DataType] = c.Kind
	}
	if kinds["email address"] != "removed" {
		t.Errorf("email change = %q (%+v)", kinds["email address"], rep.Changes)
	}
	if kinds["phone number"] != "added" {
		t.Errorf("phone change = %q", kinds["phone number"])
	}
}

func TestCompareVersionsPermissionFlip(t *testing.T) {
	// v2 reverses the sale stance: the classic cross-version
	// contradiction a text diff cannot classify.
	v2 := strings.Replace(v1Policy,
		"We do not sell your browsing history.",
		"We sell your browsing history.", 1)
	rep := CompareVersions(extractText(t, v1Policy), extractText(t, v2))
	if rep.PermissionFlips != 1 {
		t.Fatalf("flips = %d (%+v)", rep.PermissionFlips, rep.Changes)
	}
	found := false
	for _, c := range rep.Changes {
		if c.Kind == "now-allowed" && c.Action == "sell" {
			found = true
		}
	}
	if !found {
		t.Errorf("now-allowed flip missing: %+v", rep.Changes)
	}
}

func TestCompareVersionsConditionChange(t *testing.T) {
	v2 := strings.Replace(v1Policy,
		"We share your gps location with mapping services.",
		"We share your gps location with mapping services if you enable the feature.", 1)
	rep := CompareVersions(extractText(t, v1Policy), extractText(t, v2))
	found := false
	for _, c := range rep.Changes {
		if c.Kind == "condition-changed" && strings.Contains(c.NewCondition, "enable") {
			found = true
		}
	}
	if !found {
		t.Errorf("condition change missing: %+v", rep.Changes)
	}
}
