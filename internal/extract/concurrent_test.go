package extract

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/llm"
)

func TestConcurrentExtractionMatchesSequential(t *testing.T) {
	seq := New(llm.NewSim())
	seq.Workers = 1
	exSeq, err := seq.ExtractPolicy(context.Background(), policy)
	if err != nil {
		t.Fatal(err)
	}
	par := New(llm.NewSim())
	par.Workers = 8
	exPar, err := par.ExtractPolicy(context.Background(), policy)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(exSeq.Practices, exPar.Practices) {
		t.Fatalf("concurrent extraction diverged:\nseq: %+v\npar: %+v", exSeq.Practices, exPar.Practices)
	}
	if seq.Stats != par.Stats {
		t.Errorf("stats diverged: %+v vs %+v", seq.Stats, par.Stats)
	}
}

func TestConcurrentExtractionDegradesOnFailures(t *testing.T) {
	// A flaky client failing every 4th call: both modes degrade, never
	// panic, and record errors. (Counts differ across modes because the
	// company prompt consumes one call in sequence.)
	par := New(&llm.FlakyClient{Inner: llm.NewSim(), EveryN: 4})
	par.Workers = 4
	ex, err := par.ExtractPolicy(context.Background(), policy)
	if err != nil {
		t.Fatal(err)
	}
	if par.Stats.Errors == 0 {
		t.Error("no errors recorded under failure injection")
	}
	if len(ex.Practices) == 0 {
		t.Error("all practices lost")
	}
	if ex.SegmentErrors == nil {
		t.Error("degraded extraction should aggregate segment errors")
	}
	if !errors.Is(ex.SegmentErrors, llm.ErrOverloaded) {
		t.Errorf("joined error should expose the underlying cause, got %v", ex.SegmentErrors)
	}
}

func TestFailFastAbortsExtraction(t *testing.T) {
	e := New(&llm.FlakyClient{Inner: llm.NewSim(), EveryN: 4})
	e.Workers = 4
	e.FailFast = true
	_, err := e.ExtractPolicy(context.Background(), policy)
	if err == nil {
		t.Fatal("fail-fast extraction should surface segment errors")
	}
	if !errors.Is(err, llm.ErrOverloaded) {
		t.Errorf("fail-fast error should join the underlying cause, got %v", err)
	}
}

func TestConcurrentExtractionContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	e := New(llm.NewSim())
	e.Workers = 4
	cancel()
	if _, err := e.ExtractPolicy(ctx, policy); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled context should return ctx.Err(), got %v", err)
	}
}

// blockingClient answers the company prompt immediately, then blocks every
// extraction call until its context is cancelled, counting starts.
type blockingClient struct {
	inner   llm.Client
	started atomic.Int32
}

func (c *blockingClient) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	if req.Task == llm.TaskCompanyName {
		return c.inner.Complete(ctx, req)
	}
	c.started.Add(1)
	<-ctx.Done()
	return llm.Response{}, ctx.Err()
}

func TestExtractPolicyCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	bc := &blockingClient{inner: llm.NewSim()}
	e := New(bc)
	e.Workers = 4
	done := make(chan error, 1)
	go func() {
		_, err := e.ExtractPolicy(ctx, policy)
		done <- err
	}()
	// Wait until workers are actually in flight, then cancel.
	for i := 0; i < 1000 && bc.started.Load() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("mid-run cancel should return ctx.Err(), got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("extraction did not return promptly after cancellation")
	}
}
