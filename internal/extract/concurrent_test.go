package extract

import (
	"context"
	"reflect"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/llm"
)

func TestConcurrentExtractionMatchesSequential(t *testing.T) {
	seq := New(llm.NewSim())
	exSeq, err := seq.ExtractPolicy(context.Background(), policy)
	if err != nil {
		t.Fatal(err)
	}
	par := New(llm.NewSim())
	par.Concurrency = 8
	exPar, err := par.ExtractPolicy(context.Background(), policy)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(exSeq.Practices, exPar.Practices) {
		t.Fatalf("concurrent extraction diverged:\nseq: %+v\npar: %+v", exSeq.Practices, exPar.Practices)
	}
	if seq.Stats != par.Stats {
		t.Errorf("stats diverged: %+v vs %+v", seq.Stats, par.Stats)
	}
}

func TestConcurrentExtractionDegradesOnFailures(t *testing.T) {
	// A flaky client failing every 4th call: both modes degrade, never
	// panic, and record errors. (Counts differ across modes because the
	// company prompt consumes one call in sequence.)
	par := New(&llm.FlakyClient{Inner: llm.NewSim(), EveryN: 4})
	par.Concurrency = 4
	ex, err := par.ExtractPolicy(context.Background(), policy)
	if err != nil {
		t.Fatal(err)
	}
	if par.Stats.Errors == 0 {
		t.Error("no errors recorded under failure injection")
	}
	if len(ex.Practices) == 0 {
		t.Error("all practices lost")
	}
}

func TestConcurrentExtractionContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	e := New(llm.NewSim())
	e.Concurrency = 4
	cancel()
	if _, err := e.ExtractPolicy(ctx, policy); err == nil {
		t.Error("cancelled context should fail")
	}
}
