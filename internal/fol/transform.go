package fol

import "fmt"

// NNF rewrites f into negation normal form: negations pushed to atoms,
// implications and bi-implications eliminated.
func NNF(f *Formula) *Formula {
	return nnf(f, false)
}

func nnf(f *Formula, neg bool) *Formula {
	switch f.Op {
	case OpTrue:
		if neg {
			return False()
		}
		return f
	case OpFalse:
		if neg {
			return True()
		}
		return f
	case OpPred, OpEq:
		if neg {
			return Not(f)
		}
		return f
	case OpNot:
		return nnf(f.Sub[0], !neg)
	case OpAnd, OpOr:
		sub := make([]*Formula, len(f.Sub))
		for i, s := range f.Sub {
			sub[i] = nnf(s, neg)
		}
		op := f.Op
		if neg {
			if op == OpAnd {
				op = OpOr
			} else {
				op = OpAnd
			}
		}
		return &Formula{Op: op, Sub: sub}
	case OpImplies:
		// p -> q  ==  ¬p ∨ q
		if neg {
			return And(nnf(f.Sub[0], false), nnf(f.Sub[1], true))
		}
		return Or(nnf(f.Sub[0], true), nnf(f.Sub[1], false))
	case OpIff:
		// p <-> q == (p ∧ q) ∨ (¬p ∧ ¬q)
		p, q := f.Sub[0], f.Sub[1]
		if neg {
			return Or(And(nnf(p, false), nnf(q, true)), And(nnf(p, true), nnf(q, false)))
		}
		return Or(And(nnf(p, false), nnf(q, false)), And(nnf(p, true), nnf(q, true)))
	case OpForall:
		op := OpForall
		if neg {
			op = OpExists
		}
		return &Formula{Op: op, Bound: f.Bound, Sub: []*Formula{nnf(f.Sub[0], neg)}}
	case OpExists:
		op := OpExists
		if neg {
			op = OpForall
		}
		return &Formula{Op: op, Bound: f.Bound, Sub: []*Formula{nnf(f.Sub[0], neg)}}
	default:
		panic(fmt.Sprintf("fol: nnf of bad op %d", f.Op))
	}
}

// Prenex converts an NNF formula to prenex form, pulling quantifiers to the
// front. Binders are renamed apart first so extraction is sound.
func Prenex(f *Formula) *Formula {
	f = renameApart(f, map[string]int{})
	prefix, matrix := pullQuantifiers(f)
	out := matrix
	for i := len(prefix) - 1; i >= 0; i-- {
		out = &Formula{Op: prefix[i].op, Bound: prefix[i].v, Sub: []*Formula{out}}
	}
	return out
}

type quant struct {
	op Op
	v  string
}

// renameApart gives every binder a globally unique name.
func renameApart(f *Formula, counts map[string]int) *Formula {
	switch f.Op {
	case OpForall, OpExists:
		counts[f.Bound]++
		name := f.Bound
		if counts[f.Bound] > 1 {
			name = fmt.Sprintf("%s#%d", f.Bound, counts[f.Bound])
		}
		body := f.Sub[0]
		if name != f.Bound {
			body = Subst(body, f.Bound, Var(name))
		}
		return &Formula{Op: f.Op, Bound: name, Sub: []*Formula{renameApart(body, counts)}}
	case OpPred, OpEq, OpTrue, OpFalse:
		return f
	default:
		sub := make([]*Formula, len(f.Sub))
		for i, s := range f.Sub {
			sub[i] = renameApart(s, counts)
		}
		return &Formula{Op: f.Op, Pred: f.Pred, Uninterpreted: f.Uninterpreted, Terms: f.Terms, Sub: sub}
	}
}

func pullQuantifiers(f *Formula) ([]quant, *Formula) {
	switch f.Op {
	case OpForall, OpExists:
		inner, matrix := pullQuantifiers(f.Sub[0])
		return append([]quant{{f.Op, f.Bound}}, inner...), matrix
	case OpAnd, OpOr:
		var prefix []quant
		sub := make([]*Formula, len(f.Sub))
		for i, s := range f.Sub {
			p, m := pullQuantifiers(s)
			prefix = append(prefix, p...)
			sub[i] = m
		}
		return prefix, &Formula{Op: f.Op, Sub: sub}
	case OpNot:
		// NNF input: negation only wraps atoms, which hold no quantifiers.
		return nil, f
	default:
		return nil, f
	}
}

// Skolemize removes existential quantifiers from a prenex NNF formula by
// introducing Skolem constants/functions named sk_N. The result has only
// universal quantifiers.
func Skolemize(f *Formula) *Formula { return SkolemizeTagged(f, "") }

// SkolemizeTagged is Skolemize with a tag mixed into every Skolem symbol
// (sk<tag>_N). Distinct tags keep the Skolem constants of independently
// clausified formulas apart when their clauses later share one arena or
// solver — without a tag, two clausifications both emit sk_1 and the
// shared problem would wrongly conflate their witnesses.
func SkolemizeTagged(f *Formula, tag string) *Formula {
	counter := 0
	var universals []string
	var walk func(g *Formula) *Formula
	walk = func(g *Formula) *Formula {
		switch g.Op {
		case OpForall:
			universals = append(universals, g.Bound)
			body := walk(g.Sub[0])
			universals = universals[:len(universals)-1]
			return &Formula{Op: OpForall, Bound: g.Bound, Sub: []*Formula{body}}
		case OpExists:
			counter++
			name := fmt.Sprintf("sk%s_%d", tag, counter)
			var replacement Term
			if len(universals) == 0 {
				replacement = Const(name)
			} else {
				args := make([]Term, len(universals))
				for i, u := range universals {
					args[i] = Var(u)
				}
				replacement = App(name, args...)
			}
			return walk(Subst(g.Sub[0], g.Bound, replacement))
		default:
			return g
		}
	}
	return walk(f)
}

// Clause is a disjunction of literals.
type Clause []Literal

// Literal is a possibly negated atom.
type Literal struct {
	// Neg marks a negated literal.
	Neg bool
	// Atom is the underlying predicate or equality formula (OpPred/OpEq).
	Atom *Formula
}

// String renders the literal.
func (l Literal) String() string {
	if l.Neg {
		return "¬" + l.Atom.String()
	}
	return l.Atom.String()
}

// CNF converts the quantifier-free matrix of a Skolemized prenex formula to
// clause form via distribution. It errors if a quantifier remains once the
// leading universal prefix is stripped (universal variables are treated as
// implicitly quantified, as in resolution calculi).
func CNF(f *Formula) ([]Clause, error) {
	// Strip leading universals.
	for f.Op == OpForall {
		f = f.Sub[0]
	}
	return cnfMatrix(f)
}

func cnfMatrix(f *Formula) ([]Clause, error) {
	switch f.Op {
	case OpTrue:
		return nil, nil
	case OpFalse:
		return []Clause{{}}, nil
	case OpPred, OpEq:
		return []Clause{{Literal{Atom: f}}}, nil
	case OpNot:
		a := f.Sub[0]
		if a.Op != OpPred && a.Op != OpEq {
			return nil, fmt.Errorf("fol: CNF input not in NNF: ¬%s", a.Op)
		}
		return []Clause{{Literal{Neg: true, Atom: a}}}, nil
	case OpAnd:
		var out []Clause
		for _, s := range f.Sub {
			cs, err := cnfMatrix(s)
			if err != nil {
				return nil, err
			}
			out = append(out, cs...)
		}
		return out, nil
	case OpOr:
		// Distribute pairwise.
		acc := []Clause{{}}
		for _, s := range f.Sub {
			cs, err := cnfMatrix(s)
			if err != nil {
				return nil, err
			}
			var next []Clause
			for _, a := range acc {
				for _, c := range cs {
					merged := make(Clause, 0, len(a)+len(c))
					merged = append(merged, a...)
					merged = append(merged, c...)
					next = append(next, merged)
				}
			}
			acc = next
		}
		return acc, nil
	case OpForall, OpExists:
		return nil, fmt.Errorf("fol: CNF input contains inner quantifier %s%s", f.Op, f.Bound)
	default:
		return nil, fmt.Errorf("fol: CNF input contains %s; run NNF first", f.Op)
	}
}

// ClausesOf runs the full pipeline NNF -> Prenex -> Skolemize -> CNF.
func ClausesOf(f *Formula) ([]Clause, error) {
	return CNF(Skolemize(Prenex(NNF(f))))
}

// ClausesOfTagged is ClausesOf with a Skolem tag (see SkolemizeTagged).
func ClausesOfTagged(f *Formula, tag string) ([]Clause, error) {
	return CNF(SkolemizeTagged(Prenex(NNF(f)), tag))
}

// Simplify performs structural simplification: constant folding, flattening
// of nested ∧/∨, deduplication of identical juxtaposed operands, double
// negation elimination, and p ∧ ¬p / p ∨ ¬p folding at the same level. The
// result is logically equivalent to the input.
func Simplify(f *Formula) *Formula {
	switch f.Op {
	case OpTrue, OpFalse, OpPred, OpEq:
		return f
	case OpNot:
		s := Simplify(f.Sub[0])
		switch s.Op {
		case OpTrue:
			return False()
		case OpFalse:
			return True()
		case OpNot:
			return s.Sub[0]
		}
		return Not(s)
	case OpAnd, OpOr:
		identity, absorber := OpTrue, OpFalse
		if f.Op == OpOr {
			identity, absorber = OpFalse, OpTrue
		}
		var flat []*Formula
		seen := map[string]bool{}
		negSeen := map[string]bool{}
		contradiction := false
		var add func(s *Formula)
		add = func(s *Formula) {
			if s.Op == f.Op {
				for _, x := range s.Sub {
					add(x)
				}
				return
			}
			if s.Op == identity {
				return
			}
			if s.Op == absorber {
				contradiction = true
				return
			}
			key := s.String()
			if seen[key] {
				return
			}
			// Complementary pair detection.
			if s.Op == OpNot {
				if seen[s.Sub[0].String()] {
					contradiction = true
					return
				}
				negSeen[s.Sub[0].String()] = true
			} else if negSeen[key] {
				contradiction = true
				return
			}
			seen[key] = true
			flat = append(flat, s)
		}
		for _, s := range f.Sub {
			add(Simplify(s))
		}
		if contradiction {
			if f.Op == OpAnd {
				return False()
			}
			return True()
		}
		switch len(flat) {
		case 0:
			if f.Op == OpAnd {
				return True()
			}
			return False()
		case 1:
			return flat[0]
		}
		return &Formula{Op: f.Op, Sub: flat}
	case OpImplies:
		p, q := Simplify(f.Sub[0]), Simplify(f.Sub[1])
		switch {
		case p.Op == OpFalse || q.Op == OpTrue:
			return True()
		case p.Op == OpTrue:
			return q
		case q.Op == OpFalse:
			return Simplify(Not(p))
		}
		return Implies(p, q)
	case OpIff:
		p, q := Simplify(f.Sub[0]), Simplify(f.Sub[1])
		switch {
		case p.Op == OpTrue:
			return q
		case q.Op == OpTrue:
			return p
		case p.Op == OpFalse:
			return Simplify(Not(q))
		case q.Op == OpFalse:
			return Simplify(Not(p))
		case p.Equal(q):
			return True()
		}
		return Iff(p, q)
	case OpForall, OpExists:
		body := Simplify(f.Sub[0])
		if body.Op == OpTrue || body.Op == OpFalse {
			return body // vacuous quantification over nonempty domain
		}
		// Drop quantifier when the variable does not occur.
		if !formulaMentions(body, f.Bound) {
			return body
		}
		return &Formula{Op: f.Op, Bound: f.Bound, Sub: []*Formula{body}}
	default:
		return f
	}
}
