package fol

// Arena persistence: an ArenaImage is the flattened, order-preserving form
// of a hash-consed Arena. Because term and atom IDs are dense and every
// node only references earlier IDs (hash-consing interns leaves before the
// terms containing them), the image can be restored by a single positional
// pass — recomputing hash buckets and groundness flags as it goes — with
// no re-hash-consing, no structural dedup checks and no AST round trip.
// That is what makes codec-v2 analysis payloads directly loadable instead
// of recipes for recomputation.

import "fmt"

// ArenaImage is the serializable form of an Arena. Terms and atoms are
// flat int32 streams:
//
//	terms: kind, sym, nargs, args... — one record per TermID, in ID order
//	atoms: pred, flags, nargs, args... — one record per AtomID, in ID order
//
// flags bit 0 marks equality atoms, bit 1 uninterpreted (ambiguity
// placeholder) predicates. Variable-ness of symbols and groundness of
// terms/atoms are derived state, recomputed on load.
type ArenaImage struct {
	Syms  []string `json:"syms"`
	Terms []int32  `json:"terms"`
	Atoms []int32  `json:"atoms"`
}

const (
	atomFlagEq            = 1
	atomFlagUninterpreted = 2
)

// Image flattens the arena. The result shares no state with the arena and
// is safe to serialize or load from another goroutine.
func (a *Arena) Image() *ArenaImage {
	img := &ArenaImage{
		Syms:  append([]string(nil), a.syms...),
		Terms: make([]int32, 0, len(a.terms)*3),
		Atoms: make([]int32, 0, len(a.atoms)*3),
	}
	for _, n := range a.terms {
		img.Terms = append(img.Terms, int32(n.kind), int32(n.sym), int32(len(n.args)))
		for _, arg := range n.args {
			img.Terms = append(img.Terms, int32(arg))
		}
	}
	for _, n := range a.atoms {
		var flags int32
		if n.eq {
			flags |= atomFlagEq
		}
		if n.uninterpreted {
			flags |= atomFlagUninterpreted
		}
		img.Atoms = append(img.Atoms, int32(n.pred), flags, int32(len(n.args)))
		for _, arg := range n.args {
			img.Atoms = append(img.Atoms, int32(arg))
		}
	}
	return img
}

// LoadArena restores an arena from an image. Every ID reference is
// validated — symbols in range, term arguments strictly below the term
// being defined (the topological order hash-consing guarantees), atom
// arguments within the term table — so a corrupted or adversarial image
// errors instead of producing an arena that indexes out of bounds.
func LoadArena(img *ArenaImage) (*Arena, error) {
	if img == nil {
		return nil, fmt.Errorf("fol: nil arena image")
	}
	a := NewArena()
	a.syms = append([]string(nil), img.Syms...)
	a.varSyms = make([]bool, len(a.syms))
	for i, s := range a.syms {
		if prev, ok := a.symIDs[s]; ok {
			return nil, fmt.Errorf("fol: arena image: symbol %q duplicated at %d and %d", s, prev, i)
		}
		a.symIDs[s] = Sym(i)
	}

	stream := img.Terms
	for pos := 0; pos < len(stream); {
		if len(stream)-pos < 3 {
			return nil, fmt.Errorf("fol: arena image: truncated term record at %d", pos)
		}
		kind, sym, nargs := TermKind(stream[pos]), stream[pos+1], stream[pos+2]
		pos += 3
		if kind != TermVar && kind != TermConst && kind != TermApp {
			return nil, fmt.Errorf("fol: arena image: bad term kind %d", kind)
		}
		if sym < 0 || int(sym) >= len(a.syms) {
			return nil, fmt.Errorf("fol: arena image: term symbol %d out of range", sym)
		}
		if nargs < 0 || int(nargs) > len(stream)-pos {
			return nil, fmt.Errorf("fol: arena image: term arg count %d out of range", nargs)
		}
		if nargs > 0 && kind != TermApp {
			return nil, fmt.Errorf("fol: arena image: %d args on non-application term", nargs)
		}
		id := TermID(len(a.terms))
		ground := kind != TermVar
		var args []TermID
		if nargs > 0 {
			args = make([]TermID, nargs)
			for i := range args {
				arg := stream[pos+i]
				if arg < 0 || TermID(arg) >= id {
					return nil, fmt.Errorf("fol: arena image: term %d references arg %d (not yet defined)", id, arg)
				}
				args[i] = TermID(arg)
				if !a.terms[arg].ground {
					ground = false
				}
			}
			pos += int(nargs)
		}
		a.terms = append(a.terms, termNode{kind: kind, sym: Sym(sym), args: args, ground: ground})
		h := a.termHash(kind, Sym(sym), args)
		a.termTable[h] = append(a.termTable[h], id)
		if kind == TermVar {
			a.varSyms[sym] = true
		}
	}

	stream = img.Atoms
	for pos := 0; pos < len(stream); {
		if len(stream)-pos < 3 {
			return nil, fmt.Errorf("fol: arena image: truncated atom record at %d", pos)
		}
		pred, flags, nargs := stream[pos], stream[pos+1], stream[pos+2]
		pos += 3
		if pred < 0 || int(pred) >= len(a.syms) {
			return nil, fmt.Errorf("fol: arena image: atom predicate %d out of range", pred)
		}
		if flags&^(atomFlagEq|atomFlagUninterpreted) != 0 {
			return nil, fmt.Errorf("fol: arena image: bad atom flags %d", flags)
		}
		if nargs < 0 || int(nargs) > len(stream)-pos {
			return nil, fmt.Errorf("fol: arena image: atom arg count %d out of range", nargs)
		}
		eq := flags&atomFlagEq != 0
		if eq && nargs != 2 {
			return nil, fmt.Errorf("fol: arena image: equality atom with %d args", nargs)
		}
		ground := true
		var args []TermID
		if nargs > 0 {
			args = make([]TermID, nargs)
			for i := range args {
				arg := stream[pos+i]
				if arg < 0 || int(arg) >= len(a.terms) {
					return nil, fmt.Errorf("fol: arena image: atom arg term %d out of range", arg)
				}
				args[i] = TermID(arg)
				if !a.terms[arg].ground {
					ground = false
				}
			}
			pos += int(nargs)
		}
		id := AtomID(len(a.atoms))
		a.atoms = append(a.atoms, atomNode{
			pred: Sym(pred), eq: eq,
			uninterpreted: flags&atomFlagUninterpreted != 0,
			args:          args, ground: ground,
		})
		h := a.atomHash(Sym(pred), eq, args)
		a.atomTable[h] = append(a.atomTable[h], id)
	}
	return a, nil
}
