package fol

import "testing"

// FuzzParse checks the parser round-trip invariant: any input the parser
// accepts must print to a string that parses back to the same formula
// (fixed point of Parse∘String), and the parser must never panic on
// arbitrary input.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"p(x)",
		"¬p(a)",
		"(p(a) ∧ q(b))",
		"(p(a) ∨ ¬q(b))",
		"(p(a) → q(a))",
		"∀x. p(x)",
		"∃y. (p(y) ∧ r(y,a))",
		"∀x. ∃y. r(x,y)",
		"(f(a) = g(b,c))",
		"¬(x = y)",
		"⊤",
		"⊥",
		"[vague condition]",
		"∀x. (p(f(x)) → ∃y. r(x,g(y)))",
		"((p(a) ∧ q(b)) ∨ (r(a,b) → ⊥))",
		"p(",
		"∀. p(x)",
		"((((",
		"p(x))",
		"= a b",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		parsed, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := parsed.String()
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("Parse accepted %q but rejected its own print %q: %v", src, printed, err)
		}
		if got := again.String(); got != printed {
			t.Fatalf("print not a fixed point: %q -> %q -> %q", src, printed, got)
		}
	})
}
