package fol

import (
	"math/rand"
	"strings"
	"testing"
)

func TestTermString(t *testing.T) {
	tm := App("f", Var("x"), Const("a"))
	if tm.String() != "f(x,a)" {
		t.Errorf("String = %q", tm.String())
	}
}

func TestFormulaString(t *testing.T) {
	f := Forall("x", Implies(Pred("user", Var("x")), Exists("y", Pred("share", Var("x"), Var("y")))))
	want := "∀x. (user(x) → ∃y. share(x,y))"
	if f.String() != want {
		t.Errorf("String = %q, want %q", f.String(), want)
	}
}

func TestAndOrConstructors(t *testing.T) {
	if And().Op != OpTrue {
		t.Error("And() should be ⊤")
	}
	if Or().Op != OpFalse {
		t.Error("Or() should be ⊥")
	}
	p := Pred("p")
	if And(p) != p || Or(p) != p {
		t.Error("singleton And/Or should return operand")
	}
}

func TestFreeVars(t *testing.T) {
	f := Forall("x", Pred("p", Var("x"), Var("y")))
	got := FreeVars(f)
	if len(got) != 1 || got[0] != "y" {
		t.Errorf("FreeVars = %v", got)
	}
	sentence := Forall("x", Exists("y", Pred("p", Var("x"), Var("y"))))
	if len(FreeVars(sentence)) != 0 {
		t.Errorf("sentence has free vars: %v", FreeVars(sentence))
	}
}

func TestSubst(t *testing.T) {
	f := Pred("p", Var("x"), Var("y"))
	g := Subst(f, "x", Const("a"))
	if g.String() != "p(a,y)" {
		t.Errorf("Subst = %s", g)
	}
	// Shadowing: bound x untouched.
	h := Forall("x", Pred("p", Var("x")))
	if !Subst(h, "x", Const("a")).Equal(h) {
		t.Error("bound variable was substituted")
	}
}

func TestSubstCaptureAvoidance(t *testing.T) {
	// Substituting y := x into ∀x. p(x,y) must rename the binder.
	f := Forall("x", Pred("p", Var("x"), Var("y")))
	g := Subst(f, "y", Var("x"))
	if g.Bound == "x" {
		t.Fatalf("capture: %s", g)
	}
	fv := FreeVars(g)
	if len(fv) != 1 || fv[0] != "x" {
		t.Errorf("free vars after subst = %v, want [x]", fv)
	}
}

func TestNNF(t *testing.T) {
	f := Not(And(Pred("p"), Not(Pred("q"))))
	g := NNF(f)
	if g.String() != "(¬p ∨ q)" {
		t.Errorf("NNF = %s", g)
	}
	// Quantifier duality.
	h := NNF(Not(Forall("x", Pred("p", Var("x")))))
	if h.Op != OpExists || h.Sub[0].Op != OpNot {
		t.Errorf("¬∀ should become ∃¬: %s", h)
	}
}

func TestNNFNoImplications(t *testing.T) {
	f := Iff(Implies(Pred("p"), Pred("q")), Pred("r"))
	g := NNF(f)
	var check func(x *Formula)
	check = func(x *Formula) {
		if x.Op == OpImplies || x.Op == OpIff {
			t.Fatalf("NNF retains %s in %s", x.Op, g)
		}
		if x.Op == OpNot && x.Sub[0].Op != OpPred && x.Sub[0].Op != OpEq {
			t.Fatalf("NNF has non-atomic negation: %s", x)
		}
		for _, s := range x.Sub {
			check(s)
		}
	}
	check(g)
}

func TestPrenex(t *testing.T) {
	f := And(Forall("x", Pred("p", Var("x"))), Exists("x", Pred("q", Var("x"))))
	g := Prenex(NNF(f))
	// Both quantifiers must be at the front, renamed apart.
	if g.Op != OpForall && g.Op != OpExists {
		t.Fatalf("not prenex: %s", g)
	}
	inner := g.Sub[0]
	if inner.Op != OpForall && inner.Op != OpExists {
		t.Fatalf("second quantifier not pulled: %s", g)
	}
	if g.Bound == inner.Bound {
		t.Errorf("binders not renamed apart: %s", g)
	}
	if matrix := inner.Sub[0]; matrix.Op != OpAnd {
		t.Errorf("matrix = %s", matrix)
	}
}

func TestSkolemize(t *testing.T) {
	// ∀x ∃y p(x,y) -> ∀x p(x, sk_1(x))
	f := Forall("x", Exists("y", Pred("p", Var("x"), Var("y"))))
	g := Skolemize(f)
	if g.Op != OpForall {
		t.Fatalf("Skolemize = %s", g)
	}
	atom := g.Sub[0]
	if atom.Terms[1].Kind != TermApp || len(atom.Terms[1].Args) != 1 {
		t.Errorf("expected Skolem function of x, got %s", atom)
	}
	// Outer existential becomes a constant.
	h := Skolemize(Exists("y", Pred("q", Var("y"))))
	if h.Terms[0].Kind != TermConst {
		t.Errorf("expected Skolem constant, got %s", h)
	}
}

func TestCNF(t *testing.T) {
	// (p ∧ q) ∨ r  =>  (p∨r) ∧ (q∨r)
	f := Or(And(Pred("p"), Pred("q")), Pred("r"))
	cs, err := CNF(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 || len(cs[0]) != 2 || len(cs[1]) != 2 {
		t.Fatalf("CNF = %v", cs)
	}
}

func TestCNFFalseTrue(t *testing.T) {
	cs, err := CNF(False())
	if err != nil || len(cs) != 1 || len(cs[0]) != 0 {
		t.Errorf("CNF(⊥) = %v, %v", cs, err)
	}
	cs, err = CNF(True())
	if err != nil || len(cs) != 0 {
		t.Errorf("CNF(⊤) = %v, %v", cs, err)
	}
}

func TestClausesOfEndToEnd(t *testing.T) {
	// ∀x (p(x) -> ∃y q(x,y)) yields a single two-literal clause.
	f := Forall("x", Implies(Pred("p", Var("x")), Exists("y", Pred("q", Var("x"), Var("y")))))
	cs, err := ClausesOf(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 1 || len(cs[0]) != 2 {
		t.Fatalf("clauses = %v", cs)
	}
	if !cs[0][0].Neg {
		t.Errorf("first literal should be ¬p(x): %v", cs[0])
	}
	if !strings.Contains(cs[0][1].String(), "sk_") {
		t.Errorf("second literal should mention Skolem function: %v", cs[0][1])
	}
}

func TestSimplify(t *testing.T) {
	p, q := Pred("p"), Pred("q")
	cases := []struct {
		in   *Formula
		want string
	}{
		{And(p, True(), p), "p"},
		{And(p, False()), "⊥"},
		{Or(p, True()), "⊤"},
		{Or(p, Not(p)), "⊤"},
		{And(p, Not(p)), "⊥"},
		{Not(Not(p)), "p"},
		{Implies(False(), p), "⊤"},
		{Implies(True(), p), "p"},
		{Implies(p, False()), "¬p"},
		{Iff(p, p), "⊤"},
		{And(And(p, q), q), "(p ∧ q)"},
		{Forall("x", True()), "⊤"},
		{Exists("x", p), "p"}, // x not mentioned
	}
	for _, c := range cases {
		if got := Simplify(c.in).String(); got != c.want {
			t.Errorf("Simplify(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestSimplifyKeepsQuantifier(t *testing.T) {
	f := Forall("x", Pred("p", Var("x")))
	if got := Simplify(f); !got.Equal(f) {
		t.Errorf("Simplify dropped needed quantifier: %s", got)
	}
}

func TestSignatureOf(t *testing.T) {
	f := And(
		Pred("share", Const("tiktok"), App("dataOf", Var("x"))),
		UninterpretedPred("required_by_law"),
	)
	sig, err := SignatureOf(Forall("x", f))
	if err != nil {
		t.Fatal(err)
	}
	if sig.Preds["share"] != 2 || sig.Preds["required_by_law"] != 0 {
		t.Errorf("preds = %v", sig.Preds)
	}
	if sig.Funcs["dataOf"] != 1 {
		t.Errorf("funcs = %v", sig.Funcs)
	}
	if !sig.Consts["tiktok"] {
		t.Errorf("consts = %v", sig.Consts)
	}
	if !sig.Uninterpreted["required_by_law"] {
		t.Errorf("uninterpreted = %v", sig.Uninterpreted)
	}
}

func TestSignatureArityConflict(t *testing.T) {
	f := And(Pred("p", Const("a")), Pred("p", Const("a"), Const("b")))
	if _, err := SignatureOf(f); err == nil {
		t.Error("expected arity-conflict error")
	}
}

func TestUninterpretedAtoms(t *testing.T) {
	f := And(Pred("share"), UninterpretedPred("legitimate_business_purpose"), UninterpretedPred("required_by_law"))
	got := f.UninterpretedAtoms()
	if len(got) != 2 || got[0] != "legitimate_business_purpose" {
		t.Errorf("UninterpretedAtoms = %v", got)
	}
}

func TestEvalGround(t *testing.T) {
	in := NewInterp("a", "b")
	in.SetTrue("p", Const("a"))
	v, err := in.Eval(Exists("x", Pred("p", Var("x"))), nil)
	if err != nil || !v {
		t.Errorf("∃x p(x) = %v, %v", v, err)
	}
	v, err = in.Eval(Forall("x", Pred("p", Var("x"))), nil)
	if err != nil || v {
		t.Errorf("∀x p(x) = %v, %v", v, err)
	}
	v, err = in.Eval(Eq(Const("a"), Const("a")), nil)
	if err != nil || !v {
		t.Errorf("a=a eval failed: %v %v", v, err)
	}
}

func TestEvalUnboundVar(t *testing.T) {
	in := NewInterp("a")
	if _, err := in.Eval(Pred("p", Var("x")), nil); err == nil {
		t.Error("expected unbound-variable error")
	}
}

// randomFormula builds a random quantifier-free sentence over preds p,q,r
// with constants a,b.
func randomFormula(r *rand.Rand, depth int) *Formula {
	if depth <= 0 {
		consts := []Term{Const("a"), Const("b")}
		switch r.Intn(4) {
		case 0:
			return Pred("p", consts[r.Intn(2)])
		case 1:
			return Pred("q", consts[r.Intn(2)])
		case 2:
			return Eq(consts[r.Intn(2)], consts[r.Intn(2)])
		default:
			return Pred("r")
		}
	}
	switch r.Intn(5) {
	case 0:
		return Not(randomFormula(r, depth-1))
	case 1:
		return And(randomFormula(r, depth-1), randomFormula(r, depth-1))
	case 2:
		return Or(randomFormula(r, depth-1), randomFormula(r, depth-1))
	case 3:
		return Implies(randomFormula(r, depth-1), randomFormula(r, depth-1))
	default:
		return Iff(randomFormula(r, depth-1), randomFormula(r, depth-1))
	}
}

func randomInterp(r *rand.Rand) *Interp {
	in := NewInterp("a", "b")
	for _, c := range []string{"a", "b"} {
		if r.Intn(2) == 0 {
			in.SetTrue("p", Const(c))
		}
		if r.Intn(2) == 0 {
			in.SetTrue("q", Const(c))
		}
	}
	if r.Intn(2) == 0 {
		in.SetTrue("r")
	}
	return in
}

// Property: NNF and Simplify preserve truth under random interpretations.
func TestTransformsPreserveSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 500; i++ {
		f := randomFormula(r, 4)
		in := randomInterp(r)
		want, err := in.Eval(f, nil)
		if err != nil {
			t.Fatal(err)
		}
		for name, g := range map[string]*Formula{"NNF": NNF(f), "Simplify": Simplify(f)} {
			got, err := in.Eval(g, nil)
			if err != nil {
				t.Fatalf("%s eval: %v", name, err)
			}
			if got != want {
				t.Fatalf("%s changed semantics of %s: %v -> %v (result %s)", name, f, want, got, g)
			}
		}
	}
}

// Property: CNF of an NNF'd ground formula is equisatisfiable pointwise —
// here, since no Skolemization happens on ground input, it is equivalent.
func TestCNFPreservesSemanticsGround(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 300; i++ {
		f := randomFormula(r, 3)
		in := randomInterp(r)
		want, err := in.Eval(f, nil)
		if err != nil {
			t.Fatal(err)
		}
		cs, err := CNF(NNF(f))
		if err != nil {
			t.Fatal(err)
		}
		got := true
		for _, c := range cs {
			cv := false
			for _, lit := range c {
				v, err := in.Eval(lit.Atom, nil)
				if err != nil {
					t.Fatal(err)
				}
				if v != lit.Neg {
					cv = true
					break
				}
			}
			if !cv {
				got = false
				break
			}
		}
		if got != want {
			t.Fatalf("CNF changed semantics of %s: want %v got %v (clauses %v)", f, want, got, cs)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	f := And(Pred("p", Var("x")), Pred("q"))
	g := f.Clone()
	g.Sub[0].Pred = "z"
	if f.Sub[0].Pred != "p" {
		t.Error("Clone shares nodes")
	}
	if f.Size() != 3 {
		t.Errorf("Size = %d", f.Size())
	}
}

func TestAtoms(t *testing.T) {
	f := And(Pred("b"), Or(Pred("a"), Pred("b")))
	got := f.Atoms()
	if len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("Atoms = %v", got)
	}
}
