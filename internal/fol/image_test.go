package fol

import (
	"reflect"
	"testing"
)

// imageFixture interns a representative mix — variables, constants,
// nested applications, equality and uninterpreted atoms — and returns the
// arena plus the interned clauses.
func imageFixture(t *testing.T) (*Arena, []IClause) {
	t.Helper()
	a := NewArena()
	formulas := []*Formula{
		Pred("share", Const("acme"), Const("email"), Const("advertiser")),
		Forall("X", Or(Not(Pred("collect", Const("acme"), Var("X"))),
			Pred("store", Const("acme"), Var("X")))),
		Eq(App("region", Const("acme")), Const("eu")),
		Not(UninterpretedPred("ambiguous_retention")),
		Pred("subtype", Const("email"), App("pii", Const("contact"), App("id", Const("email")))),
	}
	var ics []IClause
	for _, f := range formulas {
		clauses, err := ClausesOf(Simplify(f))
		if err != nil {
			t.Fatal(err)
		}
		for _, c := range clauses {
			ics = append(ics, a.InternClause(c))
		}
	}
	return a, ics
}

// TestArenaImageRoundTrip pins the core restore property: a loaded arena
// is positionally identical to the original — same IDs, same derived
// flags, and, critically, the same hash buckets, so interning the same
// structure into the restored arena dedups to the same ID instead of
// allocating a new node.
func TestArenaImageRoundTrip(t *testing.T) {
	a, ics := imageFixture(t)
	got, err := LoadArena(a.Image())
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTerms() != a.NumTerms() || got.NumAtoms() != a.NumAtoms() {
		t.Fatalf("restored %d terms / %d atoms, want %d / %d",
			got.NumTerms(), got.NumAtoms(), a.NumTerms(), a.NumAtoms())
	}
	if !reflect.DeepEqual(got.terms, a.terms) {
		t.Error("term nodes differ after round trip")
	}
	if !reflect.DeepEqual(got.atoms, a.atoms) {
		t.Error("atom nodes differ after round trip")
	}
	if !reflect.DeepEqual(got.syms, a.syms) || !reflect.DeepEqual(got.varSyms, a.varSyms) {
		t.Error("symbol tables differ after round trip")
	}
	// Hash-consing still dedups: re-interning every original clause into
	// the restored arena must find the existing atoms, not grow the arena.
	for _, ic := range ics {
		for _, l := range ic {
			id := got.internAtomNode(a.atoms[l.Atom()].pred, a.atoms[l.Atom()].eq,
				a.atoms[l.Atom()].uninterpreted, a.atoms[l.Atom()].args)
			if id != l.Atom() {
				t.Fatalf("re-interning atom %d produced %d", l.Atom(), id)
			}
		}
	}
	if got.NumAtoms() != a.NumAtoms() || got.NumTerms() != a.NumTerms() {
		t.Errorf("re-interning grew the restored arena to %d terms / %d atoms",
			got.NumTerms(), got.NumAtoms())
	}
}

// TestLoadArenaRejectsCorruption: every malformed image errors instead of
// panicking or producing an arena that indexes out of bounds.
func TestLoadArenaRejectsCorruption(t *testing.T) {
	base := func() *ArenaImage {
		a, _ := imageFixture(t)
		return a.Image()
	}
	cases := map[string]func(*ArenaImage){
		"nil image":           nil,
		"truncated terms":     func(img *ArenaImage) { img.Terms = img.Terms[:len(img.Terms)-1] },
		"truncated atoms":     func(img *ArenaImage) { img.Atoms = img.Atoms[:len(img.Atoms)-1] },
		"bad term kind":       func(img *ArenaImage) { img.Terms[0] = 99 },
		"negative term kind":  func(img *ArenaImage) { img.Terms[0] = -1 },
		"sym out of range":    func(img *ArenaImage) { img.Terms[1] = int32(len(img.Syms)) },
		"huge arg count":      func(img *ArenaImage) { img.Terms[2] = 1 << 30 },
		"negative arg count":  func(img *ArenaImage) { img.Atoms[2] = -5 },
		"duplicate symbol":    func(img *ArenaImage) { img.Syms[1] = img.Syms[0] },
		"bad atom flags":      func(img *ArenaImage) { img.Atoms[1] = 8 },
		"atom pred range":     func(img *ArenaImage) { img.Atoms[0] = -2 },
		"forward term ref":    func(img *ArenaImage) { forwardTermRef(img) },
		"atom arg past terms": func(img *ArenaImage) { atomArgPastTerms(img) },
	}
	for name, corrupt := range cases {
		t.Run(name, func(t *testing.T) {
			var img *ArenaImage
			if corrupt != nil {
				img = base()
				corrupt(img)
			}
			if _, err := LoadArena(img); err == nil {
				t.Errorf("%s: LoadArena accepted a corrupt image", name)
			}
		})
	}
}

// forwardTermRef rewrites the first application's first argument to point
// at a term defined later (or itself) — invalid topological order.
func forwardTermRef(img *ArenaImage) {
	pos, id := 0, int32(0)
	for pos < len(img.Terms) {
		nargs := img.Terms[pos+2]
		if nargs > 0 {
			img.Terms[pos+3] = id
			return
		}
		pos += 3 + int(nargs)
		id++
	}
}

// atomArgPastTerms points an atom argument past the term table.
func atomArgPastTerms(img *ArenaImage) {
	pos := 0
	for pos < len(img.Atoms) {
		nargs := img.Atoms[pos+2]
		if nargs > 0 {
			img.Atoms[pos+3] = int32(len(img.Terms))
			return
		}
		pos += 3 + int(nargs)
	}
}
