// Package fol implements the first-order-logic representation used by the
// pipeline: terms and formulas, free-variable analysis, substitution,
// normal-form transformations (NNF, prenex, Skolemization, ground CNF) and a
// structural simplifier.
//
// Vague policy conditions ("legitimate business purpose", "required by law")
// are represented as ordinary predicates whose symbols are tagged as
// uninterpreted; the tag is preserved through every transformation so the
// final SMT encoding can surface them as the explicit ambiguity placeholders
// the paper calls for.
package fol

import (
	"fmt"
	"sort"
	"strings"
)

// Term is a first-order term: a variable, a constant, or a function
// application.
type Term struct {
	// Kind discriminates the term variant.
	Kind TermKind
	// Name is the variable, constant or function symbol.
	Name string
	// Args holds function arguments; nil unless Kind == TermApp.
	Args []Term
}

// TermKind enumerates term variants.
type TermKind int

// Term variants.
const (
	// TermVar is a quantified or free variable.
	TermVar TermKind = iota
	// TermConst is an individual constant.
	TermConst
	// TermApp is a function application.
	TermApp
)

// Var constructs a variable term.
func Var(name string) Term { return Term{Kind: TermVar, Name: name} }

// Const constructs a constant term.
func Const(name string) Term { return Term{Kind: TermConst, Name: name} }

// App constructs a function application term.
func App(fn string, args ...Term) Term {
	return Term{Kind: TermApp, Name: fn, Args: args}
}

// Equal reports structural equality of two terms.
func (t Term) Equal(u Term) bool {
	if t.Kind != u.Kind || t.Name != u.Name || len(t.Args) != len(u.Args) {
		return false
	}
	for i := range t.Args {
		if !t.Args[i].Equal(u.Args[i]) {
			return false
		}
	}
	return true
}

// String renders the term in conventional notation: x, c, f(a,b).
func (t Term) String() string {
	if t.Kind != TermApp {
		return t.Name
	}
	parts := make([]string, len(t.Args))
	for i, a := range t.Args {
		parts[i] = a.String()
	}
	return t.Name + "(" + strings.Join(parts, ",") + ")"
}

// Op enumerates formula connectives and atoms.
type Op int

// Formula operators.
const (
	// OpPred is an atomic predicate application.
	OpPred Op = iota
	// OpEq is term equality.
	OpEq
	// OpNot is negation; Sub[0] is the operand.
	OpNot
	// OpAnd is n-ary conjunction over Sub.
	OpAnd
	// OpOr is n-ary disjunction over Sub.
	OpOr
	// OpImplies is implication; Sub[0] -> Sub[1].
	OpImplies
	// OpIff is bi-implication; Sub[0] <-> Sub[1].
	OpIff
	// OpForall is universal quantification of Bound over Sub[0].
	OpForall
	// OpExists is existential quantification of Bound over Sub[0].
	OpExists
	// OpTrue is the true constant.
	OpTrue
	// OpFalse is the false constant.
	OpFalse
)

// String returns the operator's conventional symbol.
func (o Op) String() string {
	switch o {
	case OpPred:
		return "pred"
	case OpEq:
		return "="
	case OpNot:
		return "¬"
	case OpAnd:
		return "∧"
	case OpOr:
		return "∨"
	case OpImplies:
		return "→"
	case OpIff:
		return "↔"
	case OpForall:
		return "∀"
	case OpExists:
		return "∃"
	case OpTrue:
		return "⊤"
	case OpFalse:
		return "⊥"
	default:
		return "?"
	}
}

// Formula is a first-order formula. The zero value is not meaningful; use
// the constructors.
type Formula struct {
	// Op discriminates the node.
	Op Op
	// Pred is the predicate symbol for OpPred.
	Pred string
	// Uninterpreted marks OpPred atoms whose symbol stands for a vague or
	// externally-defined policy condition preserved for human review.
	Uninterpreted bool
	// Terms are the predicate arguments (OpPred) or the equality sides
	// (OpEq, exactly two).
	Terms []Term
	// Sub holds operand formulas for connectives and quantifiers.
	Sub []*Formula
	// Bound is the variable bound by OpForall/OpExists.
	Bound string
}

// Pred constructs an atomic predicate application.
func Pred(name string, args ...Term) *Formula {
	return &Formula{Op: OpPred, Pred: name, Terms: args}
}

// UninterpretedPred constructs an atom tagged as an explicit ambiguity
// placeholder (e.g. required_by_law).
func UninterpretedPred(name string, args ...Term) *Formula {
	return &Formula{Op: OpPred, Pred: name, Terms: args, Uninterpreted: true}
}

// Eq constructs the equality a = b.
func Eq(a, b Term) *Formula { return &Formula{Op: OpEq, Terms: []Term{a, b}} }

// Not constructs the negation of f.
func Not(f *Formula) *Formula { return &Formula{Op: OpNot, Sub: []*Formula{f}} }

// And constructs the conjunction of fs. And() is True; And(f) is f.
func And(fs ...*Formula) *Formula {
	switch len(fs) {
	case 0:
		return True()
	case 1:
		return fs[0]
	}
	return &Formula{Op: OpAnd, Sub: fs}
}

// Or constructs the disjunction of fs. Or() is False; Or(f) is f.
func Or(fs ...*Formula) *Formula {
	switch len(fs) {
	case 0:
		return False()
	case 1:
		return fs[0]
	}
	return &Formula{Op: OpOr, Sub: fs}
}

// Implies constructs p -> q.
func Implies(p, q *Formula) *Formula {
	return &Formula{Op: OpImplies, Sub: []*Formula{p, q}}
}

// Iff constructs p <-> q.
func Iff(p, q *Formula) *Formula {
	return &Formula{Op: OpIff, Sub: []*Formula{p, q}}
}

// Forall constructs ∀v. f.
func Forall(v string, f *Formula) *Formula {
	return &Formula{Op: OpForall, Bound: v, Sub: []*Formula{f}}
}

// Exists constructs ∃v. f.
func Exists(v string, f *Formula) *Formula {
	return &Formula{Op: OpExists, Bound: v, Sub: []*Formula{f}}
}

// True returns the ⊤ constant.
func True() *Formula { return &Formula{Op: OpTrue} }

// False returns the ⊥ constant.
func False() *Formula { return &Formula{Op: OpFalse} }

// Equal reports structural equality (no alpha-equivalence).
func (f *Formula) Equal(g *Formula) bool {
	if f == nil || g == nil {
		return f == g
	}
	if f.Op != g.Op || f.Pred != g.Pred || f.Bound != g.Bound ||
		len(f.Terms) != len(g.Terms) || len(f.Sub) != len(g.Sub) {
		return false
	}
	for i := range f.Terms {
		if !f.Terms[i].Equal(g.Terms[i]) {
			return false
		}
	}
	for i := range f.Sub {
		if !f.Sub[i].Equal(g.Sub[i]) {
			return false
		}
	}
	return true
}

// String renders the formula with conventional unicode connectives.
func (f *Formula) String() string {
	switch f.Op {
	case OpTrue:
		return "⊤"
	case OpFalse:
		return "⊥"
	case OpPred:
		if len(f.Terms) == 0 {
			return f.Pred
		}
		parts := make([]string, len(f.Terms))
		for i, t := range f.Terms {
			parts[i] = t.String()
		}
		return f.Pred + "(" + strings.Join(parts, ",") + ")"
	case OpEq:
		return "(" + f.Terms[0].String() + " = " + f.Terms[1].String() + ")"
	case OpNot:
		return "¬" + f.Sub[0].String()
	case OpAnd, OpOr:
		parts := make([]string, len(f.Sub))
		for i, s := range f.Sub {
			parts[i] = s.String()
		}
		return "(" + strings.Join(parts, " "+f.Op.String()+" ") + ")"
	case OpImplies:
		return "(" + f.Sub[0].String() + " → " + f.Sub[1].String() + ")"
	case OpIff:
		return "(" + f.Sub[0].String() + " ↔ " + f.Sub[1].String() + ")"
	case OpForall, OpExists:
		return f.Op.String() + f.Bound + ". " + f.Sub[0].String()
	default:
		return fmt.Sprintf("<bad op %d>", f.Op)
	}
}

// Clone returns a deep copy of the formula.
func (f *Formula) Clone() *Formula {
	if f == nil {
		return nil
	}
	g := &Formula{Op: f.Op, Pred: f.Pred, Bound: f.Bound, Uninterpreted: f.Uninterpreted}
	if f.Terms != nil {
		g.Terms = make([]Term, len(f.Terms))
		copy(g.Terms, f.Terms) // Term args are shared; terms are immutable by convention
	}
	if f.Sub != nil {
		g.Sub = make([]*Formula, len(f.Sub))
		for i, s := range f.Sub {
			g.Sub[i] = s.Clone()
		}
	}
	return g
}

// Size returns the number of formula nodes, a proxy for clause complexity
// used by the benchmarks.
func (f *Formula) Size() int {
	if f == nil {
		return 0
	}
	n := 1
	for _, s := range f.Sub {
		n += s.Size()
	}
	return n
}

// Atoms returns the distinct predicate symbols occurring in f, sorted.
func (f *Formula) Atoms() []string {
	set := map[string]bool{}
	var walk func(g *Formula)
	walk = func(g *Formula) {
		if g.Op == OpPred {
			set[g.Pred] = true
		}
		for _, s := range g.Sub {
			walk(s)
		}
	}
	walk(f)
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// UninterpretedAtoms returns the distinct predicate symbols tagged as
// ambiguity placeholders, sorted. These are the terms the paper says must be
// surfaced for human interpretation.
func (f *Formula) UninterpretedAtoms() []string {
	set := map[string]bool{}
	var walk func(g *Formula)
	walk = func(g *Formula) {
		if g.Op == OpPred && g.Uninterpreted {
			set[g.Pred] = true
		}
		for _, s := range g.Sub {
			walk(s)
		}
	}
	walk(f)
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
