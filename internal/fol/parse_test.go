package fol

import (
	"math/rand"
	"testing"
)

func TestParseBasics(t *testing.T) {
	cases := map[string]string{
		"⊤":                        "⊤",
		"true":                     "⊤",
		"⊥":                        "⊥",
		"p":                        "p",
		"p(a)":                     "p(a)",
		"p(a,b)":                   "p(a,b)",
		"¬p":                       "¬p",
		"!p":                       "¬p",
		"(p ∧ q)":                  "(p ∧ q)",
		"(p & q & r)":              "(p ∧ q ∧ r)",
		"(p | q)":                  "(p ∨ q)",
		"(p -> q)":                 "(p → q)",
		"(p <-> q)":                "(p ↔ q)",
		"(a = b)":                  "(a = b)",
		"∀x. p(x)":                 "∀x. p(x)",
		"forall x. p(x)":           "∀x. p(x)",
		"exists y. (p(y) & q)":     "∃y. (p(y) ∧ q)",
		"∀x. ∃y. p(x,y)":           "∀x. ∃y. p(x,y)",
		"p(f(a),g(x))":             "p(f(a),g(x))",
		"((p ∧ q) ∨ ¬r)":           "((p ∧ q) ∨ ¬r)",
		"∀x. (user(x) → share(x))": "∀x. (user(x) → share(x))",
		"(f(a) = g(b))":            "(f(a) = g(b))",
	}
	for src, want := range cases {
		got, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if got.String() != want {
			t.Errorf("Parse(%q) = %s, want %s", src, got, want)
		}
	}
}

func TestParseBoundVariables(t *testing.T) {
	f, err := Parse("∀x. p(x,c)")
	if err != nil {
		t.Fatal(err)
	}
	atom := f.Sub[0]
	if atom.Terms[0].Kind != TermVar {
		t.Error("bound x parsed as constant")
	}
	if atom.Terms[1].Kind != TermConst {
		t.Error("free c parsed as variable")
	}
	// Shadowing restores after quantifier scope.
	g, err := Parse("(∀x. p(x) ∧ q(x))")
	if err != nil {
		t.Fatal(err)
	}
	if g.Sub[1].Terms[0].Kind != TermConst {
		t.Error("x outside binder should be a constant")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"", "(", "(p", "(p ∧", "(p ∧ q ∨ r)", "∀x p(x)", "p(a", "(p -> q -> r)",
		"p) extra", "(a = )",
	} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

// Property: String -> Parse round-trips random formulas up to structural
// equality.
func TestParseRoundTripProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		f := randomQuantFormula(r, 3, nil)
		g, err := Parse(f.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", f.String(), err)
		}
		if !g.Equal(f) {
			t.Fatalf("round trip: %s != %s", g, f)
		}
	}
}

// randomQuantFormula extends the random generator with quantifiers over
// variables in scope.
func randomQuantFormula(r *rand.Rand, depth int, scope []string) *Formula {
	if depth <= 0 {
		var args []Term
		if len(scope) > 0 && r.Intn(2) == 0 {
			args = append(args, Var(scope[r.Intn(len(scope))]))
		} else {
			args = append(args, Const("c"+string(rune('a'+r.Intn(3)))))
		}
		return Pred("p"+string(rune('a'+r.Intn(3))), args...)
	}
	switch r.Intn(7) {
	case 0:
		return Not(randomQuantFormula(r, depth-1, scope))
	case 1:
		return And(randomQuantFormula(r, depth-1, scope), randomQuantFormula(r, depth-1, scope))
	case 2:
		return Or(randomQuantFormula(r, depth-1, scope), randomQuantFormula(r, depth-1, scope))
	case 3:
		return Implies(randomQuantFormula(r, depth-1, scope), randomQuantFormula(r, depth-1, scope))
	case 4:
		return Iff(randomQuantFormula(r, depth-1, scope), randomQuantFormula(r, depth-1, scope))
	case 5:
		v := "v" + string(rune('0'+len(scope)))
		return Forall(v, randomQuantFormula(r, depth-1, append(scope, v)))
	default:
		v := "w" + string(rune('0'+len(scope)))
		return Exists(v, randomQuantFormula(r, depth-1, append(scope, v)))
	}
}
