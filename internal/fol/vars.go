package fol

import (
	"fmt"
	"sort"
)

// FreeVars returns the free variables of f, sorted.
func FreeVars(f *Formula) []string {
	set := map[string]bool{}
	collectFree(f, map[string]bool{}, set)
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

func collectFree(f *Formula, bound map[string]bool, out map[string]bool) {
	for _, t := range f.Terms {
		collectFreeTerm(t, bound, out)
	}
	switch f.Op {
	case OpForall, OpExists:
		was := bound[f.Bound]
		bound[f.Bound] = true
		collectFree(f.Sub[0], bound, out)
		bound[f.Bound] = was
	default:
		for _, s := range f.Sub {
			collectFree(s, bound, out)
		}
	}
}

func collectFreeTerm(t Term, bound map[string]bool, out map[string]bool) {
	switch t.Kind {
	case TermVar:
		if !bound[t.Name] {
			out[t.Name] = true
		}
	case TermApp:
		for _, a := range t.Args {
			collectFreeTerm(a, bound, out)
		}
	}
}

// SubstTerm replaces free occurrences of variable v in t with r.
func SubstTerm(t Term, v string, r Term) Term {
	switch t.Kind {
	case TermVar:
		if t.Name == v {
			return r
		}
		return t
	case TermApp:
		args := make([]Term, len(t.Args))
		for i, a := range t.Args {
			args[i] = SubstTerm(a, v, r)
		}
		return Term{Kind: TermApp, Name: t.Name, Args: args}
	default:
		return t
	}
}

// Subst replaces free occurrences of variable v in f with term r. Bound
// occurrences shadow; capture is avoided by renaming the binder when r
// mentions it.
func Subst(f *Formula, v string, r Term) *Formula {
	switch f.Op {
	case OpTrue, OpFalse:
		return f
	case OpPred, OpEq:
		terms := make([]Term, len(f.Terms))
		for i, t := range f.Terms {
			terms[i] = SubstTerm(t, v, r)
		}
		return &Formula{Op: f.Op, Pred: f.Pred, Uninterpreted: f.Uninterpreted, Terms: terms}
	case OpForall, OpExists:
		if f.Bound == v {
			return f // v is shadowed
		}
		if termMentions(r, f.Bound) {
			// Capture: rename the binder first.
			fresh := freshVar(f.Bound, func(name string) bool {
				return termMentions(r, name) || formulaMentions(f.Sub[0], name)
			})
			body := Subst(f.Sub[0], f.Bound, Var(fresh))
			return &Formula{Op: f.Op, Bound: fresh, Sub: []*Formula{Subst(body, v, r)}}
		}
		return &Formula{Op: f.Op, Bound: f.Bound, Sub: []*Formula{Subst(f.Sub[0], v, r)}}
	default:
		sub := make([]*Formula, len(f.Sub))
		for i, s := range f.Sub {
			sub[i] = Subst(s, v, r)
		}
		return &Formula{Op: f.Op, Sub: sub}
	}
}

func termMentions(t Term, v string) bool {
	switch t.Kind {
	case TermVar:
		return t.Name == v
	case TermApp:
		for _, a := range t.Args {
			if termMentions(a, v) {
				return true
			}
		}
	}
	return false
}

func formulaMentions(f *Formula, v string) bool {
	for _, t := range f.Terms {
		if termMentions(t, v) {
			return true
		}
	}
	if f.Op == OpForall || f.Op == OpExists {
		if f.Bound == v {
			return true
		}
	}
	for _, s := range f.Sub {
		if formulaMentions(s, v) {
			return true
		}
	}
	return false
}

// freshVar derives a name from base that does not satisfy taken.
func freshVar(base string, taken func(string) bool) string {
	for i := 1; ; i++ {
		cand := fmt.Sprintf("%s_%d", base, i)
		if !taken(cand) {
			return cand
		}
	}
}

// Signature describes the symbols of a formula: predicate and function
// arities plus the constants, so a compiler can emit declarations.
type Signature struct {
	// Preds maps predicate symbols to arity.
	Preds map[string]int
	// Funcs maps function symbols to arity.
	Funcs map[string]int
	// Consts is the set of constant symbols.
	Consts map[string]bool
	// Uninterpreted is the subset of Preds tagged as ambiguity
	// placeholders.
	Uninterpreted map[string]bool
}

// SignatureOf computes the signature of f. Inconsistent arities for the same
// symbol return an error, since they would produce an ill-typed SMT script.
func SignatureOf(f *Formula) (*Signature, error) {
	sig := &Signature{
		Preds:         map[string]int{},
		Funcs:         map[string]int{},
		Consts:        map[string]bool{},
		Uninterpreted: map[string]bool{},
	}
	var walkTerm func(t Term) error
	walkTerm = func(t Term) error {
		switch t.Kind {
		case TermConst:
			sig.Consts[t.Name] = true
		case TermApp:
			if a, ok := sig.Funcs[t.Name]; ok && a != len(t.Args) {
				return fmt.Errorf("fol: function %q used with arities %d and %d", t.Name, a, len(t.Args))
			}
			sig.Funcs[t.Name] = len(t.Args)
			for _, a := range t.Args {
				if err := walkTerm(a); err != nil {
					return err
				}
			}
		}
		return nil
	}
	var walk func(g *Formula) error
	walk = func(g *Formula) error {
		if g.Op == OpPred {
			if a, ok := sig.Preds[g.Pred]; ok && a != len(g.Terms) {
				return fmt.Errorf("fol: predicate %q used with arities %d and %d", g.Pred, a, len(g.Terms))
			}
			sig.Preds[g.Pred] = len(g.Terms)
			if g.Uninterpreted {
				sig.Uninterpreted[g.Pred] = true
			}
		}
		for _, t := range g.Terms {
			if err := walkTerm(t); err != nil {
				return err
			}
		}
		for _, s := range g.Sub {
			if err := walk(s); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(f); err != nil {
		return nil, err
	}
	return sig, nil
}

// Constants returns the sorted constant symbols of f.
func Constants(f *Formula) []string {
	sig, err := SignatureOf(f)
	if err != nil {
		return nil
	}
	out := make([]string, 0, len(sig.Consts))
	for c := range sig.Consts {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}
