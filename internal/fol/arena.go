package fol

// This file implements hash-consing of terms, atoms and ground clauses
// into a per-problem Arena with stable integer IDs. The SMT hot path —
// clause identity, substitution application, E-matching and the boolean
// abstraction — becomes integer-keyed: no String() rendering and no
// map[string] lookups per operation. Symbols (names of variables,
// constants, functions and predicates) are interned once per distinct
// spelling; everything after that is slice-indexed.

// Sym is an interned symbol (variable, constant, function or predicate
// name). IDs are dense and stable for the lifetime of the Arena.
type Sym int32

// TermID is an interned term. IDs are dense; a TermID is valid only for
// the Arena that produced it.
type TermID int32

// AtomID is an interned atom (predicate application or equality). IDs are
// dense; an AtomID is valid only for the Arena that produced it.
type AtomID int32

// ILit is an interned literal: the atom ID shifted left one bit, with the
// low bit set for negation. The zero value is the positive literal of
// atom 0.
type ILit int32

// MkILit builds a literal from an atom and a polarity.
func MkILit(a AtomID, neg bool) ILit {
	l := ILit(a) << 1
	if neg {
		l |= 1
	}
	return l
}

// Atom returns the literal's atom.
func (l ILit) Atom() AtomID { return AtomID(l >> 1) }

// Neg reports whether the literal is negated.
func (l ILit) Neg() bool { return l&1 == 1 }

// Negate returns the complementary literal.
func (l ILit) Negate() ILit { return l ^ 1 }

// IClause is an interned ground-or-nonground clause: a disjunction of
// interned literals, sorted ascending for canonical identity.
type IClause []ILit

// termNode is the interned representation of one term.
type termNode struct {
	kind TermKind
	sym  Sym
	// args are argument term IDs (nil unless kind == TermApp). The slice
	// is owned by the arena and never mutated.
	args []TermID
	// ground caches whether the term contains no variables.
	ground bool
}

// atomNode is the interned representation of one atom.
type atomNode struct {
	// pred is the predicate symbol; for equality atoms it is eqSym.
	pred Sym
	eq   bool
	args []TermID
	// uninterpreted marks ambiguity-placeholder predicates.
	uninterpreted bool
	// ground caches whether every argument is ground.
	ground bool
}

// Arena hash-conses terms and atoms to dense integer IDs. The zero value
// is not ready; use NewArena. An Arena is not safe for concurrent use;
// callers that share one across goroutines must serialize access (the smt
// incremental core does).
type Arena struct {
	syms    []string
	symIDs  map[string]Sym
	varSyms []bool // sym -> interned at least once as a variable

	terms     []termNode
	termTable map[uint64][]TermID // structural hash -> candidates

	atoms     []atomNode
	atomTable map[uint64][]AtomID

	clauseTable map[uint64][]IClause // canonical clause hash -> seen clauses
	clauseCount int
}

// NewArena returns an empty arena.
func NewArena() *Arena {
	return &Arena{
		symIDs:      map[string]Sym{},
		termTable:   map[uint64][]TermID{},
		atomTable:   map[uint64][]AtomID{},
		clauseTable: map[uint64][]IClause{},
	}
}

// Sym interns a symbol name.
func (a *Arena) Sym(name string) Sym {
	if id, ok := a.symIDs[name]; ok {
		return id
	}
	id := Sym(len(a.syms))
	a.syms = append(a.syms, name)
	a.symIDs[name] = id
	a.varSyms = append(a.varSyms, false)
	return id
}

// SymName returns the spelling of an interned symbol.
func (a *Arena) SymName(s Sym) string { return a.syms[s] }

// NumTerms reports the number of distinct interned terms.
func (a *Arena) NumTerms() int { return len(a.terms) }

// NumAtoms reports the number of distinct interned atoms.
func (a *Arena) NumAtoms() int { return len(a.atoms) }

// NumClauses reports the number of distinct interned clauses.
func (a *Arena) NumClauses() int { return a.clauseCount }

const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func hashMix(h, v uint64) uint64 { return (h ^ v) * fnvPrime }

func (a *Arena) termHash(kind TermKind, sym Sym, args []TermID) uint64 {
	h := hashMix(fnvOffset, uint64(kind)+1)
	h = hashMix(h, uint64(sym)+1)
	for _, arg := range args {
		h = hashMix(h, uint64(arg)+1)
	}
	return h
}

func (a *Arena) internTermNode(kind TermKind, sym Sym, args []TermID) TermID {
	h := a.termHash(kind, sym, args)
	for _, cand := range a.termTable[h] {
		n := &a.terms[cand]
		if n.kind != kind || n.sym != sym || len(n.args) != len(args) {
			continue
		}
		same := true
		for i := range args {
			if n.args[i] != args[i] {
				same = false
				break
			}
		}
		if same {
			return cand
		}
	}
	ground := kind != TermVar
	var owned []TermID
	if len(args) > 0 {
		owned = make([]TermID, len(args))
		copy(owned, args)
		for _, arg := range owned {
			if !a.terms[arg].ground {
				ground = false
			}
		}
	}
	id := TermID(len(a.terms))
	a.terms = append(a.terms, termNode{kind: kind, sym: sym, args: owned, ground: ground})
	a.termTable[h] = append(a.termTable[h], id)
	if kind == TermVar {
		a.varSyms[sym] = true
	}
	return id
}

// InternVar interns a variable term by symbol.
func (a *Arena) InternVar(s Sym) TermID { return a.internTermNode(TermVar, s, nil) }

// InternConst interns a constant term by symbol.
func (a *Arena) InternConst(s Sym) TermID { return a.internTermNode(TermConst, s, nil) }

// InternApp interns a function application.
func (a *Arena) InternApp(fn Sym, args []TermID) TermID {
	return a.internTermNode(TermApp, fn, args)
}

// InternTerm interns an AST term.
func (a *Arena) InternTerm(t Term) TermID {
	switch t.Kind {
	case TermVar:
		return a.InternVar(a.Sym(t.Name))
	case TermConst:
		return a.InternConst(a.Sym(t.Name))
	default:
		var args []TermID
		if len(t.Args) > 0 {
			args = make([]TermID, len(t.Args))
			for i, arg := range t.Args {
				args[i] = a.InternTerm(arg)
			}
		}
		return a.InternApp(a.Sym(t.Name), args)
	}
}

// TermGround reports whether the interned term contains no variables.
func (a *Arena) TermGround(id TermID) bool { return a.terms[id].ground }

// TermKindOf returns the term's variant.
func (a *Arena) TermKindOf(id TermID) TermKind { return a.terms[id].kind }

// TermSym returns the term's head symbol.
func (a *Arena) TermSym(id TermID) Sym { return a.terms[id].sym }

// TermArgs returns the term's argument IDs. The slice is owned by the
// arena; callers must not mutate it.
func (a *Arena) TermArgs(id TermID) []TermID { return a.terms[id].args }

// Term reconstructs the AST form of an interned term.
func (a *Arena) Term(id TermID) Term {
	n := &a.terms[id]
	switch n.kind {
	case TermVar:
		return Var(a.syms[n.sym])
	case TermConst:
		return Const(a.syms[n.sym])
	default:
		args := make([]Term, len(n.args))
		for i, arg := range n.args {
			args[i] = a.Term(arg)
		}
		return Term{Kind: TermApp, Name: a.syms[n.sym], Args: args}
	}
}

func (a *Arena) atomHash(pred Sym, eq bool, args []TermID) uint64 {
	h := hashMix(fnvOffset, uint64(pred)+2)
	if eq {
		h = hashMix(h, 7)
	}
	for _, arg := range args {
		h = hashMix(h, uint64(arg)+1)
	}
	return h
}

func (a *Arena) internAtomNode(pred Sym, eq, uninterpreted bool, args []TermID) AtomID {
	h := a.atomHash(pred, eq, args)
	for _, cand := range a.atomTable[h] {
		n := &a.atoms[cand]
		if n.pred != pred || n.eq != eq || len(n.args) != len(args) {
			continue
		}
		same := true
		for i := range args {
			if n.args[i] != args[i] {
				same = false
				break
			}
		}
		if same {
			return cand
		}
	}
	ground := true
	var owned []TermID
	if len(args) > 0 {
		owned = make([]TermID, len(args))
		copy(owned, args)
		for _, arg := range owned {
			if !a.terms[arg].ground {
				ground = false
			}
		}
	}
	id := AtomID(len(a.atoms))
	a.atoms = append(a.atoms, atomNode{pred: pred, eq: eq, uninterpreted: uninterpreted, args: owned, ground: ground})
	a.atomTable[h] = append(a.atomTable[h], id)
	return id
}

// InternPred interns a predicate atom by symbol and argument IDs.
func (a *Arena) InternPred(pred Sym, uninterpreted bool, args []TermID) AtomID {
	return a.internAtomNode(pred, false, uninterpreted, args)
}

// InternEq interns an equality atom between two term IDs.
func (a *Arena) InternEq(x, y TermID) AtomID {
	return a.internAtomNode(a.Sym("="), true, false, []TermID{x, y})
}

// InternAtom interns an atomic formula (OpPred or OpEq). It panics on
// non-atomic input; the clausifier guarantees atoms here.
func (a *Arena) InternAtom(f *Formula) AtomID {
	switch f.Op {
	case OpPred:
		var args []TermID
		if len(f.Terms) > 0 {
			args = make([]TermID, len(f.Terms))
			for i, t := range f.Terms {
				args[i] = a.InternTerm(t)
			}
		}
		return a.InternPred(a.Sym(f.Pred), f.Uninterpreted, args)
	case OpEq:
		return a.InternEq(a.InternTerm(f.Terms[0]), a.InternTerm(f.Terms[1]))
	default:
		panic("fol: InternAtom of non-atomic formula " + f.Op.String())
	}
}

// AtomGround reports whether the atom's arguments are all ground.
func (a *Arena) AtomGround(id AtomID) bool { return a.atoms[id].ground }

// AtomEq reports whether the atom is an equality.
func (a *Arena) AtomEq(id AtomID) bool { return a.atoms[id].eq }

// AtomPred returns the atom's predicate symbol (meaningless for
// equalities).
func (a *Arena) AtomPred(id AtomID) Sym { return a.atoms[id].pred }

// AtomUninterpreted reports whether the atom is an ambiguity placeholder.
func (a *Arena) AtomUninterpreted(id AtomID) bool { return a.atoms[id].uninterpreted }

// AtomArgs returns the atom's argument term IDs (arena-owned).
func (a *Arena) AtomArgs(id AtomID) []TermID { return a.atoms[id].args }

// AtomFormula reconstructs the AST form of an interned atom.
func (a *Arena) AtomFormula(id AtomID) *Formula {
	n := &a.atoms[id]
	if n.eq {
		return Eq(a.Term(n.args[0]), a.Term(n.args[1]))
	}
	args := make([]Term, len(n.args))
	for i, arg := range n.args {
		args[i] = a.Term(arg)
	}
	f := Pred(a.syms[n.pred], args...)
	f.Uninterpreted = n.uninterpreted
	return f
}

// InternClause interns an AST clause to interned-literal form.
func (a *Arena) InternClause(c Clause) IClause {
	ic := make(IClause, len(c))
	for i, lit := range c {
		ic[i] = MkILit(a.InternAtom(lit.Atom), lit.Neg)
	}
	return ic
}

// Canon sorts the clause ascending and removes duplicate literals,
// in place, returning the canonical slice (possibly shorter). Sorted
// interned literals give clause identity without rendering anything.
func (c IClause) Canon() IClause {
	if len(c) < 2 {
		return c
	}
	// Insertion sort: clauses are short and often nearly sorted.
	for i := 1; i < len(c); i++ {
		for j := i; j > 0 && c[j] < c[j-1]; j-- {
			c[j], c[j-1] = c[j-1], c[j]
		}
	}
	out := c[:1]
	for _, l := range c[1:] {
		if l != out[len(out)-1] {
			out = append(out, l)
		}
	}
	return out
}

// Tautology reports whether the canonical clause contains a literal and
// its negation (requires Canon first: complementary literals are
// adjacent after sorting).
func (c IClause) Tautology() bool {
	for i := 1; i < len(c); i++ {
		if c[i] == c[i-1]^1 {
			return true
		}
	}
	return false
}

// SeenClause records the canonical clause in the arena's dedup set and
// reports whether it was already present. The clause must be Canon-ed.
func (a *Arena) SeenClause(c IClause) bool {
	h := fnvOffset
	for _, l := range c {
		h = hashMix(h, uint64(l)+1)
	}
	for _, prev := range a.clauseTable[h] {
		if len(prev) != len(c) {
			continue
		}
		same := true
		for i := range c {
			if prev[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	stored := make(IClause, len(c))
	copy(stored, c)
	a.clauseTable[h] = append(a.clauseTable[h], stored)
	a.clauseCount++
	return false
}

// Subst applies a substitution (variable sym -> replacement term ID) to a
// term. Unmapped variables are left in place; the substitution never
// introduces variables bound elsewhere (instantiation substitutions map
// to ground terms).
func (a *Arena) Subst(id TermID, sub map[Sym]TermID) TermID {
	n := &a.terms[id]
	if n.ground {
		return id
	}
	switch n.kind {
	case TermVar:
		if r, ok := sub[n.sym]; ok {
			return r
		}
		return id
	case TermApp:
		changed := false
		args := make([]TermID, len(n.args))
		for i, arg := range n.args {
			args[i] = a.Subst(arg, sub)
			if args[i] != arg {
				changed = true
			}
		}
		if !changed {
			return id
		}
		return a.InternApp(a.terms[id].sym, args)
	default:
		return id
	}
}

// SubstAtom applies a substitution to an atom.
func (a *Arena) SubstAtom(id AtomID, sub map[Sym]TermID) AtomID {
	n := &a.atoms[id]
	if n.ground {
		return id
	}
	changed := false
	args := make([]TermID, len(n.args))
	for i, arg := range n.args {
		args[i] = a.Subst(arg, sub)
		if args[i] != arg {
			changed = true
		}
	}
	if !changed {
		return id
	}
	m := &a.atoms[id]
	return a.internAtomNode(m.pred, m.eq, m.uninterpreted, args)
}

// TermVars appends the distinct variable symbols of the term to out and
// returns the extended slice. Order is first-occurrence.
func (a *Arena) TermVars(id TermID, out []Sym) []Sym {
	n := &a.terms[id]
	if n.ground {
		return out
	}
	if n.kind == TermVar {
		for _, s := range out {
			if s == n.sym {
				return out
			}
		}
		return append(out, n.sym)
	}
	for _, arg := range n.args {
		out = a.TermVars(arg, out)
	}
	return out
}

// AtomVars appends the distinct variable symbols of the atom to out.
func (a *Arena) AtomVars(id AtomID, out []Sym) []Sym {
	n := &a.atoms[id]
	if n.ground {
		return out
	}
	for _, arg := range n.args {
		out = a.TermVars(arg, out)
	}
	return out
}

// ClauseVars returns the distinct variable symbols of the clause in
// first-occurrence order (nil for ground clauses).
func (a *Arena) ClauseVars(c IClause) []Sym {
	var out []Sym
	for _, l := range c {
		out = a.AtomVars(l.Atom(), out)
	}
	return out
}

// ClauseGround reports whether every literal's atom is ground.
func (a *Arena) ClauseGround(c IClause) bool {
	for _, l := range c {
		if !a.atoms[l.Atom()].ground {
			return false
		}
	}
	return true
}

// Match unifies a pattern term (may contain variables) against a ground
// term, extending sub. It reports whether the match succeeded; on failure
// sub may hold partial bindings and the caller discards it.
func (a *Arena) Match(pattern, ground TermID, sub map[Sym]TermID) bool {
	p := &a.terms[pattern]
	switch p.kind {
	case TermVar:
		if bound, ok := sub[p.sym]; ok {
			return bound == ground
		}
		sub[p.sym] = ground
		return true
	case TermConst:
		return pattern == ground
	default:
		g := &a.terms[ground]
		if g.kind != TermApp || g.sym != p.sym || len(g.args) != len(p.args) {
			return false
		}
		for i := range p.args {
			if !a.Match(p.args[i], g.args[i], sub) {
				return false
			}
		}
		return true
	}
}

// MatchAtom unifies a pattern atom against a ground atom, extending sub.
func (a *Arena) MatchAtom(pattern, ground AtomID, sub map[Sym]TermID) bool {
	p, g := &a.atoms[pattern], &a.atoms[ground]
	if p.pred != g.pred || p.eq != g.eq || len(p.args) != len(g.args) {
		return false
	}
	for i := range p.args {
		if !a.Match(p.args[i], g.args[i], sub) {
			return false
		}
	}
	return true
}

// GroundSubterms appends every ground subterm of id (including id itself
// when ground) to out and returns the extended slice.
func (a *Arena) GroundSubterms(id TermID, out []TermID) []TermID {
	n := &a.terms[id]
	if n.ground {
		out = append(out, id)
	}
	for _, arg := range n.args {
		out = a.GroundSubterms(arg, out)
	}
	return out
}
