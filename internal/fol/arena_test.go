package fol

import (
	"math/rand"
	"testing"
)

func TestArenaInterningIsCanonical(t *testing.T) {
	a := NewArena()
	x := a.InternVar(a.Sym("x"))
	c := a.InternConst(a.Sym("c"))
	if x2 := a.InternVar(a.Sym("x")); x2 != x {
		t.Fatalf("re-interning var: %d != %d", x2, x)
	}
	if c2 := a.InternConst(a.Sym("c")); c2 != c {
		t.Fatalf("re-interning const: %d != %d", c2, c)
	}
	// Same spelling, different kind: distinct IDs.
	if cv := a.InternVar(a.Sym("c")); cv == c {
		t.Fatal("var c and const c must not alias")
	}
	f := a.Sym("f")
	app1 := a.InternApp(f, []TermID{c, x})
	app2 := a.InternApp(f, []TermID{c, x})
	if app1 != app2 {
		t.Fatalf("re-interning app: %d != %d", app1, app2)
	}
	if app3 := a.InternApp(f, []TermID{x, c}); app3 == app1 {
		t.Fatal("argument order must matter")
	}
	if a.TermGround(app1) {
		t.Error("f(c, x) is not ground")
	}
	if !a.TermGround(a.InternApp(f, []TermID{c, c})) {
		t.Error("f(c, c) is ground")
	}
}

func TestArenaTermRoundTrip(t *testing.T) {
	a := NewArena()
	orig := App("f", Const("c"), App("g", Var("x")))
	id := a.InternTerm(orig)
	back := a.Term(id)
	if back.String() != orig.String() {
		t.Fatalf("round trip: %s != %s", back, orig)
	}
	if id2 := a.InternTerm(back); id2 != id {
		t.Fatalf("re-interning reconstructed term: %d != %d", id2, id)
	}
}

func TestArenaAtomInterning(t *testing.T) {
	a := NewArena()
	c := a.InternConst(a.Sym("c"))
	d := a.InternConst(a.Sym("d"))
	p := a.Sym("p")
	at1 := a.InternPred(p, false, []TermID{c, d})
	at2 := a.InternPred(p, false, []TermID{c, d})
	if at1 != at2 {
		t.Fatalf("re-interning atom: %d != %d", at1, at2)
	}
	eq1 := a.InternEq(c, d)
	eq2 := a.InternEq(c, d)
	if eq1 != eq2 {
		t.Fatalf("re-interning equality: %d != %d", eq1, eq2)
	}
	if !a.AtomEq(eq1) || a.AtomEq(at1) {
		t.Error("eq flag wrong")
	}
	f := a.AtomFormula(at1)
	if f.String() != "p(c,d)" {
		t.Fatalf("AtomFormula: %s", f)
	}
	if a.InternAtom(f) != at1 {
		t.Fatal("InternAtom of reconstructed formula must hit the same ID")
	}
}

func TestIClauseCanonAndTautology(t *testing.T) {
	a := NewArena()
	c := a.InternConst(a.Sym("c"))
	p := a.InternPred(a.Sym("p"), false, []TermID{c})
	q := a.InternPred(a.Sym("q"), false, []TermID{c})
	cl1 := IClause{MkILit(q, false), MkILit(p, true), MkILit(q, false)}.Canon()
	cl2 := IClause{MkILit(p, true), MkILit(q, false)}.Canon()
	if len(cl1) != len(cl2) {
		t.Fatalf("canon dedup: %v vs %v", cl1, cl2)
	}
	for i := range cl1 {
		if cl1[i] != cl2[i] {
			t.Fatalf("canon order: %v vs %v", cl1, cl2)
		}
	}
	if !(IClause{MkILit(p, false), MkILit(p, true)}).Canon().Tautology() {
		t.Error("p ∨ ¬p must be a tautology")
	}
	if cl1.Tautology() {
		t.Error("¬p ∨ q is not a tautology")
	}
}

func TestArenaSubstAndMatch(t *testing.T) {
	a := NewArena()
	xs := a.Sym("x")
	x := a.InternVar(xs)
	c := a.InternConst(a.Sym("c"))
	f := a.Sym("f")
	pat := a.InternApp(f, []TermID{x, x})
	ground := a.InternApp(f, []TermID{c, c})
	sub := map[Sym]TermID{}
	if !a.Match(pat, ground, sub) || sub[xs] != c {
		t.Fatalf("match f(x,x) vs f(c,c): ok=%v sub=%v", sub[xs] == c, sub)
	}
	if got := a.Subst(pat, sub); got != ground {
		t.Fatalf("subst: %d != %d", got, ground)
	}
	d := a.InternConst(a.Sym("d"))
	mixed := a.InternApp(f, []TermID{c, d})
	sub2 := map[Sym]TermID{}
	if a.Match(pat, mixed, sub2) {
		t.Fatal("f(x,x) must not match f(c,d)")
	}
	// Substituting a ground term is the identity and must not grow the arena.
	n := a.NumTerms()
	if a.Subst(ground, sub) != ground {
		t.Fatal("ground subst must be identity")
	}
	if a.NumTerms() != n {
		t.Fatalf("ground subst allocated %d new terms", a.NumTerms()-n)
	}
}

func TestArenaGroundSubterms(t *testing.T) {
	a := NewArena()
	id := a.InternTerm(App("f", Const("c"), App("g", Var("x"), Const("d"))))
	got := a.GroundSubterms(id, nil)
	names := map[string]bool{}
	for _, g := range got {
		names[a.Term(g).String()] = true
	}
	// f(...) and g(...) contain x; only the constants are ground subterms.
	if len(got) != 2 || !names["c"] || !names["d"] {
		t.Fatalf("ground subterms of f(c, g(x, d)): %v", names)
	}
}

// TestArenaAgainstStringIdentity cross-checks the hash-consing invariant on
// random terms: two terms intern to the same ID iff they print identically.
func TestArenaAgainstStringIdentity(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	var gen func(depth int) Term
	gen = func(depth int) Term {
		if depth <= 0 || r.Intn(3) == 0 {
			switch r.Intn(3) {
			case 0:
				return Var([]string{"x", "y"}[r.Intn(2)])
			default:
				return Const([]string{"a", "b", "c"}[r.Intn(3)])
			}
		}
		fn := []string{"f", "g"}[r.Intn(2)]
		n := 1 + r.Intn(2)
		args := make([]Term, n)
		for i := range args {
			args[i] = gen(depth - 1)
		}
		return App(fn, args...)
	}
	a := NewArena()
	byString := map[string]TermID{}
	for i := 0; i < 2000; i++ {
		tm := gen(3)
		id := a.InternTerm(tm)
		s := tm.String()
		if prev, ok := byString[s]; ok {
			if prev != id {
				t.Fatalf("%s interned twice with different IDs %d, %d", s, prev, id)
			}
		} else {
			byString[s] = id
		}
	}
	if a.NumTerms() > len(byString)+8 {
		// Subterms are interned too, so NumTerms can exceed the count of
		// distinct top-level strings — but every subterm string is also a
		// generated string with positive probability; allow slack.
		t.Logf("terms=%d distinct strings=%d", a.NumTerms(), len(byString))
	}
}
