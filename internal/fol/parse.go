package fol

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// Parse reads a formula in the textual syntax produced by Formula.String:
//
//	⊤ ⊥ p(x,a) (a = b) ¬φ (φ ∧ ψ ∧ ...) (φ ∨ ψ) (φ → ψ) (φ ↔ ψ) ∀x. φ ∃x. φ
//
// ASCII aliases are accepted: true/false, !, &, |, ->, <->, forall x., and
// exists x. Identifiers starting with a lowercase letter followed by '('
// are predicate/function applications; bare identifiers are constants,
// except single letters u-z (optionally suffixed), which parse as
// variables when bound and as constants otherwise — to avoid ambiguity the
// parser treats any identifier bound by an enclosing quantifier as a
// variable and everything else as a constant.
func Parse(src string) (*Formula, error) {
	p := &folParser{src: src}
	f, err := p.parseFormula(map[string]bool{})
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("fol: trailing input at %d: %q", p.pos, p.src[p.pos:])
	}
	return f, nil
}

type folParser struct {
	src string
	pos int
}

func (p *folParser) skipSpace() {
	for p.pos < len(p.src) {
		r, size := decodeParseRune(p.src[p.pos:])
		if !unicode.IsSpace(r) {
			return
		}
		p.pos += size
	}
}

func decodeParseRune(s string) (rune, int) {
	return utf8.DecodeRuneInString(s)
}

func (p *folParser) peek() rune {
	p.skipSpace()
	if p.pos >= len(p.src) {
		return 0
	}
	r, _ := decodeParseRune(p.src[p.pos:])
	return r
}

func (p *folParser) eat(tok string) bool {
	p.skipSpace()
	if strings.HasPrefix(p.src[p.pos:], tok) {
		p.pos += len(tok)
		return true
	}
	return false
}

func (p *folParser) ident() (string, error) {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		r, size := decodeParseRune(p.src[p.pos:])
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '#' {
			p.pos += size
			continue
		}
		break
	}
	if p.pos == start {
		return "", fmt.Errorf("fol: expected identifier at %d", start)
	}
	return p.src[start:p.pos], nil
}

// parseFormula parses one formula; bound tracks quantified variables.
func (p *folParser) parseFormula(bound map[string]bool) (*Formula, error) {
	p.skipSpace()
	switch {
	case p.eat("⊤") || p.eat("true"):
		return True(), nil
	case p.eat("⊥") || p.eat("false"):
		return False(), nil
	case p.eat("¬") || p.eat("!"):
		f, err := p.parseFormula(bound)
		if err != nil {
			return nil, err
		}
		return Not(f), nil
	case p.eat("∀") || p.eat("forall "):
		return p.parseQuant(OpForall, bound)
	case p.eat("∃") || p.eat("exists "):
		return p.parseQuant(OpExists, bound)
	case p.peek() == '(':
		return p.parseParenthesized(bound)
	default:
		return p.parseAtom(bound)
	}
}

func (p *folParser) parseQuant(op Op, bound map[string]bool) (*Formula, error) {
	v, err := p.ident()
	if err != nil {
		return nil, err
	}
	if !p.eat(".") {
		return nil, fmt.Errorf("fol: expected '.' after binder %q at %d", v, p.pos)
	}
	was := bound[v]
	bound[v] = true
	body, err := p.parseFormula(bound)
	bound[v] = was
	if err != nil {
		return nil, err
	}
	return &Formula{Op: op, Bound: v, Sub: []*Formula{body}}, nil
}

// parseParenthesized handles (φ op ψ ...) and (t = u).
func (p *folParser) parseParenthesized(bound map[string]bool) (*Formula, error) {
	if !p.eat("(") {
		return nil, fmt.Errorf("fol: expected '(' at %d", p.pos)
	}
	// Try term equality first: (t = u).
	save := p.pos
	if t, err := p.parseTerm(bound); err == nil {
		if p.eat("=") && !p.eat(">") { // guard against ASCII "=>"
			u, err := p.parseTerm(bound)
			if err != nil {
				return nil, err
			}
			if !p.eat(")") {
				return nil, fmt.Errorf("fol: expected ')' at %d", p.pos)
			}
			return Eq(t, u), nil
		}
		_ = t
	}
	p.pos = save

	first, err := p.parseFormula(bound)
	if err != nil {
		return nil, err
	}
	subs := []*Formula{first}
	var op Op = -1
	for {
		p.skipSpace()
		var this Op = -1
		switch {
		case p.eat("∧") || p.eat("&"):
			this = OpAnd
		case p.eat("∨") || p.eat("|"):
			this = OpOr
		case p.eat("→") || p.eat("->"):
			this = OpImplies
		case p.eat("↔") || p.eat("<->"):
			this = OpIff
		case p.eat(")"):
			switch {
			case op == -1:
				return first, nil
			case op == OpAnd:
				return And(subs...), nil
			case op == OpOr:
				return Or(subs...), nil
			case op == OpImplies:
				if len(subs) != 2 {
					return nil, fmt.Errorf("fol: → is binary")
				}
				return Implies(subs[0], subs[1]), nil
			default:
				if len(subs) != 2 {
					return nil, fmt.Errorf("fol: ↔ is binary")
				}
				return Iff(subs[0], subs[1]), nil
			}
		default:
			return nil, fmt.Errorf("fol: expected connective or ')' at %d", p.pos)
		}
		if op != -1 && this != op {
			return nil, fmt.Errorf("fol: mixed connectives without parentheses at %d", p.pos)
		}
		op = this
		next, err := p.parseFormula(bound)
		if err != nil {
			return nil, err
		}
		subs = append(subs, next)
	}
}

func (p *folParser) parseAtom(bound map[string]bool) (*Formula, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if p.peek() != '(' {
		return Pred(name), nil
	}
	p.eat("(")
	var args []Term
	if p.peek() != ')' {
		for {
			t, err := p.parseTerm(bound)
			if err != nil {
				return nil, err
			}
			args = append(args, t)
			if p.eat(",") {
				continue
			}
			break
		}
	}
	if !p.eat(")") {
		return nil, fmt.Errorf("fol: expected ')' at %d", p.pos)
	}
	return Pred(name, args...), nil
}

func (p *folParser) parseTerm(bound map[string]bool) (Term, error) {
	name, err := p.ident()
	if err != nil {
		return Term{}, err
	}
	if p.peek() == '(' {
		p.eat("(")
		var args []Term
		if p.peek() != ')' {
			for {
				t, err := p.parseTerm(bound)
				if err != nil {
					return Term{}, err
				}
				args = append(args, t)
				if p.eat(",") {
					continue
				}
				break
			}
		}
		if !p.eat(")") {
			return Term{}, fmt.Errorf("fol: expected ')' in term at %d", p.pos)
		}
		return App(name, args...), nil
	}
	if bound[name] {
		return Var(name), nil
	}
	return Const(name), nil
}
