package fol

import (
	"fmt"
	"sort"
)

// Interp is a finite interpretation for evaluating formulas: a domain of
// constant names, truth values for ground atoms, and (optionally) function
// tables. It is used by property tests to check that transformations
// preserve semantics, and by the query engine's fast path for ground
// formulas.
type Interp struct {
	// Domain lists the individuals; quantifiers range over it.
	Domain []string
	// Truth maps a ground atom's String() rendering to its value. Atoms
	// absent from the map are false.
	Truth map[string]bool
	// Funcs maps a ground application's String() rendering to the constant
	// it denotes. Absent applications denote themselves (free term algebra).
	Funcs map[string]string
}

// NewInterp creates an interpretation over the given domain.
func NewInterp(domain ...string) *Interp {
	sort.Strings(domain)
	return &Interp{Domain: domain, Truth: map[string]bool{}, Funcs: map[string]string{}}
}

// SetTrue marks the ground atom p(args...) true.
func (in *Interp) SetTrue(p string, args ...Term) {
	in.Truth[Pred(p, args...).String()] = true
}

// evalTerm reduces a ground term to the constant it denotes.
func (in *Interp) evalTerm(t Term, env map[string]string) (string, error) {
	switch t.Kind {
	case TermVar:
		if v, ok := env[t.Name]; ok {
			return v, nil
		}
		return "", fmt.Errorf("fol: unbound variable %q in evaluation", t.Name)
	case TermConst:
		return t.Name, nil
	case TermApp:
		args := make([]Term, len(t.Args))
		for i, a := range t.Args {
			v, err := in.evalTerm(a, env)
			if err != nil {
				return "", err
			}
			args[i] = Const(v)
		}
		key := Term{Kind: TermApp, Name: t.Name, Args: args}.String()
		if v, ok := in.Funcs[key]; ok {
			return v, nil
		}
		return key, nil
	default:
		return "", fmt.Errorf("fol: bad term kind %d", t.Kind)
	}
}

// Eval evaluates f under the interpretation with the given variable
// environment (may be nil for sentences). Quantifiers range over Domain.
func (in *Interp) Eval(f *Formula, env map[string]string) (bool, error) {
	if env == nil {
		env = map[string]string{}
	}
	switch f.Op {
	case OpTrue:
		return true, nil
	case OpFalse:
		return false, nil
	case OpPred:
		args := make([]Term, len(f.Terms))
		for i, t := range f.Terms {
			v, err := in.evalTerm(t, env)
			if err != nil {
				return false, err
			}
			args[i] = Const(v)
		}
		return in.Truth[Pred(f.Pred, args...).String()], nil
	case OpEq:
		a, err := in.evalTerm(f.Terms[0], env)
		if err != nil {
			return false, err
		}
		b, err := in.evalTerm(f.Terms[1], env)
		if err != nil {
			return false, err
		}
		return a == b, nil
	case OpNot:
		v, err := in.Eval(f.Sub[0], env)
		return !v, err
	case OpAnd:
		for _, s := range f.Sub {
			v, err := in.Eval(s, env)
			if err != nil || !v {
				return false, err
			}
		}
		return true, nil
	case OpOr:
		for _, s := range f.Sub {
			v, err := in.Eval(s, env)
			if err != nil {
				return false, err
			}
			if v {
				return true, nil
			}
		}
		return false, nil
	case OpImplies:
		p, err := in.Eval(f.Sub[0], env)
		if err != nil {
			return false, err
		}
		if !p {
			return true, nil
		}
		return in.Eval(f.Sub[1], env)
	case OpIff:
		p, err := in.Eval(f.Sub[0], env)
		if err != nil {
			return false, err
		}
		q, err := in.Eval(f.Sub[1], env)
		return p == q, err
	case OpForall, OpExists:
		saved, had := env[f.Bound]
		for _, d := range in.Domain {
			env[f.Bound] = d
			v, err := in.Eval(f.Sub[0], env)
			if err != nil {
				return false, err
			}
			if f.Op == OpForall && !v {
				restoreEnv(env, f.Bound, saved, had)
				return false, nil
			}
			if f.Op == OpExists && v {
				restoreEnv(env, f.Bound, saved, had)
				return true, nil
			}
		}
		restoreEnv(env, f.Bound, saved, had)
		return f.Op == OpForall, nil
	default:
		return false, fmt.Errorf("fol: eval of bad op %d", f.Op)
	}
}

func restoreEnv(env map[string]string, k, saved string, had bool) {
	if had {
		env[k] = saved
	} else {
		delete(env, k)
	}
}
