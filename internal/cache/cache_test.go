package cache

import (
	"errors"
	"os"
	"testing"
)

type payload struct {
	Name  string `json:"name"`
	Count int    `json:"count"`
}

func TestSaveLoad(t *testing.T) {
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	in := payload{Name: "tiktak", Count: 3}
	if err := s.Save("extraction", in); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := s.Load("extraction", &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip: %+v != %+v", out, in)
	}
}

func TestLoadMissing(t *testing.T) {
	s, _ := Open(t.TempDir())
	var out payload
	if err := s.Load("nope", &out); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v", err)
	}
}

func TestHasDelete(t *testing.T) {
	s, _ := Open(t.TempDir())
	s.Save("k", payload{})
	if !s.Has("k") {
		t.Error("Has after Save = false")
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if s.Has("k") {
		t.Error("Has after Delete = true")
	}
	if err := s.Delete("k"); err != nil {
		t.Error("double delete should be nil:", err)
	}
}

func TestKeys(t *testing.T) {
	s, _ := Open(t.TempDir())
	s.Save("b", payload{})
	s.Save("a", payload{})
	keys, err := s.Keys()
	if err != nil {
		t.Fatal(err)
	}
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "b" {
		t.Errorf("keys = %v", keys)
	}
}

func TestInvalidKeys(t *testing.T) {
	s, _ := Open(t.TempDir())
	for _, k := range []string{"", "a/b", "..", "x\\y"} {
		if err := s.Save(k, payload{}); err == nil {
			t.Errorf("Save(%q) should fail", k)
		}
	}
}

func TestOverwrite(t *testing.T) {
	s, _ := Open(t.TempDir())
	s.Save("k", payload{Count: 1})
	s.Save("k", payload{Count: 2})
	var out payload
	s.Load("k", &out)
	if out.Count != 2 {
		t.Errorf("overwrite failed: %+v", out)
	}
}

func TestLoadCorruptedJSON(t *testing.T) {
	dir := t.TempDir()
	s, _ := Open(dir)
	if err := os.WriteFile(dir+"/bad.json", []byte("{broken"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := s.Load("bad", &out); err == nil {
		t.Error("corrupted JSON should fail to load")
	}
}

func TestSaveUnmarshalableValue(t *testing.T) {
	s, _ := Open(t.TempDir())
	if err := s.Save("chan", make(chan int)); err == nil {
		t.Error("unmarshalable value should fail to save")
	}
}

func TestOpenCreatesNestedDir(t *testing.T) {
	dir := t.TempDir() + "/a/b/c"
	if _, err := Open(dir); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Error("directory not created")
	}
}
