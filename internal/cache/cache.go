// Package cache is an atomic JSON file store: values are marshaled to
// temp files and renamed into place, so readers never observe a partial
// write. It is the snapshot substrate of the durable policy store
// (internal/store), which compacts its write-ahead log into one
// atomically-written snapshot document here.
package cache

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// Store is a JSON-file-backed key/value store rooted at a directory.
type Store struct {
	dir string
}

// Open creates (if needed) and opens a store rooted at dir.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &Store{dir: dir}, nil
}

// ErrNotFound reports a missing key.
var ErrNotFound = errors.New("cache: not found")

// path maps a key to a file path, rejecting traversal.
func (s *Store) path(key string) (string, error) {
	if key == "" || strings.ContainsAny(key, "/\\") || strings.Contains(key, "..") {
		return "", fmt.Errorf("cache: invalid key %q", key)
	}
	return filepath.Join(s.dir, key+".json"), nil
}

// Save marshals v as JSON and writes it durably and atomically under
// key: the temp file is fsynced before the rename and the directory is
// fsynced after, so a host crash leaves either the old value or the new
// one — never a partial or empty file. The store snapshot path depends
// on this: the WAL is truncated right after the snapshot is saved, so a
// snapshot that only lives in the page cache would mean losing both.
func (s *Store) Save(key string, v any) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return fmt.Errorf("cache: marshal %q: %w", key, err)
	}
	tmp := p + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("cache: write %q: %w", key, err)
	}
	_, werr := f.Write(data)
	if werr == nil {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("cache: write %q: %w", key, werr)
	}
	if err := os.Rename(tmp, p); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("cache: commit %q: %w", key, err)
	}
	return syncDir(s.dir)
}

// syncDir fsyncs the directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	f, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("cache: sync dir: %w", err)
	}
	defer f.Close()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("cache: sync dir: %w", err)
	}
	return nil
}

// Load unmarshals the JSON stored under key into v.
func (s *Store) Load(key string, v any) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	data, err := os.ReadFile(p)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("%w: %q", ErrNotFound, key)
		}
		return fmt.Errorf("cache: read %q: %w", key, err)
	}
	if err := json.Unmarshal(data, v); err != nil {
		return fmt.Errorf("cache: decode %q: %w", key, err)
	}
	return nil
}

// Has reports whether key exists.
func (s *Store) Has(key string) bool {
	p, err := s.path(key)
	if err != nil {
		return false
	}
	_, statErr := os.Stat(p)
	return statErr == nil
}

// Delete removes key; deleting a missing key is not an error.
func (s *Store) Delete(key string) error {
	p, err := s.path(key)
	if err != nil {
		return err
	}
	if err := os.Remove(p); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return fmt.Errorf("cache: delete %q: %w", key, err)
	}
	return nil
}

// Keys lists stored keys, sorted by filename order.
func (s *Store) Keys() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("cache: list: %w", err)
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".json") {
			out = append(out, strings.TrimSuffix(name, ".json"))
		}
	}
	return out, nil
}
