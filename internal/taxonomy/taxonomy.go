// Package taxonomy implements Chain-of-Layer (CoL) taxonomy induction: the
// hierarchy is built iteratively by prompting the language model for a root
// concept and then, layer by layer, for the immediate subcategories of each
// frontier node, with an optional SciBERT-style similarity filter that
// removes unlikely parent/child relationships. Every input term ends up in
// the hierarchy exactly once, per the CoL invariant.
package taxonomy

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/embed"
	"github.com/privacy-quagmire/quagmire/internal/graph"
	"github.com/privacy-quagmire/quagmire/internal/llm"
	"github.com/privacy-quagmire/quagmire/internal/nlp"
	"github.com/privacy-quagmire/quagmire/internal/obs"
)

// Builder constructs hierarchies via CoL prompting. Builds may run
// concurrently on a shared Builder: each call accumulates its counters
// privately and publishes them to Stats under an internal mutex when it
// finishes.
type Builder struct {
	// Client is the language model used for root and layer prompts.
	Client llm.Client
	// Filter, when non-nil, scores candidate parent/child pairs and drops
	// those below FilterThreshold (the paper's optional SciBERT filter).
	Filter *embed.Model
	// FilterThreshold is the minimum similarity for a filtered edge.
	FilterThreshold float64
	// MaxLayers bounds CoL iterations; default 6.
	MaxLayers int
	// Obs, when non-nil, receives induction metrics: CoL rounds, edges
	// rejected by the similarity filter, fallback attachments, LLM-call
	// latency, and per-build wall time labeled by hierarchy kind.
	Obs *obs.Registry

	// Stats from the last Build call to finish.
	Stats Stats

	statsMu sync.Mutex
}

// Stats reports effort and filtering counters for one Build.
type Stats struct {
	// Layers is the number of CoL iterations performed.
	Layers int
	// LLMCalls counts model invocations.
	LLMCalls int
	// Filtered counts parent/child pairs rejected by the similarity
	// filter.
	Filtered int
	// Fallback counts terms attached directly to the root because no
	// layer claimed them.
	Fallback int
}

// Build induces a hierarchy of the given kind ("data" or "entity") over the
// terms. Terms are canonicalized and deduplicated first.
func (b *Builder) Build(ctx context.Context, kind string, terms []string) (*graph.Hierarchy, error) {
	if b.Client == nil {
		return nil, fmt.Errorf("taxonomy: Builder.Client is nil")
	}
	var st Stats
	start := time.Now()
	defer func() {
		b.statsMu.Lock()
		b.Stats = st
		b.statsMu.Unlock()
		b.Obs.Histogram("quagmire_taxonomy_build_seconds", obs.TimeBuckets, "kind", kind).ObserveSince(start)
		b.Obs.Counter("quagmire_taxonomy_col_rounds_total").Add(uint64(st.Layers))
		b.Obs.Counter("quagmire_taxonomy_llm_calls_total").Add(uint64(st.LLMCalls))
		b.Obs.Counter("quagmire_taxonomy_edges_filtered_total").Add(uint64(st.Filtered))
		b.Obs.Counter("quagmire_taxonomy_fallback_total").Add(uint64(st.Fallback))
	}()
	maxLayers := b.MaxLayers
	if maxLayers <= 0 {
		maxLayers = 6
	}

	canon := map[string]bool{}
	var remaining []string
	for _, t := range terms {
		c := nlp.CanonicalTerm(t)
		if c == "" || canon[c] {
			continue
		}
		canon[c] = true
		remaining = append(remaining, c)
	}
	sort.Strings(remaining)

	root, err := b.root(ctx, &st, kind, remaining)
	if err != nil {
		return nil, err
	}
	h := graph.NewHierarchy(root)
	remaining = removeTerm(remaining, root)

	frontier := []string{root}
	for layer := 0; layer < maxLayers && len(remaining) > 0 && len(frontier) > 0; layer++ {
		st.Layers++
		children, err := b.layer(ctx, &st, kind, frontier, remaining)
		if err != nil {
			return nil, err
		}
		var nextFrontier []string
		progressed := false
		parents := make([]string, 0, len(children))
		for p := range children {
			parents = append(parents, p)
		}
		sort.Strings(parents)
		for _, parent := range parents {
			for _, child := range children[parent] {
				if h.Has(child) {
					continue
				}
				if b.rejectedByFilter(parent, child) {
					st.Filtered++
					continue
				}
				if err := h.Add(parent, child); err != nil {
					// The model proposed an inconsistent placement; skip
					// it and let the fallback handle the term.
					continue
				}
				progressed = true
				nextFrontier = append(nextFrontier, child)
				remaining = removeTerm(remaining, child)
			}
		}
		if !progressed {
			break
		}
		frontier = nextFrontier
	}
	// CoL invariant: every term appears exactly once. Unclaimed terms
	// attach to the root.
	for _, t := range remaining {
		if !h.Has(t) {
			if err := h.Add(root, t); err != nil {
				return nil, err
			}
			st.Fallback++
		}
	}
	if err := h.Validate(); err != nil {
		return nil, err
	}
	return h, nil
}

// rejectedByFilter applies the similarity filter to a candidate edge.
// Synthesized category parents always pass: the filter targets noisy
// term-to-term attachments, not abstract buckets.
func (b *Builder) rejectedByFilter(parent, child string) bool {
	if b.Filter == nil || b.FilterThreshold <= 0 {
		return false
	}
	if len(nlp.ContentWords(parent)) == 0 {
		return false
	}
	return b.Filter.Similarity(parent, child) < b.FilterThreshold
}

func (b *Builder) root(ctx context.Context, st *Stats, kind string, terms []string) (string, error) {
	st.LLMCalls++
	defer b.Obs.Histogram("quagmire_llm_call_seconds", obs.TimeBuckets, "phase", "taxonomy").ObserveSince(time.Now())
	resp, err := b.Client.Complete(ctx, llm.TaxonomyRootPrompt(kind, terms))
	if err != nil {
		return "", fmt.Errorf("taxonomy: root prompt: %w", err)
	}
	var out struct {
		Root string `json:"root"`
	}
	if err := json.Unmarshal([]byte(resp.Text), &out); err != nil || out.Root == "" {
		return "", fmt.Errorf("taxonomy: %w: %q", llm.ErrMalformedOutput, resp.Text)
	}
	return nlp.CanonicalTerm(out.Root), nil
}

func (b *Builder) layer(ctx context.Context, st *Stats, kind string, frontier, remaining []string) (map[string][]string, error) {
	st.LLMCalls++
	defer b.Obs.Histogram("quagmire_llm_call_seconds", obs.TimeBuckets, "phase", "taxonomy").ObserveSince(time.Now())
	resp, err := b.Client.Complete(ctx, llm.TaxonomyLayerPrompt(kind, frontier, remaining))
	if err != nil {
		return nil, fmt.Errorf("taxonomy: layer prompt: %w", err)
	}
	var out struct {
		Children map[string][]string `json:"children"`
	}
	if err := json.Unmarshal([]byte(resp.Text), &out); err != nil {
		return nil, fmt.Errorf("taxonomy: %w: %q", llm.ErrMalformedOutput, resp.Text)
	}
	return out.Children, nil
}

func removeTerm(terms []string, t string) []string {
	out := terms[:0]
	for _, x := range terms {
		if x != t {
			out = append(out, x)
		}
	}
	return out
}
