package taxonomy

import (
	"context"
	"errors"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/embed"
	"github.com/privacy-quagmire/quagmire/internal/llm"
)

var dataTerms = []string{
	"email", "phone number", "gps location", "cookie", "ip address",
	"profile image", "credit card information", "purchase", "username",
	"crash log", "phone number of contacts", "watch history",
}

func TestBuildDataHierarchy(t *testing.T) {
	b := &Builder{Client: llm.NewSim()}
	h, err := b.Build(context.Background(), "data", dataTerms)
	if err != nil {
		t.Fatal(err)
	}
	if h.Root != "data" {
		t.Errorf("root = %q", h.Root)
	}
	// Every input term appears exactly once.
	for _, term := range dataTerms {
		if !h.Has(term) {
			t.Errorf("term %q missing from hierarchy", term)
		}
	}
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
	// Semantic placements: email is under a category, not the root.
	if p, _ := h.Parent("email"); p == "data" {
		t.Errorf("email attached directly to root")
	}
	// Specialization: "phone number of contacts" should sit under
	// "phone number".
	if p, _ := h.Parent("phone number of contacts"); p != "phone number" {
		t.Errorf("parent(phone number of contacts) = %q", p)
	}
	// Subsumption inference works through the hierarchy.
	if !h.Subsumes("data", "email") {
		t.Error("root does not subsume email")
	}
	if b.Stats.LLMCalls == 0 || b.Stats.Layers == 0 {
		t.Errorf("stats not recorded: %+v", b.Stats)
	}
}

func TestBuildEntityHierarchy(t *testing.T) {
	b := &Builder{Client: llm.NewSim()}
	terms := []string{"user", "advertising partner", "service provider", "law enforcement agency", "payment processor", "contact"}
	h, err := b.Build(context.Background(), "entity", terms)
	if err != nil {
		t.Fatal(err)
	}
	if h.Root != "entity" {
		t.Errorf("root = %q", h.Root)
	}
	for _, term := range terms {
		if !h.Has(term) {
			t.Errorf("entity %q missing", term)
		}
	}
}

func TestBuildDeduplicates(t *testing.T) {
	b := &Builder{Client: llm.NewSim()}
	h, err := b.Build(context.Background(), "data", []string{"email", "Email", "emails", "email "})
	if err != nil {
		t.Fatal(err)
	}
	// All variants canonicalize to one term.
	count := 0
	for _, term := range h.Terms() {
		if term == "email" {
			count++
		}
	}
	if count != 1 {
		t.Errorf("email appears %d times", count)
	}
}

func TestBuildEmptyTerms(t *testing.T) {
	b := &Builder{Client: llm.NewSim()}
	h, err := b.Build(context.Background(), "data", nil)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 1 {
		t.Errorf("empty build len = %d", h.Len())
	}
}

func TestBuildFilter(t *testing.T) {
	// An absurdly high threshold rejects every term-to-term edge; terms
	// fall back to categories or the root but all still appear.
	b := &Builder{
		Client:          llm.NewSim(),
		Filter:          embed.NewModel("scibert-sim"),
		FilterThreshold: 0.999,
	}
	h, err := b.Build(context.Background(), "data", dataTerms)
	if err != nil {
		t.Fatal(err)
	}
	for _, term := range dataTerms {
		if !h.Has(term) {
			t.Errorf("filtered build lost %q", term)
		}
	}
	if b.Stats.Filtered == 0 {
		t.Error("filter rejected nothing at threshold 0.999")
	}
	// "phone number of contacts" can no longer attach under "phone
	// number" via the specialization edge if filtered... but it must
	// still exist somewhere.
	if err := h.Validate(); err != nil {
		t.Error(err)
	}
}

func TestBuildNilClient(t *testing.T) {
	b := &Builder{}
	if _, err := b.Build(context.Background(), "data", dataTerms); err == nil {
		t.Error("nil client should error")
	}
}

type malformedClient struct{}

func (malformedClient) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	return llm.Response{Text: "not json"}, nil
}

func TestBuildMalformedModelOutput(t *testing.T) {
	b := &Builder{Client: malformedClient{}}
	_, err := b.Build(context.Background(), "data", dataTerms)
	if !errors.Is(err, llm.ErrMalformedOutput) {
		t.Errorf("err = %v", err)
	}
}

type failingClient struct{ n int }

func (f *failingClient) Complete(ctx context.Context, req llm.Request) (llm.Response, error) {
	f.n++
	if f.n > 1 {
		return llm.Response{}, llm.ErrOverloaded
	}
	return llm.NewSim().Complete(ctx, req)
}

func TestBuildPropagatesClientErrors(t *testing.T) {
	b := &Builder{Client: &failingClient{}}
	_, err := b.Build(context.Background(), "data", dataTerms)
	if !errors.Is(err, llm.ErrOverloaded) {
		t.Errorf("err = %v", err)
	}
}

func TestBuildDeterministic(t *testing.T) {
	b := &Builder{Client: llm.NewSim()}
	h1, err := b.Build(context.Background(), "data", dataTerms)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := b.Build(context.Background(), "data", dataTerms)
	if err != nil {
		t.Fatal(err)
	}
	t1, t2 := h1.Terms(), h2.Terms()
	if len(t1) != len(t2) {
		t.Fatal("nondeterministic term count")
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("nondeterministic terms at %d: %q vs %q", i, t1[i], t2[i])
		}
		p1, _ := h1.Parent(t1[i])
		p2, _ := h2.Parent(t2[i])
		if p1 != p2 {
			t.Fatalf("nondeterministic parent of %q: %q vs %q", t1[i], p1, p2)
		}
	}
}

// Golden placements: the simulated CoL model puts domain terms under the
// expected categories.
func TestTaxonomyGoldenPlacements(t *testing.T) {
	b := &Builder{Client: llm.NewSim()}
	h, err := b.Build(context.Background(), "data", []string{
		"email", "gps location", "credit card number", "faceprint",
		"cookie", "watch history", "photo",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"email":              "contact information",
		"gps location":       "location data",
		"credit card number": "financial data",
		"faceprint":          "biometric data",
		"cookie":             "technical data",
		"watch history":      "usage data",
		"photo":              "content data",
	}
	for term, parent := range want {
		if got, _ := h.Parent(term); got != parent {
			t.Errorf("parent(%s) = %q, want %q", term, got, parent)
		}
	}
}
