// Package segment implements policy segmentation and content-hash tracking:
// policies are split into individual statements, each identified by a hash
// of its content, enabling the diff-based incremental re-extraction the
// paper describes ("only modified segments require re-extraction").
package segment

import (
	"crypto/sha256"
	"encoding/hex"
	"strings"

	"github.com/privacy-quagmire/quagmire/internal/nlp"
)

// Segment is one policy statement.
type Segment struct {
	// ID is the hex SHA-256 of the normalized statement text; stable
	// across policy versions when the statement is unchanged.
	ID string `json:"id"`
	// Text is the statement, whitespace-normalized.
	Text string `json:"text"`
	// Index is the statement's position in the policy.
	Index int `json:"index"`
	// Section is the most recent heading above the statement, when the
	// policy uses markdown-style "#" headings.
	Section string `json:"section,omitempty"`
}

// Hash returns the content hash used for segment identity.
func Hash(text string) string {
	norm := strings.Join(strings.Fields(text), " ")
	sum := sha256.Sum256([]byte(norm))
	return hex.EncodeToString(sum[:])
}

// Split segments a policy into statements. Markdown-style headings ("#",
// "##", ...) set the section context and are not themselves segments;
// bullet markers are stripped; blank lines separate paragraphs which are
// then sentence-split.
func Split(policy string) []Segment {
	var segs []Segment
	section := ""
	idx := 0
	for _, rawLine := range strings.Split(policy, "\n") {
		line := strings.TrimSpace(rawLine)
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			section = strings.TrimSpace(strings.TrimLeft(line, "# "))
			continue
		}
		line = strings.TrimPrefix(line, "- ")
		line = strings.TrimPrefix(line, "* ")
		line = strings.TrimPrefix(line, "• ")
		for _, sentence := range nlp.SplitSentences(line) {
			sentence = strings.TrimSpace(sentence)
			if sentence == "" {
				continue
			}
			segs = append(segs, Segment{
				ID:      Hash(sentence),
				Text:    strings.Join(strings.Fields(sentence), " "),
				Index:   idx,
				Section: section,
			})
			idx++
		}
	}
	return segs
}

// Diff describes the change between two policy versions at segment
// granularity.
type Diff struct {
	// Added lists segments present only in the new version.
	Added []Segment
	// Removed lists segments present only in the old version.
	Removed []Segment
	// Kept lists segments present in both (by content hash).
	Kept []Segment
}

// Compare diffs two segment lists by content hash. Reordered but unchanged
// statements count as kept.
func Compare(old, new []Segment) Diff {
	oldByID := make(map[string]Segment, len(old))
	for _, s := range old {
		oldByID[s.ID] = s
	}
	newIDs := make(map[string]bool, len(new))
	var d Diff
	for _, s := range new {
		newIDs[s.ID] = true
		if _, ok := oldByID[s.ID]; ok {
			d.Kept = append(d.Kept, s)
		} else {
			d.Added = append(d.Added, s)
		}
	}
	for _, s := range old {
		if !newIDs[s.ID] {
			d.Removed = append(d.Removed, s)
		}
	}
	return d
}

// ChangedFraction returns |added| / |new| — the share of the new version
// needing re-extraction.
func (d Diff) ChangedFraction() float64 {
	total := len(d.Added) + len(d.Kept)
	if total == 0 {
		return 0
	}
	return float64(len(d.Added)) / float64(total)
}
