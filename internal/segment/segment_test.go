package segment

import (
	"strings"
	"testing"
	"testing/quick"
)

const samplePolicy = `# TikTak Privacy Policy

## Information We Collect

When you create an account, you may provide your email. We collect device information automatically.

- We collect your IP address.
- We collect crash logs.

## How We Share Information

We share data with service providers. We never sell your personal information.`

func TestSplitBasic(t *testing.T) {
	segs := Split(samplePolicy)
	if len(segs) != 6 {
		for _, s := range segs {
			t.Logf("seg: %q (section %q)", s.Text, s.Section)
		}
		t.Fatalf("got %d segments, want 6", len(segs))
	}
	if segs[0].Section != "Information We Collect" {
		t.Errorf("section = %q", segs[0].Section)
	}
	if segs[4].Section != "How We Share Information" {
		t.Errorf("section = %q", segs[4].Section)
	}
	for i, s := range segs {
		if s.Index != i {
			t.Errorf("index %d = %d", i, s.Index)
		}
		if s.ID == "" || len(s.ID) != 64 {
			t.Errorf("bad ID %q", s.ID)
		}
	}
}

func TestSplitStripsBullets(t *testing.T) {
	segs := Split("- We collect cookies.")
	if len(segs) != 1 || strings.HasPrefix(segs[0].Text, "-") {
		t.Errorf("bullet not stripped: %+v", segs)
	}
}

func TestSplitEmpty(t *testing.T) {
	if segs := Split(""); len(segs) != 0 {
		t.Errorf("empty policy: %v", segs)
	}
	if segs := Split("# Heading Only\n\n## Another"); len(segs) != 0 {
		t.Errorf("headings only: %v", segs)
	}
}

func TestHashStability(t *testing.T) {
	a := Hash("We collect your email.")
	b := Hash("We  collect \t your email.") // whitespace-insensitive
	if a != b {
		t.Error("hash sensitive to whitespace")
	}
	if a == Hash("We collect your phone.") {
		t.Error("different text same hash")
	}
}

func TestCompareIdentical(t *testing.T) {
	segs := Split(samplePolicy)
	d := Compare(segs, segs)
	if len(d.Added) != 0 || len(d.Removed) != 0 || len(d.Kept) != len(segs) {
		t.Errorf("identical diff: +%d -%d =%d", len(d.Added), len(d.Removed), len(d.Kept))
	}
	if d.ChangedFraction() != 0 {
		t.Errorf("changed fraction = %v", d.ChangedFraction())
	}
}

func TestCompareEdit(t *testing.T) {
	old := Split(samplePolicy)
	edited := strings.Replace(samplePolicy, "We collect your IP address.", "We collect your IP address and MAC address.", 1)
	new := Split(edited)
	d := Compare(old, new)
	if len(d.Added) != 1 || len(d.Removed) != 1 {
		t.Fatalf("edit diff: +%d -%d", len(d.Added), len(d.Removed))
	}
	if !strings.Contains(d.Added[0].Text, "MAC address") {
		t.Errorf("added = %q", d.Added[0].Text)
	}
	if got := d.ChangedFraction(); got <= 0 || got >= 1 {
		t.Errorf("changed fraction = %v", got)
	}
}

func TestCompareReorderIsKept(t *testing.T) {
	old := Split("A is first. B is second.")
	new := Split("B is second. A is first.")
	d := Compare(old, new)
	if len(d.Added) != 0 || len(d.Removed) != 0 {
		t.Errorf("reorder should be all-kept: %+v", d)
	}
	// Pure reordering triggers zero re-extraction.
	if d.ChangedFraction() != 0 {
		t.Errorf("reorder fraction = %v, want 0", d.ChangedFraction())
	}
}

func TestCompareEmptySides(t *testing.T) {
	segs := Split("We collect cookies.")
	d := Compare(nil, segs)
	if len(d.Added) != 1 || len(d.Kept) != 0 {
		t.Errorf("from-nothing diff: %+v", d)
	}
	// A brand-new policy is 100% changed: everything re-extracts.
	if d.ChangedFraction() != 1 {
		t.Errorf("from-nothing fraction = %v, want 1", d.ChangedFraction())
	}
	d = Compare(segs, nil)
	if len(d.Removed) != 1 {
		t.Errorf("to-nothing diff: %+v", d)
	}
	if d.ChangedFraction() != 0 {
		t.Errorf("empty new version fraction = %v", d.ChangedFraction())
	}
	d = Compare(nil, nil)
	if len(d.Added)+len(d.Removed)+len(d.Kept) != 0 || d.ChangedFraction() != 0 {
		t.Errorf("empty-both diff: %+v fraction %v", d, d.ChangedFraction())
	}
}

// Duplicate statements share one content hash. Both duplicate instances in
// the new version count as kept (each matches the old ID), and dropping
// one of two duplicates removes nothing — the surviving instance still
// covers the hash. This pins the identity semantics incremental
// re-extraction depends on: a segment is its content, not its position or
// multiplicity.
func TestCompareDuplicateText(t *testing.T) {
	one := Split("We collect cookies.")
	two := Split("We collect cookies.\n\nWe collect cookies.")
	if len(two) != 2 || two[0].ID != two[1].ID {
		t.Fatalf("duplicate split: %+v", two)
	}
	if two[0].Index == two[1].Index {
		t.Errorf("duplicates share an index: %+v", two)
	}

	d := Compare(one, two)
	if len(d.Kept) != 2 || len(d.Added) != 0 || len(d.Removed) != 0 {
		t.Errorf("duplicating a statement: +%d -%d =%d", len(d.Added), len(d.Removed), len(d.Kept))
	}
	if d.ChangedFraction() != 0 {
		t.Errorf("duplicate fraction = %v, want 0", d.ChangedFraction())
	}

	d = Compare(two, one)
	if len(d.Kept) != 1 || len(d.Added) != 0 || len(d.Removed) != 0 {
		t.Errorf("deduplicating a statement: +%d -%d =%d", len(d.Added), len(d.Removed), len(d.Kept))
	}
}

// ChangedFraction is |added| / (|added| + |kept|), pinned exactly.
func TestChangedFractionExact(t *testing.T) {
	old := Split("A stays one. B stays two. C stays three.")
	new := Split("A stays one. B stays two. C stays three. D is new here.")
	d := Compare(old, new)
	if len(d.Added) != 1 || len(d.Kept) != 3 {
		t.Fatalf("diff: +%d =%d", len(d.Added), len(d.Kept))
	}
	if got := d.ChangedFraction(); got != 0.25 {
		t.Errorf("fraction = %v, want 0.25", got)
	}
}

// Property: every segment's ID matches its text hash, and Compare(a,b)
// partitions b into Added+Kept.
func TestSegmentProperties(t *testing.T) {
	f := func(a, b string) bool {
		sa, sb := Split(a), Split(b)
		for _, s := range sb {
			if s.ID != Hash(s.Text) {
				return false
			}
		}
		d := Compare(sa, sb)
		return len(d.Added)+len(d.Kept) == len(sb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
