package embed

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEmbedDeterministic(t *testing.T) {
	m := NewModel("text-embedding-sim")
	a := m.Embed("email address")
	b := m.Embed("email address")
	if a != b {
		t.Error("embedding not deterministic")
	}
}

func TestEmbedNormalized(t *testing.T) {
	m := NewModel("text-embedding-sim")
	v := m.Embed("we share data with service providers")
	var norm float64
	for _, x := range v {
		norm += float64(x) * float64(x)
	}
	if math.Abs(norm-1) > 1e-5 {
		t.Errorf("norm = %v", norm)
	}
}

func TestEmbedEmptyZero(t *testing.T) {
	m := NewModel("text-embedding-sim")
	v := m.Embed("")
	for _, x := range v {
		if x != 0 {
			t.Fatal("empty text should embed to zero vector")
		}
	}
}

func TestSimilarityOrdering(t *testing.T) {
	m := NewModel("text-embedding-sim")
	// The paper's §4.2 claim: near-identical terms score near 1; related
	// terms beat unrelated terms.
	same := m.Similarity("email address", "email addresses")
	related := m.Similarity("email address", "email")
	unrelated := m.Similarity("email address", "gps location")
	if same < 0.9 {
		t.Errorf("near-identical similarity = %v, want >= 0.9", same)
	}
	if related <= unrelated {
		t.Errorf("related (%v) should beat unrelated (%v)", related, unrelated)
	}
	if s := m.Similarity("email address", "email address"); math.Abs(s-1) > 1e-5 {
		t.Errorf("self similarity = %v", s)
	}
}

func TestSimilarityParaphrase(t *testing.T) {
	m := NewModel("text-embedding-sim")
	a := m.Similarity("location data", "location information")
	b := m.Similarity("location data", "credit card number")
	if a <= b {
		t.Errorf("location data ~ location information (%v) should beat credit card (%v)", a, b)
	}
}

func TestModelNamespacesDiffer(t *testing.T) {
	a := NewModel("text-embedding-sim").Embed("biometric data")
	b := NewModel("scibert-sim").Embed("biometric data")
	if a == b {
		t.Error("different model namespaces produced identical vectors")
	}
}

func TestIndexSearch(t *testing.T) {
	m := NewModel("text-embedding-sim")
	ix := NewIndex(m)
	terms := []string{"email", "phone number", "gps location", "profile image", "credit card"}
	for _, term := range terms {
		ix.Add(term, term)
	}
	if ix.Len() != len(terms) {
		t.Fatalf("Len = %d", ix.Len())
	}
	got := ix.Search("email address", 2)
	if len(got) != 2 {
		t.Fatalf("Search returned %d", len(got))
	}
	if got[0].Key != "email" {
		t.Errorf("top match = %q (score %v), want email", got[0].Key, got[0].Score)
	}
}

func TestIndexReAdd(t *testing.T) {
	m := NewModel("text-embedding-sim")
	ix := NewIndex(m)
	ix.Add("k", "email")
	ix.Add("k", "phone")
	if ix.Len() != 1 {
		t.Fatalf("re-add duplicated key: %d", ix.Len())
	}
	got := ix.Search("phone", 1)
	if got[0].Score < 0.9 {
		t.Errorf("re-added vector not updated: %v", got[0])
	}
}

func TestIndexEdgeCases(t *testing.T) {
	ix := NewIndex(NewModel("m"))
	if got := ix.Search("x", 3); got != nil {
		t.Errorf("empty index search = %v", got)
	}
	ix.Add("a", "alpha")
	if got := ix.Search("alpha", 0); got != nil {
		t.Errorf("k=0 search = %v", got)
	}
	if got := ix.Search("alpha", 10); len(got) != 1 {
		t.Errorf("k>len search = %v", got)
	}
}

func TestSearchAbove(t *testing.T) {
	m := NewModel("text-embedding-sim")
	ix := NewIndex(m)
	for _, term := range []string{"email address", "email", "advertising partner"} {
		ix.Add(term, term)
	}
	got := ix.SearchAbove("email address", 0.5)
	for _, g := range got {
		if g.Score < 0.5 {
			t.Errorf("SearchAbove returned %v below threshold", g)
		}
	}
	if len(got) == 0 || got[0].Key != "email address" {
		t.Errorf("SearchAbove top = %v", got)
	}
}

func TestSearchDeterministicTies(t *testing.T) {
	m := NewModel("text-embedding-sim")
	ix := NewIndex(m)
	ix.Add("b", "zzz")
	ix.Add("a", "zzz")
	got := ix.Search("zzz", 2)
	if got[0].Key != "a" || got[1].Key != "b" {
		t.Errorf("tie break not by key: %v", got)
	}
}

// Property: cosine similarity is symmetric and bounded.
func TestCosineProperties(t *testing.T) {
	m := NewModel("text-embedding-sim")
	f := func(a, b string) bool {
		s1 := m.Similarity(a, b)
		s2 := m.Similarity(b, a)
		return math.Abs(s1-s2) < 1e-9 && s1 <= 1.0001 && s1 >= -1.0001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEmbed(b *testing.B) {
	m := NewModel("text-embedding-sim")
	for i := 0; i < b.N; i++ {
		m.Embed("we may share your personal information with trusted service providers for legitimate business purposes")
	}
}

func BenchmarkSearch1000(b *testing.B) {
	m := NewModel("text-embedding-sim")
	ix := NewIndex(m)
	for i := 0; i < 1000; i++ {
		ix.Add(string(rune('a'+i%26))+string(rune('0'+i%10)), "term "+string(rune('a'+i%26)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.Search("term q", 10)
	}
}
