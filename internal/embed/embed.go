// Package embed provides the deterministic text-embedding substrate that
// stands in for OpenAI's text-embedding-3-large and SciBERT in the paper's
// pipeline. Vectors are built from hashed word and character-n-gram
// features and L2-normalized, so lexically and morphologically similar
// terms ("email address" / "email addresses" / "email") land close in
// cosine space — the property the pipeline actually depends on for
// vocabulary translation and taxonomy-edge filtering.
package embed

import (
	"hash/fnv"
	"math"
	"sort"
	"strings"

	"github.com/privacy-quagmire/quagmire/internal/nlp"
)

// Dim is the embedding dimensionality.
const Dim = 256

// Vector is an embedding vector of Dim float32 components.
type Vector [Dim]float32

// Model produces embeddings. Namespacing lets distinct "models" (the
// general text model and the SciBERT-style scientific model) produce
// different spaces deterministically.
type Model struct {
	// Name namespaces the hash features; different names give different
	// (but internally consistent) spaces.
	Name string
}

// NewModel returns a model with the given namespace name.
func NewModel(name string) *Model { return &Model{Name: name} }

func (m *Model) feature(tag, s string) (int, float32) {
	h := fnv.New64a()
	h.Write([]byte(m.Name))
	h.Write([]byte{0})
	h.Write([]byte(tag))
	h.Write([]byte{0})
	h.Write([]byte(s))
	v := h.Sum64()
	idx := int(v % Dim)
	// Deterministic sign from a high bit keeps features roughly centered.
	sign := float32(1)
	if v&(1<<63) != 0 {
		sign = -1
	}
	return idx, sign
}

// Embed returns the L2-normalized embedding of text. The zero vector is
// returned only for texts with no extractable features.
func (m *Model) Embed(text string) Vector {
	var v Vector
	add := func(tag, s string, w float32) {
		idx, sign := m.feature(tag, s)
		v[idx] += sign * w
	}
	words := nlp.Words(text)
	content := nlp.ContentWords(text)
	stems := make([]string, len(words))
	for i, w := range words {
		stems[i] = stem(w)
	}
	// Stemmed features dominate so that morphological variants ("email
	// addresses" vs "email address") land nearly on top of each other;
	// raw surface forms contribute a small residual.
	for i, w := range words {
		add("w", w, 0.5)
		add("stem", stems[i], 3)
	}
	for _, w := range content {
		add("cw", w, 0.5)
		add("cstem", stem(w), 4)
	}
	// Stemmed bigrams capture phrase structure.
	for i := 0; i+1 < len(stems); i++ {
		add("b", stems[i]+" "+stems[i+1], 2.5)
	}
	// Character trigrams over the stemmed text catch morphology and typos.
	joined := strings.Join(stems, " ")
	for i := 0; i+3 <= len(joined); i++ {
		add("c3", joined[i:i+3], 0.4)
	}
	norm := float32(0)
	for _, x := range v {
		norm += x * x
	}
	if norm == 0 {
		return v
	}
	inv := float32(1 / math.Sqrt(float64(norm)))
	for i := range v {
		v[i] *= inv
	}
	return v
}

// stem crudely strips plural/inflection suffixes so "addresses" and
// "address" share features.
func stem(w string) string {
	w = nlp.Singular(w)
	for _, suf := range []string{"ing", "ed"} {
		if strings.HasSuffix(w, suf) && len(w) > len(suf)+2 {
			return w[:len(w)-len(suf)]
		}
	}
	return w
}

// Cosine returns the cosine similarity of two vectors in [-1, 1]; for
// normalized vectors this is their dot product.
func Cosine(a, b Vector) float64 {
	var dot float64
	for i := range a {
		dot += float64(a[i]) * float64(b[i])
	}
	return dot
}

// Similarity is a convenience: cosine similarity of the embeddings of two
// texts under the model.
func (m *Model) Similarity(a, b string) float64 {
	return Cosine(m.Embed(a), m.Embed(b))
}

// Match is a scored search hit.
type Match struct {
	// Key is the indexed item's identifier.
	Key string
	// Score is the cosine similarity to the query.
	Score float64
}

// Index is an exact top-k nearest-neighbour index over embedded items.
type Index struct {
	model *Model
	keys  []string
	vecs  []Vector
	byKey map[string]int
}

// NewIndex returns an empty index over the model's space.
func NewIndex(m *Model) *Index {
	return &Index{model: m, byKey: map[string]int{}}
}

// Add embeds text and indexes it under key. Re-adding a key replaces its
// vector.
func (ix *Index) Add(key, text string) {
	v := ix.model.Embed(text)
	if i, ok := ix.byKey[key]; ok {
		ix.vecs[i] = v
		return
	}
	ix.byKey[key] = len(ix.keys)
	ix.keys = append(ix.keys, key)
	ix.vecs = append(ix.vecs, v)
}

// Len returns the number of indexed items.
func (ix *Index) Len() int { return len(ix.keys) }

// Search returns the top-k most similar indexed items to the query text,
// sorted by descending score (ties broken by key for determinism).
func (ix *Index) Search(query string, k int) []Match {
	if k <= 0 || len(ix.keys) == 0 {
		return nil
	}
	qv := ix.model.Embed(query)
	matches := make([]Match, len(ix.keys))
	for i, v := range ix.vecs {
		matches[i] = Match{Key: ix.keys[i], Score: Cosine(qv, v)}
	}
	sort.Slice(matches, func(i, j int) bool {
		if matches[i].Score != matches[j].Score {
			return matches[i].Score > matches[j].Score
		}
		return matches[i].Key < matches[j].Key
	})
	if k > len(matches) {
		k = len(matches)
	}
	return matches[:k]
}

// SearchAbove returns all matches with score >= threshold, sorted by
// descending score.
func (ix *Index) SearchAbove(query string, threshold float64) []Match {
	all := ix.Search(query, ix.Len())
	cut := sort.Search(len(all), func(i int) bool { return all[i].Score < threshold })
	return all[:cut]
}
