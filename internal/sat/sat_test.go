package sat

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestTrivial(t *testing.T) {
	s := New()
	s.AddClause(1)
	if got := s.Solve(); got != Sat {
		t.Fatalf("unit clause: %v", got)
	}
	if !s.Value(1) {
		t.Error("x1 should be true")
	}
}

func TestContradiction(t *testing.T) {
	s := New()
	s.AddClause(1)
	s.AddClause(-1)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("x ∧ ¬x: %v", got)
	}
}

func TestEmptyClause(t *testing.T) {
	s := New()
	s.AddClause()
	if got := s.Solve(); got != Unsat {
		t.Fatalf("empty clause: %v", got)
	}
}

func TestNoClauses(t *testing.T) {
	if got := New().Solve(); got != Sat {
		t.Fatalf("empty instance: %v", got)
	}
}

func TestTautologyIgnored(t *testing.T) {
	s := New()
	s.AddClause(1, -1)
	if got := s.Solve(); got != Sat {
		t.Fatalf("tautology: %v", got)
	}
}

func TestImplicationChain(t *testing.T) {
	s := New()
	// 1 -> 2 -> 3 -> 4, with 1 asserted and ¬4: unsat.
	s.AddClause(-1, 2)
	s.AddClause(-2, 3)
	s.AddClause(-3, 4)
	s.AddClause(1)
	s.AddClause(-4)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("chain: %v", got)
	}
}

func TestModelSatisfiesClauses(t *testing.T) {
	s := New()
	clauses := [][]Lit{{1, 2}, {-1, 3}, {-2, -3}, {2, 3}}
	for _, c := range clauses {
		s.AddClause(c...)
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("solve: %v", got)
	}
	m := s.Model()
	for _, c := range clauses {
		ok := false
		for _, l := range c {
			if m[l.Var()] == l.Sign() {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("model %v violates clause %v", m, c)
		}
	}
}

// pigeonhole(n): n+1 pigeons in n holes — classically unsat and requires
// real conflict analysis.
func pigeonhole(n int) *Solver {
	s := New()
	v := func(p, h int) Lit { return Lit(p*n + h + 1) }
	for p := 0; p <= n; p++ {
		var c []Lit
		for h := 0; h < n; h++ {
			c = append(c, v(p, h))
		}
		s.AddClause(c...)
	}
	for h := 0; h < n; h++ {
		for p1 := 0; p1 <= n; p1++ {
			for p2 := p1 + 1; p2 <= n; p2++ {
				s.AddClause(v(p1, h).Neg(), v(p2, h).Neg())
			}
		}
	}
	return s
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 5; n++ {
		s := pigeonhole(n)
		if got := s.Solve(); got != Unsat {
			t.Fatalf("PHP(%d): %v", n, got)
		}
	}
}

func TestPigeonholeBudget(t *testing.T) {
	s := pigeonhole(8)
	s.Budget = 1000
	if got := s.Solve(); got != Unknown {
		t.Fatalf("budgeted PHP(8) should be Unknown, got %v (steps may be too generous)", got)
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	s.AddClause(-1, 2) // 1 -> 2
	if got := s.Solve(1, -2); got != Unsat {
		t.Fatalf("assume 1,¬2: %v", got)
	}
	if got := s.Solve(1); got != Sat {
		t.Fatalf("assume 1: %v", got)
	}
	if !s.Value(2) {
		t.Error("model under assumption 1 must set 2")
	}
	// Solver stays reusable: no permanent effect of assumptions.
	if got := s.Solve(-2); got != Sat {
		t.Fatalf("assume ¬2 after previous calls: %v", got)
	}
	if s.Value(1) {
		t.Error("model under ¬2 must set ¬1")
	}
}

func TestGraphColoring(t *testing.T) {
	// Triangle 3-colorable, not 2-colorable.
	color := func(k int) Status {
		s := New()
		v := func(node, c int) Lit { return Lit(node*k + c + 1) }
		for node := 0; node < 3; node++ {
			var cl []Lit
			for c := 0; c < k; c++ {
				cl = append(cl, v(node, c))
			}
			s.AddClause(cl...)
			for c1 := 0; c1 < k; c1++ {
				for c2 := c1 + 1; c2 < k; c2++ {
					s.AddClause(v(node, c1).Neg(), v(node, c2).Neg())
				}
			}
		}
		edges := [][2]int{{0, 1}, {1, 2}, {0, 2}}
		for _, e := range edges {
			for c := 0; c < k; c++ {
				s.AddClause(v(e[0], c).Neg(), v(e[1], c).Neg())
			}
		}
		return s.Solve()
	}
	if color(2) != Unsat {
		t.Error("triangle should not be 2-colorable")
	}
	if color(3) != Sat {
		t.Error("triangle should be 3-colorable")
	}
}

// naive evaluates clauses by brute force over up to 20 vars.
func bruteForce(nVars int, clauses [][]Lit) Status {
	for m := 0; m < 1<<uint(nVars); m++ {
		ok := true
		for _, c := range clauses {
			cv := false
			for _, l := range c {
				bit := m>>(l.Var()-1)&1 == 1
				if bit == l.Sign() {
					cv = true
					break
				}
			}
			if !cv {
				ok = false
				break
			}
		}
		if ok {
			return Sat
		}
	}
	return Unsat
}

// Property: CDCL agrees with brute force on random small instances.
func TestRandomAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	for iter := 0; iter < 400; iter++ {
		nVars := 3 + r.Intn(8)
		nClauses := 1 + r.Intn(30)
		var clauses [][]Lit
		s := New()
		for i := 0; i < nClauses; i++ {
			width := 1 + r.Intn(3)
			var c []Lit
			for j := 0; j < width; j++ {
				l := Lit(1 + r.Intn(nVars))
				if r.Intn(2) == 0 {
					l = l.Neg()
				}
				c = append(c, l)
			}
			clauses = append(clauses, c)
			s.AddClause(c...)
		}
		want := bruteForce(nVars, clauses)
		got := s.Solve()
		if got != want {
			t.Fatalf("iter %d: solver=%v brute=%v clauses=%v", iter, got, want, clauses)
		}
		if got == Sat {
			m := s.Model()
			for _, c := range clauses {
				ok := false
				for _, l := range c {
					if m[l.Var()] == l.Sign() {
						ok = true
					}
				}
				if !ok {
					t.Fatalf("iter %d: model violates %v", iter, c)
				}
			}
		}
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	src := `c example
p cnf 3 2
1 -2 0
2 3 0
`
	s, err := ParseDIMACS(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Solve(); got != Sat {
		t.Fatalf("solve: %v", got)
	}
	var buf bytes.Buffer
	if err := s.WriteDIMACS(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := ParseDIMACS(&buf)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, buf.String())
	}
	if got := s2.Solve(); got != Sat {
		t.Fatalf("reparsed solve: %v", got)
	}
}

func TestDIMACSErrors(t *testing.T) {
	for _, src := range []string{
		"p cnf x 2\n1 0\n2 0\n",
		"p cnf 2 5\n1 0\n",
		"1 a 0\n",
	} {
		if _, err := ParseDIMACS(strings.NewReader(src)); err == nil {
			t.Errorf("ParseDIMACS(%q) should fail", src)
		}
	}
}

func TestStatsAccumulate(t *testing.T) {
	s := pigeonhole(4)
	s.Solve()
	st := s.Stats()
	if st.Conflicts == 0 || st.Propagations == 0 {
		t.Errorf("stats look empty: %+v", st)
	}
	if s.NumClauses() == 0 {
		t.Error("clause count zero")
	}
}

func TestStatusString(t *testing.T) {
	if Sat.String() != "sat" || Unsat.String() != "unsat" || Unknown.String() != "unknown" {
		t.Error("Status.String broken")
	}
}

func TestLuby(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Errorf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func BenchmarkPigeonhole6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := pigeonhole(6)
		if s.Solve() != Unsat {
			b.Fatal("wrong answer")
		}
	}
}

func BenchmarkRandom3SAT(b *testing.B) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < b.N; i++ {
		s := New()
		nVars := 60
		for c := 0; c < 250; c++ {
			var cl []Lit
			for j := 0; j < 3; j++ {
				l := Lit(1 + r.Intn(nVars))
				if r.Intn(2) == 0 {
					l = l.Neg()
				}
				cl = append(cl, l)
			}
			s.AddClause(cl...)
		}
		s.Solve()
	}
}

func ExampleSolver() {
	s := New()
	s.AddClause(1, 2) // x1 ∨ x2
	s.AddClause(-1)   // ¬x1
	fmt.Println(s.Solve(), s.Value(2))
	// Output: sat true
}

func TestReduceDBKeepsCorrectness(t *testing.T) {
	// An aggressive GC threshold forces reduceDB during a hard unsat
	// instance; the answer must not change.
	s := pigeonhole(6)
	s.MaxLearned = 50
	if got := s.Solve(); got != Unsat {
		t.Fatalf("PHP(6) with GC = %v", got)
	}
}

func TestReduceDBOnRandomInstances(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	for iter := 0; iter < 150; iter++ {
		nVars := 3 + r.Intn(8)
		nClauses := 1 + r.Intn(30)
		var clauses [][]Lit
		s := New()
		s.MaxLearned = 5
		for i := 0; i < nClauses; i++ {
			width := 1 + r.Intn(3)
			var c []Lit
			for j := 0; j < width; j++ {
				l := Lit(1 + r.Intn(nVars))
				if r.Intn(2) == 0 {
					l = l.Neg()
				}
				c = append(c, l)
			}
			clauses = append(clauses, c)
			s.AddClause(c...)
		}
		want := bruteForce(nVars, clauses)
		if got := s.Solve(); got != want {
			t.Fatalf("iter %d with GC: solver=%v brute=%v", iter, got, want)
		}
	}
}

// TestIncrementalAddAfterSolve pins the incremental contract: AddClause is
// legal after Solve, learned clauses survive, and later calls see the new
// constraints.
func TestIncrementalAddAfterSolve(t *testing.T) {
	s := New()
	s.AddClause(1, 2)
	s.AddClause(-1, 3)
	if got := s.Solve(); got != Sat {
		t.Fatalf("initial: %v", got)
	}
	s.AddClause(-3) // forces ¬1 via -1∨3, hence 2
	if got := s.Solve(); got != Sat {
		t.Fatalf("after ¬3: %v", got)
	}
	if s.Value(3) || s.Value(1) || !s.Value(2) {
		t.Fatalf("model after ¬3: 1=%v 2=%v 3=%v, want ¬1 2 ¬3", s.Value(1), s.Value(2), s.Value(3))
	}
	s.AddClause(-2)
	if got := s.Solve(); got != Unsat {
		t.Fatalf("after ¬2: %v", got)
	}
	// An Unsat verdict from permanent clauses is final.
	if got := s.Solve(1); got != Unsat {
		t.Fatalf("unsat core must stay unsat under assumptions: %v", got)
	}
}

// TestIncrementalAgainstBruteForce interleaves clause additions and
// assumption-based re-solves on one long-lived solver and cross-checks every
// verdict against brute force over the clauses added so far (plus the
// assumptions as pseudo-units).
func TestIncrementalAgainstBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(4242))
	for iter := 0; iter < 120; iter++ {
		nVars := 3 + r.Intn(7)
		s := New()
		var clauses [][]Lit
		dead := false
		for step := 0; step < 6; step++ {
			for k := 1 + r.Intn(5); k > 0; k-- {
				width := 1 + r.Intn(3)
				var c []Lit
				for j := 0; j < width; j++ {
					l := Lit(1 + r.Intn(nVars))
					if r.Intn(2) == 0 {
						l = l.Neg()
					}
					c = append(c, l)
				}
				clauses = append(clauses, c)
				s.AddClause(c...)
			}
			var assume []Lit
			for j := 1 + r.Intn(2); j > 0; j-- {
				l := Lit(1 + r.Intn(nVars))
				if r.Intn(2) == 0 {
					l = l.Neg()
				}
				assume = append(assume, l)
			}
			withAssume := make([][]Lit, len(clauses), len(clauses)+len(assume))
			copy(withAssume, clauses)
			for _, l := range assume {
				withAssume = append(withAssume, []Lit{l})
			}
			want := bruteForce(nVars, withAssume)
			if dead {
				want = Unsat // permanent clauses already contradictory
			}
			got := s.Solve(assume...)
			if got != want {
				t.Fatalf("iter %d step %d: solver=%v brute=%v clauses=%v assume=%v",
					iter, step, got, want, clauses, assume)
			}
			if bruteForce(nVars, clauses) == Unsat {
				dead = true
			}
		}
	}
}
