// Package sat implements a CDCL (conflict-driven clause learning) boolean
// satisfiability solver: two-watched-literal propagation, first-UIP conflict
// analysis, VSIDS-style activity ordering, phase saving, Luby restarts,
// solving under assumptions, and deterministic resource budgets.
//
// It is the boolean core of the internal/smt solver, standing in for the
// SAT engines inside CVC5/Z3 that the paper uses.
package sat

import (
	"errors"
	"fmt"
	"sort"
)

// Lit is a literal: variables are numbered from 1; a positive Lit v asserts
// variable v, a negative Lit -v asserts its negation. 0 is invalid.
type Lit int

// Neg returns the negation of the literal.
func (l Lit) Neg() Lit { return -l }

// Var returns the literal's variable index (always positive).
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Sign reports whether the literal is positive.
func (l Lit) Sign() bool { return l > 0 }

// String renders the literal as in DIMACS.
func (l Lit) String() string { return fmt.Sprintf("%d", int(l)) }

// Status is the outcome of a Solve call.
type Status int

// Solve outcomes.
const (
	// Unknown means the resource budget was exhausted before a decision.
	Unknown Status = iota
	// Sat means a satisfying assignment was found.
	Sat
	// Unsat means the formula is unsatisfiable under the assumptions.
	Unsat
)

// String returns "sat", "unsat" or "unknown".
func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// ErrBudget is returned (wrapped in Unknown status) when the step budget is
// exhausted.
var ErrBudget = errors.New("sat: resource budget exhausted")

// Stats reports solver effort counters.
type Stats struct {
	// Decisions counts branching decisions.
	Decisions int64
	// Propagations counts unit propagations.
	Propagations int64
	// Conflicts counts conflicts analyzed.
	Conflicts int64
	// Learned counts clauses learned.
	Learned int64
	// Restarts counts restarts performed.
	Restarts int64
}

const (
	lUndef int8 = 0
	lTrue  int8 = 1
	lFalse int8 = -1
)

type clause struct {
	lits    []Lit
	learned bool
	act     float64
}

// Solver is a CDCL SAT solver. The zero value is ready to use; add
// variables implicitly by referencing them in AddClause.
type Solver struct {
	clauses  []*clause
	watches  map[Lit][]*clause // literal -> clauses watching it
	assign   []int8            // var -> lTrue/lFalse/lUndef
	level    []int             // var -> decision level assigned at
	reason   []*clause         // var -> implying clause
	activity []float64         // var -> VSIDS activity
	phase    []int8            // var -> saved phase
	trail    []Lit
	trailLim []int // decision level -> trail index
	qhead    int
	varInc   float64
	stats    Stats
	unsatNow bool // empty clause added
	// modelOverride marks that assign holds a model copied from an
	// assumption sub-solve rather than this solver's own trail.
	modelOverride bool

	// Budget caps total propagations+decisions; 0 means unlimited.
	Budget int64
	steps  int64

	// MaxLearned caps retained learned clauses before garbage collection
	// removes the low-activity half; 0 selects the default (8192).
	MaxLearned int
	claInc     float64
}

// New returns an empty solver.
func New() *Solver {
	return &Solver{watches: map[Lit][]*clause{}, varInc: 1, claInc: 1}
}

// NumVars returns the highest variable index seen.
func (s *Solver) NumVars() int { return len(s.assign) - 1 }

func (s *Solver) ensureVar(v int) {
	for len(s.assign) <= v {
		s.assign = append(s.assign, lUndef)
		s.level = append(s.level, 0)
		s.reason = append(s.reason, nil)
		s.activity = append(s.activity, 0)
		s.phase = append(s.phase, lFalse)
	}
}

// AddClause adds a clause (a disjunction of literals). Duplicate literals
// are removed; tautologies are ignored. Adding the empty clause makes the
// instance trivially unsatisfiable.
func (s *Solver) AddClause(lits ...Lit) {
	// Normalize: sort, dedupe, drop tautologies.
	seen := map[Lit]bool{}
	var norm []Lit
	for _, l := range lits {
		if l == 0 {
			panic("sat: zero literal")
		}
		if seen[l.Neg()] {
			return // tautology
		}
		if !seen[l] {
			seen[l] = true
			norm = append(norm, l)
			s.ensureVar(l.Var())
		}
	}
	if len(norm) == 0 {
		s.unsatNow = true
		return
	}
	sort.Slice(norm, func(i, j int) bool { return norm[i] < norm[j] })
	c := &clause{lits: norm}
	s.attach(c)
	s.clauses = append(s.clauses, c)
}

func (s *Solver) attach(c *clause) {
	if len(c.lits) == 1 {
		return // units handled at solve start
	}
	s.watches[c.lits[0]] = append(s.watches[c.lits[0]], c)
	s.watches[c.lits[1]] = append(s.watches[c.lits[1]], c)
}

func (s *Solver) value(l Lit) int8 {
	v := s.assign[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Sign() {
		return v
	}
	return -v
}

func (s *Solver) enqueue(l Lit, from *clause) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	if l.Sign() {
		s.assign[v] = lTrue
	} else {
		s.assign[v] = lFalse
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// propagate performs unit propagation; returns a conflicting clause or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.steps++
		s.stats.Propagations++
		neg := p.Neg()
		ws := s.watches[neg]
		kept := ws[:0]
		var conflict *clause
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			if conflict != nil {
				kept = append(kept, c)
				continue
			}
			// Ensure the false literal is at position 1.
			if c.lits[0] == neg {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.value(c.lits[0]) == lTrue {
				kept = append(kept, c)
				continue
			}
			// Find a new literal to watch.
			moved := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1]] = append(s.watches[c.lits[1]], c)
					moved = true
					break
				}
			}
			if moved {
				continue // no longer watching neg
			}
			kept = append(kept, c)
			if !s.enqueue(c.lits[0], c) {
				conflict = c
			}
		}
		s.watches[neg] = kept
		if conflict != nil {
			return conflict
		}
	}
	return nil
}

func (s *Solver) bumpClause(c *clause) {
	c.act += s.claInc
	if c.act > 1e100 {
		for _, cl := range s.clauses {
			cl.act *= 1e-100
		}
		s.claInc *= 1e-100
	}
}

// reduceDB removes the low-activity half of the learned clauses, keeping
// binary clauses and clauses that are the reason for a current assignment.
func (s *Solver) reduceDB() {
	reasons := map[*clause]bool{}
	for _, l := range s.trail {
		if r := s.reason[l.Var()]; r != nil {
			reasons[r] = true
		}
	}
	var learned []*clause
	for _, c := range s.clauses {
		if c.learned && len(c.lits) > 2 && !reasons[c] {
			learned = append(learned, c)
		}
	}
	if len(learned) < 2 {
		return
	}
	sort.Slice(learned, func(i, j int) bool { return learned[i].act < learned[j].act })
	drop := map[*clause]bool{}
	for _, c := range learned[:len(learned)/2] {
		drop[c] = true
	}
	kept := s.clauses[:0]
	for _, c := range s.clauses {
		if drop[c] {
			s.detach(c)
			continue
		}
		kept = append(kept, c)
	}
	s.clauses = kept
}

// detach removes the clause from its watch lists.
func (s *Solver) detach(c *clause) {
	for _, w := range []Lit{c.lits[0], c.lits[1]} {
		list := s.watches[w]
		for i, x := range list {
			if x == c {
				list[i] = list[len(list)-1]
				s.watches[w] = list[:len(list)-1]
				break
			}
		}
	}
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
}

// analyze performs first-UIP conflict analysis and returns the learned
// clause and the backtrack level.
func (s *Solver) analyze(conflict *clause) ([]Lit, int) {
	learned := []Lit{0} // placeholder for the asserting literal
	seen := make(map[int]bool)
	counter := 0
	var p Lit
	c := conflict
	idx := len(s.trail) - 1
	for {
		if c.learned {
			s.bumpClause(c)
		}
		for _, q := range c.lits {
			if q == p {
				continue
			}
			v := q.Var()
			if !seen[v] && s.level[v] > 0 {
				seen[v] = true
				s.bumpVar(v)
				if s.level[v] >= s.decisionLevel() {
					counter++
				} else {
					learned = append(learned, q)
				}
			}
		}
		// Find next literal on trail to resolve on.
		for !seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		seen[p.Var()] = false
		counter--
		idx--
		if counter == 0 {
			break
		}
		c = s.reason[p.Var()]
	}
	learned[0] = p.Neg()
	// Backtrack level: second-highest level in the clause.
	bt := 0
	for i := 1; i < len(learned); i++ {
		if lv := s.level[learned[i].Var()]; lv > bt {
			bt = lv
			learned[1], learned[i] = learned[i], learned[1]
		}
	}
	return learned, bt
}

func (s *Solver) backtrackTo(level int) {
	if s.decisionLevel() <= level {
		return
	}
	limit := s.trailLim[level]
	for i := len(s.trail) - 1; i >= limit; i-- {
		v := s.trail[i].Var()
		s.phase[v] = s.assign[v]
		s.assign[v] = lUndef
		s.reason[v] = nil
	}
	s.trail = s.trail[:limit]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) pickBranchVar() int {
	best, bestAct := 0, -1.0
	for v := 1; v < len(s.assign); v++ {
		if s.assign[v] == lUndef && s.activity[v] > bestAct {
			best, bestAct = v, s.activity[v]
		}
	}
	return best
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (1<<uint(k))-1 {
			return 1 << uint(k-1)
		}
		if i >= 1<<uint(k-1) && i < (1<<uint(k))-1 {
			return luby(i - (1 << uint(k-1)) + 1)
		}
	}
}

// Solve determines satisfiability under the given assumption literals.
// It returns Unknown when the step budget is exhausted.
//
// Assumption solving runs on a fresh internal solver seeded with the current
// clause database plus the assumptions as unit clauses; the model (when Sat)
// is copied back so Value/Model reflect the assumption run.
func (s *Solver) Solve(assumptions ...Lit) Status {
	if s.unsatNow {
		return Unsat
	}
	if len(assumptions) > 0 {
		sub := New()
		sub.Budget = s.Budget - s.steps
		if s.Budget == 0 {
			sub.Budget = 0
		}
		for _, c := range s.clauses {
			if c.learned {
				continue
			}
			sub.AddClause(append([]Lit(nil), c.lits...)...)
		}
		for _, a := range assumptions {
			sub.AddClause(a)
		}
		st := sub.Solve()
		s.steps += sub.steps
		s.stats.Decisions += sub.stats.Decisions
		s.stats.Propagations += sub.stats.Propagations
		s.stats.Conflicts += sub.stats.Conflicts
		s.stats.Learned += sub.stats.Learned
		s.stats.Restarts += sub.stats.Restarts
		if st == Sat {
			s.backtrackTo(0)
			// Copy the model so Value() observes it.
			s.ensureVar(sub.NumVars())
			for v := 1; v <= sub.NumVars(); v++ {
				s.assign[v] = sub.assign[v]
			}
			s.modelOverride = true
		}
		return st
	}
	s.modelOverride = false
	s.backtrackTo(0)
	// Replay propagation over the persistent level-0 trail so clauses
	// added since the last call are taken into account.
	s.qhead = 0
	// Assert unit clauses at level 0.
	for _, c := range s.clauses {
		if len(c.lits) == 1 {
			if !s.enqueue(c.lits[0], nil) {
				return Unsat
			}
		}
	}
	if s.propagate() != nil {
		return Unsat
	}
	restartNum := int64(1)
	conflictBudget := int64(100) * luby(restartNum)
	conflictsHere := int64(0)
	for {
		if s.Budget > 0 && s.steps > s.Budget {
			s.backtrackTo(0)
			return Unknown
		}
		conflict := s.propagate()
		if conflict != nil {
			s.stats.Conflicts++
			conflictsHere++
			if s.decisionLevel() == 0 {
				return Unsat
			}
			learned, bt := s.analyze(conflict)
			s.backtrackTo(bt)
			c := &clause{lits: learned, learned: true}
			s.stats.Learned++
			if len(learned) > 1 {
				s.attach(c)
				s.clauses = append(s.clauses, c)
				s.enqueue(learned[0], c)
			} else {
				if !s.enqueue(learned[0], nil) {
					return Unsat
				}
			}
			s.varInc /= 0.95
			s.claInc /= 0.999
			// Garbage-collect learned clauses when the database grows
			// past the cap.
			maxLearned := s.MaxLearned
			if maxLearned <= 0 {
				maxLearned = 8192
			}
			if int(s.stats.Learned) > 0 && s.learnedCount() > maxLearned {
				s.reduceDB()
			}
			continue
		}
		// Restart?
		if conflictsHere >= conflictBudget {
			s.stats.Restarts++
			restartNum++
			conflictBudget = 100 * luby(restartNum)
			conflictsHere = 0
			s.backtrackTo(0)
			continue
		}
		v := s.pickBranchVar()
		if v == 0 {
			return Sat
		}
		s.stats.Decisions++
		s.steps++
		s.trailLim = append(s.trailLim, len(s.trail))
		l := Lit(v)
		if s.phase[v] == lFalse {
			l = l.Neg()
		}
		s.enqueue(l, nil)
	}
}

// Value returns the assignment of variable v in the last Sat result.
func (s *Solver) Value(v int) bool {
	if v >= len(s.assign) {
		return false
	}
	return s.assign[v] == lTrue
}

// Model returns the satisfying assignment as a map from variable to value.
// Only meaningful after Solve returned Sat.
func (s *Solver) Model() map[int]bool {
	m := make(map[int]bool, len(s.assign))
	for v := 1; v < len(s.assign); v++ {
		m[v] = s.assign[v] == lTrue
	}
	return m
}

// Stats returns effort counters accumulated so far.
func (s *Solver) Stats() Stats { return s.stats }

// NumClauses returns the number of clauses currently stored (including
// learned clauses).
func (s *Solver) NumClauses() int { return len(s.clauses) }

// learnedCount counts currently retained learned clauses.
func (s *Solver) learnedCount() int {
	n := 0
	for _, c := range s.clauses {
		if c.learned {
			n++
		}
	}
	return n
}
