// Package sat implements a CDCL (conflict-driven clause learning) boolean
// satisfiability solver: two-watched-literal propagation over dense
// slice-indexed watch lists, first-UIP conflict analysis, VSIDS-style
// activity ordering with a binary heap, phase saving, Luby restarts,
// native incremental solving under assumptions (learned clauses are
// retained across calls), and deterministic resource budgets.
//
// It is the boolean core of the internal/smt solver, standing in for the
// SAT engines inside CVC5/Z3 that the paper uses. The solver is fully
// incremental: AddClause is legal between Solve calls, and a Solve under
// assumptions runs in place — no sub-solver is constructed, and clauses
// learned under assumptions remain valid for later calls because conflict
// analysis never resolves on assumption decisions.
package sat

import (
	"errors"
	"fmt"
	"sort"
)

// Lit is a literal: variables are numbered from 1; a positive Lit v asserts
// variable v, a negative Lit -v asserts its negation. 0 is invalid.
type Lit int

// Neg returns the negation of the literal.
func (l Lit) Neg() Lit { return -l }

// Var returns the literal's variable index (always positive).
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Sign reports whether the literal is positive.
func (l Lit) Sign() bool { return l > 0 }

// String renders the literal as in DIMACS.
func (l Lit) String() string { return fmt.Sprintf("%d", int(l)) }

// watchIdx maps a literal to its dense watch-list slot: positive literals
// of variable v at 2v, negative at 2v+1.
func watchIdx(l Lit) int {
	if l > 0 {
		return int(l) << 1
	}
	return int(-l)<<1 | 1
}

// Status is the outcome of a Solve call.
type Status int

// Solve outcomes.
const (
	// Unknown means the resource budget was exhausted before a decision.
	Unknown Status = iota
	// Sat means a satisfying assignment was found.
	Sat
	// Unsat means the formula is unsatisfiable under the assumptions.
	Unsat
)

// String returns "sat", "unsat" or "unknown".
func (s Status) String() string {
	switch s {
	case Sat:
		return "sat"
	case Unsat:
		return "unsat"
	default:
		return "unknown"
	}
}

// ErrBudget is returned (wrapped in Unknown status) when the step budget is
// exhausted.
var ErrBudget = errors.New("sat: resource budget exhausted")

// Stats reports solver effort counters.
type Stats struct {
	// Decisions counts branching decisions.
	Decisions int64
	// Propagations counts unit propagations.
	Propagations int64
	// Conflicts counts conflicts analyzed.
	Conflicts int64
	// Learned counts clauses learned.
	Learned int64
	// Restarts counts restarts performed.
	Restarts int64
	// Solves counts Solve calls (incremental re-solves included).
	Solves int64
}

const (
	lUndef int8 = 0
	lTrue  int8 = 1
	lFalse int8 = -1
)

type clause struct {
	lits    []Lit
	learned bool
	act     float64
}

// Solver is an incremental CDCL SAT solver. The zero value is ready to
// use; add variables implicitly by referencing them in AddClause. Clauses
// may be added at any point between Solve calls; learned clauses and
// variable activities persist, so repeated solves over a growing clause
// database (the DPLL(T) refinement loop, instantiation rounds, batch
// queries under assumptions) reuse all prior search effort.
type Solver struct {
	clauses  []*clause
	watches  [][]*clause // watchIdx(lit) -> clauses watching it
	units    []Lit       // unit clauses, asserted at level 0 each solve
	assign   []int8      // var -> lTrue/lFalse/lUndef
	level    []int       // var -> decision level assigned at
	reason   []*clause   // var -> implying clause
	activity []float64   // var -> VSIDS activity
	phase    []int8      // var -> saved phase
	heapPos  []int       // var -> index in heap, -1 when absent
	heap     []int       // binary max-heap of vars ordered by activity
	seen     []bool      // var -> scratch for analyze
	trail    []Lit
	trailLim []int // decision level -> trail index
	qhead    int
	varInc   float64
	stats    Stats
	unsatNow bool // empty clause added

	// Budget caps total propagations+decisions; 0 means unlimited.
	Budget int64
	steps  int64

	// MaxLearned caps retained learned clauses before garbage collection
	// removes the low-activity half; 0 selects the default (8192).
	MaxLearned int
	claInc     float64
	learnedCnt int
}

// New returns an empty solver.
func New() *Solver {
	return &Solver{varInc: 1, claInc: 1}
}

// NumVars returns the highest variable index seen.
func (s *Solver) NumVars() int { return len(s.assign) - 1 }

func (s *Solver) ensureVar(v int) {
	for len(s.assign) <= v {
		nv := len(s.assign)
		s.assign = append(s.assign, lUndef)
		s.level = append(s.level, 0)
		s.reason = append(s.reason, nil)
		s.activity = append(s.activity, 0)
		s.phase = append(s.phase, lFalse)
		s.seen = append(s.seen, false)
		s.watches = append(s.watches, nil, nil)
		s.heapPos = append(s.heapPos, -1)
		if nv > 0 {
			s.heapInsert(nv)
		}
	}
}

// --- activity heap -------------------------------------------------------

func (s *Solver) heapLess(a, b int) bool { return s.activity[a] > s.activity[b] }

func (s *Solver) heapSwap(i, j int) {
	s.heap[i], s.heap[j] = s.heap[j], s.heap[i]
	s.heapPos[s.heap[i]] = i
	s.heapPos[s.heap[j]] = j
}

func (s *Solver) heapUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !s.heapLess(s.heap[i], s.heap[p]) {
			return
		}
		s.heapSwap(i, p)
		i = p
	}
}

func (s *Solver) heapDown(i int) {
	n := len(s.heap)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && s.heapLess(s.heap[l], s.heap[best]) {
			best = l
		}
		if r < n && s.heapLess(s.heap[r], s.heap[best]) {
			best = r
		}
		if best == i {
			return
		}
		s.heapSwap(i, best)
		i = best
	}
}

func (s *Solver) heapInsert(v int) {
	if s.heapPos[v] >= 0 {
		return
	}
	s.heapPos[v] = len(s.heap)
	s.heap = append(s.heap, v)
	s.heapUp(s.heapPos[v])
}

func (s *Solver) heapPop() int {
	v := s.heap[0]
	last := len(s.heap) - 1
	s.heapSwap(0, last)
	s.heap = s.heap[:last]
	s.heapPos[v] = -1
	if last > 0 {
		s.heapDown(0)
	}
	return v
}

// --- clause management ---------------------------------------------------

// AddClause adds a clause (a disjunction of literals). Duplicate literals
// are removed; tautologies are ignored. Adding the empty clause makes the
// instance trivially unsatisfiable. AddClause is legal at any point
// between Solve calls; the next Solve takes the new clause into account.
func (s *Solver) AddClause(lits ...Lit) {
	norm := make([]Lit, 0, len(lits))
	for _, l := range lits {
		if l == 0 {
			panic("sat: zero literal")
		}
		norm = append(norm, l)
		s.ensureVar(l.Var())
	}
	// Sort by variable (then sign) so duplicates and complementary pairs
	// are adjacent — insertion sort, no allocation on this hot path.
	litLess := func(a, b Lit) bool {
		va, vb := a.Var(), b.Var()
		if va != vb {
			return va < vb
		}
		return a < b
	}
	for i := 1; i < len(norm); i++ {
		for j := i; j > 0 && litLess(norm[j], norm[j-1]); j-- {
			norm[j], norm[j-1] = norm[j-1], norm[j]
		}
	}
	out := norm[:0]
	for i, l := range norm {
		if i > 0 {
			prev := out[len(out)-1]
			if prev == l {
				continue // duplicate
			}
			if prev == l.Neg() {
				return // tautology
			}
		}
		out = append(out, l)
	}
	if len(out) == 0 {
		s.unsatNow = true
		return
	}
	if len(out) == 1 {
		s.units = append(s.units, out[0])
	}
	c := &clause{lits: out}
	s.attach(c)
	s.clauses = append(s.clauses, c)
}

func (s *Solver) attach(c *clause) {
	if len(c.lits) == 1 {
		return // units handled at solve start
	}
	w0, w1 := watchIdx(c.lits[0]), watchIdx(c.lits[1])
	s.watches[w0] = append(s.watches[w0], c)
	s.watches[w1] = append(s.watches[w1], c)
}

// detach removes the clause from its watch lists.
func (s *Solver) detach(c *clause) {
	for _, w := range []Lit{c.lits[0], c.lits[1]} {
		wi := watchIdx(w)
		list := s.watches[wi]
		for i, x := range list {
			if x == c {
				list[i] = list[len(list)-1]
				s.watches[wi] = list[:len(list)-1]
				break
			}
		}
	}
}

func (s *Solver) value(l Lit) int8 {
	v := s.assign[l.Var()]
	if v == lUndef {
		return lUndef
	}
	if l.Sign() {
		return v
	}
	return -v
}

func (s *Solver) enqueue(l Lit, from *clause) bool {
	switch s.value(l) {
	case lTrue:
		return true
	case lFalse:
		return false
	}
	v := l.Var()
	if l.Sign() {
		s.assign[v] = lTrue
	} else {
		s.assign[v] = lFalse
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
	return true
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// propagate performs unit propagation; returns a conflicting clause or nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.steps++
		s.stats.Propagations++
		neg := p.Neg()
		wi := watchIdx(neg)
		ws := s.watches[wi]
		kept := ws[:0]
		var conflict *clause
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			if conflict != nil {
				kept = append(kept, c)
				continue
			}
			// Ensure the false literal is at position 1.
			if c.lits[0] == neg {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			if s.value(c.lits[0]) == lTrue {
				kept = append(kept, c)
				continue
			}
			// Find a new literal to watch.
			moved := false
			for k := 2; k < len(c.lits); k++ {
				if s.value(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					nw := watchIdx(c.lits[1])
					s.watches[nw] = append(s.watches[nw], c)
					moved = true
					break
				}
			}
			if moved {
				continue // no longer watching neg
			}
			kept = append(kept, c)
			if !s.enqueue(c.lits[0], c) {
				conflict = c
			}
		}
		s.watches[wi] = kept
		if conflict != nil {
			return conflict
		}
	}
	return nil
}

func (s *Solver) bumpClause(c *clause) {
	c.act += s.claInc
	if c.act > 1e100 {
		for _, cl := range s.clauses {
			cl.act *= 1e-100
		}
		s.claInc *= 1e-100
	}
}

// reduceDB removes the low-activity half of the learned clauses, keeping
// binary clauses and clauses that are the reason for a current assignment.
func (s *Solver) reduceDB() {
	reasons := map[*clause]bool{}
	for _, l := range s.trail {
		if r := s.reason[l.Var()]; r != nil {
			reasons[r] = true
		}
	}
	var learned []*clause
	for _, c := range s.clauses {
		if c.learned && len(c.lits) > 2 && !reasons[c] {
			learned = append(learned, c)
		}
	}
	if len(learned) < 2 {
		return
	}
	sort.Slice(learned, func(i, j int) bool { return learned[i].act < learned[j].act })
	drop := map[*clause]bool{}
	for _, c := range learned[:len(learned)/2] {
		drop[c] = true
	}
	kept := s.clauses[:0]
	for _, c := range s.clauses {
		if drop[c] {
			s.detach(c)
			s.learnedCnt--
			continue
		}
		kept = append(kept, c)
	}
	s.clauses = kept
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	if s.heapPos[v] >= 0 {
		s.heapUp(s.heapPos[v])
	}
}

// analyze performs first-UIP conflict analysis and returns the learned
// clause and the backtrack level. Assumption decisions are never resolved
// on (their reason is nil), so the learned clause is implied by the
// clause database alone and stays valid for later Solve calls.
func (s *Solver) analyze(conflict *clause) ([]Lit, int) {
	learned := []Lit{0} // placeholder for the asserting literal
	counter := 0
	var p Lit
	c := conflict
	idx := len(s.trail) - 1
	var toClear []int
	for {
		if c.learned {
			s.bumpClause(c)
		}
		for _, q := range c.lits {
			if q == p {
				continue
			}
			v := q.Var()
			if !s.seen[v] && s.level[v] > 0 {
				s.seen[v] = true
				toClear = append(toClear, v)
				s.bumpVar(v)
				if s.level[v] >= s.decisionLevel() {
					counter++
				} else {
					learned = append(learned, q)
				}
			}
		}
		// Find next literal on trail to resolve on.
		for !s.seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		s.seen[p.Var()] = false
		counter--
		idx--
		if counter == 0 {
			break
		}
		c = s.reason[p.Var()]
	}
	for _, v := range toClear {
		s.seen[v] = false
	}
	learned[0] = p.Neg()
	// Backtrack level: second-highest level in the clause.
	bt := 0
	for i := 1; i < len(learned); i++ {
		if lv := s.level[learned[i].Var()]; lv > bt {
			bt = lv
			learned[1], learned[i] = learned[i], learned[1]
		}
	}
	return learned, bt
}

func (s *Solver) backtrackTo(level int) {
	if s.decisionLevel() <= level {
		return
	}
	limit := s.trailLim[level]
	for i := len(s.trail) - 1; i >= limit; i-- {
		v := s.trail[i].Var()
		s.phase[v] = s.assign[v]
		s.assign[v] = lUndef
		s.reason[v] = nil
		s.heapInsert(v)
	}
	s.trail = s.trail[:limit]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) pickBranchVar() int {
	for len(s.heap) > 0 {
		v := s.heapPop()
		if s.assign[v] == lUndef {
			return v
		}
	}
	return 0
}

// luby computes the Luby restart sequence value for index i (1-based).
func luby(i int64) int64 {
	for k := int64(1); ; k++ {
		if i == (1<<uint(k))-1 {
			return 1 << uint(k-1)
		}
		if i >= 1<<uint(k-1) && i < (1<<uint(k))-1 {
			return luby(i - (1 << uint(k-1)) + 1)
		}
	}
}

// Solve determines satisfiability under the given assumption literals.
// It returns Unknown when the step budget is exhausted.
//
// Assumptions are handled natively: each is decided (in order) at its own
// decision level before any free decision, so the solver state — clause
// database, learned clauses, activities, saved phases — is shared across
// assumption solves and re-solves. When Sat, the model (reachable via
// Value/Model) reflects the assumptions.
func (s *Solver) Solve(assumptions ...Lit) Status {
	if s.unsatNow {
		return Unsat
	}
	s.stats.Solves++
	for _, a := range assumptions {
		if a == 0 {
			panic("sat: zero assumption literal")
		}
		s.ensureVar(a.Var())
	}
	s.backtrackTo(0)
	// Replay propagation over the persistent level-0 trail so clauses
	// added since the last call are taken into account.
	s.qhead = 0
	for _, u := range s.units {
		if !s.enqueue(u, nil) {
			return Unsat
		}
	}
	if s.propagate() != nil {
		return Unsat
	}
	restartNum := int64(1)
	conflictBudget := int64(100) * luby(restartNum)
	conflictsHere := int64(0)
	for {
		if s.Budget > 0 && s.steps > s.Budget {
			s.backtrackTo(0)
			return Unknown
		}
		conflict := s.propagate()
		if conflict != nil {
			s.stats.Conflicts++
			conflictsHere++
			if s.decisionLevel() == 0 {
				return Unsat
			}
			learned, bt := s.analyze(conflict)
			s.backtrackTo(bt)
			c := &clause{lits: learned, learned: true}
			s.stats.Learned++
			if len(learned) > 1 {
				s.attach(c)
				s.clauses = append(s.clauses, c)
				s.learnedCnt++
				s.enqueue(learned[0], c)
			} else {
				// A learned unit holds unconditionally at level 0; record
				// it so later incremental solves replay it.
				s.units = append(s.units, learned[0])
				if !s.enqueue(learned[0], nil) {
					return Unsat
				}
			}
			s.varInc /= 0.95
			s.claInc /= 0.999
			// Garbage-collect learned clauses when the database grows
			// past the cap.
			maxLearned := s.MaxLearned
			if maxLearned <= 0 {
				maxLearned = 8192
			}
			if s.learnedCnt > maxLearned {
				s.reduceDB()
			}
			continue
		}
		// Restart?
		if conflictsHere >= conflictBudget {
			s.stats.Restarts++
			restartNum++
			conflictBudget = 100 * luby(restartNum)
			conflictsHere = 0
			s.backtrackTo(0)
			continue
		}
		// Decide the next pending assumption before any free decision.
		if lvl := s.decisionLevel(); lvl < len(assumptions) {
			a := assumptions[lvl]
			switch s.value(a) {
			case lTrue:
				// Already implied: open an empty level so the remaining
				// assumptions keep their positional levels.
				s.trailLim = append(s.trailLim, len(s.trail))
			case lFalse:
				// The clause database refutes this assumption.
				s.backtrackTo(0)
				return Unsat
			default:
				s.stats.Decisions++
				s.steps++
				s.trailLim = append(s.trailLim, len(s.trail))
				s.enqueue(a, nil)
			}
			continue
		}
		v := s.pickBranchVar()
		if v == 0 {
			return Sat
		}
		s.stats.Decisions++
		s.steps++
		s.trailLim = append(s.trailLim, len(s.trail))
		l := Lit(v)
		if s.phase[v] == lFalse {
			l = l.Neg()
		}
		s.enqueue(l, nil)
	}
}

// Value returns the assignment of variable v in the last Sat result.
func (s *Solver) Value(v int) bool {
	if v >= len(s.assign) {
		return false
	}
	return s.assign[v] == lTrue
}

// Model returns the satisfying assignment as a map from variable to value.
// Only meaningful after Solve returned Sat.
func (s *Solver) Model() map[int]bool {
	m := make(map[int]bool, len(s.assign))
	for v := 1; v < len(s.assign); v++ {
		m[v] = s.assign[v] == lTrue
	}
	return m
}

// Stats returns effort counters accumulated so far.
func (s *Solver) Stats() Stats { return s.stats }

// NumClauses returns the number of clauses currently stored (including
// learned clauses).
func (s *Solver) NumClauses() int { return len(s.clauses) }

// NumLearned returns the number of currently retained learned clauses.
func (s *Solver) NumLearned() int { return s.learnedCnt }
