package sat

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ParseDIMACS reads a DIMACS CNF problem into a fresh solver. The "p cnf"
// header is validated when present but not required.
func ParseDIMACS(r io.Reader) (*Solver, error) {
	s := New()
	sc := bufio.NewScanner(r)
	declaredClauses := -1
	clauses := 0
	var cur []Lit
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "c") {
			continue
		}
		if strings.HasPrefix(line, "p") {
			fields := strings.Fields(line)
			if len(fields) != 4 || fields[1] != "cnf" {
				return nil, fmt.Errorf("sat: malformed problem line %q", line)
			}
			if _, err := strconv.Atoi(fields[2]); err != nil {
				return nil, fmt.Errorf("sat: bad variable count in %q", line)
			}
			n, err := strconv.Atoi(fields[3])
			if err != nil {
				return nil, fmt.Errorf("sat: bad clause count in %q", line)
			}
			declaredClauses = n
			continue
		}
		for _, f := range strings.Fields(line) {
			v, err := strconv.Atoi(f)
			if err != nil {
				return nil, fmt.Errorf("sat: bad literal %q", f)
			}
			if v == 0 {
				s.AddClause(cur...)
				clauses++
				cur = cur[:0]
				continue
			}
			cur = append(cur, Lit(v))
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(cur) > 0 {
		s.AddClause(cur...)
		clauses++
	}
	if declaredClauses >= 0 && clauses != declaredClauses {
		return nil, fmt.Errorf("sat: header declares %d clauses, found %d", declaredClauses, clauses)
	}
	return s, nil
}

// WriteDIMACS writes the solver's original (non-learned) clauses in DIMACS
// CNF format.
func (s *Solver) WriteDIMACS(w io.Writer) error {
	orig := 0
	for _, c := range s.clauses {
		if !c.learned {
			orig++
		}
	}
	if _, err := fmt.Fprintf(w, "p cnf %d %d\n", s.NumVars(), orig); err != nil {
		return err
	}
	for _, c := range s.clauses {
		if c.learned {
			continue
		}
		var b strings.Builder
		for _, l := range c.lits {
			fmt.Fprintf(&b, "%d ", int(l))
		}
		b.WriteString("0\n")
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}
