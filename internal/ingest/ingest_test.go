package ingest

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/corpus"
	"github.com/privacy-quagmire/quagmire/internal/obs"
	"github.com/privacy-quagmire/quagmire/internal/store"
)

func testPipeline(t testing.TB) *core.Pipeline {
	t.Helper()
	p, err := core.New(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// fixedClock keeps version timestamps identical across runs so store
// contents can be compared byte-for-byte.
func fixedClock() time.Time { return time.Date(2026, 8, 7, 0, 0, 0, 0, time.UTC) }

func writeTestCorpus(t testing.TB, n int) string {
	t.Helper()
	dir := t.TempDir()
	if _, err := corpus.WriteCorpus(dir, n, 42); err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestIngestDeterminism pins the reorder-buffer contract: one worker and
// many workers must produce byte-identical store contents — same IDs,
// names, companies, and payloads — so corpus analytics never depend on
// how the corpus was loaded.
func TestIngestDeterminism(t *testing.T) {
	dir := writeTestCorpus(t, 10)
	p := testPipeline(t)

	run := func(workers int) *store.Mem {
		st := store.NewMem(store.Options{Clock: fixedClock})
		sum, err := Run(context.Background(), p, st, dir, Options{Workers: workers, BatchSize: 3})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if sum.Ingested != 10 || sum.Skipped != 0 || len(sum.Failed) != 0 {
			t.Fatalf("workers=%d: summary %+v", workers, sum)
		}
		return st
	}
	serial, parallel := run(1), run(4)

	sl, _ := serial.List()
	pl, _ := parallel.List()
	if len(sl) != len(pl) {
		t.Fatalf("list lengths differ: %d vs %d", len(sl), len(pl))
	}
	for i := range sl {
		if sl[i] != pl[i] {
			t.Errorf("list[%d] differs:\n serial  %+v\n parallel %+v", i, sl[i], pl[i])
		}
		sv, err := serial.LoadPayload(sl[i].ID, 1)
		if err != nil {
			t.Fatal(err)
		}
		pv, err := parallel.LoadPayload(pl[i].ID, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sv, pv) {
			t.Errorf("%s payload differs between serial and parallel ingest", sl[i].ID)
		}
	}

	// Identical payloads must answer queries identically; spot-check one
	// decoded engine from each side.
	sv, _ := serial.LoadPayload(sl[0].ID, 1)
	pv, _ := parallel.LoadPayload(pl[0].ID, 1)
	sa, err := p.DecodeAnalysis(sv)
	if err != nil {
		t.Fatal(err)
	}
	pa, err := p.DecodeAnalysis(pv)
	if err != nil {
		t.Fatal(err)
	}
	const q = "Do you share email addresses with advertisers?"
	sr, err := sa.Engine.Ask(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := pa.Engine.Ask(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Verdict != pr.Verdict {
		t.Errorf("verdicts differ: serial %s, parallel %s", sr.Verdict, pr.Verdict)
	}
}

// TestIngestResume interrupts an ingest mid-corpus (SIGKILL-style: the
// disk store is abandoned without Close, so recovery replays the WAL)
// and checks the rerun picks up exactly where the commits stopped —
// zero re-analyzed, zero duplicated.
func TestIngestResume(t *testing.T) {
	dir := writeTestCorpus(t, 9)
	p := testPipeline(t)
	dataDir := t.TempDir()

	st, err := store.OpenDisk(dataDir, store.Options{Clock: fixedClock})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	sum1, err := Run(ctx, p, st, dir, Options{
		Workers:   2,
		BatchSize: 2,
		Progress: func(pr Progress) {
			if pr.Committed >= 4 {
				cancel()
			}
		},
	})
	if err != context.Canceled {
		t.Fatalf("interrupted run error = %v, want context.Canceled", err)
	}
	if sum1.Ingested < 4 || sum1.Ingested >= 9 {
		t.Fatalf("interrupted run ingested %d, want mid-corpus", sum1.Ingested)
	}
	// Abandon st without Close: the committed batches live only in the WAL.

	st2, err := store.OpenDisk(dataDir, store.Options{Clock: fixedClock})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	sum2, err := Run(context.Background(), p, st2, dir, Options{Workers: 2, BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Skipped != sum1.Ingested {
		t.Errorf("rerun skipped %d, want %d (everything the first run committed)", sum2.Skipped, sum1.Ingested)
	}
	if got := sum1.Ingested + sum2.Ingested; got != 9 {
		t.Errorf("total ingested across runs = %d, want 9", got)
	}

	// The store holds each corpus file exactly once, single-versioned.
	list, err := st2.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 9 {
		t.Fatalf("final store has %d policies, want 9", len(list))
	}
	seen := map[string]bool{}
	for _, pol := range list {
		if seen[pol.Name] {
			t.Errorf("duplicate policy for %s", pol.Name)
		}
		seen[pol.Name] = true
		if pol.Versions != 1 {
			t.Errorf("%s has %d versions, want 1", pol.Name, pol.Versions)
		}
	}

	// A third run over the complete store is a pure no-op.
	sum3, err := Run(context.Background(), p, st2, dir, Options{Workers: 2, BatchSize: 2})
	if err != nil {
		t.Fatal(err)
	}
	if sum3.Ingested != 0 || sum3.Skipped != 9 {
		t.Errorf("no-op rerun = %+v, want 0 ingested / 9 skipped", sum3)
	}
}

// TestIngestDetectsChangedSources: a rerun over a corpus where some
// files changed re-analyzes exactly the changed ones, appending each as a
// new version of the existing policy — unchanged files skip by source
// hash, and nothing is duplicated.
func TestIngestDetectsChangedSources(t *testing.T) {
	dir := writeTestCorpus(t, 6)
	p := testPipeline(t)
	reg := obs.NewRegistry()
	st, err := store.OpenDisk(t.TempDir(), store.Options{Clock: fixedClock, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	sum1, err := Run(context.Background(), p, st, dir, Options{Workers: 2, BatchSize: 4, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if sum1.Ingested != 6 || sum1.Updated != 0 {
		t.Fatalf("first run = %+v", sum1)
	}

	// Edit two corpus files; their next ingest must become version 2.
	files, err := filepath.Glob(filepath.Join(dir, "*"))
	if err != nil || len(files) < 2 {
		t.Fatalf("corpus files: %v, %v", files, err)
	}
	sort.Strings(files)
	changed := map[string]bool{}
	for _, f := range files[:2] {
		raw, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		edited := string(raw) + "\nWe also collect your postal address for shipping."
		if err := os.WriteFile(f, []byte(edited), 0o644); err != nil {
			t.Fatal(err)
		}
		changed[filepath.Base(f)] = true
	}

	sum2, err := Run(context.Background(), p, st, dir, Options{Workers: 2, BatchSize: 4, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Ingested != 0 || sum2.Updated != 2 || sum2.Skipped != 4 {
		t.Fatalf("rerun = %+v, want 0 ingested / 2 updated / 4 skipped", sum2)
	}
	if got := reg.Counter("quagmire_ingest_files_total", "status", "updated").Value(); got != 2 {
		t.Errorf("updated counter = %d, want 2", got)
	}

	list, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(list) != 6 {
		t.Fatalf("store has %d policies after rerun, want 6 (no duplicates)", len(list))
	}
	for _, pol := range list {
		want := 1
		if changed[pol.Name] {
			want = 2
		}
		if pol.Versions != want {
			t.Errorf("%s has %d versions, want %d", pol.Name, pol.Versions, want)
		}
		// Every latest version records its source hash and it matches the
		// file on disk now.
		v, err := st.Version(pol.ID, pol.Versions)
		if err != nil {
			t.Fatal(err)
		}
		h, err := hashSourceFile(filepath.Join(dir, filepath.FromSlash(pol.Name)))
		if err != nil {
			t.Fatal(err)
		}
		if v.SourceHash != h {
			t.Errorf("%s v%d source hash %q, file hash %q", pol.Name, pol.Versions, v.SourceHash, h)
		}
	}

	// Third run: everything now matches — a pure no-op.
	sum3, err := Run(context.Background(), p, st, dir, Options{Workers: 2, BatchSize: 4, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if sum3.Ingested != 0 || sum3.Updated != 0 || sum3.Skipped != 6 {
		t.Errorf("no-op rerun = %+v, want 6 skipped only", sum3)
	}
}

// TestIngestLegacyVersionsSkip: stored versions predating hash recording
// (empty SourceHash) always skip — a rerun must not re-analyze the whole
// corpus just because the store is old.
func TestIngestLegacyVersionsSkip(t *testing.T) {
	dir := writeTestCorpus(t, 3)
	p := testPipeline(t)
	st := store.NewMem(store.Options{Clock: fixedClock})
	if _, err := Run(context.Background(), p, st, dir, Options{}); err != nil {
		t.Fatal(err)
	}
	// Simulate a legacy store: re-create the policies without hashes.
	legacy := store.NewMem(store.Options{Clock: fixedClock})
	list, _ := st.List()
	for _, pol := range list {
		payload, err := st.LoadPayload(pol.ID, 1)
		if err != nil {
			t.Fatal(err)
		}
		v, err := st.Version(pol.ID, 1)
		if err != nil {
			t.Fatal(err)
		}
		v.SourceHash = ""
		v.Payload = payload
		if _, err := legacy.Create(pol.Name, v); err != nil {
			t.Fatal(err)
		}
	}
	sum, err := Run(context.Background(), p, legacy, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Skipped != 3 || sum.Ingested != 0 || sum.Updated != 0 {
		t.Errorf("legacy rerun = %+v, want 3 skipped", sum)
	}
}

// TestIngestDiscovery: nested directories are walked, names are
// slash-relative paths, non-policy extensions are ignored, and HTML is
// converted before analysis.
func TestIngestDiscovery(t *testing.T) {
	dir := t.TempDir()
	mustWrite := func(rel, content string) {
		t.Helper()
		path := filepath.Join(dir, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mustWrite("a/mini.txt", corpus.Mini())
	mustWrite("b/page.html", "<html><body><h1>Acme Privacy Policy</h1><p>We collect your email address.</p></body></html>")
	mustWrite("b/notes.json", `{"not": "a policy"}`)
	mustWrite("top.md", corpus.Mini())

	st := store.NewMem(store.Options{})
	reg := obs.NewRegistry()
	sum, err := Run(context.Background(), testPipeline(t), st, dir, Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Discovered != 3 || sum.Ingested != 3 {
		t.Fatalf("summary = %+v, want 3 discovered and ingested", sum)
	}
	list, _ := st.List()
	want := []string{"a/mini.txt", "b/page.html", "top.md"}
	if len(list) != len(want) {
		t.Fatalf("stored %d policies, want %d", len(list), len(want))
	}
	for i, name := range want {
		if list[i].Name != name {
			t.Errorf("list[%d].Name = %q, want %q", i, list[i].Name, name)
		}
	}
	// The HTML policy really went through extraction: it has segments.
	for _, pol := range list {
		v, err := st.Version(pol.ID, 1)
		if err != nil {
			t.Fatal(err)
		}
		if v.Stats.Segments == 0 {
			t.Errorf("%s stored with zero segments", pol.Name)
		}
	}
	if got := reg.Counter("quagmire_ingest_files_total", "status", "ingested").Value(); got != 3 {
		t.Errorf("ingested counter = %d, want 3", got)
	}
}

// TestIngestBatchSizing: a corpus of N with batch size K issues
// ceil(N/K) durable appends — the fsync amortization the batch API
// exists for.
func TestIngestBatchSizing(t *testing.T) {
	dir := writeTestCorpus(t, 7)
	reg := obs.NewRegistry()
	st, err := store.OpenDisk(t.TempDir(), store.Options{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sum, err := Run(context.Background(), testPipeline(t), st, dir, Options{Workers: 2, BatchSize: 3, Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if sum.Batches != 3 { // 3+3+1
		t.Errorf("batches = %d, want 3", sum.Batches)
	}
	if got := reg.Counter("quagmire_store_wal_syncs_total").Value(); got != 3 {
		t.Errorf("wal syncs = %d, want 3 (one per batch)", got)
	}
	if got := reg.Counter("quagmire_ingest_batches_total").Value(); got != 3 {
		t.Errorf("batch counter = %d, want 3", got)
	}
}

func TestIngestEmptyAndMissingCorpus(t *testing.T) {
	st := store.NewMem(store.Options{})
	p := testPipeline(t)
	sum, err := Run(context.Background(), p, st, t.TempDir(), Options{})
	if err != nil || sum.Discovered != 0 {
		t.Errorf("empty corpus = %+v, %v", sum, err)
	}
	if _, err := Run(context.Background(), p, st, filepath.Join(t.TempDir(), "nope"), Options{}); err == nil {
		t.Error("missing corpus dir did not error")
	}
}

// BenchmarkCorpusIngest measures end-to-end corpus ingestion at worker
// counts 1 and 8 over a generated corpus. Size via
// QUAGMIRE_INGEST_BENCH_FILES (default 12 to keep CI fast); on
// multi-core hosts the workers=8 case demonstrates the parallel
// speedup, on GOMAXPROCS=1 hosts the two land within noise of each
// other (the pipeline is CPU-bound).
func BenchmarkCorpusIngest(b *testing.B) {
	n := 12
	if s := os.Getenv("QUAGMIRE_INGEST_BENCH_FILES"); s != "" {
		if _, err := fmt.Sscanf(s, "%d", &n); err != nil || n < 1 {
			b.Fatalf("bad QUAGMIRE_INGEST_BENCH_FILES %q", s)
		}
	}
	dir := b.TempDir()
	if _, err := corpus.WriteCorpus(dir, n, 42); err != nil {
		b.Fatal(err)
	}
	p := testPipeline(b)
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st, err := store.OpenDisk(b.TempDir(), store.Options{})
				if err != nil {
					b.Fatal(err)
				}
				sum, err := Run(context.Background(), p, st, dir, Options{Workers: workers, BatchSize: 32})
				if err != nil {
					b.Fatal(err)
				}
				if sum.Ingested != n {
					b.Fatalf("ingested %d, want %d", sum.Ingested, n)
				}
				st.Close()
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "policies/s")
		})
	}
}
