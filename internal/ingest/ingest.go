// Package ingest is the corpus-scale bulk write path: it streams a
// directory of policy files through a bounded worker pipeline
// (read → analyze → encode), commits results to the store in batched,
// file-ordered appends, and resumes interrupted runs from the store
// itself. The per-request path (POST /v1/policies) analyzes one policy
// inline and fsyncs per create; this path amortizes both the analysis
// (N workers) and the durability cost (store.AppendBatch fsyncs once
// per batch) across a whole corpus.
//
// Resumability needs no side checkpoint file: each policy is stored
// under its corpus-relative source path as the name, and a policy only
// becomes visible after its batch is durably logged. A rerun lists the
// store, skips every path already present, and re-analyzes only the
// tail the interrupt cut off — completed policies are never re-analyzed
// or duplicated.
//
// Reruns are also incremental in content, not just in presence: every
// stored version records the SHA-256 of its source document, and a rerun
// compares that hash against the file on disk. An unchanged file skips;
// a changed one is re-analyzed and appended as a new version of the same
// policy, so periodic re-crawls accumulate version history instead of
// duplicating policies or silently serving stale analyses.
//
// Determinism: the committer holds a reorder buffer keyed by discovery
// sequence and commits strictly in file order, so batch boundaries,
// assigned policy IDs, and store contents are identical whether the
// corpus was ingested with one worker or many.
package ingest

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/htmltext"
	"github.com/privacy-quagmire/quagmire/internal/obs"
	"github.com/privacy-quagmire/quagmire/internal/store"
)

// exts are the file extensions treated as policy documents; HTML files
// run through htmltext before analysis.
var exts = map[string]bool{".txt": true, ".md": true, ".html": true, ".htm": true}

// Options configures an ingest run. The zero value is usable: one
// worker, batches of 16, no logging or metrics.
type Options struct {
	// Workers is the number of concurrent analysis workers; <1 selects 1.
	Workers int
	// BatchSize is the number of policies committed per durable store
	// append (one WAL fsync each); <1 selects 16.
	BatchSize int
	// Obs receives quagmire_ingest_* metrics; nil disables.
	Obs *obs.Registry
	// Logger receives per-file failure warnings; nil disables.
	Logger *log.Logger
	// Progress, when set, is called after every committed batch with the
	// running totals. Callers use it for live reporting; tests use it to
	// interrupt a run at a known point.
	Progress func(Progress)
}

func (o Options) workers() int {
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

func (o Options) batchSize() int {
	if o.BatchSize < 1 {
		return 16
	}
	return o.BatchSize
}

func (o Options) logf(format string, args ...any) {
	if o.Logger != nil {
		o.Logger.Printf(format, args...)
	}
}

// Progress is the running state reported after each committed batch or
// version update.
type Progress struct {
	// Committed counts policies durably stored by this run so far.
	Committed int
	// Updated counts policies whose source changed and gained a new
	// version this run.
	Updated int
	// Skipped counts files already present and unchanged.
	Skipped int
	// Failed counts files whose analysis failed this run.
	Failed int
	// Total counts every policy file discovered in the corpus.
	Total int
}

// FileError records one file that failed to ingest.
type FileError struct {
	// Path is the corpus-relative file path.
	Path string
	// Err is the read or analysis failure.
	Err error
}

func (e FileError) Error() string { return fmt.Sprintf("%s: %v", e.Path, e.Err) }

// Summary reports a completed (or interrupted) run.
type Summary struct {
	// Discovered counts every policy file found in the corpus.
	Discovered int
	// Ingested counts policies durably committed by this run.
	Ingested int
	// Updated counts existing policies whose source content changed and
	// were appended as a new version.
	Updated int
	// Skipped counts files resumed past (already in the store with
	// unchanged content).
	Skipped int
	// Batches counts durable store appends (≈ WAL fsyncs) issued.
	Batches int
	// Failed lists files whose analysis failed; they stay absent from the
	// store, so a rerun retries them.
	Failed []FileError
}

// job is one file heading into the worker pool; seq is its position in
// the sorted discovery order. A non-empty updateID marks a re-ingest of
// a changed source: the result appends to that policy (CAS on expect)
// instead of creating a new one.
type job struct {
	seq      int
	rel      string
	path     string
	updateID string
	expect   int
}

// result is one analyzed file heading into the committer.
type result struct {
	seq      int
	rel      string
	updateID string
	expect   int
	entry    store.BatchEntry
	err      error
}

// Run ingests every policy file under dir into st, analyzing with p.
// It returns the summary of what this run did; on context cancellation
// it stops promptly and returns ctx.Err() alongside the partial summary
// (everything already committed stays durable, and a rerun resumes).
func Run(ctx context.Context, p *core.Pipeline, st store.PolicyStore, dir string, opts Options) (Summary, error) {
	var sum Summary
	files, err := discover(dir)
	if err != nil {
		return sum, err
	}
	sum.Discovered = len(files)

	// Resume: every policy name already in the store is a file a prior
	// run durably completed. Unchanged content (same source hash) skips;
	// changed content becomes an update job appending the next version.
	// Versions predating hash recording carry no hash and always skip —
	// indistinguishable from unchanged, and never worth re-analyzing on
	// every rerun.
	existing, err := st.List()
	if err != nil {
		return sum, fmt.Errorf("ingest: list store for resume: %w", err)
	}
	done := make(map[string]store.Policy, len(existing))
	for _, pol := range existing {
		done[pol.Name] = pol
	}
	var jobs []job
	for _, rel := range files {
		path := filepath.Join(dir, filepath.FromSlash(rel))
		pol, present := done[rel]
		if !present {
			jobs = append(jobs, job{seq: len(jobs), rel: rel, path: path})
			continue
		}
		latest, err := st.Version(pol.ID, pol.Versions)
		if err != nil {
			return sum, fmt.Errorf("ingest: read %s v%d for resume: %w", pol.ID, pol.Versions, err)
		}
		changed := false
		if latest.SourceHash != "" {
			// A file that cannot be hashed now goes to the workers, which
			// surface the read failure through the normal Failed path.
			h, err := hashSourceFile(path)
			changed = err != nil || h != latest.SourceHash
		}
		if !changed {
			sum.Skipped++
			opts.Obs.Counter("quagmire_ingest_files_total", "status", "skipped").Inc()
			continue
		}
		jobs = append(jobs, job{seq: len(jobs), rel: rel, path: path, updateID: pol.ID, expect: pol.Versions})
	}
	if len(jobs) == 0 {
		return sum, nil
	}

	workers := opts.workers()
	jobCh := make(chan job)
	resCh := make(chan result, workers)

	// Feeder: closes jobCh when the corpus is exhausted or ctx fires.
	go func() {
		defer close(jobCh)
		for _, j := range jobs {
			select {
			case jobCh <- j:
			case <-ctx.Done():
				return
			}
		}
	}()

	// Workers: read, analyze, encode. Failures travel to the committer
	// as results so ordering stays intact.
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobCh {
				r := result{seq: j.seq, rel: j.rel, updateID: j.updateID, expect: j.expect}
				r.entry, r.err = analyzeFile(ctx, p, j, opts)
				select {
				case resCh <- r:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() { wg.Wait(); close(resCh) }()

	// Committer: reorder results back into discovery order and flush
	// full batches. The buffer is naturally bounded by workers plus
	// channel capacity, so memory stays flat on huge corpora.
	pending := make(map[int]result)
	batch := make([]store.BatchEntry, 0, opts.batchSize())
	next := 0
	report := func() {
		if opts.Progress != nil {
			opts.Progress(Progress{
				Committed: sum.Ingested, Updated: sum.Updated, Skipped: sum.Skipped,
				Failed: len(sum.Failed), Total: sum.Discovered,
			})
		}
	}
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		if _, err := st.AppendBatch(batch); err != nil {
			return fmt.Errorf("ingest: commit batch: %w", err)
		}
		sum.Ingested += len(batch)
		sum.Batches++
		opts.Obs.Counter("quagmire_ingest_batches_total").Inc()
		opts.Obs.Counter("quagmire_ingest_files_total", "status", "ingested").Add(uint64(len(batch)))
		opts.Obs.Histogram("quagmire_ingest_batch_policies", obs.CountBuckets).Observe(float64(len(batch)))
		batch = batch[:0]
		report()
		return nil
	}
	for r := range resCh {
		pending[r.seq] = r
		for {
			rr, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			if rr.err != nil {
				sum.Failed = append(sum.Failed, FileError{Path: rr.rel, Err: rr.err})
				opts.Obs.Counter("quagmire_ingest_files_total", "status", "failed").Inc()
				opts.logf("ingest: %s: %v", rr.rel, rr.err)
				continue
			}
			if rr.updateID != "" {
				// Version updates append individually (CAS on the version
				// count seen at scan time) in discovery order. Flush the
				// pending creates first so the WAL keeps file order.
				if err := flush(); err != nil {
					return sum, err
				}
				if _, err := st.Append(rr.updateID, rr.expect, rr.entry.Version); err != nil {
					return sum, fmt.Errorf("ingest: update %s: %w", rr.rel, err)
				}
				sum.Updated++
				opts.Obs.Counter("quagmire_ingest_files_total", "status", "updated").Inc()
				report()
				continue
			}
			batch = append(batch, rr.entry)
			if len(batch) >= opts.batchSize() {
				if err := flush(); err != nil {
					return sum, err
				}
			}
		}
	}
	if err := ctx.Err(); err != nil {
		// Interrupted: leave the partial batch uncommitted — a rerun
		// re-analyzes exactly the unacknowledged tail, nothing else.
		return sum, err
	}
	if err := flush(); err != nil {
		return sum, err
	}
	return sum, nil
}

// hashSourceFile returns the hex SHA-256 of a source document's raw
// bytes — the change detector for incremental re-ingest.
func hashSourceFile(path string) (string, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// analyzeFile turns one corpus file into a ready-to-commit batch entry.
func analyzeFile(ctx context.Context, p *core.Pipeline, j job, opts Options) (store.BatchEntry, error) {
	raw, err := os.ReadFile(j.path)
	if err != nil {
		return store.BatchEntry{}, err
	}
	srcSum := sha256.Sum256(raw)
	text := string(raw)
	if ext := strings.ToLower(filepath.Ext(j.path)); ext == ".html" || ext == ".htm" {
		text = htmltext.Extract(text)
	}
	start := time.Now()
	a, err := p.Analyze(ctx, text)
	if err != nil {
		return store.BatchEntry{}, fmt.Errorf("analyze: %w", err)
	}
	opts.Obs.Histogram("quagmire_ingest_analyze_seconds", obs.TimeBuckets).ObserveSince(start)
	payload, err := core.EncodeAnalysis(a)
	if err != nil {
		return store.BatchEntry{}, fmt.Errorf("encode: %w", err)
	}
	st := a.Stats()
	return store.BatchEntry{
		Name: j.rel,
		Version: store.Version{
			VersionMeta: store.VersionMeta{
				Company:    a.Extraction.Company,
				SourceHash: hex.EncodeToString(srcSum[:]),
				Stats: store.VersionStats{
					Nodes: st.Nodes, Edges: st.Edges, Entities: st.Entities,
					DataTypes: st.DataTypes,
					Segments:  len(a.Extraction.Segments),
					Practices: len(a.Extraction.Practices),
				},
			},
			Payload: payload,
		},
	}, nil
}

// discover walks dir and returns the corpus-relative (slash-separated)
// paths of every policy file, sorted — the canonical ingest order.
func discover(dir string) ([]string, error) {
	var files []string
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() || !exts[strings.ToLower(filepath.Ext(path))] {
			return nil
		}
		rel, err := filepath.Rel(dir, path)
		if err != nil {
			return err
		}
		files = append(files, filepath.ToSlash(rel))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("ingest: walk corpus %s: %w", dir, err)
	}
	sort.Strings(files)
	return files, nil
}
