package obs

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total")
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
}

func TestShardedCounterConcurrent(t *testing.T) {
	r := NewRegistry()
	c := r.ShardedCounter("hot_total")
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				c.Add(2)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 16000 {
		t.Errorf("sharded counter = %d, want 16000", got)
	}
}

func TestGaugeSetAddConcurrent(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("depth")
	g.Set(10)
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.Add(1)
			g.Add(-1)
			g.Add(0.5)
		}()
	}
	wg.Wait()
	if got := g.Value(); math.Abs(got-15) > 1e-9 {
		t.Errorf("gauge = %v, want 15", got)
	}
}

func TestGaugeSetMax(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("peak")
	g.SetMax(3)
	g.SetMax(1) // lower value never wins
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}
	var wg sync.WaitGroup
	for i := 1; i <= 64; i++ {
		wg.Add(1)
		go func(v float64) {
			defer wg.Done()
			g.SetMax(v)
		}(float64(i))
	}
	wg.Wait()
	if got := g.Value(); got != 64 {
		t.Errorf("concurrent SetMax = %v, want 64", got)
	}
	var nilG *Gauge
	nilG.SetMax(1) // must not panic
}

func TestHistogramBucketsAndSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", []float64{0.01, 0.1, 1})
	h.Observe(0.005) // bucket 0.01
	h.Observe(0.01)  // le is inclusive: bucket 0.01
	h.Observe(0.5)   // bucket 1
	h.Observe(3)     // +Inf
	snap := h.snapshot()
	if snap.Count != 4 {
		t.Errorf("count = %d, want 4", snap.Count)
	}
	if math.Abs(snap.Sum-3.515) > 1e-9 {
		t.Errorf("sum = %v, want 3.515", snap.Sum)
	}
	wantCum := []uint64{2, 2, 3, 4}
	for i, bk := range snap.Buckets {
		if bk.Count != wantCum[i] {
			t.Errorf("bucket %d (le %v) = %d, want %d", i, bk.UpperBound, bk.Count, wantCum[i])
		}
	}
	if !math.IsInf(snap.Buckets[len(snap.Buckets)-1].UpperBound, 1) {
		t.Error("last bucket should be +Inf")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("conc_seconds", TimeBuckets)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h.Observe(0.001)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 1600 {
		t.Errorf("count = %d, want 1600", h.Count())
	}
	if math.Abs(h.Sum()-1.6) > 1e-6 {
		t.Errorf("sum = %v, want 1.6", h.Sum())
	}
}

func TestSameIdentitySameMetric(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "phase", "solve")
	b := r.Counter("x_total", "phase", "solve")
	if a != b {
		t.Error("same (name, labels) must return the same counter")
	}
	c := r.Counter("x_total", "phase", "translate")
	if a == c {
		t.Error("different labels must return distinct counters")
	}
}

func TestLabelOrderCanonical(t *testing.T) {
	if metricID("m", []string{"b", "2", "a", "1"}) != `m{a="1",b="2"}` {
		t.Errorf("labels not canonicalized: %s", metricID("m", []string{"b", "2", "a", "1"}))
	}
	r := NewRegistry()
	a := r.Counter("m_total", "b", "2", "a", "1")
	b := r.Counter("m_total", "a", "1", "b", "2")
	if a != b {
		t.Error("label order must not change identity")
	}
}

func TestKindMismatchReturnsNilNoop(t *testing.T) {
	r := NewRegistry()
	r.Counter("mixed")
	g := r.Gauge("mixed")
	if g != nil {
		t.Error("kind mismatch should return a nil (no-op) handle")
	}
	g.Set(1) // must not panic
}

func TestNilSafety(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.ShardedCounter("b").Add(2)
	r.Gauge("c").Set(1)
	r.Histogram("d", TimeBuckets).Observe(0.1)
	r.CounterFunc("e", func() float64 { return 1 })
	r.GaugeFunc("f", func() float64 { return 1 })
	r.SetHelp("a", "help")
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	snap := r.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Error("nil registry snapshot should be empty")
	}
	var c *Counter
	c.Inc()
	var h *Histogram
	h.ObserveSince(time.Now())
	var g *Gauge
	g.Add(1)
	var s *ShardedCounter
	s.Inc()
	_ = snap.Table()
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.SetHelp("q_total", "queries served")
	r.Counter("q_total", "verdict", "VALID").Add(3)
	r.Counter("q_total", "verdict", "INVALID").Add(1)
	r.Gauge("depth").Set(2.5)
	r.Histogram("solve_seconds", []float64{0.1, 1}).Observe(0.05)
	r.CounterFunc("cache_hits_total", func() float64 { return 7 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP q_total queries served",
		"# TYPE q_total counter",
		`q_total{verdict="VALID"} 3`,
		`q_total{verdict="INVALID"} 1`,
		"# TYPE depth gauge",
		"depth 2.5",
		"# TYPE solve_seconds histogram",
		`solve_seconds_bucket{le="0.1"} 1`,
		`solve_seconds_bucket{le="+Inf"} 1`,
		"solve_seconds_sum 0.05",
		"solve_seconds_count 1",
		"cache_hits_total 7",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
	// TYPE lines appear exactly once per family.
	if strings.Count(out, "# TYPE q_total") != 1 {
		t.Error("TYPE emitted more than once for a family")
	}
}

func TestHistogramLabelsRenderBucketsInsideBraces(t *testing.T) {
	r := NewRegistry()
	r.Histogram("phase_seconds", []float64{1}, "phase", "solve").Observe(0.5)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`phase_seconds_bucket{phase="solve",le="1"} 1`,
		`phase_seconds_bucket{phase="solve",le="+Inf"} 1`,
		`phase_seconds_sum{phase="solve"} 0.5`,
		`phase_seconds_count{phase="solve"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in output:\n%s", want, out)
		}
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total").Add(5)
	r.Gauge("g").Set(1.5)
	r.Histogram("h_seconds", []float64{1}).Observe(0.2)
	r.GaugeFunc("gf", func() float64 { return 9 })
	snap := r.Snapshot()
	data, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["c_total"] != 5 || back.Gauges["g"] != 1.5 || back.Gauges["gf"] != 9 {
		t.Errorf("round trip lost values: %+v", back)
	}
	if back.Histograms["h_seconds"].Count != 1 {
		t.Errorf("round trip lost histogram: %+v", back.Histograms)
	}
}

func TestTableRendersPhases(t *testing.T) {
	r := NewRegistry()
	r.Histogram("phase_seconds", TimeBuckets, "phase", "solve").Observe(0.25)
	r.Histogram("phase_seconds", TimeBuckets, "phase", "translate").Observe(0.001)
	r.Counter("verdicts_total", "verdict", "VALID").Add(2)
	out := r.Snapshot().Table()
	for _, want := range []string{
		`phase_seconds{phase="solve"}`,
		`phase_seconds{phase="translate"}`,
		`verdicts_total{verdict="VALID"}`,
		"stage", "count", "total", "mean",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
	// Deterministic ordering: solve sorts before translate.
	if strings.Index(out, "solve") > strings.Index(out, "translate") {
		t.Error("table rows not sorted")
	}
}

func TestSnapshotConcurrentWithWrites(t *testing.T) {
	r := NewRegistry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				r.Counter("w_total", "worker", string(rune('a'+g))).Inc()
				r.Histogram("w_seconds", TimeBuckets).Observe(0.001)
			}
		}(g)
	}
	for i := 0; i < 50; i++ {
		_ = r.Snapshot()
		var b strings.Builder
		_ = r.WritePrometheus(&b)
	}
	close(stop)
	wg.Wait()
}
