// Package obs is the pipeline's observability layer: named counters,
// gauges and fixed-bucket latency histograms backed by atomic (and, for
// contended hot paths, sharded) implementations, collected in a Registry
// that renders Prometheus text format, a JSON-friendly Snapshot for
// benchmarks, and a human-readable per-phase table for the CLI.
//
// All metric methods are safe for concurrent use and are no-ops on nil
// receivers, so instrumented code never needs to guard against a missing
// registry:
//
//	var reg *obs.Registry // possibly nil
//	reg.Counter("quagmire_queries_total").Inc()
//
// Metric identity is the family name plus an optional ordered list of
// label key/value pairs; the same (name, labels) always returns the same
// metric instance.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Nil-safe.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count. Nil-safe.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// counterShard is one cache-line-padded slot of a ShardedCounter.
type counterShard struct {
	n atomic.Uint64
	_ [56]byte
}

// ShardedCounter is a counter for contended hot paths: increments go to
// per-goroutine-locality shards handed out by a sync.Pool (which is
// per-P under the hood), so concurrent writers rarely touch the same
// cache line. Reads sum all shards and are accordingly slower — use
// Counter unless the write path is genuinely hot.
type ShardedCounter struct {
	mu     sync.Mutex
	shards []*counterShard
	pool   sync.Pool
	init   sync.Once
}

func (c *ShardedCounter) initPool() {
	c.init.Do(func() {
		c.pool.New = func() any {
			s := &counterShard{}
			c.mu.Lock()
			c.shards = append(c.shards, s)
			c.mu.Unlock()
			return s
		}
	})
}

// Inc adds one.
func (c *ShardedCounter) Inc() { c.Add(1) }

// Add adds n. Nil-safe.
func (c *ShardedCounter) Add(n uint64) {
	if c == nil {
		return
	}
	c.initPool()
	s := c.pool.Get().(*counterShard)
	s.n.Add(n)
	c.pool.Put(s)
}

// Value sums all shards. Nil-safe.
func (c *ShardedCounter) Value() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	shards := c.shards
	c.mu.Unlock()
	var total uint64
	for _, s := range shards {
		total += s.n.Load()
	}
	return total
}

// Gauge is an atomic instantaneous value.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v. Nil-safe.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds delta (CAS loop). Nil-safe.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetMax raises the gauge to v when v exceeds the current value (CAS
// loop) — a monotonic high-watermark within the process, used for peak
// in-flight and queue-depth tracking. Nil-safe.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value. Nil-safe.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// TimeBuckets are the default latency bucket upper bounds in seconds,
// spanning microsecond-scale cache lookups to multi-second solver
// resource-outs.
var TimeBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// CountBuckets are generic magnitude buckets for non-time observations
// (formula sizes, instantiation counts).
var CountBuckets = []float64{1, 5, 10, 50, 100, 500, 1000, 5000, 10000, 50000, 100000}

// Histogram is a fixed-bucket histogram with atomic per-bucket counters.
// Buckets are cumulative-rendered in Prometheus format; an implicit +Inf
// bucket catches everything above the last bound.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one value. Nil-safe.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds. Nil-safe.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveSince records the elapsed time since start in seconds. Nil-safe.
func (h *Histogram) ObserveSince(start time.Time) { h.ObserveDuration(time.Since(start)) }

// Count returns the number of observations. Nil-safe.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values. Nil-safe.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	// UpperBound is the inclusive upper bound; +Inf for the last bucket.
	UpperBound float64 `json:"-"`
	// Count is the cumulative count of observations <= UpperBound.
	Count uint64 `json:"count"`
}

// bucketJSON is the wire form: the bound rendered as a Prometheus-style
// le string, since JSON has no +Inf literal.
type bucketJSON struct {
	UpperBound string `json:"le"`
	Count      uint64 `json:"count"`
}

// MarshalJSON renders the upper bound as a string ("+Inf" for the last
// bucket) so snapshots survive encoding/json.
func (b Bucket) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.UpperBound, 1) {
		le = formatValue(b.UpperBound)
	}
	return json.Marshal(bucketJSON{UpperBound: le, Count: b.Count})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var w bucketJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.UpperBound == "+Inf" {
		b.UpperBound = math.Inf(1)
	} else if _, err := fmt.Sscanf(w.UpperBound, "%g", &b.UpperBound); err != nil {
		return err
	}
	b.Count = w.Count
	return nil
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets"`
}

func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.Sum()}
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		bound := math.Inf(1)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		s.Buckets = append(s.Buckets, Bucket{UpperBound: bound, Count: cum})
	}
	return s
}

// metric kinds.
const (
	kindCounter = iota
	kindSharded
	kindGauge
	kindHistogram
	kindCounterFunc
	kindGaugeFunc
)

type metricEntry struct {
	id      string // family + rendered labels
	family  string
	kind    int
	counter *Counter
	sharded *ShardedCounter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// Registry holds named metrics. The zero value is NOT usable; construct
// with NewRegistry. All methods are safe for concurrent use and no-ops on
// a nil Registry, returning nil metric handles (which are themselves
// no-op).
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metricEntry
	help    map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metricEntry{}, help: map[string]string{}}
}

// metricID renders the canonical identity: name{k1="v1",k2="v2"} with
// label keys sorted. Labels are alternating key/value pairs; a trailing
// odd key is ignored.
func metricID(name string, labels []string) string {
	if len(labels) < 2 {
		return name
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		pairs = append(pairs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, p := range pairs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns the entry for id, creating it via mk when absent. It
// returns nil when an existing entry has a different kind (a programming
// error surfaced as a dead metric rather than a crash or a type pun).
func (r *Registry) lookup(name string, labels []string, kind int, mk func(id string) *metricEntry) *metricEntry {
	if r == nil {
		return nil
	}
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := r.metrics[id]; ok {
		if e.kind != kind {
			return nil
		}
		return e
	}
	e := mk(id)
	e.id, e.family, e.kind = id, name, kind
	r.metrics[id] = e
	return e
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	e := r.lookup(name, labels, kindCounter, func(string) *metricEntry {
		return &metricEntry{counter: &Counter{}}
	})
	if e == nil {
		return nil
	}
	return e.counter
}

// ShardedCounter returns the named sharded counter, registering it on
// first use. Intended for write-hot paths shared by many goroutines.
func (r *Registry) ShardedCounter(name string, labels ...string) *ShardedCounter {
	e := r.lookup(name, labels, kindSharded, func(string) *metricEntry {
		return &metricEntry{sharded: &ShardedCounter{}}
	})
	if e == nil {
		return nil
	}
	return e.sharded
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	e := r.lookup(name, labels, kindGauge, func(string) *metricEntry {
		return &metricEntry{gauge: &Gauge{}}
	})
	if e == nil {
		return nil
	}
	return e.gauge
}

// Histogram returns the named histogram, registering it with the given
// bucket bounds on first use (later calls reuse the original buckets).
func (r *Registry) Histogram(name string, buckets []float64, labels ...string) *Histogram {
	e := r.lookup(name, labels, kindHistogram, func(string) *metricEntry {
		return &metricEntry{hist: newHistogram(buckets)}
	})
	if e == nil {
		return nil
	}
	return e.hist
}

// CounterFunc registers a counter collected by calling fn at scrape or
// snapshot time — the pull pattern for subsystems that already keep their
// own counters (e.g. the SMT result cache).
func (r *Registry) CounterFunc(name string, fn func() float64, labels ...string) {
	r.lookup(name, labels, kindCounterFunc, func(string) *metricEntry {
		return &metricEntry{fn: fn}
	})
}

// GaugeFunc registers a gauge collected by calling fn at scrape or
// snapshot time.
func (r *Registry) GaugeFunc(name string, fn func() float64, labels ...string) {
	r.lookup(name, labels, kindGaugeFunc, func(string) *metricEntry {
		return &metricEntry{fn: fn}
	})
}

// SetHelp attaches a HELP string to a metric family for Prometheus
// rendering.
func (r *Registry) SetHelp(family, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[family] = help
	r.mu.Unlock()
}

// entries returns a sorted copy of the registered entries plus the help
// map, so rendering never holds the registry lock while calling fn
// collectors.
func (r *Registry) entries() ([]*metricEntry, map[string]string) {
	r.mu.Lock()
	out := make([]*metricEntry, 0, len(r.metrics))
	for _, e := range r.metrics {
		out = append(out, e)
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].family != out[j].family {
			return out[i].family < out[j].family
		}
		return out[i].id < out[j].id
	})
	return out, help
}

// Snapshot is a point-in-time copy of every registered metric, keyed by
// the full metric id (family plus labels). It is the structured form
// consumed by benchmarks and the CLI's -stats table.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot collects all metrics. Nil-safe: a nil registry yields an empty
// snapshot.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]uint64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return s
	}
	entries, _ := r.entries()
	for _, e := range entries {
		switch e.kind {
		case kindCounter:
			s.Counters[e.id] = e.counter.Value()
		case kindSharded:
			s.Counters[e.id] = e.sharded.Value()
		case kindCounterFunc:
			s.Counters[e.id] = uint64(e.fn())
		case kindGauge:
			s.Gauges[e.id] = e.gauge.Value()
		case kindGaugeFunc:
			s.Gauges[e.id] = e.fn()
		case kindHistogram:
			s.Histograms[e.id] = e.hist.snapshot()
		}
	}
	return s
}

// promType maps a metric kind to its Prometheus TYPE.
func promType(kind int) string {
	switch kind {
	case kindGauge, kindGaugeFunc:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// formatValue renders a float without exponent noise for integral values.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

// labeledID splices extra labels (e.g. le for buckets) into an id and
// appends a suffix to the family part.
func labeledID(id, suffix, extraKey, extraVal string) string {
	name, labels := id, ""
	if i := strings.IndexByte(id, '{'); i >= 0 {
		name, labels = id[:i], id[i+1:len(id)-1]
	}
	if extraKey == "" {
		if labels == "" {
			return name + suffix
		}
		return name + suffix + "{" + labels + "}"
	}
	extra := fmt.Sprintf("%s=%q", extraKey, extraVal)
	if labels == "" {
		return name + suffix + "{" + extra + "}"
	}
	return name + suffix + "{" + labels + "," + extra + "}"
}

// WritePrometheus renders every metric in Prometheus text exposition
// format (version 0.0.4), deterministically ordered. Nil-safe.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	entries, help := r.entries()
	var b strings.Builder
	seenFamily := map[string]bool{}
	for _, e := range entries {
		if !seenFamily[e.family] {
			seenFamily[e.family] = true
			if h, ok := help[e.family]; ok {
				fmt.Fprintf(&b, "# HELP %s %s\n", e.family, h)
			}
			fmt.Fprintf(&b, "# TYPE %s %s\n", e.family, promType(e.kind))
		}
		switch e.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s %d\n", e.id, e.counter.Value())
		case kindSharded:
			fmt.Fprintf(&b, "%s %d\n", e.id, e.sharded.Value())
		case kindCounterFunc, kindGaugeFunc:
			fmt.Fprintf(&b, "%s %s\n", e.id, formatValue(e.fn()))
		case kindGauge:
			fmt.Fprintf(&b, "%s %s\n", e.id, formatValue(e.gauge.Value()))
		case kindHistogram:
			snap := e.hist.snapshot()
			for _, bk := range snap.Buckets {
				le := "+Inf"
				if !math.IsInf(bk.UpperBound, 1) {
					le = formatValue(bk.UpperBound)
				}
				fmt.Fprintf(&b, "%s %d\n", labeledID(e.id, "_bucket", "le", le), bk.Count)
			}
			fmt.Fprintf(&b, "%s %s\n", labeledID(e.id, "_sum", "", ""), formatValue(snap.Sum))
			fmt.Fprintf(&b, "%s %d\n", labeledID(e.id, "_count", "", ""), snap.Count)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Table renders the snapshot as a human-readable per-phase breakdown:
// histograms first (count, total and mean — the per-stage latency view),
// then counters and gauges. Rows are sorted by id for determinism.
func (s Snapshot) Table() string {
	var b strings.Builder
	if len(s.Histograms) > 0 {
		ids := make([]string, 0, len(s.Histograms))
		width := len("stage")
		for id := range s.Histograms {
			ids = append(ids, id)
			if len(id) > width {
				width = len(id)
			}
		}
		sort.Strings(ids)
		fmt.Fprintf(&b, "%-*s  %10s  %12s  %12s\n", width, "stage", "count", "total", "mean")
		for _, id := range ids {
			h := s.Histograms[id]
			mean := 0.0
			if h.Count > 0 {
				mean = h.Sum / float64(h.Count)
			}
			fmt.Fprintf(&b, "%-*s  %10d  %12s  %12s\n", width, id,
				h.Count, formatSeconds(h.Sum), formatSeconds(mean))
		}
	}
	if len(s.Counters) > 0 {
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		ids := make([]string, 0, len(s.Counters))
		width := len("counter")
		for id := range s.Counters {
			ids = append(ids, id)
			if len(id) > width {
				width = len(id)
			}
		}
		sort.Strings(ids)
		fmt.Fprintf(&b, "%-*s  %10s\n", width, "counter", "value")
		for _, id := range ids {
			fmt.Fprintf(&b, "%-*s  %10d\n", width, id, s.Counters[id])
		}
	}
	if len(s.Gauges) > 0 {
		if b.Len() > 0 {
			b.WriteByte('\n')
		}
		ids := make([]string, 0, len(s.Gauges))
		width := len("gauge")
		for id := range s.Gauges {
			ids = append(ids, id)
			if len(id) > width {
				width = len(id)
			}
		}
		sort.Strings(ids)
		fmt.Fprintf(&b, "%-*s  %10s\n", width, "gauge", "value")
		for _, id := range ids {
			fmt.Fprintf(&b, "%-*s  %10s\n", width, id, formatValue(s.Gauges[id]))
		}
	}
	return b.String()
}

// formatSeconds renders a duration in seconds with stable precision.
func formatSeconds(v float64) string {
	return fmt.Sprintf("%.6fs", v)
}
