package conformance

import (
	"context"
	"strings"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/corpus"
	"github.com/privacy-quagmire/quagmire/internal/query"
)

const suite = `
# Acme compliance suite
EXPECT VALID:   Does Acme share my email address with advertising partners?
EXPECT VALID:   Does Acme collect my device identifiers?
EXPECT INVALID: Does Acme sell my personal information?
EXPECT INVALID: Does Acme share my medical records with insurance companies?
`

func TestParseSuite(t *testing.T) {
	cases, err := ParseSuite(strings.NewReader(suite))
	if err != nil {
		t.Fatal(err)
	}
	if len(cases) != 4 {
		t.Fatalf("cases = %d", len(cases))
	}
	if cases[0].Want != query.Valid || cases[2].Want != query.Invalid {
		t.Errorf("verdicts = %+v", cases)
	}
	if cases[0].Line != 3 {
		t.Errorf("line = %d", cases[0].Line)
	}
}

func TestParseSuiteErrors(t *testing.T) {
	for _, src := range []string{
		"EXPECT MAYBE: question?",
		"EXPECT VALID question without colon",
		"EXPECT VALID:",
		"random text",
	} {
		if _, err := ParseSuite(strings.NewReader(src)); err == nil {
			t.Errorf("ParseSuite(%q) should fail", src)
		}
	}
}

func TestRunSuite(t *testing.T) {
	p, err := core.New(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Analyze(context.Background(), corpus.Mini())
	if err != nil {
		t.Fatal(err)
	}
	cases, err := ParseSuite(strings.NewReader(suite))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), a.Engine, cases)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 0 {
		t.Fatalf("suite failed:\n%s", Render(res))
	}
	if res.Passed != 4 {
		t.Errorf("passed = %d", res.Passed)
	}
	out := Render(res)
	if !strings.Contains(out, "4 passed, 0 failed") {
		t.Errorf("render:\n%s", out)
	}
}

func TestRunSuiteDetectsRegressions(t *testing.T) {
	p, err := core.New(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Analyze(context.Background(), corpus.Mini())
	if err != nil {
		t.Fatal(err)
	}
	// A wrong expectation must be reported as FAIL, not error.
	cases, err := ParseSuite(strings.NewReader("EXPECT VALID: Does Acme sell my personal information?"))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), a.Engine, cases)
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || res.Passed != 0 {
		t.Fatalf("result = %+v", res)
	}
	if !strings.Contains(Render(res), "FAIL") {
		t.Error("FAIL line missing")
	}
}
