// Package conformance runs compliance test suites against a policy: a
// plain-text format in which each line pins the expected verdict of one
// natural-language query. This is the §5 engineer/company workflow —
// "companies test their privacy policies against specific scenarios to
// ensure consistency" — expressed as a repeatable, CI-runnable artifact.
//
// Suite format (one directive per line; # starts a comment):
//
//	EXPECT VALID:   Does Acme collect my device identifiers?
//	EXPECT INVALID: Does Acme sell my personal information?
//	EXPECT UNKNOWN: <a query that should exhaust the solver budget>
package conformance

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"strings"

	"github.com/privacy-quagmire/quagmire/internal/query"
)

// Case is one suite entry.
type Case struct {
	// Line is the 1-based source line, for error reporting.
	Line int
	// Want is the expected verdict.
	Want query.Verdict
	// Question is the natural-language query.
	Question string
}

// ParseSuite reads a suite from r. Malformed directives are errors with
// line information.
func ParseSuite(r io.Reader) ([]Case, error) {
	var cases []Case
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		rest, ok := strings.CutPrefix(text, "EXPECT ")
		if !ok {
			return nil, fmt.Errorf("conformance: line %d: expected \"EXPECT <VERDICT>: <question>\", got %q", line, text)
		}
		verdictStr, question, ok := strings.Cut(rest, ":")
		if !ok {
			return nil, fmt.Errorf("conformance: line %d: missing ':' after verdict", line)
		}
		var want query.Verdict
		switch strings.TrimSpace(verdictStr) {
		case "VALID":
			want = query.Valid
		case "INVALID":
			want = query.Invalid
		case "UNKNOWN":
			want = query.Unknown
		default:
			return nil, fmt.Errorf("conformance: line %d: unknown verdict %q", line, verdictStr)
		}
		question = strings.TrimSpace(question)
		if question == "" {
			return nil, fmt.Errorf("conformance: line %d: empty question", line)
		}
		cases = append(cases, Case{Line: line, Want: want, Question: question})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return cases, nil
}

// Outcome is the result of one case.
type Outcome struct {
	Case Case
	// Got is the verdict the engine produced.
	Got query.Verdict
	// ConditionalOn is non-empty for conditionally valid results.
	ConditionalOn []string
	// Err holds per-case engine failures.
	Err error
}

// Pass reports whether the case matched.
func (o Outcome) Pass() bool { return o.Err == nil && o.Got == o.Case.Want }

// Result summarizes a suite run.
type Result struct {
	// Outcomes holds one entry per case, in suite order.
	Outcomes []Outcome
	// Passed and Failed count outcomes.
	Passed, Failed int
}

// Run executes the suite against a query engine.
func Run(ctx context.Context, eng *query.Engine, cases []Case) (*Result, error) {
	res := &Result{}
	for _, c := range cases {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		qr, err := eng.Ask(ctx, c.Question)
		o := Outcome{Case: c, Err: err}
		if err == nil {
			o.Got = qr.Verdict
			o.ConditionalOn = qr.ConditionalOn
		}
		if o.Pass() {
			res.Passed++
		} else {
			res.Failed++
		}
		res.Outcomes = append(res.Outcomes, o)
	}
	return res, nil
}

// Render prints the run in a go-test-like format.
func Render(r *Result) string {
	var b strings.Builder
	for _, o := range r.Outcomes {
		status := "PASS"
		detail := string(o.Got)
		switch {
		case o.Err != nil:
			status = "ERROR"
			detail = o.Err.Error()
		case !o.Pass():
			status = "FAIL"
			detail = fmt.Sprintf("want %s, got %s", o.Case.Want, o.Got)
		}
		fmt.Fprintf(&b, "%-5s line %-3d %-8s %s\n", status, o.Case.Line, detail, o.Case.Question)
		if len(o.ConditionalOn) > 0 {
			fmt.Fprintf(&b, "      conditional on: %s\n", strings.Join(o.ConditionalOn, ", "))
		}
	}
	fmt.Fprintf(&b, "\n%d passed, %d failed\n", r.Passed, r.Failed)
	return b.String()
}
