package scenario

import (
	"strings"
	"testing"
)

// FuzzScenarioParse feeds arbitrary bytes through the lexer, parser and
// compiler: none may panic, and every parse error must carry the file
// position prefix the CLI prints.
func FuzzScenarioParse(f *testing.F) {
	f.Add(exampleSuite)
	f.Add(miniSuiteSrc)
	f.Add(`suite "s" { scenario "x" { ask "q $a ${b} $$" expect UNKNOWN } }`)
	f.Add(`suite "s" { use ccpa-no-sale(controller = "Acme") }`)
	f.Add("suite \"s\" {\n  # comment\n  deadline 250ms\n}")
	f.Add(`"unterminated`)
	f.Add("$ { } ( ) = ,")
	f.Fuzz(func(t *testing.T, src string) {
		s, err := Parse("fuzz.qq", src)
		if err != nil {
			if !strings.HasPrefix(err.Error(), "fuzz.qq:") {
				t.Fatalf("parse error lost its position: %v", err)
			}
			return
		}
		// A suite that parses must compile or fail cleanly — never panic.
		cs, err := Compile(s)
		if err != nil {
			return
		}
		for _, c := range cs.Cases {
			if c.Question == "" || c.Name == "" {
				t.Fatalf("compiled case with empty name/question: %+v", c)
			}
		}
	})
}
