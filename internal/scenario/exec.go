package scenario

import (
	"context"
	"runtime"
	"sync"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/obs"
	"github.com/privacy-quagmire/quagmire/internal/query"
)

// Outcome classifies one executed case.
type Outcome string

// Outcomes.
const (
	// Pass: the verdict matched the expectation.
	Pass Outcome = "pass"
	// Skip: the case expected UNKNOWN and got it — the scenario is pinned
	// as "needs human judgment", which CI reports as skipped, not green.
	Skip Outcome = "skip"
	// Fail: the verdict mismatched the expectation — a policy regression.
	Fail Outcome = "fail"
	// ErrorOutcome: the engine failed (parse error, deadline, cancellation).
	ErrorOutcome Outcome = "error"
)

// CaseResult is one executed case.
type CaseResult struct {
	// Case is the compiled scenario.
	Case Case
	// Got is the produced verdict (empty on error).
	Got query.Verdict
	// ConditionalOn lists the vague conditions a VALID verdict hinged on.
	ConditionalOn []string
	// Elapsed is the case's wall time.
	Elapsed time.Duration
	// Err is the engine failure, nil otherwise.
	Err error
}

// Outcome classifies the result.
func (r CaseResult) Outcome() Outcome {
	switch {
	case r.Err != nil:
		return ErrorOutcome
	case r.Got != r.Case.Want:
		return Fail
	case r.Got == query.Unknown:
		return Skip
	default:
		return Pass
	}
}

// SuiteResult summarizes one executed suite.
type SuiteResult struct {
	// Suite, File and Policy identify what ran against what.
	Suite, File, Policy string
	// Cases holds one result per compiled case, in suite order.
	Cases []CaseResult
	// Passed, Skipped, Failed and Errored count outcomes.
	Passed, Skipped, Failed, Errored int
	// Elapsed is the whole suite's wall time.
	Elapsed time.Duration
}

// OK reports whether the suite is green: no mismatches and no errors
// (expected-UNKNOWN skips do not fail a build).
func (r *SuiteResult) OK() bool { return r.Failed == 0 && r.Errored == 0 }

// ErroredSuite wraps a suite-level failure — a file that would not read,
// parse or compile, or a run that died before producing case results —
// as a one-case errored SuiteResult, so reports and CI artifacts record
// the broken suite alongside the ones that did run instead of losing the
// whole report to it.
func ErroredSuite(file, name string, err error) *SuiteResult {
	if name == "" {
		name = file
	}
	return &SuiteResult{
		Suite: name, File: file,
		Cases:   []CaseResult{{Case: Case{Name: "suite"}, Err: err}},
		Errored: 1,
	}
}

// ExecOptions configures Execute.
type ExecOptions struct {
	// Deadline bounds each case's verification; it overrides the suite's
	// declared deadline when positive. 0 falls back to the suite (and then
	// to no per-case deadline beyond ctx's own).
	Deadline time.Duration
	// Workers bounds case-level parallelism; 0 selects the engine's worker
	// setting (and then GOMAXPROCS), 1 forces one-at-a-time execution.
	Workers int
	// Obs receives suite/case metrics; nil-safe.
	Obs *obs.Registry
	// Policy overrides the report's policy label (e.g. "store:id@3" when
	// the runner bound the policy externally).
	Policy string
}

// Execute runs a compiled suite against a policy's query engine. Cases run
// concurrently over a bounded pool — the scenario analog of
// query.AskBatch — so a suite executed against a SharedCore engine pays
// for one ground-core construction and solves every scenario incrementally
// on it. Per-case failures (including per-case deadline expiry) are
// recorded on the corresponding CaseResult; Execute itself only errors
// when ctx is cancelled.
func Execute(ctx context.Context, eng *query.Engine, cs *CompiledSuite, opts ExecOptions) (*SuiteResult, error) {
	res := &SuiteResult{
		Suite: cs.Name, File: cs.File, Policy: cs.Policy,
		Cases: make([]CaseResult, len(cs.Cases)),
	}
	if opts.Policy != "" {
		res.Policy = opts.Policy
	}
	deadline := opts.Deadline
	if deadline <= 0 {
		deadline = cs.Deadline
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = eng.Workers
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cs.Cases) {
		workers = len(cs.Cases)
	}

	start := time.Now()
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				res.Cases[i] = runCase(ctx, eng, cs.Cases[i], deadline)
			}
		}()
	}
	// Like AskBatch, dispatch never blocks on a cancelled context: workers
	// keep draining and runCase stamps skipped cases with ctx.Err().
	for i := range cs.Cases {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	res.Elapsed = time.Since(start)

	for i := range res.Cases {
		switch res.Cases[i].Outcome() {
		case Pass:
			res.Passed++
		case Skip:
			res.Skipped++
		case Fail:
			res.Failed++
		case ErrorOutcome:
			res.Errored++
		}
	}
	observeSuite(opts.Obs, res)
	if err := ctx.Err(); err != nil {
		return res, err
	}
	return res, nil
}

// runCase verifies one case under its deadline.
func runCase(ctx context.Context, eng *query.Engine, c Case, deadline time.Duration) CaseResult {
	out := CaseResult{Case: c}
	if err := ctx.Err(); err != nil {
		out.Err = err
		return out
	}
	caseCtx := ctx
	if deadline > 0 {
		var cancel context.CancelFunc
		caseCtx, cancel = context.WithTimeout(ctx, deadline)
		defer cancel()
	}
	start := time.Now()
	qr, err := eng.Ask(caseCtx, c.Question)
	out.Elapsed = time.Since(start)
	if err != nil {
		out.Err = err
		return out
	}
	out.Got = qr.Verdict
	out.ConditionalOn = qr.ConditionalOn
	return out
}

// observeSuite exports run metrics: one suite counter tick, per-outcome
// case counters, and latency histograms at both granularities.
func observeSuite(reg *obs.Registry, res *SuiteResult) {
	reg.Counter("quagmire_scenario_suites_total").Inc()
	reg.Histogram("quagmire_scenario_suite_seconds", obs.TimeBuckets).ObserveDuration(res.Elapsed)
	for _, cr := range res.Cases {
		reg.Counter("quagmire_scenario_cases_total", "outcome", string(cr.Outcome())).Inc()
		reg.Histogram("quagmire_scenario_case_seconds", obs.TimeBuckets).ObserveDuration(cr.Elapsed)
	}
}
