package scenario

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokEOF tokenKind = iota
	// tokWord is a bare word: keywords, identifiers, verdicts, durations.
	tokWord
	// tokString is a double-quoted string literal (decoded).
	tokString
	tokLBrace
	tokRBrace
	tokLParen
	tokRParen
	tokEquals
	tokComma
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokWord:
		return "word"
	case tokString:
		return "string"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokEquals:
		return "'='"
	case tokComma:
		return "','"
	}
	return "token"
}

// token is one lexeme with its source position.
type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// Error is a positioned scan/parse/compile failure.
type Error struct {
	// File is the suite source name.
	File string
	// Line and Col locate the failure (1-based; 0 when unknown).
	Line, Col int
	// Msg describes it.
	Msg string
}

func (e *Error) Error() string {
	if e.Line == 0 {
		return fmt.Sprintf("%s: %s", e.File, e.Msg)
	}
	return fmt.Sprintf("%s:%d:%d: %s", e.File, e.Line, e.Col, e.Msg)
}

// lexer scans .qq source into tokens.
type lexer struct {
	file string
	src  string
	pos  int
	line int
	col  int
}

func newLexer(file, src string) *lexer {
	return &lexer{file: file, src: src, line: 1, col: 1}
}

func (l *lexer) errorf(line, col int, format string, args ...any) *Error {
	return &Error{File: l.file, Line: line, Col: col, Msg: fmt.Sprintf(format, args...)}
}

// peekByte returns the current byte without consuming (0 at EOF).
func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

// advance consumes one byte, tracking position.
func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

// skipSpaceAndComments eats whitespace plus '#' and '//' line comments.
func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '#':
			l.skipLine()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			l.skipLine()
		default:
			return
		}
	}
}

func (l *lexer) skipLine() {
	for l.pos < len(l.src) && l.peekByte() != '\n' {
		l.advance()
	}
}

// isWordByte reports bytes legal inside a bare word. Dashes allow pack
// names like ccpa-no-sale; dots allow durations like 1.5s.
func isWordByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
		c >= '0' && c <= '9' || c == '_' || c == '-' || c == '.'
}

// next scans one token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	c := l.peekByte()
	switch c {
	case '{':
		l.advance()
		return token{kind: tokLBrace, text: "{", line: line, col: col}, nil
	case '}':
		l.advance()
		return token{kind: tokRBrace, text: "}", line: line, col: col}, nil
	case '(':
		l.advance()
		return token{kind: tokLParen, text: "(", line: line, col: col}, nil
	case ')':
		l.advance()
		return token{kind: tokRParen, text: ")", line: line, col: col}, nil
	case '=':
		l.advance()
		return token{kind: tokEquals, text: "=", line: line, col: col}, nil
	case ',':
		l.advance()
		return token{kind: tokComma, text: ",", line: line, col: col}, nil
	case '"':
		return l.scanString(line, col)
	}
	if isWordByte(c) {
		start := l.pos
		for l.pos < len(l.src) && isWordByte(l.peekByte()) {
			l.advance()
		}
		return token{kind: tokWord, text: l.src[start:l.pos], line: line, col: col}, nil
	}
	r, _ := utf8.DecodeRuneInString(l.src[l.pos:])
	if !unicode.IsPrint(r) {
		return token{}, l.errorf(line, col, "unexpected character %q", r)
	}
	return token{}, l.errorf(line, col, "unexpected character '%c'", r)
}

// scanString decodes a double-quoted literal with \" \\ \n \t escapes.
// Newlines inside strings are errors: a runaway quote should fail on its
// own line, not swallow the rest of the file.
func (l *lexer) scanString(line, col int) (token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.pos >= len(l.src) {
			return token{}, l.errorf(line, col, "unterminated string")
		}
		c := l.advance()
		switch c {
		case '"':
			return token{kind: tokString, text: b.String(), line: line, col: col}, nil
		case '\n':
			return token{}, l.errorf(line, col, "unterminated string (newline in literal)")
		case '\\':
			if l.pos >= len(l.src) {
				return token{}, l.errorf(line, col, "unterminated string")
			}
			esc := l.advance()
			switch esc {
			case '"', '\\':
				b.WriteByte(esc)
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				return token{}, l.errorf(l.line, l.col-2, `unknown escape '\%c'`, esc)
			}
		default:
			b.WriteByte(c)
		}
	}
}
