package scenario

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Pack is a reusable regulatory rule template: a named set of scenarios
// with $param placeholders, instantiated by a suite's `use` directive.
// Packs are written in the scenario DSL itself and parsed by the same
// parser that reads user suites.
type Pack struct {
	// Name is the identifier after `use`.
	Name string
	// Doc is a one-line description for listings.
	Doc string
	// Required lists parameters a `use` must supply.
	Required []string
	// Defaults provides optional-parameter fallbacks.
	Defaults map[string]string

	src  string
	once sync.Once
	tmpl []Scenario
	err  error
}

// scenarios parses the pack source lazily, once.
func (p *Pack) scenarios() ([]Scenario, error) {
	p.once.Do(func() {
		s, err := Parse("pack:"+p.Name, p.src)
		if err != nil {
			p.err = fmt.Errorf("rule pack %q is malformed: %w", p.Name, err)
			return
		}
		p.tmpl = s.Scenarios
	})
	return p.tmpl, p.err
}

// builtinPacks is the rule-pack registry. The templates intentionally
// phrase CCPA/GDPR-style obligations as compliance questions over the data
// flows the engine reasons about — a pack pins the verdicts a compliant
// policy must produce, and a policy edit that flips one fails the suite.
var builtinPacks = map[string]*Pack{
	"ccpa-no-sale": {
		Name:     "ccpa-no-sale",
		Doc:      "CCPA §1798.120-style: the controller must not sell personal information",
		Required: []string{"controller"},
		src: `suite "ccpa-no-sale" {
  scenario "no sale of personal information" {
    ask "Does $controller sell my personal information?"
    expect INVALID
    tag "ccpa"
  }
  scenario "no sale of email addresses" {
    ask "Does $controller sell my email address?"
    expect INVALID
    tag "ccpa"
  }
}`,
	},
	"gdpr-special-categories": {
		Name:     "gdpr-special-categories",
		Doc:      "GDPR Art. 9-style: special-category data must not flow to commercial recipients",
		Required: []string{"controller"},
		src: `suite "gdpr-special-categories" {
  scenario "medical records do not reach insurers" {
    ask "Does $controller share my medical records with insurance companies?"
    expect INVALID
    tag "gdpr"
  }
  scenario "medical records do not reach advertisers" {
    ask "Does $controller share my medical records with advertising partners?"
    expect INVALID
    tag "gdpr"
  }
}`,
	},
	"collection-disclosure": {
		Name:     "collection-disclosure",
		Doc:      "transparency baseline: a declared collection practice must follow from the policy",
		Required: []string{"controller", "data"},
		src: `suite "collection-disclosure" {
  scenario "collection of $data is disclosed" {
    ask "Does $controller collect my $data?"
    expect VALID
    tag "transparency"
  }
}`,
	},
}

// Packs lists the built-in rule packs sorted by name (for docs and error
// suggestions).
func Packs() []*Pack {
	out := make([]*Pack, 0, len(builtinPacks))
	for _, p := range builtinPacks {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// expandUse instantiates a pack for one use directive: validates the
// parameters and returns the pack's scenarios with the parameter
// environment attached (substitution happens at compile time, layered over
// the suite's own bindings).
func expandUse(u Use) ([]Scenario, map[string]string, error) {
	p, ok := builtinPacks[u.Pack]
	if !ok {
		names := make([]string, 0, len(builtinPacks))
		for n := range builtinPacks {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, nil, fmt.Errorf("unknown rule pack %q (available: %s)", u.Pack, strings.Join(names, ", "))
	}
	env := map[string]string{}
	for k, v := range p.Defaults {
		env[k] = v
	}
	for k, v := range u.Params {
		if !p.paramKnown(k) {
			return nil, nil, fmt.Errorf("rule pack %q has no parameter %q", u.Pack, k)
		}
		env[k] = v
	}
	for _, req := range p.Required {
		if env[req] == "" {
			return nil, nil, fmt.Errorf("rule pack %q requires parameter %q", u.Pack, req)
		}
	}
	tmpl, err := p.scenarios()
	if err != nil {
		return nil, nil, err
	}
	out := make([]Scenario, len(tmpl))
	copy(out, tmpl)
	return out, env, nil
}

// paramKnown reports whether name is a declared pack parameter.
func (p *Pack) paramKnown(name string) bool {
	for _, r := range p.Required {
		if r == name {
			return true
		}
	}
	_, ok := p.Defaults[name]
	return ok
}
