package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"github.com/privacy-quagmire/quagmire/internal/query"
)

// ReportFormat is the JSON report's format discriminator, bumped on
// breaking shape changes so CI consumers can pin it.
const ReportFormat = "quagmire-scenario-report/1"

// Report is the machine-readable run summary (the JSON reporter's shape).
type Report struct {
	// Format identifies the report schema.
	Format string `json:"format"`
	// OK is true when every suite passed.
	OK bool `json:"ok"`
	// Totals aggregates all suites.
	Totals ReportTotals `json:"totals"`
	// Suites holds one entry per executed suite, in run order.
	Suites []SuiteReport `json:"suites"`
}

// ReportTotals are cross-suite counts.
type ReportTotals struct {
	Suites  int `json:"suites"`
	Cases   int `json:"cases"`
	Passed  int `json:"passed"`
	Skipped int `json:"skipped"`
	Failed  int `json:"failed"`
	Errored int `json:"errored"`
}

// SuiteReport is one suite's JSON rendering.
type SuiteReport struct {
	Suite          string       `json:"suite"`
	File           string       `json:"file,omitempty"`
	Policy         string       `json:"policy,omitempty"`
	Passed         int          `json:"passed"`
	Skipped        int          `json:"skipped"`
	Failed         int          `json:"failed"`
	Errored        int          `json:"errored"`
	ElapsedSeconds float64      `json:"elapsed_seconds"`
	Cases          []CaseReport `json:"cases"`
}

// CaseReport is one case's JSON rendering.
type CaseReport struct {
	Name           string        `json:"name"`
	Question       string        `json:"question"`
	Want           query.Verdict `json:"want"`
	Got            query.Verdict `json:"got,omitempty"`
	Outcome        Outcome       `json:"outcome"`
	ConditionalOn  []string      `json:"conditional_on,omitempty"`
	Tags           []string      `json:"tags,omitempty"`
	Origin         string        `json:"origin,omitempty"`
	ElapsedSeconds float64       `json:"elapsed_seconds"`
	Error          string        `json:"error,omitempty"`
}

// NewReport builds the machine-readable summary of a run.
func NewReport(results []*SuiteResult) Report {
	rep := Report{Format: ReportFormat, OK: true, Suites: make([]SuiteReport, 0, len(results))}
	for _, r := range results {
		sr := SuiteReport{
			Suite: r.Suite, File: r.File, Policy: r.Policy,
			Passed: r.Passed, Skipped: r.Skipped, Failed: r.Failed, Errored: r.Errored,
			ElapsedSeconds: r.Elapsed.Seconds(),
			Cases:          make([]CaseReport, 0, len(r.Cases)),
		}
		for _, cr := range r.Cases {
			c := CaseReport{
				Name: cr.Case.Name, Question: cr.Case.Question,
				Want: cr.Case.Want, Got: cr.Got, Outcome: cr.Outcome(),
				ConditionalOn:  cr.ConditionalOn,
				Tags:           cr.Case.Tags,
				Origin:         cr.Case.Origin,
				ElapsedSeconds: cr.Elapsed.Seconds(),
			}
			if cr.Err != nil {
				c.Error = cr.Err.Error()
			}
			sr.Cases = append(sr.Cases, c)
		}
		rep.Suites = append(rep.Suites, sr)
		rep.Totals.Suites++
		rep.Totals.Cases += len(r.Cases)
		rep.Totals.Passed += r.Passed
		rep.Totals.Skipped += r.Skipped
		rep.Totals.Failed += r.Failed
		rep.Totals.Errored += r.Errored
		if !r.OK() {
			rep.OK = false
		}
	}
	return rep
}

// WriteJSON renders the report as indented JSON.
func WriteJSON(w io.Writer, rep Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// RenderText prints a run in the go-test-like format the CLI shows on
// stdout.
func RenderText(results []*SuiteResult) string {
	var b strings.Builder
	var totals ReportTotals
	for _, r := range results {
		fmt.Fprintf(&b, "=== suite %q", r.Suite)
		if r.Policy != "" {
			fmt.Fprintf(&b, " (policy %s)", r.Policy)
		}
		b.WriteByte('\n')
		for _, cr := range r.Cases {
			switch cr.Outcome() {
			case Pass:
				fmt.Fprintf(&b, "PASS  %-8s %s\n", cr.Got, cr.Case.Name)
			case Skip:
				fmt.Fprintf(&b, "SKIP  %-8s %s (human judgment required)\n", cr.Got, cr.Case.Name)
			case Fail:
				fmt.Fprintf(&b, "FAIL  want %s, got %-8s %s\n", cr.Case.Want, cr.Got, cr.Case.Name)
				fmt.Fprintf(&b, "      question: %s\n", cr.Case.Question)
			case ErrorOutcome:
				fmt.Fprintf(&b, "ERROR %s: %v\n", cr.Case.Name, cr.Err)
			}
			if len(cr.ConditionalOn) > 0 {
				fmt.Fprintf(&b, "      conditional on: %s\n", strings.Join(cr.ConditionalOn, ", "))
			}
		}
		totals.Passed += r.Passed
		totals.Skipped += r.Skipped
		totals.Failed += r.Failed
		totals.Errored += r.Errored
	}
	fmt.Fprintf(&b, "\n%d passed, %d skipped, %d failed, %d errored\n",
		totals.Passed, totals.Skipped, totals.Failed, totals.Errored)
	return b.String()
}
