package scenario

import (
	"fmt"
	"strings"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/query"
)

// Case is one compiled, executable scenario: a fully interpolated question
// plus the verdict it must produce.
type Case struct {
	// Name identifies the case in reports (pack cases are prefixed with
	// the pack name).
	Name string `json:"name"`
	// Question is the vocabulary-bound natural-language query.
	Question string `json:"question"`
	// Want is the expected verdict.
	Want query.Verdict `json:"want"`
	// Tags are the scenario's labels.
	Tags []string `json:"tags,omitempty"`
	// Origin is the rule pack the case came from ("" for direct scenarios).
	Origin string `json:"origin,omitempty"`
	// Line is the source line of the declaring scenario or use directive.
	Line int `json:"line"`
}

// CompiledSuite is a suite lowered to executable cases.
type CompiledSuite struct {
	// Name and File identify the suite.
	Name, File string
	// Policy is the declared policy source (may be empty).
	Policy string
	// Deadline is the declared per-scenario deadline (0 = none).
	Deadline time.Duration
	// Cases are the executable scenarios in declaration order, packs first.
	Cases []Case
}

// Compile lowers a parsed suite: rule packs are expanded, $name references
// in questions and scenario names are substituted from the suite's
// bindings (overlaid with pack parameters inside packs), and every case is
// validated to carry a question and an expected verdict.
func Compile(s *Suite) (*CompiledSuite, error) {
	cs := &CompiledSuite{Name: s.Name, File: s.File, Policy: s.Policy, Deadline: s.Deadline}
	bindings := map[string]string{}
	for name, b := range s.Bindings {
		bindings[name] = b.Value
	}
	fail := func(line int, format string, args ...any) error {
		return &Error{File: s.File, Line: line, Col: 1, Msg: fmt.Sprintf(format, args...)}
	}

	addCase := func(sc Scenario, env map[string]string, origin string, line int) error {
		name, err := interpolate(sc.Name, env)
		if err != nil {
			return fail(line, "scenario %q: %v", sc.Name, err)
		}
		if sc.Ask == "" {
			return fail(line, "scenario %q has no ask", name)
		}
		if !sc.HasExpect {
			return fail(line, "scenario %q has no expect", name)
		}
		q, err := interpolate(sc.Ask, env)
		if err != nil {
			return fail(line, "scenario %q: %v", name, err)
		}
		if origin != "" {
			name = origin + ": " + name
		}
		cs.Cases = append(cs.Cases, Case{
			Name: name, Question: q, Want: sc.Expect,
			Tags: sc.Tags, Origin: origin, Line: line,
		})
		return nil
	}

	for _, u := range s.Uses {
		scenarios, params, err := expandUse(u)
		if err != nil {
			return nil, fail(u.Line, "%v", err)
		}
		// Pack parameters shadow suite bindings inside the pack's own
		// templates.
		env := map[string]string{}
		for k, v := range bindings {
			env[k] = v
		}
		for k, v := range params {
			env[k] = v
		}
		for _, sc := range scenarios {
			if err := addCase(sc, env, u.Pack, u.Line); err != nil {
				return nil, err
			}
		}
	}
	for _, sc := range s.Scenarios {
		if err := addCase(sc, bindings, "", sc.Line); err != nil {
			return nil, err
		}
	}

	if len(cs.Cases) == 0 {
		return nil, fail(0, "suite %q declares no scenarios", s.Name)
	}
	seen := map[string]int{}
	for i, c := range cs.Cases {
		if prev, dup := seen[c.Name]; dup {
			return nil, fail(c.Line, "duplicate scenario name %q (also case %d)", c.Name, prev+1)
		}
		seen[c.Name] = i
	}
	return cs, nil
}

// interpolate substitutes $name / ${name} references from env; $$ is a
// literal dollar. Unresolved references are errors — a typoed alias must
// not silently reach the query engine as "$advertisers".
func interpolate(s string, env map[string]string) (string, error) {
	if !strings.ContainsRune(s, '$') {
		return s, nil
	}
	var b strings.Builder
	for i := 0; i < len(s); {
		c := s[i]
		if c != '$' {
			b.WriteByte(c)
			i++
			continue
		}
		if i+1 < len(s) && s[i+1] == '$' {
			b.WriteByte('$')
			i += 2
			continue
		}
		name, next, ok := scanRef(s, i+1)
		if !ok {
			return "", fmt.Errorf("stray '$' at offset %d (use $$ for a literal dollar)", i)
		}
		v, bound := env[name]
		if !bound {
			return "", fmt.Errorf("unknown reference $%s (no such actor/data binding or pack parameter)", name)
		}
		b.WriteString(v)
		i = next
	}
	return b.String(), nil
}

// scanRef reads an identifier (optionally brace-wrapped) starting at i,
// returning the name and the index just past the reference.
func scanRef(s string, i int) (name string, next int, ok bool) {
	braced := i < len(s) && s[i] == '{'
	if braced {
		i++
	}
	start := i
	for i < len(s) && isRefByte(s[i]) {
		i++
	}
	if i == start {
		return "", 0, false
	}
	name = s[start:i]
	if braced {
		if i >= len(s) || s[i] != '}' {
			return "", 0, false
		}
		i++
	}
	return name, i, true
}

// isRefByte limits reference names to identifier characters: an underscore
// or alphanumeric run, so "$email?" parses as $email + '?'.
func isRefByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_'
}
