package scenario

import (
	"strings"
	"testing"
)

func TestBuiltinPacksParse(t *testing.T) {
	packs := Packs()
	if len(packs) < 3 {
		t.Fatalf("expected >= 3 built-in packs, got %d", len(packs))
	}
	for _, p := range packs {
		scs, err := p.scenarios()
		if err != nil {
			t.Errorf("pack %q: %v", p.Name, err)
			continue
		}
		if len(scs) == 0 {
			t.Errorf("pack %q has no scenarios", p.Name)
		}
		for _, sc := range scs {
			if sc.Ask == "" || !sc.HasExpect {
				t.Errorf("pack %q scenario %q missing ask or expect", p.Name, sc.Name)
			}
		}
		if p.Doc == "" {
			t.Errorf("pack %q has no doc line", p.Name)
		}
	}
	// Packs() must be sorted for stable docs output.
	for i := 1; i < len(packs); i++ {
		if packs[i-1].Name >= packs[i].Name {
			t.Errorf("Packs() not sorted: %q before %q", packs[i-1].Name, packs[i].Name)
		}
	}
}

func TestExpandUse(t *testing.T) {
	scs, env, err := expandUse(Use{Pack: "ccpa-no-sale", Params: map[string]string{"controller": "Acme"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(scs) != 2 {
		t.Fatalf("scenarios = %d, want 2", len(scs))
	}
	if env["controller"] != "Acme" {
		t.Errorf("env = %v", env)
	}
}

func TestExpandUseErrors(t *testing.T) {
	cases := []struct {
		use  Use
		want string
	}{
		{Use{Pack: "no-such-pack"}, "unknown rule pack"},
		{Use{Pack: "ccpa-no-sale"}, `requires parameter "controller"`},
		{Use{Pack: "ccpa-no-sale", Params: map[string]string{"controller": "Acme", "extra": "x"}}, `no parameter "extra"`},
		{Use{Pack: "collection-disclosure", Params: map[string]string{"controller": "Acme"}}, `requires parameter "data"`},
	}
	for _, c := range cases {
		_, _, err := expandUse(c.use)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("expandUse(%+v) error = %v, want substring %q", c.use, err, c.want)
		}
	}
	// The unknown-pack error should suggest the available names.
	_, _, err := expandUse(Use{Pack: "nope"})
	if err == nil || !strings.Contains(err.Error(), "ccpa-no-sale") {
		t.Errorf("unknown-pack error should list available packs, got %v", err)
	}
}
