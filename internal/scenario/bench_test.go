package scenario

import (
	"bytes"
	"context"
	"testing"
)

// BenchmarkScenarioSuite measures a full check-run unit of work: compile the
// fixture suite, execute it against the shared-core Mini engine, and render
// both reports. This is the per-suite cost a CI scenario gate pays, guarded
// by cmd/benchguard.
func BenchmarkScenarioSuite(b *testing.B) {
	eng := sharedMiniEngine(b)
	parsed, err := Parse("bench.qq", miniSuiteSrc)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cs, err := Compile(parsed)
		if err != nil {
			b.Fatal(err)
		}
		res, err := Execute(ctx, eng, cs, ExecOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.OK() {
			b.Fatalf("suite went red:\n%s", RenderText([]*SuiteResult{res}))
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, NewReport([]*SuiteResult{res})); err != nil {
			b.Fatal(err)
		}
		buf.Reset()
		if err := WriteJUnit(&buf, []*SuiteResult{res}); err != nil {
			b.Fatal(err)
		}
	}
}
