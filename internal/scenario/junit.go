package scenario

import (
	"encoding/xml"
	"fmt"
	"io"
	"strings"
)

// JUnit XML reporter. The shape follows the de-facto schema every CI
// system ingests (Jenkins/GitHub/GitLab test summaries): <testsuites>
// wrapping one <testsuite> per executed suite, one <testcase> per
// scenario. Verdict mismatches render as <failure>, engine errors as
// <error>, and matched-UNKNOWN scenarios as <skipped> so "needs human
// judgment" shows up yellow, not green. Nondeterministic attributes
// (timestamps, hostnames) are deliberately omitted so reports for the same
// run content are byte-identical.

type junitTestsuites struct {
	XMLName  xml.Name         `xml:"testsuites"`
	Name     string           `xml:"name,attr"`
	Tests    int              `xml:"tests,attr"`
	Failures int              `xml:"failures,attr"`
	Errors   int              `xml:"errors,attr"`
	Skipped  int              `xml:"skipped,attr"`
	Time     string           `xml:"time,attr"`
	Suites   []junitTestsuite `xml:"testsuite"`
}

type junitTestsuite struct {
	Name     string          `xml:"name,attr"`
	Tests    int             `xml:"tests,attr"`
	Failures int             `xml:"failures,attr"`
	Errors   int             `xml:"errors,attr"`
	Skipped  int             `xml:"skipped,attr"`
	Time     string          `xml:"time,attr"`
	File     string          `xml:"file,attr,omitempty"`
	Cases    []junitTestcase `xml:"testcase"`
}

type junitTestcase struct {
	Name      string        `xml:"name,attr"`
	Classname string        `xml:"classname,attr"`
	Time      string        `xml:"time,attr"`
	Failure   *junitMessage `xml:"failure,omitempty"`
	Error     *junitMessage `xml:"error,omitempty"`
	Skipped   *junitMessage `xml:"skipped,omitempty"`
}

type junitMessage struct {
	Message string `xml:"message,attr"`
	Type    string `xml:"type,attr,omitempty"`
	Body    string `xml:",chardata"`
}

// WriteJUnit renders a run as JUnit XML.
func WriteJUnit(w io.Writer, results []*SuiteResult) error {
	root := junitTestsuites{Name: "quagmire scenarios"}
	var total float64
	for _, r := range results {
		ts := junitTestsuite{
			Name: r.Suite, File: r.File,
			Tests: len(r.Cases), Failures: r.Failed, Errors: r.Errored, Skipped: r.Skipped,
			Time: junitSeconds(r.Elapsed.Seconds()),
		}
		for _, cr := range r.Cases {
			tc := junitTestcase{
				Name:      cr.Case.Name,
				Classname: junitClassname(r),
				Time:      junitSeconds(cr.Elapsed.Seconds()),
			}
			switch cr.Outcome() {
			case Fail:
				tc.Failure = &junitMessage{
					Message: fmt.Sprintf("want %s, got %s", cr.Case.Want, cr.Got),
					Type:    "verdict-mismatch",
					Body:    "question: " + cr.Case.Question,
				}
			case ErrorOutcome:
				tc.Error = &junitMessage{
					Message: cr.Err.Error(),
					Type:    "engine-error",
					Body:    "question: " + cr.Case.Question,
				}
			case Skip:
				tc.Skipped = &junitMessage{Message: "verdict UNKNOWN: human judgment required"}
			}
			ts.Cases = append(ts.Cases, tc)
		}
		root.Suites = append(root.Suites, ts)
		root.Tests += ts.Tests
		root.Failures += ts.Failures
		root.Errors += ts.Errors
		root.Skipped += ts.Skipped
		total += r.Elapsed.Seconds()
	}
	root.Time = junitSeconds(total)

	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(root); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// junitClassname is the dotted grouping key test UIs split on.
func junitClassname(r *SuiteResult) string {
	slug := strings.Map(func(c rune) rune {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9':
			return c
		default:
			return '_'
		}
	}, r.Suite)
	return "quagmire.scenario." + slug
}

// junitSeconds formats durations the way JUnit consumers expect.
func junitSeconds(s float64) string { return fmt.Sprintf("%.3f", s) }
