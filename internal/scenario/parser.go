package scenario

import (
	"time"

	"github.com/privacy-quagmire/quagmire/internal/query"
)

// Parse reads one suite from src. file names the source in errors and
// reports; it is not opened.
func Parse(file, src string) (*Suite, error) {
	p := &parser{lex: newLexer(file, src)}
	if err := p.prime(); err != nil {
		return nil, err
	}
	s, err := p.parseSuite()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.unexpected("end of input")
	}
	return s, nil
}

// parser is a one-token-lookahead recursive-descent parser.
type parser struct {
	lex *lexer
	tok token
}

func (p *parser) prime() error { return p.advance() }

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) errorf(t token, format string, args ...any) *Error {
	return p.lex.errorf(t.line, t.col, format, args...)
}

func (p *parser) unexpected(want string) *Error {
	got := p.tok.kind.String()
	if p.tok.kind == tokWord || p.tok.kind == tokString {
		got += " \"" + p.tok.text + "\""
	}
	return p.errorf(p.tok, "expected %s, got %s", want, got)
}

// expect consumes a token of the given kind and returns it.
func (p *parser) expect(kind tokenKind, want string) (token, error) {
	if p.tok.kind != kind {
		return token{}, p.unexpected(want)
	}
	t := p.tok
	return t, p.advance()
}

// keyword consumes a specific bare word.
func (p *parser) keyword(word string) error {
	if p.tok.kind != tokWord || p.tok.text != word {
		return p.unexpected("'" + word + "'")
	}
	return p.advance()
}

func (p *parser) parseSuite() (*Suite, error) {
	if err := p.keyword("suite"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokString, "suite name string")
	if err != nil {
		return nil, err
	}
	if name.text == "" {
		return nil, p.errorf(name, "suite name must not be empty")
	}
	s := &Suite{Name: name.text, File: p.lex.file, Bindings: map[string]Binding{}}
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return nil, err
	}
	for p.tok.kind != tokRBrace {
		if p.tok.kind == tokEOF {
			return nil, p.unexpected("'}' closing the suite")
		}
		if err := p.parseItem(s); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(tokRBrace, "'}'"); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *parser) parseItem(s *Suite) error {
	if p.tok.kind != tokWord {
		return p.unexpected("a suite item (policy, deadline, actor, data, use, scenario)")
	}
	kw := p.tok
	switch kw.text {
	case "policy":
		if err := p.advance(); err != nil {
			return err
		}
		v, err := p.expect(tokString, "policy source string")
		if err != nil {
			return err
		}
		if s.Policy != "" {
			return p.errorf(kw, "duplicate policy declaration")
		}
		if v.text == "" {
			return p.errorf(v, "policy source must not be empty")
		}
		s.Policy = v.text
		return nil

	case "deadline":
		if err := p.advance(); err != nil {
			return err
		}
		v, err := p.expect(tokWord, "duration (e.g. 5s, 500ms)")
		if err != nil {
			return err
		}
		d, perr := time.ParseDuration(v.text)
		if perr != nil || d <= 0 {
			return p.errorf(v, "invalid deadline %q (want a positive duration like 5s)", v.text)
		}
		if s.Deadline != 0 {
			return p.errorf(kw, "duplicate deadline declaration")
		}
		s.Deadline = d
		return nil

	case "actor", "data":
		if err := p.advance(); err != nil {
			return err
		}
		name, err := p.expect(tokWord, kw.text+" alias name")
		if err != nil {
			return err
		}
		if _, err := p.expect(tokEquals, "'='"); err != nil {
			return err
		}
		val, err := p.expect(tokString, "bound phrase string")
		if err != nil {
			return err
		}
		if prev, dup := s.Bindings[name.text]; dup {
			return p.errorf(name, "duplicate binding %q (first declared on line %d)", name.text, prev.Line)
		}
		if val.text == "" {
			return p.errorf(val, "binding %q must not be empty", name.text)
		}
		s.Bindings[name.text] = Binding{Kind: kw.text, Name: name.text, Value: val.text, Line: name.line}
		return nil

	case "use":
		if err := p.advance(); err != nil {
			return err
		}
		pack, err := p.expect(tokWord, "rule pack name")
		if err != nil {
			return err
		}
		u := Use{Pack: pack.text, Params: map[string]string{}, Line: pack.line}
		if p.tok.kind == tokLParen {
			if err := p.parseParams(&u); err != nil {
				return err
			}
		}
		s.Uses = append(s.Uses, u)
		return nil

	case "scenario":
		sc, err := p.parseScenario()
		if err != nil {
			return err
		}
		s.Scenarios = append(s.Scenarios, sc)
		return nil
	}
	return p.unexpected("a suite item (policy, deadline, actor, data, use, scenario)")
}

func (p *parser) parseParams(u *Use) error {
	if err := p.advance(); err != nil { // '('
		return err
	}
	for p.tok.kind != tokRParen {
		name, err := p.expect(tokWord, "parameter name")
		if err != nil {
			return err
		}
		if _, err := p.expect(tokEquals, "'='"); err != nil {
			return err
		}
		val, err := p.expect(tokString, "parameter value string")
		if err != nil {
			return err
		}
		if _, dup := u.Params[name.text]; dup {
			return p.errorf(name, "duplicate parameter %q", name.text)
		}
		u.Params[name.text] = val.text
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return err
			}
			continue
		}
		if p.tok.kind != tokRParen {
			return p.unexpected("',' or ')'")
		}
	}
	return p.advance() // ')'
}

func (p *parser) parseScenario() (Scenario, error) {
	if err := p.advance(); err != nil { // 'scenario'
		return Scenario{}, err
	}
	name, err := p.expect(tokString, "scenario name string")
	if err != nil {
		return Scenario{}, err
	}
	if name.text == "" {
		return Scenario{}, p.errorf(name, "scenario name must not be empty")
	}
	sc := Scenario{Name: name.text, Line: name.line}
	if _, err := p.expect(tokLBrace, "'{'"); err != nil {
		return Scenario{}, err
	}
	for p.tok.kind != tokRBrace {
		if p.tok.kind != tokWord {
			return Scenario{}, p.unexpected("a scenario item (ask, expect, tag)")
		}
		kw := p.tok
		switch kw.text {
		case "ask":
			if err := p.advance(); err != nil {
				return Scenario{}, err
			}
			q, err := p.expect(tokString, "question string")
			if err != nil {
				return Scenario{}, err
			}
			if sc.Ask != "" {
				return Scenario{}, p.errorf(kw, "scenario %q has more than one ask", sc.Name)
			}
			if q.text == "" {
				return Scenario{}, p.errorf(q, "ask must not be empty")
			}
			sc.Ask = q.text

		case "expect":
			if err := p.advance(); err != nil {
				return Scenario{}, err
			}
			v, err := p.expect(tokWord, "verdict (VALID, INVALID or UNKNOWN)")
			if err != nil {
				return Scenario{}, err
			}
			if sc.HasExpect {
				return Scenario{}, p.errorf(kw, "scenario %q has more than one expect", sc.Name)
			}
			switch v.text {
			case "VALID":
				sc.Expect = query.Valid
			case "INVALID":
				sc.Expect = query.Invalid
			case "UNKNOWN":
				sc.Expect = query.Unknown
			default:
				return Scenario{}, p.errorf(v, "unknown verdict %q (want VALID, INVALID or UNKNOWN)", v.text)
			}
			sc.HasExpect = true

		case "tag":
			if err := p.advance(); err != nil {
				return Scenario{}, err
			}
			tag, err := p.expect(tokString, "tag string")
			if err != nil {
				return Scenario{}, err
			}
			sc.Tags = append(sc.Tags, tag.text)

		default:
			return Scenario{}, p.unexpected("a scenario item (ask, expect, tag)")
		}
	}
	return sc, p.advance() // '}'
}
