package scenario

import (
	"strings"
	"testing"
)

// lexAll drains the lexer, failing the test on scan errors.
func lexAll(t *testing.T, src string) []token {
	t.Helper()
	l := newLexer("test.qq", src)
	var out []token
	for {
		tok, err := l.next()
		if err != nil {
			t.Fatalf("lex %q: %v", src, err)
		}
		if tok.kind == tokEOF {
			return out
		}
		out = append(out, tok)
	}
}

func TestLexerTokens(t *testing.T) {
	toks := lexAll(t, `suite "a b" { use ccpa-no-sale(controller = "Acme", x = "y") deadline 1.5s }`)
	kinds := []tokenKind{
		tokWord, tokString, tokLBrace,
		tokWord, tokWord, tokLParen, tokWord, tokEquals, tokString, tokComma,
		tokWord, tokEquals, tokString, tokRParen,
		tokWord, tokWord, tokRBrace,
	}
	if len(toks) != len(kinds) {
		t.Fatalf("got %d tokens, want %d: %+v", len(toks), len(kinds), toks)
	}
	for i, k := range kinds {
		if toks[i].kind != k {
			t.Errorf("token %d = %v %q, want kind %v", i, toks[i].kind, toks[i].text, k)
		}
	}
	if toks[1].text != "a b" {
		t.Errorf("string token = %q", toks[1].text)
	}
	if toks[4].text != "ccpa-no-sale" {
		t.Errorf("dashed word = %q", toks[4].text)
	}
	if toks[15].text != "1.5s" {
		t.Errorf("duration word = %q", toks[15].text)
	}
}

func TestLexerCommentsAndPositions(t *testing.T) {
	src := "# line one\n// line two\nsuite \"s\" {}\n"
	toks := lexAll(t, src)
	if len(toks) != 4 {
		t.Fatalf("tokens = %+v", toks)
	}
	if toks[0].line != 3 || toks[0].col != 1 {
		t.Errorf("suite keyword at %d:%d, want 3:1", toks[0].line, toks[0].col)
	}
	if toks[1].line != 3 || toks[1].col != 7 {
		t.Errorf("name string at %d:%d, want 3:7", toks[1].line, toks[1].col)
	}
}

func TestLexerStringEscapes(t *testing.T) {
	toks := lexAll(t, `"a\"b\\c\nd\te"`)
	if len(toks) != 1 || toks[0].text != "a\"b\\c\nd\te" {
		t.Fatalf("escaped string = %+v", toks)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{
		`"unterminated`,
		"\"newline\nin string\"",
		`"bad \x escape"`,
		`@`,
	} {
		l := newLexer("bad.qq", src)
		var err error
		for err == nil {
			var tok token
			tok, err = l.next()
			if err == nil && tok.kind == tokEOF {
				t.Fatalf("lex %q: expected error, got EOF", src)
			}
		}
		if !strings.HasPrefix(err.Error(), "bad.qq:") {
			t.Errorf("error %q should carry file position", err)
		}
	}
}
