package scenario

import (
	"strings"
	"testing"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/query"
)

const exampleSuite = `
# Acme compliance-as-code suite.
suite "acme-baseline" {
  policy "corpus:mini"
  deadline 5s

  actor advertisers = "advertising partners"
  data  email       = "email address"

  use ccpa-no-sale(controller = "Acme")

  scenario "email reaches advertisers" {
    ask "Does Acme share my $email with $advertisers?"
    expect VALID
    tag "sharing"
    tag "baseline"
  }

  scenario "stays ambiguous" {
    ask "Does Acme share my usage data with service providers?"
    expect UNKNOWN
  }
}
`

func TestParseSuite(t *testing.T) {
	s, err := Parse("acme.qq", exampleSuite)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "acme-baseline" || s.File != "acme.qq" {
		t.Errorf("suite = %q file %q", s.Name, s.File)
	}
	if s.Policy != "corpus:mini" {
		t.Errorf("policy = %q", s.Policy)
	}
	if s.Deadline != 5*time.Second {
		t.Errorf("deadline = %v", s.Deadline)
	}
	if len(s.Bindings) != 2 {
		t.Errorf("bindings = %+v", s.Bindings)
	}
	if b := s.Bindings["advertisers"]; b.Kind != "actor" || b.Value != "advertising partners" {
		t.Errorf("advertisers binding = %+v", b)
	}
	if len(s.Uses) != 1 || s.Uses[0].Pack != "ccpa-no-sale" || s.Uses[0].Params["controller"] != "Acme" {
		t.Errorf("uses = %+v", s.Uses)
	}
	if len(s.Scenarios) != 2 {
		t.Fatalf("scenarios = %+v", s.Scenarios)
	}
	sc := s.Scenarios[0]
	if sc.Name != "email reaches advertisers" || sc.Expect != query.Valid || !sc.HasExpect {
		t.Errorf("scenario 0 = %+v", sc)
	}
	if len(sc.Tags) != 2 || sc.Tags[0] != "sharing" {
		t.Errorf("tags = %v", sc.Tags)
	}
	if s.Scenarios[1].Expect != query.Unknown {
		t.Errorf("scenario 1 expect = %v", s.Scenarios[1].Expect)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string // substring of the error
	}{
		{``, "expected 'suite'"},
		{`suite {}`, "suite name"},
		{`suite "" {}`, "must not be empty"},
		{`suite "s"`, "'{'"},
		{`suite "s" {`, "'}'"},
		{`suite "s" { bogus }`, "suite item"},
		{`suite "s" {} trailing`, "end of input"},
		{`suite "s" { policy "a" policy "b" }`, "duplicate policy"},
		{`suite "s" { deadline nope }`, "invalid deadline"},
		{`suite "s" { deadline -3s }`, "invalid deadline"},
		{`suite "s" { deadline 1s deadline 2s }`, "duplicate deadline"},
		{`suite "s" { actor a = "x" data a = "y" }`, "duplicate binding"},
		{`suite "s" { actor a = "" }`, "must not be empty"},
		{`suite "s" { use p(a = "1" a = "2") }`, "',' or ')'"},
		{`suite "s" { use p(a = "1", a = "2") }`, "duplicate parameter"},
		{`suite "s" { scenario "x" { ask "q" ask "q2" expect VALID } }`, "more than one ask"},
		{`suite "s" { scenario "x" { expect VALID expect VALID } }`, "more than one expect"},
		{`suite "s" { scenario "x" { expect MAYBE } }`, "unknown verdict"},
		{`suite "s" { scenario "x" { frobnicate } }`, "scenario item"},
		{`suite "s" { scenario "" {} }`, "must not be empty"},
	}
	for _, c := range cases {
		_, err := Parse("t.qq", c.src)
		if err == nil {
			t.Errorf("Parse(%q) should fail", c.src)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("Parse(%q) error = %q, want substring %q", c.src, err, c.want)
		}
		var perr *Error
		if !errorAs(err, &perr) {
			t.Errorf("Parse(%q) error is %T, want *Error", c.src, err)
		} else if perr.File != "t.qq" {
			t.Errorf("Parse(%q) error file = %q", c.src, perr.File)
		}
	}
}

// errorAs avoids importing errors for one call site.
func errorAs(err error, target **Error) bool {
	if e, ok := err.(*Error); ok {
		*target = e
		return true
	}
	return false
}

func TestParseErrorPositions(t *testing.T) {
	_, err := Parse("pos.qq", "suite \"s\" {\n  scenario \"x\" {\n    expect MAYBE\n  }\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.HasPrefix(err.Error(), "pos.qq:3:12:") {
		t.Errorf("error position = %q, want pos.qq:3:12", err)
	}
}
