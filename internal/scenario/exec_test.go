package scenario

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/corpus"
	"github.com/privacy-quagmire/quagmire/internal/obs"
	"github.com/privacy-quagmire/quagmire/internal/query"
)

// miniSuiteSrc is the executable fixture: a pack plus direct scenarios whose
// verdicts on the Mini corpus are pinned by the policy text.
const miniSuiteSrc = `suite "acme-baseline" {
  policy "corpus:mini"
  deadline 30s
  actor advertisers = "advertising partners"
  data  email       = "email address"

  use ccpa-no-sale(controller = "Acme")

  scenario "collection is disclosed" {
    ask "Does Acme collect my device identifiers?"
    expect VALID
  }
  scenario "email reaches advertisers" {
    ask "Does Acme share my $email with $advertisers?"
    expect VALID
  }
  scenario "usage data flows conditionally" {
    ask "Does Acme share my usage data with service providers?"
    expect VALID
    tag "conditional"
  }
}`

var (
	miniOnce sync.Once
	miniEng  *query.Engine
	miniErr  error
)

// sharedMiniEngine analyzes the Mini corpus once for the whole package,
// through a SharedSolverCore pipeline (the configuration `quagmire check`
// uses).
func sharedMiniEngine(t testing.TB) *query.Engine {
	t.Helper()
	miniOnce.Do(func() {
		p, err := core.New(core.Options{SharedSolverCore: true})
		if err != nil {
			miniErr = err
			return
		}
		a, err := p.Analyze(context.Background(), corpus.Mini())
		if err != nil {
			miniErr = err
			return
		}
		miniEng = a.Engine
	})
	if miniErr != nil {
		t.Fatal(miniErr)
	}
	return miniEng
}

func compileSrc(t testing.TB, src string) *CompiledSuite {
	t.Helper()
	s, err := Parse("mini.qq", src)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func TestExecuteMiniSuite(t *testing.T) {
	eng := sharedMiniEngine(t)
	cs := compileSrc(t, miniSuiteSrc)
	reg := obs.NewRegistry()
	res, err := Execute(context.Background(), eng, cs, ExecOptions{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("suite not green:\n%s", RenderText([]*SuiteResult{res}))
	}
	if res.Passed != len(cs.Cases) || res.Failed != 0 || res.Errored != 0 {
		t.Errorf("counts = %d/%d/%d/%d", res.Passed, res.Skipped, res.Failed, res.Errored)
	}
	// The conditional scenario must surface the vague condition it hinges on.
	var conditional *CaseResult
	for i := range res.Cases {
		if res.Cases[i].Case.Name == "usage data flows conditionally" {
			conditional = &res.Cases[i]
		}
	}
	if conditional == nil || len(conditional.ConditionalOn) == 0 {
		t.Errorf("conditional case did not report its conditions: %+v", conditional)
	}
	if got := reg.Counter("quagmire_scenario_suites_total").Value(); got != 1 {
		t.Errorf("suites_total = %d", got)
	}
	if got := reg.Counter("quagmire_scenario_cases_total", "outcome", "pass").Value(); got != uint64(len(cs.Cases)) {
		t.Errorf("cases_total{pass} = %d, want %d", got, len(cs.Cases))
	}
}

// TestExecuteSharedCoreBuildsOnce is the acceptance criterion for routing
// scenario suites through the shared incremental core: a whole suite run —
// pack cases included — must cost exactly one ground-core construction, and
// a second suite on the same engine must reuse it.
func TestExecuteSharedCoreBuildsOnce(t *testing.T) {
	p, err := core.New(core.Options{SharedSolverCore: true})
	if err != nil {
		t.Fatal(err)
	}
	a, err := p.Analyze(context.Background(), corpus.Mini())
	if err != nil {
		t.Fatal(err)
	}
	eng := a.Engine
	cs := compileSrc(t, miniSuiteSrc)
	if len(cs.Cases) < 5 {
		t.Fatalf("fixture too small to prove sharing: %d cases", len(cs.Cases))
	}
	if _, err := Execute(context.Background(), eng, cs, ExecOptions{}); err != nil {
		t.Fatal(err)
	}
	builds := eng.Obs.Counter("quagmire_ground_core_builds_total")
	if got := builds.Value(); got != 1 {
		t.Fatalf("ground core built %d times for a %d-case suite, want 1", got, len(cs.Cases))
	}
	if _, err := Execute(context.Background(), eng, cs, ExecOptions{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	if got := builds.Value(); got != 1 {
		t.Fatalf("second suite run rebuilt the ground core (builds = %d)", got)
	}
}

func TestExecuteFailClassification(t *testing.T) {
	eng := sharedMiniEngine(t)
	cs := compileSrc(t, `suite "regression" {
  scenario "wrong expectation" {
    ask "Does Acme sell my personal information?"
    expect VALID
  }
}`)
	reg := obs.NewRegistry()
	res, err := Execute(context.Background(), eng, cs, ExecOptions{Obs: reg})
	if err != nil {
		t.Fatal(err)
	}
	if res.OK() || res.Failed != 1 {
		t.Fatalf("result = %+v, want 1 failure", res)
	}
	cr := res.Cases[0]
	if cr.Outcome() != Fail || cr.Got != query.Invalid {
		t.Errorf("case = outcome %s got %s", cr.Outcome(), cr.Got)
	}
	if got := reg.Counter("quagmire_scenario_cases_total", "outcome", "fail").Value(); got != 1 {
		t.Errorf("cases_total{fail} = %d", got)
	}
}

func TestExecutePerCaseDeadline(t *testing.T) {
	eng := sharedMiniEngine(t)
	cs := compileSrc(t, `suite "slow" {
  deadline 1ns
  scenario "cannot finish" {
    ask "Does Acme sell my personal information?"
    expect INVALID
  }
}`)
	res, err := Execute(context.Background(), eng, cs, ExecOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errored != 1 || res.OK() {
		t.Fatalf("result = %+v, want 1 errored", res)
	}
	if !errors.Is(res.Cases[0].Err, context.DeadlineExceeded) {
		t.Errorf("err = %v, want deadline exceeded", res.Cases[0].Err)
	}
	// An explicit option deadline overrides the suite's.
	res, err = Execute(context.Background(), eng, cs, ExecOptions{Deadline: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !res.OK() {
		t.Fatalf("override run not green:\n%s", RenderText([]*SuiteResult{res}))
	}
}

func TestExecuteCancelledContext(t *testing.T) {
	eng := sharedMiniEngine(t)
	cs := compileSrc(t, miniSuiteSrc)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := Execute(ctx, eng, cs, ExecOptions{Workers: 2})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res == nil || res.Errored != len(cs.Cases) {
		t.Fatalf("result = %+v, want every case errored", res)
	}
}

func TestOutcomeClassification(t *testing.T) {
	cases := []struct {
		r    CaseResult
		want Outcome
	}{
		{CaseResult{Case: Case{Want: query.Valid}, Err: errors.New("boom")}, ErrorOutcome},
		{CaseResult{Case: Case{Want: query.Valid}, Got: query.Invalid}, Fail},
		{CaseResult{Case: Case{Want: query.Unknown}, Got: query.Unknown}, Skip},
		{CaseResult{Case: Case{Want: query.Valid}, Got: query.Valid}, Pass},
		{CaseResult{Case: Case{Want: query.Invalid}, Got: query.Invalid}, Pass},
		{CaseResult{Case: Case{Want: query.Unknown}, Got: query.Valid}, Fail},
	}
	for _, c := range cases {
		if got := c.r.Outcome(); got != c.want {
			t.Errorf("Outcome(%+v) = %s, want %s", c.r, got, c.want)
		}
	}
}

func TestExecutePolicyLabelOverride(t *testing.T) {
	eng := sharedMiniEngine(t)
	cs := compileSrc(t, `suite "labelled" {
  scenario "one" { ask "Does Acme collect my device identifiers?" expect VALID }
}`)
	res, err := Execute(context.Background(), eng, cs, ExecOptions{Policy: "store:acme@3"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Policy != "store:acme@3" {
		t.Errorf("policy label = %q", res.Policy)
	}
	if !strings.Contains(RenderText([]*SuiteResult{res}), "store:acme@3") {
		t.Errorf("text report missing policy label")
	}
}
