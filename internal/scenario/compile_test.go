package scenario

import (
	"strings"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/query"
)

func mustCompile(t *testing.T, src string) *CompiledSuite {
	t.Helper()
	s, err := Parse("t.qq", src)
	if err != nil {
		t.Fatal(err)
	}
	cs, err := Compile(s)
	if err != nil {
		t.Fatal(err)
	}
	return cs
}

func TestCompileInterpolation(t *testing.T) {
	cs := mustCompile(t, `suite "s" {
  actor ads   = "advertising partners"
  data  email = "email address"
  scenario "email to $ads" {
    ask "Does Acme share my ${email}es with $ads? Costs $$5."
    expect VALID
  }
}`)
	if len(cs.Cases) != 1 {
		t.Fatalf("cases = %+v", cs.Cases)
	}
	c := cs.Cases[0]
	if c.Name != "email to advertising partners" {
		t.Errorf("name = %q", c.Name)
	}
	want := "Does Acme share my email addresses with advertising partners? Costs $5."
	if c.Question != want {
		t.Errorf("question = %q, want %q", c.Question, want)
	}
	if c.Want != query.Valid {
		t.Errorf("want = %v", c.Want)
	}
}

func TestCompilePackExpansion(t *testing.T) {
	cs := mustCompile(t, `suite "s" {
  use ccpa-no-sale(controller = "Acme")
  scenario "direct" {
    ask "Does Acme collect my device identifiers?"
    expect VALID
  }
}`)
	if len(cs.Cases) != 3 {
		t.Fatalf("cases = %d, want 3 (2 pack + 1 direct)", len(cs.Cases))
	}
	// Pack cases come first, carry the pack origin and prefixed names.
	if cs.Cases[0].Origin != "ccpa-no-sale" {
		t.Errorf("origin = %q", cs.Cases[0].Origin)
	}
	if !strings.HasPrefix(cs.Cases[0].Name, "ccpa-no-sale: ") {
		t.Errorf("pack case name = %q", cs.Cases[0].Name)
	}
	if !strings.Contains(cs.Cases[0].Question, "Acme") {
		t.Errorf("pack param not substituted: %q", cs.Cases[0].Question)
	}
	if cs.Cases[2].Origin != "" || cs.Cases[2].Name != "direct" {
		t.Errorf("direct case = %+v", cs.Cases[2])
	}
}

func TestCompilePackParamShadowsBinding(t *testing.T) {
	// A suite-level binding named like a pack parameter loses to the use's
	// explicit argument inside the pack templates.
	cs := mustCompile(t, `suite "s" {
  actor controller = "WrongCo"
  use ccpa-no-sale(controller = "RightCo")
  scenario "uses suite binding" {
    ask "Does $controller collect my email address?"
    expect INVALID
  }
}`)
	if !strings.Contains(cs.Cases[0].Question, "RightCo") {
		t.Errorf("pack question = %q, want RightCo", cs.Cases[0].Question)
	}
	last := cs.Cases[len(cs.Cases)-1]
	if !strings.Contains(last.Question, "WrongCo") {
		t.Errorf("direct question = %q, want suite binding WrongCo", last.Question)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`suite "s" { scenario "x" { expect VALID } }`, "has no ask"},
		{`suite "s" { scenario "x" { ask "q" } }`, "has no expect"},
		{`suite "s" { scenario "x" { ask "What about $nope?" expect VALID } }`, "unknown reference $nope"},
		{`suite "s" { scenario "x" { ask "trailing $" expect VALID } }`, "stray '$'"},
		{`suite "s" { policy "corpus:mini" }`, "declares no scenarios"},
		{`suite "s" {
  scenario "dup" { ask "a?" expect VALID }
  scenario "dup" { ask "b?" expect VALID }
}`, "duplicate scenario name"},
		{`suite "s" { use ccpa-no-sale }`, `requires parameter "controller"`},
	}
	for _, c := range cases {
		s, err := Parse("t.qq", c.src)
		if err != nil {
			t.Errorf("Parse(%q) = %v (should parse, fail at compile)", c.src, err)
			continue
		}
		_, err = Compile(s)
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("Compile(%q) error = %v, want substring %q", c.src, err, c.want)
		}
	}
}

func TestInterpolateTable(t *testing.T) {
	env := map[string]string{"a": "alpha", "b_2": "beta"}
	ok := []struct{ in, want string }{
		{"plain", "plain"},
		{"$a", "alpha"},
		{"${a}", "alpha"},
		{"$a$b_2", "alphabeta"},
		{"${a}s", "alphas"},
		{"$a?", "alpha?"},
		{"$$", "$"},
		{"cost $$10 for $a", "cost $10 for alpha"},
	}
	for _, c := range ok {
		got, err := interpolate(c.in, env)
		if err != nil || got != c.want {
			t.Errorf("interpolate(%q) = %q, %v; want %q", c.in, got, err, c.want)
		}
	}
	for _, in := range []string{"$", "$ x", "${a", "${}", "$missing"} {
		if _, err := interpolate(in, env); err == nil {
			t.Errorf("interpolate(%q) should fail", in)
		}
	}
}
