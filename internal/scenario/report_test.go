package scenario

import (
	"bytes"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"github.com/privacy-quagmire/quagmire/internal/query"
)

var update = flag.Bool("update", false, "rewrite golden report files")

// goldenResults is a hand-built run exercising every outcome with fixed
// timings, so the rendered reports are byte-stable.
func goldenResults() []*SuiteResult {
	pass := CaseResult{
		Case: Case{
			Name: "ccpa-no-sale: no sale of personal information", Origin: "ccpa-no-sale",
			Question: "Does Acme sell my personal information?",
			Want:     query.Invalid, Tags: []string{"ccpa"},
		},
		Got: query.Invalid, Elapsed: 42 * time.Millisecond,
	}
	conditional := CaseResult{
		Case: Case{
			Name:     "usage data flows conditionally",
			Question: "Does Acme share my usage data with service providers?",
			Want:     query.Valid, Tags: []string{"conditional"},
		},
		Got: query.Valid, ConditionalOn: []string{"cond_legitimate_business_purposes"},
		Elapsed: 18 * time.Millisecond,
	}
	skip := CaseResult{
		Case: Case{
			Name:     "ambiguous retention clause",
			Question: "Does Acme retain my usage data indefinitely?",
			Want:     query.Unknown,
		},
		Got: query.Unknown, Elapsed: 7 * time.Millisecond,
	}
	fail := CaseResult{
		Case: Case{
			Name:     "email must not reach advertisers",
			Question: "Does Acme share my email address with advertising partners?",
			Want:     query.Invalid,
		},
		Got: query.Valid, Elapsed: 31 * time.Millisecond,
	}
	errored := CaseResult{
		Case: Case{
			Name:     "times out",
			Question: "Does Acme sell my browsing history?",
			Want:     query.Invalid,
		},
		Err: errors.New("context deadline exceeded"), Elapsed: 5 * time.Second,
	}
	green := &SuiteResult{
		Suite: "acme-baseline", File: "suites/acme_baseline.qq", Policy: "corpus:mini",
		Cases:  []CaseResult{pass, conditional, skip},
		Passed: 2, Skipped: 1,
		Elapsed: 67 * time.Millisecond,
	}
	red := &SuiteResult{
		Suite: "acme-regressions", File: "suites/acme_regressions.qq", Policy: "corpus:mini",
		Cases:  []CaseResult{fail, errored},
		Failed: 1, Errored: 1,
		Elapsed: 5031 * time.Millisecond,
	}
	return []*SuiteResult{green, red}
}

// checkGolden compares got against testdata/golden/<name>, rewriting the
// file under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file (run with -update to regenerate):\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

func TestJSONReportGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, NewReport(goldenResults())); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "report.json", buf.Bytes())
}

func TestJUnitReportGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJUnit(&buf, goldenResults()); err != nil {
		t.Fatal(err)
	}
	got := buf.Bytes()
	checkGolden(t, "report.xml", got)
	// The golden file must not smuggle in nondeterministic attributes.
	for _, banned := range []string{"timestamp=", "hostname="} {
		if bytes.Contains(got, []byte(banned)) {
			t.Errorf("JUnit output contains nondeterministic attribute %q", banned)
		}
	}
}

func TestReportTotals(t *testing.T) {
	rep := NewReport(goldenResults())
	want := ReportTotals{Suites: 2, Cases: 5, Passed: 2, Skipped: 1, Failed: 1, Errored: 1}
	if rep.Totals != want {
		t.Errorf("totals = %+v, want %+v", rep.Totals, want)
	}
	if rep.OK {
		t.Error("report with failures must not be OK")
	}
	if rep.Format != ReportFormat {
		t.Errorf("format = %q", rep.Format)
	}
	green := NewReport(goldenResults()[:1])
	if !green.OK {
		t.Error("skip-only suite must stay OK (UNKNOWN is not a failure)")
	}
}

func TestRenderText(t *testing.T) {
	out := RenderText(goldenResults())
	for _, want := range []string{
		"PASS", "SKIP", "FAIL", "ERROR",
		"human judgment required",
		"conditional on: cond_legitimate_business_purposes",
		"want INVALID, got VALID",
		"2 passed, 1 skipped, 1 failed, 1 errored",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("text report missing %q:\n%s", want, out)
		}
	}
}
