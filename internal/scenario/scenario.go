// Package scenario implements compliance-as-code: a small DSL (.qq files)
// in which a company declares compliance scenarios — actors, data types,
// reusable regulatory rule packs, and the verdict each scenario is expected
// to produce — plus the stack that makes those files executable: a
// lexer→parser→compiler front end that lowers a suite to vocabulary-bound
// batched queries, an executor that runs the batch through a policy's query
// engine (sharing one incremental solver core across the whole suite), and
// JSON / JUnit XML reporters whose exit semantics make a policy change that
// silently flips a verdict fail a CI build instead of going unnoticed.
//
// A minimal suite:
//
//	suite "acme-baseline" {
//	  policy "corpus:mini"
//	  actor advertisers = "advertising partners"
//
//	  use ccpa-no-sale(controller = "Acme")
//
//	  scenario "email reaches advertisers" {
//	    ask "Does Acme share my email address with $advertisers?"
//	    expect VALID
//	  }
//	}
//
// Grammar (one suite per file; # and // start line comments):
//
//	suite     := "suite" STRING "{" item* "}"
//	item      := "policy" STRING
//	           | "deadline" DURATION
//	           | ("actor" | "data") IDENT "=" STRING
//	           | "use" IDENT [ "(" [param ("," param)*] ")" ]
//	           | scenario
//	param     := IDENT "=" STRING
//	scenario  := "scenario" STRING "{" sitem* "}"
//	sitem     := "ask" STRING | "expect" VERDICT | "tag" STRING
//	VERDICT   := "VALID" | "INVALID" | "UNKNOWN"
//
// Strings interpolate $name / ${name} against the suite's actor/data
// bindings (and, inside rule packs, the pack's parameters); $$ escapes a
// literal dollar sign.
package scenario

import (
	"time"

	"github.com/privacy-quagmire/quagmire/internal/query"
)

// Suite is the parsed form of one .qq file, before compilation.
type Suite struct {
	// Name is the suite's declared name.
	Name string
	// File is the source path (or a synthetic name for in-memory input),
	// used in error messages and reports.
	File string
	// Policy is the declared policy source ("corpus:mini", "file:rel.txt"),
	// empty when the runner binds the policy externally.
	Policy string
	// Deadline bounds each scenario's verification (0 = none declared).
	Deadline time.Duration
	// Bindings are the suite's vocabulary declarations, keyed by name.
	Bindings map[string]Binding
	// Uses are the rule-pack instantiations, in declaration order.
	Uses []Use
	// Scenarios are the directly declared scenarios, in declaration order.
	Scenarios []Scenario
}

// Binding is one vocabulary declaration: actor or data alias → policy
// vocabulary phrase.
type Binding struct {
	// Kind is "actor" or "data".
	Kind string
	// Name is the alias referenced as $name.
	Name string
	// Value is the phrase substituted at compile time.
	Value string
	// Line is the declaration's source line.
	Line int
}

// Use instantiates a built-in rule pack with parameters.
type Use struct {
	// Pack names the rule pack.
	Pack string
	// Params are the instantiation arguments.
	Params map[string]string
	// Line is the use directive's source line.
	Line int
}

// Scenario is one declared compliance scenario.
type Scenario struct {
	// Name identifies the scenario in reports; unique after compilation.
	Name string
	// Ask is the natural-language compliance question (pre-interpolation).
	Ask string
	// Expect is the pinned verdict.
	Expect query.Verdict
	// HasExpect distinguishes a declared UNKNOWN from a missing expect.
	HasExpect bool
	// Tags are free-form labels carried into reports.
	Tags []string
	// Line is the scenario's source line.
	Line int
}
