package server

// BenchmarkRecoveryBoot measures server boot against a populated disk
// store in the three recovery modes:
//
//	eager   decode + rebuild every engine before New returns (old behavior)
//	lazy    index metadata only, no warmer — boot-to-first-byte
//	warmed  lazy boot plus waiting for the background warmer — boot-to-hot
//
// The point of lazy recovery is that "lazy" stays flat as the policy count
// grows while "eager" scales linearly with it; "warmed" bounds the total
// background work. The seeded directory is a cleanly-compacted snapshot,
// so since snapshot format v2 every mode here boots through the indexed
// open path (header + metadata index, payloads lazy behind LoadPayload) —
// the lazy legs are guarded against BENCH_PR9.json to lock that in, on
// top of the BENCH_PR7.json guard from the v1 era. EXPERIMENTS.md E15
// runs the same sweep at 100/1k scale; E17 isolates the format A/B.

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"testing"

	"github.com/privacy-quagmire/quagmire/internal/core"
	"github.com/privacy-quagmire/quagmire/internal/store"
)

// recoveryBenchSizes returns the store sizes to sweep: {8, 64} by default
// (kept small for CI), overridable for corpus-scale runs like E15 with
// e.g. QUAGMIRE_RECOVERY_BENCH_SIZES=100,1000.
func recoveryBenchSizes(b *testing.B) []int {
	env := os.Getenv("QUAGMIRE_RECOVERY_BENCH_SIZES")
	if env == "" {
		return []int{8, 64}
	}
	var sizes []int
	for _, s := range strings.Split(env, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			b.Fatalf("bad QUAGMIRE_RECOVERY_BENCH_SIZES entry %q", s)
		}
		sizes = append(sizes, n)
	}
	return sizes
}

func BenchmarkRecoveryBoot(b *testing.B) {
	for _, n := range recoveryBenchSizes(b) {
		dir := b.TempDir()
		seedStoreDirect(b, dir, n, false)
		for _, mode := range []struct {
			name string
			rec  RecoveryOptions
			warm bool
		}{
			{"eager", RecoveryOptions{Eager: true}, false},
			{"lazy", RecoveryOptions{WarmWorkers: -1}, false},
			{"warmed", RecoveryOptions{WarmWorkers: 2}, true},
		} {
			b.Run(fmt.Sprintf("%s/policies-%d", mode.name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					p, err := core.New(core.Options{})
					if err != nil {
						b.Fatal(err)
					}
					st, err := store.OpenDisk(dir, store.Options{Obs: p.Obs()})
					if err != nil {
						b.Fatal(err)
					}
					s, err := New(Options{Pipeline: p, Store: st, Recovery: mode.rec})
					if err != nil {
						b.Fatal(err)
					}
					if mode.warm {
						<-s.warmDone
					}
					b.StopTimer()
					s.Close()
					if err := st.Close(); err != nil {
						b.Fatal(err)
					}
					b.StartTimer()
				}
			})
		}
	}
}
